(* Benchmark & reproduction harness.

   One entry per table/figure of the paper's evaluation: each prints the
   paper-reported values alongside the values this reproduction measures,
   and a Bechamel micro-benchmark times the core computation behind it.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe table1       # one experiment
     dune exec bench/main.exe bench        # only the Bechamel timings *)

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Shared full-scale runs (463 tweets, 5 workers) — computed once.     *)
(* ------------------------------------------------------------------ *)

let corpus = lazy (Tweets.Generator.corpus ())

let outcome variant =
  lazy (Tweetpecker.Runner.run ~corpus:(Lazy.force corpus) variant)

let ve = outcome Tweetpecker.Programs.VE
let vei = outcome Tweetpecker.Programs.VEI
let vre = outcome Tweetpecker.Programs.VRE
let vrei = outcome Tweetpecker.Programs.VREI
let all_outcomes = [ ve; vei; vre; vrei ]

(* ------------------------------------------------------------------ *)
(* Table 1: quality of acquired data                                   *)
(* ------------------------------------------------------------------ *)

(* Paper values (Section 8, Table 1). The VRE/I column of row A is garbled
   in the source text; the paper's finding is that row A differences are
   not statistically significant. *)
let paper_table1_rowA = [ ("VE", (73.5, 6.7, 19.8)); ("VE/I", (72.2, 7.9, 19.9));
                          ("VRE", (71.2, 7.2, 21.6)) ]
let paper_row_b = [ ("VRE", 60.9); ("VRE/I", 77.0) ]
let paper_row_c = [ ("VRE", 2.71); ("VRE/I", 6.32) ]

let run_table1 () =
  section "Table 1: Quality of acquired data (paper -> measured)";
  let outcomes = List.map Lazy.force all_outcomes in
  Format.printf "%-30s" "Technique";
  List.iter
    (fun (o : Tweetpecker.Runner.outcome) ->
      Format.printf "%18s" (Tweetpecker.Programs.variant_name o.variant))
    outcomes;
  Format.printf "@.";
  let row label cell =
    Format.printf "%-30s" label;
    List.iter (fun o -> Format.printf "%18s" (cell o)) outcomes;
    Format.printf "@."
  in
  let paper_a pick (o : Tweetpecker.Runner.outcome) =
    match
      List.assoc_opt (Tweetpecker.Programs.variant_name o.variant) paper_table1_rowA
    with
    | Some t -> Printf.sprintf "%.1f" (pick t)
    | None -> "?"
  in
  let q (o : Tweetpecker.Runner.outcome) = Tweetpecker.Metrics.row_a o in
  row "A: Correct (%)" (fun o ->
      Printf.sprintf "%s -> %.1f" (paper_a (fun (a, _, _) -> a) o) (100.0 *. (q o).correct));
  row "   Incorrect (%)" (fun o ->
      Printf.sprintf "%s -> %.1f" (paper_a (fun (_, b, _) -> b) o) (100.0 *. (q o).incorrect));
  row "   Neither (%)" (fun o ->
      Printf.sprintf "%s -> %.1f" (paper_a (fun (_, _, c) -> c) o) (100.0 *. (q o).neither));
  let with_paper table (o : Tweetpecker.Runner.outcome) value =
    match (List.assoc_opt (Tweetpecker.Programs.variant_name o.variant) table, value) with
    | Some p, Some v -> Printf.sprintf "%.2f -> %.2f" p v
    | None, Some v -> Printf.sprintf "- -> %.2f" v
    | _, None -> "-"
  in
  row "B: Avg confidence of rules (%)" (fun o ->
      with_paper paper_row_b o
        (Option.map (fun x -> 100.0 *. x) (Tweetpecker.Metrics.row_b o)));
  row "C: Avg support of rules (%)" (fun o ->
      with_paper paper_row_c o
        (Option.map (fun x -> 100.0 *. x) (Tweetpecker.Metrics.row_c o)));
  Format.printf
    "@.shape check: row A comparable across variants; B and C clearly higher under VRE/I@.";
  let b v = Option.get (Tweetpecker.Metrics.row_b (Lazy.force v)) in
  let c v = Option.get (Tweetpecker.Metrics.row_c (Lazy.force v)) in
  Format.printf "  B: VRE/I / VRE = %.2fx (paper: %.2fx)@." (b vrei /. b vre) (77.0 /. 60.9);
  Format.printf "  C: VRE/I / VRE = %.2fx (paper: %.2fx)@." (c vrei /. c vre) (6.32 /. 2.71)

(* ------------------------------------------------------------------ *)
(* Figure 4: the VE/I coordination game                                *)
(* ------------------------------------------------------------------ *)

let run_figure4 () =
  section "Figure 4: payoff matrix and extensive form of the VE/I game";
  let game =
    Game.Matrix.coordination ~players:("A", "B") ~values:[ "fine"; "rainy" ] ~reward:1.0
  in
  Format.printf "%a@.@." Game.Matrix.pp_bimatrix game;
  let tree = Game.Extensive.of_matrix_sequential game in
  Format.printf "extensive form (B's information set hides A's move):@.%a@."
    Game.Extensive.pp tree;
  Format.printf "solutions (pure Nash equilibria — the bold paths of the figure):@.";
  List.iter
    (fun profile -> Format.printf "  %s@." (String.concat " / " profile))
    (Game.Matrix.pure_nash_named game);
  Format.printf "paper: the solution is the set of matching-term paths — %s@."
    (if
       List.for_all
         (fun p -> List.length (List.sort_uniq compare p) = 1)
         (Game.Matrix.pure_nash_named game)
     then "reproduced"
     else "NOT reproduced")

(* ------------------------------------------------------------------ *)
(* Figure 6: a path table                                              *)
(* ------------------------------------------------------------------ *)

let run_figure6 () =
  section "Figure 6: path table of one VEI game instance";
  let program =
    {|
    rules:
      Tweet(tw:"It rains in London");
      Worker(pid:"Kate"); Worker(pid:"Pam"); Worker(pid:"Ann");
      VE1: Input(tw, attr:"weather", value, p)/open[p] <- Tweet(tw), Worker(pid:p);
    games:
      game VEI(tw, attr) {
        path:
          VEI1: Path(player:p, action:["value", value]) <- Input(tw, attr, value, p);
        payoff:
          VEI2: Path(player:p1, action:["value", v]) {
            VEI2.1: Payoff[p1 += 1, p2 += 1] <- Path(player:p2, action:["value", v]), p1 != p2;
          }
      }
    |}
  in
  let engine = Cylog.Engine.load (Cylog.Parser.parse_exn program) in
  ignore (Cylog.Engine.run engine);
  (* Kate and Ann agree on "rainy"; Pam enters "wet" — the paper's example
     play with payoffs 1, 0, 1. *)
  List.iter
    (fun (o : Cylog.Engine.open_tuple) ->
      let w = Option.get o.asked in
      let value = if Reldb.Value.to_display w = "Pam" then "wet" else "rainy" in
      ignore
        (Cylog.Engine.supply engine o.id ~worker:w [ ("value", Reldb.Value.String value) ]))
    (Cylog.Engine.pending engine);
  ignore (Cylog.Engine.run engine);
  (match Cylog.Engine.game_instances engine "VEI" with
  | params :: _ ->
      Format.printf "Path(Order, Date, Player, Action):@.";
      List.iter
        (fun t ->
          Format.printf "  (%s, %s, %s, %s)@."
            (Reldb.Value.to_display (Reldb.Tuple.get_or_null t "order"))
            (Reldb.Value.to_display (Reldb.Tuple.get_or_null t "date"))
            (Reldb.Value.to_display (Reldb.Tuple.get_or_null t "player"))
            (Reldb.Value.to_display (Reldb.Tuple.get_or_null t "action")))
        (Cylog.Engine.path_table engine "VEI" ~params:(Reldb.Tuple.to_list params))
  | [] -> Format.printf "  (no play)@.");
  Format.printf "payoffs (paper: Kate 1, Pam 0, Ann 1):@.";
  List.iter
    (fun (p, s) ->
      Format.printf "  %s: %s@." (Reldb.Value.to_display p) (Reldb.Value.to_display s))
    (Cylog.Engine.payoffs engine)

(* ------------------------------------------------------------------ *)
(* Figure 10: VREI game tree with expected payoffs                     *)
(* ------------------------------------------------------------------ *)

let run_figure10 () =
  section "Figure 10: expected payoffs in the VREI game (worker accuracy 0.9)";
  Format.printf "%a@." Game.Extensive.pp (Tweetpecker.Analysis.figure10_tree ~accuracy:0.9);
  Format.printf "expected payoff per root action:@.";
  List.iter
    (fun (action, v) -> Format.printf "  %-22s %+.2f@." action v)
    (Tweetpecker.Analysis.figure10_expected ~accuracy:0.9);
  Format.printf
    "@.paper: correct rules/values dominate (Theorem 1 follows by inspection)@."

(* ------------------------------------------------------------------ *)
(* Figure 11: entered vs selected agreements over completion           *)
(* ------------------------------------------------------------------ *)

let run_figure11 () =
  section "Figure 11: breakdown of agreed values into entered and selected";
  let series name o =
    let b = Tweetpecker.Analysis.figure11 (Lazy.force o) in
    Format.printf "%-6s selected share per decile: " name;
    Array.iteri
      (fun d _ ->
        Format.printf "%3.0f%%" (100.0 *. Tweetpecker.Analysis.selected_share b d))
      b.per_decile;
    Format.printf "   (early: %.0f%%)@."
      (100.0 *. Tweetpecker.Analysis.early_selected_share b);
    b
  in
  let b_vre = series "VRE" vre in
  let b_vrei = series "VRE/I" vrei in
  let early = Tweetpecker.Analysis.early_selected_share in
  Format.printf
    "@.paper: the selected share is clearly higher in the early stages under VRE/I — %s@."
    (if early b_vrei > early b_vre then "reproduced" else "NOT reproduced")

(* ------------------------------------------------------------------ *)
(* Figure 12: when workers entered extraction rules                    *)
(* ------------------------------------------------------------------ *)

let run_figure12 () =
  section "Figure 12: rule-entry times (completion-rate deciles)";
  let series name o =
    let counts = Tweetpecker.Analysis.figure12 (Lazy.force o) in
    Format.printf "%-6s rule entries per decile:   " name;
    Array.iter (fun c -> Format.printf "%4d" c) counts;
    Format.printf "@.";
    counts
  in
  let vre_counts = series "VRE" vre in
  let vrei_counts = series "VRE/I" vrei in
  let early a = a.(0) + a.(1) and total a = Array.fold_left ( + ) 0 a in
  Format.printf
    "@.paper: VRE/I entries cluster at the beginning, VRE entries spread — %s@."
    (if early vrei_counts = total vrei_counts && early vre_counts < total vre_counts
     then "reproduced"
     else "NOT reproduced");
  match
    ( Tweetpecker.Analysis.median_rule_entry_progress (Lazy.force vrei),
      Tweetpecker.Analysis.median_rule_entry_progress (Lazy.force vre) )
  with
  | Some m1, Some m2 ->
      Format.printf "median entry completion: VRE/I %.2f vs VRE %.2f@." m1 m2
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Figure 13: evaluation order                                         *)
(* ------------------------------------------------------------------ *)

let figure13_src =
  {|
  rules:
    R(x:1);
    U(x:2);
    T(x) <- R(x), not U(x);
    S(x, y)/open <- R(x);
    R(x:2);
    T(x:1)/delete;
  |}

let run_figure13 () =
  section "Figure 13: possible evaluation order of a CyLog code";
  print_string
    "  1. R(x:1);\n\
    \  2. U(x:2);\n\
    \  3. T(x) <- R(x), not U(x);\n\
    \  4. S(x, y)/open <- R(x);\n\
    \  5. R(x:2);\n\
    \  6. T(x:1)/delete;\n";
  let engine = Cylog.Engine.load (Cylog.Parser.parse_exn figure13_src) in
  ignore (Cylog.Engine.run engine);
  let show (e : Cylog.Engine.event) =
    let valuation =
      match List.assoc_opt "x" e.valuation with
      | Some v -> Printf.sprintf " (x=%s)" (Reldb.Value.to_display v)
      | None -> ""
    in
    Printf.sprintf "%d%s%s" (e.statement + 1) valuation
      (if e.fired then "" else " [rejected by negation]")
  in
  Format.printf "@.paper order:    1, 2, 3 (x=1), 4 (x=1), 5, 3 (x=2), 4 (x=2), 6@.";
  Format.printf "measured order: %s@."
    (String.concat ", " (List.map show (Cylog.Engine.events engine)))

(* ------------------------------------------------------------------ *)
(* Figure 14: precedence graph                                         *)
(* ------------------------------------------------------------------ *)

let run_figure14 () =
  section "Figure 14: precedence graph of the Figure 13 rules";
  let program = Cylog.Parser.parse_exn figure13_src in
  let g = Cylog.Precedence.build program.Cylog.Ast.statements in
  Format.printf "%a@." Cylog.Pretty.pp_precedence g;
  Format.printf "@.data complete: rule 6 %b (paper: yes), rule 3 %b (paper: no)@."
    (Cylog.Precedence.data_complete g 5)
    (Cylog.Precedence.data_complete g 2);
  Format.printf "rules 3 and 4 parallelizable: %b (paper: yes)@."
    (Cylog.Precedence.parallelizable g 2 3)

(* ------------------------------------------------------------------ *)
(* Figure 16 / Theorems 3-4: Turing machines in CyLog                  *)
(* ------------------------------------------------------------------ *)

let run_figure16 () =
  section "Figure 16: CyLog rules implementing a Turing machine (Theorem 4)";
  List.iter
    (fun ((m : Turing.Machine.t), input) ->
      let direct =
        match Turing.Machine.run m ~input with
        | Ok (final, steps) ->
            Printf.sprintf "%s/%d steps" (Turing.Machine.tape_string final) steps
        | Error _ -> "timeout"
      in
      let cy = Turing.Cylog_tm.run m ~input in
      Format.printf
        "  %-18s input %-6s direct: %-14s CyLog: %s/%d engine steps — agree: %b@."
        m.name
        (String.concat "" input)
        direct
        (String.concat "" (List.map snd cy.tape))
        cy.engine_steps
        (Turing.Cylog_tm.agrees_with_direct m ~input))
    [ (Turing.Machine.successor, [ "1"; "1" ]);
      (Turing.Machine.binary_increment, [ "1"; "0"; "1"; "1" ]);
      (Turing.Machine.parity, [ "1"; "1"; "1" ]) ];
  Format.printf
    "@.interactive machine (class G_*, Theorem 3): dictating \"ab\" gives tape %S@."
    (Turing.Cylog_tm.Interactive.run ~answers:[ "a"; "b" ]);
  Format.printf "game classes: VE/I program %a, VRE/I program %a (paper: G_1 vs G_*)@."
    Game.Classes.pp
    (Game.Classes.classify
       (Tweetpecker.Programs.program Tweetpecker.Programs.VEI
          ~corpus:(Tweets.Generator.generate ~seed:1 2)
          ~workers:[ "w1" ]))
    Game.Classes.pp
    (Game.Classes.classify
       (Tweetpecker.Programs.program Tweetpecker.Programs.VREI
          ~corpus:(Tweets.Generator.generate ~seed:1 2)
          ~workers:[ "w1" ]))

(* ------------------------------------------------------------------ *)
(* Theorems 1 and 2                                                    *)
(* ------------------------------------------------------------------ *)

let run_theorems () =
  section "Theorems 1 (data quality) and 2 (termination) on the VRE/I run";
  let o = Lazy.force vrei in
  let t1 = Tweetpecker.Analysis.theorem1 o in
  Format.printf "Theorem 1: rational workers enter correct values and rules@.";
  Format.printf "  value entries matching ground truth: %.1f%%@."
    (100.0 *. t1.value_correct_rate);
  (match t1.rule_avg_confidence with
  | Some c -> Format.printf "  average rule confidence:             %.1f%%@." (100.0 *. c)
  | None -> ());
  let dominant = Tweetpecker.Analysis.figure10_expected ~accuracy:0.9 in
  Format.printf "  game-tree expectation: correct value %+.2f vs incorrect %+.2f;@."
    (List.assoc "enter correct value" dominant)
    (List.assoc "enter incorrect value" dominant);
  Format.printf "                         good rule %+.2f vs bad rule %+.2f@."
    (List.assoc "enter good rule" dominant)
    (List.assoc "enter bad rule" dominant);
  let t2 = Tweetpecker.Analysis.theorem2 o in
  Format.printf "@.Theorem 2: VRE/I terminates on a finite tweet set@.";
  Format.printf "  run terminated: %b@." t2.terminated;
  Format.printf "  extraction rules entered (finite): %d@." t2.rules_finite;
  match t2.last_rule_entry_progress with
  | Some p ->
      Format.printf "  last rule entered at completion %.2f (workers stop entering rules)@." p
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out                       *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_ablations () =
  section "Ablation 1: seminaive delta evaluation vs naive rescan";
  let small = Tweets.Generator.generate ~seed:3 60 in
  let program =
    Tweetpecker.Programs.program Tweetpecker.Programs.VE ~corpus:small
      ~workers:[ "w1"; "w2"; "w3"; "w4"; "w5" ]
  in
  let drive engine =
    (* Machine-only driver: answer every pending open with a fixed value,
       which exercises the engine's join machinery deterministically. *)
    ignore (Cylog.Engine.run engine);
    let rec loop n =
      if n > 50_000 then ()
      else
        match Cylog.Engine.pending engine with
        | [] -> ()
        | o :: _ ->
            ignore
              (Cylog.Engine.supply engine o.id
                 ~worker:(Option.value o.asked ~default:(Reldb.Value.String "w"))
                 (List.map (fun a -> (a, Reldb.Value.String "v")) o.open_attrs));
            ignore (Cylog.Engine.run engine);
            loop (n + 1)
    in
    loop 0;
    Reldb.Database.total_tuples (Cylog.Engine.database engine)
  in
  let n1, t_delta = time (fun () -> drive (Cylog.Engine.load ~use_delta:true program)) in
  let n2, t_rescan = time (fun () -> drive (Cylog.Engine.load ~use_delta:false program)) in
  Format.printf "  delta:  %.2fs   rescan: %.2fs   speedup %.1fx   (same result: %b)@."
    t_delta t_rescan (t_rescan /. t_delta) (n1 = n2);

  section "Ablation 2: rational rule budget vs rule quality (VRE/I)";
  let corpus = Tweets.Generator.generate ~seed:11 150 in
  Format.printf "  %-8s %-14s %-12s %-10s@." "budget" "confidence(B)" "support(C)" "#rules";
  List.iter
    (fun budget ->
      let workers =
        Crowd.Worker.crowd (Crowd.Worker.rational ~rule_count:budget) 5
      in
      let o = Tweetpecker.Runner.run ~corpus ~workers Tweetpecker.Programs.VREI in
      Format.printf "  %-8d %-14s %-12s %-10d@." budget
        (match Tweetpecker.Metrics.row_b o with
        | Some b -> Printf.sprintf "%.1f%%" (100.0 *. b)
        | None -> "-")
        (match Tweetpecker.Metrics.row_c o with
        | Some c -> Printf.sprintf "%.2f%%" (100.0 *. c)
        | None -> "-")
        (List.length o.rules_entered))
    [ 1; 2; 4; 8 ];
  Format.printf
    "  (larger budgets force workers down the support-ordered rule list:@.";
  Format.printf
    "   support drops — the rational small-budget strategy is what drives row C)@.";

  section "Ablation 3: worker models (the paper's future-work axis)";
  Format.printf "  %-10s %-28s %-10s@." "workers" "row A (corr/incorr/neither)" "rounds";
  List.iter
    (fun (label, make) ->
      let workers = Crowd.Worker.crowd make 5 in
      let o = Tweetpecker.Runner.run ~corpus ~workers Tweetpecker.Programs.VEI in
      let q = Tweetpecker.Metrics.row_a o in
      Format.printf "  %-10s %5.1f / %4.1f / %4.1f %%        %-10d@." label
        (100.0 *. q.correct) (100.0 *. q.incorrect) (100.0 *. q.neither)
        o.sim.rounds)
    [ ("diligent", fun name -> Crowd.Worker.diligent name);
      ("sloppy", Crowd.Worker.sloppy) ];
  Format.printf
    "  (the incentive structure is fixed; data quality tracks worker accuracy,@.";
  Format.printf
    "   consistent with the paper's note that Theorem 1 does not bind lazy workers)@.";

  section "Ablation 4: agreement vs statistics-based aggregation";
  (* The paper: "CyLog can also be used to implement other techniques for
     improving the quality of task results, such as statistics-based
     ones." Same inputs, three aggregators, mixed-reliability crowd. *)
  let workers =
    Crowd.Worker.crowd Crowd.Worker.diligent 3
    @ [ Crowd.Worker.sloppy "s1"; Crowd.Worker.sloppy "s2" ]
  in
  let o = Tweetpecker.Runner.run ~corpus ~workers Tweetpecker.Programs.VEI in
  let cq = Tweetpecker.Aggregation.compare_methods o in
  Format.printf "  first-agreement (paper's mechanism): %.1f%%@."
    (100.0 *. cq.agreement_accuracy);
  Format.printf "  plurality voting:                    %.1f%%@."
    (100.0 *. cq.majority_accuracy);
  Format.printf "  Dawid-Skene EM (%2d iterations):      %.1f%%@." cq.em_iterations
    (100.0 *. cq.em_accuracy);
  Format.printf "  EM's reliability estimates: %s@."
    (String.concat ", "
       (List.map
          (fun (w, a) -> Printf.sprintf "%s %.2f" w a)
          cq.estimated_worker_accuracy))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

let bench_corpus = lazy (Tweets.Generator.generate ~seed:3 20)

let small_outcome =
  lazy (Tweetpecker.Runner.run ~corpus:(Lazy.force bench_corpus) Tweetpecker.Programs.VREI)

let micro_tests () =
  let open Bechamel in
  let corpus20 = Lazy.force bench_corpus in
  [ Test.make ~name:"table1/ve-20-tweets"
      (Staged.stage (fun () ->
           Tweetpecker.Runner.run ~corpus:corpus20 Tweetpecker.Programs.VE));
    Test.make ~name:"table1/vrei-20-tweets"
      (Staged.stage (fun () ->
           Tweetpecker.Runner.run ~corpus:corpus20 Tweetpecker.Programs.VREI));
    Test.make ~name:"figure4/pure-nash-5-terms"
      (Staged.stage (fun () ->
           Game.Matrix.pure_nash
             (Game.Matrix.coordination ~players:("A", "B")
                ~values:[ "a"; "b"; "c"; "d"; "e" ] ~reward:1.0)));
    Test.make ~name:"figure6/path-table"
      (Staged.stage (fun () ->
           let o = Lazy.force small_outcome in
           Cylog.Engine.game_instances o.engine "VREI"));
    Test.make ~name:"figure10/expected-payoffs"
      (Staged.stage (fun () -> Tweetpecker.Analysis.figure10_expected ~accuracy:0.9));
    Test.make ~name:"figure11/breakdown"
      (Staged.stage (fun () -> Tweetpecker.Analysis.figure11 (Lazy.force small_outcome)));
    Test.make ~name:"figure12/rule-entry-histogram"
      (Staged.stage (fun () -> Tweetpecker.Analysis.figure12 (Lazy.force small_outcome)));
    Test.make ~name:"figure13/engine-trace"
      (Staged.stage (fun () ->
           let engine = Cylog.Engine.load (Cylog.Parser.parse_exn figure13_src) in
           Cylog.Engine.run engine));
    Test.make ~name:"figure14/precedence-graph"
      (Staged.stage (fun () ->
           Cylog.Precedence.build (Cylog.Parser.parse_exn figure13_src).Cylog.Ast.statements));
    Test.make ~name:"figure16/turing-in-cylog"
      (Staged.stage (fun () -> Turing.Cylog_tm.run Turing.Machine.successor ~input:[ "1"; "1" ]));
    Test.make ~name:"theorems/game-classification"
      (Staged.stage (fun () ->
           Game.Classes.classify
             (Tweetpecker.Programs.program Tweetpecker.Programs.VREI
                ~corpus:(Tweets.Generator.generate ~seed:1 2)
                ~workers:[ "w1" ])));
    (* Substrate micro-benchmarks. *)
    Test.make ~name:"core/parse-ve-program"
      (Staged.stage
         (let src =
            Tweetpecker.Programs.source Tweetpecker.Programs.VE ~corpus:corpus20
              ~workers:[ "w1"; "w2" ]
          in
          fun () -> Cylog.Parser.parse_exn src));
    Test.make ~name:"core/regex-search"
      (Staged.stage
         (let re = Regex.Engine.compile_exn ~case_insensitive:true "rain|snow" in
          fun () -> Regex.Engine.search re "Morning in Sapporo: heavy snowfall. #tenki"));
    Test.make ~name:"core/natural-join-100x100"
      (Staged.stage
         (let mk n key =
            List.init n (fun i ->
                Reldb.Tuple.of_list
                  [ (key, Reldb.Value.Int (i mod 10)); ("v" ^ key, Reldb.Value.Int i) ])
          in
          let left = mk 100 "k" and right = mk 100 "k" in
          fun () -> Reldb.Ops.natural_join left right)) ]

let run_bench () =
  section "Bechamel micro-benchmarks (ns per run, OLS estimate)";
  (* Force shared fixtures outside the measured closures. *)
  ignore (Lazy.force bench_corpus);
  ignore (Lazy.force small_outcome);
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"cylog" (micro_tests ()))
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      Format.printf "  %-40s %14.0f ns/run   (r2 %.3f)@." name estimate r2)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Shared: telemetry snapshot embedded in every BENCH_*.json           *)
(* ------------------------------------------------------------------ *)

(* Each BENCH record carries the telemetry counters behind its headline
   numbers — plan-cache traffic, journal appends/fsyncs, delta-evaluation
   rounds — so a regression in the measured seconds can be traced to the
   mechanism without re-running under a sink. *)
let telemetry_snapshot_prefixes = [ "planner."; "journal."; "eval." ]

let telemetry_snapshot m =
  let keep k =
    List.exists
      (fun p ->
        String.length k >= String.length p
        && String.equal (String.sub k 0 (String.length p)) p)
      telemetry_snapshot_prefixes
  in
  let rows =
    List.sort compare
      (List.filter (fun (k, _) -> keep k) (Cylog.Telemetry.Metrics.counters m))
  in
  Printf.sprintf "{ %s }"
    (String.concat ", "
       (List.map
          (fun (k, v) ->
            Printf.sprintf "\"%s\": %d" (Cylog.Telemetry.json_escape k) v)
          rows))

(* The run's static budget certificate rides next to the telemetry in the
   artifact: a bound regression (a relation going unbounded, a task bound
   jumping) shows up in the JSON diff like a counter regression does. *)
let certificate_snapshot engine =
  match Cylog.Engine.certificate engine with
  | Some c -> Cylog.Analysis.certificate_json c
  | None -> "null"

(* ------------------------------------------------------------------ *)
(* Joins: cost-based planning + compound-key indexes, scaling study    *)
(* ------------------------------------------------------------------ *)

(* A chain join written in the worst order for left-to-right evaluation:
   the selective atom comes last. The planner flips it around; naive
   evaluation pays for the original order — in particular the seminaive
   discovery for a new [Edge2] row rescans the whole unbound [Edge1]
   prefix, because left-to-right order evaluates [Edge1] before the
   pinned row binds anything. Data at scale [s]: Edge1/Edge2 are chains
   of [40*s] rows joined on [y]; Target selects [2*s] of the [40*s]
   chain endpoints. Rows arrive one link per engine round — the
   incremental regime every crowd-driven program runs in — so naive
   evaluation is quadratic in the chain length while planned evaluation
   stays linear. *)
let joins_src =
  {|schema:
  Edge1(x, y);
  Edge2(y, z);
  Target(z);
  Out(x, z);

rules:
  J: Out(x, z) <- Edge1(x, y), Edge2(y, z), Target(z);
|}

type joins_run = {
  j_seconds : float;
  j_rows_scanned : int;
  j_steps : int;
  j_cache_hits : int;
  j_cache_misses : int;
  j_telemetry : string;
  j_certificate : string;
  j_out : Reldb.Tuple.t list;
  j_trace : (int * string option * (string * Reldb.Value.t) list * bool) list;
}

let joins_run ?(metrics = true) ~scale ~use_planner () =
  let n = 40 * scale and t = 2 * scale in
  let engine = Cylog.Engine.load ~use_planner (Cylog.Parser.parse_exn joins_src) in
  if not metrics then
    Cylog.Telemetry.Metrics.set_enabled (Cylog.Engine.metrics engine) false;
  let db = Cylog.Engine.database engine in
  let ins name fields =
    ignore
      (Reldb.Relation.insert
         (Reldb.Database.find_exn db name)
         (Reldb.Tuple.of_list (List.map (fun (a, v) -> (a, Reldb.Value.Int v)) fields)))
  in
  for i = 0 to t - 1 do
    ins "Target" [ ("z", (20 * i) + 3) ]
  done;
  Cylog.Eval.reset_rows_scanned ();
  let j_steps, j_seconds =
    time (fun () ->
        let steps = ref (fst (Cylog.Engine.run engine)) in
        for i = 0 to n - 1 do
          ins "Edge1" [ ("x", i); ("y", i) ];
          ins "Edge2" [ ("y", i); ("z", i) ];
          steps := !steps + fst (Cylog.Engine.run engine)
        done;
        !steps)
  in
  let j_rows_scanned = Cylog.Eval.rows_scanned () in
  let counter = Cylog.Telemetry.Metrics.counter (Cylog.Engine.metrics engine) in
  let j_cache_hits =
    counter "planner.rescan_cache.hits" + counter "planner.delta_cache.hits"
  in
  let j_cache_misses =
    counter "planner.rescan_cache.misses" + counter "planner.delta_cache.misses"
  in
  let j_out =
    List.sort compare (Reldb.Relation.tuples (Reldb.Database.find_exn db "Out"))
  in
  let j_trace =
    List.map
      (fun (e : Cylog.Engine.event) -> (e.statement, e.label, e.valuation, e.fired))
      (Cylog.Engine.events engine)
  in
  let j_telemetry = telemetry_snapshot (Cylog.Engine.metrics engine) in
  let j_certificate = certificate_snapshot engine in
  { j_seconds; j_rows_scanned; j_steps; j_cache_hits; j_cache_misses; j_telemetry;
    j_certificate; j_out; j_trace }

type joins_row = { scale : int; naive : joins_run; planned : joins_run }

let joins_row scale =
  { scale;
    naive = joins_run ~scale ~use_planner:false ();
    planned = joins_run ~scale ~use_planner:true () }

let joins_identical r =
  r.naive.j_out = r.planned.j_out && r.naive.j_trace = r.planned.j_trace

let pp_joins_row r =
  let speedup = r.naive.j_seconds /. Float.max 1e-9 r.planned.j_seconds in
  Format.printf
    "  %4dx  naive: %8.3fs %10d rows   planned: %8.3fs %10d rows   speedup %6.1fx  identical: %b@."
    r.scale r.naive.j_seconds r.naive.j_rows_scanned r.planned.j_seconds
    r.planned.j_rows_scanned speedup (joins_identical r);
  Format.printf
    "         plan cache  naive: %d hits / %d misses   planned: %d hits / %d misses@."
    r.naive.j_cache_hits r.naive.j_cache_misses r.planned.j_cache_hits
    r.planned.j_cache_misses

let joins_json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"joins\",\n";
  Buffer.add_string buf
    "  \"body\": \"Out(x, z) <- Edge1(x, y), Edge2(y, z), Target(z)\",\n";
  Buffer.add_string buf "  \"scales\": [\n";
  List.iteri
    (fun i r ->
      let run label (m : joins_run) =
        Printf.sprintf
          "      \"%s\": { \"seconds\": %.6f, \"rows_scanned\": %d, \"steps\": %d, \
           \"plan_cache_hits\": %d, \"plan_cache_misses\": %d, \"telemetry\": %s, \
           \"certificate\": %s }"
          label m.j_seconds m.j_rows_scanned m.j_steps m.j_cache_hits m.j_cache_misses
          m.j_telemetry m.j_certificate
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\n\
           \      \"scale\": %d, \"edge_rows\": %d, \"target_rows\": %d,\n\
            %s,\n\
            %s,\n\
           \      \"speedup_wall\": %.2f, \"speedup_rows_scanned\": %.2f,\n\
           \      \"identical_results\": %b\n\
           \    }%s\n"
           r.scale (40 * r.scale) (2 * r.scale) (run "naive" r.naive)
           (run "planned" r.planned)
           (r.naive.j_seconds /. Float.max 1e-9 r.planned.j_seconds)
           (float_of_int r.naive.j_rows_scanned
           /. Float.max 1.0 (float_of_int r.planned.j_rows_scanned))
           (joins_identical r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run_joins () =
  section "Joins: cost-based planning vs left-to-right evaluation";
  Format.printf "  body: Out(x, z) <- Edge1(x, y), Edge2(y, z), Target(z)@.";
  let rows = List.map joins_row [ 10; 100 ] in
  List.iter pp_joins_row rows;
  let out = open_out "BENCH_joins.json" in
  output_string out (joins_json rows);
  close_out out;
  Format.printf "  wrote BENCH_joins.json@."

let run_joins_smoke () =
  (* Tiny-scale planner regression gate, wired into [dune runtest] via the
     [bench-smoke] alias: identical results and no more scanned rows than
     the reference strategy, judged on the deterministic row counter
     rather than wall time. *)
  section "Joins smoke: planner differential at tiny scale";
  let r = joins_row 1 in
  pp_joins_row r;
  let ok_same = joins_identical r in
  let ok_rows = r.planned.j_rows_scanned <= r.naive.j_rows_scanned in
  if not ok_same then
    Format.printf "  FAIL: planned evaluation diverged from naive order@.";
  if not ok_rows then
    Format.printf "  FAIL: planned evaluation scanned more rows than naive@.";
  if not (ok_same && ok_rows) then exit 1;
  Format.printf "  ok: identical results, %d <= %d rows scanned@."
    r.planned.j_rows_scanned r.naive.j_rows_scanned

(* ------------------------------------------------------------------ *)
(* Incremental: per-supply latency under semi-naive vs naive           *)
(* ------------------------------------------------------------------ *)

(* The headline claim of differential evaluation: after preloading a
   large static relation, the cost of absorbing ONE new fact should
   depend on the fact's consequences, not on the database size. The
   campaign preloads [Log] with N rows, opens S labelling tasks, then
   supplies the answers one at a time, measuring each supply+fixpoint
   individually on the deterministic rows-scanned counter (and wall
   time, for the JSON record).

   Under semi-naive evaluation the new [Label] row is the pinned delta
   atom and the planner turns [Log] into an index probe: per-supply work
   is O(1) in N. The naive reference (rescan, left-to-right) re-reads
   [Log] end to end on every step: per-supply work is O(N), so doubling
   the preload doubles the latency. *)
let incremental_src =
  {|schema:
  Log(id, msg);
  Task(id);

rules:
  Q: Label(id, v)/open <- Task(id);
  J: Out(id, msg, v) <- Log(id, msg), Label(id, v);
|}

type inc_run = {
  i_preload : int;
  i_supplies : int;
  i_load_seconds : float;
  i_supply_seconds : float;  (** total across all supplies *)
  i_supply_rows : int;  (** total rows scanned across all supplies *)
  i_rows_first : int;
  i_rows_last : int;
  i_out : int;
  i_telemetry : string;
  i_certificate : string;
}

let incremental_run ~preload ~supplies ~semi () =
  let program = Cylog.Parser.parse_exn incremental_src in
  let engine =
    if semi then Cylog.Engine.load ~use_delta:true program
    else Cylog.Engine.load ~use_delta:false ~use_planner:false program
  in
  let db = Cylog.Engine.database engine in
  let ins name fields =
    ignore
      (Reldb.Relation.insert
         (Reldb.Database.find_exn db name)
         (Reldb.Tuple.of_list (List.map (fun (a, v) -> (a, Reldb.Value.Int v)) fields)))
  in
  for i = 0 to preload - 1 do
    ins "Log" [ ("id", i); ("msg", i) ]
  done;
  for i = 0 to supplies - 1 do
    ins "Task" [ ("id", i) ]
  done;
  let _, i_load_seconds = time (fun () -> Cylog.Engine.run engine) in
  let pending = Cylog.Engine.pending engine in
  let total_rows = ref 0 and total_seconds = ref 0.0 in
  let rows_first = ref 0 and rows_last = ref 0 in
  List.iteri
    (fun i (o : Cylog.Engine.open_tuple) ->
      Cylog.Eval.reset_rows_scanned ();
      let _, seconds =
        time (fun () ->
            (match
               Cylog.Engine.supply engine o.id ~worker:(Reldb.Value.String "w")
                 [ ("v", Reldb.Value.Int i) ]
             with
            | Ok _ -> ()
            | Error e -> failwith (Cylog.Engine.reject_to_string e));
            Cylog.Engine.run engine)
      in
      let rows = Cylog.Eval.rows_scanned () in
      total_rows := !total_rows + rows;
      total_seconds := !total_seconds +. seconds;
      if i = 0 then rows_first := rows;
      rows_last := rows)
    pending;
  {
    i_preload = preload;
    i_supplies = List.length pending;
    i_load_seconds;
    i_supply_seconds = !total_seconds;
    i_supply_rows = !total_rows;
    i_rows_first = !rows_first;
    i_rows_last = !rows_last;
    i_out =
      (match Reldb.Database.find db "Out" with
      | Some rel -> Reldb.Relation.cardinal rel
      | None -> 0);
    i_telemetry = telemetry_snapshot (Cylog.Engine.metrics engine);
    i_certificate = certificate_snapshot engine;
  }

let inc_mean_rows r = float_of_int r.i_supply_rows /. float_of_int (max 1 r.i_supplies)
let inc_mean_seconds r = r.i_supply_seconds /. float_of_int (max 1 r.i_supplies)

type inc_row = { i_scale : int; i_semi : inc_run; i_naive : inc_run }

let inc_row ~supplies preload =
  { i_scale = preload;
    i_semi = incremental_run ~preload ~supplies ~semi:true ();
    i_naive = incremental_run ~preload ~supplies ~semi:false () }

let pp_inc_row r =
  Format.printf
    "  preload %7d   semi: %8.1f rows/supply (%.6fs)   naive: %10.1f rows/supply \
     (%.6fs)   advantage %8.1fx   same Out: %b@."
    r.i_scale (inc_mean_rows r.i_semi) (inc_mean_seconds r.i_semi)
    (inc_mean_rows r.i_naive) (inc_mean_seconds r.i_naive)
    (inc_mean_rows r.i_naive /. Float.max 1.0 (inc_mean_rows r.i_semi))
    (r.i_semi.i_out = r.i_naive.i_out)

(* Growth of mean per-supply rows as the preload scales from the first
   row to the last: the flat-latency verdict. *)
let inc_ratio pick rows =
  match (rows, List.rev rows) with
  | small :: _, big :: _ -> inc_mean_rows (pick big) /. Float.max 1.0 (inc_mean_rows (pick small))
  | _ -> nan

let incremental_json ~supplies rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"incremental\",\n";
  Buffer.add_string buf
    "  \"body\": \"Out(id, msg, v) <- Log(id, msg), Label(id, v)\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"supplies\": %d,\n  \"preloads\": [\n" supplies);
  List.iteri
    (fun i r ->
      let run label (m : inc_run) =
        Printf.sprintf
          "      \"%s\": { \"load_seconds\": %.6f, \"supply_seconds_total\": %.6f, \
           \"supply_rows_total\": %d, \"rows_per_supply_mean\": %.2f, \
           \"seconds_per_supply_mean\": %.8f, \"rows_first_supply\": %d, \
           \"rows_last_supply\": %d, \"out_rows\": %d, \"telemetry\": %s, \
           \"certificate\": %s }"
          label m.i_load_seconds m.i_supply_seconds m.i_supply_rows (inc_mean_rows m)
          (inc_mean_seconds m) m.i_rows_first m.i_rows_last m.i_out m.i_telemetry
          m.i_certificate
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\n\
           \      \"preload\": %d,\n\
            %s,\n\
            %s,\n\
           \      \"naive_vs_semi_rows\": %.2f,\n\
           \      \"identical_results\": %b\n\
           \    }%s\n"
           r.i_scale
           (run "semi_naive" r.i_semi)
           (run "naive" r.i_naive)
           (inc_mean_rows r.i_naive /. Float.max 1.0 (inc_mean_rows r.i_semi))
           (r.i_semi.i_out = r.i_naive.i_out)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"semi_naive_growth_across_preloads\": %.3f,\n\
       \  \"naive_growth_across_preloads\": %.3f,\n\
       \  \"flat_gate\": { \"semi_naive_max_growth\": 1.5, \"passed\": %b }\n"
       (inc_ratio (fun r -> r.i_semi) rows)
       (inc_ratio (fun r -> r.i_naive) rows)
       (inc_ratio (fun r -> r.i_semi) rows <= 1.5));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let inc_check rows =
  let failures = ref [] in
  let check what ok = if not ok then failures := what :: !failures in
  List.iter
    (fun r ->
      check
        (Printf.sprintf "results diverge at preload %d" r.i_scale)
        (r.i_semi.i_out = r.i_naive.i_out && r.i_semi.i_out > 0))
    rows;
  check "semi-naive per-supply work grew with the preload (not flat)"
    (inc_ratio (fun r -> r.i_semi) rows <= 1.5);
  check "naive per-supply work did not grow with the preload (no contrast)"
    (inc_ratio (fun r -> r.i_naive) rows >= 2.0);
  List.rev !failures

let run_incremental () =
  section "Incremental: per-supply cost after a bulk preload (semi-naive vs naive)";
  Format.printf "  body: Out(id, msg, v) <- Log(id, msg), Label(id, v)@.";
  let supplies = 1_000 in
  let rows = List.map (inc_row ~supplies) [ 10_000; 100_000 ] in
  List.iter pp_inc_row rows;
  Format.printf
    "  growth of rows/supply across preloads: semi-naive %.2fx, naive %.2fx@."
    (inc_ratio (fun r -> r.i_semi) rows)
    (inc_ratio (fun r -> r.i_naive) rows);
  let out = open_out "BENCH_incremental.json" in
  output_string out (incremental_json ~supplies rows);
  close_out out;
  Format.printf "  wrote BENCH_incremental.json@.";
  List.iter (fun what -> Format.printf "  NOTE: %s@." what) (inc_check rows)

let run_incremental_smoke () =
  (* Scaled-down flat-latency gate, wired into [dune runtest] via the
     [incremental-smoke] alias and judged on the deterministic row
     counter: per-supply work must stay flat (<= 1.5x) for semi-naive
     while the naive reference at least doubles across a 5x preload. *)
  section "Incremental smoke: flat per-supply latency at small scale";
  let rows = List.map (inc_row ~supplies:50) [ 1_000; 5_000 ] in
  List.iter pp_inc_row rows;
  match inc_check rows with
  | [] ->
      Format.printf
        "  ok: semi-naive flat (%.2fx growth), naive degrades (%.2fx growth)@."
        (inc_ratio (fun r -> r.i_semi) rows)
        (inc_ratio (fun r -> r.i_naive) rows)
  | failures ->
      List.iter (fun what -> Format.printf "  FAIL: %s@." what) failures;
      exit 1

(* ------------------------------------------------------------------ *)
(* Quality: adaptive quorum vs fixed redundancy                        *)
(* ------------------------------------------------------------------ *)

(* A labelling campaign with planted ground truth and undesignated opens
   (so the quorum runtime applies): N items, each awaiting one label from
   a crowd of four diligent and one sloppy worker driven by the quality
   router. The same seeded campaign runs under Fixed k=2, Fixed k=3 and
   the Adaptive policy; the claim under test is that Adaptive matches or
   beats Fixed k=3 on accuracy while consuming fewer answers, because it
   stops early once the reliability-weighted posterior clears tau and
   only escalates on genuinely contested items. *)

let quality_labels = [| "cat"; "dog"; "bird" |]
let quality_truth_of id = quality_labels.(id mod Array.length quality_labels)

let quality_src n =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "rules:\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  Item(id:%d);\n" i)
  done;
  Buffer.add_string buf "  Q: LabelOf(id, label)/open <- Item(id);\n";
  Buffer.contents buf

type quality_run = {
  q_label : string;
  q_items : int;
  q_resolved : int;
  q_correct : int;
  q_answers : int;  (** accepted answers — the campaign's paid question count *)
  q_early_stopped : int;
  q_escalated : int;
  q_rounds : int;
  q_reliability : (string * float * int) list;
  q_telemetry : string;
  q_certificate : string;
}

let quality_campaign ~label ~seed ~items ?quorum ?policy () =
  let engine = Cylog.Engine.load (Cylog.Parser.parse_exn (quality_src items)) in
  let workers =
    Crowd.Worker.crowd Crowd.Worker.diligent 4 @ [ Crowd.Worker.sloppy "s1" ]
  in
  let sim_workers =
    List.map
      (fun (w : Crowd.Worker.profile) -> (Reldb.Value.String w.name, w))
      workers
  in
  let truth (o : Cylog.Engine.open_tuple) =
    let id =
      match Reldb.Tuple.get_or_null o.bound "id" with
      | Reldb.Value.Int i -> i
      | _ -> 0
    in
    [ ("label", Reldb.Value.String (quality_truth_of id)) ]
  in
  let outcome =
    Crowd.Simulator.run_routed ~seed ?quorum ?policy ~truth ~workers:sim_workers
      engine
  in
  let labelled =
    match Reldb.Database.find (Cylog.Engine.database engine) "LabelOf" with
    | None -> []
    | Some rel -> Reldb.Relation.tuples rel
  in
  let resolved, correct =
    List.fold_left
      (fun (r, c) t ->
        match
          (Reldb.Tuple.get_or_null t "id", Reldb.Tuple.get_or_null t "label")
        with
        | Reldb.Value.Int id, Reldb.Value.String l ->
            (r + 1, if String.equal l (quality_truth_of id) then c + 1 else c)
        | _ -> (r, c))
      (0, 0) labelled
  in
  let counter = Cylog.Telemetry.Metrics.counter (Cylog.Engine.metrics engine) in
  {
    q_label = label;
    q_items = items;
    q_resolved = resolved;
    q_correct = correct;
    q_answers = counter "answers.accepted";
    q_early_stopped = counter "quorum.early_stopped";
    q_escalated = counter "quorum.escalated";
    q_rounds = outcome.rounds;
    q_reliability = Cylog.Engine.reliability_table engine;
    q_telemetry = telemetry_snapshot (Cylog.Engine.metrics engine);
    q_certificate = certificate_snapshot engine;
  }

let quality_policy =
  Cylog.Engine.Adaptive { tau = 0.9; min_votes = 2; max_votes = 5 }

let quality_runs ~seed ~items =
  [ quality_campaign ~label:"fixed-k2" ~seed ~items ~quorum:2 ();
    quality_campaign ~label:"fixed-k3" ~seed ~items ~quorum:3 ();
    quality_campaign ~label:"adaptive" ~seed ~items ~policy:quality_policy () ]

let quality_accuracy r =
  float_of_int r.q_correct /. float_of_int (max 1 r.q_items)

let pp_quality_run r =
  Format.printf
    "  %-10s resolved %d/%d   accuracy %5.1f%%   answers %4d   early-stop %d   \
     escalated %d   rounds %d@."
    r.q_label r.q_resolved r.q_items
    (100.0 *. quality_accuracy r)
    r.q_answers r.q_early_stopped r.q_escalated r.q_rounds

let quality_json ~seed runs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"quality\",\n";
  Buffer.add_string buf
    "  \"crowd\": \"4 diligent + 1 sloppy, router-driven assignment\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string buf
    "  \"adaptive\": { \"tau\": 0.9, \"min_votes\": 2, \"max_votes\": 5 },\n";
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"policy\": \"%s\", \"items\": %d, \"resolved\": %d, \
            \"correct\": %d, \"accuracy\": %.4f, \"answers\": %d, \
            \"early_stopped\": %d, \"escalated\": %d, \"rounds\": %d,\n\
           \      \"reliability\": { %s },\n\
           \      \"telemetry\": %s,\n\
           \      \"certificate\": %s }%s\n"
           r.q_label r.q_items r.q_resolved r.q_correct (quality_accuracy r)
           r.q_answers r.q_early_stopped r.q_escalated r.q_rounds
           (String.concat ", "
              (List.map
                 (fun (w, rel, n) ->
                   Printf.sprintf "\"%s\": { \"mean\": %.4f, \"observations\": %d }"
                     w rel n)
                 r.q_reliability))
           r.q_telemetry r.q_certificate
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let quality_check runs =
  let find l = List.find (fun r -> r.q_label = l) runs in
  let fixed3 = find "fixed-k3" and adaptive = find "adaptive" in
  let failures = ref [] in
  let check what ok = if not ok then failures := what :: !failures in
  check "adaptive left tasks unresolved" (adaptive.q_resolved = adaptive.q_items);
  check "adaptive accuracy below fixed k=3"
    (quality_accuracy adaptive >= quality_accuracy fixed3);
  check "adaptive consumed no fewer answers than fixed k=3"
    (adaptive.q_answers < fixed3.q_answers);
  check "adaptive never early-stopped" (adaptive.q_early_stopped > 0);
  List.rev !failures

let run_quality () =
  section "Quality: adaptive early stopping vs fixed redundancy";
  let seed = 7 and items = 60 in
  let runs = quality_runs ~seed ~items in
  List.iter pp_quality_run runs;
  let out = open_out "BENCH_quality.json" in
  output_string out (quality_json ~seed runs);
  close_out out;
  Format.printf "  wrote BENCH_quality.json@.";
  List.iter (fun what -> Format.printf "  NOTE: %s@." what) (quality_check runs)

let run_quality_smoke () =
  (* The adaptive-beats-fixed gate, wired into [dune runtest] via the
     [quality-smoke] alias: the same seeded campaign as [run_quality],
     judged on deterministic counters. *)
  section "Quality smoke: adaptive vs fixed k=3 on the seeded campaign";
  let runs = quality_runs ~seed:7 ~items:60 in
  List.iter pp_quality_run runs;
  match quality_check runs with
  | [] -> Format.printf "  ok: all tasks resolved, accuracy >= fixed k=3, fewer answers@."
  | failures ->
      List.iter (fun what -> Format.printf "  FAIL: %s@." what) failures;
      exit 1

(* ------------------------------------------------------------------ *)
(* Durability: WAL append throughput and O(live-state) recovery        *)
(* ------------------------------------------------------------------ *)

(* Two measurements back docs/DURABILITY.md's claims: (a) the price of
   the fsync policy — append throughput under Always / Every_n / Never,
   on real files so Always pays real fsyncs; (b) recovery cost against
   journal length with and without compaction — compaction folds the
   resolved state into a snapshot segment, so the records replayed at
   recovery (the deterministic proxy for restore cost) stay bounded by
   [compact_every] instead of growing with the campaign. *)

let dur_dir = "BENCH_journal.dir"

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> Cylog.Storage.Posix.delete (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let dur_policy_name = function
  | Cylog.Journal.Always -> "always"
  | Cylog.Journal.Every_n n -> Printf.sprintf "every-%d" n
  | Cylog.Journal.Never -> "never"

type dur_policy_run = {
  d_policy : string;
  d_appends : int;
  d_fsyncs : int;
  d_rotations : int;
  d_seconds : float;
}

let dur_throughput ?sim ~count fsync =
  let storage = Option.map Cylog.Storage.Sim.storage sim in
  if sim = None then rm_rf dur_dir;
  let config =
    { Cylog.Journal.default_config with fsync; segment_bytes = 1 lsl 16 }
  in
  let payload = String.make 128 'x' in
  let j = Cylog.Journal.create ~config ?storage ~genesis:"bench" dur_dir in
  let (), d_seconds =
    time (fun () ->
        for _ = 1 to count do
          Cylog.Journal.append j payload
        done;
        Cylog.Journal.close j)
  in
  let st = Cylog.Journal.stats j in
  if sim = None then rm_rf dur_dir;
  {
    d_policy = dur_policy_name fsync;
    d_appends = st.Cylog.Journal.appends;
    d_fsyncs = st.Cylog.Journal.fsyncs;
    d_rotations = st.Cylog.Journal.rotations;
    d_seconds;
  }

type dur_recovery_run = {
  r_tasks : int;
  r_compacted : bool;
  r_records_replayed : int;
  r_base_segment : int;
  r_segments_scanned : int;
  r_write_seconds : float;
  r_recover_seconds : float;
  r_identical : bool;
  r_telemetry : string;
  r_certificate : string;
}

(* A labelling campaign of [tasks] journaled supplies: bulk state goes in
   before the journal starts (the genesis snapshot carries it), then each
   answer is one durable WAL entry. Recovery is measured cold. *)
let dur_src = "schema:\n  Task(id);\nrules:\n  Q: LabelOf(id, v)/open <- Task(id);\n"

let dur_campaign ?sim ~tasks ~compact () =
  let storage = Option.map Cylog.Storage.Sim.storage sim in
  let engine = Cylog.Engine.load (Cylog.Parser.parse_exn dur_src) in
  let db = Cylog.Engine.database engine in
  for i = 0 to tasks - 1 do
    ignore
      (Reldb.Relation.insert
         (Reldb.Database.find_exn db "Task")
         (Reldb.Tuple.of_list [ ("id", Reldb.Value.Int i) ]))
  done;
  ignore (Cylog.Engine.run engine);
  let config =
    { Cylog.Journal.default_config with
      segment_bytes = 1 lsl 15;
      compact_every = (if compact then Some 64 else None) }
  in
  if sim = None then rm_rf dur_dir;
  Cylog.Engine.journal_start ~config ?storage engine dur_dir;
  let (), r_write_seconds =
    time (fun () ->
        List.iter
          (fun (o : Cylog.Engine.open_tuple) ->
            (match
               Cylog.Engine.supply engine o.id ~worker:(Reldb.Value.String "w")
                 [ ("v", Reldb.Value.Int (o.id mod 3)) ]
             with
            | Ok _ -> ()
            | Error e -> failwith (Cylog.Engine.reject_to_string e));
            ignore (Cylog.Engine.run engine))
          (Cylog.Engine.pending engine);
        Option.iter Cylog.Journal.close (Cylog.Engine.durable_journal engine))
  in
  let (recovered, stats), r_recover_seconds =
    time (fun () -> Cylog.Engine.recover ~config ?storage dur_dir)
  in
  let r_identical =
    Cylog.Engine.journal_dump recovered = Cylog.Engine.journal_dump engine
  in
  if sim = None then rm_rf dur_dir;
  {
    r_tasks = tasks;
    r_compacted = compact;
    r_records_replayed = stats.Cylog.Engine.records_replayed;
    r_base_segment = stats.Cylog.Engine.base_segment;
    r_segments_scanned = stats.Cylog.Engine.segments_scanned;
    r_write_seconds;
    r_recover_seconds;
    r_identical;
    r_telemetry = telemetry_snapshot (Cylog.Engine.metrics engine);
    r_certificate = certificate_snapshot engine;
  }

let pp_dur_policy_run r =
  Format.printf
    "  %-10s %6d appends in %8.4fs  (%10.0f appends/s)   %6d fsyncs   %d rotations@."
    r.d_policy r.d_appends r.d_seconds
    (float_of_int r.d_appends /. Float.max 1e-9 r.d_seconds)
    r.d_fsyncs r.d_rotations

let pp_dur_recovery_run r =
  Format.printf
    "  %5d tasks  %-14s  write %8.4fs   recover %8.4fs   %5d records replayed   \
     base seg %d / %d scanned   identical: %b@."
    r.r_tasks
    (if r.r_compacted then "compacted" else "no-compaction")
    r.r_write_seconds r.r_recover_seconds r.r_records_replayed r.r_base_segment
    r.r_segments_scanned r.r_identical

let durability_json policies recoveries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"durability\",\n";
  Buffer.add_string buf "  \"payload_bytes\": 128,\n  \"fsync_policies\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"policy\": \"%s\", \"appends\": %d, \"fsyncs\": %d, \
            \"rotations\": %d, \"seconds\": %.6f, \"appends_per_sec\": %.0f }%s\n"
           r.d_policy r.d_appends r.d_fsyncs r.d_rotations r.d_seconds
           (float_of_int r.d_appends /. Float.max 1e-9 r.d_seconds)
           (if i = List.length policies - 1 then "" else ",")))
    policies;
  Buffer.add_string buf "  ],\n  \"recovery\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"tasks\": %d, \"compacted\": %b, \"records_replayed\": %d, \
            \"base_segment\": %d, \"segments_scanned\": %d, \
            \"write_seconds\": %.6f, \"recover_seconds\": %.6f, \
            \"identical_results\": %b, \"telemetry\": %s, \"certificate\": %s }%s\n"
           r.r_tasks r.r_compacted r.r_records_replayed r.r_base_segment
           r.r_segments_scanned r.r_write_seconds r.r_recover_seconds r.r_identical
           r.r_telemetry r.r_certificate
           (if i = List.length recoveries - 1 then "" else ",")))
    recoveries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* The deterministic gates: fsync counts must order with the policies,
   recovery must be exact, and compaction must bound the replay length
   (the O(live-state) restore claim, judged on records replayed). *)
let dur_check policies recoveries =
  let failures = ref [] in
  let check what ok = if not ok then failures := what :: !failures in
  let fsyncs name =
    (List.find (fun r -> r.d_policy = name) policies).d_fsyncs
  in
  check "fsync counts do not order always > every-8 > never"
    (fsyncs "always" > fsyncs "every-8" && fsyncs "every-8" > fsyncs "never");
  List.iter
    (fun r ->
      check
        (Printf.sprintf "recovery diverged (%d tasks, compacted %b)" r.r_tasks
           r.r_compacted)
        r.r_identical)
    recoveries;
  List.iter
    (fun r ->
      match
        List.find_opt
          (fun c -> c.r_compacted && c.r_tasks = r.r_tasks)
          recoveries
      with
      | Some c ->
          check
            (Printf.sprintf
               "compaction did not bound the replay at %d tasks (%d vs %d records)"
               r.r_tasks c.r_records_replayed r.r_records_replayed)
            (2 * c.r_records_replayed < r.r_records_replayed);
          check
            (Printf.sprintf "compaction never advanced the base at %d tasks" r.r_tasks)
            (c.r_base_segment > 0)
      | None -> ())
    (List.filter (fun r -> not r.r_compacted) recoveries);
  List.rev !failures

let run_durability () =
  section "Durability: WAL append throughput per fsync policy (POSIX files)";
  let policies =
    List.map
      (dur_throughput ~count:1500)
      [ Cylog.Journal.Always; Cylog.Journal.Every_n 8; Cylog.Journal.Never ]
  in
  List.iter pp_dur_policy_run policies;
  section "Durability: recovery cost vs journal length (compaction = O(live state))";
  let recoveries =
    List.concat_map
      (fun tasks ->
        [ dur_campaign ~tasks ~compact:false (); dur_campaign ~tasks ~compact:true () ])
      [ 300; 1200 ]
  in
  List.iter pp_dur_recovery_run recoveries;
  let out = open_out "BENCH_durability.json" in
  output_string out (durability_json policies recoveries);
  close_out out;
  Format.printf "  wrote BENCH_durability.json@.";
  List.iter (fun what -> Format.printf "  NOTE: %s@." what) (dur_check policies recoveries)

let run_durability_smoke () =
  (* Scaled-down durability gate, wired into [dune runtest] via the
     [durability-smoke] alias. In-memory storage keeps it fast and
     deterministic: the gates judge fsync counters and records replayed,
     not wall time. *)
  section "Durability smoke: fsync policy counters and compacted recovery";
  let policies =
    List.map
      (fun p -> dur_throughput ~sim:(Cylog.Storage.Sim.create ()) ~count:300 p)
      [ Cylog.Journal.Always; Cylog.Journal.Every_n 8; Cylog.Journal.Never ]
  in
  List.iter pp_dur_policy_run policies;
  let recoveries =
    List.concat_map
      (fun compact ->
        [ dur_campaign ~sim:(Cylog.Storage.Sim.create ()) ~tasks:150 ~compact () ])
      [ false; true ]
  in
  List.iter pp_dur_recovery_run recoveries;
  match dur_check policies recoveries with
  | [] ->
      Format.printf
        "  ok: fsync counters order with the policies, recovery exact, compaction \
         bounds the replay@."
  | failures ->
      List.iter (fun what -> Format.printf "  FAIL: %s@." what) failures;
      exit 1

(* ------------------------------------------------------------------ *)
(* Monitor: campaign observability — latencies, series, watchdogs      *)
(* ------------------------------------------------------------------ *)

(* A faulted adaptive labelling campaign under the campaign monitor:
   [items] undesignated tasks, five workers wrapped in the drop fault
   profile, lease runtime on, adaptive quorum, one monitor sample per
   round. The budget-capped variant arms [max_budget] and must stop via
   the journaled [Alert_fired] within one round of the crossing; the
   journaled variant (Sim storage) is recovered afterwards and the
   monitor recounted from the recovered event log. *)

let monitor_policy engine ~worker:_ ~rng ~round:_ =
  match Cylog.Engine.pending engine with
  | [] -> Crowd.Simulator.Pass
  | pending ->
      let o = List.nth pending (Random.State.int rng (List.length pending)) in
      let label = [| "cat"; "dog"; "bird" |].(Random.State.int rng 3) in
      Crowd.Simulator.Answer
        ( o.Cylog.Engine.id,
          [ ("label", Reldb.Value.String label) ],
          Crowd.Simulator.Enter_value )

let monitor_campaign ?budget ?store ?(monitored = true) ~seed ~items () =
  let engine = Cylog.Engine.load (Cylog.Parser.parse_exn (quality_src items)) in
  (match store with
  | Some s ->
      Cylog.Engine.journal_start
        ~storage:(Cylog.Storage.Sim.storage s)
        engine "journal"
  | None -> ());
  let config = { Cylog.Monitor.default_config with max_budget = budget } in
  let workers =
    List.map
      (fun w -> (Reldb.Value.String w, monitor_policy))
      [ "w1"; "w2"; "w3"; "w4"; "w5" ]
  in
  let workers =
    Crowd.Faults.inject ~seed (List.assoc "drop" Crowd.Faults.profiles) workers
  in
  let outcome =
    Crowd.Simulator.run ~seed ~max_rounds:400 ~lease:Cylog.Lease.default_config
      ~policy:quality_policy
      ?monitor:(if monitored then Some config else None)
      ~stop:(fun e ->
        Cylog.Engine.pending e = [] && Cylog.Engine.run e |> snd = `Quiescent)
      ~workers engine
  in
  (engine, config, outcome)

let stop_name = function
  | `Stopped -> "stopped"
  | `Stalled -> "stalled"
  | `Max_rounds -> "max-rounds"
  | `Alert _ -> "alert"

let monitor_e2e mon p =
  match List.assoc_opt "lifecycle.end_to_end" (Cylog.Monitor.histograms mon) with
  | Some h -> Cylog.Telemetry.Metrics.quantile h p
  | None -> 0.0

let budget_firings mon =
  List.filter
    (fun (f : Cylog.Monitor.firing) ->
      match f.alert with Cylog.Event.Budget_exceeded _ -> true | _ -> false)
    (Cylog.Monitor.firings mon)

(* First series round whose spent exceeds the budget — the watchdog must
   have fired on that very sample (it checks before the point is pushed),
   so the campaign stops within one round of the crossing. *)
let budget_crossing mon budget =
  List.find_map
    (fun (p : Cylog.Monitor.point) ->
      if p.p_spent > budget then Some p.p_round else None)
    (Cylog.Monitor.points mon)

type monitor_checks = {
  c_fired_once : bool;
  c_stopped_via_alert : bool;
  c_within_one_round : bool;
  c_recount : bool;
  c_recovered : bool;
}

let monitor_budget_run ~seed ~items ~budget =
  let store = Cylog.Storage.Sim.create () in
  let engine, config, outcome = monitor_campaign ~budget ~store ~seed ~items () in
  Option.iter Cylog.Journal.close (Cylog.Engine.durable_journal engine);
  let mon = Option.get (Cylog.Engine.monitor engine) in
  let live = Cylog.Monitor.view mon in
  let recount =
    Cylog.Monitor.view (Cylog.Monitor.of_events config (Cylog.Engine.events engine))
  in
  let recovered, _ =
    Cylog.Engine.recover ~storage:(Cylog.Storage.Sim.storage store) "journal"
  in
  let recovered_view =
    match Cylog.Engine.monitor recovered with
    | Some m -> Some (Cylog.Monitor.view m)
    | None -> None
  in
  let firings = budget_firings mon in
  let checks =
    {
      c_fired_once = List.length firings = 1;
      c_stopped_via_alert =
        (match outcome.stop_reason with `Alert _ -> true | _ -> false);
      c_within_one_round =
        (match (firings, budget_crossing mon budget) with
        | [ f ], Some crossing -> f.at_round <= crossing + 1
        | _ -> false);
      c_recount = recount = live;
      c_recovered = recovered_view = Some live;
    }
  in
  (engine, mon, outcome, checks)

let monitor_check_failures c =
  List.filter_map
    (fun (what, ok) -> if ok then None else Some what)
    [ ("budget alert did not fire exactly once", c.c_fired_once);
      ("campaign did not stop via the alert", c.c_stopped_via_alert);
      ("alert fired more than one round after the budget crossing",
       c.c_within_one_round);
      ("event-log recount disagrees with the live monitor", c.c_recount);
      ("recovered monitor disagrees with the live monitor", c.c_recovered) ]

let monitor_json_report ~seed ~items ~budget (engine, mon, outcome)
    (engine_b, mon_b, outcome_b, checks) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"benchmark\": \"monitor\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d, \"items\": %d,\n" seed items);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"campaign\": {\n\
       \    \"rounds\": %d, \"stop\": \"%s\",\n\
       \    \"e2e_p50\": %.2f, \"e2e_p95\": %.2f, \"e2e_p99\": %.2f,\n\
       \    \"monitor\": %s,\n\
       \    \"telemetry\": %s,\n\
       \    \"certificate\": %s\n\
       \  },\n"
       outcome.Crowd.Simulator.rounds
       (stop_name outcome.Crowd.Simulator.stop_reason)
       (monitor_e2e mon 0.5) (monitor_e2e mon 0.95) (monitor_e2e mon 0.99)
       (Cylog.Monitor.to_json mon)
       (telemetry_snapshot (Cylog.Engine.metrics engine))
       (certificate_snapshot engine));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"budget_capped\": {\n\
       \    \"budget\": %d, \"rounds\": %d, \"stop\": \"%s\",\n\
       \    \"crossing_round\": %d, \"alert_round\": %d,\n\
       \    \"alert_fired_once\": %b, \"stopped_via_alert\": %b, \
        \"stopped_within_one_round\": %b,\n\
       \    \"recount_agrees\": %b, \"recovered_agrees\": %b,\n\
       \    \"monitor\": %s,\n\
       \    \"telemetry\": %s,\n\
       \    \"certificate\": %s\n\
       \  }\n}\n"
       budget outcome_b.Crowd.Simulator.rounds
       (stop_name outcome_b.Crowd.Simulator.stop_reason)
       (Option.value (budget_crossing mon_b budget) ~default:(-1))
       (match budget_firings mon_b with
       | f :: _ -> f.at_round
       | [] -> -1)
       checks.c_fired_once checks.c_stopped_via_alert checks.c_within_one_round
       checks.c_recount checks.c_recovered
       (Cylog.Monitor.to_json mon_b)
       (telemetry_snapshot (Cylog.Engine.metrics engine_b))
       (certificate_snapshot engine_b));
  Buffer.contents buf

let pp_monitor_run label mon (outcome : Crowd.Simulator.outcome) =
  Format.printf
    "  %-14s %3d rounds (%s)   %3d samples   spent %4d   answers %4d   \
     e2e p50/p95/p99 %.1f/%.1f/%.1f   alerts %d@."
    label outcome.rounds (stop_name outcome.stop_reason)
    (Cylog.Monitor.samples mon) (Cylog.Monitor.spent mon)
    (Cylog.Monitor.answers mon) (monitor_e2e mon 0.5) (monitor_e2e mon 0.95)
    (monitor_e2e mon 0.99)
    (List.length (Cylog.Monitor.firings mon))

let run_monitor () =
  section "Monitor: faulted adaptive campaign — latencies, series, watchdogs";
  let seed = 7 and items = 40 in
  let budget = 60 in
  let engine, _, outcome = monitor_campaign ~seed ~items () in
  let mon = Option.get (Cylog.Engine.monitor engine) in
  pp_monitor_run "free-running" mon outcome;
  let ((_, mon_b, outcome_b, checks) as capped) =
    monitor_budget_run ~seed ~items ~budget
  in
  pp_monitor_run "budget-capped" mon_b outcome_b;
  (match budget_firings mon_b with
  | f :: _ ->
      Format.printf "  budget %d crossed at round %d, alert at round %d (%s)@."
        budget
        (Option.value (budget_crossing mon_b budget) ~default:(-1))
        f.at_round
        (Cylog.Event.alert_to_string f.alert)
  | [] -> Format.printf "  budget %d never crossed@." budget);
  let out = open_out "BENCH_monitor.json" in
  output_string out (monitor_json_report ~seed ~items ~budget (engine, mon, outcome) capped);
  close_out out;
  Format.printf "  wrote BENCH_monitor.json@.";
  List.iter
    (fun what -> Format.printf "  NOTE: %s@." what)
    (monitor_check_failures checks)

(* ------------------------------------------------------------------ *)
(* Telemetry: JSON-output smoke test and null-sink overhead gate       *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON well-formedness checker, enough for the dialect
   Telemetry emits (objects, arrays, strings with escapes, ints/floats,
   booleans, null). Validates the whole input is one JSON value. *)
exception Bad_json

let json_parses s =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then s.[!i] else raise Bad_json in
  let adv () = incr i in
  let skip_ws () =
    while !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      adv ()
    done
  in
  let expect c = if peek () <> c then raise Bad_json else adv () in
  let keyword k = String.iter (fun c -> if peek () <> c then raise Bad_json else adv ()) k in
  let pstring () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> adv ()
      | '\\' -> adv (); ignore (peek ()); adv (); go ()
      | _ -> adv (); go ()
    in
    go ()
  in
  let digits () =
    let saw = ref false in
    while !i < n && (match s.[!i] with '0' .. '9' -> true | _ -> false) do
      saw := true;
      adv ()
    done;
    if not !saw then raise Bad_json
  in
  let number () =
    if peek () = '-' then adv ();
    digits ();
    if !i < n && s.[!i] = '.' then (adv (); digits ());
    if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
      adv ();
      if !i < n && (s.[!i] = '+' || s.[!i] = '-') then adv ();
      digits ()
    end
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | '{' ->
        adv ();
        skip_ws ();
        if peek () = '}' then adv ()
        else
          let rec members () =
            skip_ws (); pstring (); skip_ws (); expect ':'; value (); skip_ws ();
            if peek () = ',' then (adv (); members ()) else expect '}'
          in
          members ()
    | '[' ->
        adv ();
        skip_ws ();
        if peek () = ']' then adv ()
        else
          let rec elements () =
            value (); skip_ws ();
            if peek () = ',' then (adv (); elements ()) else expect ']'
          in
          elements ()
    | '"' -> pstring ()
    | 't' -> keyword "true"
    | 'f' -> keyword "false"
    | 'n' -> keyword "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> raise Bad_json);
    skip_ws ()
  in
  try
    value ();
    !i = n
  with Bad_json -> false

(* The counters any campaign with tasks, leases and a quorum must have
   produced — the smoke contract for --metrics-out consumers. *)
let mandatory_metric_keys =
  [ "engine.events"; "engine.fired"; "open.created"; "answers.accepted";
    "lease.granted"; "quorum.votes"; "db.inserted" ]

let run_telemetry_smoke () =
  section "Telemetry smoke: faulted quorum campaign under the JSON sink";
  let src =
    {|rules:
  Item(id:1); Item(id:2); Item(id:3); Item(id:4);
  Q: LabelOf(id, label)/open <- Item(id);
|}
  in
  let engine = Cylog.Engine.load (Cylog.Parser.parse_exn src) in
  let spans = ref [] in
  Cylog.Engine.set_sink engine
    (Cylog.Telemetry.Sink.fn (fun s -> spans := s :: !spans));
  let policy engine ~worker:_ ~rng ~round:_ =
    match Cylog.Engine.pending engine with
    | [] -> Crowd.Simulator.Pass
    | pending ->
        let o = List.nth pending (Random.State.int rng (List.length pending)) in
        let label = [| "cat"; "dog" |].(Random.State.int rng 2) in
        Crowd.Simulator.Answer
          ( o.Cylog.Engine.id,
            [ ("label", Reldb.Value.String label) ],
            Crowd.Simulator.Enter_value )
  in
  let workers =
    List.map (fun w -> (Reldb.Value.String w, policy)) [ "w1"; "w2"; "w3"; "w4" ]
  in
  let workers = Crowd.Faults.inject ~seed:5 (List.assoc "drop" Crowd.Faults.profiles) workers in
  let outcome =
    Crowd.Simulator.run ~seed:5 ~max_rounds:200 ~lease:Cylog.Lease.default_config
      ~quorum:2
      ~stop:(fun e -> Cylog.Engine.pending e = [] && Cylog.Engine.run e |> snd = `Quiescent)
      ~workers engine
  in
  Format.printf "  campaign: %d rounds, %d events, %d spans@." outcome.rounds
    (List.length (Cylog.Engine.events engine))
    (List.length !spans);
  let failures = ref 0 in
  let check what ok =
    if not ok then begin
      incr failures;
      Format.printf "  FAIL: %s@." what
    end
  in
  let metrics_json = Cylog.Telemetry.Metrics.to_json (Cylog.Engine.metrics engine) in
  check "metrics JSON does not parse" (json_parses metrics_json);
  check "no spans were emitted" (!spans <> []);
  List.iter
    (fun s -> check "span JSON line does not parse" (json_parses (Cylog.Telemetry.span_to_json s)))
    !spans;
  List.iter
    (fun key ->
      check
        (Printf.sprintf "mandatory metric %s missing" key)
        (Cylog.Telemetry.Metrics.counter (Cylog.Engine.metrics engine) key > 0))
    mandatory_metric_keys;
  (* The derivability invariant, end to end: recounting the journal must
     reproduce every journal-derived counter of the live registry. *)
  let recount = Cylog.Engine.metrics_of_events (Cylog.Engine.events engine) in
  let derived m =
    List.filter
      (fun (k, _) -> Cylog.Engine.journal_derived k)
      (Cylog.Telemetry.Metrics.counters m)
  in
  check "journal recount disagrees with live registry"
    (derived recount = derived (Cylog.Engine.metrics engine));
  if !failures > 0 then exit 1;
  Format.printf "  ok: JSON parses, %d mandatory keys present, journal recount agrees@."
    (List.length mandatory_metric_keys)

let run_telemetry_overhead () =
  section "Telemetry overhead: joins with the metrics registry on vs off (null sink)";
  (* Wall-clock assertions flake; take best-of-3 and accept either the
     2%% relative bound or a small absolute floor at this tiny scale. *)
  let best f =
    List.fold_left
      (fun acc _ -> Float.min acc (f ()).j_seconds)
      Float.infinity [ (); (); () ]
  in
  ignore (joins_run ~scale:10 ~use_planner:true ()) (* warm-up *);
  let on = best (fun () -> joins_run ~scale:10 ~use_planner:true ()) in
  let off = best (fun () -> joins_run ~metrics:false ~scale:10 ~use_planner:true ()) in
  let delta = on -. off in
  let pct = 100.0 *. delta /. Float.max 1e-9 off in
  Format.printf "  metrics on: %.4fs   off: %.4fs   delta %+.4fs (%+.1f%%)@." on off
    delta pct;
  if delta > 0.05 && pct > 2.0 then begin
    Format.printf "  FAIL: instrumentation overhead above 2%% (and 0.05s)@.";
    exit 1
  end;
  Format.printf "  ok: overhead within tolerance (<=2%% or <=0.05s)@.";
  (* Monitor sampling rides the same budget: the identical seeded faulted
     campaign with and without the monitor installed, null sink. *)
  let best_campaign monitored =
    List.fold_left
      (fun acc () ->
        let _, seconds =
          time (fun () -> monitor_campaign ~monitored ~seed:7 ~items:20 ())
        in
        Float.min acc seconds)
      Float.infinity [ (); (); () ]
  in
  ignore (monitor_campaign ~seed:7 ~items:20 ()) (* warm-up *);
  let m_on = best_campaign true in
  let m_off = best_campaign false in
  let m_delta = m_on -. m_off in
  let m_pct = 100.0 *. m_delta /. Float.max 1e-9 m_off in
  Format.printf "  monitor on: %.4fs   off: %.4fs   delta %+.4fs (%+.1f%%)@." m_on
    m_off m_delta m_pct;
  if m_delta > 0.05 && m_pct > 2.0 then begin
    Format.printf "  FAIL: monitor sampling overhead above 2%% (and 0.05s)@.";
    exit 1
  end;
  Format.printf "  ok: monitor sampling within tolerance (<=2%% or <=0.05s)@."

(* The monitor regression gate, wired into [dune runtest] via the
   [monitor-smoke] alias: the budget-capped faulted campaign must fire
   the budget alert exactly once, stop via the journaled alert within
   one round of the crossing, produce parseable JSON, and recount
   byte-identically from the event log — live, and after journal
   recovery. *)
let run_monitor_smoke () =
  section "Monitor smoke: budget watchdog on the seeded faulted campaign";
  let (_, mon, outcome, checks) = monitor_budget_run ~seed:7 ~items:30 ~budget:30 in
  pp_monitor_run "budget-capped" mon outcome;
  let failures = monitor_check_failures checks in
  let failures =
    if json_parses (Cylog.Monitor.to_json mon) then failures
    else failures @ [ "monitor JSON does not parse" ]
  in
  let jsonl_ok =
    List.for_all json_parses
      (List.filter
         (fun l -> String.trim l <> "")
         (String.split_on_char '\n' (Cylog.Monitor.to_jsonl mon)))
  in
  let failures =
    if jsonl_ok then failures
    else failures @ [ "a monitor JSONL line does not parse" ]
  in
  match failures with
  | [] ->
      Format.printf
        "  ok: alert fired once, campaign stopped on it, JSON parses, recount \
         and recovery agree@."
  | failures ->
      List.iter (fun what -> Format.printf "  FAIL: %s@." what) failures;
      exit 1

(* ------------------------------------------------------------------ *)
(* Serve: the sharded multi-campaign server                            *)
(* ------------------------------------------------------------------ *)

(* One fleet run: generated labeling campaigns partitioned over [shards]
   engine shards, driven to completion by the simulated crowd through the
   server's task-queue API. Ops are the requests the shards actually
   pumped (leases, answers, reclaims, samples); latency percentiles are
   exact order statistics over the per-request service times. *)
type serve_run = {
  sv_shards : int;
  sv_campaigns : int;
  sv_items : int;
  sv_workers : int;
  sv_journaled : bool;
  sv_ops : int;
  sv_elapsed : float;
  sv_ops_per_s : float;
  sv_p50_ns : float;
  sv_p95_ns : float;
  sv_p99_ns : float;
  sv_answers : int;
  sv_resolved : int;
  sv_stopped : bool;
}

let serve_run ?journal ~shards ~campaigns ~items ~workers () =
  let server =
    match journal with
    | None -> Server.create ~shards ()
    | Some config ->
        (* fault-free in-memory storage per shard: the journal write path
           runs in full (CRC, rotation, compaction) without disk noise *)
        let sims = Array.init shards (fun _ -> Cylog.Storage.Sim.create ()) in
        Server.create ~journal_root:"serve-journal" ~journal_config:config
          ~storage:(fun i -> Cylog.Storage.Sim.storage sims.(i))
          ~shards ()
  in
  let config =
    {
      Crowd.Fleet_sim.default_config with
      campaigns;
      items;
      workers;
      max_rounds = 2000;
    }
  in
  Crowd.Fleet_sim.open_campaigns server config;
  let t0 = Unix.gettimeofday () in
  let o = Crowd.Fleet_sim.run ~config server in
  let elapsed = Unix.gettimeofday () -. t0 in
  let view = Server.stats server in
  let ops = view.Server.Fleet.requests in
  {
    sv_shards = shards;
    sv_campaigns = campaigns;
    sv_items = items;
    sv_workers = workers;
    sv_journaled = journal <> None;
    sv_ops = ops;
    sv_elapsed = elapsed;
    sv_ops_per_s = (if elapsed > 0. then float_of_int ops /. elapsed else 0.);
    sv_p50_ns = view.Server.Fleet.p50_ns;
    sv_p95_ns = view.Server.Fleet.p95_ns;
    sv_p99_ns = view.Server.Fleet.p99_ns;
    sv_answers = o.answers;
    sv_resolved = o.resolved;
    sv_stopped = o.stop_reason = `Done;
  }

let pp_serve_run r =
  Format.printf
    "  %d shard(s)%s: %d ops in %.3fs = %9.0f ops/s   p50 %.0fns p95 %.0fns \
     p99 %.0fns   (%d answers, %d resolved)@."
    r.sv_shards
    (if r.sv_journaled then " journaled" else "")
    r.sv_ops r.sv_elapsed r.sv_ops_per_s r.sv_p50_ns r.sv_p95_ns r.sv_p99_ns
    r.sv_answers r.sv_resolved

let serve_json runs =
  let run_json r =
    Printf.sprintf
      {|    { "shards": %d, "campaigns": %d, "items": %d, "workers": %d, "journaled": %b,
      "ops": %d, "elapsed_s": %.6f, "ops_per_s": %.0f,
      "latency_ns": { "p50": %.0f, "p95": %.0f, "p99": %.0f },
      "answers": %d, "resolved": %d, "completed": %b }|}
      r.sv_shards r.sv_campaigns r.sv_items r.sv_workers r.sv_journaled r.sv_ops
      r.sv_elapsed r.sv_ops_per_s r.sv_p50_ns r.sv_p95_ns r.sv_p99_ns
      r.sv_answers r.sv_resolved r.sv_stopped
  in
  Printf.sprintf "{\n  \"serve\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map run_json runs))

(* Regression gates for both the full bench and the smoke: every run
   completes with the exact quorum arithmetic (items × campaigns tasks,
   ×3 votes), and the 8-shard fleet sustains the target throughput. *)
let serve_check runs =
  let failures = ref [] in
  let note fmt = Format.kasprintf (fun s -> failures := !failures @ [ s ]) fmt in
  List.iter
    (fun r ->
      let tasks = r.sv_campaigns * r.sv_items in
      if not r.sv_stopped then
        note "%d-shard run did not complete its campaigns" r.sv_shards;
      if r.sv_resolved <> tasks then
        note "%d-shard run resolved %d tasks, expected %d" r.sv_shards
          r.sv_resolved tasks;
      if r.sv_answers <> tasks * 3 then
        note "%d-shard run accepted %d answers, expected %d" r.sv_shards
          r.sv_answers (tasks * 3))
    runs;
  (match
     List.find_opt (fun r -> r.sv_shards >= 8 && not r.sv_journaled) runs
   with
  | Some r when r.sv_ops_per_s < 1e4 ->
      note "8-shard fleet at %.0f ops/s, below the 10^4 floor" r.sv_ops_per_s
  | _ -> ());
  !failures

let run_serve () =
  section "Serve: fleet throughput vs shard count (in-memory engines)";
  let scaling =
    List.map
      (fun shards ->
        serve_run ~shards ~campaigns:4 ~items:120 ~workers:24 ())
      [ 1; 2; 4; 8 ]
  in
  List.iter pp_serve_run scaling;
  section "Serve: durable fleet (segmented WAL per slot, batched fsync)";
  let durable =
    serve_run
      ~journal:
        {
          Cylog.Journal.default_config with
          fsync = Cylog.Journal.Every_n 8;
          compact_every = Some 256;
        }
      ~shards:8 ~campaigns:4 ~items:120 ~workers:24 ()
  in
  pp_serve_run durable;
  let runs = scaling @ [ durable ] in
  let out = open_out "BENCH_serve.json" in
  output_string out (serve_json runs);
  close_out out;
  Format.printf "  wrote BENCH_serve.json@.";
  List.iter (fun what -> Format.printf "  NOTE: %s@." what) (serve_check runs)

(* The serve regression gate, wired into [dune runtest] via the
   [serve-smoke] alias: a small fixed-seed fleet on in-memory storage
   must route every partitioned fact to its hash-owned shard, finish the
   campaigns with exact quorum arithmetic, merge a sane fleet monitor,
   and recover every shard's slot from its compacted journal to a
   byte-identical trace with O(live state) replay. *)
let run_serve_smoke () =
  section "Serve smoke: routing, merged monitor and recovery on a seeded fleet";
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun s -> failures := !failures @ [ s ]) fmt in
  let shards = 3 in
  let sims = Array.init shards (fun _ -> Cylog.Storage.Sim.create ()) in
  let server =
    Server.create ~journal_root:"serve-journal"
      ~journal_config:
        {
          Cylog.Journal.default_config with
          fsync = Cylog.Journal.Every_n 4;
          compact_every = Some 64;
        }
      ~storage:(fun i -> Cylog.Storage.Sim.storage sims.(i))
      ~shards ()
  in
  let config =
    { Crowd.Fleet_sim.default_config with campaigns = 2; items = 10; workers = 6 }
  in
  Crowd.Fleet_sim.open_campaigns server config;
  (* every Item fact must sit exactly on the shard its key hashes to *)
  let items_seen = ref 0 in
  for k = 0 to config.campaigns - 1 do
    let campaign = Crowd.Fleet_sim.campaign_name k in
    for s = 0 to shards - 1 do
      match Server.Shard.engine (Server.shard server s) ~campaign with
      | None -> fail "shard %d has no engine for %s" s campaign
      | Some e -> (
          match Reldb.Database.find (Cylog.Engine.database e) "Item" with
          | None -> ()
          | Some rel ->
              List.iter
                (fun tuple ->
                  match Reldb.Tuple.get tuple "id" with
                  | Some (Reldb.Value.Int _ as id) ->
                      incr items_seen;
                      let expect =
                        Server.Router.shard_of_values ~shards [ id ]
                      in
                      if expect <> s then
                        fail "item %s of %s landed on shard %d, hash owns %d"
                          (Reldb.Value.to_display id) campaign s expect
                  | _ -> ())
                (Reldb.Relation.tuples rel))
    done
  done;
  if !items_seen <> config.campaigns * config.items then
    fail "%d items across the fleet, expected %d (split lost or duplicated facts)"
      !items_seen
      (config.campaigns * config.items);
  let o = Crowd.Fleet_sim.run ~config server in
  let tasks = config.campaigns * config.items in
  if o.stop_reason <> `Done then fail "fleet run did not complete";
  if o.resolved <> tasks then fail "resolved %d tasks, expected %d" o.resolved tasks;
  if o.answers <> tasks * config.quorum then
    fail "accepted %d answers, expected %d" o.answers (tasks * config.quorum);
  let view = Server.stats server in
  if view.Server.Fleet.pending <> 0 then
    fail "%d tasks still pending after completion" view.Server.Fleet.pending;
  (match view.Server.Fleet.monitor with
  | None -> fail "no merged fleet monitor"
  | Some m ->
      if m.Server.Fleet.f_answers <> o.answers then
        fail "merged monitor counts %d answers, loop saw %d"
          m.Server.Fleet.f_answers o.answers;
      if m.Server.Fleet.f_retired <> tasks then
        fail "merged monitor retired %d tasks, expected %d"
          m.Server.Fleet.f_retired tasks;
      if m.Server.Fleet.f_pending <> 0 then
        fail "merged monitor reports %d pending" m.Server.Fleet.f_pending);
  if not (json_parses (Server.Fleet.to_json view)) then
    fail "fleet JSON does not parse";
  (* recovery round-trip per shard: compact, recover, compare traces —
     the replay after the snapshot must be O(live state), i.e. ~nothing
     for a finished campaign *)
  let campaign = Crowd.Fleet_sim.campaign_name 0 in
  for s = 0 to shards - 1 do
    match Server.Shard.engine (Server.shard server s) ~campaign with
    | None -> fail "shard %d lost campaign %s" s campaign
    | Some e -> (
        let before = Cylog.Engine.journal_dump e in
        Cylog.Engine.compact_journal e;
        let stats = Server.recover_shard server s ~campaign () in
        match Server.Shard.engine (Server.shard server s) ~campaign with
        | None -> fail "shard %d lost campaign %s after recovery" s campaign
        | Some e' ->
            if Cylog.Engine.journal_dump e' <> before then
              fail "shard %d: recovered trace differs from the live one" s;
            if stats.Cylog.Engine.records_replayed > 2 then
              fail
                "shard %d: %d records replayed after compaction (live state \
                 only should remain)"
                s stats.Cylog.Engine.records_replayed)
  done;
  match !failures with
  | [] ->
      Format.printf
        "  ok: facts routed by hash, campaigns completed, fleet view merged, \
         every shard recovered byte-identically@."
  | failures ->
      List.iter (fun what -> Format.printf "  FAIL: %s@." what) failures;
      exit 1

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("table1", run_table1); ("figure4", run_figure4); ("figure6", run_figure6);
    ("figure10", run_figure10); ("figure11", run_figure11); ("figure12", run_figure12);
    ("figure13", run_figure13); ("figure14", run_figure14); ("figure16", run_figure16);
    ("theorems", run_theorems); ("ablations", run_ablations);
    ("joins", run_joins); ("joins-smoke", run_joins_smoke);
    ("incremental", run_incremental); ("incremental-smoke", run_incremental_smoke);
    ("quality", run_quality); ("quality-smoke", run_quality_smoke);
    ("telemetry-smoke", run_telemetry_smoke);
    ("telemetry-overhead", run_telemetry_overhead);
    ("durability", run_durability); ("durability-smoke", run_durability_smoke);
    ("monitor", run_monitor); ("monitor-smoke", run_monitor_smoke);
    ("serve", run_serve); ("serve-smoke", run_serve_smoke);
    ("bench", run_bench) ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    match requested with
    | [] -> experiments
    | names ->
        List.filter_map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> Some (n, f)
            | None ->
                Format.printf "unknown experiment %S (available: %s)@." n
                  (String.concat ", " (List.map fst experiments));
                None)
          names
  in
  List.iter (fun (_, f) -> f ()) to_run

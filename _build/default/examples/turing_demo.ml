(* Theorem 4 live: a Turing machine running as three CyLog rules
   (Figure 16), checked against the direct implementation, plus the
   interactive machine that talks to a human at every step — the shape of
   class G_*.

   Run with: dune exec examples/turing_demo.exe *)

let show_machine (m : Turing.Machine.t) input =
  Format.printf "@.=== %s on [%s] ===@." m.name (String.concat "" input);
  (match Turing.Machine.run m ~input with
  | Ok (final, steps) ->
      Format.printf "direct:        halts in %s after %d steps, tape %S@." final.state
        steps
        (Turing.Machine.tape_string final)
  | Error _ -> Format.printf "direct: did not halt@.");
  let r = Turing.Cylog_tm.run m ~input in
  Format.printf "CyLog (Fig 16): halts in %s after %d engine steps, tape %S@." r.state
    r.engine_steps
    (String.concat "" (List.map snd r.tape));
  Format.printf "agreement: %b@." (Turing.Cylog_tm.agrees_with_direct m ~input)

let () =
  Format.printf "The CyLog encoding of a Turing machine (Figure 16):@.@.%s@."
    (Turing.Cylog_tm.to_source Turing.Machine.successor ~input:[ "1"; "1" ]);

  show_machine Turing.Machine.successor [ "1"; "1" ];
  show_machine Turing.Machine.binary_increment [ "1"; "0"; "1"; "1" ];
  show_machine Turing.Machine.parity [ "1"; "1"; "1" ];

  Format.printf "@.=== interactive machine (class G_*) ===@.";
  Format.printf
    "the machine asks the human what to write at every step — the number of@.";
  Format.printf "interaction phases cannot be bounded in advance:@.";
  let tape = Turing.Cylog_tm.Interactive.run ~answers:[ "c"; "y"; "l"; "o"; "g" ] in
  Format.printf "  human dictates c y l o g .  ->  tape %S@." tape;
  Format.printf "game class of the interactive program: %a@." Game.Classes.pp
    (Game.Classes.classify (Cylog.Parser.parse_exn Turing.Cylog_tm.Interactive.source))

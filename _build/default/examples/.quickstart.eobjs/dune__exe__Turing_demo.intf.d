examples/turing_demo.mli:

examples/esp_game.ml: Cylog Format Game List Option Reldb String

examples/logo_design.mli:

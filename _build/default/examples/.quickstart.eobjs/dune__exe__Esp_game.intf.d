examples/esp_game.mli:

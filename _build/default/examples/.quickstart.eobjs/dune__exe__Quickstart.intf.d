examples/quickstart.mli:

examples/tweet_extraction.ml: Array Format List Tweetpecker Tweets

examples/turing_demo.ml: Cylog Format Game List String Turing

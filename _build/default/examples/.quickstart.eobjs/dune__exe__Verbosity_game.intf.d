examples/verbosity_game.mli:

examples/logo_design.ml: Cylog Format Game List Option Reldb

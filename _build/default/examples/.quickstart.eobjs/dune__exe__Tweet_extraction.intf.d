examples/tweet_extraction.mli:

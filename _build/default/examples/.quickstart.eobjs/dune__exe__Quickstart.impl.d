examples/quickstart.ml: Cylog Format List Option Reldb String

examples/verbosity_game.ml: Cylog Format List Option Reldb

(* The paper's headline scenario end to end: VRE/I on a synthetic #tenki
   corpus. Rational workers front-load high-quality extraction rules, the
   machine extracts candidate values, workers confirm them, and the main
   contributor of the extraction gradually shifts from humans to the
   machine.

   Run with: dune exec examples/tweet_extraction.exe *)

let () =
  let corpus = Tweets.Generator.generate ~seed:17 120 in
  Format.printf "corpus: %d tweets, e.g.@." (List.length corpus);
  List.iteri
    (fun i t -> if i < 3 then Format.printf "  %a@." Tweets.Generator.pp t)
    corpus;

  let outcome = Tweetpecker.Runner.run ~corpus Tweetpecker.Programs.VREI in

  Format.printf "@.run: %d rounds, completion %.0f%%@." outcome.sim.rounds
    (100.0 *. Tweetpecker.Runner.completion outcome);

  (* Crowdsourced extraction rules — the artefact the incentive structure
     is designed to produce. *)
  Format.printf "@.extraction rules entered by the crowd:@.";
  List.iter
    (fun (rule, conf, sup) ->
      Format.printf "  %a  confidence %.0f%%  support %.1f%%@." Tweets.Extraction.pp rule
        (100.0 *. conf) (100.0 *. sup))
    (Tweetpecker.Metrics.rule_quality outcome);

  (* How much did the machine contribute? *)
  let adopted =
    List.filter
      (fun (tw, attr, value, _) ->
        Tweetpecker.Runner.agreed_lookup outcome ~tweet_id:tw ~attr = Some value)
      outcome.extracts
  in
  Format.printf "@.machine extractions: %d, of which %d were adopted as agreed values@."
    (List.length outcome.extracts) (List.length adopted);

  let quality = Tweetpecker.Metrics.row_a outcome in
  Format.printf "agreed-value quality: %a@." Tweetpecker.Metrics.pp_quality quality;

  (* The worker-to-machine shift over time (Figure 11's series). *)
  let breakdown = Tweetpecker.Analysis.figure11 outcome in
  Format.printf "@.share of agreements on machine-extracted values, per completion decile:@.  ";
  Array.iteri
    (fun d _ ->
      Format.printf "%2.0f%% " (100.0 *. Tweetpecker.Analysis.selected_share breakdown d))
    breakdown.per_decile;
  Format.printf "@.";

  Format.printf "@.payoffs:@.";
  List.iter (fun (p, s) -> Format.printf "  %s: %d@." p s) outcome.payoffs

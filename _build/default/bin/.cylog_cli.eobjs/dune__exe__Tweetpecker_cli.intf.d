bin/tweetpecker_cli.mli:

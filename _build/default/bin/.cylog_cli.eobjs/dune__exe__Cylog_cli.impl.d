bin/cylog_cli.ml: Arg Buffer Cmd Cmdliner Cylog Format Game In_channel List Option Printf Reldb String Term

bin/cylog_cli.mli:

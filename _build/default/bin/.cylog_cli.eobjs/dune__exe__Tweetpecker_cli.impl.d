bin/tweetpecker_cli.ml: Arg Cmd Cmdliner Crowd Cylog Format List Printf Reldb String Term Tweetpecker Tweets

lib/quality/aggregate.mli:

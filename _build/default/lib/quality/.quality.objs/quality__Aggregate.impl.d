lib/quality/aggregate.ml: Float Fun Hashtbl List Option String

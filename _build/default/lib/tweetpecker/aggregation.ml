type comparison = {
  agreement_accuracy : float;
  majority_accuracy : float;
  em_accuracy : float;
  em_iterations : int;
  estimated_worker_accuracy : (string * float) list;
}

let item_key tw attr = Printf.sprintf "%d/%s" tw attr

let votes_of_outcome (o : Runner.outcome) =
  match Reldb.Database.find (Cylog.Engine.database o.engine) "Inputs" with
  | None -> []
  | Some rel ->
      List.filter_map
        (fun t ->
          match
            ( Reldb.Tuple.get_or_null t "tw",
              Reldb.Tuple.get_or_null t "attr",
              Reldb.Tuple.get_or_null t "value",
              Reldb.Tuple.get_or_null t "p" )
          with
          | Reldb.Value.Int tw, Reldb.Value.String attr, Reldb.Value.String value,
            Reldb.Value.String worker ->
              Some { Quality.Aggregate.item = item_key tw attr; worker; value }
          | _ -> None)
        (Reldb.Relation.tuples rel)

let truth_of (o : Runner.outcome) item =
  match String.index_opt item '/' with
  | None -> None
  | Some i -> (
      let tw = int_of_string (String.sub item 0 i) in
      let attr = String.sub item (i + 1) (String.length item - i - 1) in
      match List.find_opt (fun (t : Tweets.Generator.tweet) -> t.id = tw) o.corpus with
      | None -> None
      | Some tweet -> (
          match attr with
          | "weather" -> tweet.gt_weather
          | "place" -> tweet.gt_place
          | _ -> None))

let compare_methods (o : Runner.outcome) =
  let votes = votes_of_outcome o in
  let truth = truth_of o in
  let agreement =
    List.map (fun (tw, attr, value) -> (item_key tw attr, value)) o.agreed
  in
  let majority = Quality.Aggregate.majority votes in
  let em = Quality.Aggregate.em votes in
  {
    agreement_accuracy = Quality.Aggregate.accuracy_against ~truth agreement;
    majority_accuracy = Quality.Aggregate.accuracy_against ~truth majority;
    em_accuracy = Quality.Aggregate.accuracy_against ~truth em.consensus;
    em_iterations = em.iterations;
    estimated_worker_accuracy = em.worker_accuracy;
  }

type shared = {
  beliefs : Beliefs.t;
  (* Per-worker schedule of rules still to enter: (completion threshold,
     rule), sorted by threshold. Front-loaded (rational) workers have all
     thresholds at 0 — rules go in at the very start (Figure 12's VRE/I
     cluster); haphazard workers draw thresholds uniformly over [0,1), so
     entries spread over the whole run (Figure 12's VRE scatter). *)
  rule_queues : (string, (float * Tweets.Extraction.rule) list ref) Hashtbl.t;
  states : (string, worker_state) Hashtbl.t;
  target : int;  (* 2 × #tweets: for the completion measure *)
}

(* Per-worker incremental task pool: new open tuples are ingested from the
   engine once (by id cursor) and popped in random order, so a turn costs
   O(1) amortised instead of rescanning every pending open tuple. *)
and worker_state = {
  mutable cursor : int;
  candidates : bag;  (* existence questions: machine-extracted values *)
  entries : bag;  (* value-entry tasks *)
  mutable rules_open : Cylog.Engine.open_id option;
}

and bag = { mutable items : Cylog.Engine.open_tuple array; mutable len : int }

let bag_create () = { items = [||]; len = 0 }

let bag_add b o =
  if b.len = Array.length b.items then begin
    let cap = max 16 (2 * Array.length b.items) in
    let items = Array.make cap o in
    Array.blit b.items 0 items 0 b.len;
    b.items <- items
  end;
  b.items.(b.len) <- o;
  b.len <- b.len + 1

let bag_pop_random b rng =
  if b.len = 0 then None
  else begin
    let i = Random.State.int rng b.len in
    let x = b.items.(i) in
    b.items.(i) <- b.items.(b.len - 1);
    b.len <- b.len - 1;
    Some x
  end

let shuffle rng xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* Slice [xs] round-robin: worker k of n receives elements k, k+n, ... *)
let round_robin n k xs = List.filteri (fun i _ -> i mod n = k) xs

let prepare ~seed ~corpus ~workers =
  let beliefs = Beliefs.create ~seed ~corpus in
  let rule_queues = Hashtbl.create 8 in
  let states = Hashtbl.create 8 in
  let good_sorted =
    (* Most-supported rules first: the rational worker enters productive
       rules to maximise payoff 2a. *)
    List.sort
      (fun a b ->
        compare (Tweets.Extraction.support b corpus) (Tweets.Extraction.support a corpus))
      (Tweets.Extraction.good_rules ())
  in
  let rational_workers =
    List.filter
      (fun (w : Crowd.Worker.profile) ->
        match w.rule_strategy with Crowd.Worker.Front_loaded _ -> true | _ -> false)
      workers
  in
  let n_rational = max 1 (List.length rational_workers) in
  List.iter
    (fun (w : Crowd.Worker.profile) ->
      let queue =
        match w.rule_strategy with
        | Crowd.Worker.No_rules -> []
        | Crowd.Worker.Front_loaded { count } ->
            let k =
              match
                List.find_index
                  (fun (r : Crowd.Worker.profile) -> r.name = w.name)
                  rational_workers
              with
              | Some k -> k
              | None -> 0
            in
            let mine = round_robin n_rational k good_sorted in
            List.filteri (fun i _ -> i < count) mine
            |> List.map (fun r -> (0.0, r))
        | Crowd.Worker.Haphazard { spread; good_ratio } ->
            (* A personal shuffled mix of good and bad rules, entered at
               uniformly random completion points. *)
            let rng = Random.State.make [| seed; Hashtbl.hash w.name; 7 |] in
            let good = shuffle rng (Tweets.Extraction.good_rules ()) in
            let bad = shuffle rng (Tweets.Extraction.bad_rules ()) in
            let n_good = int_of_float (good_ratio *. 8.0) in
            let take n xs = List.filteri (fun i _ -> i < n) xs in
            let mix = shuffle rng (take n_good good @ take (8 - n_good) bad) in
            List.sort
              (fun (a, _) (b, _) -> compare a b)
              (List.map (fun r -> (Random.State.float rng spread, r)) mix)
      in
      Hashtbl.replace rule_queues w.name (ref queue);
      Hashtbl.replace states w.name
        { cursor = 0; candidates = bag_create (); entries = bag_create (); rules_open = None })
    workers;
  { beliefs; rule_queues; states; target = 2 * List.length corpus }

let v_str s = Reldb.Value.String s

let tweet_id_of (o : Cylog.Engine.open_tuple) =
  match Reldb.Tuple.get_or_null o.bound "tw" with
  | Reldb.Value.Int i -> Some i
  | _ -> None

let attr_of (o : Cylog.Engine.open_tuple) =
  match Reldb.Tuple.get_or_null o.bound "attr" with
  | Reldb.Value.String s -> Some s
  | _ -> None

let determined engine tweet_id attr =
  match Reldb.Database.find (Cylog.Engine.database engine) "Agreed" with
  | None -> false
  | Some rel ->
      Reldb.Relation.mem_pattern rel
        [ ("tw", Reldb.Value.Int tweet_id); ("attr", v_str attr) ]

let ingest engine worker state =
  List.iter
    (fun (o : Cylog.Engine.open_tuple) ->
      state.cursor <- max state.cursor o.id;
      let mine =
        match o.asked with
        | Some w -> Reldb.Value.equal w worker
        | None -> true
      in
      if mine then
        match o.relation with
        | "Rules" -> state.rules_open <- Some o.id
        | "Inputs" ->
            if o.existence then bag_add state.candidates o else bag_add state.entries o
        | _ -> ())
    (Cylog.Engine.pending_since engine ~after:state.cursor)

(* Pop tasks until one is still pending and still concerns an undetermined
   (tweet, attribute); stale tasks are discarded for good. *)
let rec next_live engine bag rng =
  match bag_pop_random bag rng with
  | None -> None
  | Some o -> (
      match Cylog.Engine.find_open engine o.id with
      | None -> next_live engine bag rng
      | Some _ -> (
          match (tweet_id_of o, attr_of o) with
          | Some tw, Some attr ->
              if determined engine tw attr then next_live engine bag rng
              else Some (o, tw, attr)
          | _ -> next_live engine bag rng))

let policy shared (profile : Crowd.Worker.profile) : Crowd.Simulator.policy =
 fun engine ~worker ~rng ~round ->
  ignore round;
  if Random.State.float rng 1.0 > profile.diligence then Crowd.Simulator.Pass
  else begin
    let state = Hashtbl.find shared.states profile.name in
    ingest engine worker state;
    let queue =
      match Hashtbl.find_opt shared.rule_queues profile.name with
      | Some q -> q
      | None -> ref []
    in
    let completion =
      match Reldb.Database.find (Cylog.Engine.database engine) "Agreed" with
      | Some rel ->
          float_of_int (Reldb.Relation.cardinal rel) /. float_of_int (max 1 shared.target)
      | None -> 0.0
    in
    let enter_rule_now =
      match (state.rules_open, !queue) with
      | None, _ | _, [] -> None
      | Some task, (threshold, rule) :: rest ->
          if completion >= threshold then Some (task, rule, rest) else None
    in
    match enter_rule_now with
    | Some (task, rule, rest) ->
        queue := rest;
        Crowd.Simulator.Answer
          ( task,
            [ ("cond", v_str rule.Tweets.Extraction.cond);
              ("attr", v_str rule.attr); ("value", v_str rule.value) ],
            Crowd.Simulator.Enter_rule )
    | None -> (
        (* Prefer judging a machine-extracted candidate over typing. *)
        match next_live engine state.candidates rng with
        | Some (o, tw, attr) ->
            let mine = Beliefs.belief shared.beliefs ~worker:profile ~tweet_id:tw ~attr in
            let shown = Reldb.Value.to_display (Reldb.Tuple.get_or_null o.bound "value") in
            let agreeing = String.equal mine shown in
            let yes =
              if profile.honest_selection then agreeing
              else if agreeing then Random.State.float rng 1.0 < 0.8
              else Random.State.float rng 1.0 < 0.3
            in
            Crowd.Simulator.Answer_existence (o.id, yes)
        | None -> (
            match next_live engine state.entries rng with
            | Some (o, tw, attr) ->
                let value =
                  Beliefs.belief shared.beliefs ~worker:profile ~tweet_id:tw ~attr
                in
                Crowd.Simulator.Answer
                  (o.id, [ ("value", v_str value) ], Crowd.Simulator.Enter_value)
            | None -> Crowd.Simulator.Pass))
  end

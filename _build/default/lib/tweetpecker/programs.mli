(** The four TweetPecker variants as CyLog programs (Figures 3, 5, 8, 9).

    Programs are generated from a corpus and a worker list: the corpus
    becomes [Tweets] facts (keyed by tweet id, carrying the text), the
    workers become [Workers] facts, and the variant decides which rules and
    game aspects are present:

    - {b VE} — value entry only; workers fill [Inputs]; two matching inputs
      from distinct workers land in [Agreed].
    - {b VE/I} — VE plus the VEI game aspect: one game instance per
      (tweet, attribute); matching values pay both players (coordination
      game).
    - {b VRE} — VE plus extraction rules: a standing [Rules] task per
      worker, machine extraction into [Extracts] (first rule wins via the
      key), and candidate (existence) questions showing machine-extracted
      values to workers.
    - {b VRE/I} — VRE plus the VREI game aspect: a single game instance;
      payoff 1 (agreement, +1 each), payoff 2a (your rule's extraction got
      adopted, +2, earliest rule only), payoff 2b (your rule's extraction
      was contradicted by the adopted value, −1).

    The agreed values live in the long-format relation
    [Agreed(tw key, attr key, value)]: its key makes the chronologically
    first agreement win, and, unlike a wide [Output] row, an [Agreed] row
    is never updated afterwards — so game-aspect payoff rules can key their
    firing on it. *)

type variant = VE | VEI | VRE | VREI

val all : variant list
(** The four variants in presentation order. *)

val variant_name : variant -> string
(** "VE", "VE/I", "VRE", "VRE/I". *)

val has_rules : variant -> bool
(** True for VRE and VRE/I (extraction-rule machinery present). *)

val has_incentive : variant -> bool
(** True for VE/I and VRE/I (a game aspect is present). *)

val source :
  variant -> corpus:Tweets.Generator.tweet list -> workers:string list -> string
(** The full CyLog source text of the variant over the given corpus and
    workers. *)

val program :
  variant -> corpus:Tweets.Generator.tweet list -> workers:string list ->
  Cylog.Ast.program
(** Parsed form of {!source}. *)

val attrs : string list
(** The extracted attributes: ["weather"; "place"]. *)

val payoff_agreement : int
(** w1 = 1: payoff for a matching value. *)

val payoff_rule_adopted : int
(** w2 = 2: payoff for the earliest rule whose extraction got adopted. *)

val payoff_rule_contradicted : int
(** w3 = 1: loss when a rule's extraction is contradicted. *)

(** Worker policies for the TweetPecker variants.

    A policy turns a worker profile into a {!Crowd.Simulator.policy}: each
    turn the worker either enters an extraction rule (Action 2, per the
    profile's rule strategy), answers a pending candidate question
    (selecting or rejecting a machine-extracted value), or types a value
    for a pending input task (Action 1). Values come from the shared
    {!Beliefs} table, so a worker is consistent across interfaces. *)

type shared
(** Shared policy state: the belief table, per-worker queues of extraction
    rules still to enter, and per-worker incremental task pools (new open
    tuples are ingested once by id and popped in random order, so a turn
    costs O(1) amortised). *)

val prepare :
  seed:int -> corpus:Tweets.Generator.tweet list ->
  workers:Crowd.Worker.profile list -> shared
(** Build the shared state: beliefs plus per-worker rule queues. Rational
    (front-loaded) workers receive disjoint slices of the good-rule pool
    ordered by support (enter the most productive rules first); haphazard
    workers receive a seeded shuffle of good and bad rules mixed by their
    [good_ratio]. *)

val policy :
  shared -> Crowd.Worker.profile -> Crowd.Simulator.policy
(** The worker's behaviour, per profile and variant mechanics. *)

lib/tweetpecker/metrics.mli: Format Runner Tweets

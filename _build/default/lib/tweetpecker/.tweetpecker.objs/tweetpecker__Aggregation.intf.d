lib/tweetpecker/aggregation.mli: Quality Runner

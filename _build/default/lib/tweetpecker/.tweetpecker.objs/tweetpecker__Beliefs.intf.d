lib/tweetpecker/beliefs.mli: Crowd Tweets

lib/tweetpecker/runner.mli: Crowd Cylog Programs Tweets

lib/tweetpecker/metrics.ml: Format List Programs Runner String Tweets

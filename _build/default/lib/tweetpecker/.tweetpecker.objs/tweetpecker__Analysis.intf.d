lib/tweetpecker/analysis.mli: Game Runner

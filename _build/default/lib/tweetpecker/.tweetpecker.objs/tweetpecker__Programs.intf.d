lib/tweetpecker/programs.mli: Cylog Tweets

lib/tweetpecker/analysis.ml: Array Crowd Cylog Fun Game Hashtbl List Metrics Option Programs Reldb Runner String Tweets

lib/tweetpecker/beliefs.ml: Crowd Hashtbl List Printf Random Tweets

lib/tweetpecker/runner.ml: Crowd Cylog List Policies Programs Reldb String Tweets

lib/tweetpecker/programs.ml: Buffer Cylog List Printf String Tweets

lib/tweetpecker/aggregation.ml: Cylog List Printf Quality Reldb Runner String Tweets

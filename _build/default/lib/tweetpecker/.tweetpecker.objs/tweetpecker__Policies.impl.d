lib/tweetpecker/policies.ml: Array Beliefs Crowd Cylog Hashtbl List Random Reldb String Tweets

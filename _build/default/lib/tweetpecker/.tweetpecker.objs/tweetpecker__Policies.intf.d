lib/tweetpecker/policies.mli: Crowd Tweets

type verdict = Correct | Incorrect | Neither

type quality = { correct : float; incorrect : float; neither : float; total : int }

let vague_answers =
  Tweets.Vocabulary.vague_values @ [ Tweets.Vocabulary.unknown_place ]

let judge ~corpus ~tweet_id ~attr value =
  match List.find_opt (fun (t : Tweets.Generator.tweet) -> t.id = tweet_id) corpus with
  | None -> Neither
  | Some tw -> (
      let gt = match attr with
        | "weather" -> tw.gt_weather
        | "place" -> tw.gt_place
        | _ -> None
      in
      match gt with
      | None -> Neither  (* the judges cannot call it either *)
      | Some g ->
          if String.equal g value then Correct
          else if List.mem value vague_answers then Neither
          else Incorrect)

let row_a (o : Runner.outcome) =
  let verdicts =
    List.map
      (fun (tw, attr, value) -> judge ~corpus:o.corpus ~tweet_id:tw ~attr value)
      o.agreed
  in
  let total = List.length verdicts in
  let count v = List.length (List.filter (( = ) v) verdicts) in
  let frac v = if total = 0 then 0.0 else float_of_int (count v) /. float_of_int total in
  { correct = frac Correct; incorrect = frac Incorrect; neither = frac Neither; total }

let rule_quality (o : Runner.outcome) =
  let agreed ~tweet_id ~attr = Runner.agreed_lookup o ~tweet_id ~attr in
  List.map
    (fun (_, rule, _) ->
      ( rule,
        Tweets.Extraction.confidence rule o.corpus ~agreed,
        Tweets.Extraction.support rule o.corpus ))
    o.rules_entered

let mean = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))

let row_b (o : Runner.outcome) =
  if not (Programs.has_rules o.variant) then None
  else
    rule_quality o
    |> List.filter_map (fun (rule, conf, _) ->
           (* Confidence is undefined for rules that extract nothing. *)
           if Tweets.Extraction.matching rule o.corpus = [] then None else Some conf)
    |> mean

let row_c (o : Runner.outcome) =
  if not (Programs.has_rules o.variant) then None
  else mean (List.map (fun (_, _, sup) -> sup) (rule_quality o))

let pp_quality ppf q =
  Format.fprintf ppf "%.1f%% / %.1f%% / %.1f%% (n=%d)" (100.0 *. q.correct)
    (100.0 *. q.incorrect) (100.0 *. q.neither) q.total

(** Worker belief model.

    A worker's belief about an attribute of a tweet is what they would type
    into the value form — drawn once per (worker, tweet, attribute) from a
    seeded distribution, so a worker answers consistently whether they type
    the value or judge a machine-extracted candidate.

    For a clear tweet the belief is the ground truth with probability
    [profile.accuracy] (weather) / [profile.place_accuracy] (place), and a
    confusion value otherwise. For ambiguous tweets the worker believes a
    vague value ("unsettled", ...), biased toward the most common one so
    that two of five workers eventually coincide; likewise placeless
    tweets mostly yield "unknown". *)

type t

val create : seed:int -> corpus:Tweets.Generator.tweet list -> t
(** Belief table over a corpus. Workers are identified by name. *)

val belief : t -> worker:Crowd.Worker.profile -> tweet_id:int -> attr:string -> string
(** The worker's (memoised) belief. @raise Invalid_argument on unknown
    tweet ids or attributes. *)

val is_correct : t -> tweet_id:int -> attr:string -> string -> bool
(** True iff the value equals the tweet's ground truth for the attribute
    (false for ambiguous/placeless tweets, which have none). *)

(** Behavioural analyses: Figures 10, 11 and 12, and the Theorem 1/2
    checks. *)

(** Figure 11: breakdown of agreed values into {e entered} and {e selected},
    by completion decile. An agreed value counts as selected when the
    machine had extracted it for that (tweet, attribute) — "the value
    extracted by the machine, out of all adopted values". *)
type breakdown = {
  per_decile : (int * int) array;
      (** (selected, entered) counts per completion decile (10 buckets) *)
}

val figure11 : Runner.outcome -> breakdown

val selected_share : breakdown -> int -> float
(** Selected fraction within one decile (0 when the decile is empty). *)

val early_selected_share : breakdown -> float
(** Selected fraction over the first three deciles — the number the paper
    eyeballs: "clearly higher in the early stages in VRE/I". *)

(** Figure 12: when workers entered extraction rules, as completion-decile
    counts. *)
val figure12 : Runner.outcome -> int array

val median_rule_entry_progress : Runner.outcome -> float option
(** Median completion rate at rule-entry time; [None] without rules. *)

(** Figure 10: the VREI action-choice fragment as an extensive-form tree
    with a chance move for worker accuracy. *)
val figure10_tree : accuracy:float -> Game.Extensive.node

val figure10_expected : accuracy:float -> (string * float) list
(** Expected payoff of each root action (enter correct/incorrect value,
    enter good/bad rule) at the given accuracy — with the paper's 0.9,
    correct actions strictly dominate incorrect ones (Theorem 1's
    engine). *)

(** Theorem 1 (data quality): rational workers enter correct values and
    rules. Measured on a finished run: correctness of typed values on
    unambiguous tweets, and average confidence of entered rules. *)
type theorem1_evidence = {
  value_correct_rate : float;
      (** typed values on clear tweets matching ground truth *)
  rule_avg_confidence : float option;
}

val theorem1 : Runner.outcome -> theorem1_evidence

(** Theorem 2 (termination): VRE/I terminates; rational workers stop
    entering rules. *)
type theorem2_evidence = {
  terminated : bool;  (** the stop condition was reached *)
  rules_finite : int;  (** how many rules were entered in total *)
  last_rule_entry_progress : float option;
      (** completion when the final rule was entered — early under the
          rational strategy *)
}

val theorem2 : Runner.outcome -> theorem2_evidence

(** The Section 8 quality metrics (Table 1).

    Row A classifies each agreed value as the paper's judges did:
    {e correct} (equals the ground truth), {e incorrect} (contradicts a
    known ground truth), or {e neither} (vague values such as "unsettled"
    or "unknown", and any value for a tweet whose attribute has no ground
    truth — the judges could not call those either). Rows B and C average
    rule confidence and support over the extraction rules workers
    entered. *)

type verdict = Correct | Incorrect | Neither

type quality = {
  correct : float;  (** fraction in [0,1] *)
  incorrect : float;
  neither : float;
  total : int;  (** number of agreed values judged *)
}

val judge :
  corpus:Tweets.Generator.tweet list -> tweet_id:int -> attr:string -> string -> verdict
(** Judge one agreed value. *)

val row_a : Runner.outcome -> quality
(** Table 1 row A for a finished run. *)

val row_b : Runner.outcome -> float option
(** Average confidence over entered rules with at least one extraction;
    [None] for variants without rules or when no entered rule matched
    anything. *)

val row_c : Runner.outcome -> float option
(** Average support over all entered rules; [None] for variants without
    rules. *)

val rule_quality :
  Runner.outcome -> (Tweets.Extraction.rule * float * float) list
(** Per entered rule: (rule, confidence, support). *)

val pp_quality : Format.formatter -> quality -> unit
(** "73.5% / 6.7% / 19.8%" rendering. *)

type variant = VE | VEI | VRE | VREI

let all = [ VE; VEI; VRE; VREI ]

let variant_name = function
  | VE -> "VE"
  | VEI -> "VE/I"
  | VRE -> "VRE"
  | VREI -> "VRE/I"

let has_rules = function VRE | VREI -> true | VE | VEI -> false
let has_incentive = function VEI | VREI -> true | VE | VRE -> false

let attrs = [ "weather"; "place" ]
let payoff_agreement = 1
let payoff_rule_adopted = 2
let payoff_rule_contradicted = 1

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let schema_section variant =
  let base =
    [ "  Tweets(tw key, text);";
      "  Agreed(tw key, attr key, value);" ]
  in
  let rules =
    if has_rules variant then
      [ "  Rules(rid key auto, cond, attr, value, p);";
        "  Extracts(tw key, attr key, value key, rid);" ]
    else []
  in
  "schema:\n" ^ String.concat "\n" (base @ rules) ^ "\n"

let facts ~corpus ~workers =
  let buf = Buffer.create 4096 in
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "  Attr(name:%S);\n" a))
    attrs;
  List.iter
    (fun (t : Tweets.Generator.tweet) ->
      Buffer.add_string buf
        (Printf.sprintf "  Tweets(tw:%d, text:\"%s\");\n" t.id (escape t.text)))
    corpus;
  List.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "  Workers(p:%S);\n" w))
    workers;
  Buffer.contents buf

let value_entry_rules =
  {|  VE1: Inputs(tw, attr, value, p)/open[p] <- Tweets(tw, text), Attr(name:attr), Workers(p);
  VE2: Agreed(tw, attr, value) <- Inputs(tw, attr, value, p:p1),
                                  Inputs(tw, attr, value, p:p2), p1 != p2;
|}

let rule_entry_rules =
  {|  VRE1: Rules(rid, cond, attr, value, p)/open[p] <- Workers(p);
  VRE2: Extracts(tw, attr, value, rid) <- Rules(rid, cond, attr, value, p),
                                          Tweets(tw, text),
                                          not Agreed(tw, attr), matches(cond, text);
  VRE3.2: Inputs(tw, attr, value, p)/open[p] <- Extracts(tw, attr, value, rid), Workers(p);
|}

let vei_game =
  {|games:
  game VEI(tw, attr) {
    path:
      VEI1: Path(player:p, action:["value", value]) <- Inputs(tw, attr, value, p);
    payoff:
      VEI2: Path(player:p1, action:["value", v]) {
        VEI2.1: Payoff[p1 += 1, p2 += 1] <- Path(player:p2, action:["value", v]), p1 != p2;
      }
  }
|}

let vrei_game =
  Printf.sprintf
    {|games:
  game VREI() {
    path:
      VREI1: Path(player:p, action:["value", tw, attr, value]) <- Inputs(tw, attr, value, p);
      VREI2: Path(player:p, action:["rule", cond, attr, value]) <- Rules(rid, cond, attr, value, p);
    payoff:
      VREI3.1: Payoff[p1 += %d, p2 += %d] <- Path(player:p1, action:["value", tw, attr, v]),
                                             Path(player:p2, action:["value", tw, attr, v]),
                                             p1 != p2;
      VREI3.2: Payoff[p += %d] <- Extracts(tw, attr, value, rid),
                                  Rules(rid, cond, attr, value, p),
                                  Agreed(tw, attr, value);
      VREI3.3: Payoff[p += 0 - %d] <- Extracts(tw, attr, value, rid),
                                      Rules(rid, cond, attr, value, p),
                                      Agreed(tw, attr, value:adopted), adopted != value;
  }
|}
    payoff_agreement payoff_agreement payoff_rule_adopted payoff_rule_contradicted

let source variant ~corpus ~workers =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf (schema_section variant);
  Buffer.add_string buf "\nrules:\n";
  Buffer.add_string buf (facts ~corpus ~workers);
  Buffer.add_string buf value_entry_rules;
  if has_rules variant then Buffer.add_string buf rule_entry_rules;
  (match variant with
  | VEI -> Buffer.add_string buf ("\n" ^ vei_game)
  | VREI -> Buffer.add_string buf ("\n" ^ vrei_game)
  | VE | VRE -> ());
  Buffer.contents buf

let program variant ~corpus ~workers =
  Cylog.Parser.parse_exn (source variant ~corpus ~workers)

type t = {
  seed : int;
  tweets : (int, Tweets.Generator.tweet) Hashtbl.t;
  memo : (string * int * string, string) Hashtbl.t;
}

let create ~seed ~corpus =
  let tweets = Hashtbl.create (List.length corpus) in
  List.iter (fun (tw : Tweets.Generator.tweet) -> Hashtbl.replace tweets tw.id tw) corpus;
  { seed; tweets; memo = Hashtbl.create 4096 }

let pick_weighted rng choices =
  (* [choices]: (weight, value) list with positive weights. *)
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  let x = Random.State.float rng total in
  let rec go acc = function
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else go (acc +. w) rest
    | [] -> invalid_arg "Beliefs.pick_weighted: empty"
  in
  go 0.0 choices

let draw t (profile : Crowd.Worker.profile) (tw : Tweets.Generator.tweet) attr =
  let rng =
    Random.State.make
      [| t.seed; Hashtbl.hash profile.name; tw.id; Hashtbl.hash attr |]
  in
  match attr with
  | "weather" -> (
      match tw.gt_weather with
      | Some gt ->
          if Random.State.float rng 1.0 < profile.accuracy then gt
          else
            (* Errors are correlated: most wrong workers land on the same
               leading confusion value, so wrong agreements (Table 1's
               "incorrect" row) actually happen. *)
            let confusions =
              match Tweets.Vocabulary.condition_by_value gt with
              | Some c when c.confusions <> [] -> c.confusions
              | _ -> [ "fine" ]
            in
            pick_weighted rng
              (List.mapi
                 (fun i v -> ((if i = 0 then 0.85 else 0.15), v))
                 confusions)
      | None ->
          (* Ambiguous tweet: a vague call, heavily biased to the common
             phrasing so agreement still happens. *)
          pick_weighted rng
            (List.mapi
               (fun i v -> (1.0 /. float_of_int ((i + 1) * (i + 1)), v))
               Tweets.Vocabulary.vague_values))
  | "place" -> (
      match tw.gt_place with
      | Some gt ->
          if Random.State.float rng 1.0 < profile.place_accuracy then gt
          else
            pick_weighted rng
              (List.mapi
                 (fun i v -> ((if i = 0 then 0.9 else 0.1), v))
                 Tweets.Vocabulary.place_confusions)
      | None ->
          if Random.State.float rng 1.0 < 0.9 then Tweets.Vocabulary.unknown_place
          else List.hd Tweets.Vocabulary.place_confusions)
  | a -> invalid_arg ("Beliefs.belief: unknown attribute " ^ a)

let belief t ~worker ~tweet_id ~attr =
  let key = (worker.Crowd.Worker.name, tweet_id, attr) in
  match Hashtbl.find_opt t.memo key with
  | Some v -> v
  | None ->
      let tw =
        match Hashtbl.find_opt t.tweets tweet_id with
        | Some tw -> tw
        | None -> invalid_arg (Printf.sprintf "Beliefs.belief: unknown tweet %d" tweet_id)
      in
      let v = draw t worker tw attr in
      Hashtbl.replace t.memo key v;
      v

let is_correct t ~tweet_id ~attr value =
  match Hashtbl.find_opt t.tweets tweet_id with
  | None -> false
  | Some tw -> (
      match attr with
      | "weather" -> tw.gt_weather = Some value
      | "place" -> tw.gt_place = Some value
      | _ -> false)

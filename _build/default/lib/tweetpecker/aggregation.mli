(** Statistics-based aggregation over a finished run — the alternative
    quality techniques the paper mentions (Section 1: "CyLog can also be
    used to implement other techniques for improving the quality of task
    results, such as statistics-based ones").

    The paper's mechanism adopts the chronologically first two-worker
    agreement. Here the same worker inputs are re-aggregated by plurality
    voting and by the one-coin Dawid–Skene EM model, and all three are
    scored against ground truth. *)

type comparison = {
  agreement_accuracy : float;  (** the paper's first-agreement mechanism *)
  majority_accuracy : float;
  em_accuracy : float;
  em_iterations : int;
  estimated_worker_accuracy : (string * float) list;
      (** EM's per-worker reliability estimate *)
}

val votes_of_outcome : Runner.outcome -> Quality.Aggregate.vote list
(** Every worker input of the run as a vote on item ["tw/attr"]. *)

val compare_methods : Runner.outcome -> comparison
(** Score the three aggregation methods on the run's clear (ground-truthed)
    items. *)

type breakdown = { per_decile : (int * int) array }

let decile_of_fraction f =
  let d = int_of_float (f *. 10.0) in
  if d < 0 then 0 else if d > 9 then 9 else d

let figure11 (o : Runner.outcome) =
  (* An agreement counts as "on a selected value" when some worker accepted
     that machine-extracted value through the candidate interface no later
     than the agreement itself. *)
  let selections = Hashtbl.create 256 in
  List.iter
    (fun (e : Crowd.Simulator.log_entry) ->
      if e.kind = Crowd.Simulator.Select_value then
        let tw =
          match List.assoc_opt "tw" e.values with
          | Some (Reldb.Value.Int i) -> i
          | _ -> -1
        in
        let attr =
          Reldb.Value.to_display
            (Option.value (List.assoc_opt "attr" e.values) ~default:Reldb.Value.Null)
        in
        let value =
          Reldb.Value.to_display
            (Option.value (List.assoc_opt "value" e.values) ~default:Reldb.Value.Null)
        in
        let key = (tw, attr, value) in
        match Hashtbl.find_opt selections key with
        | Some first when first <= e.clock -> ()
        | _ -> Hashtbl.replace selections key e.clock)
    o.sim.log;
  let per_decile = Array.make 10 (0, 0) in
  let total = List.length o.agreed_events in
  List.iteri
    (fun i (clock, tw, attr, value) ->
      let completion = float_of_int i /. float_of_int (max 1 total) in
      let d = decile_of_fraction completion in
      let selected, entered = per_decile.(d) in
      let was_selected =
        match Hashtbl.find_opt selections (tw, attr, value) with
        | Some first -> first <= clock
        | None -> false
      in
      if was_selected then per_decile.(d) <- (selected + 1, entered)
      else per_decile.(d) <- (selected, entered + 1))
    o.agreed_events;
  { per_decile }

let selected_share b d =
  let selected, entered = b.per_decile.(d) in
  let total = selected + entered in
  if total = 0 then 0.0 else float_of_int selected /. float_of_int total

let early_selected_share b =
  let selected = ref 0 and total = ref 0 in
  for d = 0 to 2 do
    let s, e = b.per_decile.(d) in
    selected := !selected + s;
    total := !total + s + e
  done;
  if !total = 0 then 0.0 else float_of_int !selected /. float_of_int !total

let rule_entries (o : Runner.outcome) =
  List.filter
    (fun (e : Crowd.Simulator.log_entry) -> e.kind = Crowd.Simulator.Enter_rule)
    o.sim.log

let figure12 o =
  let buckets = Array.make 10 0 in
  List.iter
    (fun (e : Crowd.Simulator.log_entry) ->
      let d = decile_of_fraction e.progress in
      buckets.(d) <- buckets.(d) + 1)
    (rule_entries o);
  buckets

let median_rule_entry_progress o =
  match List.sort compare (List.map (fun (e : Crowd.Simulator.log_entry) -> e.progress) (rule_entries o)) with
  | [] -> None
  | xs -> Some (List.nth xs (List.length xs / 2))

(* Figure 10: one worker's action choice in VREI, with worker accuracy as a
   chance move. Payoff 1 pays w1 on agreement; an entered rule pays w2 when
   its extraction is adopted (payoff 2a) and costs w3 when contradicted
   (payoff 2b). Another worker agrees with a correct value with probability
   [accuracy] and with a given incorrect value with roughly
   [(1 - accuracy) / 2] (two confusion values). *)
let figure10_tree ~accuracy =
  let w1 = float_of_int Programs.payoff_agreement in
  let w2 = float_of_int Programs.payoff_rule_adopted in
  let w3 = float_of_int Programs.payoff_rule_contradicted in
  let q = accuracy in
  let wrong_match = (1.0 -. q) /. 2.0 in
  let chance p win lose =
    Game.Extensive.Chance
      [ (p, "adopted", Game.Extensive.Terminal [ ("worker", win) ]);
        (1.0 -. p, "contradicted", Game.Extensive.Terminal [ ("worker", lose) ]) ]
  in
  Game.Extensive.Decision
    {
      player = "worker";
      info_set = "worker:action";
      moves =
        [ ("enter correct value", chance q w1 0.0);
          ("enter incorrect value", chance wrong_match w1 0.0);
          ("enter good rule", chance q w2 (-.w3));
          ("enter bad rule", chance (1.0 -. q) w2 (-.w3)) ];
    }

let figure10_expected ~accuracy =
  match figure10_tree ~accuracy with
  | Game.Extensive.Decision { moves; info_set; _ } ->
      List.map
        (fun (move, _) ->
          let payoffs =
            Game.Extensive.expected_payoffs (figure10_tree ~accuracy)
              [ (info_set, move) ]
          in
          (move, List.assoc "worker" payoffs))
        moves
  | _ -> []

type theorem1_evidence = {
  value_correct_rate : float;
  rule_avg_confidence : float option;
}

let theorem1 (o : Runner.outcome) =
  (* Correctness of the workers' value entries, measured on the Inputs
     relation (every value a worker gave, typed or selected) restricted to
     tweets whose attribute has a ground truth. *)
  let inputs =
    match Reldb.Database.find (Cylog.Engine.database o.engine) "Inputs" with
    | Some rel -> Reldb.Relation.tuples rel
    | None -> []
  in
  let clear_inputs =
    List.filter_map
      (fun t ->
        let tw =
          match Reldb.Tuple.get_or_null t "tw" with Reldb.Value.Int i -> i | _ -> -1
        in
        let attr = Reldb.Value.to_display (Reldb.Tuple.get_or_null t "attr") in
        let value = Reldb.Value.to_display (Reldb.Tuple.get_or_null t "value") in
        match List.find_opt (fun (x : Tweets.Generator.tweet) -> x.id = tw) o.corpus with
        | Some tweet -> (
            match (attr, tweet.gt_weather, tweet.gt_place) with
            | "weather", Some gt, _ -> Some (String.equal value gt)
            | "place", _, Some gt -> Some (String.equal value gt)
            | _ -> None)
        | None -> None)
      inputs
  in
  let correct = List.length (List.filter Fun.id clear_inputs) in
  let total = List.length clear_inputs in
  {
    value_correct_rate =
      (if total = 0 then 0.0 else float_of_int correct /. float_of_int total);
    rule_avg_confidence = Metrics.row_b o;
  }

type theorem2_evidence = {
  terminated : bool;
  rules_finite : int;
  last_rule_entry_progress : float option;
}

let theorem2 (o : Runner.outcome) =
  let entries = rule_entries o in
  let last =
    List.fold_left
      (fun acc (e : Crowd.Simulator.log_entry) ->
        match acc with
        | Some p when p >= e.progress -> acc
        | _ -> Some e.progress)
      None entries
  in
  {
    terminated = o.sim.stop_reason = `Stopped;
    rules_finite = List.length entries;
    last_rule_entry_progress = last;
  }

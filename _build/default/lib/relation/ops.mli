(** Relational-algebra operations over tuple lists.

    These are the machine-side building blocks the paper assumes from its
    deductive-database substrate: selection, projection, natural join, and
    friends. They operate on plain tuple lists (row order preserved) so they
    compose without touching relation state. *)

val select : (Tuple.t -> bool) -> Tuple.t list -> Tuple.t list
(** Keep tuples satisfying the predicate. *)

val select_eq : string -> Value.t -> Tuple.t list -> Tuple.t list
(** Keep tuples whose attribute equals the value. *)

val project : string list -> Tuple.t list -> Tuple.t list
(** Project each tuple on the attributes, de-duplicating the result (set
    semantics), preserving first-occurrence order. *)

val rename : (string * string) list -> Tuple.t list -> Tuple.t list
(** [rename [(old, new); ...] ts] renames attributes in every tuple.
    Unmentioned attributes are kept. *)

val natural_join : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Join on all shared attributes; tuples pair iff shared attributes agree.
    Output order is the nested-loop order (left outer, right inner) the
    CyLog engine uses for conflict resolution. *)

val product : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Cartesian product. @raise Invalid_argument if attribute sets overlap. *)

val union : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Set union preserving first-occurrence order. *)

val difference : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Tuples of the first list absent from the second. *)

val intersection : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Tuples present in both lists, in first-list order. *)

val distinct : Tuple.t list -> Tuple.t list
(** Remove duplicates, preserving first-occurrence order. *)

val group_by : string list -> Tuple.t list -> (Tuple.t * Tuple.t list) list
(** Group tuples by their projection on the attributes; groups appear in
    first-occurrence order, members in input order. *)

val count : Tuple.t list -> int
(** List length (for symmetry with aggregate readers). *)

val aggregate_int :
  key:string list -> value:string -> init:int -> f:(int -> int -> int) ->
  Tuple.t list -> (Tuple.t * int) list
(** Fold an integer attribute per group: [aggregate_int ~key ~value ~init ~f]
    groups by [key] and folds [f] over the [value] attribute (non-integer
    values are skipped). *)

let select p ts = List.filter p ts
let select_eq a v ts = List.filter (fun t -> Value.equal (Tuple.get_or_null t a) v) ts

let distinct ts =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t then false
      else begin
        Hashtbl.replace seen t ();
        true
      end)
    ts

let project attrs ts = distinct (List.map (fun t -> Tuple.project t attrs) ts)

let rename mapping ts =
  let rename_one t =
    List.fold_left
      (fun acc (a, v) ->
        let a' = match List.assoc_opt a mapping with Some n -> n | None -> a in
        Tuple.set acc a' v)
      Tuple.empty (Tuple.to_list t)
  in
  List.map rename_one ts

let natural_join left right =
  (* Shared attributes are computed per tuple pair so heterogeneous tuple
     lists still join symmetrically. *)
  List.concat_map
    (fun lt ->
      List.filter_map
        (fun rt ->
          let agree =
            List.for_all
              (fun a ->
                (not (Tuple.mem rt a))
                || Value.equal (Tuple.get_exn lt a) (Tuple.get_or_null rt a))
              (Tuple.attributes lt)
          in
          if agree then Some (Tuple.union lt rt) else None)
        right)
    left

let all_attributes ts =
  List.sort_uniq String.compare (List.concat_map Tuple.attributes ts)

let product left right =
  let overlap =
    List.filter (fun a -> List.mem a (all_attributes right)) (all_attributes left)
  in
  if overlap <> [] then
    invalid_arg ("Ops.product: shared attributes " ^ String.concat "," overlap);
  List.concat_map (fun lt -> List.map (fun rt -> Tuple.union lt rt) right) left

let union a b = distinct (a @ b)

let difference a b =
  let in_b = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace in_b t ()) b;
  List.filter (fun t -> not (Hashtbl.mem in_b t)) a

let intersection a b =
  let in_b = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace in_b t ()) b;
  distinct (List.filter (fun t -> Hashtbl.mem in_b t) a)

let group_by attrs ts =
  let order = ref [] in
  let groups : (Tuple.t, Tuple.t list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let k = Tuple.project t attrs in
      match Hashtbl.find_opt groups k with
      | Some members -> members := t :: !members
      | None ->
          Hashtbl.replace groups k (ref [ t ]);
          order := k :: !order)
    ts;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find groups k))) !order

let count = List.length

let aggregate_int ~key ~value ~init ~f ts =
  List.map
    (fun (k, members) ->
      let total =
        List.fold_left
          (fun acc t ->
            match Tuple.get_or_null t value with
            | Value.Int i -> f acc i
            | _ -> acc)
          init members
      in
      (k, total))
    (group_by key ts)

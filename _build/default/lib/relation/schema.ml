type t = {
  name : string;
  attributes : string list;
  key : string list;
  auto_increment : string option;
}

let rec has_dup = function
  | [] -> false
  | x :: rest -> List.mem x rest || has_dup rest

let make ?(key = []) ?auto_increment ~name attributes =
  if attributes = [] then invalid_arg "Schema.make: no attributes";
  if has_dup attributes then
    invalid_arg ("Schema.make: duplicate attribute in " ^ name);
  let known a = List.mem a attributes in
  List.iter
    (fun a ->
      if not (known a) then
        invalid_arg (Printf.sprintf "Schema.make: key attribute %s not in %s" a name))
    key;
  (match auto_increment with
  | Some a when not (known a) ->
      invalid_arg (Printf.sprintf "Schema.make: auto attribute %s not in %s" a name)
  | _ -> ());
  { name; attributes; key; auto_increment }

let name s = s.name
let attributes s = s.attributes
let key s = s.key
let auto_increment s = s.auto_increment
let has_attribute s a = List.mem a s.attributes
let arity s = List.length s.attributes

let equal a b =
  String.equal a.name b.name
  && a.attributes = b.attributes
  && a.key = b.key
  && a.auto_increment = b.auto_increment

let pp ppf s =
  let attr ppf a =
    Format.pp_print_string ppf a;
    if List.mem a s.key then Format.pp_print_string ppf " key";
    if s.auto_increment = Some a then Format.pp_print_string ppf " auto"
  in
  Format.fprintf ppf "%s(%a)" s.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") attr)
    s.attributes

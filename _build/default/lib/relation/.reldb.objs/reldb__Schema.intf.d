lib/relation/schema.mli: Format

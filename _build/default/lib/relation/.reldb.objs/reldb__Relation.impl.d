lib/relation/relation.ml: Dynarray Format Hashtbl List Option Printf Schema Tuple Value

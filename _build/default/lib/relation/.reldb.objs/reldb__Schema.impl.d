lib/relation/schema.ml: Format List Printf String

lib/relation/tuple.ml: Format Hashtbl List Option Schema String Value

lib/relation/tuple.mli: Format Schema Value

lib/relation/ops.mli: Tuple Value

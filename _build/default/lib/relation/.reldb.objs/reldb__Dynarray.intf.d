lib/relation/dynarray.mli:

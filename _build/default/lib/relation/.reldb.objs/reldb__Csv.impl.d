lib/relation/csv.ml: Buffer Database List Printf Relation Schema String Tuple Value

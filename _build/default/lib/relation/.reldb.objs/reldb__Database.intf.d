lib/relation/database.mli: Format Relation Schema

lib/relation/database.ml: Format Hashtbl List Printf Relation Schema

lib/relation/value.ml: Format Hashtbl List Printf Stdlib String

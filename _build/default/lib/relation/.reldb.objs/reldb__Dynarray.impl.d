lib/relation/dynarray.ml: Array List Printf

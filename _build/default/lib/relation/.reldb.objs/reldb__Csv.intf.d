lib/relation/csv.mli: Database Relation Value

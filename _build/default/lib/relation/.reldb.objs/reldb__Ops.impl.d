lib/relation/ops.ml: Hashtbl List String Tuple Value

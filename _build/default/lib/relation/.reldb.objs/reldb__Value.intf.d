lib/relation/value.mli: Format

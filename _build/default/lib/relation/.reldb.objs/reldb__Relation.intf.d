lib/relation/relation.mli: Format Schema Tuple Value

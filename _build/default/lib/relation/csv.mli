(** CSV import/export for relations.

    A pragmatic RFC-4180 dialect: comma-separated, double-quoted fields
    with doubled inner quotes, LF or CRLF records. Import reads a header
    row of attribute names and types each field by shape ([null], [true]/
    [false], integer, float, otherwise string); export writes the schema's
    attributes in declaration order. *)

val parse : string -> string list list
(** Raw records. Empty trailing line ignored; fields may span lines when
    quoted. *)

val print : string list list -> string
(** Render records, quoting any field containing commas, quotes or
    newlines. *)

val typed_value : string -> Value.t
(** The import typing heuristic for one field. *)

exception Error of string

val import : Database.t -> name:string -> string -> Relation.t
(** [import db ~name csv] declares (or reuses) a keyless relation named
    [name] whose attributes come from the header row, and inserts one tuple
    per record. @raise Error on an empty input, ragged rows, or a schema
    conflict with an existing relation. *)

val export : Relation.t -> string
(** Header plus one record per live tuple, in row order. Values render via
    {!Value.to_display}, except [Null] which exports as [null]. *)

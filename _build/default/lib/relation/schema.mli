(** Relation schemas.

    A schema names a relation and its attributes (CyLog uses the named
    perspective: tuples bind values to attribute names, never to positions).
    A schema may declare a key — e.g. the paper keys [Extracts] on
    [(tw, attr, value)] so that the machine extracts a value for an attribute
    of a tweet only once — and at most one auto-increment attribute, used for
    ids such as [Rules.rid] and path-table [order] columns. *)

type t

val make : ?key:string list -> ?auto_increment:string -> name:string -> string list -> t
(** [make ~key ~auto_increment ~name attrs] builds a schema.
    @raise Invalid_argument if [attrs] contains duplicates, is empty, or if
    [key]/[auto_increment] mention unknown attributes. *)

val name : t -> string
(** Relation name. *)

val attributes : t -> string list
(** Attribute names, in declaration order. *)

val key : t -> string list
(** Declared key attributes; [[]] when the whole tuple is the key (set
    semantics). *)

val auto_increment : t -> string option
(** The auto-increment attribute, if any. *)

val has_attribute : t -> string -> bool
(** [has_attribute s a] is true iff [a] is an attribute of [s]. *)

val arity : t -> int
(** Number of attributes. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** [Name(a, b key, c auto)]-style rendering. *)

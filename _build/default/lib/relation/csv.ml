exception Error of string

let parse text =
  let n = String.length text in
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec plain i =
    if i >= n then (if !fields <> [] || Buffer.length buf > 0 then flush_record ())
    else
      match text.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\r' when i + 1 < n && text.[i + 1] = '\n' ->
          flush_record ();
          plain (i + 2)
      | '\n' ->
          flush_record ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then raise (Error "unterminated quoted field")
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !records

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let print_field s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let print records =
  String.concat ""
    (List.map (fun r -> String.concat "," (List.map print_field r) ^ "\n") records)

let typed_value field =
  match field with
  | "" | "null" -> Value.Null
  | "true" -> Value.Bool true
  | "false" -> Value.Bool false
  | _ -> (
      match int_of_string_opt field with
      | Some i -> Value.Int i
      | None -> (
          match float_of_string_opt field with
          | Some f -> Value.Float f
          | None -> Value.String field))

let import db ~name csv =
  match parse csv with
  | [] -> raise (Error "empty CSV input")
  | header :: rows ->
      if header = [] then raise (Error "empty header row");
      let schema =
        try Schema.make ~name header
        with Invalid_argument m -> raise (Error m)
      in
      let rel =
        try Database.declare db schema with Invalid_argument m -> raise (Error m)
      in
      List.iteri
        (fun i row ->
          if List.length row <> List.length header then
            raise (Error (Printf.sprintf "row %d has %d fields, expected %d" (i + 1)
                            (List.length row) (List.length header)));
          let tuple = Tuple.of_list (List.combine header (List.map typed_value row)) in
          ignore (Relation.insert rel tuple))
        rows;
      rel

let export rel =
  let attrs = Schema.attributes (Relation.schema rel) in
  let row tuple =
    List.map
      (fun a ->
        match Tuple.get_or_null tuple a with
        | Value.Null -> "null"
        | v -> Value.to_display v)
      attrs
  in
  print (attrs :: List.map row (Relation.tuples rel))

(** A named collection of relations — the store a CyLog program runs
    against. *)

type t

val create : unit -> t
(** Empty database. *)

val declare : t -> Schema.t -> Relation.t
(** [declare db s] creates an empty relation for [s] and registers it.
    @raise Invalid_argument if a relation with the same name exists with a
    different schema; returns the existing relation when the schema is
    identical. *)

val find : t -> string -> Relation.t option
(** Relation by name, if declared. *)

val find_exn : t -> string -> Relation.t
(** Relation by name. @raise Not_found when undeclared. *)

val mem : t -> string -> bool
(** True iff a relation with this name is declared. *)

val relations : t -> Relation.t list
(** All relations in declaration order. *)

val names : t -> string list
(** Relation names in declaration order. *)

val total_tuples : t -> int
(** Sum of live cardinalities over all relations. *)

val generation : t -> int
(** Sum of relation generations: changes whenever any relation changes. *)

val copy : t -> t
(** Deep copy of every relation. *)

val pp : Format.formatter -> t -> unit
(** Render every relation. *)

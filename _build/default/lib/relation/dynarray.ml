type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let length a = a.len

let check a i =
  if i < 0 || i >= a.len then
    invalid_arg (Printf.sprintf "Dynarray: index %d out of bounds [0,%d)" i a.len)

let get a i =
  check a i;
  a.data.(i)

let set a i x =
  check a i;
  a.data.(i) <- x

let grow a x =
  let cap = Array.length a.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data' = Array.make cap' x in
  Array.blit a.data 0 data' 0 a.len;
  a.data <- data'

let push a x =
  if a.len = Array.length a.data then grow a x;
  a.data.(a.len) <- x;
  a.len <- a.len + 1;
  a.len - 1

let iter f a =
  for i = 0 to a.len - 1 do
    f a.data.(i)
  done

let iteri f a =
  for i = 0 to a.len - 1 do
    f i a.data.(i)
  done

let fold_left f acc a =
  let r = ref acc in
  for i = 0 to a.len - 1 do
    r := f !r a.data.(i)
  done;
  !r

let exists p a =
  let rec loop i = i < a.len && (p a.data.(i) || loop (i + 1)) in
  loop 0

let find_index p a =
  let rec loop i =
    if i >= a.len then None else if p a.data.(i) then Some i else loop (i + 1)
  in
  loop 0

let to_list a =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (a.data.(i) :: acc) in
  loop (a.len - 1) []

let of_list l =
  let a = create () in
  List.iter (fun x -> ignore (push a x)) l;
  a

let clear a =
  a.data <- [||];
  a.len <- 0

(* Representation: association list strictly sorted by attribute name. The
   sorted-list form is canonical — two tuples with the same bindings are
   structurally identical — so polymorphic equality and hashing used by
   hash tables downstream are safe. *)

type t = (string * Value.t) list

let empty = []

let rec set t a v =
  match t with
  | [] -> [ (a, v) ]
  | ((a', _) as hd) :: rest ->
      let c = String.compare a a' in
      if c < 0 then (a, v) :: t
      else if c = 0 then (a, v) :: rest
      else hd :: set rest a v

let of_list bindings = List.fold_left (fun t (a, v) -> set t a v) empty bindings
let to_list t = t
let get t a = List.assoc_opt a t
let get_or_null t a = Option.value (List.assoc_opt a t) ~default:Value.Null
let get_exn t a = match List.assoc_opt a t with Some v -> v | None -> raise Not_found
let mem t a = List.mem_assoc a t
let attributes t = List.map fst t
let cardinal = List.length

let project t attrs =
  of_list (List.map (fun a -> (a, get_or_null t a)) attrs)

let matches t pattern =
  List.for_all (fun (a, v) -> Value.equal (get_or_null t a) v) pattern

let rec union a b =
  match (a, b) with
  | [], t | t, [] -> t
  | ((ka, _) as ha) :: ra, ((kb, _) as hb) :: rb ->
      let c = String.compare ka kb in
      if c < 0 then ha :: union ra b
      else if c > 0 then hb :: union a rb
      else hb :: union ra rb

let conforms t schema = List.for_all (Schema.has_attribute schema) (attributes t)

let complete t schema =
  of_list (List.map (fun a -> (a, get_or_null t a)) (Schema.attributes schema))

let rec equal a b =
  match (a, b) with
  | [], [] -> true
  | (ka, va) :: ra, (kb, vb) :: rb ->
      String.equal ka kb && Value.equal va vb && equal ra rb
  | _ -> false

let rec compare a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (ka, va) :: ra, (kb, vb) :: rb ->
      let c = String.compare ka kb in
      if c <> 0 then c
      else
        let c = Value.compare va vb in
        if c <> 0 then c else compare ra rb

let hash t =
  List.fold_left (fun acc (a, v) -> (acc * 31) + Hashtbl.hash a + Value.hash v) 3 t

let pp ppf t =
  let binding ppf (a, v) = Format.fprintf ppf "%s:%a" a Value.pp v in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") binding)
    t

let to_string t = Format.asprintf "%a" pp t

(** Growable arrays.

    OCaml 5.1's standard library does not yet ship [Dynarray] (it arrived in
    5.2), so the relational substrate carries its own minimal implementation.
    Elements keep their insertion index for the whole lifetime of the array;
    removal is expressed by the client storing an explicit liveness flag, not
    by shifting, because CyLog's conflict resolution ranks tuples by the row
    at which they first appeared. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty dynamic array. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val get : 'a t -> int -> 'a
(** [get a i] is the [i]-th element. @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set a i x] replaces the [i]-th element. @raise Invalid_argument if out
    of bounds. *)

val push : 'a t -> 'a -> int
(** [push a x] appends [x] and returns its index. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate in index (= insertion) order. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
(** Like {!iter} with the index. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold in index order. *)

val exists : ('a -> bool) -> 'a t -> bool
(** [exists p a] is true iff some element satisfies [p]. *)

val find_index : ('a -> bool) -> 'a t -> int option
(** Index of the first element satisfying the predicate, if any. *)

val to_list : 'a t -> 'a list
(** Elements in index order. *)

val of_list : 'a list -> 'a t
(** Array holding the given elements in order. *)

val clear : 'a t -> unit
(** Remove all elements. *)

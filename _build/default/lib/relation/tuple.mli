(** Tuples under the named perspective.

    A tuple is a finite map from attribute names to {!Value.t}. Attribute
    order is canonicalised internally, so two tuples with the same bindings
    are {!equal} regardless of construction order. *)

type t

val empty : t
(** The tuple with no bindings. *)

val of_list : (string * Value.t) list -> t
(** [of_list bindings] builds a tuple. A later binding for the same
    attribute overrides an earlier one. *)

val to_list : t -> (string * Value.t) list
(** Bindings sorted by attribute name. *)

val get : t -> string -> Value.t option
(** [get t a] is the value bound to [a], if any. *)

val get_or_null : t -> string -> Value.t
(** Like {!get}, defaulting to [Value.Null] for unbound attributes. *)

val get_exn : t -> string -> Value.t
(** Like {!get}. @raise Not_found when unbound. *)

val set : t -> string -> Value.t -> t
(** [set t a v] binds [a] to [v] (replacing any previous binding). *)

val mem : t -> string -> bool
(** [mem t a] is true iff [a] is bound in [t]. *)

val attributes : t -> string list
(** Bound attribute names, sorted. *)

val cardinal : t -> int
(** Number of bindings. *)

val project : t -> string list -> t
(** [project t attrs] keeps only the bindings for [attrs]; missing
    attributes are bound to [Value.Null]. *)

val matches : t -> (string * Value.t) list -> bool
(** [matches t pattern] is true iff every [(a, v)] in [pattern] has
    [get_or_null t a] equal to [v]. *)

val union : t -> t -> t
(** [union a b] has all bindings of both; [b] wins on conflicts. *)

val conforms : t -> Schema.t -> bool
(** [conforms t s] is true iff every bound attribute of [t] belongs to
    [s]. *)

val complete : t -> Schema.t -> t
(** [complete t s] binds every attribute of [s] missing from [t] to
    [Value.Null] and drops attributes not in [s]. *)

val equal : t -> t -> bool
(** Structural equality over bindings. *)

val compare : t -> t -> int
(** Total order, consistent with {!equal}. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val pp : Format.formatter -> t -> unit
(** [(a:1, b:"x")]-style rendering. *)

val to_string : t -> string
(** Rendering via {!pp}. *)

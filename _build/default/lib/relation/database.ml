type t = {
  by_name : (string, Relation.t) Hashtbl.t;
  mutable order : string list;  (* reverse declaration order *)
}

let create () = { by_name = Hashtbl.create 16; order = [] }

let declare db schema =
  let n = Schema.name schema in
  match Hashtbl.find_opt db.by_name n with
  | Some r ->
      if Schema.equal (Relation.schema r) schema then r
      else
        invalid_arg
          (Printf.sprintf "Database.declare: %s already declared with schema %s" n
             (Format.asprintf "%a" Schema.pp (Relation.schema r)))
  | None ->
      let r = Relation.create schema in
      Hashtbl.replace db.by_name n r;
      db.order <- n :: db.order;
      r

let find db n = Hashtbl.find_opt db.by_name n

let find_exn db n =
  match find db n with Some r -> r | None -> raise Not_found

let mem db n = Hashtbl.mem db.by_name n
let names db = List.rev db.order
let relations db = List.map (fun n -> Hashtbl.find db.by_name n) (names db)

let total_tuples db =
  List.fold_left (fun acc r -> acc + Relation.cardinal r) 0 (relations db)

let generation db =
  List.fold_left (fun acc r -> acc + Relation.generation r) 0 (relations db)

let copy db =
  let fresh = create () in
  List.iter
    (fun n ->
      Hashtbl.replace fresh.by_name n (Relation.copy (Hashtbl.find db.by_name n)))
    (names db);
  fresh.order <- db.order;
  fresh

let pp ppf db =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,") Relation.pp)
    (relations db)

type rule = { cond : string; attr : string; value : string }

(* Compiled-pattern cache shared across all metric computations. *)
let cache : (string, Regex.Engine.t option) Hashtbl.t = Hashtbl.create 64

let compiled cond =
  match Hashtbl.find_opt cache cond with
  | Some c -> c
  | None ->
      let c =
        match Regex.Engine.compile ~case_insensitive:true cond with
        | Ok r -> Some r
        | Error _ -> None
      in
      Hashtbl.replace cache cond c;
      c

let applies r text =
  match compiled r.cond with
  | Some re -> Regex.Engine.search re text
  | None -> false

let matching r tweets = List.filter (fun (t : Generator.tweet) -> applies r t.text) tweets

let support r tweets =
  match tweets with
  | [] -> 0.0
  | _ -> float_of_int (List.length (matching r tweets)) /. float_of_int (List.length tweets)

let confidence r tweets ~agreed =
  let extracted = matching r tweets in
  match extracted with
  | [] -> 0.0
  | _ ->
      let hits =
        List.length
          (List.filter
             (fun (t : Generator.tweet) ->
               match agreed ~tweet_id:t.id ~attr:r.attr with
               | Some v -> String.equal v r.value
               | None -> false)
             extracted)
      in
      float_of_int hits /. float_of_int (List.length extracted)

let good_rules () =
  let weather =
    List.concat_map
      (fun (c : Vocabulary.condition) ->
        List.map (fun kw -> { cond = kw; attr = "weather"; value = c.value }) c.keywords)
      Vocabulary.conditions
  in
  let place =
    List.map (fun city -> { cond = city; attr = "place"; value = city }) Vocabulary.cities
  in
  weather @ place

let bad_rules () =
  (* Wrong mappings: a real (mid-tier) keyword pointing at a confusion
     value — decent support, near-zero confidence. *)
  let wrong =
    List.concat_map
      (fun (c : Vocabulary.condition) ->
        match (c.keywords, c.confusions) with
        | _ :: kw :: _, confusion :: _ ->
            [ { cond = kw; attr = "weather"; value = confusion } ]
        | [ kw ], confusion :: _ -> [ { cond = kw; attr = "weather"; value = confusion } ]
        | _ -> [])
      Vocabulary.conditions
  in
  (* Over-specific conditions matching a couple of tweets at best, mapping
     to non-canonical values that never survive agreement. *)
  let narrow =
    [ { cond = "downpour in Tokyo"; attr = "weather"; value = "wet" };
      { cond = "flurries .* Sapporo"; attr = "weather"; value = "icy" };
      { cond = "gales all day"; attr = "weather"; value = "blustery" };
      { cond = "since dawn, take care"; attr = "weather"; value = "dawn-storm" } ]
  in
  (* Junk conditions that match nothing (zero support and confidence). *)
  let junk =
    [ { cond = "zzzz+q"; attr = "weather"; value = "snowy" };
      { cond = "("; attr = "weather"; value = "windy" } ]
  in
  wrong @ narrow @ junk

let pp ppf r = Format.fprintf ppf "(%S, %s, %s)" r.cond r.attr r.value

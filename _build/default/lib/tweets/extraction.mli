(** Extraction rules and their quality metrics.

    An extraction rule is the paper's triple (condition, attribute, value):
    if a tweet matches the regex [cond], the machine proposes [value] for
    [attribute]. Confidence and support are the Section 8 metrics:

    - confidence = #values extracted by the rule and agreed
                 / #values extracted by the rule
    - support    = #tweets matching the rule / #all tweets *)

type rule = { cond : string; attr : string; value : string }

val applies : rule -> string -> bool
(** [applies r text]: the condition occurs in the text (case-insensitive
    regex containment — [matches(cond, tw)]). Malformed conditions never
    apply. *)

val matching : rule -> Generator.tweet list -> Generator.tweet list
(** Tweets the rule's condition matches. *)

val support : rule -> Generator.tweet list -> float
(** Fraction of the corpus the rule matches; 0 on an empty corpus. *)

val confidence :
  rule -> Generator.tweet list ->
  agreed:(tweet_id:int -> attr:string -> string option) -> float
(** [confidence r tweets ~agreed]: among tweets the rule matches (its
    extractions), the fraction whose agreed value for [r.attr] equals
    [r.value]. Tweets without an agreed value count against the rule
    (extracted but never adopted). 0 when the rule matches nothing. *)

val good_rules : unit -> rule list
(** The pool of well-made weather rules over the corpus vocabulary: one
    per (keyword, condition), mapping the keyword to the canonical value,
    most-supported first. *)

val bad_rules : unit -> rule list
(** Plausible-but-poor rules: wrong value mappings, over-broad conditions
    (matching the corpus tag), and junk conditions. *)

val pp : Format.formatter -> rule -> unit
(** [("rain", weather, rainy)]-style rendering. *)

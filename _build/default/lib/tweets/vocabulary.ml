type condition = {
  value : string;
  keywords : string list;
  confusions : string list;
}

let conditions =
  [ { value = "sunny";
      keywords = [ "sunshine"; "clear skies"; "bright sun"; "blue sky" ];
      confusions = [ "fine"; "hot" ] };
    { value = "rainy";
      keywords = [ "rain"; "drizzle"; "showers"; "downpour" ];
      confusions = [ "wet"; "stormy" ] };
    { value = "cloudy";
      keywords = [ "clouds"; "overcast"; "grey skies" ];
      confusions = [ "foggy"; "dull" ] };
    { value = "snowy";
      keywords = [ "snow"; "snowfall"; "flurries" ];
      confusions = [ "icy"; "cold" ] };
    { value = "stormy";
      keywords = [ "thunderstorm"; "typhoon"; "lightning" ];
      confusions = [ "rainy"; "windy" ] };
    { value = "foggy";
      keywords = [ "fog"; "mist"; "haze" ];
      confusions = [ "cloudy"; "smoggy" ] };
    { value = "windy";
      keywords = [ "strong wind"; "gusts"; "gales" ];
      confusions = [ "stormy"; "breezy" ] } ]

let condition_by_value v = List.find_opt (fun c -> String.equal c.value v) conditions
let canonical_values = List.map (fun c -> c.value) conditions

let cities =
  [ "Tsukuba"; "Tokyo"; "Osaka"; "Sapporo"; "Sendai"; "Nagoya"; "Kyoto";
    "Fukuoka"; "Hiroshima"; "Niigata"; "Kanazawa"; "Matsuyama"; "Naha";
    "Kobe"; "Yokohama"; "Chiba"; "Shizuoka"; "Okayama"; "Kumamoto"; "Akita" ]

let place_confusions = [ "Japan"; "Kanto" ]
let vague_values = [ "unsettled"; "changeable"; "mixed" ]
let unknown_place = "unknown"

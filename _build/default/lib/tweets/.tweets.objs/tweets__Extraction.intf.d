lib/tweets/extraction.mli: Format Generator

lib/tweets/vocabulary.mli:

lib/tweets/vocabulary.ml: List String

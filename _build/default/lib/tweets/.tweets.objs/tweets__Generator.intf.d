lib/tweets/generator.mli: Format

lib/tweets/extraction.ml: Format Generator Hashtbl List Regex String Vocabulary

lib/tweets/generator.ml: Char Format List Option Printf Random String Vocabulary

(** The weather vocabulary behind the synthetic #tenki corpus.

    The paper's dataset is 463 Japanese weather tweets collected over 16
    days in 2013; we substitute a seeded generator over a fixed vocabulary
    of weather conditions and cities. Each condition carries the canonical
    attribute value workers are expected to extract, the surface keywords
    that appear in tweet text, and the confusion values unreliable workers
    enter instead. *)

type condition = {
  value : string;  (** canonical extracted value, e.g. "rainy" *)
  keywords : string list;
      (** surface forms in tweet text, most common first, e.g. "rain",
          "drizzle" *)
  confusions : string list;  (** plausible wrong answers, e.g. "cloudy" *)
}

val conditions : condition list
(** The seven weather conditions of the corpus. *)

val condition_by_value : string -> condition option
(** Look up a condition by its canonical value. *)

val canonical_values : string list
(** All canonical values, in {!conditions} order. *)

val cities : string list
(** Japanese cities appearing as tweet locations. *)

val place_confusions : string list
(** Wrong answers workers give for the place attribute. *)

val vague_values : string list
(** Answers workers give on ambiguous tweets (classified "neither" by
    judges), most common first. *)

val unknown_place : string
(** The answer workers give when a tweet names no place. *)

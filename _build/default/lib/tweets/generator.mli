(** Seeded synthetic #tenki tweet generator.

    The generated corpus mirrors the structural properties Table 1 depends
    on: most tweets state a weather condition through a vocabulary keyword
    and name a city; a fraction are {e ambiguous} about the weather (the
    judges' "neither" class) and a fraction name no place. The same seed
    always produces the same corpus. *)

type tweet = {
  id : int;
  text : string;
  gt_weather : string option;
      (** canonical weather value, [None] for ambiguous tweets *)
  gt_place : string option;  (** city, [None] when the tweet names none *)
}

val default_count : int
(** 463 — the paper's corpus size. *)

val generate :
  ?seed:int -> ?ambiguous_rate:float -> ?placeless_rate:float -> int -> tweet list
(** [generate n] builds [n] tweets. Defaults: [seed] 2013 (the collection
    year), [ambiguous_rate] 0.25, [placeless_rate] 0.15. *)

val corpus : unit -> tweet list
(** [generate default_count] with all defaults — the standard corpus every
    experiment uses. *)

val is_ambiguous : tweet -> bool
(** True iff the tweet has no ground-truth weather. *)

val pp : Format.formatter -> tweet -> unit
(** One-line rendering. *)

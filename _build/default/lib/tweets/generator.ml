type tweet = {
  id : int;
  text : string;
  gt_weather : string option;
  gt_place : string option;
}

let default_count = 463

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* Keyword choice is strongly biased toward the head of the keyword list
   (~75 / 12 / 8 / 5), so head-keyword extraction rules have clearly higher
   support than tail ones — the skew behind Table 1 row C. *)
let keyword_weights = [ 0.75; 0.12; 0.08; 0.05 ]

let pick_keyword rng (c : Vocabulary.condition) =
  let kws = c.keywords in
  let weights = List.filteri (fun i _ -> i < List.length kws) keyword_weights in
  let total = List.fold_left ( +. ) 0.0 weights in
  let x = Random.State.float rng total in
  let rec go acc ws ks =
    match (ws, ks) with
    | [ _ ], [ k ] | _, [ k ] -> k
    | w :: ws', k :: ks' -> if x < acc +. w then k else go (acc +. w) ws' ks'
    | [], k :: _ -> k
    | _, [] -> List.hd kws
  in
  go 0.0 weights kws

let clear_templates =
  [ (fun kw city -> Printf.sprintf "Morning in %s: %s all day. #tenki" city kw);
    (fun kw city -> Printf.sprintf "%s again over %s today. #tenki" kw city);
    (fun kw city -> Printf.sprintf "Forecast for %s says %s tomorrow. #tenki" city kw);
    (fun kw city -> Printf.sprintf "Walking around %s under %s. #tenki" city kw);
    (fun kw city -> Printf.sprintf "%s: %s since dawn, take care. #tenki" city kw) ]

let clear_placeless_templates =
  [ (fun kw -> Printf.sprintf "Nothing but %s here today. #tenki" kw);
    (fun kw -> Printf.sprintf "Woke up to %s again. #tenki" kw);
    (fun kw -> Printf.sprintf "Commute through the %s, as usual. #tenki" kw) ]

let ambiguous_templates =
  [ (fun city -> Printf.sprintf "Hard to say what the sky over %s wants today. #tenki" city);
    (fun city -> Printf.sprintf "Strange weather in %s, can't call it. #tenki" city);
    (fun city -> Printf.sprintf "%s keeps changing its mind this week. #tenki" city) ]

(* Half the ambiguous tweets mention a weather keyword misleadingly
   ("people say rain but who knows") — extraction rules match them yet the
   judges call the agreed value neither, which is what keeps real rule
   confidence below 100%. *)
let ambiguous_keyword_templates =
  [ (fun kw city -> Printf.sprintf "People promise %s for %s, but who knows. #tenki" kw city);
    (fun kw city -> Printf.sprintf "Forecast said %s in %s, looks nothing like it. #tenki" kw city) ]

let ambiguous_placeless_templates =
  [ (fun () -> "No idea what this weather is doing. #tenki");
    (fun () -> "Odd skies today, who can tell. #tenki") ]

let capitalize s =
  if s = "" then s
  else String.make 1 (Char.uppercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)

let generate ?(seed = 2013) ?(ambiguous_rate = 0.25) ?(placeless_rate = 0.15) n =
  let rng = Random.State.make [| seed |] in
  List.init n (fun id ->
      let ambiguous = Random.State.float rng 1.0 < ambiguous_rate in
      let placeless = Random.State.float rng 1.0 < placeless_rate in
      if ambiguous then
        if placeless then
          { id; text = (pick rng ambiguous_placeless_templates) ();
            gt_weather = None; gt_place = None }
        else
          let city = pick rng Vocabulary.cities in
          let text =
            if Random.State.float rng 1.0 < 0.8 then
              let condition = pick rng Vocabulary.conditions in
              (pick rng ambiguous_keyword_templates) (pick_keyword rng condition) city
            else (pick rng ambiguous_templates) city
          in
          { id; text; gt_weather = None; gt_place = Some city }
      else
        let condition = pick rng Vocabulary.conditions in
        let kw = pick_keyword rng condition in
        if placeless then
          let text = capitalize ((pick rng clear_placeless_templates) kw) in
          { id; text; gt_weather = Some condition.value; gt_place = None }
        else
          let city = pick rng Vocabulary.cities in
          let text = capitalize ((pick rng clear_templates) kw city) in
          { id; text; gt_weather = Some condition.value; gt_place = Some city })

let corpus () = generate default_count

let is_ambiguous t = t.gt_weather = None

let pp ppf t =
  Format.fprintf ppf "#%d %S (weather=%s, place=%s)" t.id t.text
    (Option.value t.gt_weather ~default:"-")
    (Option.value t.gt_place ~default:"-")

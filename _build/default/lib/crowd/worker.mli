(** Worker models.

    The paper's experiments ran five university students per variant; the
    analysis assumes rational workers. We replace them with parameterised
    profiles: how accurate a worker's extractions are, how they treat
    machine-extracted candidates, and how they decide between entering
    values (Action 1) and entering extraction rules (Action 2). *)

type rule_strategy =
  | No_rules  (** value-entry variants: never enters extraction rules *)
  | Haphazard of { spread : float; good_ratio : float }
      (** VRE without incentives: enter a personal mix of rules (good with
          probability [good_ratio]) at completion points drawn uniformly
          over [0, spread) — rule entry scattered across the whole run *)
  | Front_loaded of { count : int }
      (** VRE/I rational strategy: enter your [count] best rules
          immediately at the start (maximising payoff 2a and the later
          Action-1 harvest), then stop — Theorem 2's finite rule entry *)

type profile = {
  name : string;
  accuracy : float;  (** P(correct weather extraction) on clear tweets *)
  place_accuracy : float;  (** P(correct place extraction) when present *)
  diligence : float;  (** P(acting at all on a given turn) *)
  honest_selection : bool;
      (** answer candidate (existence) questions truthfully — i.e. accept a
          machine-extracted value iff it matches their own belief. Rational
          workers are honest here: truth is the focal equilibrium of the
          coordination game (Theorem 1) *)
  rule_strategy : rule_strategy;
}

val diligent : ?rule_strategy:rule_strategy -> string -> profile
(** The paper's observed population: reliable students (accuracy ≈ 0.84)
    working steadily. *)

val rational : ?rule_count:int -> string -> profile
(** A diligent worker playing the VRE/I-optimal strategy: front-loaded
    high-quality rule entry, honest selection. *)

val sloppy : string -> profile
(** Low-accuracy worker (accuracy ≈ 0.6) for robustness experiments. *)

val crowd : (string -> profile) -> int -> profile list
(** [crowd make n] builds [n] workers named [w1..wn]. *)

type rule_strategy =
  | No_rules
  | Haphazard of { spread : float; good_ratio : float }
  | Front_loaded of { count : int }

type profile = {
  name : string;
  accuracy : float;
  place_accuracy : float;
  diligence : float;
  honest_selection : bool;
  rule_strategy : rule_strategy;
}

let diligent ?(rule_strategy = No_rules) name =
  {
    name;
    accuracy = 0.8;
    place_accuracy = 0.93;
    diligence = 0.95;
    honest_selection = true;
    rule_strategy;
  }

let rational ?(rule_count = 2) name =
  diligent ~rule_strategy:(Front_loaded { count = rule_count }) name

let sloppy name =
  {
    name;
    accuracy = 0.6;
    place_accuracy = 0.8;
    diligence = 0.7;
    honest_selection = false;
    rule_strategy = No_rules;
  }

let crowd make n = List.init n (fun i -> make (Printf.sprintf "w%d" (i + 1)))

lib/crowd/worker.mli:

lib/crowd/simulator.ml: Array Cylog List Random Reldb

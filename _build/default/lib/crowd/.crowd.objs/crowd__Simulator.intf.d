lib/crowd/simulator.mli: Cylog Random Reldb

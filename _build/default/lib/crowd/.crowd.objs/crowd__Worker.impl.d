lib/crowd/worker.ml: List Printf

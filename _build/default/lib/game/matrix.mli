(** Normal-form (strategic) games.

    The game aspect describes incentive structures "in terms taken from
    game theory"; this module provides those terms on the analysis side:
    payoff matrices (Figure 4 left), best responses, pure-strategy Nash
    equilibria, dominance. Games are finite n-player with payoffs as
    floats. *)

type t

val make :
  players:string list -> actions:string list list ->
  payoff:(int array -> float array) -> t
(** [make ~players ~actions ~payoff] builds a game; [actions] gives each
    player's action names in player order, [payoff profile] returns one
    payoff per player for a profile of action indices.
    @raise Invalid_argument on empty players or mismatched lengths. *)

val of_bimatrix :
  row_player:string -> col_player:string -> rows:string list ->
  cols:string list -> (float * float) array array -> t
(** Two-player game from a payoff bimatrix ([cell.(i).(j)] = payoffs of the
    row and column player when row action [i] meets column action [j]). *)

val coordination : players:string * string -> values:string list -> reward:float -> t
(** The paper's Figure 4 game: both players pick a term; each receives
    [reward] iff the terms match, else 0. *)

val players : t -> string list
val actions : t -> int -> string list
(** Action names of one player. *)

val payoff : t -> int array -> float array
(** Payoffs for a profile of action indices. *)

val profiles : t -> int array list
(** All pure profiles, row-major. *)

val best_responses : t -> player:int -> profile:int array -> int list
(** Actions of [player] maximising their payoff against the others' choices
    in [profile]. *)

val is_pure_nash : t -> int array -> bool
(** True iff no player can profitably deviate unilaterally. *)

val pure_nash : t -> int array list
(** All pure-strategy Nash equilibria. *)

val pure_nash_named : t -> string list list
(** Equilibria as action names, one list per equilibrium. *)

val strictly_dominated : t -> player:int -> int list
(** Actions strictly dominated by some other pure action of the player. *)

val iterated_elimination : t -> string list list
(** Surviving action names per player after iterated elimination of
    strictly dominated pure strategies. *)

val is_symmetric : t -> bool
(** Two-player check: same action sets and payoff matrix symmetric under
    swapping players. *)

val pp_bimatrix : Format.formatter -> t -> unit
(** Figure 4-style matrix rendering (two-player games only). *)

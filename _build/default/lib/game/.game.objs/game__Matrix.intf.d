lib/game/matrix.mli: Format

lib/game/classes.mli: Cylog Format

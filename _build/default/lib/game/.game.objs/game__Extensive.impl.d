lib/game/extensive.ml: Array Format Hashtbl List Matrix Option Printf String

lib/game/matrix.ml: Array Format Fun List Printf

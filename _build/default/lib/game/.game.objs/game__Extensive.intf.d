lib/game/extensive.mli: Format Matrix

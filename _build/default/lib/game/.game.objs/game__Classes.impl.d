lib/game/classes.ml: Array Cylog Format Fun Hashtbl List Reldb String

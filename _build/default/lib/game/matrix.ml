type t = {
  players : string array;
  actions : string array array;
  payoff : int array -> float array;
}

let make ~players ~actions ~payoff =
  if players = [] then invalid_arg "Matrix.make: no players";
  if List.length players <> List.length actions then
    invalid_arg "Matrix.make: |actions| must equal |players|";
  List.iter (fun a -> if a = [] then invalid_arg "Matrix.make: empty action set") actions;
  {
    players = Array.of_list players;
    actions = Array.of_list (List.map Array.of_list actions);
    payoff;
  }

let of_bimatrix ~row_player ~col_player ~rows ~cols cells =
  let n_rows = List.length rows and n_cols = List.length cols in
  if Array.length cells <> n_rows then invalid_arg "Matrix.of_bimatrix: row count";
  Array.iter
    (fun row -> if Array.length row <> n_cols then invalid_arg "Matrix.of_bimatrix: col count")
    cells;
  make ~players:[ row_player; col_player ] ~actions:[ rows; cols ]
    ~payoff:(fun profile ->
      let a, b = cells.(profile.(0)).(profile.(1)) in
      [| a; b |])

let coordination ~players:(pa, pb) ~values ~reward =
  make ~players:[ pa; pb ] ~actions:[ values; values ]
    ~payoff:(fun profile ->
      if profile.(0) = profile.(1) then [| reward; reward |] else [| 0.0; 0.0 |])

let players g = Array.to_list g.players
let actions g i = Array.to_list g.actions.(i)
let payoff g profile = g.payoff profile

let profiles g =
  let n = Array.length g.players in
  let rec build i =
    if i = n then [ [] ]
    else
      let rest = build (i + 1) in
      List.concat_map
        (fun a -> List.map (fun tail -> a :: tail) rest)
        (List.init (Array.length g.actions.(i)) Fun.id)
  in
  List.map Array.of_list (build 0)

let best_responses g ~player ~profile =
  let try_action a =
    let p = Array.copy profile in
    p.(player) <- a;
    (g.payoff p).(player)
  in
  let n = Array.length g.actions.(player) in
  let best = ref neg_infinity in
  for a = 0 to n - 1 do
    let v = try_action a in
    if v > !best then best := v
  done;
  List.filter (fun a -> try_action a = !best) (List.init n Fun.id)

let is_pure_nash g profile =
  let n = Array.length g.players in
  let rec ok i =
    i >= n || (List.mem profile.(i) (best_responses g ~player:i ~profile) && ok (i + 1))
  in
  ok 0

let pure_nash g = List.filter (is_pure_nash g) (profiles g)

let pure_nash_named g =
  List.map
    (fun profile ->
      List.mapi (fun i a -> g.actions.(i).(a)) (Array.to_list profile))
    (pure_nash g)

let strictly_dominated g ~player =
  (* Action [a] is strictly dominated by [b] iff [b] does strictly better
     against every profile of the other players. *)
  let others =
    List.filter (fun p -> p.(player) = 0) (profiles g)
  in
  let beats b a =
    List.for_all
      (fun profile ->
        let pa = Array.copy profile and pb = Array.copy profile in
        pa.(player) <- a;
        pb.(player) <- b;
        (g.payoff pb).(player) > (g.payoff pa).(player))
      others
  in
  let n = Array.length g.actions.(player) in
  List.filter
    (fun a -> List.exists (fun b -> b <> a && beats b a) (List.init n Fun.id))
    (List.init n Fun.id)

let iterated_elimination g =
  (* Work over shrinking action-index sets; rebuild dominance over the
     restricted profiles each round. *)
  let n = Array.length g.players in
  let alive = Array.map (fun acts -> List.init (Array.length acts) Fun.id) g.actions in
  let restricted_profiles () =
    let rec build i =
      if i = n then [ [] ]
      else
        let rest = build (i + 1) in
        List.concat_map (fun a -> List.map (fun tail -> a :: tail) rest) alive.(i)
    in
    List.map Array.of_list (build 0)
  in
  let dominated player =
    let profs = restricted_profiles () in
    let beats b a =
      List.for_all
        (fun profile ->
          profile.(player) <> a
          ||
          let pb = Array.copy profile in
          pb.(player) <- b;
          (g.payoff pb).(player) > (g.payoff profile).(player))
        profs
    in
    List.filter
      (fun a -> List.exists (fun b -> b <> a && beats b a) alive.(player))
      alive.(player)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to n - 1 do
      if List.length alive.(p) > 1 then begin
        let dead = dominated p in
        if dead <> [] then begin
          alive.(p) <- List.filter (fun a -> not (List.mem a dead)) alive.(p);
          changed := true
        end
      end
    done
  done;
  Array.to_list (Array.mapi (fun p acts -> List.map (fun a -> g.actions.(p).(a)) acts) alive)

let is_symmetric g =
  Array.length g.players = 2
  && g.actions.(0) = g.actions.(1)
  &&
  let n = Array.length g.actions.(0) in
  let rec check i j =
    if i >= n then true
    else if j >= n then check (i + 1) 0
    else
      let fwd = g.payoff [| i; j |] and bwd = g.payoff [| j; i |] in
      fwd.(0) = bwd.(1) && fwd.(1) = bwd.(0) && check i (j + 1)
  in
  check 0 0

let pp_bimatrix ppf g =
  if Array.length g.players <> 2 then
    Format.fprintf ppf "<%d-player game>" (Array.length g.players)
  else begin
    let rows = g.actions.(0) and cols = g.actions.(1) in
    let width = 12 in
    Format.fprintf ppf "@[<v>%-*s" width (g.players.(0) ^ "\\" ^ g.players.(1));
    Array.iter (fun c -> Format.fprintf ppf "%*s" width c) cols;
    Array.iteri
      (fun i r ->
        Format.fprintf ppf "@,%-*s" width r;
        Array.iteri
          (fun j _ ->
            let p = g.payoff [| i; j |] in
            Format.fprintf ppf "%*s" width (Printf.sprintf "(%g, %g)" p.(0) p.(1)))
          cols)
      rows;
    Format.fprintf ppf "@]"
  end

(** The game classes of Section 9.4.

    [G_N] (Definition 1) bounds the number of interaction phases by a known
    [N]; [G_*] (Definition 2) does not — each interaction step is generated
    by a μ-recursive function of past answers, so the sequence can be
    unbounded. VE/I lives in [G_1]; the logo-design game in [G_2]; VRE/I in
    [G_*] (the number of extraction rules workers may enter cannot be
    bounded in advance).

    {!classify} decides where a CyLog program sits by static analysis of
    its open-headed statements:

    - an open statement writing through an unmentioned auto-increment key
      is a standing task — unbounded answers — so the program is in [G_*];
    - an open statement inside a dependency cycle (its input relations
      depend, transitively, on its own output) re-arms itself, also [G_*];
    - otherwise the phases are bounded: [N] is the length of the longest
      dependency chain of open statements (an open statement whose input
      depends on another open statement's output starts a later phase). *)

type t =
  | Bounded of int  (** [G_N] with the inferred [N] *)
  | Unbounded  (** [G_*] *)

val classify : Cylog.Ast.program -> t
(** Classify a program (its game aspects' path/payoff rules are part of the
    analysis: they run on the machine side and do not add phases, but they
    can carry dependencies between open statements). *)

val open_phase_chain : Cylog.Ast.program -> int
(** Longest chain of open statements linked by dataflow — the [N] reported
    by {!classify} when bounded (0 when the program asks humans nothing).
    @raise Invalid_argument on [G_*] programs. *)

val subsumes : t -> t -> bool
(** [subsumes a b]: every game implementable in class [b] is implementable
    in class [a]. [Unbounded] subsumes everything; [Bounded n] subsumes
    [Bounded m] iff [n >= m] (the paper: [G_*] is strictly larger than
    [G_N]). *)

val pp : Format.formatter -> t -> unit
(** ["G_2"] / ["G_*"] rendering. *)

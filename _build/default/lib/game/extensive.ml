type node =
  | Terminal of (string * float) list
  | Decision of { player : string; info_set : string; moves : (string * node) list }
  | Chance of (float * string * node) list

let of_matrix_sequential g =
  match Matrix.players g with
  | [ pa; pb ] ->
      let rows = Matrix.actions g 0 and cols = Matrix.actions g 1 in
      let second i =
        Decision
          {
            player = pb;
            (* One shared information set: B does not observe A's move. *)
            info_set = pb ^ ":choice";
            moves =
              List.mapi
                (fun j c ->
                  let p = Matrix.payoff g [| i; j |] in
                  (c, Terminal [ (pa, p.(0)); (pb, p.(1)) ]))
                cols;
          }
      in
      Decision
        {
          player = pa;
          info_set = pa ^ ":choice";
          moves = List.mapi (fun i r -> (r, second i)) rows;
        }
  | _ -> invalid_arg "Extensive.of_matrix_sequential: two-player games only"

let rec fold_nodes f acc node =
  let acc = f acc node in
  match node with
  | Terminal _ -> acc
  | Decision { moves; _ } -> List.fold_left (fun acc (_, n) -> fold_nodes f acc n) acc moves
  | Chance branches ->
      List.fold_left (fun acc (_, _, n) -> fold_nodes f acc n) acc branches

let players node =
  List.rev
    (fold_nodes
       (fun acc n ->
         match n with
         | Decision { player; _ } when not (List.mem player acc) -> player :: acc
         | Decision _ | Terminal _ | Chance _ -> acc)
       [] node)

let info_sets node =
  let sets =
    List.rev
      (fold_nodes
         (fun acc n ->
           match n with
           | Decision { player; info_set; moves } ->
               (player, info_set, List.map fst moves) :: acc
           | Terminal _ | Chance _ -> acc)
         [] node)
  in
  let rec dedup seen = function
    | [] -> []
    | ((player, is, moves) as entry) :: rest -> (
        match List.assoc_opt is seen with
        | Some (player', moves') ->
            if player <> player' || moves <> moves' then
              invalid_arg
                (Printf.sprintf "Extensive.info_sets: inconsistent info set %s" is)
            else dedup seen rest
        | None -> entry :: dedup ((is, (player, moves)) :: seen) rest)
  in
  dedup [] sets

type strategy = (string * string) list

let expected_payoffs node strategy =
  let totals : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let add player v =
    Hashtbl.replace totals player (v +. Option.value (Hashtbl.find_opt totals player) ~default:0.0)
  in
  let rec walk scale = function
    | Terminal payoffs -> List.iter (fun (p, v) -> add p (scale *. v)) payoffs
    | Decision { info_set; moves; _ } -> (
        match List.assoc_opt info_set strategy with
        | Some move -> (
            match List.assoc_opt move moves with
            | Some next -> walk scale next
            | None ->
                invalid_arg
                  (Printf.sprintf "Extensive.expected_payoffs: move %s not available at %s"
                     move info_set))
        | None ->
            invalid_arg
              (Printf.sprintf "Extensive.expected_payoffs: no choice for info set %s" info_set))
    | Chance branches ->
        List.iter (fun (p, _, next) -> walk (scale *. p) next) branches
  in
  walk 1.0 node;
  let ps =
    let from_decisions = players node in
    let from_terminals =
      List.rev
        (fold_nodes
           (fun acc n ->
             match n with
             | Terminal payoffs ->
                 List.fold_left
                   (fun acc (p, _) -> if List.mem p acc then acc else p :: acc)
                   acc payoffs
             | Decision _ | Chance _ -> acc)
           [] node)
    in
    from_decisions @ List.filter (fun p -> not (List.mem p from_decisions)) from_terminals
  in
  List.map (fun p -> (p, Option.value (Hashtbl.find_opt totals p) ~default:0.0)) ps

let all_strategies node =
  let sets = info_sets node in
  let rec build = function
    | [] -> [ [] ]
    | (_, is, moves) :: rest ->
        let tails = build rest in
        List.concat_map (fun m -> List.map (fun tail -> (is, m) :: tail) tails) moves
  in
  build sets

let to_matrix node =
  let sets = info_sets node in
  let ps = players node in
  let sets_of p = List.filter (fun (p', _, _) -> p' = p) sets in
  (* A pure strategy of player p = one move per information set of p. *)
  let strategies_of p =
    let rec build = function
      | [] -> [ [] ]
      | (_, is, moves) :: rest ->
          let tails = build rest in
          List.concat_map (fun m -> List.map (fun tail -> (is, m) :: tail) tails) moves
    in
    build (sets_of p)
  in
  let per_player = List.map strategies_of ps in
  let name strat = String.concat "," (List.map (fun (is, m) -> is ^ "=" ^ m) strat) in
  let decode profile =
    List.concat (List.mapi (fun i s -> List.nth (List.nth per_player i) s) (Array.to_list profile))
  in
  let matrix =
    Matrix.make ~players:ps
      ~actions:(List.map (fun strats -> List.map name strats) per_player)
      ~payoff:(fun profile ->
        let strategy = decode profile in
        let payoffs = expected_payoffs node strategy in
        Array.of_list (List.map (fun p -> List.assoc p payoffs) ps))
  in
  (matrix, decode)

let pure_nash node =
  let matrix, decode = to_matrix node in
  List.map decode (Matrix.pure_nash matrix)

let backward_induction node =
  let choices = ref [] in
  let rec solve = function
    | Terminal payoffs -> payoffs
    | Chance branches ->
        let totals : (string, float) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (p, _, next) ->
            List.iter
              (fun (player, v) ->
                Hashtbl.replace totals player
                  ((p *. v) +. Option.value (Hashtbl.find_opt totals player) ~default:0.0))
              (solve next))
          branches;
        Hashtbl.fold (fun p v acc -> (p, v) :: acc) totals []
    | Decision { player; info_set; moves } ->
        let solved = List.map (fun (m, next) -> (m, solve next)) moves in
        let value (_, payoffs) = Option.value (List.assoc_opt player payoffs) ~default:0.0 in
        let best =
          List.fold_left
            (fun acc entry -> match acc with
              | Some b when value b >= value entry -> Some b
              | _ -> Some entry)
            None solved
        in
        (match best with
        | Some (m, payoffs) ->
            choices := (info_set, m) :: !choices;
            payoffs
        | None -> invalid_arg "Extensive.backward_induction: decision without moves")
  in
  let payoffs = solve node in
  (List.rev !choices, payoffs)

let rec depth = function
  | Terminal _ -> 0
  | Decision { moves; _ } ->
      1 + List.fold_left (fun acc (_, n) -> max acc (depth n)) 0 moves
  | Chance branches ->
      1 + List.fold_left (fun acc (_, _, n) -> max acc (depth n)) 0 branches

let pp ppf node =
  let rec go indent = function
    | Terminal payoffs ->
        Format.fprintf ppf "%s-> (%s)@," indent
          (String.concat ", "
             (List.map (fun (p, v) -> Printf.sprintf "%s:%g" p v) payoffs))
    | Decision { player; info_set; moves } ->
        Format.fprintf ppf "%s%s [%s]@," indent player info_set;
        List.iter
          (fun (m, next) ->
            Format.fprintf ppf "%s  %s:@," indent m;
            go (indent ^ "    ") next)
          moves
    | Chance branches ->
        Format.fprintf ppf "%schance@," indent;
        List.iter
          (fun (p, m, next) ->
            Format.fprintf ppf "%s  %g %s:@," indent p m;
            go (indent ^ "    ") next)
          branches
  in
  Format.fprintf ppf "@[<v>";
  go "" node;
  Format.fprintf ppf "@]"

(** Extensive-form games: trees with decision, chance and terminal nodes,
    plus information sets (the dotted circle of Figure 4 right: a player
    who cannot see an earlier move has one information set covering all the
    histories it cannot distinguish). *)

type node =
  | Terminal of (string * float) list  (** payoffs per player *)
  | Decision of {
      player : string;
      info_set : string;  (** nodes sharing a label share the player's knowledge *)
      moves : (string * node) list;
    }
  | Chance of (float * string * node) list
      (** probability, move label, subtree; probabilities should sum to 1 *)

val of_matrix_sequential : Matrix.t -> node
(** Present a two-player normal-form game in extensive form: the first
    player moves, then the second moves {e without observing} the first
    move (one information set per second player), as in Figure 4 (right).
    @raise Invalid_argument for games that are not two-player. *)

val players : node -> string list
(** Players appearing in the tree, in first-appearance order. *)

val info_sets : node -> (string * string * string list) list
(** (player, info set, available moves) per information set, in
    first-appearance order. Raises [Invalid_argument] if the same info set
    appears with different move lists (ill-formed tree). *)

type strategy = (string * string) list
(** Pure behavioural strategy profile: a chosen move per information set. *)

val expected_payoffs : node -> strategy -> (string * float) list
(** Expected payoff per player when everyone follows [strategy], averaging
    over chance nodes. @raise Invalid_argument when a reached information
    set has no chosen move. *)

val all_strategies : node -> strategy list
(** Every pure strategy profile (cartesian product over information
    sets). *)

val to_matrix : node -> Matrix.t * (int array -> strategy)
(** Induced normal form: each player's actions are their pure strategies
    (move choices for each of their information sets); also returns a
    decoder from matrix profiles back to behavioural strategies. *)

val pure_nash : node -> strategy list
(** Pure Nash equilibria of the induced normal form, as behavioural
    strategies. *)

val backward_induction : node -> strategy * (string * float) list
(** Subgame-perfect choice by backward induction. Only sound for perfect-
    information trees (every information set a singleton); chance nodes are
    averaged. Ties break toward the first listed move. *)

val depth : node -> int
(** Longest path length (decision and chance nodes count). *)

val pp : Format.formatter -> node -> unit
(** Indented tree rendering. *)

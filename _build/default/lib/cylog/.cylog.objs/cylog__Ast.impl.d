lib/cylog/ast.ml: List Reldb String

lib/cylog/semantics.ml: Ast Binding Builtin Engine Eval List Option Reldb String

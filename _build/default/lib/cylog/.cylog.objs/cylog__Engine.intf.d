lib/cylog/engine.mli: Ast Builtin Reldb

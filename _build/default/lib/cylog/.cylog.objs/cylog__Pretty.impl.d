lib/cylog/pretty.ml: Ast Format List Reldb

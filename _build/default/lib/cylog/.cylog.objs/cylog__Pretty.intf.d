lib/cylog/pretty.mli: Ast Format

lib/cylog/binding.ml: Format Map Reldb String

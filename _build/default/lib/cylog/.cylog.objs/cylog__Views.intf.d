lib/cylog/views.mli: Ast Reldb

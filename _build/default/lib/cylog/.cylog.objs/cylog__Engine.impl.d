lib/cylog/engine.ml: Array Ast Binding Buffer Builtin Eval Format Fun Hashtbl List Logs Option Printf Reldb String Views

lib/cylog/views.ml: Ast Buffer List Reldb String

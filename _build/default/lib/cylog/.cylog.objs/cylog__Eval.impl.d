lib/cylog/eval.ml: Ast Binding Builtin Format List Pretty Reldb

lib/cylog/semantics.mli: Ast Reldb

lib/cylog/lexer.mli: Format

lib/cylog/binding.mli: Format Reldb

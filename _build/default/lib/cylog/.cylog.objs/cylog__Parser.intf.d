lib/cylog/parser.mli: Ast Format

lib/cylog/eval.mli: Ast Binding Builtin Reldb

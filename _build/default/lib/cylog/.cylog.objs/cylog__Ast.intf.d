lib/cylog/ast.mli: Reldb

lib/cylog/builtin.mli: Reldb

lib/cylog/precedence.ml: Array Ast Format List Pretty Printf String

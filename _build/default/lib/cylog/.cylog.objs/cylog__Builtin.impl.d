lib/cylog/builtin.ml: Float Hashtbl List Printf Regex Reldb String

lib/cylog/lexer.ml: Buffer Format List Printf String

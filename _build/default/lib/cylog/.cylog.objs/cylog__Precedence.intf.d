lib/cylog/precedence.mli: Ast Format

lib/cylog/parser.ml: Array Ast Format Lexer List Printf Reldb Views

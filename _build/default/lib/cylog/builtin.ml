type t = Reldb.Value.t list -> Reldb.Value.t

exception Unknown of string
exception Bad_arguments of { name : string; message : string }

type registry = (string, t) Hashtbl.t

let bad name message = raise (Bad_arguments { name; message })

let string_arg name = function
  | Reldb.Value.String s -> s
  | v -> bad name ("expected a string, got " ^ Reldb.Value.to_string v)

let two name f = function
  | [ a; b ] -> f a b
  | args -> bad name (Printf.sprintf "expected 2 arguments, got %d" (List.length args))

let one name f = function
  | [ a ] -> f a
  | args -> bad name (Printf.sprintf "expected 1 argument, got %d" (List.length args))

let bool b = Reldb.Value.Bool b

(* matches(cond, text): true iff the regex [cond] occurs somewhere in
   [text] — the paper's extraction-rule semantics ("if a tweet matches with
   the condition"). Compiled patterns are cached per registry; malformed
   worker-entered patterns simply never match. *)
let make_matches () =
  let cache : (string, Regex.Engine.t option) Hashtbl.t = Hashtbl.create 64 in
  fun args ->
    two "matches"
      (fun cond text ->
        let cond = string_arg "matches" cond in
        let text = string_arg "matches" text in
        let compiled =
          match Hashtbl.find_opt cache cond with
          | Some c -> c
          | None ->
              let c =
                match Regex.Engine.compile ~case_insensitive:true cond with
                | Ok r -> Some r
                | Error _ -> None
              in
              Hashtbl.replace cache cond c;
              c
        in
        match compiled with
        | Some r -> bool (Regex.Engine.search r text)
        | None -> bool false)
      args

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let empty () : registry = Hashtbl.create 16
let register reg name f = Hashtbl.replace reg name f
let names reg = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) reg [])

let call reg name args =
  match Hashtbl.find_opt reg name with
  | Some f -> f args
  | None -> raise (Unknown name)

let default () =
  let reg = empty () in
  register reg "matches" (make_matches ());
  register reg "contains"
    (two "contains" (fun a b ->
         bool (contains_substring (string_arg "contains" a) (string_arg "contains" b))));
  register reg "starts_with"
    (two "starts_with" (fun a b ->
         let s = string_arg "starts_with" a and p = string_arg "starts_with" b in
         bool (String.length p <= String.length s && String.sub s 0 (String.length p) = p)));
  register reg "ends_with"
    (two "ends_with" (fun a b ->
         let s = string_arg "ends_with" a and p = string_arg "ends_with" b in
         let n = String.length s and m = String.length p in
         bool (m <= n && String.sub s (n - m) m = p)));
  register reg "lowercase"
    (one "lowercase" (fun a ->
         Reldb.Value.String (String.lowercase_ascii (string_arg "lowercase" a))));
  register reg "length"
    (one "length" (fun a ->
         match a with
         | Reldb.Value.String s -> Reldb.Value.Int (String.length s)
         | Reldb.Value.List l -> Reldb.Value.Int (List.length l)
         | v -> bad "length" ("expected string or list, got " ^ Reldb.Value.to_string v)));
  register reg "concat"
    (two "concat" (fun a b ->
         Reldb.Value.String (string_arg "concat" a ^ string_arg "concat" b)));
  register reg "abs"
    (one "abs" (fun a ->
         match a with
         | Reldb.Value.Int i -> Reldb.Value.Int (abs i)
         | Reldb.Value.Float f -> Reldb.Value.Float (Float.abs f)
         | v -> bad "abs" ("expected a number, got " ^ Reldb.Value.to_string v)));
  register reg "min"
    (two "min" (fun a b -> if Reldb.Value.compare a b <= 0 then a else b));
  register reg "max"
    (two "max" (fun a b -> if Reldb.Value.compare a b >= 0 then a else b));
  register reg "mod"
    (two "mod" (fun a b ->
         match (a, b) with
         | Reldb.Value.Int _, Reldb.Value.Int 0 -> bad "mod" "division by zero"
         | Reldb.Value.Int x, Reldb.Value.Int y -> Reldb.Value.Int (x mod y)
         | _ -> bad "mod" "expected integers"));
  reg

(** Pretty-printing of CyLog ASTs back to concrete syntax.

    [Parser.parse_exn] of a printed program yields a structurally equal
    program (the printer always emits flat style, so block-style sugar is
    not preserved — the desugared rules are). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_atom : Format.formatter -> Ast.atom -> unit
val pp_literal : Format.formatter -> Ast.literal -> unit
val pp_head : Format.formatter -> Ast.head -> unit
val pp_statement : Format.formatter -> Ast.statement -> unit
val pp_game : Format.formatter -> Ast.game_decl -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val statement_to_string : Ast.statement -> string
val program_to_string : Ast.program -> string

(** Variable valuations.

    A valuation binds rule variables to values — the paper's "rule with a
    valuation" is a rule instance. Immutable, so the enumerator backtracks
    for free. *)

type t

val empty : t
val find : t -> string -> Reldb.Value.t option
val bind : t -> string -> Reldb.Value.t -> t
val mem : t -> string -> bool
val to_list : t -> (string * Reldb.Value.t) list
(** Bindings sorted by variable name. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type binop = Add | Sub | Mul | Div

type expr =
  | Const of Reldb.Value.t
  | Var of string
  | List of expr list
  | Binop of binop * expr * expr

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type arg = { attr : string; bind : bind }
and bind = Auto | Bound of expr

type atom = { pred : string; args : arg list }

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of expr * cmpop * expr
  | Call of string * expr list

type head_kind = Assert | Open of expr option | Update | Delete

type head =
  | Head_atom of { atom : atom; kind : head_kind }
  | Head_payoff of (string * expr) list

type statement = { label : string option; heads : head list; body : literal list }

type schema_decl = { rel_name : string; rel_attrs : (string * bool * bool) list }

type game_decl = {
  game_name : string;
  game_params : string list;
  path_rules : statement list;
  payoff_rules : statement list;
}

type view = { view_name : string; template : string }

type program = {
  schemas : schema_decl list;
  statements : statement list;
  games : game_decl list;
  views : view list;
}

let empty_program = { schemas = []; statements = []; games = []; views = [] }

let rec expr_vars = function
  | Const _ -> []
  | Var v -> [ v ]
  | List es -> List.concat_map expr_vars es
  | Binop (_, a, b) -> expr_vars a @ expr_vars b

let expr_vars e = List.sort_uniq String.compare (expr_vars e)

let literal_positive_preds = function
  | Pos { pred; _ } -> [ pred ]
  | Neg _ | Cmp _ | Call _ -> []

let body_preds body =
  List.sort_uniq String.compare
    (List.concat_map
       (function
         | Pos { pred; _ } | Neg { pred; _ } -> [ pred ]
         | Cmp _ | Call _ -> [])
       body)

let head_pred = function
  | Head_atom { atom; _ } -> Some atom.pred
  | Head_payoff _ -> None

let statement_preds s =
  List.sort_uniq String.compare (List.filter_map head_pred s.heads)

let statement_is_fact s = s.body = []

let statement_is_open s =
  List.exists
    (function
      | Head_atom { kind = Open _; _ } -> true
      | Head_atom _ | Head_payoff _ -> false)
    s.heads


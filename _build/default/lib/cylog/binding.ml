module M = Map.Make (String)

type t = Reldb.Value.t M.t

let empty = M.empty
let find env v = M.find_opt v env
let bind env v value = M.add v value env
let mem env v = M.mem v env
let to_list env = M.bindings env

let pp ppf env =
  let binding ppf (v, value) = Format.fprintf ppf "%s=%a" v Reldb.Value.pp value in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") binding)
    (to_list env)

let to_string env = Format.asprintf "%a" pp env

exception Error of { line : int; message : string }

(* A light character-level scanner: views hold raw HTML, so they must be
   carved out of the source before the lexer sees it. The scanner respects
   // and /* */ comments and string literals while looking for section
   markers and braces. *)

type scanner = { src : string; mutable pos : int; mutable line : int }

let peek sc = if sc.pos < String.length sc.src then Some sc.src.[sc.pos] else None

let peek2 sc =
  if sc.pos + 1 < String.length sc.src then Some sc.src.[sc.pos + 1] else None

let advance sc =
  (match peek sc with Some '\n' -> sc.line <- sc.line + 1 | _ -> ());
  sc.pos <- sc.pos + 1

let skip_string sc =
  (* Called at the opening quote. *)
  advance sc;
  let rec loop () =
    match peek sc with
    | Some '"' -> advance sc
    | Some '\\' ->
        advance sc;
        advance sc;
        loop ()
    | Some _ ->
        advance sc;
        loop ()
    | None -> ()
  in
  loop ()

let skip_comment sc =
  (* Called at '/'; consumes the comment if there is one. *)
  match peek2 sc with
  | Some '/' ->
      while peek sc <> None && peek sc <> Some '\n' do
        advance sc
      done
  | Some '*' ->
      advance sc;
      advance sc;
      let rec loop () =
        match (peek sc, peek2 sc) with
        | Some '*', Some '/' ->
            advance sc;
            advance sc
        | Some _, _ ->
            advance sc;
            loop ()
        | None, _ -> ()
      in
      loop ()
  | _ -> advance sc

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* Does the word starting at [pos] equal [word] (with a word boundary)? *)
let word_at sc word =
  let n = String.length word in
  sc.pos + n <= String.length sc.src
  && String.sub sc.src sc.pos n = word
  && (sc.pos = 0 || not (is_ident_char sc.src.[sc.pos - 1]))
  && (sc.pos + n >= String.length sc.src || not (is_ident_char sc.src.[sc.pos + n]))

let skip_ws sc =
  while
    match peek sc with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance sc;
        true
    | _ -> false
  do
    ()
  done

let expect_char sc c what =
  skip_ws sc;
  match peek sc with
  | Some c' when c' = c -> advance sc
  | _ -> raise (Error { line = sc.line; message = "expected " ^ what })

let read_ident sc =
  skip_ws sc;
  let start = sc.pos in
  while (match peek sc with Some c -> is_ident_char c | None -> false) do
    advance sc
  done;
  if sc.pos = start then
    raise (Error { line = sc.line; message = "expected a view name" });
  String.sub sc.src start (sc.pos - start)

(* Read a raw view body: everything between balanced braces, verbatim. *)
let read_body sc =
  expect_char sc '{' "'{' opening the view body";
  let start = sc.pos in
  let depth = ref 1 in
  while !depth > 0 do
    match peek sc with
    | None -> raise (Error { line = sc.line; message = "unterminated view body" })
    | Some '{' ->
        incr depth;
        advance sc
    | Some '}' ->
        decr depth;
        advance sc
    | Some _ -> advance sc
  done;
  String.trim (String.sub sc.src start (sc.pos - start - 1))

let at_section_end sc =
  word_at sc "schema" || word_at sc "rules" || word_at sc "games" || word_at sc "views"

let blank_out src from_pos to_pos =
  String.mapi
    (fun i c -> if i >= from_pos && i < to_pos && c <> '\n' then ' ' else c)
    src

let split source =
  let sc = { src = source; pos = 0; line = 1 } in
  let views = ref [] in
  let cleaned = ref source in
  let rec scan () =
    match peek sc with
    | None -> ()
    | Some '"' ->
        skip_string sc;
        scan ()
    | Some '/' ->
        skip_comment sc;
        scan ()
    | Some 'v' when word_at sc "views" ->
        let section_start = sc.pos in
        sc.pos <- sc.pos + String.length "views";
        skip_ws sc;
        if peek sc = Some ':' then begin
          advance sc;
          (* Parse view declarations until the next section keyword. *)
          let rec decls () =
            skip_ws sc;
            if word_at sc "view" then begin
              sc.pos <- sc.pos + String.length "view";
              let view_name = read_ident sc in
              let template = read_body sc in
              views := { Ast.view_name; template } :: !views;
              decls ()
            end
          in
          decls ();
          skip_ws sc;
          if not (peek sc = None || at_section_end sc) then
            raise
              (Error { line = sc.line; message = "expected 'view' or a section header" });
          cleaned := blank_out !cleaned section_start sc.pos;
          scan ()
        end
        else scan ()
    | Some _ ->
        advance sc;
        scan ()
  in
  scan ();
  (!cleaned, List.rev !views)

let find views name =
  List.find_opt (fun (v : Ast.view) -> String.equal v.view_name name) views

let render (v : Ast.view) tuple =
  let buf = Buffer.create (String.length v.template) in
  let n = String.length v.template in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && v.template.[i] = '{' && v.template.[i + 1] = '{' then begin
      match String.index_from_opt v.template (i + 2) '}' with
      | Some j when j + 1 < n && v.template.[j + 1] = '}' ->
          let attr = String.trim (String.sub v.template (i + 2) (j - i - 2)) in
          (match Reldb.Tuple.get tuple attr with
          | Some value when not (Reldb.Value.is_null value) ->
              Buffer.add_string buf (Reldb.Value.to_display value)
          | _ -> Buffer.add_string buf "____");
          go (j + 2)
      | _ ->
          Buffer.add_char buf v.template.[i];
          go (i + 1)
    end
    else begin
      Buffer.add_char buf v.template.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let render_open views ~relation ~bound ~open_attrs =
  match find views relation with
  | None -> None
  | Some v ->
      let body = render v bound in
      let asking =
        match open_attrs with
        | [] -> "\n[confirm: should this tuple exist?]"
        | attrs -> "\n[please provide: " ^ String.concat ", " attrs ^ "]"
      in
      Some (body ^ asking)

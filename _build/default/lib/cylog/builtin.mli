(** Builtin predicates callable from rule bodies.

    A builtin receives its evaluated arguments and returns a value; in a
    body context the result is interpreted through [Value.truthy]. The
    default registry contains the paper's [matches(cond, tw)] (regex
    containment, with a pattern cache) plus a small string/arithmetic
    toolkit. *)

type t = Reldb.Value.t list -> Reldb.Value.t

exception Unknown of string
(** Raised when a rule calls a builtin missing from the registry. *)

exception Bad_arguments of { name : string; message : string }
(** Raised when arguments have the wrong arity or type. *)

type registry

val default : unit -> registry
(** Fresh registry with the standard builtins: [matches], [contains],
    [starts_with], [ends_with], [lowercase], [length], [concat], [abs],
    [min], [max], [mod]. Each call to [default] gets its own regex
    cache. *)

val empty : unit -> registry
(** Registry with no builtins. *)

val register : registry -> string -> t -> unit
(** [register reg name f] adds or replaces a builtin. *)

val names : registry -> string list
(** Registered names, sorted. *)

val call : registry -> string -> Reldb.Value.t list -> Reldb.Value.t
(** Invoke a builtin. @raise Unknown / Bad_arguments as appropriate. *)

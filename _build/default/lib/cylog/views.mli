(** The views section: worker-facing task presentation.

    The paper's programs carry a views section describing, in HTML, the
    interface through which workers answer open tuples (Figure 2's forms).
    Here a view is a named template bound to a relation; rendering an open
    tuple substitutes its bound attributes into [{{attr}}] placeholders and
    lists the attributes still to fill:

    {v
    views:
      view Input {
        <p>Tweet: {{tw}}</p>
        <input name="value" placeholder="weather term"/>
      }
    v}

    Because templates are raw text (quotes, apostrophes, angle brackets),
    the views sections are split out of the source {e before} lexing;
    {!split} is called by [Parser.parse] and the extracted templates travel
    in [Ast.program]. *)

exception Error of { line : int; message : string }

val split : string -> string * Ast.view list
(** [split source] removes every [views:] section (replacing it with blank
    lines so positions in error messages stay meaningful) and returns the
    remaining source plus the extracted views. Understands line and block
    comments and string literals; view bodies end at their balanced
    closing brace. @raise Error on an unterminated view body. *)

val find : Ast.view list -> string -> Ast.view option
(** View for a relation name, if declared. *)

val render : Ast.view -> Reldb.Tuple.t -> string
(** Substitute [{{attr}}] placeholders by the tuple's display values;
    unbound attributes render as [____] (the input the worker must fill). *)

val render_open : Ast.view list -> relation:string -> bound:Reldb.Tuple.t ->
  open_attrs:string list -> string option
(** Render the task presentation of an open tuple: the relation's view with
    bound attributes substituted, followed by a line listing the attributes
    the worker is asked for. [None] when the relation has no view. *)

type direction = Left | Stay | Right

type rule = {
  state : string;
  read : string;
  next : string;
  write : string;
  move : direction;
}

type t = {
  name : string;
  initial : string;
  halting : string list;
  rules : rule list;
}

type config = { state : string; head : int; tape : (int * string) list }

let direction_offset = function Left -> -1 | Stay -> 0 | Right -> 1

let validate m =
  let keys = List.map (fun (r : rule) -> (r.state, r.read)) m.rules in
  if List.length keys <> List.length (List.sort_uniq compare keys) then
    Error (m.name ^ ": duplicate (state, symbol) transition")
  else if List.mem m.initial m.halting then
    Error (m.name ^ ": initial state is halting")
  else Ok ()

let initial_config m ~input =
  let tape =
    List.filter (fun (_, s) -> s <> "") (List.mapi (fun i s -> (i, s)) input)
  in
  { state = m.initial; head = 0; tape }

let read_cell config pos =
  match List.assoc_opt pos config.tape with Some s -> s | None -> ""

let write_cell config pos sym =
  let rest = List.remove_assoc pos config.tape in
  let tape = if sym = "" then rest else (pos, sym) :: rest in
  { config with tape = List.sort compare tape }

let step m config =
  if List.mem config.state m.halting then None
  else
    let sym = read_cell config config.head in
    match
      List.find_opt
        (fun (r : rule) -> r.state = config.state && r.read = sym)
        m.rules
    with
    | None -> None
    | Some r ->
        let config = write_cell config config.head r.write in
        Some { config with state = r.next; head = config.head + direction_offset r.move }

let run ?(max_steps = 10_000) m ~input =
  let rec loop config n =
    if n >= max_steps then Error config
    else match step m config with None -> Ok (config, n) | Some c -> loop c (n + 1)
  in
  loop (initial_config m ~input) 0

let tape_string config = String.concat "" (List.map snd config.tape)

let successor =
  {
    name = "successor";
    initial = "s";
    halting = [ "done" ];
    rules =
      [ { state = "s"; read = "1"; next = "s"; write = "1"; move = Right };
        { state = "s"; read = ""; next = "done"; write = "1"; move = Stay } ];
  }

let binary_increment =
  {
    name = "binary-increment";
    initial = "scan";
    halting = [ "done" ];
    rules =
      [ { state = "scan"; read = "0"; next = "scan"; write = "0"; move = Right };
        { state = "scan"; read = "1"; next = "scan"; write = "1"; move = Right };
        { state = "scan"; read = ""; next = "carry"; write = ""; move = Left };
        { state = "carry"; read = "1"; next = "carry"; write = "0"; move = Left };
        { state = "carry"; read = "0"; next = "done"; write = "1"; move = Stay };
        { state = "carry"; read = ""; next = "done"; write = "1"; move = Stay } ];
  }

let parity =
  {
    name = "parity";
    initial = "even";
    halting = [ "done" ];
    rules =
      [ { state = "even"; read = "0"; next = "even"; write = "0"; move = Right };
        { state = "even"; read = "1"; next = "odd"; write = "1"; move = Right };
        { state = "even"; read = ""; next = "done"; write = "E"; move = Stay };
        { state = "odd"; read = "0"; next = "odd"; write = "0"; move = Right };
        { state = "odd"; read = "1"; next = "even"; write = "1"; move = Right };
        { state = "odd"; read = ""; next = "done"; write = "O"; move = Stay } ];
  }

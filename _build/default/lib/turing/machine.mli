(** Direct Turing machine implementation — the reference semantics against
    which the CyLog encoding of Figure 16 is checked.

    A machine is a quintuple (K, Σ, δ, s, H): states, alphabet, transition
    rules, initial state, halting states. The tape is bi-infinite with the
    blank symbol [""]. *)

type direction = Left | Stay | Right

type rule = {
  state : string;
  read : string;
  next : string;
  write : string;
  move : direction;
}

type t = {
  name : string;
  initial : string;
  halting : string list;
  rules : rule list;
}

type config = {
  state : string;
  head : int;
  tape : (int * string) list;  (** non-blank cells, sorted by position *)
}

val direction_offset : direction -> int
(** -1 / 0 / +1. *)

val validate : t -> (unit, string) result
(** Check determinism: at most one rule per (state, read) pair, and the
    initial state is not halting. *)

val initial_config : t -> input:string list -> config
(** Tape loaded with [input] from position 0, head at 0, initial state. *)

val step : t -> config -> config option
(** One transition; [None] when the state is halting or no rule applies. *)

val run : ?max_steps:int -> t -> input:string list -> (config * int, config) result
(** Run to halt: [Ok (final, steps)] or [Error last] when [max_steps]
    (default 10_000) is exhausted. *)

val tape_string : config -> string
(** Non-blank tape content, left to right, cells joined directly. *)

(** Example machines. *)

val successor : t
(** Unary successor: walks right over 1s and appends one. *)

val binary_increment : t
(** Binary increment: input most-significant-bit first; handles carry and
    length growth. *)

val parity : t
(** Writes "E"/"O" after the input according to the parity of 1s. *)

lib/turing/cylog_tm.mli: Cylog Machine

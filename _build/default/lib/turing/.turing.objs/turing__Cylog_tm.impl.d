lib/turing/cylog_tm.ml: Buffer Cylog List Machine Printf Reldb String

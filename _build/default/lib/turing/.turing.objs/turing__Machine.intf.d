lib/turing/machine.mli:

lib/turing/machine.ml: List String

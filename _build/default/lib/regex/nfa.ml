type inst =
  | Char of char
  | Any
  | Class of bool * (char * char) list
  | Split of int * int
  | Jmp of int
  | Bol
  | Eol
  | Accept

type program = inst array

exception Too_large

let budget = 100_000

(* Compilation emits into a growing buffer; placeholder targets are patched
   once known. *)
type emitter = { mutable code : inst array; mutable len : int }

let emit em inst =
  if em.len >= budget then raise Too_large;
  if em.len = Array.length em.code then begin
    let cap = max 16 (2 * Array.length em.code) in
    let code = Array.make cap Accept in
    Array.blit em.code 0 code 0 em.len;
    em.code <- code
  end;
  em.code.(em.len) <- inst;
  em.len <- em.len + 1;
  em.len - 1

let patch em at inst = em.code.(at) <- inst

let compile re =
  let em = { code = [||]; len = 0 } in
  let rec go = function
    | Syntax.Empty -> ()
    | Syntax.Char c -> ignore (emit em (Char c))
    | Syntax.Any -> ignore (emit em Any)
    | Syntax.Class { negated; ranges } -> ignore (emit em (Class (negated, ranges)))
    | Syntax.Bol -> ignore (emit em Bol)
    | Syntax.Eol -> ignore (emit em Eol)
    | Syntax.Seq (a, b) ->
        go a;
        go b
    | Syntax.Alt (a, b) ->
        let split = emit em (Split (0, 0)) in
        go a;
        let jmp = emit em (Jmp 0) in
        let b_start = em.len in
        go b;
        patch em split (Split (split + 1, b_start));
        patch em jmp (Jmp em.len)
    | Syntax.Star a ->
        let split = emit em (Split (0, 0)) in
        go a;
        ignore (emit em (Jmp split));
        patch em split (Split (split + 1, em.len))
    | Syntax.Plus a ->
        let start = em.len in
        go a;
        let split = emit em (Split (0, 0)) in
        patch em split (Split (start, em.len))
    | Syntax.Opt a ->
        let split = emit em (Split (0, 0)) in
        go a;
        patch em split (Split (split + 1, em.len))
    | Syntax.Repeat (a, lo, hi) -> (
        for _ = 1 to lo do
          go a
        done;
        match hi with
        | None -> go (Syntax.Star a)
        | Some h ->
            (* Each optional tail copy can short-circuit to the end. *)
            let splits = ref [] in
            for _ = lo + 1 to h do
              let split = emit em (Split (0, 0)) in
              splits := split :: !splits;
              go a;
              patch em split (Split (split + 1, 0))
            done;
            let fin = em.len in
            List.iter
              (fun split ->
                match em.code.(split) with
                | Split (next, _) -> patch em split (Split (next, fin))
                | _ -> assert false)
              !splits)
  in
  go re;
  ignore (emit em Accept);
  Array.sub em.code 0 em.len

let in_class negated ranges c =
  let hit = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
  if negated then not hit else hit

(* Epsilon closure: push [pc] and everything reachable through Split/Jmp and
   position assertions onto the thread list, deduplicating per step. *)
let rec add_thread prog s pos on_list threads pc =
  if not on_list.(pc) then begin
    on_list.(pc) <- true;
    match prog.(pc) with
    | Jmp t -> add_thread prog s pos on_list threads t
    | Split (t1, t2) ->
        add_thread prog s pos on_list threads t1;
        add_thread prog s pos on_list threads t2
    | Bol -> if pos = 0 then add_thread prog s pos on_list threads (pc + 1)
    | Eol -> if pos = String.length s then add_thread prog s pos on_list threads (pc + 1)
    | Char _ | Any | Class _ | Accept -> threads := pc :: !threads
  end

let run_at prog s start =
  let n = String.length s in
  let current = ref [] in
  let last_accept = ref None in
  let on_list = Array.make (Array.length prog) false in
  add_thread prog s start on_list current 0;
  let pos = ref start in
  let continue = ref true in
  while !continue do
    let threads = List.rev !current in
    if List.exists (fun pc -> prog.(pc) = Accept) threads then last_accept := Some !pos;
    if !pos >= n || threads = [] then continue := false
    else begin
      let c = s.[!pos] in
      let next = ref [] in
      Array.fill on_list 0 (Array.length on_list) false;
      List.iter
        (fun pc ->
          let step =
            match prog.(pc) with
            | Char c' -> c = c'
            | Any -> true
            | Class (neg, ranges) -> in_class neg ranges c
            | Split _ | Jmp _ | Bol | Eol | Accept -> false
          in
          if step then add_thread prog s (!pos + 1) on_list next (pc + 1))
        threads;
      current := !next;
      incr pos
    end
  done;
  !last_accept

let search_from prog s start =
  let n = String.length s in
  let rec loop i =
    if i > n then None
    else
      match run_at prog s i with
      | Some stop -> Some (i, stop)
      | None -> loop (i + 1)
  in
  loop start

let pp_inst ppf = function
  | Char c -> Format.fprintf ppf "char %C" c
  | Any -> Format.pp_print_string ppf "any"
  | Class (neg, ranges) ->
      Format.fprintf ppf "class%s %s"
        (if neg then "^" else "")
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%c-%c" a b) ranges))
  | Split (a, b) -> Format.fprintf ppf "split %d %d" a b
  | Jmp t -> Format.fprintf ppf "jmp %d" t
  | Bol -> Format.pp_print_string ppf "bol"
  | Eol -> Format.pp_print_string ppf "eol"
  | Accept -> Format.pp_print_string ppf "accept"

let pp_program ppf prog =
  Array.iteri (fun i inst -> Format.fprintf ppf "%3d: %a@," i pp_inst inst) prog

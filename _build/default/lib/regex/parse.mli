(** Parser for the concrete regex syntax. *)

type error = { position : int; message : string }

val parse : string -> (Syntax.t, error) result
(** [parse pattern] parses the pattern into an AST. Errors carry the byte
    position at which parsing failed. *)

val parse_exn : string -> Syntax.t
(** Like {!parse}. @raise Invalid_argument on malformed patterns. *)

val pp_error : Format.formatter -> error -> unit
(** Human-readable error rendering. *)

type t =
  | Empty
  | Char of char
  | Any
  | Class of char_class
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t
  | Repeat of t * int * int option
  | Bol
  | Eol

and char_class = { negated : bool; ranges : (char * char) list }

let rec equal a b =
  match (a, b) with
  | Empty, Empty | Any, Any | Bol, Bol | Eol, Eol -> true
  | Char x, Char y -> x = y
  | Class x, Class y -> x.negated = y.negated && x.ranges = y.ranges
  | Seq (x1, x2), Seq (y1, y2) | Alt (x1, x2), Alt (y1, y2) ->
      equal x1 y1 && equal x2 y2
  | Star x, Star y | Plus x, Plus y | Opt x, Opt y -> equal x y
  | Repeat (x, ml, mh), Repeat (y, nl, nh) -> ml = nl && mh = nh && equal x y
  | ( ( Empty | Char _ | Any | Class _ | Seq _ | Alt _ | Star _ | Plus _ | Opt _
      | Repeat _ | Bol | Eol ),
      _ ) ->
      false

let escape_char buf c =
  match c with
  | '\\' | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$' ->
      Buffer.add_char buf '\\';
      Buffer.add_char buf c
  | _ -> Buffer.add_char buf c

let class_to_buf buf { negated; ranges } =
  Buffer.add_char buf '[';
  if negated then Buffer.add_char buf '^';
  List.iter
    (fun (lo, hi) ->
      let add c =
        match c with
        | ']' | '\\' | '^' | '-' ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c
        | _ -> Buffer.add_char buf c
      in
      if lo = hi then add lo
      else begin
        add lo;
        Buffer.add_char buf '-';
        add hi
      end)
    ranges;
  Buffer.add_char buf ']'

(* Precedence levels: 0 = alternation, 1 = concatenation, 2 = repetition
   operand. Parenthesise whenever the child binds looser than the
   context. *)
let to_pattern re =
  let buf = Buffer.create 32 in
  let rec go level re =
    match re with
    | Empty -> if level >= 2 then Buffer.add_string buf "()"
    | Char c -> escape_char buf c
    | Any -> Buffer.add_char buf '.'
    | Class cc -> class_to_buf buf cc
    | Bol -> Buffer.add_char buf '^'
    | Eol -> Buffer.add_char buf '$'
    | Seq (a, b) ->
        paren (level > 1) (fun () ->
            go 1 a;
            go 1 b)
    | Alt (a, b) ->
        paren (level > 0) (fun () ->
            go 0 a;
            Buffer.add_char buf '|';
            go 0 b)
    | Star a ->
        go 2 a;
        Buffer.add_char buf '*'
    | Plus a ->
        go 2 a;
        Buffer.add_char buf '+'
    | Opt a ->
        go 2 a;
        Buffer.add_char buf '?'
    | Repeat (a, lo, hi) ->
        go 2 a;
        Buffer.add_char buf '{';
        Buffer.add_string buf (string_of_int lo);
        (match hi with
        | Some h when h = lo -> ()
        | Some h ->
            Buffer.add_char buf ',';
            Buffer.add_string buf (string_of_int h)
        | None -> Buffer.add_char buf ',');
        Buffer.add_char buf '}'
  and paren needed body =
    if needed then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  go 0 re;
  Buffer.contents buf

let rec pp ppf = function
  | Empty -> Format.pp_print_string ppf "Empty"
  | Char c -> Format.fprintf ppf "Char %C" c
  | Any -> Format.pp_print_string ppf "Any"
  | Class { negated; ranges } ->
      Format.fprintf ppf "Class(%s%a)"
        (if negated then "^" else "")
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           (fun ppf (a, b) -> Format.fprintf ppf "%C-%C" a b))
        ranges
  | Seq (a, b) -> Format.fprintf ppf "Seq(%a, %a)" pp a pp b
  | Alt (a, b) -> Format.fprintf ppf "Alt(%a, %a)" pp a pp b
  | Star a -> Format.fprintf ppf "Star(%a)" pp a
  | Plus a -> Format.fprintf ppf "Plus(%a)" pp a
  | Opt a -> Format.fprintf ppf "Opt(%a)" pp a
  | Repeat (a, lo, hi) ->
      Format.fprintf ppf "Repeat(%a, %d, %s)" pp a lo
        (match hi with Some h -> string_of_int h | None -> "inf")
  | Bol -> Format.pp_print_string ppf "Bol"
  | Eol -> Format.pp_print_string ppf "Eol"

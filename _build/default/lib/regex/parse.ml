type error = { position : int; message : string }

exception Fail of error

let fail position message = raise (Fail { position; message })

type state = { pattern : string; mutable pos : int }

let peek st = if st.pos < String.length st.pattern then Some st.pattern.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st.pos (Printf.sprintf "expected %C" c)

let digit_class = Syntax.{ negated = false; ranges = [ ('0', '9') ] }

let word_class =
  Syntax.{ negated = false; ranges = [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ] }

let space_class =
  Syntax.{ negated = false; ranges = [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ] }

let negate (c : Syntax.char_class) = Syntax.{ c with negated = not c.negated }

let parse_escape st =
  match peek st with
  | None -> fail st.pos "dangling backslash"
  | Some c ->
      advance st;
      (match c with
      | 'd' -> Syntax.Class digit_class
      | 'D' -> Syntax.Class (negate digit_class)
      | 'w' -> Syntax.Class word_class
      | 'W' -> Syntax.Class (negate word_class)
      | 's' -> Syntax.Class space_class
      | 'S' -> Syntax.Class (negate space_class)
      | 'n' -> Syntax.Char '\n'
      | 't' -> Syntax.Char '\t'
      | 'r' -> Syntax.Char '\r'
      | '\\' | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$'
      | '-' ->
          Syntax.Char c
      | _ -> fail (st.pos - 1) (Printf.sprintf "unknown escape \\%c" c))

let parse_class_member st =
  match peek st with
  | None -> fail st.pos "unterminated character class"
  | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st.pos "dangling backslash in class"
      | Some c ->
          advance st;
          (match c with
          | 'n' -> `Char '\n'
          | 't' -> `Char '\t'
          | 'r' -> `Char '\r'
          | 'd' -> `Ranges digit_class.ranges
          | 'w' -> `Ranges word_class.ranges
          | 's' -> `Ranges space_class.ranges
          | _ -> `Char c))
  | Some c ->
      advance st;
      `Char c

let parse_class st =
  (* Called after '['. *)
  let negated =
    match peek st with
    | Some '^' ->
        advance st;
        true
    | _ -> false
  in
  let ranges = ref [] in
  let rec loop () =
    match peek st with
    | None -> fail st.pos "unterminated character class"
    | Some ']' -> advance st
    | Some _ -> (
        match parse_class_member st with
        | `Ranges rs ->
            ranges := List.rev_append rs !ranges;
            loop ()
        | `Char lo -> (
            match peek st with
            | Some '-' when st.pos + 1 < String.length st.pattern
                            && st.pattern.[st.pos + 1] <> ']' ->
                advance st;
                (match parse_class_member st with
                | `Char hi ->
                    if Char.code hi < Char.code lo then
                      fail st.pos (Printf.sprintf "inverted range %c-%c" lo hi);
                    ranges := (lo, hi) :: !ranges;
                    loop ()
                | `Ranges _ -> fail st.pos "class escape cannot end a range")
            | _ ->
                ranges := (lo, lo) :: !ranges;
                loop ()))
  in
  loop ();
  if !ranges = [] then fail st.pos "empty character class";
  Syntax.Class { negated; ranges = List.rev !ranges }

let parse_int st =
  let start = st.pos in
  let rec loop () =
    match peek st with
    | Some c when c >= '0' && c <= '9' ->
        advance st;
        loop ()
    | _ -> ()
  in
  loop ();
  if st.pos = start then None
  else Some (int_of_string (String.sub st.pattern start (st.pos - start)))

let parse_bounds st =
  (* Called after '{'. *)
  let lo = match parse_int st with Some n -> n | None -> fail st.pos "expected bound" in
  let hi =
    match peek st with
    | Some ',' ->
        advance st;
        (match parse_int st with Some n -> Some n | None -> None)
    | _ -> Some lo
  in
  expect st '}';
  (match hi with
  | Some h when h < lo -> fail st.pos (Printf.sprintf "bounds {%d,%d} inverted" lo h)
  | _ -> ());
  (lo, hi)

let rec parse_alt st =
  let left = parse_concat st in
  match peek st with
  | Some '|' ->
      advance st;
      Syntax.Alt (left, parse_alt st)
  | _ -> left

and parse_concat st =
  let rec loop acc =
    match peek st with
    | None | Some ')' | Some '|' -> acc
    | Some _ ->
        let r = parse_repeat st in
        loop (if acc = Syntax.Empty then r else Syntax.Seq (acc, r))
  in
  loop Syntax.Empty

and parse_repeat st =
  let atom = parse_atom st in
  let rec loop acc =
    match peek st with
    | Some '*' ->
        advance st;
        loop (Syntax.Star acc)
    | Some '+' ->
        advance st;
        loop (Syntax.Plus acc)
    | Some '?' ->
        advance st;
        loop (Syntax.Opt acc)
    | Some '{' ->
        advance st;
        let lo, hi = parse_bounds st in
        loop (Syntax.Repeat (acc, lo, hi))
    | _ -> acc
  in
  loop atom

and parse_atom st =
  match peek st with
  | None -> fail st.pos "expected an atom"
  | Some '(' ->
      advance st;
      let inner = parse_alt st in
      expect st ')';
      inner
  | Some '[' ->
      advance st;
      parse_class st
  | Some '.' ->
      advance st;
      Syntax.Any
  | Some '^' ->
      advance st;
      Syntax.Bol
  | Some '$' ->
      advance st;
      Syntax.Eol
  | Some '\\' ->
      advance st;
      parse_escape st
  | Some (('*' | '+' | '?' | '{' | ')' | '|' | ']' | '}') as c) ->
      fail st.pos (Printf.sprintf "unexpected %C" c)
  | Some c ->
      advance st;
      Syntax.Char c

let parse pattern =
  let st = { pattern; pos = 0 } in
  try
    let re = parse_alt st in
    if st.pos < String.length pattern then
      Error { position = st.pos; message = "trailing input" }
    else Ok re
  with Fail e -> Error e

let pp_error ppf { position; message } =
  Format.fprintf ppf "regex parse error at %d: %s" position message

let parse_exn pattern =
  match parse pattern with
  | Ok re -> re
  | Error e -> invalid_arg (Format.asprintf "%a (in %S)" pp_error e pattern)

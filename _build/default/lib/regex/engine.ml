type t = { pattern : string; program : Nfa.program }

(* Case-insensitivity is a source-to-source transform: every literal letter
   becomes a two-character class, every class range over letters is
   duplicated in the other case. *)
let rec decase (re : Syntax.t) : Syntax.t =
  let both c =
    let lo = Char.lowercase_ascii c and up = Char.uppercase_ascii c in
    if lo = up then Syntax.Char c
    else Syntax.Class { negated = false; ranges = [ (lo, lo); (up, up) ] }
  in
  match re with
  | Syntax.Char c -> both c
  | Syntax.Class { negated; ranges } ->
      let widen (lo, hi) =
        let crosses pred = pred lo || pred hi in
        let is_lower c = c >= 'a' && c <= 'z' in
        let is_upper c = c >= 'A' && c <= 'Z' in
        if crosses is_lower then
          [ (lo, hi); (Char.uppercase_ascii (max lo 'a'), Char.uppercase_ascii (min hi 'z')) ]
        else if crosses is_upper then
          [ (lo, hi); (Char.lowercase_ascii (max lo 'A'), Char.lowercase_ascii (min hi 'Z')) ]
        else [ (lo, hi) ]
      in
      Syntax.Class { negated; ranges = List.concat_map widen ranges }
  | Syntax.Seq (a, b) -> Syntax.Seq (decase a, decase b)
  | Syntax.Alt (a, b) -> Syntax.Alt (decase a, decase b)
  | Syntax.Star a -> Syntax.Star (decase a)
  | Syntax.Plus a -> Syntax.Plus (decase a)
  | Syntax.Opt a -> Syntax.Opt (decase a)
  | Syntax.Repeat (a, lo, hi) -> Syntax.Repeat (decase a, lo, hi)
  | (Syntax.Empty | Syntax.Any | Syntax.Bol | Syntax.Eol) as leaf -> leaf

let compile ?(case_insensitive = false) pattern =
  match Parse.parse pattern with
  | Error e -> Error e
  | Ok ast ->
      let ast = if case_insensitive then decase ast else ast in
      Ok { pattern; program = Nfa.compile ast }

let compile_exn ?case_insensitive pattern =
  match compile ?case_insensitive pattern with
  | Ok re -> re
  | Error e -> invalid_arg (Format.asprintf "%a (in %S)" Parse.pp_error e pattern)

let pattern re = re.pattern

let full_match re s =
  match Nfa.run_at re.program s 0 with
  | Some stop -> stop = String.length s
  | None -> false

let search re s = Nfa.search_from re.program s 0 <> None
let find re s = Nfa.search_from re.program s 0

let find_all re s =
  let n = String.length s in
  let rec loop from acc =
    if from > n then List.rev acc
    else
      match Nfa.search_from re.program s from with
      | None -> List.rev acc
      | Some (start, stop) ->
          let next = if stop = start then stop + 1 else stop in
          loop next ((start, stop) :: acc)
  in
  loop 0 []

let matched_string s (start, stop) = String.sub s start (stop - start)

let replace re ~by s =
  let spans = find_all re s in
  let buf = Buffer.create (String.length s) in
  let pos = ref 0 in
  List.iter
    (fun (start, stop) ->
      Buffer.add_substring buf s !pos (start - !pos);
      Buffer.add_string buf by;
      pos := stop)
    spans;
  Buffer.add_substring buf s !pos (String.length s - !pos);
  Buffer.contents buf

let is_valid pattern = match Parse.parse pattern with Ok _ -> true | Error _ -> false

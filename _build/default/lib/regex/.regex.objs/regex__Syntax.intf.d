lib/regex/syntax.mli: Format

lib/regex/syntax.ml: Buffer Format List

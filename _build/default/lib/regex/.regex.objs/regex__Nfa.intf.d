lib/regex/nfa.mli: Format Syntax

lib/regex/engine.ml: Buffer Char Format List Nfa Parse String Syntax

lib/regex/parse.ml: Char Format List Printf String Syntax

lib/regex/nfa.ml: Array Format List Printf String Syntax

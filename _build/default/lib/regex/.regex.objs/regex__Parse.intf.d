lib/regex/parse.mli: Format Syntax

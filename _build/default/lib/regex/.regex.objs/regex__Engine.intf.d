lib/regex/engine.mli: Parse

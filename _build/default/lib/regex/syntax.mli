(** Abstract syntax of the regular expressions accepted in extraction-rule
    conditions (Section 6.1.1 of the paper allows regular expressions in the
    condition part). The dialect is the classical core: literals, [.],
    character classes, grouping, alternation, [*], [+], [?], bounded
    repetition [{m,n}], anchors, and the escapes [\d \w \s] (and their
    complements). *)

type t =
  | Empty  (** matches the empty string *)
  | Char of char  (** a literal character *)
  | Any  (** [.] — any character *)
  | Class of char_class  (** [[a-z0-9]] or [[^...]] *)
  | Seq of t * t  (** concatenation *)
  | Alt of t * t  (** alternation *)
  | Star of t  (** zero or more *)
  | Plus of t  (** one or more *)
  | Opt of t  (** zero or one *)
  | Repeat of t * int * int option  (** [{m,n}]; [None] = unbounded *)
  | Bol  (** [^] — beginning of input *)
  | Eol  (** [$] — end of input *)

and char_class = {
  negated : bool;
  ranges : (char * char) list;  (** inclusive ranges; singletons are (c, c) *)
}

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering of the AST. *)

val to_pattern : t -> string
(** Render back to concrete regex syntax. Parsing the result yields an
    equivalent AST. *)

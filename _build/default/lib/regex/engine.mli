(** Public regex API used by extraction rules.

    A compiled pattern is immutable and reusable. Matching never backtracks
    (Pike VM), so worker-supplied conditions cannot blow up the engine. *)

type t

val compile : ?case_insensitive:bool -> string -> (t, Parse.error) result
(** [compile pattern] parses and compiles. With [~case_insensitive:true]
    (default [false]) ASCII letters match both cases. *)

val compile_exn : ?case_insensitive:bool -> string -> t
(** Like {!compile}. @raise Invalid_argument on malformed patterns. *)

val pattern : t -> string
(** The source pattern. *)

val full_match : t -> string -> bool
(** [full_match re s] is true iff [re] matches all of [s]. *)

val search : t -> string -> bool
(** [search re s] is true iff [re] matches some substring of [s] — the
    semantics of the paper's [matches(cond, tw)] builtin: a tweet matches an
    extraction rule when the condition occurs in it. *)

val find : t -> string -> (int * int) option
(** Leftmost match as a [(start, stop)] byte span ([stop] exclusive);
    longest run for that start. *)

val find_all : t -> string -> (int * int) list
(** All non-overlapping matches, left to right. Empty matches advance by
    one byte so the scan always terminates. *)

val matched_string : string -> int * int -> string
(** [matched_string s span] extracts the span from [s]. *)

val replace : t -> by:string -> string -> string
(** Replace every non-overlapping match by [by]. *)

val is_valid : string -> bool
(** True iff the pattern parses — used to screen worker-entered
    conditions. *)

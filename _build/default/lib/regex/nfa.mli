(** Thompson construction and the Pike-style NFA virtual machine.

    The AST compiles into a flat instruction program executed breadth-first
    over the input: every input position carries a set of live threads, so
    matching runs in O(program size × input length) with no backtracking
    blow-up regardless of the pattern. *)

type inst =
  | Char of char
  | Any
  | Class of bool * (char * char) list  (** negated?, inclusive ranges *)
  | Split of int * int  (** fork to both targets *)
  | Jmp of int
  | Bol  (** succeeds only at input start *)
  | Eol  (** succeeds only at input end *)
  | Accept

type program = inst array

exception Too_large
(** Raised when expansion of bounded repetitions exceeds the instruction
    budget. *)

val compile : Syntax.t -> program
(** Compile an AST. Bounded repetitions [{m,n}] are expanded by copying.
    @raise Too_large if the program would exceed 100_000 instructions. *)

val run_at : program -> string -> int -> int option
(** [run_at prog s start] runs the program anchored at [start] and returns
    the end offset of the longest accepting run, if any. *)

val search_from : program -> string -> int -> (int * int) option
(** [search_from prog s start] finds the leftmost match beginning at or
    after [start], returning its (start, end) span with the longest end for
    that start. *)

val pp_program : Format.formatter -> program -> unit
(** Disassembly listing, for debugging. *)

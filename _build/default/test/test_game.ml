(* Tests for the game-theory toolkit: normal form, extensive form, and the
   G_N / G_* classification of Section 9.4. *)

open Game

(* --- Normal form -------------------------------------------------------- *)

let coord = Matrix.coordination ~players:("A", "B") ~values:[ "fine"; "rainy" ] ~reward:1.0

let test_coordination_matrix () =
  Alcotest.(check (list string)) "players" [ "A"; "B" ] (Matrix.players coord);
  Alcotest.(check bool) "match pays" true
    (Matrix.payoff coord [| 0; 0 |] = [| 1.0; 1.0 |]);
  Alcotest.(check bool) "mismatch pays nothing" true
    (Matrix.payoff coord [| 0; 1 |] = [| 0.0; 0.0 |]);
  Alcotest.(check bool) "symmetric" true (Matrix.is_symmetric coord)

let test_coordination_nash () =
  (* Figure 4's solution: the diagonal — both players choose the same
     term. *)
  let nash = Matrix.pure_nash_named coord in
  Alcotest.(check int) "two equilibria" 2 (List.length nash);
  Alcotest.(check bool) "fine/fine" true (List.mem [ "fine"; "fine" ] nash);
  Alcotest.(check bool) "rainy/rainy" true (List.mem [ "rainy"; "rainy" ] nash)

let test_best_responses () =
  Alcotest.(check (list int)) "best response to fine is fine" [ 0 ]
    (Matrix.best_responses coord ~player:1 ~profile:[| 0; 1 |]);
  (* In a mismatch profile every action of the deviating player that
     matches is strictly better. *)
  Alcotest.(check (list int)) "best response to rainy is rainy" [ 1 ]
    (Matrix.best_responses coord ~player:0 ~profile:[| 0; 1 |])

let prisoners_dilemma =
  Matrix.of_bimatrix ~row_player:"A" ~col_player:"B"
    ~rows:[ "cooperate"; "defect" ] ~cols:[ "cooperate"; "defect" ]
    [| [| (3.0, 3.0); (0.0, 5.0) |]; [| (5.0, 0.0); (1.0, 1.0) |] |]

let test_dominance () =
  Alcotest.(check (list int)) "cooperate strictly dominated" [ 0 ]
    (Matrix.strictly_dominated prisoners_dilemma ~player:0);
  Alcotest.(check bool) "unique equilibrium defect/defect" true
    (Matrix.pure_nash_named prisoners_dilemma = [ [ "defect"; "defect" ] ]);
  Alcotest.(check bool) "iterated elimination leaves defect" true
    (Matrix.iterated_elimination prisoners_dilemma = [ [ "defect" ]; [ "defect" ] ])

let test_no_pure_nash () =
  (* Matching pennies has no pure equilibrium. *)
  let mp =
    Matrix.of_bimatrix ~row_player:"A" ~col_player:"B" ~rows:[ "h"; "t" ]
      ~cols:[ "h"; "t" ]
      [| [| (1.0, -1.0); (-1.0, 1.0) |]; [| (-1.0, 1.0); (1.0, -1.0) |] |]
  in
  Alcotest.(check int) "no pure nash" 0 (List.length (Matrix.pure_nash mp));
  Alcotest.(check bool) "not symmetric" false (Matrix.is_symmetric mp)

let test_three_player_game () =
  (* Three players each pick 0/1; everyone is paid the number of players
     who chose the majority value. Unanimity profiles are equilibria. *)
  let majority =
    Matrix.make ~players:[ "A"; "B"; "C" ]
      ~actions:[ [ "0"; "1" ]; [ "0"; "1" ]; [ "0"; "1" ] ]
      ~payoff:(fun profile ->
        let ones = Array.fold_left ( + ) 0 profile in
        let majority_size = max ones (3 - ones) in
        Array.make 3 (float_of_int majority_size))
  in
  Alcotest.(check int) "8 profiles" 8 (List.length (Matrix.profiles majority));
  let nash = Matrix.pure_nash majority in
  Alcotest.(check bool) "unanimity 000" true (List.mem [| 0; 0; 0 |] nash);
  Alcotest.(check bool) "unanimity 111" true (List.mem [| 1; 1; 1 |] nash)

(* --- Extensive form ------------------------------------------------------ *)

let test_sequential_coordination () =
  let tree = Extensive.of_matrix_sequential coord in
  Alcotest.(check (list string)) "players" [ "A"; "B" ] (Extensive.players tree);
  (* B has a single information set: she does not observe A's move
     (Figure 4's dotted circle). *)
  let sets = Extensive.info_sets tree in
  Alcotest.(check int) "two info sets" 2 (List.length sets);
  Alcotest.(check int) "depth 2" 2 (Extensive.depth tree);
  let payoffs =
    Extensive.expected_payoffs tree [ ("A:choice", "rainy"); ("B:choice", "rainy") ]
  in
  Alcotest.(check bool) "agreement pays both" true
    (payoffs = [ ("A", 1.0); ("B", 1.0) ])

let test_extensive_nash_matches_matrix () =
  let tree = Extensive.of_matrix_sequential coord in
  let nash = Extensive.pure_nash tree in
  (* The imperfect-information sequential presentation has the same pure
     equilibria as the matrix: both choose the same term. *)
  Alcotest.(check int) "two equilibria" 2 (List.length nash);
  List.iter
    (fun strategy ->
      let a = List.assoc "A:choice" strategy and b = List.assoc "B:choice" strategy in
      Alcotest.(check string) "diagonal" a b)
    nash

let test_chance_nodes () =
  (* A worker answers correctly with probability 0.9; a correct answer that
     matches the other's correct answer pays 1. *)
  let p = 0.9 in
  let tree =
    Extensive.Chance
      [ (p, "correct", Extensive.Terminal [ ("w", 1.0) ]);
        (1.0 -. p, "wrong", Extensive.Terminal [ ("w", 0.0) ]) ]
  in
  let payoffs = Extensive.expected_payoffs tree [] in
  Alcotest.(check bool) "expected payoff 0.9" true
    (abs_float (List.assoc "w" payoffs -. 0.9) < 1e-9)

let test_backward_induction () =
  (* Ultimatum-style toy: A offers fair/greedy, B accepts/rejects seeing
     the offer (perfect information — distinct info sets). *)
  let tree =
    Extensive.Decision
      {
        player = "A";
        info_set = "A:offer";
        moves =
          [ ( "fair",
              Extensive.Decision
                {
                  player = "B";
                  info_set = "B:after-fair";
                  moves =
                    [ ("accept", Extensive.Terminal [ ("A", 5.0); ("B", 5.0) ]);
                      ("reject", Extensive.Terminal [ ("A", 0.0); ("B", 0.0) ]) ];
                } );
            ( "greedy",
              Extensive.Decision
                {
                  player = "B";
                  info_set = "B:after-greedy";
                  moves =
                    [ ("accept", Extensive.Terminal [ ("A", 9.0); ("B", 1.0) ]);
                      ("reject", Extensive.Terminal [ ("A", 0.0); ("B", 0.0) ]) ];
                } ) ];
      }
  in
  let strategy, payoffs = Extensive.backward_induction tree in
  (* B accepts everywhere (1 > 0, 5 > 0), so A goes greedy. *)
  Alcotest.(check (option string)) "B accepts greedy" (Some "accept")
    (List.assoc_opt "B:after-greedy" strategy);
  Alcotest.(check (option string)) "A goes greedy" (Some "greedy")
    (List.assoc_opt "A:offer" strategy);
  Alcotest.(check bool) "A expects 9" true (List.assoc "A" payoffs = 9.0)

let test_inconsistent_info_set_rejected () =
  let bad =
    Extensive.Decision
      {
        player = "A";
        info_set = "s";
        moves =
          [ ( "x",
              Extensive.Decision
                { player = "A"; info_set = "s"; moves = [ ("y", Extensive.Terminal []) ] }
            ) ];
      }
  in
  Alcotest.(check bool) "rejected" true
    (try ignore (Extensive.info_sets bad); false with Invalid_argument _ -> true)

(* --- Game classes --------------------------------------------------------- *)

let ve_i_src =
  {|
  rules:
    Tweet(tw:"t1");
    Worker(pid:1);
    VE1: Input(tw, attr:"weather", value, p)/open[p] <- Tweet(tw), Worker(pid:p);
    VE2: Output(tw, weather:value) <- Input(tw, attr:"weather", value, p:p1),
                                      Input(tw, attr:"weather", value, p:p2), p1 != p2;
  games:
    game VEI(tw, attr) {
      path:
        P: Path(player:p, action:[value]) <- Input(tw, attr, value, p);
      payoff:
        Q: Payoff[p1 += 1] <- Path(player:p1, action:[v]);
    }
  |}

let logo_src =
  (* Two phases: designers submit logos; voters then vote on submitted
     logos (the second open statement depends on the first's output). *)
  {|
  rules:
    Concept(text:"openness");
    Designer(pid:1);
    Voter(pid:2);
    D: Logo(concept, image, p)/open[p] <- Concept(text:concept), Designer(pid:p);
    V: Vote(image, voter)/open[voter] <- Logo(concept, image, p), Voter(pid:voter);
  |}

let vre_src =
  {|
  schema:
    Rules(rid key auto, cond, attr, value, p);
  rules:
    Workers(p:1);
    VRE1: Rules(rid, cond, attr, value, p)/open[p] <- Workers(p);
  |}

let machine_only_src = "rules: R(x:1); S(x) <- R(x);"

let test_classify_ve_i () =
  Alcotest.(check bool) "VE/I is G_1" true
    (Classes.classify (Cylog.Parser.parse_exn ve_i_src) = Classes.Bounded 1)

let test_classify_logo () =
  Alcotest.(check bool) "logo design is G_2" true
    (Classes.classify (Cylog.Parser.parse_exn logo_src) = Classes.Bounded 2)

let test_classify_vre () =
  Alcotest.(check bool) "VRE rule entry is G_*" true
    (Classes.classify (Cylog.Parser.parse_exn vre_src) = Classes.Unbounded)

let test_classify_machine_only () =
  Alcotest.(check bool) "machine-only program is G_0" true
    (Classes.classify (Cylog.Parser.parse_exn machine_only_src) = Classes.Bounded 0)

let test_subsumption () =
  Alcotest.(check bool) "G_* subsumes G_N" true
    (Classes.subsumes Classes.Unbounded (Classes.Bounded 7));
  Alcotest.(check bool) "G_N does not subsume G_*" false
    (Classes.subsumes (Classes.Bounded 7) Classes.Unbounded);
  Alcotest.(check bool) "G_2 subsumes G_1" true
    (Classes.subsumes (Classes.Bounded 2) (Classes.Bounded 1));
  Alcotest.(check bool) "G_1 does not subsume G_2" false
    (Classes.subsumes (Classes.Bounded 1) (Classes.Bounded 2))

let suite =
  [ ( "game.matrix",
      [ Alcotest.test_case "coordination matrix" `Quick test_coordination_matrix;
        Alcotest.test_case "coordination nash" `Quick test_coordination_nash;
        Alcotest.test_case "best responses" `Quick test_best_responses;
        Alcotest.test_case "dominance" `Quick test_dominance;
        Alcotest.test_case "no pure nash" `Quick test_no_pure_nash;
        Alcotest.test_case "three players" `Quick test_three_player_game ] );
    ( "game.extensive",
      [ Alcotest.test_case "sequential coordination" `Quick test_sequential_coordination;
        Alcotest.test_case "nash via induced normal form" `Quick
          test_extensive_nash_matches_matrix;
        Alcotest.test_case "chance nodes" `Quick test_chance_nodes;
        Alcotest.test_case "backward induction" `Quick test_backward_induction;
        Alcotest.test_case "inconsistent info set rejected" `Quick
          test_inconsistent_info_set_rejected ] );
    ( "game.classes",
      [ Alcotest.test_case "VE/I in G_1" `Quick test_classify_ve_i;
        Alcotest.test_case "logo design in G_2" `Quick test_classify_logo;
        Alcotest.test_case "VRE in G_*" `Quick test_classify_vre;
        Alcotest.test_case "machine-only in G_0" `Quick test_classify_machine_only;
        Alcotest.test_case "subsumption" `Quick test_subsumption ] ) ]

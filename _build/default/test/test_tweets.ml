(* Tests for the synthetic #tenki corpus and extraction-rule metrics. *)

let corpus = Tweets.Generator.corpus ()

let test_corpus_size_and_determinism () =
  Alcotest.(check int) "463 tweets" Tweets.Generator.default_count (List.length corpus);
  let again = Tweets.Generator.corpus () in
  Alcotest.(check bool) "same seed, same corpus" true (corpus = again);
  let other = Tweets.Generator.generate ~seed:99 100 in
  Alcotest.(check bool) "different seed differs" true
    (List.map (fun (t : Tweets.Generator.tweet) -> t.text) other
    <> List.map (fun (t : Tweets.Generator.tweet) -> t.text)
         (Tweets.Generator.generate 100))

let test_corpus_composition () =
  let ambiguous = List.filter Tweets.Generator.is_ambiguous corpus in
  let placeless =
    List.filter (fun (t : Tweets.Generator.tweet) -> t.gt_place = None) corpus
  in
  let n = float_of_int (List.length corpus) in
  let frac xs = float_of_int (List.length xs) /. n in
  Alcotest.(check bool) "ambiguous near 25%" true
    (abs_float (frac ambiguous -. 0.25) < 0.07);
  Alcotest.(check bool) "placeless near 15%" true
    (abs_float (frac placeless -. 0.15) < 0.07);
  (* Every clear tweet's text contains a keyword of its condition. *)
  List.iter
    (fun (t : Tweets.Generator.tweet) ->
      match t.gt_weather with
      | None -> ()
      | Some v ->
          let c = Option.get (Tweets.Vocabulary.condition_by_value v) in
          let rule kw = { Tweets.Extraction.cond = kw; attr = "weather"; value = v } in
          Alcotest.(check bool)
            (Printf.sprintf "tweet %d mentions a %s keyword" t.id v)
            true
            (List.exists (fun kw -> Tweets.Extraction.applies (rule kw) t.text) c.keywords))
    corpus

let test_corpus_ids_unique () =
  let ids = List.map (fun (t : Tweets.Generator.tweet) -> t.id) corpus in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_vocabulary_wellformed () =
  List.iter
    (fun (c : Tweets.Vocabulary.condition) ->
      Alcotest.(check bool) (c.value ^ " has keywords") true (c.keywords <> []);
      Alcotest.(check bool) (c.value ^ " has confusions") true (c.confusions <> []);
      (* Confusions must never equal the canonical value. *)
      Alcotest.(check bool) (c.value ^ " confusions differ") false
        (List.mem c.value c.confusions))
    Tweets.Vocabulary.conditions;
  Alcotest.(check int) "seven conditions" 7 (List.length Tweets.Vocabulary.conditions);
  Alcotest.(check bool) "cities nonempty" true (Tweets.Vocabulary.cities <> [])

let test_rule_application () =
  let r = { Tweets.Extraction.cond = "rain"; attr = "weather"; value = "rainy" } in
  Alcotest.(check bool) "matches" true (Tweets.Extraction.applies r "Heavy rain in Osaka");
  Alcotest.(check bool) "case-insensitive" true (Tweets.Extraction.applies r "RAIN ahead");
  Alcotest.(check bool) "no match" false (Tweets.Extraction.applies r "sunshine");
  let malformed = { Tweets.Extraction.cond = "("; attr = "weather"; value = "x" } in
  Alcotest.(check bool) "malformed never applies" false
    (Tweets.Extraction.applies malformed "(anything)")

let test_support () =
  let r = { Tweets.Extraction.cond = "rain"; attr = "weather"; value = "rainy" } in
  let sup = Tweets.Extraction.support r corpus in
  Alcotest.(check bool) "support positive" true (sup > 0.0);
  Alcotest.(check bool) "support below 1" true (sup < 0.5);
  Alcotest.(check bool) "empty corpus" true (Tweets.Extraction.support r [] = 0.0);
  (* Head keywords have clearly larger support than tail keywords. *)
  let rainy = Option.get (Tweets.Vocabulary.condition_by_value "rainy") in
  match rainy.keywords with
  | head :: _ :: _ ->
      let tail = List.nth rainy.keywords (List.length rainy.keywords - 1) in
      let s kw =
        Tweets.Extraction.support
          { Tweets.Extraction.cond = kw; attr = "weather"; value = "rainy" }
          corpus
      in
      Alcotest.(check bool) "head keyword more supported" true (s head > s tail)
  | _ -> Alcotest.fail "expected several keywords"

let test_confidence () =
  let r = { Tweets.Extraction.cond = "rain"; attr = "weather"; value = "rainy" } in
  (* An oracle agreement function: the ground truth itself. *)
  let perfect ~tweet_id ~attr =
    match List.find_opt (fun (t : Tweets.Generator.tweet) -> t.id = tweet_id) corpus with
    | Some t when attr = "weather" -> t.gt_weather
    | Some t when attr = "place" -> t.gt_place
    | _ -> None
  in
  let conf = Tweets.Extraction.confidence r corpus ~agreed:perfect in
  Alcotest.(check bool) "below 1 (misleading ambiguous mentions)" true (conf < 1.0);
  Alcotest.(check bool) "still high" true (conf > 0.5);
  (* A wrong-mapping rule has zero confidence under the oracle. *)
  let wrong = { Tweets.Extraction.cond = "rain"; attr = "weather"; value = "sunny" } in
  Alcotest.(check bool) "wrong mapping zero" true
    (Tweets.Extraction.confidence wrong corpus ~agreed:perfect = 0.0);
  (* A rule that matches nothing has zero confidence by convention. *)
  let nohit = { Tweets.Extraction.cond = "zzzzz"; attr = "weather"; value = "rainy" } in
  Alcotest.(check bool) "no extraction, zero" true
    (Tweets.Extraction.confidence nohit corpus ~agreed:perfect = 0.0)

let test_rule_pools () =
  let good = Tweets.Extraction.good_rules () in
  let bad = Tweets.Extraction.bad_rules () in
  Alcotest.(check bool) "good pool covers weather and place" true
    (List.exists (fun (r : Tweets.Extraction.rule) -> r.attr = "weather") good
    && List.exists (fun (r : Tweets.Extraction.rule) -> r.attr = "place") good);
  (* Good rules map keywords to their own canonical value. *)
  List.iter
    (fun (r : Tweets.Extraction.rule) ->
      if r.attr = "weather" then
        match Tweets.Vocabulary.condition_by_value r.value with
        | Some c -> Alcotest.(check bool) "keyword belongs" true (List.mem r.cond c.keywords)
        | None -> Alcotest.fail ("good rule with unknown value " ^ r.value))
    good;
  Alcotest.(check bool) "bad pool nonempty" true (bad <> []);
  (* Under the oracle, good weather rules beat bad ones on confidence. *)
  let perfect ~tweet_id ~attr =
    match List.find_opt (fun (t : Tweets.Generator.tweet) -> t.id = tweet_id) corpus with
    | Some t when attr = "weather" -> t.gt_weather
    | Some t when attr = "place" -> t.gt_place
    | _ -> None
  in
  let avg rs =
    let confs = List.map (fun r -> Tweets.Extraction.confidence r corpus ~agreed:perfect) rs in
    List.fold_left ( +. ) 0.0 confs /. float_of_int (List.length confs)
  in
  Alcotest.(check bool) "good > bad on confidence" true (avg good > avg bad)

let suite =
  [ ( "tweets.generator",
      [ Alcotest.test_case "size and determinism" `Quick test_corpus_size_and_determinism;
        Alcotest.test_case "composition" `Quick test_corpus_composition;
        Alcotest.test_case "unique ids" `Quick test_corpus_ids_unique ] );
    ( "tweets.vocabulary",
      [ Alcotest.test_case "well-formed" `Quick test_vocabulary_wellformed ] );
    ( "tweets.extraction",
      [ Alcotest.test_case "rule application" `Quick test_rule_application;
        Alcotest.test_case "support" `Quick test_support;
        Alcotest.test_case "confidence" `Quick test_confidence;
        Alcotest.test_case "rule pools" `Quick test_rule_pools ] ) ]

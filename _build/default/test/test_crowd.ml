(* Tests for worker models and the crowd simulation loop. *)

let v_str s = Reldb.Value.String s

let test_worker_constructors () =
  let d = Crowd.Worker.diligent "w1" in
  Alcotest.(check bool) "diligent accurate" true (d.accuracy > 0.7);
  Alcotest.(check bool) "diligent honest" true d.honest_selection;
  Alcotest.(check bool) "no rules by default" true (d.rule_strategy = Crowd.Worker.No_rules);
  let r = Crowd.Worker.rational "w2" in
  (match r.rule_strategy with
  | Crowd.Worker.Front_loaded { count } ->
      Alcotest.(check bool) "positive budget" true (count > 0)
  | _ -> Alcotest.fail "rational should front-load rules");
  let s = Crowd.Worker.sloppy "w3" in
  Alcotest.(check bool) "sloppy less accurate" true (s.accuracy < d.accuracy);
  let crowd = Crowd.Worker.crowd Crowd.Worker.diligent 5 in
  Alcotest.(check (list string)) "names" [ "w1"; "w2"; "w3"; "w4"; "w5" ]
    (List.map (fun (w : Crowd.Worker.profile) -> w.name) crowd)

(* A minimal engine: one worker asked to enter values for three items. *)
let mini_engine () =
  Cylog.Engine.load
    (Cylog.Parser.parse_exn
       {|
       rules:
         Item(x:1); Item(x:2); Item(x:3);
         W(p:"kate");
         Ask: Answer(x, value, p)/open[p] <- Item(x), W(p);
       |})

let test_simulator_runs_to_stop () =
  let engine = mini_engine () in
  let answered = ref 0 in
  let policy engine ~worker:_ ~rng:_ ~round:_ =
    match Cylog.Engine.pending engine with
    | o :: _ ->
        incr answered;
        Crowd.Simulator.Answer
          (o.Cylog.Engine.id, [ ("value", v_str "v") ], Crowd.Simulator.Enter_value)
    | [] -> Crowd.Simulator.Pass
  in
  let stop engine =
    match Reldb.Database.find (Cylog.Engine.database engine) "Answer" with
    | Some rel -> Reldb.Relation.cardinal rel >= 3
    | None -> false
  in
  let outcome =
    Crowd.Simulator.run ~stop ~workers:[ (v_str "kate", policy) ] engine
  in
  Alcotest.(check bool) "stopped" true (outcome.stop_reason = `Stopped);
  Alcotest.(check int) "three answers" 3 !answered;
  Alcotest.(check int) "three log entries" 3 (List.length outcome.log);
  (* Log is chronological and carries the worker identity. *)
  List.iter
    (fun (e : Crowd.Simulator.log_entry) ->
      Alcotest.(check bool) "worker recorded" true (Reldb.Value.equal e.worker (v_str "kate"));
      Alcotest.(check string) "relation recorded" "Answer" e.relation)
    outcome.log;
  let clocks = List.map (fun (e : Crowd.Simulator.log_entry) -> e.clock) outcome.log in
  Alcotest.(check bool) "clocks increase" true (List.sort compare clocks = clocks)

let test_simulator_stalls_when_all_pass () =
  let engine = mini_engine () in
  let policy _ ~worker:_ ~rng:_ ~round:_ = Crowd.Simulator.Pass in
  let outcome =
    Crowd.Simulator.run ~stop:(fun _ -> false) ~workers:[ (v_str "kate", policy) ] engine
  in
  Alcotest.(check bool) "stalled" true (outcome.stop_reason = `Stalled);
  Alcotest.(check int) "no log" 0 (List.length outcome.log)

let test_simulator_max_rounds () =
  let engine = mini_engine () in
  (* A policy that acts every round but never satisfies the stop condition:
     answering the same standing question would resolve it, so instead
     alternate passing and let max_rounds bite. *)
  let policy _ ~worker:_ ~rng:_ ~round:_ = Crowd.Simulator.Pass in
  let outcome =
    Crowd.Simulator.run ~max_rounds:2 ~stop:(fun _ -> false)
      ~workers:[ (v_str "kate", policy) ] engine
  in
  (* With an always-passing worker the stall check fires before max_rounds;
     both are acceptable terminal reasons — just never an infinite loop. *)
  Alcotest.(check bool) "terminates" true
    (outcome.stop_reason = `Stalled || outcome.stop_reason = `Max_rounds)

let test_simulator_progress_recorded () =
  let engine = mini_engine () in
  let policy engine ~worker:_ ~rng:_ ~round:_ =
    match Cylog.Engine.pending engine with
    | o :: _ ->
        Crowd.Simulator.Answer
          (o.Cylog.Engine.id, [ ("value", v_str "v") ], Crowd.Simulator.Enter_value)
    | [] -> Crowd.Simulator.Pass
  in
  let progress engine =
    match Reldb.Database.find (Cylog.Engine.database engine) "Answer" with
    | Some rel -> float_of_int (Reldb.Relation.cardinal rel) /. 3.0
    | None -> 0.0
  in
  let outcome =
    Crowd.Simulator.run ~progress
      ~stop:(fun engine -> progress engine >= 1.0)
      ~workers:[ (v_str "kate", policy) ]
      engine
  in
  let ps = List.map (fun (e : Crowd.Simulator.log_entry) -> e.progress) outcome.log in
  Alcotest.(check bool) "progress non-decreasing" true (List.sort compare ps = ps);
  Alcotest.(check bool) "progress starts at 0" true (List.hd ps = 0.0)

let test_simulator_deterministic () =
  let run () =
    let engine = mini_engine () in
    let policy engine ~worker:_ ~rng ~round:_ =
      let pending = Cylog.Engine.pending engine in
      match pending with
      | [] -> Crowd.Simulator.Pass
      | _ ->
          let o = List.nth pending (Random.State.int rng (List.length pending)) in
          Crowd.Simulator.Answer
            (o.Cylog.Engine.id, [ ("value", v_str "v") ], Crowd.Simulator.Enter_value)
    in
    let outcome =
      Crowd.Simulator.run ~seed:11
        ~stop:(fun engine ->
          match Reldb.Database.find (Cylog.Engine.database engine) "Answer" with
          | Some rel -> Reldb.Relation.cardinal rel >= 3
          | None -> false)
        ~workers:[ (v_str "kate", policy) ]
        engine
    in
    List.map (fun (e : Crowd.Simulator.log_entry) -> (e.round, e.clock)) outcome.log
  in
  Alcotest.(check bool) "same seed, same log" true (run () = run ())

let suite =
  [ ( "crowd.worker",
      [ Alcotest.test_case "constructors" `Quick test_worker_constructors ] );
    ( "crowd.simulator",
      [ Alcotest.test_case "runs to stop" `Quick test_simulator_runs_to_stop;
        Alcotest.test_case "stalls when all pass" `Quick test_simulator_stalls_when_all_pass;
        Alcotest.test_case "bounded rounds" `Quick test_simulator_max_rounds;
        Alcotest.test_case "progress recorded" `Quick test_simulator_progress_recorded;
        Alcotest.test_case "deterministic under seed" `Quick test_simulator_deterministic ] ) ]

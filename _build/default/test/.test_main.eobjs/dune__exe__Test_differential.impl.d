test/test_differential.ml: Ast Cylog Engine List Option Parser Pretty Printf QCheck QCheck_alcotest Reldb Semantics String

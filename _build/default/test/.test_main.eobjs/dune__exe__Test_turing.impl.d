test/test_turing.ml: Alcotest Cylog Game List Turing

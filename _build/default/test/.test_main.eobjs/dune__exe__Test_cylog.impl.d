test/test_cylog.ml: Alcotest Ast Cylog Engine Lexer List Option Parser Precedence Pretty Printf Reldb Semantics String

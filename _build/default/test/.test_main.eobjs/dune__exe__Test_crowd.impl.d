test/test_crowd.ml: Alcotest Crowd Cylog List Random Reldb

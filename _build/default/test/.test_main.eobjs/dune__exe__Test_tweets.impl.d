test/test_tweets.ml: Alcotest List Option Printf Tweets

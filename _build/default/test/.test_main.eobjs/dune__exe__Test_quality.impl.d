test/test_quality.ml: Alcotest Crowd List Printf Quality Tweetpecker Tweets

test/test_reldb.ml: Alcotest Csv Database Dynarray Gen List Ops QCheck QCheck_alcotest Relation Reldb Schema Tuple Value

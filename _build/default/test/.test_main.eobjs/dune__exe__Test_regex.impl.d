test/test_regex.ml: Alcotest List Printf QCheck QCheck_alcotest Regex String Sys

test/test_game.ml: Alcotest Array Classes Cylog Extensive Game List Matrix

test/test_tweetpecker.ml: Alcotest Array Crowd Cylog Game Lazy List Option Printf Reldb String Tweetpecker Tweets

(* End-to-end tests for the TweetPecker variants: program generation,
   termination, agreement invariants, payoffs, and the paper's qualitative
   claims on a reduced corpus. *)

let small_corpus = Tweets.Generator.generate ~seed:5 60

let run variant = Tweetpecker.Runner.run ~corpus:small_corpus variant

(* Cache the four runs: several tests inspect the same outcome. *)
let ve = lazy (run Tweetpecker.Programs.VE)
let vei = lazy (run Tweetpecker.Programs.VEI)
let vre = lazy (run Tweetpecker.Programs.VRE)
let vrei = lazy (run Tweetpecker.Programs.VREI)

(* --- Program generation -------------------------------------------------- *)

let test_program_generation () =
  let names = [ "w1"; "w2" ] in
  List.iter
    (fun variant ->
      let p = Tweetpecker.Programs.program variant ~corpus:small_corpus ~workers:names in
      Alcotest.(check bool)
        (Tweetpecker.Programs.variant_name variant ^ " parses")
        true
        (List.length p.Cylog.Ast.statements > List.length small_corpus);
      let has_games = p.Cylog.Ast.games <> [] in
      Alcotest.(check bool) "games iff incentive" (Tweetpecker.Programs.has_incentive variant)
        has_games)
    Tweetpecker.Programs.all

let test_program_escaping () =
  let tricky =
    [ { Tweets.Generator.id = 1; text = "quote \" backslash \\ newline"; gt_weather = None;
        gt_place = None } ]
  in
  let p = Tweetpecker.Programs.program Tweetpecker.Programs.VE ~corpus:tricky ~workers:[ "w" ] in
  Alcotest.(check bool) "parses with escapes" true (p.Cylog.Ast.statements <> [])

let test_game_classification () =
  let p variant =
    Tweetpecker.Programs.program variant ~corpus:(Tweets.Generator.generate ~seed:1 3)
      ~workers:[ "w1" ]
  in
  Alcotest.(check bool) "VE/I bounded" true
    (match Game.Classes.classify (p Tweetpecker.Programs.VEI) with
    | Game.Classes.Bounded _ -> true
    | Game.Classes.Unbounded -> false);
  Alcotest.(check bool) "VRE/I unbounded (G_*)" true
    (Game.Classes.classify (p Tweetpecker.Programs.VREI) = Game.Classes.Unbounded)

(* --- Termination and agreement invariants -------------------------------- *)

let test_all_variants_terminate () =
  List.iter
    (fun o ->
      let o = Lazy.force o in
      Alcotest.(check bool)
        (Tweetpecker.Programs.variant_name o.Tweetpecker.Runner.variant ^ " terminates")
        true
        (o.sim.stop_reason = `Stopped);
      Alcotest.(check bool) "full completion" true
        (Tweetpecker.Runner.completion o >= 1.0))
    [ ve; vei; vre; vrei ]

let test_agreement_requires_two_workers () =
  let o = Lazy.force ve in
  let db = Cylog.Engine.database o.engine in
  let inputs = Reldb.Database.find_exn db "Inputs" in
  List.iter
    (fun (tw, attr, value) ->
      let supporters =
        Reldb.Relation.filter
          (fun t ->
            Reldb.Tuple.matches t
              [ ("tw", Reldb.Value.Int tw); ("attr", Reldb.Value.String attr);
                ("value", Reldb.Value.String value) ])
          inputs
        |> List.map (fun t -> Reldb.Tuple.get_or_null t "p")
        |> List.sort_uniq Reldb.Value.compare
      in
      Alcotest.(check bool)
        (Printf.sprintf "agreed (%d, %s) has two distinct supporters" tw attr)
        true
        (List.length supporters >= 2))
    o.agreed

let test_one_agreement_per_pair () =
  let o = Lazy.force ve in
  let keys = List.map (fun (tw, attr, _) -> (tw, attr)) o.agreed in
  Alcotest.(check int) "one agreed value per (tweet, attr)"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  Alcotest.(check int) "every pair determined" (2 * List.length small_corpus)
    (List.length keys)

(* --- Incentives ------------------------------------------------------------ *)

let test_ve_has_no_payoffs () =
  Alcotest.(check int) "VE pays nobody" 0 (List.length (Lazy.force ve).payoffs)

let test_vei_payoffs_positive () =
  let o = Lazy.force vei in
  Alcotest.(check bool) "every worker scored" true
    (List.length o.payoffs = 5 && List.for_all (fun (_, s) -> s > 0) o.payoffs)

let test_vrei_rule_payoffs () =
  let o = Lazy.force vrei in
  (* Rule enterers were paid: the total payoff must exceed the pure
     agreement payoffs of the same run only if rules got adopted; at least
     assert adopted-rule payoffs exist by finding a worker whose score
     includes the +2 component — weaker but robust: total > 0 and some
     extraction was adopted. *)
  let adopted =
    List.exists
      (fun (tw, attr, value, _) ->
        Tweetpecker.Runner.agreed_lookup o ~tweet_id:tw ~attr = Some value)
      o.extracts
  in
  Alcotest.(check bool) "some extraction adopted" true adopted;
  Alcotest.(check bool) "positive scores" true
    (List.for_all (fun (_, s) -> s > 0) o.payoffs)

(* --- Extraction machinery ---------------------------------------------------- *)

let test_extracts_respect_first_rule () =
  let o = Lazy.force vrei in
  (* Each extract's rid references an entered rule whose condition matches
     the tweet text. *)
  List.iter
    (fun (tw, _attr, _value, rid) ->
      match List.find_opt (fun (r, _, _) -> r = rid) o.rules_entered with
      | None -> Alcotest.fail (Printf.sprintf "extract references unknown rule %d" rid)
      | Some (_, rule, _) -> (
          match List.find_opt (fun (t : Tweets.Generator.tweet) -> t.id = tw) o.corpus with
          | Some tweet ->
              Alcotest.(check bool) "condition matches tweet" true
                (Tweets.Extraction.applies rule tweet.text)
          | None -> Alcotest.fail "extract references unknown tweet"))
    o.extracts;
  (* At most one extraction per (tweet, attr, value). *)
  let keys = List.map (fun (tw, attr, value, _) -> (tw, attr, value)) o.extracts in
  Alcotest.(check int) "extracts unique" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_rule_budget_respected () =
  let o = Lazy.force vrei in
  (* Five rational workers with a budget of 2 rules each. *)
  Alcotest.(check bool) "at most 10 rules" true (List.length o.rules_entered <= 10);
  List.iter
    (fun (w : Crowd.Worker.profile) ->
      let mine =
        List.filter (fun (_, _, p) -> String.equal p w.name) o.rules_entered
      in
      Alcotest.(check bool) (w.name ^ " within budget") true (List.length mine <= 2))
    o.workers

(* --- The paper's qualitative claims (reduced corpus) ------------------------ *)

let test_rule_quality_gap () =
  (* Table 1 rows B and C: VRE/I rules beat VRE rules on both confidence
     and support. *)
  let b_vre = Option.get (Tweetpecker.Metrics.row_b (Lazy.force vre)) in
  let b_vrei = Option.get (Tweetpecker.Metrics.row_b (Lazy.force vrei)) in
  let c_vre = Option.get (Tweetpecker.Metrics.row_c (Lazy.force vre)) in
  let c_vrei = Option.get (Tweetpecker.Metrics.row_c (Lazy.force vrei)) in
  Alcotest.(check bool)
    (Printf.sprintf "confidence: VRE/I %.2f > VRE %.2f" b_vrei b_vre)
    true (b_vrei > b_vre);
  Alcotest.(check bool)
    (Printf.sprintf "support: VRE/I %.3f > VRE %.3f" c_vrei c_vre)
    true (c_vrei > c_vre)

let test_row_a_similar_across_variants () =
  (* The paper found no significant quality difference between variants. *)
  let qualities =
    List.map (fun o -> (Tweetpecker.Metrics.row_a (Lazy.force o)).correct)
      [ ve; vei; vre; vrei ]
  in
  let lo = List.fold_left min 1.0 qualities and hi = List.fold_left max 0.0 qualities in
  Alcotest.(check bool) "correct rates within 15 points" true (hi -. lo < 0.15);
  List.iter
    (fun c -> Alcotest.(check bool) "majority correct" true (c > 0.5))
    qualities

let test_figure12_shapes () =
  (* VRE/I rule entries cluster at the start; VRE entries are spread. *)
  let f12_vrei = Tweetpecker.Analysis.figure12 (Lazy.force vrei) in
  let f12_vre = Tweetpecker.Analysis.figure12 (Lazy.force vre) in
  let total a = Array.fold_left ( + ) 0 a in
  Alcotest.(check bool) "VRE/I entries exist" true (total f12_vrei > 0);
  Alcotest.(check bool) "VRE/I all in first two deciles" true
    (f12_vrei.(0) + f12_vrei.(1) = total f12_vrei);
  Alcotest.(check bool) "VRE entries beyond the early deciles" true
    (Array.exists (fun c -> c > 0) (Array.sub f12_vre 3 7));
  match
    ( Tweetpecker.Analysis.median_rule_entry_progress (Lazy.force vrei),
      Tweetpecker.Analysis.median_rule_entry_progress (Lazy.force vre) )
  with
  | Some m_vrei, Some m_vre ->
      Alcotest.(check bool)
        (Printf.sprintf "median entry: VRE/I %.2f earlier than VRE %.2f" m_vrei m_vre)
        true (m_vrei < m_vre)
  | _ -> Alcotest.fail "both variants should enter rules"

let test_figure11_shape () =
  (* Early agreements ride on machine-extracted values more under VRE/I. *)
  let b_vrei = Tweetpecker.Analysis.figure11 (Lazy.force vrei) in
  let b_vre = Tweetpecker.Analysis.figure11 (Lazy.force vre) in
  Alcotest.(check bool) "VRE/I early selected share at least VRE's" true
    (Tweetpecker.Analysis.early_selected_share b_vrei
    >= Tweetpecker.Analysis.early_selected_share b_vre);
  Alcotest.(check bool) "VRE/I early selected share positive" true
    (Tweetpecker.Analysis.early_selected_share b_vrei > 0.0)

let test_theorem1_evidence () =
  let ev = Tweetpecker.Analysis.theorem1 (Lazy.force vrei) in
  Alcotest.(check bool)
    (Printf.sprintf "value entries mostly correct (%.2f)" ev.value_correct_rate)
    true
    (ev.value_correct_rate > 0.7);
  match ev.rule_avg_confidence with
  | Some c -> Alcotest.(check bool) "rules high-confidence" true (c > 0.6)
  | None -> Alcotest.fail "expected rule confidence"

let test_theorem2_evidence () =
  let ev = Tweetpecker.Analysis.theorem2 (Lazy.force vrei) in
  Alcotest.(check bool) "terminated" true ev.terminated;
  Alcotest.(check bool) "finitely many rules" true
    (ev.rules_finite > 0 && ev.rules_finite <= 10);
  match ev.last_rule_entry_progress with
  | Some p -> Alcotest.(check bool) "rule entry stops early" true (p < 0.5)
  | None -> Alcotest.fail "expected rule entries"

let test_figure10_expected_payoffs () =
  let expected = Tweetpecker.Analysis.figure10_expected ~accuracy:0.9 in
  let get k = List.assoc k expected in
  (* Correct actions strictly dominate their incorrect twins. *)
  Alcotest.(check bool) "correct value beats incorrect" true
    (get "enter correct value" > get "enter incorrect value");
  Alcotest.(check bool) "good rule beats bad rule" true
    (get "enter good rule" > get "enter bad rule");
  Alcotest.(check bool) "bad rule has negative expectation" true
    (get "enter bad rule" < 0.0);
  (* With the paper's 0.9 accuracy the numbers are 0.9, 0.05, 1.7, -0.7. *)
  Alcotest.(check bool) "numeric values" true
    (abs_float (get "enter correct value" -. 0.9) < 1e-9
    && abs_float (get "enter good rule" -. 1.7) < 1e-9)

let test_determinism () =
  let a = run Tweetpecker.Programs.VE and b = run Tweetpecker.Programs.VE in
  Alcotest.(check bool) "same seed, same agreements" true (a.agreed = b.agreed)

let suite =
  [ ( "tweetpecker.programs",
      [ Alcotest.test_case "generation" `Quick test_program_generation;
        Alcotest.test_case "escaping" `Quick test_program_escaping;
        Alcotest.test_case "game classification" `Quick test_game_classification ] );
    ( "tweetpecker.runs",
      [ Alcotest.test_case "all variants terminate" `Quick test_all_variants_terminate;
        Alcotest.test_case "agreement needs two workers" `Quick
          test_agreement_requires_two_workers;
        Alcotest.test_case "one agreement per pair" `Quick test_one_agreement_per_pair;
        Alcotest.test_case "VE pays nobody" `Quick test_ve_has_no_payoffs;
        Alcotest.test_case "VE/I pays agreers" `Quick test_vei_payoffs_positive;
        Alcotest.test_case "VRE/I rule payoffs" `Quick test_vrei_rule_payoffs;
        Alcotest.test_case "extracts reference matching rules" `Quick
          test_extracts_respect_first_rule;
        Alcotest.test_case "rule budget respected" `Quick test_rule_budget_respected;
        Alcotest.test_case "deterministic" `Quick test_determinism ] );
    ( "tweetpecker.claims",
      [ Alcotest.test_case "rule quality gap (rows B, C)" `Quick test_rule_quality_gap;
        Alcotest.test_case "row A similar across variants" `Quick
          test_row_a_similar_across_variants;
        Alcotest.test_case "figure 12 shapes" `Quick test_figure12_shapes;
        Alcotest.test_case "figure 11 shape" `Quick test_figure11_shape;
        Alcotest.test_case "theorem 1 evidence" `Quick test_theorem1_evidence;
        Alcotest.test_case "theorem 2 evidence" `Quick test_theorem2_evidence;
        Alcotest.test_case "figure 10 expected payoffs" `Quick
          test_figure10_expected_payoffs ] ) ]

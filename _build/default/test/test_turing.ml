(* Tests for the Turing machine substrate and its CyLog encoding
   (Figure 16, Theorems 3 and 4). *)

let test_validate () =
  List.iter
    (fun m ->
      match Turing.Machine.validate m with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ Turing.Machine.successor; Turing.Machine.binary_increment; Turing.Machine.parity ];
  let bad =
    {
      Turing.Machine.name = "bad";
      initial = "s";
      halting = [ "s" ];
      rules = [];
    }
  in
  Alcotest.(check bool) "halting initial rejected" true
    (Turing.Machine.validate bad <> Ok ())

let test_successor_direct () =
  match Turing.Machine.run Turing.Machine.successor ~input:[ "1"; "1"; "1" ] with
  | Ok (final, steps) ->
      Alcotest.(check string) "three 1s become four" "1111"
        (Turing.Machine.tape_string final);
      Alcotest.(check string) "halts in done" "done" final.state;
      Alcotest.(check bool) "took steps" true (steps > 0)
  | Error _ -> Alcotest.fail "should halt"

let test_binary_increment_direct () =
  let incr input =
    match Turing.Machine.run Turing.Machine.binary_increment ~input with
    | Ok (final, _) -> Turing.Machine.tape_string final
    | Error _ -> Alcotest.fail "should halt"
  in
  Alcotest.(check string) "0 -> 1" "1" (incr [ "0" ]);
  Alcotest.(check string) "1 -> 10" "10" (incr [ "1" ]);
  Alcotest.(check string) "101 -> 110" "110" (incr [ "1"; "0"; "1" ]);
  Alcotest.(check string) "111 -> 1000" "1000" (incr [ "1"; "1"; "1" ])

let test_parity_direct () =
  let parity input =
    match Turing.Machine.run Turing.Machine.parity ~input with
    | Ok (final, _) -> Turing.Machine.tape_string final
    | Error _ -> Alcotest.fail "should halt"
  in
  Alcotest.(check string) "even" "11E" (parity [ "1"; "1" ]);
  Alcotest.(check string) "two ones stay even" "101E" (parity [ "1"; "0"; "1" ]);
  Alcotest.(check string) "odd" "111O" (parity [ "1"; "1"; "1" ]);
  Alcotest.(check string) "empty input" "E" (parity [])

let test_cylog_encoding_agrees () =
  (* Theorem 4: the CyLog rules of Figure 16 compute the same function. *)
  List.iter
    (fun (m, input) ->
      Alcotest.(check bool)
        (m.Turing.Machine.name ^ " agrees with the CyLog encoding")
        true
        (Turing.Cylog_tm.agrees_with_direct m ~input))
    [ (Turing.Machine.successor, [ "1"; "1" ]);
      (Turing.Machine.successor, []);
      (Turing.Machine.binary_increment, [ "1"; "1" ]);
      (Turing.Machine.binary_increment, [ "1"; "0"; "0" ]);
      (Turing.Machine.parity, [ "1"; "1"; "1" ]);
      (Turing.Machine.parity, [ "0" ]) ]

let test_cylog_tape_extension () =
  (* The Fill rule extends the tape at unvisited positions: successor on an
     empty tape must still halt with one 1. *)
  let r = Turing.Cylog_tm.run Turing.Machine.successor ~input:[] in
  Alcotest.(check string) "halts" "done" r.state;
  Alcotest.(check bool) "wrote a 1" true (r.tape = [ (0, "1") ])

let test_interactive_dictation () =
  (* Theorem 3's shape: the machine interacts with a human at every step,
     for an unbounded number of steps. *)
  let tape = Turing.Cylog_tm.Interactive.run ~answers:[ "a"; "b"; "c" ] in
  Alcotest.(check string) "dictated tape" "abc" tape;
  let tape2 = Turing.Cylog_tm.Interactive.run ~answers:(List.init 12 (fun i -> string_of_int (i mod 10))) in
  Alcotest.(check string) "longer dictation" "012345678901" tape2

let test_interactive_halts () =
  let engine = Turing.Cylog_tm.Interactive.load () in
  ignore (Cylog.Engine.run engine);
  Alcotest.(check int) "asking" 1 (List.length (Cylog.Engine.pending engine));
  (match Turing.Cylog_tm.Interactive.dictate engine "." with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "no further questions after halt" 0
    (List.length (Cylog.Engine.pending engine))

let test_interactive_program_is_g_star () =
  (* The interactive machine's program classifies as G_*: the Ask rule
     depends on the machine state its own answers advance. *)
  let program = Cylog.Parser.parse_exn Turing.Cylog_tm.Interactive.source in
  Alcotest.(check bool) "G_*" true
    (Game.Classes.classify program = Game.Classes.Unbounded)

let suite =
  [ ( "turing.direct",
      [ Alcotest.test_case "validation" `Quick test_validate;
        Alcotest.test_case "successor" `Quick test_successor_direct;
        Alcotest.test_case "binary increment" `Quick test_binary_increment_direct;
        Alcotest.test_case "parity" `Quick test_parity_direct ] );
    ( "turing.cylog",
      [ Alcotest.test_case "encoding agrees (Theorem 4)" `Quick test_cylog_encoding_agrees;
        Alcotest.test_case "tape extension" `Quick test_cylog_tape_extension;
        Alcotest.test_case "interactive dictation" `Quick test_interactive_dictation;
        Alcotest.test_case "interactive halts" `Quick test_interactive_halts;
        Alcotest.test_case "interactive program in G_*" `Quick
          test_interactive_program_is_g_star ] ) ]

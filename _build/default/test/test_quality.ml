(* Tests for statistics-based aggregation (majority voting and the
   one-coin Dawid-Skene EM model) and its comparison against the paper's
   first-agreement mechanism. *)

let v item worker value = { Quality.Aggregate.item; worker; value }

let test_majority_basics () =
  let votes =
    [ v "i1" "a" "x"; v "i1" "b" "x"; v "i1" "c" "y";
      v "i2" "a" "y"; v "i2" "b" "z"; v "i2" "c" "z" ]
  in
  Alcotest.(check (list (pair string string))) "plurality per item"
    [ ("i1", "x"); ("i2", "z") ]
    (Quality.Aggregate.majority votes)

let test_majority_tie_breaks_earliest () =
  let votes = [ v "i" "a" "x"; v "i" "b" "y" ] in
  Alcotest.(check (list (pair string string))) "earliest-voted value wins ties"
    [ ("i", "x") ]
    (Quality.Aggregate.majority votes)

let test_em_agrees_with_majority_on_clean_data () =
  (* With uniformly reliable voters, EM and plurality coincide. *)
  let votes =
    List.concat_map
      (fun i ->
        let item = "i" ^ string_of_int i in
        [ v item "a" "x"; v item "b" "x"; v item "c" "y" ])
      [ 1; 2; 3; 4 ]
  in
  let em = Quality.Aggregate.em votes in
  Alcotest.(check bool) "same consensus" true
    (em.consensus = Quality.Aggregate.majority votes)

let test_em_downweights_bad_worker () =
  (* Items 1..8: workers a and b always vote the truth, worker c always
     votes wrong. On item 9 only c and a disagree with b absent... build a
     case where plurality is 1-1-1 but EM breaks toward the reliable
     worker. *)
  let truth_items = List.init 8 (fun i -> "t" ^ string_of_int i) in
  let clean =
    List.concat_map
      (fun item -> [ v item "good1" "x"; v item "good2" "x"; v item "bad" "y" ])
      truth_items
  in
  (* Disputed item: one vote each from a reliable and an unreliable
     worker. *)
  let disputed = [ v "d" "good1" "right"; v "d" "bad" "wrong" ] in
  let em = Quality.Aggregate.em (clean @ disputed) in
  Alcotest.(check (option string)) "EM sides with the reliable worker"
    (Some "right")
    (List.assoc_opt "d" em.consensus);
  let acc w = List.assoc w em.worker_accuracy in
  Alcotest.(check bool) "reliability separated" true (acc "good1" > 0.8 && acc "bad" < 0.3);
  Alcotest.(check bool) "converged" true (em.iterations < 100)

let test_em_posteriors_normalised () =
  let votes = [ v "i" "a" "x"; v "i" "b" "y"; v "i" "c" "x" ] in
  let em = Quality.Aggregate.em votes in
  List.iter
    (fun (_, post) ->
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 post in
      Alcotest.(check bool) "sums to 1" true (abs_float (total -. 1.0) < 1e-9);
      List.iter (fun (_, p) -> Alcotest.(check bool) "in [0,1]" true (p >= 0.0 && p <= 1.0)) post)
    em.posteriors

let test_accuracy_against () =
  let truth = function "i1" -> Some "x" | "i2" -> Some "y" | _ -> None in
  Alcotest.(check bool) "half right" true
    (Quality.Aggregate.accuracy_against ~truth [ ("i1", "x"); ("i2", "z"); ("i3", "q") ]
    = 0.5);
  Alcotest.(check bool) "empty comparable" true
    (Quality.Aggregate.accuracy_against ~truth [ ("i3", "q") ] = 0.0)

(* --- Integration: the three methods on a TweetPecker run ------------------- *)

let test_comparison_on_mixed_crowd () =
  (* Three diligent + two sloppy workers: EM should match or beat plain
     majority, and both statistics-based methods should be in the same
     league as the paper's agreement mechanism. *)
  let corpus = Tweets.Generator.generate ~seed:21 60 in
  let workers =
    Crowd.Worker.crowd Crowd.Worker.diligent 3
    @ [ Crowd.Worker.sloppy "s1"; Crowd.Worker.sloppy "s2" ]
  in
  let o = Tweetpecker.Runner.run ~corpus ~workers Tweetpecker.Programs.VEI in
  let c = Tweetpecker.Aggregation.compare_methods o in
  Alcotest.(check bool) "all methods above chance" true
    (c.agreement_accuracy > 0.5 && c.majority_accuracy > 0.5 && c.em_accuracy > 0.5);
  (* With only five votes per item the one-coin model cannot beat plurality
     by much; it must at least stay in the same league. *)
  Alcotest.(check bool) "EM in the same league as majority" true
    (c.em_accuracy >= c.majority_accuracy -. 0.05);
  (* EM must notice that the sloppy workers are less reliable. *)
  let est w = List.assoc w c.estimated_worker_accuracy in
  let avg_diligent = (est "w1" +. est "w2" +. est "w3") /. 3.0 in
  let avg_sloppy = (est "s1" +. est "s2") /. 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "diligent %.2f > sloppy %.2f" avg_diligent avg_sloppy)
    true (avg_diligent > avg_sloppy)

let suite =
  [ ( "quality.aggregate",
      [ Alcotest.test_case "majority basics" `Quick test_majority_basics;
        Alcotest.test_case "majority tie break" `Quick test_majority_tie_breaks_earliest;
        Alcotest.test_case "EM = majority on clean data" `Quick
          test_em_agrees_with_majority_on_clean_data;
        Alcotest.test_case "EM downweights bad workers" `Quick
          test_em_downweights_bad_worker;
        Alcotest.test_case "EM posteriors normalised" `Quick test_em_posteriors_normalised;
        Alcotest.test_case "accuracy_against" `Quick test_accuracy_against ] );
    ( "quality.integration",
      [ Alcotest.test_case "three methods on a mixed crowd" `Quick
          test_comparison_on_mixed_crowd ] ) ]

(* Tests for the from-scratch regex engine used by extraction rules. *)

let re = Regex.Engine.compile_exn

let check_full pattern input expected =
  Alcotest.(check bool)
    (Printf.sprintf "%S full-matches %S" pattern input)
    expected
    (Regex.Engine.full_match (re pattern) input)

let check_search pattern input expected =
  Alcotest.(check bool)
    (Printf.sprintf "%S occurs in %S" pattern input)
    expected
    (Regex.Engine.search (re pattern) input)

(* --- Parser ----------------------------------------------------------- *)

let test_parse_errors () =
  let bad = [ "("; ")"; "a)"; "["; "[]"; "[z-a]"; "a{2,1}"; "*a"; "a\\"; "a|*"; "a{"; "\\q" ] in
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" p) false (Regex.Engine.is_valid p))
    bad;
  let good = [ ""; "a"; "a|b"; "(ab)*"; "[a-z]+"; "a{2}"; "a{2,}"; "a{2,5}"; "\\d\\w\\s"; "^a$"; "[^ab]"; "a-b"; "[a\\-b]" ] in
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "%S accepted" p) true (Regex.Engine.is_valid p))
    good

let test_roundtrip () =
  let patterns = [ "a(b|c)*d"; "[a-z0-9]+"; "x{2,5}y?"; "^rain.*$"; "\\d+|\\w*" ] in
  List.iter
    (fun p ->
      let ast = Regex.Parse.parse_exn p in
      let printed = Regex.Syntax.to_pattern ast in
      let ast' = Regex.Parse.parse_exn printed in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %S -> %S" p printed)
        true
        (Regex.Syntax.equal ast ast'))
    patterns

(* --- Matching --------------------------------------------------------- *)

let test_literals () =
  check_full "rain" "rain" true;
  check_full "rain" "rains" false;
  check_full "rain" "rai" false;
  check_full "" "" true;
  check_full "" "a" false

let test_any_and_classes () =
  check_full "r..n" "rain" true;
  check_full "r..n" "rn" false;
  check_full "[a-c]+" "abcba" true;
  check_full "[a-c]+" "abd" false;
  check_full "[^a-c]+" "xyz" true;
  check_full "[^a-c]+" "xaz" false;
  check_full "\\d{3}" "123" true;
  check_full "\\d{3}" "12x" false;
  check_full "\\w+" "ab_9" true;
  check_full "\\s" " " true;
  check_full "\\S" " " false

let test_repetition () =
  check_full "a*" "" true;
  check_full "a*" "aaaa" true;
  check_full "a+" "" false;
  check_full "a+" "aaa" true;
  check_full "a?b" "b" true;
  check_full "a?b" "ab" true;
  check_full "a?b" "aab" false;
  check_full "a{2,3}" "a" false;
  check_full "a{2,3}" "aa" true;
  check_full "a{2,3}" "aaa" true;
  check_full "a{2,3}" "aaaa" false;
  check_full "a{2,}" "aaaaa" true;
  check_full "a{2}" "aa" true;
  check_full "a{2}" "aaa" false;
  check_full "(ab){2}" "abab" true

let test_alternation_grouping () =
  check_full "rain|snow" "rain" true;
  check_full "rain|snow" "snow" true;
  check_full "rain|snow" "hail" false;
  check_full "(fine|sunny) day" "sunny day" true;
  check_full "a(b|c)*d" "abcbcd" true;
  check_full "a(b|c)*d" "ad" true;
  check_full "a(b|c)*d" "axd" false

let test_anchors () =
  check_search "^rain" "rain in london" true;
  check_search "^rain" "heavy rain" false;
  check_search "london$" "rain in london" true;
  check_search "london$" "london fog" false;
  check_full "^abc$" "abc" true

let test_search_semantics () =
  (* matches(cond, tw): the condition occurs anywhere in the tweet. *)
  check_search "rain" "It rains in London" true;
  check_search "snow" "It rains in London" false;
  check_search "r.in" "It rains in London" true;
  check_search "London" "It rains in London" true

let test_case_insensitive () =
  let r = Regex.Engine.compile_exn ~case_insensitive:true "london" in
  Alcotest.(check bool) "LONDON matches" true (Regex.Engine.search r "LONDON calling");
  Alcotest.(check bool) "London matches" true (Regex.Engine.search r "in London");
  let r2 = Regex.Engine.compile_exn ~case_insensitive:true "[a-d]+" in
  Alcotest.(check bool) "class widened" true (Regex.Engine.full_match r2 "AbCd")

let test_find_spans () =
  let r = re "a+" in
  Alcotest.(check (option (pair int int))) "leftmost longest for start" (Some (2, 5))
    (Regex.Engine.find r "xxaaax");
  Alcotest.(check (list (pair int int))) "find_all" [ (0, 1); (2, 4) ]
    (Regex.Engine.find_all r "axaax");
  Alcotest.(check string) "matched_string" "aa"
    (Regex.Engine.matched_string "axaax" (2, 4));
  Alcotest.(check string) "replace" "x_y_z"
    (Regex.Engine.replace r ~by:"_" "xaayaaaz")

let test_empty_match_progress () =
  (* Patterns matching the empty string must not loop forever in find_all. *)
  let r = re "a*" in
  let spans = Regex.Engine.find_all r "bab" in
  Alcotest.(check bool) "terminates" true (List.length spans <= 4)

let test_pathological_no_blowup () =
  (* (a?){n}a{n} against a^n kills backtrackers; the Pike VM is linear. *)
  let n = 20 in
  let pattern = Printf.sprintf "(a?){%d}a{%d}" n n in
  let input = String.make n 'a' in
  let t0 = Sys.time () in
  check_full pattern input true;
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check bool) "fast" true (elapsed < 1.0)

let test_instruction_budget () =
  Alcotest.(check bool) "huge repeat rejected" true
    (try ignore (Regex.Nfa.compile (Regex.Parse.parse_exn "(a{1000}){1000}")); false
     with Regex.Nfa.Too_large -> true)

(* --- Oracle-based property tests -------------------------------------- *)

(* A tiny reference matcher by direct AST interpretation: [interp re s]
   returns the set of suffix offsets reachable after consuming a prefix. *)
let rec interp (re : Regex.Syntax.t) (s : string) (pos : int) : int list =
  let dedup = List.sort_uniq compare in
  match re with
  | Empty -> [ pos ]
  | Char c -> if pos < String.length s && s.[pos] = c then [ pos + 1 ] else []
  | Any -> if pos < String.length s then [ pos + 1 ] else []
  | Class { negated; ranges } ->
      if pos >= String.length s then []
      else
        let c = s.[pos] in
        let hit = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
        if hit <> negated then [ pos + 1 ] else []
  | Bol -> if pos = 0 then [ pos ] else []
  | Eol -> if pos = String.length s then [ pos ] else []
  | Seq (a, b) -> dedup (List.concat_map (interp b s) (interp a s pos))
  | Alt (a, b) -> dedup (interp a s pos @ interp b s pos)
  | Opt a -> dedup (pos :: interp a s pos)
  | Star a ->
      let rec fix frontier seen =
        let next =
          List.concat_map (interp a s) frontier
          |> List.filter (fun p -> not (List.mem p seen))
          |> List.sort_uniq compare
        in
        if next = [] then seen else fix next (dedup (next @ seen))
      in
      fix [ pos ] [ pos ]
  | Plus a -> dedup (List.concat_map (interp (Star a) s) (interp a s pos))
  | Repeat (a, lo, hi) ->
      let rec consume n frontier =
        if n = 0 then frontier else consume (n - 1) (dedup (List.concat_map (interp a s) frontier))
      in
      let base = consume lo [ pos ] in
      (match hi with
      | None -> dedup (List.concat_map (interp (Star a) s) base)
      | Some h ->
          let rec extra n frontier acc =
            if n = 0 then acc
            else
              let next = dedup (List.concat_map (interp a s) frontier) in
              extra (n - 1) next (dedup (next @ acc))
          in
          extra (h - lo) base base)

let oracle_full_match re s = List.mem (String.length s) (interp re s 0)

(* Random small regexes over {a, b} and random small inputs. *)
let gen_regex : Regex.Syntax.t QCheck.arbitrary =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return Regex.Syntax.Empty;
        return (Regex.Syntax.Char 'a');
        return (Regex.Syntax.Char 'b');
        return Regex.Syntax.Any;
        return (Regex.Syntax.Class { negated = false; ranges = [ ('a', 'b') ] });
        return (Regex.Syntax.Class { negated = true; ranges = [ ('a', 'a') ] }) ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      oneof
        [ leaf;
          map2 (fun a b -> Regex.Syntax.Seq (a, b)) (node (depth - 1)) (node (depth - 1));
          map2 (fun a b -> Regex.Syntax.Alt (a, b)) (node (depth - 1)) (node (depth - 1));
          map (fun a -> Regex.Syntax.Star a) (node (depth - 1));
          map (fun a -> Regex.Syntax.Plus a) (node (depth - 1));
          map (fun a -> Regex.Syntax.Opt a) (node (depth - 1));
          map (fun a -> Regex.Syntax.Repeat (a, 1, Some 2)) (node (depth - 1)) ]
  in
  QCheck.make
    ~print:(fun r -> Regex.Syntax.to_pattern r)
    (node 3)

let gen_input : string QCheck.arbitrary =
  QCheck.make ~print:(fun s -> s)
    QCheck.Gen.(map (String.concat "") (list_size (int_bound 6) (oneofl [ "a"; "b"; "c" ])))

let prop_vm_agrees_with_oracle =
  (* run_at reports the longest accepting offset, and accepting offsets are
     bounded by the input length, so a full match exists iff run_at returns
     exactly the input length. *)
  QCheck.Test.make ~name:"NFA VM agrees with AST interpreter" ~count:1000
    (QCheck.pair gen_regex gen_input) (fun (ast, s) ->
      let prog = Regex.Nfa.compile ast in
      let full_vm =
        match Regex.Nfa.run_at prog s 0 with
        | Some stop -> stop = String.length s
        | None -> false
      in
      full_vm = oracle_full_match ast s)

let prop_roundtrip_print_parse =
  QCheck.Test.make ~name:"print/parse roundtrip preserves semantics" ~count:500
    (QCheck.pair gen_regex gen_input) (fun (ast, s) ->
      let printed = Regex.Syntax.to_pattern ast in
      match Regex.Parse.parse printed with
      | Error _ -> false
      | Ok ast' -> oracle_full_match ast s = oracle_full_match ast' s)

let prop_search_iff_some_substring =
  QCheck.Test.make ~name:"search = exists matching substring" ~count:300
    (QCheck.pair gen_regex gen_input) (fun (ast, s) ->
      let pattern = Regex.Syntax.to_pattern ast in
      match Regex.Engine.compile pattern with
      | Error _ -> QCheck.assume_fail ()
      | Ok r ->
          let n = String.length s in
          let any_sub = ref false in
          for i = 0 to n do
            for j = i to n do
              if oracle_full_match ast (String.sub s i (j - i)) then any_sub := true
            done
          done;
          Regex.Engine.search r s = !any_sub)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_vm_agrees_with_oracle; prop_roundtrip_print_parse;
      prop_search_iff_some_substring ]

let suite =
  [ ( "regex.parse",
      [ Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip ] );
    ( "regex.match",
      [ Alcotest.test_case "literals" `Quick test_literals;
        Alcotest.test_case "any and classes" `Quick test_any_and_classes;
        Alcotest.test_case "repetition" `Quick test_repetition;
        Alcotest.test_case "alternation/grouping" `Quick test_alternation_grouping;
        Alcotest.test_case "anchors" `Quick test_anchors;
        Alcotest.test_case "search semantics" `Quick test_search_semantics;
        Alcotest.test_case "case insensitive" `Quick test_case_insensitive;
        Alcotest.test_case "find spans" `Quick test_find_spans;
        Alcotest.test_case "empty-match progress" `Quick test_empty_match_progress;
        Alcotest.test_case "no pathological blowup" `Quick test_pathological_no_blowup;
        Alcotest.test_case "instruction budget" `Quick test_instruction_budget ] );
    ("regex.properties", qcheck_tests) ]

(* Tests for the relational substrate: values, tuples, schemas, relations,
   database, and relational-algebra operations. *)

open Reldb

let v_int i = Value.Int i
let v_str s = Value.String s

let tup l = Tuple.of_list l

(* --- Value ------------------------------------------------------------ *)

let test_value_equality () =
  Alcotest.(check bool) "int eq" true (Value.equal (v_int 3) (v_int 3));
  Alcotest.(check bool) "int/float distinct" false
    (Value.equal (v_int 1) (Value.Float 1.0));
  Alcotest.(check bool) "null eq null" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "null neq 0" false (Value.equal Value.Null (v_int 0));
  Alcotest.(check bool) "list eq" true
    (Value.equal (Value.List [ v_str "a"; v_int 1 ]) (Value.List [ v_str "a"; v_int 1 ]));
  Alcotest.(check bool) "list length mismatch" false
    (Value.equal (Value.List [ v_str "a" ]) (Value.List [ v_str "a"; v_int 1 ]))

let test_value_compare_total () =
  let vs =
    [ Value.Null; Value.Bool false; Value.Bool true; v_int (-1); v_int 5;
      Value.Float 0.5; v_str "a"; v_str "b"; Value.List []; Value.List [ v_int 1 ] ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check bool) "antisymmetric" true (compare c1 0 = compare 0 c2);
          if Value.equal a b then Alcotest.(check int) "eq implies 0" 0 c1)
        vs)
    vs

let test_value_arith () =
  Alcotest.(check bool) "add ints" true (Value.equal (Value.add (v_int 2) (v_int 3)) (v_int 5));
  Alcotest.(check bool) "add promotes" true
    (Value.equal (Value.add (v_int 2) (Value.Float 0.5)) (Value.Float 2.5));
  Alcotest.(check bool) "string concat" true
    (Value.equal (Value.add (v_str "a") (v_str "b")) (v_str "ab"));
  Alcotest.(check bool) "sub" true (Value.equal (Value.sub (v_int 2) (v_int 3)) (v_int (-1)));
  Alcotest.(check bool) "mul" true (Value.equal (Value.mul (v_int 2) (v_int 3)) (v_int 6));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Value.div (v_int 1) (v_int 0)));
  Alcotest.(check bool) "add on bool rejected" true
    (try ignore (Value.add (Value.Bool true) (v_int 1)); false
     with Invalid_argument _ -> true)

let test_value_display () =
  Alcotest.(check string) "string quoted" "\"hi\"" (Value.to_string (v_str "hi"));
  Alcotest.(check string) "display unquoted" "hi" (Value.to_display (v_str "hi"));
  Alcotest.(check string) "list display" "[rainy, 1]"
    (Value.to_display (Value.List [ v_str "rainy"; v_int 1 ]));
  Alcotest.(check string) "null" "null" (Value.to_string Value.Null)

let test_value_truthy () =
  Alcotest.(check bool) "null falsy" false (Value.truthy Value.Null);
  Alcotest.(check bool) "zero falsy" false (Value.truthy (v_int 0));
  Alcotest.(check bool) "empty string falsy" false (Value.truthy (v_str ""));
  Alcotest.(check bool) "nonzero truthy" true (Value.truthy (v_int 2));
  Alcotest.(check bool) "empty list truthy" true (Value.truthy (Value.List []))

(* --- Tuple ------------------------------------------------------------ *)

let test_tuple_construction_order_irrelevant () =
  let a = tup [ ("x", v_int 1); ("y", v_str "a") ] in
  let b = tup [ ("y", v_str "a"); ("x", v_int 1) ] in
  Alcotest.(check bool) "order irrelevant" true (Tuple.equal a b);
  Alcotest.(check int) "same hash" (Tuple.hash a) (Tuple.hash b)

let test_tuple_override () =
  let t = tup [ ("x", v_int 1); ("x", v_int 2) ] in
  Alcotest.(check bool) "later wins" true (Value.equal (Tuple.get_or_null t "x") (v_int 2))

let test_tuple_accessors () =
  let t = tup [ ("x", v_int 1) ] in
  Alcotest.(check bool) "get some" true (Tuple.get t "x" = Some (v_int 1));
  Alcotest.(check bool) "get none" true (Tuple.get t "y" = None);
  Alcotest.(check bool) "get_or_null" true (Value.is_null (Tuple.get_or_null t "y"));
  Alcotest.(check bool) "mem" true (Tuple.mem t "x" && not (Tuple.mem t "y"));
  Alcotest.check_raises "get_exn raises" Not_found (fun () ->
      ignore (Tuple.get_exn t "missing"))

let test_tuple_project_and_matches () =
  let t = tup [ ("x", v_int 1); ("y", v_str "a"); ("z", v_int 9) ] in
  let p = Tuple.project t [ "x"; "w" ] in
  Alcotest.(check int) "projection cardinality" 2 (Tuple.cardinal p);
  Alcotest.(check bool) "missing becomes null" true (Value.is_null (Tuple.get_or_null p "w"));
  Alcotest.(check bool) "matches partial" true (Tuple.matches t [ ("x", v_int 1) ]);
  Alcotest.(check bool) "matches fails on wrong value" false
    (Tuple.matches t [ ("x", v_int 2) ])

let test_tuple_union () =
  let a = tup [ ("x", v_int 1); ("y", v_int 2) ] in
  let b = tup [ ("y", v_int 7); ("z", v_int 3) ] in
  let u = Tuple.union a b in
  Alcotest.(check bool) "right wins" true (Value.equal (Tuple.get_or_null u "y") (v_int 7));
  Alcotest.(check int) "union cardinality" 3 (Tuple.cardinal u)

let test_tuple_schema_conformance () =
  let s = Schema.make ~name:"R" [ "x"; "y" ] in
  Alcotest.(check bool) "conforms" true (Tuple.conforms (tup [ ("x", v_int 1) ]) s);
  Alcotest.(check bool) "extra attr fails" false
    (Tuple.conforms (tup [ ("w", v_int 1) ]) s);
  let c = Tuple.complete (tup [ ("x", v_int 1) ]) s in
  Alcotest.(check int) "completion fills nulls" 2 (Tuple.cardinal c);
  Alcotest.(check bool) "null filled" true (Value.is_null (Tuple.get_or_null c "y"))

(* --- Schema ----------------------------------------------------------- *)

let test_schema_validation () =
  Alcotest.(check bool) "dup attrs rejected" true
    (try ignore (Schema.make ~name:"R" [ "x"; "x" ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try ignore (Schema.make ~name:"R" []); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown key rejected" true
    (try ignore (Schema.make ~name:"R" ~key:[ "z" ] [ "x" ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown auto rejected" true
    (try ignore (Schema.make ~name:"R" ~auto_increment:"z" [ "x" ]); false
     with Invalid_argument _ -> true)

let test_schema_accessors () =
  let s = Schema.make ~name:"Rules" ~key:[ "rid" ] ~auto_increment:"rid"
      [ "rid"; "cond"; "attr"; "value"; "p" ] in
  Alcotest.(check string) "name" "Rules" (Schema.name s);
  Alcotest.(check int) "arity" 5 (Schema.arity s);
  Alcotest.(check bool) "key" true (Schema.key s = [ "rid" ]);
  Alcotest.(check bool) "auto" true (Schema.auto_increment s = Some "rid");
  Alcotest.(check bool) "has_attribute" true (Schema.has_attribute s "cond");
  Alcotest.(check bool) "not has_attribute" false (Schema.has_attribute s "zzz")

(* --- Relation --------------------------------------------------------- *)

let mk_rel ?key ?auto name attrs = Relation.create (Schema.make ?key ?auto_increment:auto ~name attrs)

let test_relation_insert_dedupe () =
  let r = mk_rel "R" [ "x"; "y" ] in
  (match Relation.insert r (tup [ ("x", v_int 1); ("y", v_int 2) ]) with
  | Relation.Inserted 0 -> ()
  | _ -> Alcotest.fail "first insert should land at row 0");
  (match Relation.insert r (tup [ ("x", v_int 1); ("y", v_int 2) ]) with
  | Relation.Duplicate_tuple 0 -> ()
  | _ -> Alcotest.fail "identical tuple should be a duplicate");
  Alcotest.(check int) "one live tuple" 1 (Relation.cardinal r)

let test_relation_key_first_wins () =
  (* The paper keys Extracts on (tw, attr, value)... here a simpler key:
     inserting a second tuple with the same key is a no-op (first rule
     wins). *)
  let r = mk_rel ~key:[ "x" ] "R" [ "x"; "y" ] in
  ignore (Relation.insert r (tup [ ("x", v_int 1); ("y", v_str "first") ]));
  (match Relation.insert r (tup [ ("x", v_int 1); ("y", v_str "second") ]) with
  | Relation.Duplicate_key 0 -> ()
  | _ -> Alcotest.fail "same-key insert should be rejected");
  match Relation.find_by_key r (tup [ ("x", v_int 1) ]) with
  | Some (_, t) ->
      Alcotest.(check string) "first value kept" "first"
        (Value.string_exn (Tuple.get_exn t "y"))
  | None -> Alcotest.fail "key lookup failed"

let test_relation_auto_increment () =
  let r = mk_rel ~key:[ "rid" ] ~auto:"rid" "Rules" [ "rid"; "cond" ] in
  ignore (Relation.insert r (tup [ ("cond", v_str "rain") ]));
  ignore (Relation.insert r (tup [ ("cond", v_str "sun") ]));
  let rids =
    List.map (fun t -> Value.int_exn (Tuple.get_exn t "rid")) (Relation.tuples r)
  in
  Alcotest.(check (list int)) "sequential ids" [ 1; 2 ] rids;
  (* An explicit id pushes the counter past itself. *)
  ignore (Relation.insert r (tup [ ("rid", v_int 10); ("cond", v_str "x") ]));
  ignore (Relation.insert r (tup [ ("cond", v_str "y") ]));
  let last = List.nth (Relation.tuples r) 3 in
  Alcotest.(check int) "counter skips past explicit id" 11
    (Value.int_exn (Tuple.get_exn last "rid"))

let test_relation_update_keeps_row () =
  let r = mk_rel ~key:[ "x" ] "R" [ "x"; "y" ] in
  ignore (Relation.insert r (tup [ ("x", v_int 1); ("y", v_int 10) ]));
  ignore (Relation.insert r (tup [ ("x", v_int 2); ("y", v_int 20) ]));
  (match Relation.update r (tup [ ("x", v_int 1); ("y", v_int 99) ]) with
  | Relation.Replaced 0 -> ()
  | _ -> Alcotest.fail "update should replace row 0");
  let rows = Relation.rows r in
  Alcotest.(check int) "row order preserved" 0 (fst (List.hd rows));
  (match Relation.row r 0 with
  | Some t -> Alcotest.(check int) "new value" 99 (Value.int_exn (Tuple.get_exn t "y"))
  | None -> Alcotest.fail "row 0 should be live");
  match Relation.update r (tup [ ("x", v_int 3); ("y", v_int 30) ]) with
  | Relation.Upserted 2 -> ()
  | _ -> Alcotest.fail "update of absent key should upsert"

let test_relation_update_unchanged () =
  let r = mk_rel ~key:[ "x" ] "R" [ "x"; "y" ] in
  ignore (Relation.insert r (tup [ ("x", v_int 1); ("y", v_int 10) ]));
  let g = Relation.generation r in
  (match Relation.update r (tup [ ("x", v_int 1); ("y", v_int 10) ]) with
  | Relation.Unchanged 0 -> ()
  | _ -> Alcotest.fail "identical update should be Unchanged");
  Alcotest.(check int) "generation untouched" g (Relation.generation r)

let test_relation_delete () =
  let r = mk_rel "R" [ "x" ] in
  for i = 1 to 5 do
    ignore (Relation.insert r (tup [ ("x", v_int i) ]))
  done;
  let n = Relation.delete_where r (fun t -> Value.int_exn (Tuple.get_exn t "x") mod 2 = 0) in
  Alcotest.(check int) "two deleted" 2 n;
  Alcotest.(check int) "three left" 3 (Relation.cardinal r);
  (* Surviving rows keep their indices. *)
  Alcotest.(check (list int)) "surviving row indices" [ 0; 2; 4 ]
    (List.map fst (Relation.rows r));
  (* A deleted tuple can be reinserted, landing at a fresh row. *)
  (match Relation.insert r (tup [ ("x", v_int 2) ]) with
  | Relation.Inserted 5 -> ()
  | _ -> Alcotest.fail "reinsert should take a fresh row")

let test_relation_mem_pattern () =
  let r = mk_rel "R" [ "x"; "y" ] in
  ignore (Relation.insert r (tup [ ("x", v_int 1); ("y", v_str "a") ]));
  Alcotest.(check bool) "pattern hit" true (Relation.mem_pattern r [ ("y", v_str "a") ]);
  Alcotest.(check bool) "pattern miss" false (Relation.mem_pattern r [ ("y", v_str "b") ])

let test_relation_nonconforming_rejected () =
  let r = mk_rel "R" [ "x" ] in
  Alcotest.(check bool) "bad attr rejected" true
    (try ignore (Relation.insert r (tup [ ("zzz", v_int 1) ])); false
     with Invalid_argument _ -> true)

let test_relation_copy_independent () =
  let r = mk_rel "R" [ "x" ] in
  ignore (Relation.insert r (tup [ ("x", v_int 1) ]));
  let c = Relation.copy r in
  ignore (Relation.insert c (tup [ ("x", v_int 2) ]));
  Alcotest.(check int) "original untouched" 1 (Relation.cardinal r);
  Alcotest.(check int) "copy extended" 2 (Relation.cardinal c)

let test_relation_clear () =
  let r = mk_rel ~auto:"x" "R" [ "x" ] in
  ignore (Relation.insert r Tuple.empty);
  Relation.clear r;
  Alcotest.(check int) "empty after clear" 0 (Relation.cardinal r);
  (match Relation.insert r Tuple.empty with
  | Relation.Inserted 0 -> ()
  | _ -> Alcotest.fail "row numbering reset");
  match Relation.row r 0 with
  | Some t -> Alcotest.(check int) "auto counter reset" 1 (Value.int_exn (Tuple.get_exn t "x"))
  | None -> Alcotest.fail "row 0 missing"

let test_relation_rows_with_index () =
  let r = mk_rel ~key:[ "x" ] "R" [ "x"; "y" ] in
  for i = 1 to 10 do
    ignore (Relation.insert r (tup [ ("x", v_int i); ("y", v_int (i mod 3)) ]))
  done;
  let hits = Relation.rows_with r "y" (v_int 1) in
  Alcotest.(check (list int)) "index probe finds matching rows" [ 1; 4; 7; 10 ]
    (List.map (fun (_, t) -> Value.int_exn (Tuple.get_exn t "x")) hits);
  (* Updates move rows between buckets; stale entries must not surface. *)
  ignore (Relation.update r (tup [ ("x", v_int 1); ("y", v_int 2) ]));
  Alcotest.(check int) "old bucket shrinks" 3
    (List.length (Relation.rows_with r "y" (v_int 1)));
  Alcotest.(check bool) "new bucket grows" true
    (List.exists
       (fun (_, t) -> Value.equal (Tuple.get_exn t "x") (v_int 1))
       (Relation.rows_with r "y" (v_int 2)));
  (* Deletions disappear from every bucket. *)
  ignore (Relation.delete_where r (fun t -> Value.equal (Tuple.get_exn t "y") (v_int 1)));
  Alcotest.(check int) "deleted rows gone from index" 0
    (List.length (Relation.rows_with r "y" (v_int 1)))

let test_relation_high_water () =
  let r = mk_rel "R" [ "x" ] in
  Alcotest.(check int) "empty watermark" 0 (Relation.high_water r);
  ignore (Relation.insert r (tup [ ("x", v_int 1) ]));
  ignore (Relation.insert r (tup [ ("x", v_int 2) ]));
  ignore (Relation.delete_where r (fun _ -> true));
  (* The watermark never shrinks: row indices are stable history. *)
  Alcotest.(check int) "watermark survives deletes" 2 (Relation.high_water r)

let test_relation_row_version () =
  let r = mk_rel ~key:[ "x" ] "R" [ "x"; "y" ] in
  ignore (Relation.insert r (tup [ ("x", v_int 1); ("y", v_int 0) ]));
  Alcotest.(check int) "fresh row version 0" 0 (Relation.row_version r 0);
  ignore (Relation.update r (tup [ ("x", v_int 1); ("y", v_int 1) ]));
  ignore (Relation.update r (tup [ ("x", v_int 1); ("y", v_int 2) ]));
  Alcotest.(check int) "two updates, version 2" 2 (Relation.row_version r 0);
  ignore (Relation.update r (tup [ ("x", v_int 1); ("y", v_int 2) ]));
  Alcotest.(check int) "identical update does not bump" 2 (Relation.row_version r 0);
  Alcotest.(check int) "out of range is 0" 0 (Relation.row_version r 99)

(* --- Database --------------------------------------------------------- *)

let test_database_declare () =
  let db = Database.create () in
  let s = Schema.make ~name:"R" [ "x" ] in
  let r1 = Database.declare db s in
  let r2 = Database.declare db s in
  Alcotest.(check bool) "same relation returned" true (r1 == r2);
  Alcotest.(check bool) "conflicting schema rejected" true
    (try ignore (Database.declare db (Schema.make ~name:"R" [ "y" ])); false
     with Invalid_argument _ -> true);
  Alcotest.(check (list string)) "names in declaration order" [ "R" ] (Database.names db)

let test_database_generation () =
  let db = Database.create () in
  let r = Database.declare db (Schema.make ~name:"R" [ "x" ]) in
  let g0 = Database.generation db in
  ignore (Relation.insert r (tup [ ("x", v_int 1) ]));
  Alcotest.(check bool) "generation bumps" true (Database.generation db > g0)

let test_database_copy () =
  let db = Database.create () in
  let r = Database.declare db (Schema.make ~name:"R" [ "x" ]) in
  ignore (Relation.insert r (tup [ ("x", v_int 1) ]));
  let db' = Database.copy db in
  ignore (Relation.insert (Database.find_exn db' "R") (tup [ ("x", v_int 2) ]));
  Alcotest.(check int) "original unaffected" 1 (Relation.cardinal r);
  Alcotest.(check int) "copy independent" 2
    (Relation.cardinal (Database.find_exn db' "R"))

(* --- Ops ------------------------------------------------------------- *)

let people =
  [ tup [ ("name", v_str "kate"); ("city", v_str "tsukuba") ];
    tup [ ("name", v_str "pam"); ("city", v_str "tokyo") ];
    tup [ ("name", v_str "ann"); ("city", v_str "tsukuba") ] ]

let cities =
  [ tup [ ("city", v_str "tsukuba"); ("pref", v_str "ibaraki") ];
    tup [ ("city", v_str "tokyo"); ("pref", v_str "tokyo-to") ] ]

let test_ops_select_project () =
  let sel = Ops.select_eq "city" (v_str "tsukuba") people in
  Alcotest.(check int) "selection size" 2 (List.length sel);
  let proj = Ops.project [ "city" ] people in
  Alcotest.(check int) "projection dedupes" 2 (List.length proj)

let test_ops_natural_join () =
  let j = Ops.natural_join people cities in
  Alcotest.(check int) "join size" 3 (List.length j);
  let first = List.hd j in
  Alcotest.(check string) "join merges attributes" "ibaraki"
    (Value.string_exn (Tuple.get_exn first "pref"));
  (* Nested-loop order: left outer. *)
  Alcotest.(check string) "order follows left" "kate"
    (Value.string_exn (Tuple.get_exn first "name"))

let test_ops_join_no_shared_is_product () =
  let a = [ tup [ ("x", v_int 1) ]; tup [ ("x", v_int 2) ] ] in
  let b = [ tup [ ("y", v_int 3) ] ] in
  Alcotest.(check int) "join with no shared attrs = product" 2
    (List.length (Ops.natural_join a b));
  Alcotest.(check int) "product size" 2 (List.length (Ops.product a b));
  Alcotest.(check bool) "overlapping product rejected" true
    (try ignore (Ops.product a a); false with Invalid_argument _ -> true)

let test_ops_set_operations () =
  let a = [ tup [ ("x", v_int 1) ]; tup [ ("x", v_int 2) ] ] in
  let b = [ tup [ ("x", v_int 2) ]; tup [ ("x", v_int 3) ] ] in
  Alcotest.(check int) "union" 3 (List.length (Ops.union a b));
  Alcotest.(check int) "difference" 1 (List.length (Ops.difference a b));
  Alcotest.(check int) "intersection" 1 (List.length (Ops.intersection a b))

let test_ops_rename () =
  let r = Ops.rename [ ("city", "town") ] people in
  Alcotest.(check bool) "renamed" true (Tuple.mem (List.hd r) "town");
  Alcotest.(check bool) "old gone" false (Tuple.mem (List.hd r) "city");
  Alcotest.(check bool) "others kept" true (Tuple.mem (List.hd r) "name")

let test_ops_group_aggregate () =
  let groups = Ops.group_by [ "city" ] people in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let scores =
    [ tup [ ("p", v_str "kate"); ("s", v_int 1) ];
      tup [ ("p", v_str "kate"); ("s", v_int 2) ];
      tup [ ("p", v_str "ann"); ("s", v_int 5) ] ]
  in
  let agg = Ops.aggregate_int ~key:[ "p" ] ~value:"s" ~init:0 ~f:( + ) scores in
  let kate =
    List.find (fun (k, _) -> Tuple.matches k [ ("p", v_str "kate") ]) agg
  in
  Alcotest.(check int) "kate total" 3 (snd kate)

(* --- Csv --------------------------------------------------------------- *)

let test_csv_parse_print () =
  let text = "a,b,c\n1,\"x,y\",\"say \"\"hi\"\"\"\nplain,2,\n" in
  let records = Csv.parse text in
  Alcotest.(check int) "three records" 3 (List.length records);
  Alcotest.(check (list string)) "quoted comma and quotes"
    [ "1"; "x,y"; "say \"hi\"" ] (List.nth records 1);
  Alcotest.(check (list string)) "trailing empty field" [ "plain"; "2"; "" ]
    (List.nth records 2);
  (* print . parse is the identity on records. *)
  Alcotest.(check bool) "roundtrip" true (Csv.parse (Csv.print records) = records)

let test_csv_multiline_field () =
  let records = Csv.parse "a\n\"line1\nline2\"\n" in
  Alcotest.(check (list (list string))) "newline inside quotes"
    [ [ "a" ]; [ "line1\nline2" ] ] records;
  Alcotest.check_raises "unterminated" (Csv.Error "unterminated quoted field")
    (fun () -> ignore (Csv.parse "a\n\"oops\n"))

let test_csv_typing () =
  Alcotest.(check bool) "int" true (Csv.typed_value "42" = v_int 42);
  Alcotest.(check bool) "float" true (Csv.typed_value "0.5" = Value.Float 0.5);
  Alcotest.(check bool) "bool" true (Csv.typed_value "true" = Value.Bool true);
  Alcotest.(check bool) "null" true (Csv.typed_value "null" = Value.Null);
  Alcotest.(check bool) "empty is null" true (Csv.typed_value "" = Value.Null);
  Alcotest.(check bool) "string" true (Csv.typed_value "rainy" = v_str "rainy")

let test_csv_import_export () =
  let db = Database.create () in
  let rel = Csv.import db ~name:"Tweets" "tw,text\n1,It rains\n2,\"Snow, maybe\"\n" in
  Alcotest.(check int) "two tuples" 2 (Relation.cardinal rel);
  (match Relation.row rel 1 with
  | Some t ->
      Alcotest.(check string) "typed text" "Snow, maybe"
        (Value.string_exn (Tuple.get_exn t "text"));
      Alcotest.(check bool) "typed id" true (Value.equal (Tuple.get_exn t "tw") (v_int 2))
  | None -> Alcotest.fail "row 1 missing");
  (* Export then re-import gives the same tuples. *)
  let db2 = Database.create () in
  let rel2 = Csv.import db2 ~name:"Tweets" (Csv.export rel) in
  Alcotest.(check bool) "roundtrip tuples" true
    (List.for_all2 Tuple.equal (Relation.tuples rel) (Relation.tuples rel2));
  (* Ragged rows are rejected. *)
  Alcotest.(check bool) "ragged rejected" true
    (try ignore (Csv.import (Database.create ()) ~name:"R" "a,b\n1\n"); false
     with Csv.Error _ -> true)

(* --- Dynarray --------------------------------------------------------- *)

let test_dynarray_basics () =
  let a = Dynarray.create () in
  Alcotest.(check int) "empty" 0 (Dynarray.length a);
  for i = 0 to 99 do
    Alcotest.(check int) "push index" i (Dynarray.push a (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Dynarray.length a);
  Alcotest.(check int) "get" 84 (Dynarray.get a 42);
  Dynarray.set a 42 0;
  Alcotest.(check int) "set" 0 (Dynarray.get a 42);
  Alcotest.(check bool) "find_index" true (Dynarray.find_index (fun x -> x = 198) a = Some 99);
  Alcotest.check_raises "oob get" (Invalid_argument "Dynarray: index 100 out of bounds [0,100)")
    (fun () -> ignore (Dynarray.get a 100))

(* --- Property-based tests --------------------------------------------- *)

let value_gen : Value.t QCheck.arbitrary =
  let open QCheck in
  let base =
    Gen.oneof
      [ Gen.return Value.Null;
        Gen.map (fun b -> Value.Bool b) Gen.bool;
        Gen.map (fun i -> Value.Int i) Gen.small_signed_int;
        Gen.map (fun s -> Value.String s) Gen.small_string ]
  in
  let gen =
    Gen.oneof [ base; Gen.map (fun l -> Value.List l) (Gen.small_list base) ]
  in
  make ~print:Value.to_string gen

let tuple_gen : Tuple.t QCheck.arbitrary =
  let open QCheck in
  let attr = Gen.oneofl [ "a"; "b"; "c"; "d" ] in
  let gen =
    Gen.map Reldb.Tuple.of_list
      (Gen.small_list (Gen.pair attr (QCheck.gen value_gen)))
  in
  make ~print:Reldb.Tuple.to_string gen

let prop_value_compare_consistent =
  QCheck.Test.make ~name:"value compare consistent with equal" ~count:500
    (QCheck.pair value_gen value_gen) (fun (a, b) ->
      Value.equal a b = (Value.compare a b = 0))

let prop_value_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500
    (QCheck.pair value_gen value_gen) (fun (a, b) ->
      (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_tuple_union_idempotent =
  QCheck.Test.make ~name:"tuple union is idempotent" ~count:200 tuple_gen
    (fun t -> Tuple.equal (Tuple.union t t) t)

let prop_relation_insert_idempotent =
  QCheck.Test.make ~name:"relation insert is idempotent" ~count:200
    (QCheck.small_list tuple_gen) (fun ts ->
      let mk () =
        let r = Relation.create (Schema.make ~name:"R" [ "a"; "b"; "c"; "d" ]) in
        List.iter (fun t -> ignore (Relation.insert r t)) ts;
        r
      in
      let once = mk () in
      let twice = mk () in
      List.iter (fun t -> ignore (Relation.insert twice t)) ts;
      List.for_all2 Tuple.equal (Relation.tuples once) (Relation.tuples twice))

let prop_ops_union_assoc =
  QCheck.Test.make ~name:"ops union is associative on sets" ~count:100
    (QCheck.triple (QCheck.small_list tuple_gen) (QCheck.small_list tuple_gen)
       (QCheck.small_list tuple_gen)) (fun (a, b, c) ->
      let l = Ops.union (Ops.union a b) c in
      let r = Ops.union a (Ops.union b c) in
      List.sort Tuple.compare l = List.sort Tuple.compare r)

let prop_ops_project_idempotent =
  QCheck.Test.make ~name:"projection is idempotent" ~count:200
    (QCheck.small_list tuple_gen) (fun ts ->
      let p = Ops.project [ "a"; "b" ] ts in
      Ops.project [ "a"; "b" ] p = p)

let prop_join_commutes_as_set =
  QCheck.Test.make ~name:"natural join commutes as a set" ~count:100
    (QCheck.pair (QCheck.small_list tuple_gen) (QCheck.small_list tuple_gen))
    (fun (a, b) ->
      let l = Ops.distinct (Ops.natural_join a b) in
      let r = Ops.distinct (Ops.natural_join b a) in
      List.sort Tuple.compare l = List.sort Tuple.compare r)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_value_compare_consistent; prop_value_hash_consistent;
      prop_tuple_union_idempotent; prop_relation_insert_idempotent;
      prop_ops_union_assoc; prop_ops_project_idempotent;
      prop_join_commutes_as_set ]

let suite =
  [ ( "reldb.value",
      [ Alcotest.test_case "equality" `Quick test_value_equality;
        Alcotest.test_case "compare total order" `Quick test_value_compare_total;
        Alcotest.test_case "arithmetic" `Quick test_value_arith;
        Alcotest.test_case "display" `Quick test_value_display;
        Alcotest.test_case "truthiness" `Quick test_value_truthy ] );
    ( "reldb.tuple",
      [ Alcotest.test_case "construction order irrelevant" `Quick
          test_tuple_construction_order_irrelevant;
        Alcotest.test_case "later binding overrides" `Quick test_tuple_override;
        Alcotest.test_case "accessors" `Quick test_tuple_accessors;
        Alcotest.test_case "project and matches" `Quick test_tuple_project_and_matches;
        Alcotest.test_case "union" `Quick test_tuple_union;
        Alcotest.test_case "schema conformance" `Quick test_tuple_schema_conformance ] );
    ( "reldb.schema",
      [ Alcotest.test_case "validation" `Quick test_schema_validation;
        Alcotest.test_case "accessors" `Quick test_schema_accessors ] );
    ( "reldb.relation",
      [ Alcotest.test_case "insert dedupes" `Quick test_relation_insert_dedupe;
        Alcotest.test_case "key: first insert wins" `Quick test_relation_key_first_wins;
        Alcotest.test_case "auto increment" `Quick test_relation_auto_increment;
        Alcotest.test_case "update keeps row index" `Quick test_relation_update_keeps_row;
        Alcotest.test_case "identical update unchanged" `Quick test_relation_update_unchanged;
        Alcotest.test_case "delete preserves survivors" `Quick test_relation_delete;
        Alcotest.test_case "mem_pattern" `Quick test_relation_mem_pattern;
        Alcotest.test_case "nonconforming tuple rejected" `Quick
          test_relation_nonconforming_rejected;
        Alcotest.test_case "copy independence" `Quick test_relation_copy_independent;
        Alcotest.test_case "clear resets" `Quick test_relation_clear;
        Alcotest.test_case "secondary index (rows_with)" `Quick
          test_relation_rows_with_index;
        Alcotest.test_case "high-water mark" `Quick test_relation_high_water;
        Alcotest.test_case "row versions" `Quick test_relation_row_version ] );
    ( "reldb.database",
      [ Alcotest.test_case "declare" `Quick test_database_declare;
        Alcotest.test_case "generation" `Quick test_database_generation;
        Alcotest.test_case "copy" `Quick test_database_copy ] );
    ( "reldb.ops",
      [ Alcotest.test_case "select/project" `Quick test_ops_select_project;
        Alcotest.test_case "natural join" `Quick test_ops_natural_join;
        Alcotest.test_case "join without shared attrs" `Quick
          test_ops_join_no_shared_is_product;
        Alcotest.test_case "set operations" `Quick test_ops_set_operations;
        Alcotest.test_case "rename" `Quick test_ops_rename;
        Alcotest.test_case "group/aggregate" `Quick test_ops_group_aggregate ] );
    ( "reldb.csv",
      [ Alcotest.test_case "parse/print" `Quick test_csv_parse_print;
        Alcotest.test_case "multiline fields" `Quick test_csv_multiline_field;
        Alcotest.test_case "field typing" `Quick test_csv_typing;
        Alcotest.test_case "import/export" `Quick test_csv_import_export ] );
    ("reldb.dynarray", [ Alcotest.test_case "basics" `Quick test_dynarray_basics ]);
    ("reldb.properties", qcheck_tests) ]

(* Quickstart: write a CyLog program with an open predicate and a game
   aspect, run the machine part, play the human part, and read the results.

   This is the paper's running example at its smallest: one tweet, two
   workers, the VE/I coordination game.

   Run with: dune exec examples/quickstart.exe *)

let program =
  {|
  rules:
    Pre1: TweetOriginal(tw:"It rains in London", loc:"London");
    Pre2: ValidCity(cname:"London");
    Pre3: Tweet(tw) <- TweetOriginal(tw, loc), ValidCity(cname:loc);
    Pre4: Worker(pid:1, name:"Shun");
    Pre5: Worker(pid:2, name:"Ken");
    VE1: Input(tw, attr:"weather", value, p)/open[p] <- Tweet(tw), Worker(pid:p);
    VE2: Output(tw, weather:value) <- Input(tw, attr:"weather", value, p:p1),
                                      Input(tw, attr:"weather", value, p:p2), p1 != p2;

  games:
    game VEI(tw, attr) {
      path:
        VEI1: Path(player:p, action:["value", value]) <- Input(tw, attr, value, p);
      payoff:
        VEI2: Path(player:p1, action:["value", v]) {
          VEI2.1: Payoff[p1 += 1, p2 += 1] <- Path(player:p2, action:["value", v]), p1 != p2;
        }
    }
  |}

let () =
  (* 1. Parse and load. *)
  let engine = Cylog.Engine.load (Cylog.Parser.parse_exn program) in

  (* 2. Run the machine: facts fire, Pre3 validates the tweet, VE1 creates
     one open tuple per (tweet, worker) and suspends. *)
  let steps, _ = Cylog.Engine.run engine in
  Format.printf "machine fired %d statements, then suspended on humans@." steps;

  List.iter
    (fun (o : Cylog.Engine.open_tuple) ->
      Format.printf "  open tuple %d: %s%a awaits %s from worker %s@." o.id o.relation
        Reldb.Tuple.pp o.bound
        (String.concat ", " o.open_attrs)
        (match o.asked with Some w -> Reldb.Value.to_display w | None -> "anyone"))
    (Cylog.Engine.pending engine);

  (* 3. Play the humans: both workers enter the same term — the solution of
     the coordination game the game aspect defines. *)
  List.iter
    (fun (o : Cylog.Engine.open_tuple) ->
      let worker = Option.get o.asked in
      match
        Cylog.Engine.supply engine o.id ~worker
          [ ("value", Reldb.Value.String "rainy") ]
      with
      | Ok _ -> Format.printf "  worker %s enters \"rainy\"@." (Reldb.Value.to_display worker)
      | Error e -> failwith (Cylog.Engine.reject_to_string e))
    (Cylog.Engine.pending engine);

  (* 4. Run the machine again: VE2 sees the agreement; the game aspect
     records the path and pays both players. *)
  ignore (Cylog.Engine.run engine);

  let db = Cylog.Engine.database engine in
  Format.printf "@.Output relation:@.%a@." Reldb.Relation.pp
    (Reldb.Database.find_exn db "Output");

  Format.printf "@.Path table of the game instance (Figure 6):@.";
  (match Cylog.Engine.game_instances engine "VEI" with
  | params :: _ ->
      List.iter
        (fun t -> Format.printf "  %a@." Reldb.Tuple.pp t)
        (Cylog.Engine.path_table engine "VEI" ~params:(Reldb.Tuple.to_list params))
  | [] -> Format.printf "  (no game instance)@.");

  Format.printf "@.Payoffs:@.";
  List.iter
    (fun (player, score) ->
      Format.printf "  %s: %s@."
        (Reldb.Value.to_display player)
        (Reldb.Value.to_display score))
    (Cylog.Engine.payoffs engine)

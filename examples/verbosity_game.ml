(* Verbosity (von Ahn et al.), the game-with-a-purpose the paper cites as
   "Verbose": a describer gives clues about a hidden word using fixed
   sentence templates ("it is a kind of ...", "it is used for ..."), a
   guesser tries to name the word, and every confirmed clue is harvested as
   a commonsense fact.

   As a CyLog program the harvesting logic is three rules; the incentive
   (both players score when the guess matches the hidden word) is once
   again a coordination-style game aspect — the same separation of
   concerns as TweetPecker and the ESP game.

   Run with: dune exec examples/verbosity_game.exe *)

let program =
  {|
  schema:
    Facts(word key, relation key, clue key);

  rules:
    Round(word:"umbrella", describer:"dana", guesser:"gus");
    Round(word:"piano", describer:"gus", guesser:"dana");

    /* The describer fills clue templates for the hidden word. */
    C1: Clue(word, relation:"is used for", clue, p)/open[p]
          <- Round(word, describer:p, guesser);
    C2: Clue(word, relation:"is a kind of", clue, p)/open[p]
          <- Round(word, describer:p, guesser);

    /* The guesser, shown only the clues, names a word. */
    G1: Guess(word, answer, p)/open[p] <- Round(word, describer, guesser:p),
                                          Clue(word, relation, clue, p:d);

    /* A correct guess validates the round's clues into the fact base. */
    H1: Facts(word, relation, clue) <- Guess(word, answer, p), answer = word,
                                       Clue(word, relation, clue, p:d);

  games:
    game VERBOSITY(word) {
      path:
        V1: Path(player:p, action:["clue", relation, clue]) <- Clue(word, relation, clue, p);
        V2: Path(player:p, action:["guess", answer]) <- Guess(word, answer, p);
      payoff:
        /* both players score when the guess hits the hidden word */
        V3: Payoff[d += 5, g += 5] <- Round(word, describer:d, guesser:g),
                                      Guess(word, answer:word, p:g);
    }
  |}

let () =
  let engine = Cylog.Engine.load (Cylog.Parser.parse_exn program) in
  ignore (Cylog.Engine.run engine);

  let clues =
    [ (("umbrella", "is used for"), "keeping dry in rain");
      (("umbrella", "is a kind of"), "portable shelter");
      (("piano", "is used for"), "playing music");
      (("piano", "is a kind of"), "keyboard instrument") ]
  in
  let guesses = [ ("umbrella", "umbrella"); ("piano", "accordion") ] in

  let rec play () =
    let acted = ref false in
    List.iter
      (fun (o : Cylog.Engine.open_tuple) ->
        let word = Reldb.Value.to_display (Reldb.Tuple.get_or_null o.bound "word") in
        let worker = Option.get o.asked in
        match o.relation with
        | "Clue" ->
            let relation =
              Reldb.Value.to_display (Reldb.Tuple.get_or_null o.bound "relation")
            in
            let clue = List.assoc (word, relation) clues in
            Format.printf "%s describes %s: \"%s %s\"@."
              (Reldb.Value.to_display worker) word relation clue;
            (match
               Cylog.Engine.supply engine o.id ~worker
                 [ ("clue", Reldb.Value.String clue) ]
             with
            | Ok _ -> acted := true
            | Error e -> failwith (Cylog.Engine.reject_to_string e))
        | "Guess" ->
            let answer = List.assoc word guesses in
            Format.printf "%s guesses: %s@." (Reldb.Value.to_display worker) answer;
            (match
               Cylog.Engine.supply engine o.id ~worker
                 [ ("answer", Reldb.Value.String answer) ]
             with
            | Ok _ -> acted := true
            | Error e -> failwith (Cylog.Engine.reject_to_string e))
        | _ -> ())
      (Cylog.Engine.pending engine);
    ignore (Cylog.Engine.run engine);
    if !acted then play ()
  in
  play ();

  let db = Cylog.Engine.database engine in
  Format.printf "@.commonsense facts harvested (only confirmed rounds):@.%a@."
    Reldb.Relation.pp
    (Reldb.Database.find_exn db "Facts");
  Format.printf "@.scores (the piano round paid nobody):@.";
  List.iter
    (fun (p, s) ->
      Format.printf "  %s: %s@." (Reldb.Value.to_display p) (Reldb.Value.to_display s))
    (Cylog.Engine.payoffs engine)

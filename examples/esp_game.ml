(* The ESP Game (von Ahn & Dabbish), a classic game-with-a-purpose the
   paper cites, written as a CyLog program: two players are shown the same
   image and guess the tag the other would enter; matching tags are paid
   and stored. The game aspect is exactly the VE/I coordination game — the
   whole difference between "image labelling" and "tweet extraction" lives
   in the rules section, while the incentive structure is shared. That is
   the separation of concerns the paper argues for.

   Run with: dune exec examples/esp_game.exe *)

let program =
  {|
  rules:
    Image(img:"img-001.jpg");
    Image(img:"img-002.jpg");
    Player(pid:"alice");
    Player(pid:"bob");
    G1: Guess(img, tag, p)/open[p] <- Image(img), Player(pid:p);
    G2: Label(img, tag) <- Guess(img, tag, p:p1), Guess(img, tag, p:p2), p1 != p2;

  games:
    game ESP(img) {
      path:
        E1: Path(player:p, action:["guess", tag]) <- Guess(img, tag, p);
      payoff:
        E2: Path(player:p1, action:["guess", t]) {
          E2.1: Payoff[p1 += 10, p2 += 10] <- Path(player:p2, action:["guess", t]), p1 != p2;
        }
    }
  |}

let () =
  let parsed = Cylog.Parser.parse_exn program in
  let engine = Cylog.Engine.load parsed in
  ignore (Cylog.Engine.run engine);

  (* The coordination-game analysis (Figure 4): agreeing on any common tag
     is a Nash equilibrium — that is why the ESP game produces labels. *)
  let game =
    Game.Matrix.coordination ~players:("alice", "bob")
      ~values:[ "cat"; "kitten"; "pet" ] ~reward:10.0
  in
  Format.printf "payoff matrix of one ESP round:@.%a@.@." Game.Matrix.pp_bimatrix game;
  Format.printf "pure Nash equilibria: %s@.@."
    (String.concat ", "
       (List.map (String.concat "/") (Game.Matrix.pure_nash_named game)));

  (* Play: on image 1 both type "cat"; on image 2 they miss each other. *)
  let answers =
    [ (("img-001.jpg", "alice"), "cat"); (("img-001.jpg", "bob"), "cat");
      (("img-002.jpg", "alice"), "bridge"); (("img-002.jpg", "bob"), "river") ]
  in
  List.iter
    (fun (o : Cylog.Engine.open_tuple) ->
      let img = Reldb.Value.to_display (Reldb.Tuple.get_or_null o.bound "img") in
      let who = Reldb.Value.to_display (Option.get o.asked) in
      let tag = List.assoc (img, who) answers in
      Format.printf "%s guesses %S for %s@." who tag img;
      match
        Cylog.Engine.supply engine o.id ~worker:(Option.get o.asked)
          [ ("tag", Reldb.Value.String tag) ]
      with
      | Ok _ -> ()
      | Error e -> failwith (Cylog.Engine.reject_to_string e))
    (Cylog.Engine.pending engine);
  ignore (Cylog.Engine.run engine);

  let db = Cylog.Engine.database engine in
  Format.printf "@.labels collected:@.%a@." Reldb.Relation.pp
    (Reldb.Database.find_exn db "Label");
  Format.printf "@.scores:@.";
  List.iter
    (fun (p, s) ->
      Format.printf "  %s: %s@." (Reldb.Value.to_display p) (Reldb.Value.to_display s))
    (Cylog.Engine.payoffs engine);
  Format.printf "@.one ESP game instance per image: %d instances played@."
    (List.length (Cylog.Engine.game_instances engine "ESP"))

(* The two-phase logo-design game of Section 9.4 — a member of class G_2:
   in phase one designers are shown a concept and asked to submit logos; in
   phase two voters are shown the submitted logos and vote. Designers are
   paid per vote their logo receives; voters are paid when another voter
   chose the same logo (majority-style coordination).

   The program has two open statements, the second depending on the output
   of the first — exactly the two bounded interaction phases of
   Definition 1.

   Run with: dune exec examples/logo_design.exe *)

let program =
  {|
  rules:
    Concept(text:"open data for everyone");
    Designer(pid:"mika");
    Designer(pid:"taro");
    Voter(pid:"yuki");
    Voter(pid:"ken");
    Voter(pid:"nana");
    D: Logo(concept, image, p)/open[p] <- Concept(text:concept), Designer(pid:p);
    V: Vote(image, voter)/open[voter] <- Logo(concept, image, p), Voter(pid:voter);

  games:
    game LOGO() {
      path:
        L1: Path(player:p, action:["design", image]) <- Logo(concept, image, p);
        L2: Path(player:voter, action:["vote", image]) <- Vote(image, voter);
      payoff:
        /* a designer earns 1 per vote their logo receives */
        P1: Payoff[p += 1] <- Logo(concept, image, p), Vote(image, voter);
        /* voters earn 1 per other voter who chose the same logo */
        P2: Payoff[v1 += 1, v2 += 1] <- Vote(image, voter:v1), Vote(image, voter:v2), v1 != v2;
    }
  |}

let () =
  let parsed = Cylog.Parser.parse_exn program in
  Format.printf "game class: %a (two bounded phases of interaction)@." Game.Classes.pp
    (Game.Classes.classify parsed);

  let engine = Cylog.Engine.load parsed in
  ignore (Cylog.Engine.run engine);

  (* Phase 1: designers answer their design tasks. *)
  let supply o values =
    match
      Cylog.Engine.supply engine o.Cylog.Engine.id
        ~worker:(Option.get o.Cylog.Engine.asked) values
    with
    | Ok _ -> ()
    | Error e -> failwith (Cylog.Engine.reject_to_string e)
  in
  let designs = [ ("mika", "sunrise-over-grid"); ("taro", "open-book-bird") ] in
  List.iter
    (fun (o : Cylog.Engine.open_tuple) ->
      if o.relation = "Logo" then begin
        let who = Reldb.Value.to_display (Option.get o.asked) in
        let image = List.assoc who designs in
        Format.printf "phase 1: %s submits %S@." who image;
        supply o [ ("image", Reldb.Value.String image) ]
      end)
    (Cylog.Engine.pending engine);
  ignore (Cylog.Engine.run engine);

  (* Phase 2: the machine derived one vote task per (logo, voter); voters
     vote — two for the sunrise, one for the bird. *)
  let votes = [ ("yuki", "sunrise-over-grid"); ("ken", "sunrise-over-grid");
                ("nana", "open-book-bird") ] in
  List.iter
    (fun (o : Cylog.Engine.open_tuple) ->
      if o.relation = "Vote" && o.existence then begin
        (* Vote tasks arrive fully bound: an existence question per
           (logo, voter). Answer yes only for the voter's choice. *)
        let who = Reldb.Value.to_display (Option.get o.asked) in
        let image = Reldb.Value.to_display (Reldb.Tuple.get_or_null o.bound "image") in
        let yes = List.assoc who votes = image in
        if yes then Format.printf "phase 2: %s votes for %S@." who image;
        match Cylog.Engine.answer_existence engine o.id ~worker:(Option.get o.asked) yes with
        | Ok _ -> ()
        | Error e -> failwith (Cylog.Engine.reject_to_string e)
      end)
    (Cylog.Engine.pending engine);
  ignore (Cylog.Engine.run engine);

  Format.printf "@.payoffs:@.";
  List.iter
    (fun (player, score) ->
      Format.printf "  %-6s %s@."
        (Reldb.Value.to_display player)
        (Reldb.Value.to_display score))
    (Cylog.Engine.payoffs engine);

  Format.printf "@.play of the LOGO game instance:@.";
  match Cylog.Engine.game_instances engine "LOGO" with
  | params :: _ ->
      List.iter
        (fun t -> Format.printf "  %a@." Reldb.Tuple.pp t)
        (Cylog.Engine.path_table engine "LOGO" ~params:(Reldb.Tuple.to_list params))
  | [] -> Format.printf "  (none)@."

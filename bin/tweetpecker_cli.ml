(* tweetpecker — run the paper's experiment variants from the command line.

   Examples:
     tweetpecker run --variant=vrei --tweets=100 --seed=3
     tweetpecker table1
     tweetpecker source --variant=vei --tweets=2 *)

open Cmdliner

let variant_conv =
  let parse = function
    | "ve" -> Ok Tweetpecker.Programs.VE
    | "vei" | "ve/i" -> Ok Tweetpecker.Programs.VEI
    | "vre" -> Ok Tweetpecker.Programs.VRE
    | "vrei" | "vre/i" -> Ok Tweetpecker.Programs.VREI
    | s -> Error (`Msg (Printf.sprintf "unknown variant %S (ve|vei|vre|vrei)" s))
  in
  let print ppf v = Format.pp_print_string ppf (Tweetpecker.Programs.variant_name v) in
  Arg.conv (parse, print)

let variant_arg =
  Arg.(
    value
    & opt variant_conv Tweetpecker.Programs.VREI
    & info [ "variant" ] ~docv:"VARIANT" ~doc:"ve, vei, vre or vrei.")

let tweets_arg =
  Arg.(
    value
    & opt int Tweets.Generator.default_count
    & info [ "tweets" ] ~docv:"N" ~doc:"Corpus size (default 463, as in the paper).")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let corpus n = if n = Tweets.Generator.default_count then Tweets.Generator.corpus () else Tweets.Generator.generate n

let faults_conv =
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) Crowd.Faults.profiles with
    | Some fs -> Ok fs
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown fault profile %S (%s)" s
               (String.concat "|" (List.map fst Crowd.Faults.profiles))))
  in
  let print ppf fs =
    Format.pp_print_string ppf
      (String.concat "+" (List.map Crowd.Faults.fault_to_string fs))
  in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"PROFILE"
        ~doc:"Inject a named fault profile into every worker (drop, delay, garble, \
              duplicate, crash, all).")

let storage_faults_conv =
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) Crowd.Faults.storage_profiles with
    | Some fs -> Ok fs
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown storage-fault profile %S (%s)" s
               (String.concat "|" (List.map fst Crowd.Faults.storage_profiles))))
  in
  let print ppf fs =
    Format.pp_print_string ppf
      (String.concat "+" (List.map Crowd.Faults.storage_fault_to_string fs))
  in
  Arg.conv (parse, print)

let storage_faults_arg =
  Arg.(
    value
    & opt (some storage_faults_conv) None
    & info [ "storage-faults" ] ~docv:"PROFILE"
        ~doc:"Run with a durable journal on fault-injecting in-memory storage \
              under a named profile (torn, garbage, fsync-lag, disk-full); \
              crashes are recovered mid-campaign and the crowd resumes on the \
              recovered engine. Composes with --faults in one seeded run.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:"Keep a durable write-ahead journal of the campaign in $(docv).")

let lease_flag =
  Arg.(
    value & flag
    & info [ "lease" ]
        ~doc:"Turn on the lease runtime (default TTL/backoff/budgets): tasks time \
              out, get reassigned and eventually dead-letter.")

let quorum_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quorum" ] ~docv:"K"
        ~doc:"Resolve undesignated tasks by majority over $(docv) redundant answers.")

let adaptive_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "adaptive" ] ~docv:"TAU"
        ~doc:"Adaptive quorum: resolve a task as soon as its reliability-weighted \
              top answer reaches posterior $(docv) (from 2 votes on), escalating \
              to the fallback majority at the vote cap (--quorum K, default 5). \
              Implies redundant assignment.")

(* --slo accepts a comma-separated watchdog spec, e.g.
   "p99=100,agreement=60,deadletter=25,stall=8" — each key arms one
   monitor threshold. *)
let slo_keys = [ "p99"; "agreement"; "deadletter"; "stall" ]

let slo_conv =
  let parse s =
    let parts =
      List.filter
        (fun p -> String.trim p <> "")
        (String.split_on_char ',' s)
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest -> (
          match String.index_opt part '=' with
          | Some i -> (
              let key = String.lowercase_ascii (String.trim (String.sub part 0 i)) in
              let v =
                String.trim (String.sub part (i + 1) (String.length part - i - 1))
              in
              match (List.mem key slo_keys, int_of_string_opt v) with
              | true, Some n -> go ((key, n) :: acc) rest
              | false, _ ->
                  Error
                    (`Msg
                      (Printf.sprintf "unknown SLO key %S (%s)" key
                         (String.concat "|" slo_keys)))
              | _, None ->
                  Error (`Msg (Printf.sprintf "SLO value %S is not an integer" v)))
          | None ->
              Error (`Msg (Printf.sprintf "SLO clause %S is not key=value" part)))
    in
    go [] parts
  in
  let print ppf slo =
    Format.pp_print_string ppf
      (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) slo))
  in
  Arg.conv (parse, print)

let slo_arg =
  Arg.(
    value
    & opt (some slo_conv) None
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:"Arm campaign-monitor watchdogs from a comma-separated spec: \
              p99=N (end-to-end latency ceiling in clock ticks), agreement=N \
              (quorum agreement floor, percent), deadletter=N (dead-letter \
              ceiling, percent of retired tasks), stall=N (consecutive \
              no-progress samples). Any firing stops the campaign.")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"N"
        ~doc:"Stop the campaign once monitored spend (payoff awards plus \
              per-answer cost) exceeds $(docv).")

let monitor_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "monitor-out" ] ~docv:"FILE"
        ~doc:"Write the campaign monitor (lifecycle latencies, per-round \
              cost/latency/quality series, alerts) to $(docv) after the run — \
              JSON, or JSON lines if $(docv) ends in .jsonl. Installs the \
              default monitor when no --budget/--slo is given.")

let print_outcome o =
  let q = Tweetpecker.Metrics.row_a o in
  Format.printf "variant            %s@." (Tweetpecker.Programs.variant_name o.Tweetpecker.Runner.variant);
  Format.printf "completion         %.1f%%@." (100.0 *. Tweetpecker.Runner.completion o);
  Format.printf "rounds             %d@." o.sim.rounds;
  Format.printf "agreed values      %d@." (List.length o.agreed);
  Format.printf "quality (A)        %a@." Tweetpecker.Metrics.pp_quality q;
  (match Tweetpecker.Metrics.row_b o with
  | Some b -> Format.printf "rule confidence(B) %.1f%%@." (100.0 *. b)
  | None -> ());
  (match Tweetpecker.Metrics.row_c o with
  | Some c -> Format.printf "rule support (C)   %.2f%%@." (100.0 *. c)
  | None -> ());
  Format.printf "rules entered      %d@." (List.length o.rules_entered);
  Format.printf "machine extracts   %d@." (List.length o.extracts);
  Format.printf "payoffs            %s@."
    (String.concat ", " (List.map (fun (p, s) -> Printf.sprintf "%s:%d" p s) o.payoffs));
  if o.sim.capped_runs > 0 then
    Format.printf "capped runs        %d (results truncated!)@." o.sim.capped_runs;
  (match o.sim.rejections with
  | [] -> ()
  | rs ->
      Format.printf "rejections         %s@."
        (String.concat ", "
           (List.map
              (fun (w, n) -> Printf.sprintf "%s:%d" (Reldb.Value.to_display w) n)
              rs)));
  (match o.sim.worker_stats with
  | [] -> ()
  | stats ->
      Format.printf "worker stats       routed/answered/early-stop credit@.";
      List.iter
        (fun (w, (s : Crowd.Simulator.worker_stat)) ->
          Format.printf "  %-16s %d/%d/%d@." (Reldb.Value.to_display w) s.routed
            s.answered s.early_stop_credit)
        stats);
  match o.sim.dead_letters with
  | [] -> ()
  | dead ->
      Format.printf "dead letters       %d@." (List.length dead);
      List.iter
        (fun ((ot : Cylog.Engine.open_tuple), reason) ->
          Format.printf "  #%d %s — %s@." ot.id ot.relation
            (Cylog.Lease.reason_to_string reason))
        dead

let run_cmd variant n seed export faults lease quorum adaptive metrics_out trace_out
    quality_out events journal storage_faults budget slo monitor_out =
  let lease = if lease then Some Cylog.Lease.default_config else None in
  let slo = Option.value slo ~default:[] in
  let monitor =
    if budget = None && slo = [] && monitor_out = None then None
    else
      let find k = List.assoc_opt k slo in
      Some
        {
          Cylog.Monitor.default_config with
          max_budget = budget;
          max_p99_latency = find "p99";
          min_agreement_pct = find "agreement";
          max_dead_letter_pct = find "deadletter";
          stall_samples = find "stall";
        }
  in
  let policy =
    Option.map
      (fun tau ->
        Cylog.Engine.Adaptive
          { tau; min_votes = 2; max_votes = Option.value quorum ~default:5 })
      adaptive
  in
  (* --adaptive subsumes --quorum: K becomes the adaptive vote cap. *)
  let quorum = if policy = None then quorum else None in
  let trace_oc = Option.map open_out trace_out in
  let sink = Option.map Cylog.Telemetry.Sink.jsonl trace_oc in
  let o =
    Fun.protect
      ~finally:(fun () -> Option.iter close_out_noerr trace_oc)
      (fun () ->
        Tweetpecker.Runner.run ~seed ~corpus:(corpus n) ?faults ?lease ?quorum
          ?policy ?monitor ?sink ?journal ?storage_faults variant)
  in
  (match o.sim.stop_reason with
  | `Alert f ->
      Format.printf "ALERT              round %d: %s — campaign stopped@."
        f.Cylog.Monitor.at_round
        (Cylog.Event.alert_to_string f.alert)
  | _ -> ());
  (match monitor_out with
  | Some path ->
      let oc = open_out path in
      (match Cylog.Engine.monitor o.engine with
      | Some mon when Filename.check_suffix path ".jsonl" ->
          output_string oc (Cylog.Monitor.to_jsonl mon)
      | _ ->
          output_string oc (Cylog.Engine.monitor_json o.engine);
          output_char oc '\n');
      close_out oc
  | None -> ());
  (match o.recoveries with
  | [] -> ()
  | rs ->
      Format.printf "recoveries         %d@." (List.length rs);
      List.iteri
        (fun i (r : Cylog.Engine.recovery_stats) ->
          Format.printf
            "  #%d base segment %d, %d segment(s) scanned, %d record(s) \
             replayed, %d torn byte(s) truncated@."
            (i + 1) r.base_segment r.segments_scanned r.records_replayed
            r.truncated_bytes)
        rs);
  (match metrics_out with
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Cylog.Telemetry.Metrics.to_json (Cylog.Engine.metrics o.engine));
      output_char oc '\n';
      close_out oc
  | None -> ());
  (match quality_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Cylog.Pretty.quality_json o.engine);
      output_char oc '\n';
      close_out oc
  | None -> ());
  if events > 0 then begin
    let journal = Cylog.Engine.events o.engine in
    let total = List.length journal in
    let skip = max 0 (total - events) in
    Format.printf "@.last %d of %d journal events:@." (total - skip) total;
    List.iteri
      (fun i e -> if i >= skip then Format.printf "  %a@." Cylog.Pretty.pp_event e)
      journal
  end;
  match export with
  | None -> print_outcome o
  | Some relation -> (
      (* Machine-readable mode: dump one relation of the final database as
         CSV on stdout. *)
      match Reldb.Database.find (Cylog.Engine.database o.engine) relation with
      | Some rel -> print_string (Reldb.Csv.export rel)
      | None ->
          Printf.eprintf "no relation %S in the final database (try %s)\n" relation
            (String.concat ", " (Reldb.Database.names (Cylog.Engine.database o.engine)));
          exit 1)

let table1_cmd n seed =
  let c = corpus n in
  Format.printf "%-28s" "Technique";
  List.iter
    (fun v -> Format.printf "%10s" (Tweetpecker.Programs.variant_name v))
    Tweetpecker.Programs.all;
  Format.printf "@.";
  let outcomes = List.map (fun v -> Tweetpecker.Runner.run ~seed ~corpus:c v) Tweetpecker.Programs.all in
  let row label f =
    Format.printf "%-28s" label;
    List.iter (fun o -> Format.printf "%10s" (f o)) outcomes;
    Format.printf "@."
  in
  let pct x = Printf.sprintf "%.1f%%" (100.0 *. x) in
  row "A: Agreed correct" (fun o -> pct (Tweetpecker.Metrics.row_a o).correct);
  row "   Agreed incorrect" (fun o -> pct (Tweetpecker.Metrics.row_a o).incorrect);
  row "   Agreed neither" (fun o -> pct (Tweetpecker.Metrics.row_a o).neither);
  row "B: Avg rule confidence" (fun o ->
      match Tweetpecker.Metrics.row_b o with Some b -> pct b | None -> "-");
  row "C: Avg rule support" (fun o ->
      match Tweetpecker.Metrics.row_c o with
      | Some c -> Printf.sprintf "%.2f%%" (100.0 *. c)
      | None -> "-")

(* Static budget certificate of a variant's generated program: what the
   campaign can spend before a single task is issued. The charged policy
   mirrors the quorum flag ([--quorum K] charges K answers per
   undesignated task). *)
let analyze_cmd variant n quorum =
  let c = corpus n in
  let workers =
    List.map
      (fun (w : Crowd.Worker.profile) -> w.name)
      (Tweetpecker.Runner.default_workers variant)
  in
  let program = Tweetpecker.Programs.program variant ~corpus:c ~workers in
  let policy =
    match quorum with
    | Some k when k > 1 -> { Cylog.Analysis.votes = k; scope = None }
    | _ -> Cylog.Analysis.no_policy
  in
  print_string
    (Cylog.Analysis.certificate_to_string (Cylog.Analysis.analyze ~policy program))

let source_cmd variant n =
  let c = corpus n in
  print_string
    (Tweetpecker.Programs.source variant ~corpus:c
       ~workers:(List.map (fun (w : Crowd.Worker.profile) -> w.name)
                   (Tweetpecker.Runner.default_workers variant)))

(* The sharded campaign server: generated labeling campaigns partitioned
   over N engine shards, driven by a simulated crowd through the
   task-queue API, with the merged fleet view printed (or written) at the
   end. *)
let serve_cmd shards workers campaigns items seed quorum accuracy max_rounds
    journal monitor_out =
  let server =
    Server.create ?journal_root:journal ~shards ()
  in
  let config =
    {
      Crowd.Fleet_sim.default_config with
      seed;
      workers;
      campaigns;
      items;
      quorum;
      accuracy;
      max_rounds;
    }
  in
  Crowd.Fleet_sim.open_campaigns server config;
  let o = Crowd.Fleet_sim.run ~config server in
  Format.printf "shards             %d@." shards;
  Format.printf "campaigns          %d × %d items@." campaigns items;
  Format.printf "workers            %d@." workers;
  Format.printf "rounds             %d@." o.rounds;
  Format.printf "stop               %s@."
    (match o.stop_reason with
    | `Done -> "done (all tasks retired)"
    | `Stalled -> "stalled"
    | `Max_rounds -> "max-rounds");
  Format.printf "leases             %d@." o.leases;
  Format.printf "answers            %d accepted, %d rejected@." o.answers
    o.rejections;
  Format.printf "resolutions        %d resolved, %d dead-lettered@." o.resolved
    o.dead;
  let view = Server.stats server in
  Format.printf "%a" Server.Fleet.pp view;
  match monitor_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Server.Fleet.to_json view);
      output_char oc '\n';
      close_out oc
  | None -> ()

let shards_arg =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N" ~doc:"Engine shards in the fleet.")

let workers_arg =
  Arg.(
    value & opt int 8
    & info [ "workers" ] ~docv:"M" ~doc:"Simulated crowd size.")

let campaigns_arg =
  Arg.(
    value & opt int 2
    & info [ "campaigns" ] ~docv:"K" ~doc:"Concurrent labeling campaigns.")

let items_arg =
  Arg.(
    value & opt int 24
    & info [ "items" ] ~docv:"I" ~doc:"Label tasks per campaign.")

let accuracy_arg =
  Arg.(
    value & opt float 0.85
    & info [ "accuracy" ] ~docv:"P"
        ~doc:"Probability a worker answers the true label.")

let serve_quorum_arg =
  Arg.(
    value & opt int 3
    & info [ "quorum" ] ~docv:"K"
        ~doc:"Votes per task (plurality aggregate); 1 turns quorum off.")

let serve_rounds_arg =
  Arg.(
    value & opt int 200
    & info [ "max-rounds" ] ~docv:"N" ~doc:"Safety bound on rounds.")

let serve_journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:"Journal every shard's campaigns under $(docv)/shard-NN/.")

let serve_monitor_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "monitor-out" ] ~docv:"FILE"
        ~doc:"Write the merged fleet view (monitor series, certificates, \
              metrics, latency percentiles) to $(docv) as JSON.")

let export_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "export" ] ~docv:"RELATION"
        ~doc:"Print the named relation of the final database as CSV (e.g. Agreed, Rules, Extracts, Inputs).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the final metrics registry to $(docv) as JSON.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Stream tracing spans to $(docv) as JSON lines while the campaign runs.")

let quality_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "quality-out" ] ~docv:"FILE"
        ~doc:"Write the final quality state (per-worker reliability, per-task \
              posteriors) to $(docv) as JSON.")

let events_arg =
  Arg.(
    value
    & opt int 0
    & info [ "events" ] ~docv:"N"
        ~doc:"Print the last $(docv) journal events after the run.")

let cmds =
  [ Cmd.v (Cmd.info "run" ~doc:"Run one variant and print its metrics")
      Term.(
        const run_cmd $ variant_arg $ tweets_arg $ seed_arg $ export_arg $ faults_arg
        $ lease_flag $ quorum_arg $ adaptive_arg $ metrics_out_arg $ trace_out_arg
        $ quality_out_arg $ events_arg $ journal_arg $ storage_faults_arg
        $ budget_arg $ slo_arg $ monitor_out_arg);
    Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1 across all four variants")
      Term.(const table1_cmd $ tweets_arg $ seed_arg);
    Cmd.v
      (Cmd.info "analyze"
         ~doc:"Print the static budget certificate of a variant's generated \
               program (per-relation cardinality bounds, per-open-statement \
               task bounds).")
      Term.(const analyze_cmd $ variant_arg $ tweets_arg $ quorum_arg);
    Cmd.v (Cmd.info "source" ~doc:"Print the generated CyLog source of a variant")
      Term.(const source_cmd $ variant_arg $ tweets_arg);
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Run a sharded multi-campaign server under a simulated crowd \
               and print the merged fleet view")
      Term.(
        const serve_cmd $ shards_arg $ workers_arg $ campaigns_arg $ items_arg
        $ seed_arg $ serve_quorum_arg $ accuracy_arg $ serve_rounds_arg
        $ serve_journal_arg $ serve_monitor_out_arg) ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "tweetpecker" ~version:"1.0.0"
             ~doc:"Game-style crowdsourced extraction of structured data from tweets")
          cmds))

(* cylog — run CyLog programs from the command line.

   Subcommands:
     run FILE       load a program, run the machine, answer open tuples
                    interactively on stdin, print the database at fixpoint
     check FILE     parse and statically check a program (Cylog.Lint)
     analyze FILE   print the static budget certificate (Cylog.Analysis)
     graph FILE     print the rule precedence graph (Figure 14 style)
     classify FILE  print the game class (G_N or G_star) of the program
     pretty FILE    parse and pretty-print the program *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file path =
  match Cylog.Parser.parse (read_file path) with
  | Ok program -> Ok program
  | Error e -> Error (Format.asprintf "%s: %a" path Cylog.Parser.pp_error e)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"CyLog source file")

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline msg;
      exit 1

(* Load under the engine's default Strict lint, rendering diagnostics the
   same way [cylog check] does when the program is rejected. *)
let load_or_die ?lint ?journal path program =
  try Cylog.Engine.load ?lint ?journal program with
  | Cylog.Lint.Rejected diags ->
      List.iter (fun d -> prerr_endline (Cylog.Lint.render ~file:path d)) diags;
      exit 1
  | Cylog.Journal.Error e ->
      prerr_endline (Cylog.Journal.error_to_string e);
      exit 1

(* --- run ----------------------------------------------------------------- *)

let prompt_value attr =
  Printf.printf "  %s = %!" attr;
  match In_channel.input_line stdin with Some line -> String.trim line | None -> ""

let answer_interactively engine (o : Cylog.Engine.open_tuple) =
  Format.printf "@.open tuple %d on %s %a" o.id o.relation Reldb.Tuple.pp o.bound;
  (match o.asked with
  | Some w -> Format.printf " (worker %s)" (Reldb.Value.to_display w)
  | None -> ());
  Format.printf "@.";
  (* Show the worker-facing presentation when the program declares one. *)
  (match Cylog.Engine.task_view engine o with
  | Some rendered -> Format.printf "%s@." rendered
  | None -> ());
  let worker = Option.value o.asked ~default:(Reldb.Value.String "console") in
  if o.existence then begin
    Printf.printf "  should this tuple exist? [y/n/skip] %!";
    match In_channel.input_line stdin with
    | Some ("y" | "Y" | "yes") ->
        ignore (Cylog.Engine.answer_existence engine o.id ~worker true)
    | Some ("n" | "N" | "no") ->
        ignore (Cylog.Engine.answer_existence engine o.id ~worker false)
    | _ -> Cylog.Engine.decline engine o.id
  end
  else begin
    let values =
      List.map (fun attr -> (attr, Reldb.Value.String (prompt_value attr))) o.open_attrs
    in
    match Cylog.Engine.supply engine o.id ~worker values with
    | Ok _ -> ()
    | Error e -> Printf.printf "  rejected: %s\n%!" (Cylog.Engine.reject_to_string e)
  end

let save_checkpoint engine = function
  | None -> ()
  | Some path ->
      let oc = open_out_bin path in
      Cylog.Engine.snapshot engine oc;
      close_out oc;
      Format.printf "checkpoint written to %s@." path

let drive_engine interactive max_steps checkpoint engine =
  let rec loop () =
    let steps, signal = Cylog.Engine.run engine ~max_steps in
    (match signal with
    | `Capped -> Format.printf "stopped after %d machine steps (budget hit)@." steps
    | `Quiescent -> ());
    match Cylog.Engine.pending engine with
    | [] -> ()
    | pending when interactive ->
        List.iter (answer_interactively engine) pending;
        if Cylog.Engine.pending engine <> pending then loop ()
    | pending ->
        Format.printf "@.%d open tuples await human input (use --interactive):@."
          (List.length pending);
        List.iter
          (fun (o : Cylog.Engine.open_tuple) ->
            Format.printf "  %s%a awaiting %s@." o.relation Reldb.Tuple.pp o.bound
              (String.concat ", " o.open_attrs))
          pending
  in
  loop ();
  save_checkpoint engine checkpoint;
  Format.printf "@.database at fixpoint:@.%a@." Reldb.Database.pp
    (Cylog.Engine.database engine);
  (match Cylog.Engine.dead_letters engine with
  | [] -> ()
  | dead ->
      Format.printf "@.dead-lettered tasks:@.";
      List.iter
        (fun ((o : Cylog.Engine.open_tuple), reason) ->
          Format.printf "  #%d %s%a — %a@." o.id o.relation Reldb.Tuple.pp o.bound
            Cylog.Lease.pp_reason reason)
        dead);
  match Cylog.Engine.payoffs engine with
  | [] -> ()
  | payoffs ->
      Format.printf "@.payoffs:@.";
      List.iter
        (fun (p, s) ->
          Format.printf "  %s: %s@." (Reldb.Value.to_display p) (Reldb.Value.to_display s))
        payoffs

(* Install --trace-out / --metrics-out around a driver invocation: the
   trace sink streams spans as the engine runs; the metrics registry is
   dumped once at the end. *)
let with_telemetry_outputs metrics_out trace_out engine k =
  let trace_oc = Option.map open_out trace_out in
  (match trace_oc with
  | Some oc -> Cylog.Engine.set_sink engine (Cylog.Telemetry.Sink.jsonl oc)
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      (match metrics_out with
      | Some path ->
          let oc = open_out path in
          output_string oc
            (Cylog.Telemetry.Metrics.to_json (Cylog.Engine.metrics engine));
          output_char oc '\n';
          close_out oc
      | None -> ());
      Option.iter close_out_noerr trace_oc)
    k

(* Install --monitor-out around a driver invocation: a default campaign
   monitor is installed up front (unless the engine already carries one,
   e.g. recovered from a journal that installed it), one final sample is
   taken when the driver returns, and the dashboard is written as JSON —
   or as JSON lines when the path ends in .jsonl. *)
let with_monitor_output monitor_out engine k =
  (match monitor_out with
  | Some _ when Cylog.Engine.monitor engine = None ->
      Cylog.Engine.set_monitor engine (Some Cylog.Monitor.default_config)
  | _ -> ());
  Fun.protect
    ~finally:(fun () ->
      match monitor_out with
      | Some path ->
          ignore (Cylog.Engine.monitor_sample engine ~round:0);
          let oc = open_out path in
          (match Cylog.Engine.monitor engine with
          | Some mon when Filename.check_suffix path ".jsonl" ->
              output_string oc (Cylog.Monitor.to_jsonl mon)
          | _ ->
              output_string oc (Cylog.Engine.monitor_json engine);
              output_char oc '\n');
          close_out oc
      | None -> ())
    k

(* Flush the WAL and report what it did — the run subcommands' epilogue
   whenever a journal is attached. *)
let finish_journal engine =
  match Cylog.Engine.durable_journal engine with
  | None -> ()
  | Some j ->
      Cylog.Journal.close j;
      let s = Cylog.Journal.stats j in
      Format.printf
        "journal %s: %d appends, %d fsyncs (%d dir), %d rotations, %d compactions, \
         %d live segment(s)@."
        (Cylog.Journal.dir j) s.appends s.fsyncs s.dir_fsyncs s.rotations
        s.compactions (List.length s.segments)

let run_cmd interactive max_steps checkpoint metrics_out trace_out monitor_out
    journal path =
  let program = or_die (parse_file path) in
  let engine = load_or_die path ?journal program in
  with_telemetry_outputs metrics_out trace_out engine (fun () ->
      with_monitor_output monitor_out engine (fun () ->
          drive_engine interactive max_steps checkpoint engine));
  finish_journal engine

let resume_cmd interactive max_steps checkpoint metrics_out trace_out path =
  let engine =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try Cylog.Engine.restore ic with
        | Cylog.Engine.Snapshot_error reason ->
            prerr_endline (path ^ ": " ^ Cylog.Engine.snapshot_reason_to_string reason);
            exit 1
        | Cylog.Engine.Runtime_error m ->
            prerr_endline (path ^ ": " ^ m);
            exit 1
        | Cylog.Lint.Rejected diags ->
            List.iter (fun d -> prerr_endline (Cylog.Lint.render ~file:path d)) diags;
            exit 1)
  in
  Format.printf "restored %s (clock %d, %d events)@." path (Cylog.Engine.clock engine)
    (List.length (Cylog.Engine.events engine));
  with_telemetry_outputs metrics_out trace_out engine (fun () ->
      drive_engine interactive max_steps checkpoint engine)

let recover_cmd interactive max_steps checkpoint metrics_out trace_out dir =
  let engine, (stats : Cylog.Engine.recovery_stats) =
    try Cylog.Engine.recover dir with
    | Cylog.Journal.Error e ->
        prerr_endline (Cylog.Journal.error_to_string e);
        exit 1
    | Cylog.Engine.Snapshot_error reason ->
        prerr_endline (dir ^ ": " ^ Cylog.Engine.snapshot_reason_to_string reason);
        exit 1
    | Cylog.Lint.Rejected diags ->
        List.iter (fun d -> prerr_endline (Cylog.Lint.render ~file:dir d)) diags;
        exit 1
  in
  Format.printf
    "recovered %s: base segment %d, %d segment(s) scanned, %d record(s) replayed, %d \
     torn byte(s) truncated (clock %d, %d events)@."
    dir stats.base_segment stats.segments_scanned stats.records_replayed
    stats.truncated_bytes
    (Cylog.Engine.clock engine)
    (List.length (Cylog.Engine.events engine));
  with_telemetry_outputs metrics_out trace_out engine (fun () ->
      drive_engine interactive max_steps checkpoint engine);
  finish_journal engine

(* --- check --------------------------------------------------------------- *)

let parse_override spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "invalid -W %S (expected CODE=LEVEL)" spec)
  | Some i -> (
      let code = String.sub spec 0 i in
      let level = String.sub spec (i + 1) (String.length spec - i - 1) in
      if not (Cylog.Lint.is_known_code code) then
        Error (Printf.sprintf "unknown diagnostic code %S (see docs/LINT.md)" code)
      else
        match String.lowercase_ascii level with
        | "error" | "err" -> Ok (code, `Error)
        | "warning" | "warn" -> Ok (code, `Warning)
        | "off" -> Ok (code, `Off)
        | other ->
            Error
              (Printf.sprintf "invalid level %S in -W %s (error|warning|off)" other
                 code))

let parse_error_diagnostic (e : Cylog.Parser.error) =
  {
    Cylog.Lint.code = "parse-error";
    severity = Cylog.Lint.Error;
    span =
      {
        Cylog.Ast.start_line = e.line;
        start_col = e.col;
        end_line = e.end_line;
        end_col = e.end_col;
      };
    message = e.message;
  }

let check_cmd format warnings path =
  let overrides = List.map (fun spec -> or_die (parse_override spec)) warnings in
  let emit diags =
    match format with
    | `Json -> print_endline (Cylog.Lint.render_json ~file:path diags)
    | `Text ->
        List.iter (fun d -> print_endline (Cylog.Lint.render ~file:path d)) diags
  in
  match Cylog.Parser.parse (read_file path) with
  | Error e ->
      emit [ parse_error_diagnostic e ];
      exit 1
  | Ok program ->
      let diags = Cylog.Lint.check ~overrides program in
      emit diags;
      (match (format, diags) with
      | `Text, [] ->
          Format.printf "%s: %d statements, %d schema declarations, %d games — OK@."
            path
            (List.length program.Cylog.Ast.statements)
            (List.length program.Cylog.Ast.schemas)
            (List.length program.Cylog.Ast.games)
      | _ -> ());
      if Cylog.Lint.has_errors diags then exit 1

(* --- analyze ------------------------------------------------------------- *)

(* Exit 1 only for the unbounded-task-emission class: an open statement
   whose answer bound is unbounded through a cycle. Standing tasks and
   bounded-by-input certificates are warnings (surfaced by [check]) and
   keep exit 0, so pipelines can still read the certificate. *)
let analyze_cmd format votes path =
  match Cylog.Parser.parse (read_file path) with
  | Error e ->
      (match format with
      | `Json -> print_endline (Cylog.Lint.render_json ~file:path [ parse_error_diagnostic e ])
      | `Text -> print_endline (Cylog.Lint.render ~file:path (parse_error_diagnostic e)));
      exit 1
  | Ok program ->
      let policy =
        if votes <= 1 then Cylog.Analysis.no_policy
        else { Cylog.Analysis.votes; scope = None }
      in
      let cert = Cylog.Analysis.analyze ~policy program in
      (match format with
      | `Json -> print_endline (Cylog.Analysis.certificate_json cert)
      | `Text -> print_string (Cylog.Analysis.certificate_to_string cert));
      let unbounded_emission =
        List.exists
          (fun (tb : Cylog.Analysis.task_bound) ->
            match tb.tb_answers with
            | Cylog.Analysis.Unbounded
                (Cylog.Analysis.Open_cycle _ | Cylog.Analysis.Value_cycle _) ->
                true
            | _ -> false)
          cert.cert_tasks
      in
      if unbounded_emission then exit 1

let graph_cmd path =
  let program = or_die (parse_file path) in
  let engine = load_or_die path program in
  let statements = List.map fst (Cylog.Engine.statements engine) in
  let g = Cylog.Precedence.build statements in
  Format.printf "%a@." Cylog.Pretty.pp_precedence g;
  Format.printf "@.stratified: %b@." (Cylog.Precedence.stratified g)

let classify_cmd path =
  let program = or_die (parse_file path) in
  try Format.printf "%a@." Game.Classes.pp (Game.Classes.classify program)
  with Cylog.Lint.Rejected diags ->
    List.iter (fun d -> prerr_endline (Cylog.Lint.render ~file:path d)) diags;
    exit 1

let pretty_cmd path =
  let program = or_die (parse_file path) in
  print_endline (Cylog.Pretty.program_to_string program)

(* --- repl ----------------------------------------------------------------- *)

let repl_help () =
  print_string
    "Enter CyLog statements terminated by ';' (multi-line input is fine).\n\
     Commands:\n\
    \  :db                  show the database\n\
    \  :pending             show open tuples awaiting humans\n\
    \  :answer ID a=v ...   valuate an open tuple (string values)\n\
    \  :yes ID / :no ID     answer an existence question\n\
    \  :trace               show the firing log\n\
    \  :events [FILTER]     page the journal; FILTER is a kind (fired,\n\
    \                       filtered, human, machine, insert, update,\n\
    \                       delete, payoff, open, vote, dead, early-stop,\n\
    \                       escalated, resolve, sample, alert), a rule\n\
    \                       label, or a worker name\n\
    \  :stats               dump the metrics registry\n\
    \  :monitor             sample and show the campaign monitor\n\
    \                       (cost/latency/quality series, alerts)\n\
    \  :quality             dump worker reliability and task posteriors (JSON)\n\
    \  :explain             show plans, leases and quorum state\n\
    \  :check               lint the program (preloaded + typed statements)\n\
    \  :analyze             print the static budget certificate (cardinality\n\
    \                       bounds and per-open-statement task bounds)\n\
    \  :dead                show dead-lettered tasks\n\
    \  :snapshot FILE       checkpoint the session to FILE\n\
    \  :help                this message\n\
    \  :quit                leave\n"

let repl_cmd file =
  let base_program, base_file =
    match file with
    | Some path -> (or_die (parse_file path), path)
    | None -> (Cylog.Ast.empty_program, "<repl>")
  in
  let engine = load_or_die base_file base_program in
  (* Statements typed at the prompt, in entry order — [:check] lints the
     preloaded source plus these, not the engine's desugared forms. *)
  let typed = ref [] in
  let show_pending () =
    match Cylog.Engine.pending engine with
    | [] -> print_endline "no pending open tuples"
    | pending ->
        List.iter
          (fun (o : Cylog.Engine.open_tuple) ->
            Format.printf "  #%d %s%a awaiting %s%s@." o.id o.relation Reldb.Tuple.pp
              o.bound
              (if o.existence then "yes/no" else String.concat ", " o.open_attrs)
              (match o.asked with
              | Some w -> Printf.sprintf " (worker %s)" (Reldb.Value.to_display w)
              | None -> ""))
          pending
  in
  let run_machine () =
    let before = Cylog.Engine.clock engine in
    ignore (Cylog.Engine.run engine);
    let fired = Cylog.Engine.clock engine - before in
    if fired > 0 then Format.printf "(%d statements fired)@." fired;
    if Cylog.Engine.pending engine <> [] then show_pending ()
  in
  run_machine ();
  let parse_assignments words =
    List.map
      (fun w ->
        match String.index_opt w '=' with
        | Some i ->
            ( String.sub w 0 i,
              Reldb.Value.String (String.sub w (i + 1) (String.length w - i - 1)) )
        | None -> (w, Reldb.Value.Null))
      words
  in
  let handle_command line =
    match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
    | [ ":quit" ] | [ ":q" ] -> `Quit
    | [ ":help" ] -> repl_help (); `Continue
    | [ ":db" ] ->
        Format.printf "%a@." Reldb.Database.pp (Cylog.Engine.database engine);
        `Continue
    | [ ":pending" ] -> show_pending (); `Continue
    | [ ":trace" ] ->
        List.iter
          (fun e -> Format.printf "  %a@." Cylog.Pretty.pp_event e)
          (Cylog.Engine.events engine);
        `Continue
    | ":events" :: filters ->
        let events = Cylog.Engine.events engine in
        let tags (e : Cylog.Engine.event) =
          (if e.fired then [ "fired" ] else [ "filtered" ])
          @ (match e.by_human with
            | Some w -> [ "human"; Reldb.Value.to_display w ]
            | None -> [ "machine" ])
          @ (match e.label with Some l -> [ l ] | None -> [])
          @ List.concat_map
              (fun (eff : Cylog.Engine.effect) ->
                match eff with
                | Inserted _ -> [ "insert" ]
                | Updated _ -> [ "update" ]
                | Deleted _ -> [ "delete" ]
                | Awarded _ -> [ "payoff" ]
                | Open_created _ -> [ "open" ]
                | No_effect -> []
                | Vote_recorded _ -> [ "vote" ]
                | Dead_lettered _ -> [ "dead" ]
                | Adaptive_resolved { escalated; _ } ->
                    [ (if escalated then "escalated" else "early-stop") ]
                | Resolved _ -> [ "resolve" ]
                | Sampled _ -> [ "sample" ]
                | Alert_fired _ -> [ "alert" ])
              e.effects
        in
        let selected =
          match filters with
          | [] -> events
          | fs -> List.filter (fun e -> List.for_all (fun f -> List.mem f (tags e)) fs) events
        in
        List.iter (fun e -> Format.printf "  %a@." Cylog.Pretty.pp_event e) selected;
        Format.printf "(%d of %d events)@." (List.length selected) (List.length events);
        `Continue
    | [ ":stats" ] ->
        Format.printf "%a" Cylog.Telemetry.Metrics.pp (Cylog.Engine.metrics engine);
        `Continue
    | [ ":monitor" ] ->
        (* First use installs a default monitor; the install backfills
           from the event log, so lifecycle history is complete even
           mid-session. Each :monitor takes a fresh sample. *)
        if Cylog.Engine.monitor engine = None then
          Cylog.Engine.set_monitor engine (Some Cylog.Monitor.default_config);
        ignore (Cylog.Engine.monitor_sample engine ~round:0);
        (match Cylog.Engine.monitor engine with
        | Some mon -> Format.printf "%a" Cylog.Monitor.pp mon
        | None -> ());
        `Continue
    | [ ":quality" ] ->
        print_endline (Cylog.Pretty.quality_json engine);
        `Continue
    | [ ":explain" ] ->
        print_string (Cylog.Engine.explain engine);
        `Continue
    | [ ":check" ] ->
        let program =
          {
            base_program with
            Cylog.Ast.statements = base_program.Cylog.Ast.statements @ List.rev !typed;
          }
        in
        (match Cylog.Lint.check program with
        | [] -> print_endline "no diagnostics"
        | diags ->
            List.iter
              (fun d -> print_endline (Cylog.Lint.render ~file:base_file d))
              diags);
        `Continue
    | [ ":analyze" ] ->
        (* Like [:check], the certificate covers the preloaded source plus
           everything typed at the prompt, not the desugared forms. *)
        let program =
          {
            base_program with
            Cylog.Ast.statements = base_program.Cylog.Ast.statements @ List.rev !typed;
          }
        in
        print_string
          (Cylog.Analysis.certificate_to_string (Cylog.Analysis.analyze program));
        `Continue
    | [ ":dead" ] ->
        (match Cylog.Engine.dead_letters engine with
        | [] -> print_endline "no dead-lettered tasks"
        | dead ->
            List.iter
              (fun ((o : Cylog.Engine.open_tuple), reason) ->
                Format.printf "  #%d %s%a — %a@." o.id o.relation Reldb.Tuple.pp
                  o.bound Cylog.Lease.pp_reason reason)
              dead);
        `Continue
    | [ ":snapshot"; path ] ->
        (try
           let oc = open_out_bin path in
           Cylog.Engine.snapshot engine oc;
           close_out oc;
           Format.printf "checkpoint written to %s@." path
         with Sys_error m -> print_endline m);
        `Continue
    | ":answer" :: id :: rest -> (
        match int_of_string_opt id with
        | Some id -> (
            match Cylog.Engine.find_open engine id with
            | Some o -> (
                let worker = Option.value o.asked ~default:(Reldb.Value.String "console") in
                match Cylog.Engine.supply engine id ~worker (parse_assignments rest) with
                | Ok _ -> run_machine (); `Continue
                | Error e -> print_endline (Cylog.Engine.reject_to_string e); `Continue)
            | None -> print_endline "no such open tuple"; `Continue)
        | None -> print_endline "usage: :answer ID attr=value ..."; `Continue)
    | [ (":yes" | ":no") as verdict; id ] -> (
        match (int_of_string_opt id, Cylog.Engine.find_open engine (int_of_string id)) with
        | Some id, Some o -> (
            let worker = Option.value o.asked ~default:(Reldb.Value.String "console") in
            match Cylog.Engine.answer_existence engine id ~worker (verdict = ":yes") with
            | Ok _ -> run_machine (); `Continue
            | Error e -> print_endline (Cylog.Engine.reject_to_string e); `Continue)
        | _ -> print_endline "no such open tuple"; `Continue)
    | _ -> print_endline "unknown command (:help)"; `Continue
  in
  let buffer = Buffer.create 256 in
  print_endline "CyLog REPL — :help for commands";
  let rec loop () =
    Printf.printf (if Buffer.length buffer = 0 then "cylog> " else "  ...> ");
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line when Buffer.length buffer = 0 && String.length (String.trim line) > 0
                     && (String.trim line).[0] = ':' -> (
        match handle_command (String.trim line) with `Quit -> () | `Continue -> loop ())
    | Some line ->
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        if String.contains line ';' || String.contains line '}' then begin
          Buffer.clear buffer;
          (match Cylog.Parser.parse_statements text with
          | Ok statements -> (
              try
                List.iter (Cylog.Engine.add_statement engine) statements;
                typed := List.rev_append statements !typed;
                run_machine ()
              with Cylog.Engine.Runtime_error m -> print_endline m)
          | Error e -> Format.printf "%a@." Cylog.Parser.pp_error e);
          loop ()
        end
        else loop ()
  in
  loop ()

(* --- command wiring ------------------------------------------------------- *)

let interactive_flag =
  Arg.(value & flag & info [ "i"; "interactive" ] ~doc:"Answer open tuples on stdin.")

let max_steps_arg =
  Arg.(value & opt int 1_000_000 & info [ "max-steps" ] ~doc:"Machine step budget.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:"Write a snapshot to $(docv) when the run finishes; resume it later \
              with the $(b,resume) subcommand.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the final metrics registry to $(docv) as JSON.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Stream tracing spans to $(docv) as JSON lines while running.")

let monitor_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "monitor-out" ] ~docv:"FILE"
        ~doc:"Install a campaign monitor and write its dashboard (lifecycle \
              latency quantiles, cost/latency/quality series, alerts) to \
              $(docv) as JSON when the run finishes — or as JSON lines when \
              $(docv) ends in .jsonl.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:"Write a durable journal (segmented, checksummed WAL) to $(docv) while \
              running: every mutation is logged as it happens, so a crashed run \
              resumes with the $(b,recover) subcommand instead of losing work. \
              The directory must not already hold a journal.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Diagnostic output format: $(b,text) (one line per diagnostic) or \
              $(b,json) (one array).")

let votes_arg =
  Arg.(
    value & opt int 1
    & info [ "votes" ] ~docv:"N"
        ~doc:"Charge $(docv) answers per undesignated task — the quorum's \
              redundant-assignment factor. Default 1 (one answer per task).")

let warn_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "W" ] ~docv:"CODE=LEVEL"
        ~doc:"Override the severity of diagnostic $(i,CODE); $(i,LEVEL) is \
              $(b,error), $(b,warning) or $(b,off). Repeatable. See docs/LINT.md \
              for the code catalogue.")

let cmds =
  [ Cmd.v (Cmd.info "run" ~doc:"Execute a CyLog program")
      Term.(
        const run_cmd $ interactive_flag $ max_steps_arg $ checkpoint_arg
        $ metrics_out_arg $ trace_out_arg $ monitor_out_arg $ journal_arg
        $ file_arg);
    Cmd.v
      (Cmd.info "resume" ~doc:"Resume a run from a snapshot written by --checkpoint")
      Term.(
        const resume_cmd $ interactive_flag $ max_steps_arg $ checkpoint_arg
        $ metrics_out_arg $ trace_out_arg
        $ Arg.(
            required
            & pos 0 (some file) None
            & info [] ~docv:"SNAPSHOT" ~doc:"Snapshot file"));
    Cmd.v
      (Cmd.info "recover"
         ~doc:"Recover a crashed run from its durable journal (written by \
               $(b,run --journal)) and continue it")
      Term.(
        const recover_cmd $ interactive_flag $ max_steps_arg $ checkpoint_arg
        $ metrics_out_arg $ trace_out_arg
        $ Arg.(
            required
            & pos 0 (some dir) None
            & info [] ~docv:"DIR" ~doc:"Journal directory"));
    Cmd.v
      (Cmd.info "check"
         ~doc:"Statically check a CyLog program (safety, stratification, schemas, \
               liveness, games)")
      Term.(const check_cmd $ format_arg $ warn_arg $ file_arg);
    Cmd.v
      (Cmd.info "analyze"
         ~doc:"Compute the static budget certificate: per-relation cardinality \
               bounds and per-open-statement task-emission bounds. Exits 1 when \
               an open statement can issue unboundedly many tasks.")
      Term.(const analyze_cmd $ format_arg $ votes_arg $ file_arg);
    Cmd.v (Cmd.info "graph" ~doc:"Print the rule precedence graph")
      Term.(const graph_cmd $ file_arg);
    Cmd.v (Cmd.info "classify" ~doc:"Print the game class (G_N / G_*)")
      Term.(const classify_cmd $ file_arg);
    Cmd.v (Cmd.info "pretty" ~doc:"Pretty-print a CyLog program")
      Term.(const pretty_cmd $ file_arg);
    Cmd.v (Cmd.info "repl" ~doc:"Interactive CyLog session (optionally preloading FILE)")
      Term.(
        const repl_cmd
        $ Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Program to preload")) ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "cylog" ~version:"1.0.0"
             ~doc:"CyLog: a declarative language for crowdsourced data management")
          cmds))

#!/bin/sh
# Golden-file smoke for `cylog check` (dune alias lint-smoke):
#   - every program in bad/ prints exactly the diagnostics its .expected
#     golden records, and exits 1 iff the golden contains an error;
#   - --format json round-trips one representative golden;
#   - every shipped example program lints clean, in text and json form.
set -u
CYLOG="$1"
status=0

for f in bad/*.cyl; do
  base="${f%.cyl}"
  out=$("$CYLOG" check "$f")
  code=$?
  if ! printf '%s\n' "$out" | diff -u "$base.expected" - >&2; then
    echo "lint-smoke: $f: output differs from $base.expected" >&2
    status=1
  fi
  if grep -q ": error: " "$base.expected"; then want=1; else want=0; fi
  if [ "$code" -ne "$want" ]; then
    echo "lint-smoke: $f: exit $code, expected $want" >&2
    status=1
  fi
done

json=$("$CYLOG" check --format json bad/unstratified.cyl)
if ! printf '%s\n' "$json" | diff -u bad/unstratified.json.expected - >&2; then
  echo "lint-smoke: unstratified.cyl: json output differs" >&2
  status=1
fi

for f in ../examples/programs/*.cyl; do
  if ! "$CYLOG" check "$f" >/dev/null; then
    echo "lint-smoke: $f: expected a clean check" >&2
    status=1
  fi
  json=$("$CYLOG" check --format json "$f")
  if [ "$json" != "[]" ]; then
    echo "lint-smoke: $f: expected [] from --format json, got: $json" >&2
    status=1
  fi
done

exit $status

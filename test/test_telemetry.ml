(* Telemetry differential tests.

   The central invariant (docs/OBSERVABILITY.md): every journal-derived
   metric — the [Engine.journal_derived] namespaces, plus all histograms —
   is ONE fold over [Engine.events], applied both incrementally by the
   live registry and from scratch by [Engine.metrics_of_events]. So for
   any driving sequence whatsoever (random programs, canonical humans,
   faulted lease/quorum campaigns, all TweetPecker variants), recounting
   the journal must reproduce the live values exactly — and because
   checkpoint/restore replays the journal through the same public entry
   points, a restored engine must carry the same registry too.

   Tracing gets the analogous treatment: span ids are sequence counters
   and timestamps are the logical clock, so two identical runs under a
   ring sink must produce byte-identical span lists. *)

open Cylog

(* --- Comparable registry views ------------------------------------------- *)

let derived_counters m =
  List.filter (fun (k, _) -> Engine.journal_derived k) (Telemetry.Metrics.counters m)

(* Derived counters + all histograms: everything [metrics_of_events] is
   contracted to reproduce. *)
let derived_view m = (derived_counters m, Telemetry.Metrics.histograms m)

let recount_agrees engine =
  derived_view (Engine.metrics_of_events (Engine.events engine))
  = derived_view (Engine.metrics engine)

(* --- Random programs driven by the canonical human ------------------------ *)

let drive_canonical program =
  (* The generator's Ask/Echo pair is a deliberate open cycle, which
     strict linting rejects as unbounded-task-emission. *)
  let engine = Engine.load ~lint:`Off program in
  ignore (Engine.run engine ~max_steps:20_000);
  let rec answer rounds =
    if rounds > 500 then ()
    else
      let pending =
        List.sort
          (fun (a : Engine.open_tuple) (b : Engine.open_tuple) ->
            compare
              (a.relation, Reldb.Tuple.to_string a.bound)
              (b.relation, Reldb.Tuple.to_string b.bound))
          (Engine.pending engine)
      in
      match pending with
      | [] -> ()
      | o :: _ ->
          let value = Reldb.Value.Int (Reldb.Tuple.hash o.bound mod 5) in
          (match
             Engine.supply engine o.id ~worker:(Reldb.Value.String "human")
               (List.map (fun a -> (a, value)) o.open_attrs)
           with
          | Ok _ -> ()
          | Error _ -> Engine.decline engine o.id);
          ignore (Engine.run engine ~max_steps:20_000);
          answer (rounds + 1)
  in
  answer 0;
  engine

let prop_recount_matches_live =
  QCheck.Test.make ~name:"metrics recounted from the journal = live registry"
    ~count:150 Test_differential.gen_program (fun program ->
      let engine = drive_canonical (Test_differential.with_open_rule program) in
      recount_agrees engine)

let prop_recount_survives_restore =
  QCheck.Test.make ~name:"registry survives snapshot/restore (replayed = derived)"
    ~count:100 Test_differential.gen_program (fun program ->
      let engine = drive_canonical (Test_differential.with_open_rule program) in
      let restored = Engine.restore_string (Engine.snapshot_string engine) in
      recount_agrees restored
      && derived_view (Engine.metrics restored) = derived_view (Engine.metrics engine))

(* --- Faulted lease/quorum campaigns --------------------------------------- *)

let quorum_campaign ?faults ~seed () =
  let src =
    {|rules:
  Item(id:1); Item(id:2); Item(id:3);
  Q: LabelOf(id, label)/open <- Item(id);
|}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  let policy engine ~worker:_ ~rng ~round:_ =
    match Engine.pending engine with
    | [] -> Crowd.Simulator.Pass
    | pending ->
        let o = List.nth pending (Random.State.int rng (List.length pending)) in
        let label = [| "cat"; "dog"; "eel" |].(Random.State.int rng 3) in
        Crowd.Simulator.Answer
          ( o.Engine.id,
            [ ("label", Reldb.Value.String label) ],
            Crowd.Simulator.Enter_value )
  in
  let workers =
    List.map (fun w -> (Reldb.Value.String w, policy)) [ "w1"; "w2"; "w3"; "w4" ]
  in
  let workers =
    match faults with
    | Some fs -> Crowd.Faults.inject ~seed fs workers
    | None -> workers
  in
  let outcome =
    Crowd.Simulator.run ~seed ~max_rounds:100 ~lease:Lease.default_config ~quorum:2
      ~stop:(fun e -> Engine.pending e = [])
      ~workers engine
  in
  ignore outcome;
  engine

let test_campaign_recount () =
  List.iter
    (fun seed ->
      let clean = quorum_campaign ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "clean campaign (seed %d): recount = live" seed)
        true (recount_agrees clean);
      let faulted =
        quorum_campaign ~faults:(List.assoc "all" Crowd.Faults.profiles) ~seed ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "faulted campaign (seed %d): recount = live" seed)
        true (recount_agrees faulted);
      (* Quorum really was exercised — the agreement-rate metrics exist. *)
      Alcotest.(check bool)
        (Printf.sprintf "campaign (seed %d): quorum votes counted" seed)
        true
        (Telemetry.Metrics.counter (Engine.metrics clean) "quorum.votes" > 0);
      let restored = Engine.restore_string (Engine.snapshot_string faulted) in
      Alcotest.(check bool)
        (Printf.sprintf "faulted campaign (seed %d): restored recount = live" seed)
        true (recount_agrees restored);
      Alcotest.(check bool)
        (Printf.sprintf "faulted campaign (seed %d): restored = original registry" seed)
        true
        (derived_view (Engine.metrics restored) = derived_view (Engine.metrics faulted)))
    [ 1; 7; 23 ]

(* --- Adaptive quality campaigns -------------------------------------------- *)

(* The adaptive quorum adds journal-derived counters (quorum.early_stopped,
   quorum.escalated) and the quorum.posterior_at_resolution histogram: the
   [Adaptive_resolved] effect carries the resolution evidence in the
   journal, so recounting must reproduce them like every other derived
   metric, before and after checkpoint/restore. Worker reputation rides
   along — it is derived state rebuilt by replay, so the restored engine's
   reliability table must match the original's. *)
let adaptive_campaign ~seed () =
  let src =
    {|rules:
  Item(id:1); Item(id:2); Item(id:3); Item(id:4); Item(id:5); Item(id:6);
  Q: LabelOf(id, label)/open <- Item(id);
|}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  let truth (o : Engine.open_tuple) =
    let label =
      match Reldb.Tuple.get_or_null o.bound "id" with
      | Reldb.Value.Int i -> [| "cat"; "dog"; "eel" |].(i mod 3)
      | _ -> "cat"
    in
    [ ("label", Reldb.Value.String label) ]
  in
  let workers =
    List.map
      (fun (w : Crowd.Worker.profile) -> (Reldb.Value.String w.name, w))
      (Crowd.Worker.crowd Crowd.Worker.diligent 3 @ [ Crowd.Worker.sloppy "s1" ])
  in
  let policy = Engine.Adaptive { tau = 0.9; min_votes = 2; max_votes = 5 } in
  ignore (Crowd.Simulator.run_routed ~seed ~policy ~truth ~workers engine);
  engine

let test_adaptive_campaign_recount () =
  List.iter
    (fun seed ->
      let engine = adaptive_campaign ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "adaptive campaign (seed %d): recount = live" seed)
        true (recount_agrees engine);
      Alcotest.(check bool)
        (Printf.sprintf "adaptive campaign (seed %d): early stops counted" seed)
        true
        (Telemetry.Metrics.counter (Engine.metrics engine) "quorum.early_stopped"
        > 0);
      Alcotest.(check bool)
        (Printf.sprintf "adaptive campaign (seed %d): posterior histogram present"
           seed)
        true
        (Telemetry.Metrics.histogram (Engine.metrics engine)
           "quorum.posterior_at_resolution"
        <> None);
      let restored = Engine.restore_string (Engine.snapshot_string engine) in
      Alcotest.(check bool)
        (Printf.sprintf "adaptive campaign (seed %d): restored recount = live" seed)
        true (recount_agrees restored);
      Alcotest.(check bool)
        (Printf.sprintf "adaptive campaign (seed %d): restored = original registry"
           seed)
        true
        (derived_view (Engine.metrics restored) = derived_view (Engine.metrics engine));
      Alcotest.(check bool)
        (Printf.sprintf "adaptive campaign (seed %d): reputation survives restore"
           seed)
        true
        (Engine.reliability_table restored = Engine.reliability_table engine))
    [ 3; 9; 31 ]

(* --- TweetPecker variants -------------------------------------------------- *)

let test_tweetpecker_recount () =
  let corpus = Tweets.Generator.generate ~seed:5 12 in
  List.iter
    (fun variant ->
      let name = Tweetpecker.Programs.variant_name variant in
      let o = Tweetpecker.Runner.run ~seed:11 ~corpus variant in
      Alcotest.(check bool) (name ^ ": recount = live") true (recount_agrees o.engine);
      let restored = Engine.restore_string (Engine.snapshot_string o.engine) in
      Alcotest.(check bool)
        (name ^ ": restored recount = live")
        true (recount_agrees restored);
      Alcotest.(check bool)
        (name ^ ": restored = original registry")
        true
        (derived_view (Engine.metrics restored) = derived_view (Engine.metrics o.engine)))
    Tweetpecker.Programs.[ VE; VEI; VRE; VREI ]

(* --- Tracing determinism --------------------------------------------------- *)

let ring_spans program =
  let engine = Engine.load program in
  let sink = Telemetry.Sink.ring 10_000 in
  Engine.set_sink engine sink;
  ignore (Engine.run engine ~max_steps:20_000);
  Telemetry.Sink.contents sink

let prop_tracing_deterministic =
  QCheck.Test.make ~name:"two identical runs emit identical span lists" ~count:100
    Test_differential.gen_program (fun program ->
      ring_spans program = ring_spans program)

let test_tweetpecker_tracing_deterministic () =
  let corpus = Tweets.Generator.generate ~seed:5 8 in
  let spans () =
    let sink = Telemetry.Sink.ring 100_000 in
    ignore (Tweetpecker.Runner.run ~seed:11 ~corpus ~sink Tweetpecker.Programs.VREI);
    Telemetry.Sink.contents sink
  in
  let a = spans () and b = spans () in
  Alcotest.(check bool) "VREI campaign: span streams identical" true (a = b);
  Alcotest.(check bool) "VREI campaign: spans were emitted" true (a <> []);
  let names = List.map (fun (s : Telemetry.span) -> s.name) a in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "VREI campaign: a %S span exists" expected)
        true (List.mem expected names))
    [ "campaign"; "round"; "rule"; "atom-match"; "task" ]

(* --- Engine-local evaluation counters --------------------------------------- *)

(* The "eval." namespace is engine-local — run boundaries and delta-scan
   rounds are not journal events, so these counters sit outside the
   recount contract — but they must still be observable: a run that
   converges in zero steps registers, and delta rounds are counted even
   when every scan comes up empty. *)
let test_zero_step_run_still_observed () =
  let engine = Engine.load (Parser.parse_exn "rules:\n  R(x:1);\n  T(x) <- R(x);\n") in
  ignore (Engine.run engine);
  let m = Engine.metrics engine in
  let runs_after_first = Telemetry.Metrics.counter m "eval.fixpoint.runs" in
  let steps_after_first = Telemetry.Metrics.counter m "eval.fixpoint.steps" in
  Alcotest.(check int) "first run counted" 1 runs_after_first;
  Alcotest.(check bool) "first run took steps" true (steps_after_first > 0);
  (* Quiescent engine: the second run converges in zero steps but is still
     an observation. *)
  ignore (Engine.run engine);
  Alcotest.(check int) "zero-step run counted" 2
    (Telemetry.Metrics.counter m "eval.fixpoint.runs");
  Alcotest.(check int) "zero-step run added no steps" steps_after_first
    (Telemetry.Metrics.counter m "eval.fixpoint.steps")

let test_delta_counters_accumulate () =
  let src = "rules:\n  R(x:1); R(x:2); R(x:3);\n  T(x) <- R(x);\n  U(x) <- T(x);\n" in
  let delta = Engine.load ~use_delta:true (Parser.parse_exn src) in
  ignore (Engine.run delta);
  let m = Engine.metrics delta in
  Alcotest.(check bool) "delta rounds counted" true
    (Telemetry.Metrics.counter m "eval.delta.rounds" > 0);
  Alcotest.(check bool) "delta discoveries counted" true
    (Telemetry.Metrics.counter m "eval.delta.discovered" > 0);
  Alcotest.(check bool) "new rows consumed" true
    (Telemetry.Metrics.counter m "eval.delta.new_rows" > 0);
  (* Monotone program, nothing destroyed: no scoped re-derivations. *)
  Alcotest.(check int) "no resets on a monotone program" 0
    (Telemetry.Metrics.counter m "eval.delta.resets");
  let rescan = Engine.load ~use_delta:false (Parser.parse_exn src) in
  ignore (Engine.run rescan);
  Alcotest.(check int) "rescan engine runs no delta rounds" 0
    (Telemetry.Metrics.counter (Engine.metrics rescan) "eval.delta.rounds");
  (* An in-place update invalidates watched delta state: the affected
     statement re-derives and the reset is counted. *)
  let ud =
    Engine.load ~lint:`Off
      (Parser.parse_exn
         {|schema:
  K(a key, b);

rules:
  K(a:1, b:9); R(x:1); R(x:2);
  T(b) <- K(a, b), R(x);
  K(a:x, b:x)/update <- R(x);
|})
  in
  ignore (Engine.run ud);
  Alcotest.(check bool) "updates trigger counted re-derivations" true
    (Telemetry.Metrics.counter (Engine.metrics ud) "eval.delta.resets" > 0)

(* --- Off switches ----------------------------------------------------------- *)

let test_disabled_registry_stays_empty () =
  let program =
    Parser.parse_exn "rules:\n  R(x:1); R(x:2);\n  T(x) <- R(x);\n"
  in
  let engine = Engine.load program in
  Telemetry.Metrics.set_enabled (Engine.metrics engine) false;
  ignore (Engine.run engine);
  Alcotest.(check (list (pair string int)))
    "no counters accumulate while disabled" []
    (Telemetry.Metrics.counters (Engine.metrics engine));
  (* Re-enabling does not resurrect the missed window, but the journal
     recount still reconstructs it in a fresh registry. *)
  let recount = Engine.metrics_of_events (Engine.events engine) in
  Alcotest.(check bool) "recount still reconstructs the blackout" true
    (Telemetry.Metrics.counter recount "engine.events"
     = List.length (Engine.events engine)
    && Telemetry.Metrics.counter recount "engine.events" > 0)

let test_null_sink_emits_nothing () =
  let program = Parser.parse_exn "rules:\n  R(x:1);\n  T(x) <- R(x);\n" in
  let engine = Engine.load program in
  ignore (Engine.run engine);
  Alcotest.(check bool) "null sink has no contents" true
    (Telemetry.Sink.contents (Telemetry.sink (Engine.telemetry engine)) = []);
  Alcotest.(check bool) "explain renders" true
    (String.length (Engine.explain engine) > 0)

let suite =
  [ ( "telemetry",
      List.map QCheck_alcotest.to_alcotest
        [ prop_recount_matches_live; prop_recount_survives_restore;
          prop_tracing_deterministic ]
      @ [ Alcotest.test_case "faulted quorum campaigns: recount = live" `Quick
            test_campaign_recount;
          Alcotest.test_case "adaptive campaigns: recount, restore, reputation"
            `Quick test_adaptive_campaign_recount;
          Alcotest.test_case "tweetpecker variants: recount = live" `Slow
            test_tweetpecker_recount;
          Alcotest.test_case "tweetpecker tracing: deterministic spans" `Slow
            test_tweetpecker_tracing_deterministic;
          Alcotest.test_case "zero-step runs are still observed" `Quick
            test_zero_step_run_still_observed;
          Alcotest.test_case "delta counters accumulate" `Quick
            test_delta_counters_accumulate;
          Alcotest.test_case "disabled registry stays empty" `Quick
            test_disabled_registry_stays_empty;
          Alcotest.test_case "null sink emits nothing" `Quick
            test_null_sink_emits_nothing ] ) ]

(* Cylog.Lint: the static checker.

   Unit coverage for the five check families — exact spans, severities
   and codes on minimal triggers; severity overrides; Strict/Warn/Off
   enforcement at Engine.load; and cleanliness of every shipped program
   (the example corpus, all four TweetPecker variants and the Figure 16
   Turing construction). The golden-file side of the same guarantees
   lives in the lint-smoke alias (test/bad/ + lint_smoke.sh). *)

open Cylog

let check_src ?overrides src = Lint.check ?overrides (Parser.parse_exn src)
let codes ds = List.sort_uniq compare (List.map (fun (d : Lint.diagnostic) -> d.Lint.code) ds)
let find code ds = List.find (fun (d : Lint.diagnostic) -> d.Lint.code = code) ds

let span_t =
  Alcotest.testable
    (fun ppf (s : Ast.span) ->
      Format.fprintf ppf "%d:%d-%d:%d" s.start_line s.start_col s.end_line s.end_col)
    ( = )

(* --- catalogue ----------------------------------------------------------- *)

let test_catalogue () =
  let names = List.map (fun (c, _, _) -> c) Lint.all_codes in
  Alcotest.(check bool) "at least 12 codes" true (List.length names >= 12);
  Alcotest.(check int) "codes unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun c -> Alcotest.(check bool) c true (Lint.is_known_code c))
    names;
  Alcotest.(check bool) "junk unknown" false (Lint.is_known_code "no-such-code")

(* --- safety -------------------------------------------------------------- *)

let test_unsafe_head_var_span () =
  let ds = check_src "rules:\n  T(x, y) <- R(x);\n" in
  let d = find "unsafe-head-var" ds in
  Alcotest.(check span_t) "head span"
    { Ast.start_line = 2; start_col = 3; end_line = 2; end_col = 10 } d.Lint.span;
  Alcotest.(check bool) "is error" true (d.Lint.severity = Lint.Error)

let test_open_slots_exempt () =
  (* Unbound Auto attributes of /open heads are the open slots; unbound
     arguments of /delete heads are wildcards. Neither is unsafe. *)
  let ds = check_src "rules: R(x:1); S(x, y)/open <- R(x); R(x)/delete <- S(x, y);" in
  Alcotest.(check (list string)) "no safety diagnostics" []
    (List.filter (fun c -> String.length c >= 6 && String.sub c 0 6 = "unsafe") (codes ds))

let test_unsafe_cmp_and_call () =
  let ds = check_src "rules: R(x:1); T(x) <- R(x), y < 3, matches(\"a\", z);" in
  Alcotest.(check bool) "cmp flagged" true (List.mem "unsafe-cmp-var" (codes ds));
  Alcotest.(check bool) "call flagged" true (List.mem "unsafe-call-var" (codes ds))

let test_eq_binder_is_safe () =
  (* y = x + 1 binds y; both orders of the equality work. *)
  let ds = check_src "rules: R(x:1); T(y) <- R(x), y = x + 1; U(z) <- R(x), x + 1 = z;" in
  Alcotest.(check (list string)) "no unsafe codes" []
    (List.filter (fun c -> String.length c >= 6 && String.sub c 0 6 = "unsafe") (codes ds))

(* --- stratification ------------------------------------------------------ *)

let test_unstratified_names_cycle () =
  let ds = check_src "rules: A(x:1); T(x) <- A(x), not U(x); U(x) <- T(x);" in
  let d = find "unstratified" ds in
  Alcotest.(check span_t) "statement span"
    { Ast.start_line = 1; start_col = 16; end_line = 1; end_col = 39 } d.Lint.span;
  Alcotest.(check bool) "cycle rendered" true
    (let msg = d.Lint.message in
     let contains hay needle =
       let n = String.length hay and m = String.length needle in
       let rec loop i = i + m <= n && (String.sub hay i m = needle || loop (i + 1)) in
       m = 0 || loop 0
     in
     contains msg "cycle: T_2 -> U_3 -> T_2")

let test_update_below_negation_legal () =
  (* Fill-if-absent: /update into a negated relation is not unstratified. *)
  let ds = check_src "rules: A(x:1); T(x) <- A(x), not U(x); U(x:1)/update;" in
  Alcotest.(check bool) "clean" false (List.mem "unstratified" (codes ds))

let test_self_negation () =
  let ds = check_src "schema: R(x); rules: T(x) <- R(x), not T(x);" in
  Alcotest.(check bool) "flagged" true (List.mem "self-negation" (codes ds))

(* --- schema conformance -------------------------------------------------- *)

let test_schema_conformance () =
  Alcotest.(check bool) "duplicate-schema" true
    (List.mem "duplicate-schema" (codes (check_src "schema: R(a); R(b); rules: T(a) <- R(a);")));
  Alcotest.(check bool) "unknown-attr" true
    (List.mem "unknown-attr" (codes (check_src "schema: R(a); rules: T(x) <- R(b:x);")));
  let ds = check_src "rules:\n  R(a:1);\n  R(a:\"wet\");\n  T(a) <- R(a);" in
  let d = find "type-conflict" ds in
  Alcotest.(check bool) "warning severity" true (d.Lint.severity = Lint.Warning);
  Alcotest.(check int) "conflict reported at second site" 3 d.Lint.span.Ast.start_line

let test_engine_managed_exempt () =
  (* Path and Payoff get engine-synthesised schemas inside games: no
     unknown-attr or undefined-relation noise. *)
  let ds =
    check_src
      {|schema: Input(tw, value, p);
        games:
          game G(tw) {
            path:
              P1: Path(player:p, action:[value]) <- Input(tw, value, p);
            payoff:
              P2: Payoff[p1 += 1] <- Path(player:p1, action:[v]);
          }|}
  in
  Alcotest.(check (list string)) "clean" [] (codes ds)

(* --- liveness ------------------------------------------------------------ *)

let test_liveness_family () =
  Alcotest.(check (list string)) "undefined + unreachable"
    [ "undefined-relation"; "unreachable-rule" ]
    (codes (check_src "rules: T(x) <- Missing(x);"));
  Alcotest.(check (list string)) "unused" [ "unused-relation" ]
    (codes (check_src "schema: Orphan(a); rules: T(x:1);"));
  Alcotest.(check (list string)) "dead delete" [ "dead-delete" ]
    (codes (check_src "rules: T(x:1)/delete;"));
  (* A declared schema is an input point: rules over it are reachable. *)
  Alcotest.(check (list string)) "declared EDB reachable" []
    (codes (check_src "schema: A(x); rules: T(x) <- A(x);"))

(* --- games --------------------------------------------------------------- *)

let test_game_family () =
  Alcotest.(check bool) "payoff-outside-game" true
    (List.mem "payoff-outside-game"
       (codes (check_src "schema: W(p); rules: Payoff[p += 1] <- W(p);")));
  Alcotest.(check bool) "game-no-path" true
    (List.mem "game-no-path"
       (codes
          (check_src
             "schema: I(p); games: game G() { payoff: P: Payoff[p += 1] <- Path(player:p); }")))

(* --- overrides and rendering --------------------------------------------- *)

let unstratified_src = "rules: A(x:1); T(x) <- A(x), not U(x); U(x) <- T(x);"

let test_overrides () =
  Alcotest.(check bool) "off silences" false
    (List.mem "unstratified"
       (codes (check_src ~overrides:[ ("unstratified", `Off) ] unstratified_src)));
  Alcotest.(check bool) "demoted to warning" false
    (Lint.has_errors (check_src ~overrides:[ ("unstratified", `Warning) ] unstratified_src));
  Alcotest.(check bool) "promoted to error" true
    (Lint.has_errors
       (check_src ~overrides:[ ("dead-delete", `Error) ] "rules: T(x:1)/delete;"))

let test_render () =
  let d = find "unsafe-head-var" (check_src "rules:\n  T(x, y) <- R(x);\n") in
  let line = Lint.render ~file:"p.cyl" d in
  let prefix = "p.cyl:2:3-2:10: error: unsafe-head-var" in
  Alcotest.(check string) "prefix" prefix (String.sub line 0 (String.length prefix));
  let json = Lint.render_json ~file:"p.cyl" [ d ] in
  Alcotest.(check bool) "json has span" true
    (let contains hay needle =
       let n = String.length hay and m = String.length needle in
       let rec loop i = i + m <= n && (String.sub hay i m = needle || loop (i + 1)) in
       m = 0 || loop 0
     in
     contains json "\"span\":{\"start_line\":2,\"start_col\":3,\"end_line\":2,\"end_col\":10}");
  Alcotest.(check string) "empty list" "[]" (Lint.render_json [])

(* --- Engine.load enforcement --------------------------------------------- *)

let test_strict_load () =
  let unsafe = Parser.parse_exn "rules: T(x, y) <- R(x);" in
  (match Engine.load unsafe with
  | exception Lint.Rejected ds ->
      Alcotest.(check bool) "diagnostics carried" true (Lint.has_errors ds)
  | _ -> Alcotest.fail "Strict load must reject an unsafe program");
  (match Engine.load (Parser.parse_exn unstratified_src) with
  | exception Lint.Rejected _ -> ()
  | _ -> Alcotest.fail "Strict load must reject an unstratified program");
  (* Warn and Off both load the same programs. *)
  ignore (Engine.load ~lint:`Warn unsafe);
  ignore (Engine.load ~lint:`Off unsafe)

(* --- shipped programs are clean ------------------------------------------ *)

let example_files () =
  (* dune runtest runs in the test directory; dune exec from the root. *)
  let dir =
    List.find Sys.file_exists [ "../examples/programs"; "examples/programs" ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cyl")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_examples_clean () =
  let files = example_files () in
  Alcotest.(check bool) "found the example corpus" true (List.length files >= 4);
  List.iter
    (fun f ->
      let ds = Lint.check (Parser.parse_exn (read_file f)) in
      Alcotest.(check (list string)) (f ^ " clean") [] (codes ds))
    files

let test_examples_roundtrip () =
  (* Pretty.pp_program round-trips every example — including /open heads
     with asked-expressions and game blocks — up to source spans. *)
  List.iter
    (fun f ->
      let p = Parser.parse_exn (read_file f) in
      let p' = Parser.parse_exn (Pretty.program_to_string p) in
      Alcotest.(check bool) (f ^ " roundtrips") true
        (Ast.strip_program p = Ast.strip_program p'))
    (example_files ())

let test_tweetpecker_variants_clean () =
  let corpus = Tweets.Generator.generate ~seed:5 6 in
  let workers = [ "w1"; "w2"; "w3" ] in
  List.iter
    (fun variant ->
      let p = Tweetpecker.Programs.program variant ~corpus ~workers in
      let ds = Lint.check p in
      (* The VRE variants collect extraction rules through standing opens
         (fresh auto key per answer), which the budget analysis flags as
         needing a runtime cap (on the rule-collection open and on the
         extraction-vote open downstream of it). Everything else must
         stay clean, and none of it is an error. *)
      let expected =
        match variant with
        | Tweetpecker.Programs.VRE | Tweetpecker.Programs.VREI ->
            [ "budget-unknown" ]
        | _ -> []
      in
      Alcotest.(check (list string))
        (Tweetpecker.Programs.variant_name variant ^ " codes")
        expected (codes ds);
      Alcotest.(check bool)
        (Tweetpecker.Programs.variant_name variant ^ " no errors")
        false (Lint.has_errors ds);
      if expected = [] then
        Alcotest.(check string)
          (Tweetpecker.Programs.variant_name variant ^ " json empty")
          "[]" (Lint.render_json ds))
    Tweetpecker.Programs.all

let test_turing_clean () =
  List.iter
    (fun ((m : Turing.Machine.t), input) ->
      let src = Turing.Cylog_tm.to_source m ~input in
      let ds = Lint.check (Parser.parse_exn src) in
      Alcotest.(check (list string)) (m.name ^ " clean") [] (codes ds);
      Alcotest.(check string) (m.name ^ " json empty") "[]" (Lint.render_json ds))
    [ (Turing.Machine.successor, [ "1"; "1" ]);
      (Turing.Machine.binary_increment, [ "1"; "0" ]);
      (Turing.Machine.parity, [ "1" ]) ]

(* --- satellite: parser/lexer positions ----------------------------------- *)

let test_parse_error_has_end () =
  match Parser.parse "rules: T(x) <- not ;" with
  | Ok _ -> Alcotest.fail "should not parse"
  | Error e ->
      Alcotest.(check bool) "end not before start" true
        ((e.Parser.end_line, e.Parser.end_col) >= (e.Parser.line, e.Parser.col));
      Alcotest.(check bool) "end set" true (e.Parser.end_col > 0)

let test_lexer_exact_ranges () =
  let toks = Lexer.tokenize "x <= \"ab\" +=\ny" in
  let pos (t : Lexer.located) = (t.token, t.line, t.col, t.end_line, t.end_col) in
  Alcotest.(check bool) "multi-char operators and strings are exact" true
    (List.map pos toks
    = [ (Lexer.IDENT "x", 1, 1, 1, 2);
        (Lexer.LE, 1, 3, 1, 5);
        (Lexer.STRING "ab", 1, 6, 1, 10);
        (Lexer.PLUSEQ, 1, 11, 1, 13);
        (Lexer.IDENT "y", 2, 1, 2, 2);
        (Lexer.EOF, 2, 2, 2, 2) ])

let suite =
  [ ( "lint",
      [ Alcotest.test_case "code catalogue" `Quick test_catalogue;
        Alcotest.test_case "unsafe head var span" `Quick test_unsafe_head_var_span;
        Alcotest.test_case "open slots exempt" `Quick test_open_slots_exempt;
        Alcotest.test_case "unsafe cmp and call vars" `Quick test_unsafe_cmp_and_call;
        Alcotest.test_case "equality binders are safe" `Quick test_eq_binder_is_safe;
        Alcotest.test_case "unstratified names the cycle" `Quick
          test_unstratified_names_cycle;
        Alcotest.test_case "update below negation legal" `Quick
          test_update_below_negation_legal;
        Alcotest.test_case "self negation" `Quick test_self_negation;
        Alcotest.test_case "schema conformance" `Quick test_schema_conformance;
        Alcotest.test_case "engine-managed relations exempt" `Quick
          test_engine_managed_exempt;
        Alcotest.test_case "liveness family" `Quick test_liveness_family;
        Alcotest.test_case "game family" `Quick test_game_family;
        Alcotest.test_case "severity overrides" `Quick test_overrides;
        Alcotest.test_case "text and json rendering" `Quick test_render;
        Alcotest.test_case "strict load enforcement" `Quick test_strict_load;
        Alcotest.test_case "examples lint clean" `Quick test_examples_clean;
        Alcotest.test_case "examples pretty-roundtrip" `Quick test_examples_roundtrip;
        Alcotest.test_case "tweetpecker variants lint clean" `Quick
          test_tweetpecker_variants_clean;
        Alcotest.test_case "figure 16 turing lint clean" `Quick test_turing_clean;
        Alcotest.test_case "parse errors carry end positions" `Quick
          test_parse_error_has_end;
        Alcotest.test_case "lexer ranges exact" `Quick test_lexer_exact_ranges ] ) ]

(* Crash-consistent durability: the segmented WAL (Cylog.Journal) over
   fault-injecting storage (Cylog.Storage.Sim), snapshot v2 framing, and
   the crash-point harness — a crash at every storage operation of a
   faulted adaptive-quorum campaign must recover to a valid prefix of the
   original journal, and re-driving the lost tail must reproduce the
   original event trace byte for byte. *)

open Cylog
module Sim = Storage.Sim

let aggregate = Crowd.Simulator.majority_aggregate

let engine_trace engine =
  List.map
    (fun (e : Engine.event) ->
      (e.clock, e.statement, e.label, e.valuation, e.fired, e.effects, e.by_human))
    (Engine.events engine)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let rec drop_n n xs =
  if n <= 0 then xs else match xs with [] -> [] | _ :: tl -> drop_n (n - 1) tl

(* --- Raw framing (mirrors journal.ml, for tampering with segments) --------- *)

let put_u32le b n =
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff))

(* One wire-format record: length, crc32 over version++kind++payload, then
   the body. [version]/[kind] default to a valid Entry so tests can skew
   exactly one field at a time. *)
let frame ?(version = 1) ?(kind = 1) payload =
  let body = Printf.sprintf "%c%c%s" (Char.chr version) (Char.chr kind) payload in
  let b = Buffer.create (8 + String.length body) in
  put_u32le b (String.length body);
  put_u32le b (Int32.to_int (Storage.crc32 body) land 0xFFFFFFFF);
  Buffer.add_string b body;
  Buffer.contents b

let seg_path dir i = Printf.sprintf "%s/wal-%08d.seg" dir i

let kind_char = function
  | Journal.Genesis -> 'G'
  | Journal.Entry -> 'E'
  | Journal.Snapshot -> 'S'

let shape (r : Journal.recovery) =
  String.init (List.length r.records) (fun i ->
      kind_char (List.nth r.records i).Journal.kind)

let payloads (r : Journal.recovery) =
  List.map (fun (rec_ : Journal.record) -> rec_.Journal.payload) r.records

(* --- Journal unit tests (pure WAL, no engine) ------------------------------ *)

let test_journal_roundtrip () =
  let sim = Sim.create () in
  let st = Sim.storage sim in
  let j = Journal.create ~storage:st ~genesis:"G0" "j" in
  List.iter (Journal.append j) [ "e1"; "e2"; "e3" ];
  Journal.close j;
  let j2, r = Journal.recover ~storage:st "j" in
  Alcotest.(check string) "record run" "GEEE" (shape r);
  Alcotest.(check (list string)) "payloads survive" [ "G0"; "e1"; "e2"; "e3" ]
    (payloads r);
  Alcotest.(check int) "base is segment 0" 0 r.base_segment;
  Alcotest.(check int) "nothing truncated" 0 r.truncated_bytes;
  (* The recovered handle keeps appending where the old one stopped. *)
  Journal.append j2 "e4";
  Journal.close j2;
  let _, r2 = Journal.recover ~storage:st "j" in
  Alcotest.(check string) "appended after recovery" "GEEEE" (shape r2);
  (* A directory already holding segments refuses a fresh create. *)
  match Journal.create ~storage:st ~genesis:"G1" "j" with
  | exception Journal.Error (Journal.Journal_exists _) -> ()
  | _ -> Alcotest.fail "create over an existing journal must be refused"

let test_journal_rotation () =
  let sim = Sim.create () in
  let st = Sim.storage sim in
  let config = { Journal.default_config with segment_bytes = 64 } in
  let j = Journal.create ~config ~storage:st ~genesis:"G" "j" in
  let entries = List.init 20 (Printf.sprintf "entry-%02d") in
  List.iter (Journal.append j) entries;
  let stats = Journal.stats j in
  Alcotest.(check bool) "rotated at least twice" true (stats.Journal.rotations >= 2);
  Journal.close j;
  let _, r = Journal.recover ~config ~storage:st "j" in
  Alcotest.(check bool) "several segments scanned" true (r.segments_scanned >= 3);
  Alcotest.(check (list string)) "all records, in order" ("G" :: entries) (payloads r)

let test_journal_compaction () =
  let sim = Sim.create () in
  let st = Sim.storage sim in
  let j = Journal.create ~storage:st ~genesis:"G" "j" in
  List.iter (Journal.append j) [ "a"; "b"; "c"; "d" ];
  Journal.compact j "SNAP";
  List.iter (Journal.append j) [ "e"; "f" ];
  Journal.close j;
  let j2, r = Journal.recover ~storage:st "j" in
  Alcotest.(check string) "restore is O(live state): snapshot + tail" "SEE" (shape r);
  Alcotest.(check (list string)) "post-snapshot tail" [ "SNAP"; "e"; "f" ] (payloads r);
  Alcotest.(check bool) "base moved past segment 0" true (r.base_segment > 0);
  (* Pre-compaction segments are really gone from storage. *)
  let stats = Journal.stats j2 in
  Alcotest.(check bool) "no live segment below the base" true
    (List.for_all (fun i -> i >= r.base_segment) stats.Journal.segments)

let test_torn_tail_truncated_then_idempotent () =
  let sim = Sim.create () in
  let st = Sim.storage sim in
  let j = Journal.create ~storage:st ~genesis:"G" "j" in
  List.iter (Journal.append j) [ "a"; "b" ];
  Journal.close j;
  (* A torn write: the first 6 bytes of a valid record, then silence. *)
  let module St = (val st) in
  St.append (seg_path "j" 0) (String.sub (frame "torn-away") 0 6);
  let _, r = Journal.recover ~storage:st "j" in
  Alcotest.(check int) "torn tail dropped" 6 r.truncated_bytes;
  Alcotest.(check (list string)) "valid prefix survives" [ "G"; "a"; "b" ] (payloads r);
  (* Recovery only discards bytes, so running it again is a no-op. *)
  let _, r2 = Journal.recover ~storage:st "j" in
  Alcotest.(check int) "second recovery truncates nothing" 0 r2.truncated_bytes;
  Alcotest.(check (list string)) "and sees the same records" [ "G"; "a"; "b" ]
    (payloads r2)

let test_garbage_tail_truncated () =
  let sim = Sim.create () in
  let st = Sim.storage sim in
  let j = Journal.create ~storage:st ~genesis:"G" "j" in
  Journal.append j "a";
  Journal.close j;
  let module St = (val st) in
  (* Framing nonsense: a length field no record could have. *)
  St.append (seg_path "j" 0) "\x00\x00\x00\x00garbage!";
  let _, r = Journal.recover ~storage:st "j" in
  Alcotest.(check int) "garbage dropped" 12 r.truncated_bytes;
  Alcotest.(check (list string)) "records intact" [ "G"; "a" ] (payloads r)

let test_recover_edge_cases () =
  (* Empty storage: nothing to recover. *)
  let sim = Sim.create () in
  (match Journal.recover ~storage:(Sim.storage sim) "j" with
  | exception Journal.Error (Journal.No_segments _) -> ()
  | _ -> Alcotest.fail "empty dir must raise No_segments");
  (* Directory exists but holds no segments: same answer. *)
  let module St0 = (val Sim.storage sim) in
  St0.mkdirp "j";
  (match Journal.recover ~storage:(Sim.storage sim) "j" with
  | exception Journal.Error (Journal.No_segments _) -> ()
  | _ -> Alcotest.fail "segment-less dir must raise No_segments");
  (* A checksum-valid record from a future format version is never
     truncated — even at the tail — and always refused. *)
  let sim = Sim.create () in
  let st = Sim.storage sim in
  let j = Journal.create ~storage:st ~genesis:"G" "j" in
  Journal.append j "a";
  Journal.close j;
  let module St = (val st) in
  St.append (seg_path "j" 0) (frame ~version:2 "from-the-future");
  (match Journal.recover ~storage:st "j" with
  | exception Journal.Error (Journal.Unsupported_version { version = 2; _ }) -> ()
  | _ -> Alcotest.fail "version-skewed record must raise Unsupported_version");
  (* A checksum-valid record of unknown kind is corruption, not a tear. *)
  let sim = Sim.create () in
  let st = Sim.storage sim in
  let j = Journal.create ~storage:st ~genesis:"G" "j" in
  Journal.close j;
  let module St = (val st) in
  St.append (seg_path "j" 0) (frame ~kind:7 "what-am-i");
  (match Journal.recover ~storage:st "j" with
  | exception Journal.Error (Journal.Corrupt_record _) -> ()
  | _ -> Alcotest.fail "unknown record kind must raise Corrupt_record");
  (* A gap in the segment sequence after the base is refused, not skipped. *)
  let sim = Sim.create () in
  let st = Sim.storage sim in
  let config = { Journal.default_config with segment_bytes = 64 } in
  let j = Journal.create ~config ~storage:st ~genesis:"G" "j" in
  List.iter (Journal.append j) (List.init 20 (Printf.sprintf "entry-%02d"));
  let live = (Journal.stats j).Journal.segments in
  Alcotest.(check bool) "enough segments to punch a hole" true
    (List.length live >= 3);
  Journal.close j;
  let module St = (val st) in
  St.delete (seg_path "j" (List.nth live 1));
  match Journal.recover ~config ~storage:st "j" with
  | exception Journal.Error (Journal.Missing_segment { index; _ }) ->
      Alcotest.(check int) "the hole is named" (List.nth live 1) index
  | _ -> Alcotest.fail "a segment gap must raise Missing_segment"

(* --- Snapshot v2 framing ---------------------------------------------------- *)

let mini_engine () =
  match Parser.parse "schema:\n  R(x key, y);\nrules:\n  R(x:1, y:2);\n" with
  | Ok p -> Engine.load p
  | Error e -> Alcotest.failf "mini program: %s" e.Parser.message

let test_snapshot_header_errors () =
  let snap = Engine.snapshot_string (mini_engine ()) in
  (* Round-trip sanity first: the untouched snapshot restores. *)
  ignore (Engine.restore_string snap);
  (* Any proper prefix — mid-magic or mid-payload — is Truncated. *)
  List.iter
    (fun cut ->
      match Engine.restore_string (String.sub snap 0 cut) with
      | exception Engine.Snapshot_error Engine.Truncated -> ()
      | exception e ->
          Alcotest.failf "cut %d: expected Truncated, got %s" cut (Printexc.to_string e)
      | _ -> Alcotest.failf "cut %d: truncated snapshot restored" cut)
    [ 5; 20; String.length snap - 1 ];
  (* A flipped payload byte fails the checksum, not the unmarshaller. *)
  let b = Bytes.of_string snap in
  let i = String.length snap - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  match Engine.restore_string (Bytes.to_string b) with
  | exception Engine.Snapshot_error Engine.Checksum_mismatch -> ()
  | exception e -> Alcotest.failf "expected Checksum_mismatch, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "corrupt snapshot restored"

(* --- The crash-point harness ------------------------------------------------ *)

(* A faulted adaptive-quorum campaign, small enough to sweep exhaustively
   but exercising every journaled entry kind (answers, declines, assigns,
   reclaims, lease and quorum installs). Shared across the tests below. *)
let variant = Tweetpecker.Programs.VEI
let corpus = lazy (Tweets.Generator.generate ~seed:5 4)

let reference =
  lazy
    (Tweetpecker.Runner.run ~seed:13 ~corpus:(Lazy.force corpus)
       ~faults:Crowd.Faults.garble ~lease:Lease.default_config
       ~policy:(Engine.Adaptive { tau = 0.9; min_votes = 2; max_votes = 5 })
       variant)

let campaign_program () =
  Tweetpecker.Programs.program variant ~corpus:(Lazy.force corpus)
    ~workers:
      (List.map
         (fun (w : Crowd.Worker.profile) -> w.name)
         (Tweetpecker.Runner.default_workers variant))

(* Small segments and frequent compaction so the op sweep crosses many
   rotation and compaction boundaries, not just plain appends. *)
let jcfg = { Journal.fsync = Journal.Always; segment_bytes = 512; compact_every = Some 10 }

let replay ~config ~storage program entries =
  let engine = Engine.load program in
  Engine.journal_start ~config ~storage engine "j";
  List.iter (Engine.apply_entry ~aggregate engine) entries;
  engine

let test_baseline_replay_and_clean_recover () =
  let o = Lazy.force reference in
  let entries = Engine.journal_entries o.engine in
  let program = campaign_program () in
  let sim = Sim.create () in
  let engine = replay ~config:jcfg ~storage:(Sim.storage sim) program entries in
  Alcotest.(check bool) "journal replay reproduces the campaign" true
    (engine_trace engine = engine_trace o.engine);
  let j = Option.get (Engine.durable_journal engine) in
  let stats = Journal.stats j in
  Alcotest.(check bool) "sweep will cross rotations" true (stats.Journal.rotations > 0);
  Alcotest.(check bool) "sweep will cross compactions" true
    (stats.Journal.compactions > 0);
  Journal.close j;
  (* Clean recovery: byte-identical state, nothing truncated. *)
  let recovered, rs =
    Engine.recover ~aggregate ~config:jcfg ~storage:(Sim.storage sim) "j"
  in
  Alcotest.(check int) "clean recovery truncates nothing" 0 rs.Engine.truncated_bytes;
  Alcotest.(check bool) "recovered trace identical" true
    (engine_trace recovered = engine_trace o.engine);
  Alcotest.(check bool) "recovered journal byte-identical" true
    (Engine.journal_dump recovered = Engine.journal_dump o.engine);
  (* Recover-after-recover is a no-op. *)
  let again, rs2 = Engine.recover ~aggregate ~config:jcfg ~storage:(Sim.storage sim) "j" in
  Alcotest.(check int) "double recovery truncates nothing" 0 rs2.Engine.truncated_bytes;
  Alcotest.(check bool) "double recovery identical" true
    (engine_trace again = engine_trace o.engine)

(* Crash at storage operation [k] while re-driving [entries], then recover
   from the byte image and check the crash-consistency contract. *)
let crash_once ~label ~plan ~config program entries ref_trace ref_dump =
  let sim = Sim.create ~plan () in
  let engine = Engine.load program in
  let applied = ref 0 in
  (try
     Engine.journal_start ~config ~storage:(Sim.storage sim) engine "j";
     List.iter
       (fun e ->
         Engine.apply_entry ~aggregate engine e;
         incr applied)
       entries
   with Storage.Crashed -> ());
  if not (Sim.crashed sim) then
    Alcotest.failf "%s: schedule ended before the planned crash" label;
  let image = Sim.after_crash sim in
  match Engine.recover ~aggregate ~config ~storage:(Sim.storage image) "j" with
  | exception Journal.Error (Journal.No_segments _ | Journal.No_valid_base _) ->
      (* Legitimate only when the crash predates the genesis fsync — i.e.
         before any entry was acknowledged. *)
      Alcotest.(check int) (label ^ ": lost journals predate any append") 0 !applied
  | recovered, _ ->
      Alcotest.(check bool)
        (label ^ ": recovered trace is a prefix of the original")
        true
        (is_prefix (engine_trace recovered) ref_trace);
      let have = List.length (Engine.journal_entries recovered) in
      (* fsync Always: every entry whose append returned is durable. *)
      if config.Journal.fsync = Journal.Always then
        Alcotest.(check bool) (label ^ ": no acknowledged entry lost") true
          (have >= !applied);
      (* Re-drive the lost tail: the resumed engine must be byte-identical
         to the campaign that never crashed. *)
      List.iter (Engine.apply_entry ~aggregate recovered) (drop_n have entries);
      Alcotest.(check bool) (label ^ ": re-driven trace identical") true
        (engine_trace recovered = ref_trace);
      Alcotest.(check bool) (label ^ ": re-driven journal byte-identical") true
        (Engine.journal_dump recovered = ref_dump)

let test_crash_point_sweep () =
  let o = Lazy.force reference in
  let entries = Engine.journal_entries o.engine in
  let ref_trace = engine_trace o.engine in
  let ref_dump = Engine.journal_dump o.engine in
  let program = campaign_program () in
  (* Count the fault-free schedule's storage operations; every one of them
     is a crash point. *)
  let sim0 = Sim.create () in
  let engine0 = replay ~config:jcfg ~storage:(Sim.storage sim0) program entries in
  Journal.close (Option.get (Engine.durable_journal engine0));
  let total = Sim.ops sim0 in
  Alcotest.(check bool) "a schedule worth sweeping" true (total > 50);
  (* What the crash leaves of the in-flight file rotates through the tail
     modes, so torn and garbage tails are exercised at many offsets. *)
  let tails = [| Sim.Drop_unsynced; Sim.Torn 3; Sim.Garbage 4 |] in
  let tail_name = function
    | Sim.Drop_unsynced -> "drop"
    | Sim.Torn n -> Printf.sprintf "torn%d" n
    | Sim.Garbage n -> Printf.sprintf "garbage%d" n
  in
  for k = 1 to total do
    let tail = tails.(k mod Array.length tails) in
    crash_once
      ~label:(Printf.sprintf "%s@op%d/%d" (tail_name tail) k total)
      ~plan:{ Sim.default_plan with crash_at_op = Some k; tail }
      ~config:jcfg program entries ref_trace ref_dump
  done

let test_fsync_policy_matrix () =
  let o = Lazy.force reference in
  let entries = Engine.journal_entries o.engine in
  let ref_trace = engine_trace o.engine in
  let program = campaign_program () in
  List.iter
    (fun fsync ->
      let config = { jcfg with Journal.fsync } in
      (* Clean close: every policy recovers the full campaign. *)
      let sim = Sim.create () in
      let engine = replay ~config ~storage:(Sim.storage sim) program entries in
      Journal.close (Option.get (Engine.durable_journal engine));
      let total = Sim.ops sim in
      let recovered, _ =
        Engine.recover ~aggregate ~config ~storage:(Sim.storage sim) "j"
      in
      Alcotest.(check bool) "clean close recovers fully under any policy" true
        (engine_trace recovered = ref_trace);
      (* A mid-campaign crash: lazier policies may lose a longer suffix,
         but what survives is always a valid prefix that re-drives to the
         identical end state. *)
      crash_once
        ~label:
          (Printf.sprintf "policy %s + crash"
             (match fsync with
             | Journal.Always -> "always"
             | Journal.Every_n n -> Printf.sprintf "every-%d" n
             | Journal.Never -> "never"))
        ~plan:{ Sim.default_plan with crash_at_op = Some (2 * total / 3) }
        ~config program entries ref_trace
        (Engine.journal_dump o.engine))
    [ Journal.Always; Journal.Every_n 3; Journal.Never ]

let test_enospc_mid_record () =
  let o = Lazy.force reference in
  let entries = Engine.journal_entries o.engine in
  let ref_trace = engine_trace o.engine in
  let ref_dump = Engine.journal_dump o.engine in
  let program = campaign_program () in
  List.iter
    (fun budget ->
      let label = Printf.sprintf "enospc@%dB" budget in
      let plan = { Sim.default_plan with no_space_after = Some budget } in
      let sim = Sim.create ~plan () in
      let engine = Engine.load program in
      let applied = ref 0 in
      let tripped =
        try
          Engine.journal_start ~config:jcfg ~storage:(Sim.storage sim) engine "j";
          List.iter
            (fun e ->
              Engine.apply_entry ~aggregate engine e;
              incr applied)
            entries;
          false
        with Storage.No_space -> true
      in
      Alcotest.(check bool) (label ^ ": budget trips mid-campaign") true tripped;
      (* The process survives ENOSPC; once space is back (the copy lifts
         the budget) recovery truncates the short write and resumes. *)
      let image = Sim.copy sim in
      match Engine.recover ~aggregate ~config:jcfg ~storage:(Sim.storage image) "j" with
      | exception Journal.Error (Journal.No_segments _ | Journal.No_valid_base _) ->
          Alcotest.(check int) (label ^ ": lost journals predate any append") 0 !applied
      | recovered, _ ->
          Alcotest.(check bool) (label ^ ": prefix survives") true
            (is_prefix (engine_trace recovered) ref_trace);
          let have = List.length (Engine.journal_entries recovered) in
          List.iter (Engine.apply_entry ~aggregate recovered) (drop_n have entries);
          Alcotest.(check bool) (label ^ ": re-driven trace identical") true
            (engine_trace recovered = ref_trace);
          Alcotest.(check bool) (label ^ ": re-driven journal byte-identical") true
            (Engine.journal_dump recovered = ref_dump))
    [ 700; 2500; 9000 ]

(* --- End to end: campaigns over faulty storage ------------------------------ *)

let test_runner_storage_fault_profiles () =
  List.iter
    (fun (name, profile) ->
      let o =
        Tweetpecker.Runner.run ~seed:13 ~corpus:(Lazy.force corpus)
          ~storage_faults:profile ~quorum:2 variant
      in
      Alcotest.(check (float 0.0001))
        (name ^ ": campaign completes despite the storage") 1.0
        (Tweetpecker.Runner.completion o);
      if List.exists (function Crowd.Faults.Storage_crash _ -> true | _ -> false) profile
      then
        Alcotest.(check bool) (name ^ ": the crash was survived, not avoided") true
          (o.recoveries <> []))
    Crowd.Faults.storage_profiles

let test_runner_composes_worker_and_storage_faults () =
  (* The ISSUE's headline composition: unreliable workers and unreliable
     storage in one seeded run. *)
  let o =
    Tweetpecker.Runner.run ~seed:13 ~corpus:(Lazy.force corpus)
      ~faults:Crowd.Faults.garble ~lease:Lease.default_config ~quorum:2
      ~storage_faults:Crowd.Faults.torn variant
  in
  (* Garbled answers may dead-letter a task via the rejection budget, so
     (as in the robustness fault matrix) demand termination, not 100%. *)
  Alcotest.(check bool) "terminates" true
    (o.sim.stop_reason = `Stopped || o.sim.stop_reason = `Stalled);
  Alcotest.(check bool) "most of the campaign completed" true
    (Tweetpecker.Runner.completion o >= 0.75);
  Alcotest.(check bool) "recovered at least once" true (o.recoveries <> []);
  List.iter
    (fun (r : Engine.recovery_stats) ->
      Alcotest.(check bool) "replayed a durable prefix" true (r.records_replayed >= 0))
    o.recoveries

let suite =
  [ ( "durability.journal",
      [ Alcotest.test_case "create/append/recover round-trip" `Quick
          test_journal_roundtrip;
        Alcotest.test_case "segment rotation" `Quick test_journal_rotation;
        Alcotest.test_case "compaction folds state into a snapshot" `Quick
          test_journal_compaction;
        Alcotest.test_case "torn tail truncated; recovery idempotent" `Quick
          test_torn_tail_truncated_then_idempotent;
        Alcotest.test_case "garbage tail truncated" `Quick test_garbage_tail_truncated;
        Alcotest.test_case "edge cases: empty, version skew, bad kind, gap" `Quick
          test_recover_edge_cases ] );
    ( "durability.snapshot",
      [ Alcotest.test_case "v2 header: truncation and checksum errors are typed"
          `Quick test_snapshot_header_errors ] );
    ( "durability.crash-points",
      [ Alcotest.test_case "journal replay + clean recovery baseline" `Quick
          test_baseline_replay_and_clean_recover;
        Alcotest.test_case "crash at every storage op recovers a prefix" `Slow
          test_crash_point_sweep;
        Alcotest.test_case "fsync policy matrix" `Slow test_fsync_policy_matrix;
        Alcotest.test_case "ENOSPC mid-record" `Quick test_enospc_mid_record ] );
    ( "durability.campaigns",
      [ Alcotest.test_case "storage fault profiles survive end to end" `Slow
          test_runner_storage_fault_profiles;
        Alcotest.test_case "worker and storage faults compose" `Quick
          test_runner_composes_worker_and_storage_faults ] ) ]

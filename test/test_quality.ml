(* Tests for statistics-based aggregation (majority voting and the
   one-coin Dawid-Skene EM model) and its comparison against the paper's
   first-agreement mechanism. *)

let v item worker value = { Quality.Aggregate.item; worker; value }

let test_majority_basics () =
  let votes =
    [ v "i1" "a" "x"; v "i1" "b" "x"; v "i1" "c" "y";
      v "i2" "a" "y"; v "i2" "b" "z"; v "i2" "c" "z" ]
  in
  Alcotest.(check (list (pair string string))) "plurality per item"
    [ ("i1", "x"); ("i2", "z") ]
    (Quality.Aggregate.majority votes)

let test_majority_tie_breaks_earliest () =
  let votes = [ v "i" "a" "x"; v "i" "b" "y" ] in
  Alcotest.(check (list (pair string string))) "earliest-voted value wins ties"
    [ ("i", "x") ]
    (Quality.Aggregate.majority votes)

let test_em_agrees_with_majority_on_clean_data () =
  (* With uniformly reliable voters, EM and plurality coincide. *)
  let votes =
    List.concat_map
      (fun i ->
        let item = "i" ^ string_of_int i in
        [ v item "a" "x"; v item "b" "x"; v item "c" "y" ])
      [ 1; 2; 3; 4 ]
  in
  let em = Quality.Aggregate.em votes in
  Alcotest.(check bool) "same consensus" true
    (em.consensus = Quality.Aggregate.majority votes)

let test_em_downweights_bad_worker () =
  (* Items 1..8: workers a and b always vote the truth, worker c always
     votes wrong. On item 9 only c and a disagree with b absent... build a
     case where plurality is 1-1-1 but EM breaks toward the reliable
     worker. *)
  let truth_items = List.init 8 (fun i -> "t" ^ string_of_int i) in
  let clean =
    List.concat_map
      (fun item -> [ v item "good1" "x"; v item "good2" "x"; v item "bad" "y" ])
      truth_items
  in
  (* Disputed item: one vote each from a reliable and an unreliable
     worker. *)
  let disputed = [ v "d" "good1" "right"; v "d" "bad" "wrong" ] in
  let em = Quality.Aggregate.em (clean @ disputed) in
  Alcotest.(check (option string)) "EM sides with the reliable worker"
    (Some "right")
    (List.assoc_opt "d" em.consensus);
  let acc w = List.assoc w em.worker_accuracy in
  Alcotest.(check bool) "reliability separated" true (acc "good1" > 0.8 && acc "bad" < 0.3);
  Alcotest.(check bool) "converged" true (em.iterations < 100)

let test_em_posteriors_normalised () =
  let votes = [ v "i" "a" "x"; v "i" "b" "y"; v "i" "c" "x" ] in
  let em = Quality.Aggregate.em votes in
  List.iter
    (fun (_, post) ->
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 post in
      Alcotest.(check bool) "sums to 1" true (abs_float (total -. 1.0) < 1e-9);
      List.iter (fun (_, p) -> Alcotest.(check bool) "in [0,1]" true (p >= 0.0 && p <= 1.0)) post)
    em.posteriors

let test_accuracy_against () =
  let truth = function "i1" -> Some "x" | "i2" -> Some "y" | _ -> None in
  Alcotest.(check bool) "half right" true
    (Quality.Aggregate.accuracy_against ~truth [ ("i1", "x"); ("i2", "z"); ("i3", "q") ]
    = 0.5);
  Alcotest.(check bool) "empty comparable" true
    (Quality.Aggregate.accuracy_against ~truth [ ("i3", "q") ] = 0.0)

(* --- Integration: the three methods on a TweetPecker run ------------------- *)

let test_comparison_on_mixed_crowd () =
  (* Three diligent + two sloppy workers: EM should match or beat plain
     majority, and both statistics-based methods should be in the same
     league as the paper's agreement mechanism. *)
  let corpus = Tweets.Generator.generate ~seed:21 60 in
  let workers =
    Crowd.Worker.crowd Crowd.Worker.diligent 3
    @ [ Crowd.Worker.sloppy "s1"; Crowd.Worker.sloppy "s2" ]
  in
  let o = Tweetpecker.Runner.run ~corpus ~workers Tweetpecker.Programs.VEI in
  let c = Tweetpecker.Aggregation.compare_methods o in
  Alcotest.(check bool) "all methods above chance" true
    (c.agreement_accuracy > 0.5 && c.majority_accuracy > 0.5 && c.em_accuracy > 0.5);
  (* With only five votes per item the one-coin model cannot beat plurality
     by much; it must at least stay in the same league. *)
  Alcotest.(check bool) "EM in the same league as majority" true
    (c.em_accuracy >= c.majority_accuracy -. 0.05);
  (* EM must notice that the sloppy workers are less reliable. *)
  let est w = List.assoc w c.estimated_worker_accuracy in
  let avg_diligent = (est "w1" +. est "w2" +. est "w3") /. 3.0 in
  let avg_sloppy = (est "s1" +. est "s2") /. 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "diligent %.2f > sloppy %.2f" avg_diligent avg_sloppy)
    true (avg_diligent > avg_sloppy)

(* --- EM hardening: planted truth, determinism ----------------------------- *)

let labels = [| "cat"; "dog"; "bird" |]

(* 24 items with a planted truth. Reliable workers r1..r3 answer the truth
   90% of the time and a worker-specific junk value otherwise; sloppy
   workers s1/s2 always vote the same item-independent junk value, so a
   pair of correlated bad votes competes with the reliable plurality. *)
let planted_votes seed =
  let rng = Random.State.make [| 0x3a7; seed |] in
  let items = List.init 24 (fun i -> "i" ^ string_of_int i) in
  let truth_tbl = Hashtbl.create 32 in
  List.iter
    (fun it -> Hashtbl.replace truth_tbl it labels.(Random.State.int rng 3))
    items;
  let votes =
    List.concat_map
      (fun it ->
        let t = Hashtbl.find truth_tbl it in
        let reliable w =
          if Random.State.float rng 1.0 < 0.9 then v it w t
          else v it w ("oops-" ^ w)
        in
        [ reliable "r1"; reliable "r2"; reliable "r3";
          v it "s1" "spam"; v it "s2" "spam" ])
      items
  in
  (votes, fun it -> Hashtbl.find_opt truth_tbl it)

let test_em_at_least_majority_qcheck =
  QCheck.Test.make ~name:"EM >= majority on planted truth" ~count:30
    QCheck.(int_bound 9999)
    (fun seed ->
      let votes, truth = planted_votes seed in
      let em = Quality.Aggregate.em votes in
      let em_acc = Quality.Aggregate.accuracy_against ~truth em.consensus in
      let maj_acc =
        Quality.Aggregate.accuracy_against ~truth (Quality.Aggregate.majority votes)
      in
      em_acc +. 1e-9 >= maj_acc)

let test_em_strictly_beats_outvoted_majority () =
  (* 20 clean items teach EM who is reliable; on 4 disputed items the two
     sloppy workers outvote the lone reliable one, so plurality is wrong
     there while EM recovers every planted label. *)
  let clean =
    List.concat_map
      (fun i ->
        let item = "c" ^ string_of_int i in
        [ v item "r1" "t"; v item "r2" "t"; v item "r3" "t";
          v item "s1" "spam"; v item "s2" "spam" ])
      (List.init 20 (fun i -> i))
  in
  let disputed =
    List.concat_map
      (fun i ->
        let item = "d" ^ string_of_int i in
        [ v item "r1" "t"; v item "s1" "spam"; v item "s2" "spam" ])
      (List.init 4 (fun i -> i))
  in
  let votes = clean @ disputed in
  let truth _ = Some "t" in
  let em = Quality.Aggregate.em votes in
  let em_acc = Quality.Aggregate.accuracy_against ~truth em.consensus in
  let maj_acc =
    Quality.Aggregate.accuracy_against ~truth (Quality.Aggregate.majority votes)
  in
  Alcotest.(check bool)
    (Printf.sprintf "EM %.2f > majority %.2f" em_acc maj_acc)
    true (em_acc > maj_acc);
  Alcotest.(check (float 1e-9)) "EM recovers all planted labels" 1.0 em_acc

let test_em_deterministic () =
  let votes, _ = planted_votes 11 in
  let a = Quality.Aggregate.em votes in
  let b = Quality.Aggregate.em votes in
  Alcotest.(check bool) "identical em_result on identical votes" true (a = b)

(* --- Quality.Model --------------------------------------------------------- *)

let test_model_default_prior () =
  let m = Quality.Model.create () in
  Alcotest.(check (float 1e-9)) "fresh worker at the Beta(4,1) prior mean" 0.8
    (Quality.Model.reliability m "w");
  Alcotest.(check int) "no observations yet" 0 (Quality.Model.observations m "w");
  Alcotest.(check (list string)) "no observed workers" [] (Quality.Model.workers m)

let test_model_observe () =
  let m = Quality.Model.create () in
  Quality.Model.observe m "w" ~agreed:true;
  Alcotest.(check (float 1e-9)) "agreement lifts the mean" (5.0 /. 6.0)
    (Quality.Model.reliability m "w");
  Quality.Model.observe m "w" ~agreed:false;
  Alcotest.(check (float 1e-9)) "disagreement drags it down" (5.0 /. 7.0)
    (Quality.Model.reliability m "w");
  Alcotest.(check int) "both events counted" 2 (Quality.Model.observations m "w");
  Alcotest.(check (list string)) "worker now listed" [ "w" ]
    (Quality.Model.workers m);
  (* Under the optimistic prior a disagreement moves the estimate further
     than an agreement does — sloppy workers sink fast. *)
  let up = Quality.Model.create () and down = Quality.Model.create () in
  Quality.Model.observe up "w" ~agreed:true;
  Quality.Model.observe down "w" ~agreed:false;
  Alcotest.(check bool) "disagreement is the bigger step" true
    (0.8 -. Quality.Model.reliability down "w"
    > Quality.Model.reliability up "w" -. 0.8)

let test_model_roundtrip () =
  let m = Quality.Model.create () in
  Quality.Model.observe m "b" ~agreed:true;
  Quality.Model.observe m "a" ~agreed:false;
  Quality.Model.observe m "a" ~agreed:true;
  let l = Quality.Model.to_assoc m in
  let m' = Quality.Model.of_assoc l in
  Alcotest.(check bool) "to_assoc (of_assoc l) = l" true
    (Quality.Model.to_assoc m' = l);
  List.iter
    (fun w ->
      Alcotest.(check (float 1e-9)) ("reliability survives: " ^ w)
        (Quality.Model.reliability m w)
        (Quality.Model.reliability m' w);
      Alcotest.(check int) ("observations survive: " ^ w)
        (Quality.Model.observations m w)
        (Quality.Model.observations m' w))
    (Quality.Model.workers m)

let test_model_rejects_bad_priors () =
  let bad f =
    match f () with
    | (_ : Quality.Model.t) -> Alcotest.fail "non-positive prior must be refused"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> Quality.Model.create ~prior_alpha:0.0 ());
  bad (fun () -> Quality.Model.create ~prior_beta:(-1.0) ())

(* --- Quality.Decide -------------------------------------------------------- *)

let test_decide_default_config () =
  let c = Quality.Decide.default_config in
  Alcotest.(check bool) "tau 0.9, 2..5 votes" true
    (c.Quality.Decide.tau = 0.9 && c.min_votes = 2 && c.max_votes = 5)

let test_decide_posteriors () =
  (* One fresh (0.8) vote: the implicit unseen alternative keeps 0.2. *)
  (match Quality.Decide.posteriors [ ("a", 0.8) ] with
  | [ ("a", p) ] -> Alcotest.(check (float 1e-9)) "single vote" 0.8 p
  | _ -> Alcotest.fail "one candidate expected");
  (* Two agreeing fresh votes clear 0.9: 0.64 / (0.64 + 0.04). *)
  (match Quality.Decide.posteriors [ ("a", 0.8); ("a", 0.8) ] with
  | [ ("a", p) ] ->
      Alcotest.(check (float 1e-9)) "agreeing pair" (0.64 /. 0.68) p
  | _ -> Alcotest.fail "one candidate expected");
  Alcotest.(check bool) "no votes, no candidates" true
    (Quality.Decide.posteriors [] = [])

let test_decide_tie_breaks_earliest () =
  match Quality.Decide.posteriors [ ("x", 0.7); ("y", 0.7) ] with
  | [ (c1, p1); (_, p2) ] ->
      Alcotest.(check (float 1e-9)) "exact tie" p1 p2;
      Alcotest.(check string) "earliest-voted candidate leads" "x" c1
  | _ -> Alcotest.fail "two candidates expected"

let test_decide_clamps_reliability () =
  (* A self-declared perfect worker cannot force certainty... *)
  (match Quality.Decide.top (Quality.Decide.posteriors [ ("a", 1.0) ]) with
  | Some ("a", p) -> Alcotest.(check (float 1e-9)) "clamped to 0.95" 0.95 p
  | _ -> Alcotest.fail "candidate expected");
  (* ...and opposing extreme reliabilities stay finite and ordered. *)
  match Quality.Decide.top (Quality.Decide.posteriors [ ("a", 1.0); ("b", 0.0) ]) with
  | Some (c, p) ->
      Alcotest.(check string) "reliable voter leads" "a" c;
      Alcotest.(check bool) "finite, below 1" true (Float.is_finite p && p < 1.0)
  | None -> Alcotest.fail "candidates expected"

let test_decide_stopping_rule () =
  let open Quality.Decide in
  (* Below min_votes nothing resolves, however confident the lone voter. *)
  (match decide default_config [ ("a", 0.95) ] with
  | Ask_more -> ()
  | _ -> Alcotest.fail "a single vote must not resolve");
  (* Two agreeing fresh votes reach tau. *)
  (match decide default_config [ ("a", 0.8); ("a", 0.8) ] with
  | Resolve ("a", p) -> Alcotest.(check bool) "p >= tau" true (p >= 0.9)
  | _ -> Alcotest.fail "agreeing pair must resolve");
  (* Disagreement below tau keeps asking while votes remain. *)
  (match decide default_config [ ("a", 0.6); ("b", 0.8) ] with
  | Ask_more -> ()
  | _ -> Alcotest.fail "unsettled task must ask for more");
  (* The cap escalates, reporting the best posterior achieved. *)
  match decide { tau = 0.99; min_votes = 2; max_votes = 2 } [ ("a", 0.6); ("b", 0.6) ] with
  | Escalate p -> Alcotest.(check bool) "0 < p < tau" true (p > 0.0 && p < 0.99)
  | _ -> Alcotest.fail "vote cap must escalate"

let test_decide_uncertainty () =
  let u0 = Quality.Decide.uncertainty [] in
  let u1 = Quality.Decide.uncertainty [ ("a", 0.8) ] in
  let u2 = Quality.Decide.uncertainty [ ("a", 0.8); ("a", 0.8) ] in
  Alcotest.(check (float 1e-9)) "unvoted task is maximally uncertain" 1.0 u0;
  Alcotest.(check (float 1e-9)) "one vote" 0.2 u1;
  Alcotest.(check bool) "agreement settles the task" true (u2 < u1 && u1 < u0)

(* --- Quality.Router --------------------------------------------------------- *)

let test_router_floor () =
  let r = Quality.Router.default_config in
  Alcotest.(check bool) "fresh prior qualifies" true
    (Quality.Router.eligible r ~reliability:0.8);
  Alcotest.(check bool) "benched below the floor" false
    (Quality.Router.eligible r ~reliability:0.2);
  Alcotest.(check bool) "floor 0 disables screening" true
    (Quality.Router.eligible { Quality.Router.floor = 0.0 } ~reliability:0.0)

let test_router_pick () =
  Alcotest.(check (option string)) "empty pool" None (Quality.Router.pick []);
  Alcotest.(check (option string)) "highest uncertainty wins"
    (Some "b")
    (Quality.Router.pick [ ("a", 0.3); ("b", 0.9); ("c", 0.9) ]);
  Alcotest.(check (option string)) "ineligible worker routed away" None
    (Quality.Router.route Quality.Router.default_config ~reliability:0.2
       ~tasks:[ ("a", 1.0) ]);
  Alcotest.(check (option string)) "eligible worker gets the open task"
    (Some "b")
    (Quality.Router.route Quality.Router.default_config ~reliability:0.8
       ~tasks:[ ("a", 0.1); ("b", 0.5) ])

(* --- Engine integration: the adaptive quorum policy ------------------------ *)

module E = Cylog.Engine

let vs s = Reldb.Value.String s

let adaptive_engine ?(tau = 0.9) ?(min_votes = 2) ?(max_votes = 4) () =
  let program =
    Cylog.Parser.parse_exn
      {|
      rules:
        Seed(s:1);
        Ask: Poll(q:1, ans)/open <- Seed(s);
      |}
  in
  let engine = E.load program in
  E.set_quorum_policy engine (E.Adaptive { tau; min_votes; max_votes });
  ignore (E.run engine);
  let o = match E.pending engine with [ o ] -> o | _ -> Alcotest.fail "one task" in
  (engine, o)

let vote engine (o : E.open_tuple) w value =
  match E.supply engine o.E.id ~worker:(vs w) [ ("ans", vs value) ] with
  | Ok e -> e.E.effects
  | Error e -> Alcotest.failf "vote rejected: %s" (E.reject_to_string e)

let test_adaptive_early_stop () =
  let engine, o = adaptive_engine () in
  (match vote engine o "w1" "a" with
  | [ E.Vote_recorded (_, 1) ] -> ()
  | _ -> Alcotest.fail "first vote banks; min_votes gates resolution");
  (match vote engine o "w2" "a" with
  | [ E.Vote_recorded (_, 2);
      E.Adaptive_resolved { posterior_pct; escalated = false; _ };
      E.Inserted ("Poll", t) ] ->
      Alcotest.(check bool) "agreed value inserted" true
        (Reldb.Value.equal (Reldb.Tuple.get_or_null t "ans") (vs "a"));
      Alcotest.(check bool) "posterior >= tau" true (posterior_pct >= 90)
  | _ -> Alcotest.fail "two agreeing fresh workers must clear tau = 0.9");
  Alcotest.(check bool) "task left the pool" true
    (E.find_open engine o.E.id = None);
  (* Both voters agreed with the outcome, so their reputation rises. *)
  Alcotest.(check bool) "reliability above the prior mean" true
    (E.worker_reliability engine (vs "w1") > 0.8
    && E.worker_reliability engine (vs "w2") > 0.8)

let test_adaptive_escalates_at_cap () =
  let engine, o = adaptive_engine () in
  ignore (vote engine o "w1" "a");
  ignore (vote engine o "w2" "b");
  (match vote engine o "w3" "a" with
  | [ E.Vote_recorded (_, 3) ] -> ()
  | _ -> Alcotest.fail "confidence not reached: keep asking past min_votes");
  (match vote engine o "w4" "c" with
  | [ E.Vote_recorded (_, 4);
      E.Adaptive_resolved { escalated = true; _ };
      E.Inserted ("Poll", t) ] ->
      Alcotest.(check bool) "fallback plurality decides" true
        (Reldb.Value.equal (Reldb.Tuple.get_or_null t "ans") (vs "a"))
  | _ -> Alcotest.fail "vote cap must escalate to the aggregate");
  (* Escalation still scores reputations against the chosen value. *)
  Alcotest.(check bool) "dissenters sink below the prior" true
    (E.worker_reliability engine (vs "w2") < 0.8
    && E.worker_reliability engine (vs "w1") > 0.8)

let test_adaptive_min_votes_gate () =
  let engine, o = adaptive_engine ~min_votes:3 () in
  ignore (vote engine o "w1" "a");
  (match vote engine o "w2" "a" with
  | [ E.Vote_recorded (_, 2) ] -> ()
  | _ -> Alcotest.fail "a confident pair must still wait for min_votes = 3");
  match vote engine o "w3" "a" with
  | E.Vote_recorded (_, 3) :: E.Adaptive_resolved { escalated = false; _ } :: _ -> ()
  | _ -> Alcotest.fail "third agreeing vote resolves"

let test_adaptive_existence () =
  let program =
    Cylog.Parser.parse_exn
      {|
      rules:
        Cand(tw:1, v:"sunny");
        Ask: Agreed(tw:1, v:"sunny")/open <- Cand(tw, v);
      |}
  in
  let engine = E.load program in
  E.set_quorum_policy engine (E.Adaptive { tau = 0.9; min_votes = 2; max_votes = 4 });
  ignore (E.run engine);
  let o = match E.pending engine with [ o ] -> o | _ -> Alcotest.fail "one task" in
  Alcotest.(check bool) "existence question" true o.E.existence;
  let vote w yes =
    match E.answer_existence engine o.E.id ~worker:(vs w) yes with
    | Ok e -> e.E.effects
    | Error e -> Alcotest.failf "vote rejected: %s" (E.reject_to_string e)
  in
  (match vote "w1" true with
  | [ E.Vote_recorded (_, 1) ] -> ()
  | _ -> Alcotest.fail "first aye banks");
  (match vote "w2" true with
  | E.Vote_recorded (_, 2) :: E.Adaptive_resolved { escalated = false; _ } :: _ -> ()
  | _ -> Alcotest.fail "two fresh ayes must resolve the existence question");
  match Reldb.Database.find (E.database engine) "Agreed" with
  | Some rel -> Alcotest.(check int) "tuple admitted" 1 (Reldb.Relation.cardinal rel)
  | None -> Alcotest.fail "Agreed should exist"

let suite =
  [ ( "quality.aggregate",
      [ Alcotest.test_case "majority basics" `Quick test_majority_basics;
        Alcotest.test_case "majority tie break" `Quick test_majority_tie_breaks_earliest;
        Alcotest.test_case "EM = majority on clean data" `Quick
          test_em_agrees_with_majority_on_clean_data;
        Alcotest.test_case "EM downweights bad workers" `Quick
          test_em_downweights_bad_worker;
        Alcotest.test_case "EM posteriors normalised" `Quick test_em_posteriors_normalised;
        Alcotest.test_case "accuracy_against" `Quick test_accuracy_against;
        QCheck_alcotest.to_alcotest test_em_at_least_majority_qcheck;
        Alcotest.test_case "EM beats an outvoted majority" `Quick
          test_em_strictly_beats_outvoted_majority;
        Alcotest.test_case "EM is deterministic" `Quick test_em_deterministic ] );
    ( "quality.model",
      [ Alcotest.test_case "default prior mean 0.8" `Quick test_model_default_prior;
        Alcotest.test_case "observe moves the posterior" `Quick test_model_observe;
        Alcotest.test_case "assoc roundtrip" `Quick test_model_roundtrip;
        Alcotest.test_case "non-positive priors refused" `Quick
          test_model_rejects_bad_priors ] );
    ( "quality.decide",
      [ Alcotest.test_case "default config" `Quick test_decide_default_config;
        Alcotest.test_case "posteriors" `Quick test_decide_posteriors;
        Alcotest.test_case "ties break earliest" `Quick test_decide_tie_breaks_earliest;
        Alcotest.test_case "reliabilities clamped" `Quick test_decide_clamps_reliability;
        Alcotest.test_case "stopping rule" `Quick test_decide_stopping_rule;
        Alcotest.test_case "uncertainty" `Quick test_decide_uncertainty ] );
    ( "quality.router",
      [ Alcotest.test_case "reliability floor" `Quick test_router_floor;
        Alcotest.test_case "uncertainty sampling" `Quick test_router_pick ] );
    ( "quality.adaptive-quorum",
      [ Alcotest.test_case "confident agreement stops early" `Quick
          test_adaptive_early_stop;
        Alcotest.test_case "vote cap escalates to the aggregate" `Quick
          test_adaptive_escalates_at_cap;
        Alcotest.test_case "min_votes gates resolution" `Quick
          test_adaptive_min_votes_gate;
        Alcotest.test_case "existence questions stop early" `Quick
          test_adaptive_existence ] );
    ( "quality.integration",
      [ Alcotest.test_case "three methods on a mixed crowd" `Quick
          test_comparison_on_mixed_crowd ] ) ]

(* Tests for the CyLog language: lexer, parser, pretty-printer, evaluation,
   the engine (open predicates, conflict resolution, update/delete, game
   aspects) and the formal semantics operator. *)

open Cylog

let v_int i = Reldb.Value.Int i
let v_str s = Reldb.Value.String s

(* --- Lexer ------------------------------------------------------------- *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "Tweet(tw) <- T(x:1), p1 != p2; // comment" in
  let kinds = List.map (fun { Lexer.token; _ } -> token) toks in
  Alcotest.(check bool) "shape" true
    (kinds
    = [ Lexer.UIDENT "Tweet"; Lexer.LPAREN; Lexer.IDENT "tw"; Lexer.RPAREN;
        Lexer.ARROW; Lexer.UIDENT "T"; Lexer.LPAREN; Lexer.IDENT "x";
        Lexer.COLON; Lexer.INT 1; Lexer.RPAREN; Lexer.COMMA; Lexer.IDENT "p1";
        Lexer.NEQ; Lexer.IDENT "p2"; Lexer.SEMI; Lexer.EOF ])

let test_lexer_dotted_label () =
  match Lexer.tokenize "VE2.1:" with
  | [ { Lexer.token = Lexer.UIDENT "VE2.1"; _ }; { Lexer.token = Lexer.COLON; _ };
      { Lexer.token = Lexer.EOF; _ } ] ->
      ()
  | _ -> Alcotest.fail "dotted label should lex as one name"

let test_lexer_bang_shorthand () =
  (* The paper writes p1!p2 for inequality. *)
  let toks = Lexer.tokenize "p1!p2" in
  Alcotest.(check int) "three tokens + eof" 4 (List.length toks);
  match toks with
  | _ :: { Lexer.token = Lexer.NEQ; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected NEQ"

let test_lexer_comments_and_strings () =
  let toks = Lexer.tokenize "/* block \n comment */ R(x:\"a\\\"b\\n\")" in
  match toks with
  | { Lexer.token = Lexer.UIDENT "R"; _ } :: _ :: _ :: _
    :: { Lexer.token = Lexer.STRING s; _ } :: _ ->
      Alcotest.(check string) "escapes" "a\"b\n" s
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try ignore (Lexer.tokenize "R(x) @ y"); false with Lexer.Error _ -> true);
  Alcotest.(check bool) "unterminated string" true
    (try ignore (Lexer.tokenize "R(x:\"abc)"); false with Lexer.Error _ -> true)

(* --- Parser ------------------------------------------------------------ *)

let test_parse_figure3 () =
  let p =
    Parser.parse_exn
      {|
      rules:
        Pre1: TweetOriginal(tw:"It rains in London", loc:"London");
        Pre2: ValidCity(cname:"London");
        Pre3: Tweet(tw) <- TweetOriginal(tw, loc), ValidCity(cname:loc);
        Pre4: Worker(pid:1, name:"Shun");
        Pre5: Worker(pid:2, name:"Ken");
        VE1: Input(tw, attr:"weather", value, p)/open[p] <- Tweet(tw), Worker(pid:p);
        VE2: Output(tw, weather:value) <- Input(tw, attr:"weather", value, p:p1),
                                          Input(tw, attr:"weather", value, p:p2), p1 != p2;
      |}
  in
  Alcotest.(check int) "7 statements" 7 (List.length p.Ast.statements);
  let ve1 = List.nth p.Ast.statements 5 in
  Alcotest.(check (option string)) "label" (Some "VE1") ve1.Ast.label;
  Alcotest.(check bool) "open head" true (Ast.statement_is_open ve1);
  let facts = List.filter Ast.statement_is_fact p.Ast.statements in
  Alcotest.(check int) "4 facts" 4 (List.length facts)

let test_parse_block_style () =
  (* Pre3 in block style, from Section 4. *)
  let p =
    Parser.parse_exn
      {|
      rules:
        TweetOriginal(tw, loc) {
          ValidCity(cname:loc) {
            Tweet(tw);
          }
        }
      |}
  in
  match p.Ast.statements with
  | [ { Ast.heads = [ { Ast.head = Ast.Head_atom { atom; _ }; _ } ]; body; _ } ] ->
      Alcotest.(check string) "head" "Tweet" atom.Ast.pred;
      Alcotest.(check int) "prefix length" 2 (List.length body)
  | _ -> Alcotest.fail "expected one desugared statement"

let test_parse_block_multi_statement () =
  (* P1 { P2; P3; } means two rules sharing the body P1. *)
  let p = Parser.parse_exn "rules: P(x) { Q(x); R(x); }" in
  Alcotest.(check int) "two rules" 2 (List.length p.Ast.statements);
  List.iter
    (fun (s : Ast.statement) ->
      Alcotest.(check int) "shared prefix" 1 (List.length s.Ast.body))
    p.Ast.statements

let test_parse_multi_head () =
  (* Comma-separated heads: one atomic multi-head rule (Figure 16). *)
  let p = Parser.parse_exn "rules: A(x)/update, B(x)/update <- C(x);" in
  match p.Ast.statements with
  | [ { Ast.heads = [ _; _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected one statement with two heads"

let test_parse_games_section () =
  let p =
    Parser.parse_exn
      {|
      games:
        game VEI(tw, attr) {
          path:
            VEI1: Path(player:p, action:["value", value]) <- Input(tw, attr, value, p);
          payoff:
            VEI2: Path(player:p1, action:["value", v]) {
              VEI2.1: Payoff[p1 += 1, p2 += 1] <- Path(player:p2, action:["value", v]), p1 != p2;
            }
        }
      |}
  in
  match p.Ast.games with
  | [ g ] ->
      Alcotest.(check string) "name" "VEI" g.Ast.game_name;
      Alcotest.(check (list string)) "params" [ "tw"; "attr" ] g.Ast.game_params;
      Alcotest.(check int) "one path rule" 1 (List.length g.Ast.path_rules);
      Alcotest.(check int) "one payoff rule" 1 (List.length g.Ast.payoff_rules);
      let payoff = List.hd g.Ast.payoff_rules in
      (match payoff.Ast.heads with
      | [ { Ast.head = Ast.Head_payoff [ ("p1", _); ("p2", _) ]; _ } ] -> ()
      | _ -> Alcotest.fail "payoff head shape");
      Alcotest.(check int) "payoff body: prefix + atom + cmp" 3
        (List.length payoff.Ast.body)
  | _ -> Alcotest.fail "expected one game"

let test_parse_schema_section () =
  let p =
    Parser.parse_exn
      "schema: Rules(rid key auto, cond, attr, value, p); Extracts(tw key, attr key, value key, rid);"
  in
  match p.Ast.schemas with
  | [ rules; extracts ] ->
      Alcotest.(check string) "name" "Rules" rules.Ast.rel_name;
      Alcotest.(check bool) "rid key+auto" true
        (List.mem ("rid", true, true) rules.Ast.rel_attrs);
      Alcotest.(check int) "extracts arity" 4 (List.length extracts.Ast.rel_attrs)
  | _ -> Alcotest.fail "expected two declarations"

let test_parse_views_skipped () =
  (* View bodies are raw: arbitrary markup never reaches the lexer. *)
  let p = Parser.parse_exn "views: view Anything { goes(here) @ $ 'raw' } rules: R(x:1);" in
  Alcotest.(check int) "rules parsed after views" 1 (List.length p.Ast.statements);
  Alcotest.(check int) "view extracted" 1 (List.length p.Ast.views)

let test_parse_errors_located () =
  match Parser.parse "rules: R(x) <- ;" with
  | Error e -> Alcotest.(check bool) "line recorded" true (e.Parser.line >= 1)
  | Ok _ -> Alcotest.fail "should not parse"

let test_parse_negation_and_builtin () =
  let stmts = Parser.parse_statements_exn
      "T(x) <- R(x), not U(x), matches(\"rain\", x), y = x + 1, y < 10;" in
  match stmts with
  | [ { Ast.body; _ } ] -> (
      match List.map (fun (l : Ast.literal) -> l.Ast.lit) body with
      | [ Ast.Pos _; Ast.Neg _; Ast.Call ("matches", _); Ast.Cmp _; Ast.Cmp _ ] -> ()
      | _ -> Alcotest.fail "body shape")
  | _ -> Alcotest.fail "body shape"

let test_pretty_roundtrip () =
  let src =
    {|
    schema:
      Extracts(tw key, attr key, value key, rid);
    rules:
      Pre1: TweetOriginal(tw:"It rains", loc:"London");
      VE1: Input(tw, attr:"weather", value, p)/open[p] <- Tweet(tw), Worker(pid:p);
      D1: T(x:1)/delete;
      U1: R(x:1, y)/update <- P(y), not Q(y);
    games:
      game G(tw) {
        path:
          P1: Path(player:p, action:[value]) <- Input(tw, value, p);
        payoff:
          P2: Payoff[p1 += 2] <- Path(player:p1, action:[v]);
      }
    |}
  in
  let p = Parser.parse_exn src in
  let printed = Pretty.program_to_string p in
  let p' = Parser.parse_exn printed in
  Alcotest.(check bool) "roundtrip equal" true
    (Ast.strip_program p = Ast.strip_program p')

(* --- Views section ------------------------------------------------------ *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec loop i = i + m <= n && (String.sub hay i m = needle || loop (i + 1)) in
  m = 0 || loop 0

let test_views_parsed () =
  let src =
    {|
    rules:
      Tweet(tw:"It rains in London");
      W(p:1);
      Ask: Input(tw, value, p)/open[p] <- Tweet(tw), W(p);

    views:
      view Input {
        <p>Tweet: {{tw}}</p>
        <input name="value" placeholder="it's a weather term"/>
      }
    |}
  in
  let p = Parser.parse_exn src in
  (match p.Ast.views with
  | [ v ] ->
      Alcotest.(check string) "name" "Input" v.Ast.view_name;
      Alcotest.(check bool) "raw markup preserved" true
        (contains v.Ast.template "<input name=\"value\"");
      Alcotest.(check bool) "apostrophe kept" true (contains v.Ast.template "it's")
  | _ -> Alcotest.fail "expected one view");
  (* The apostrophe in the template must not break the lexer. *)
  Alcotest.(check int) "rules still parsed" 3 (List.length p.Ast.statements)

let test_views_render_open () =
  let src =
    {|
    rules:
      Tweet(tw:"It rains in London");
      W(p:1);
      Ask: Input(tw, value, p)/open[p] <- Tweet(tw), W(p);
    views:
      view Input {
        Tweet: {{tw}} | your answer: {{value}}
      }
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  match Engine.pending engine with
  | [ o ] -> (
      match Engine.task_view engine o with
      | Some rendered ->
          Alcotest.(check bool) "bound attr substituted" true
            (contains rendered "It rains in London");
          Alcotest.(check bool) "open attr blanked" true (contains rendered "____");
          Alcotest.(check bool) "asks for value" true
            (contains rendered "please provide: value")
      | None -> Alcotest.fail "view should render")
  | _ -> Alcotest.fail "expected one open"

let test_views_multiple_sections () =
  let src = "views: view A { one } rules: R(x:1); views: view B { two }" in
  let p = Parser.parse_exn src in
  Alcotest.(check int) "both views" 2 (List.length p.Ast.views);
  Alcotest.(check int) "rule kept" 1 (List.length p.Ast.statements)

let test_views_errors_located () =
  match Parser.parse "views: view A { never closed" with
  | Error e -> Alcotest.(check bool) "line" true (e.Parser.line >= 1)
  | Ok _ -> Alcotest.fail "unterminated view must fail"

let test_views_roundtrip () =
  let src = "rules: R(x:1); views: view R { <b>{{x}}</b> }" in
  let p = Parser.parse_exn src in
  let p' = Parser.parse_exn (Pretty.program_to_string p) in
  Alcotest.(check bool) "roundtrip" true
    (Ast.strip_program p = Ast.strip_program p')

(* --- Engine: Figure 13 evaluation order -------------------------------- *)

let figure13_src =
  {|
  rules:
    R(x:1);
    U(x:2);
    T(x) <- R(x), not U(x);
    S(x, y)/open <- R(x);
    R(x:2);
    T(x:1)/delete;
  |}

let test_figure13_order () =
  let engine = Engine.load (Parser.parse_exn figure13_src) in
  let steps, _ = Engine.run engine in
  Alcotest.(check int) "8 evaluation steps" 8 steps;
  let trace =
    List.map
      (fun (e : Engine.event) ->
        (e.statement, List.assoc_opt "x" e.valuation, e.fired))
      (Engine.events engine)
  in
  (* Paper order: 1, 2, 3(x=1), 4(x=1), 5, 3(x=2), 4(x=2), 6 — rule 3 with
     x=2 is evaluated but rejected by the trailing negation. *)
  Alcotest.(check bool) "order matches Figure 13" true
    (trace
    = [ (0, None, true); (1, None, true);
        (2, Some (v_int 1), true); (3, Some (v_int 1), true);
        (4, None, true); (2, Some (v_int 2), false);
        (3, Some (v_int 2), true); (5, None, true) ])

let test_figure13_delete_applies () =
  let engine = Engine.load (Parser.parse_exn figure13_src) in
  ignore (Engine.run engine);
  let t_rel = Reldb.Database.find_exn (Engine.database engine) "T" in
  (* T(x:1) held between rule 3 and rule 6, then was deleted. *)
  Alcotest.(check int) "T empty after rule 6" 0 (Reldb.Relation.cardinal t_rel);
  let opens = Engine.pending engine in
  Alcotest.(check int) "two open tuples for S" 2 (List.length opens);
  List.iter
    (fun (o : Engine.open_tuple) ->
      Alcotest.(check (list string)) "y is the open slot" [ "y" ] o.open_attrs;
      Alcotest.(check bool) "not an existence question" false o.existence)
    opens

(* --- Engine: VE (Figure 3) --------------------------------------------- *)

let ve_src =
  {|
  rules:
    Pre1: TweetOriginal(tw:"It rains in London", loc:"London");
    Pre2: ValidCity(cname:"London");
    Pre3: Tweet(tw) <- TweetOriginal(tw, loc), ValidCity(cname:loc);
    Pre4: Worker(pid:1, name:"Shun");
    Pre5: Worker(pid:2, name:"Ken");
    VE1: Input(tw, attr:"weather", value, p)/open[p] <- Tweet(tw), Worker(pid:p);
    VE2: Output(tw, weather:value) <- Input(tw, attr:"weather", value, p:p1),
                                      Input(tw, attr:"weather", value, p:p2), p1 != p2;
  |}

let test_ve_open_tuples () =
  let engine = Engine.load (Parser.parse_exn ve_src) in
  ignore (Engine.run engine);
  let opens = Engine.pending engine in
  Alcotest.(check int) "one open input per worker" 2 (List.length opens);
  List.iter
    (fun (o : Engine.open_tuple) ->
      Alcotest.(check string) "relation" "Input" o.relation;
      Alcotest.(check (list string)) "open attr" [ "value" ] o.open_attrs;
      Alcotest.(check bool) "designated worker" true (o.asked <> None))
    opens;
  (* Only the designated worker may answer. *)
  let o = List.hd opens in
  (match Engine.supply engine o.id ~worker:(v_str "nobody") [ ("value", v_str "rainy") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong worker accepted");
  ()

let test_ve_agreement () =
  let engine = Engine.load (Parser.parse_exn ve_src) in
  ignore (Engine.run engine);
  let answer value (o : Engine.open_tuple) =
    match o.asked with
    | Some w -> (
        match Engine.supply engine o.id ~worker:w [ ("value", v_str value) ] with
        | Ok _ -> ()
        | Error m -> Alcotest.fail (Engine.reject_to_string m))
    | None -> Alcotest.fail "expected designated worker"
  in
  (match Engine.pending engine with
  | [ o1; o2 ] ->
      answer "rainy" o1;
      ignore (Engine.run engine);
      (* One input alone cannot produce an agreement. *)
      let out = Reldb.Database.find_exn (Engine.database engine) "Output" in
      Alcotest.(check int) "no agreement yet" 0 (Reldb.Relation.cardinal out);
      answer "rainy" o2;
      ignore (Engine.run engine)
  | _ -> Alcotest.fail "expected two open tuples");
  let out = Reldb.Database.find_exn (Engine.database engine) "Output" in
  Alcotest.(check int) "agreed value stored" 1 (Reldb.Relation.cardinal out);
  match Reldb.Relation.tuples out with
  | [ t ] ->
      Alcotest.(check string) "value" "rainy"
        (Reldb.Value.string_exn (Reldb.Tuple.get_exn t "weather"))
  | _ -> Alcotest.fail "expected one output tuple"

let test_ve_disagreement_no_output () =
  let engine = Engine.load (Parser.parse_exn ve_src) in
  ignore (Engine.run engine);
  List.iteri
    (fun i (o : Engine.open_tuple) ->
      let w = Option.get o.asked in
      let value = if i = 0 then "rainy" else "wet" in
      match Engine.supply engine o.id ~worker:w [ ("value", v_str value) ] with
      | Ok _ -> ()
      | Error m -> Alcotest.fail (Engine.reject_to_string m))
    (Engine.pending engine);
  ignore (Engine.run engine);
  let out = Reldb.Database.find_exn (Engine.database engine) "Output" in
  Alcotest.(check int) "no agreement on different values" 0 (Reldb.Relation.cardinal out)

(* --- Engine: VE/I game aspect (Figure 5) -------------------------------- *)

let vei_src = ve_src ^ {|
  games:
    game VEI(tw, attr) {
      path:
        VEI1: Path(player:p, action:["value", value]) <- Input(tw, attr, value, p);
      payoff:
        VEI2: Path(player:p1, action:["value", v]) {
          VEI2.1: Payoff[p1 += 1, p2 += 1] <- Path(player:p2, action:["value", v]), p1 != p2;
        }
    }
  |}

let run_vei answers =
  let engine = Engine.load (Parser.parse_exn vei_src) in
  ignore (Engine.run engine);
  List.iteri
    (fun i (o : Engine.open_tuple) ->
      let w = Option.get o.asked in
      match Engine.supply engine o.id ~worker:w [ ("value", v_str (List.nth answers i)) ] with
      | Ok _ -> ()
      | Error m -> Alcotest.fail (Engine.reject_to_string m))
    (Engine.pending engine);
  ignore (Engine.run engine);
  engine

let test_vei_agreement_pays_both () =
  let engine = run_vei [ "rainy"; "rainy" ] in
  let payoffs = Engine.payoffs engine in
  Alcotest.(check int) "two players paid" 2 (List.length payoffs);
  List.iter
    (fun (_, score) ->
      (* Support-set dedup: the symmetric valuations (p1,p2)/(p2,p1) pay
         each player exactly once. *)
      Alcotest.(check bool) "score is 1" true (Reldb.Value.equal score (v_int 1)))
    payoffs

let test_vei_disagreement_pays_nobody () =
  let engine = run_vei [ "rainy"; "wet" ] in
  Alcotest.(check int) "no payoffs" 0 (List.length (Engine.payoffs engine))

let test_vei_path_table () =
  let engine = run_vei [ "rainy"; "rainy" ] in
  let instances = Engine.game_instances engine "VEI" in
  Alcotest.(check int) "one game instance" 1 (List.length instances);
  let params = Reldb.Tuple.to_list (List.hd instances) in
  let path = Engine.path_table engine "VEI" ~params in
  Alcotest.(check int) "two actions recorded" 2 (List.length path);
  List.iteri
    (fun i t ->
      Alcotest.(check bool) "order renumbered" true
        (Reldb.Value.equal (Reldb.Tuple.get_or_null t "order") (v_int (i + 1)));
      match Reldb.Tuple.get_or_null t "action" with
      | Reldb.Value.List [ Reldb.Value.String "value"; Reldb.Value.String "rainy" ] -> ()
      | v -> Alcotest.fail ("unexpected action " ^ Reldb.Value.to_string v))
    path

(* --- Engine: update semantics ------------------------------------------- *)

let test_update_merges_mentioned_attrs () =
  let src =
    {|
    schema:
      Tape(pos key, sym);
    rules:
      Tape(pos:0, sym:"a");
      Tape(pos:0)/update;
      Tape(pos:1)/update;
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  let tape = Reldb.Database.find_exn (Engine.database engine) "Tape" in
  Alcotest.(check int) "two cells" 2 (Reldb.Relation.cardinal tape);
  (match Reldb.Relation.find_by_key tape (Reldb.Tuple.of_list [ ("pos", v_int 0) ]) with
  | Some (_, t) ->
      Alcotest.(check string) "unmentioned attr preserved" "a"
        (Reldb.Value.string_exn (Reldb.Tuple.get_exn t "sym"))
  | None -> Alcotest.fail "cell 0 missing");
  match Reldb.Relation.find_by_key tape (Reldb.Tuple.of_list [ ("pos", v_int 1) ]) with
  | Some (_, t) ->
      Alcotest.(check bool) "fresh cell has null sym" true
        (Reldb.Value.is_null (Reldb.Tuple.get_or_null t "sym"))
  | None -> Alcotest.fail "cell 1 missing"

let test_update_requires_key () =
  let src = "schema: R(x key, y); rules: R(y:1)/update;" in
  let engine = Engine.load (Parser.parse_exn src) in
  Alcotest.(check bool) "missing key rejected" true
    (try ignore (Engine.run engine); false with Engine.Runtime_error _ -> true)

(* --- Engine: Turing machine fragment (Figure 16) ------------------------- *)

let tm_src =
  {|
  schema:
    TuringMachine(id key, st, head);
    Tape(pos key, sym);
    Rule(st, sym, new_st, new_sym, dir);
  rules:
    /* Successor machine on unary tape: walk right over 1s, append a 1. */
    Rule(st:"s", sym:"1", new_st:"s", new_sym:"1", dir:1);
    Rule(st:"s", sym:"", new_st:"h", new_sym:"1", dir:0);
    Tape(pos:0, sym:"1");
    Tape(pos:1, sym:"1");
    TuringMachine(id:1, st:"s", head:0);
    Fill: Tape(pos:head, sym:"")/update <- TuringMachine(id, head), not Tape(pos:head);
    Step: TuringMachine(id, head), Tape(pos:head, sym), Rule(st, sym, new_st, new_sym, dir),
          TuringMachine(id, st), new_pos = pos + dir {
      TuringMachine(id, st:new_st, head:new_pos)/update,
      Tape(pos, sym:new_sym)/update
    }
  |}

let test_turing_fragment () =
  let engine = Engine.load (Parser.parse_exn tm_src) in
  ignore (Engine.run engine ~max_steps:200);
  let tm = Reldb.Database.find_exn (Engine.database engine) "TuringMachine" in
  (match Reldb.Relation.tuples tm with
  | [ t ] ->
      Alcotest.(check string) "halted" "h"
        (Reldb.Value.string_exn (Reldb.Tuple.get_exn t "st"))
  | _ -> Alcotest.fail "expected one machine");
  let tape = Reldb.Database.find_exn (Engine.database engine) "Tape" in
  let ones =
    List.length
      (Reldb.Relation.filter
         (fun t -> Reldb.Value.equal (Reldb.Tuple.get_or_null t "sym") (v_str "1"))
         tape)
  in
  Alcotest.(check int) "two 1s became three" 3 ones

(* --- Engine: existence questions ----------------------------------------- *)

let test_existence_question () =
  let src =
    {|
    rules:
      Candidate(tw:"t1", value:"rainy");
      Worker(pid:9);
      Ask: Inputs(tw, value, p)/open[p] <- Candidate(tw, value), Worker(pid:p);
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  match Engine.pending engine with
  | [ o ] ->
      Alcotest.(check bool) "existence question" true o.existence;
      (* supply is rejected; answer_existence works. *)
      (match Engine.supply engine o.id ~worker:(v_int 9) [] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "supply should be rejected");
      (match Engine.answer_existence engine o.id ~worker:(v_int 9) true with
      | Ok _ -> ()
      | Error m -> Alcotest.fail (Engine.reject_to_string m));
      let inputs = Reldb.Database.find_exn (Engine.database engine) "Inputs" in
      Alcotest.(check int) "tuple inserted on yes" 1 (Reldb.Relation.cardinal inputs)
  | _ -> Alcotest.fail "expected one open tuple"

let test_existence_no_leaves_relation_empty () =
  let src =
    {|
    rules:
      Candidate(tw:"t1", value:"rainy");
      Worker(pid:9);
      Ask: Inputs(tw, value, p)/open[p] <- Candidate(tw, value), Worker(pid:p);
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  (match Engine.pending engine with
  | [ o ] -> (
      match Engine.answer_existence engine o.id ~worker:(v_int 9) false with
      | Ok _ -> ()
      | Error m -> Alcotest.fail (Engine.reject_to_string m))
  | _ -> Alcotest.fail "expected one open tuple");
  let inputs = Reldb.Database.find_exn (Engine.database engine) "Inputs" in
  Alcotest.(check int) "no tuple on no" 0 (Reldb.Relation.cardinal inputs);
  Alcotest.(check int) "resolved" 0 (List.length (Engine.pending engine))

(* --- Engine: standing tasks (repeatable opens) ----------------------------- *)

let test_standing_task_rule_entry () =
  (* VRE1: Rules has an auto-increment key the rule leaves unmentioned, so
     the open tuple is a standing task — a worker can enter unboundedly
     many extraction rules — this is what puts VRE in the unbounded game
     class G_star. *)
  let src =
    {|
    schema:
      Rules(rid key auto, cond, attr, value, p);
    rules:
      Workers(p:"kate");
      VRE1: Rules(rid, cond, attr, value, p)/open[p] <- Workers(p);
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  (match Engine.pending engine with
  | [ o ] ->
      Alcotest.(check bool) "repeatable" true o.repeatable;
      Alcotest.(check bool) "rid not asked" false (List.mem "rid" o.open_attrs);
      let enter cond value =
        match
          Engine.supply engine o.id ~worker:(v_str "kate")
            [ ("cond", v_str cond); ("attr", v_str "weather"); ("value", v_str value) ]
        with
        | Ok _ -> ()
        | Error m -> Alcotest.fail (Engine.reject_to_string m)
      in
      enter "rain" "rainy";
      enter "sun" "sunny";
      Alcotest.(check int) "still pending after answers" 1
        (List.length (Engine.pending engine))
  | _ -> Alcotest.fail "expected one standing task");
  let rules = Reldb.Database.find_exn (Engine.database engine) "Rules" in
  Alcotest.(check int) "two rules entered" 2 (Reldb.Relation.cardinal rules);
  let rids =
    List.map (fun t -> Reldb.Value.int_exn (Reldb.Tuple.get_exn t "rid"))
      (Reldb.Relation.tuples rules)
  in
  Alcotest.(check (list int)) "machine-assigned ids" [ 1; 2 ] rids

(* --- Engine: key-based first-rule-wins ------------------------------------ *)

let test_extracts_first_rule_wins () =
  let src =
    {|
    schema:
      Extracts(tw key, attr key, value key, rid);
    rules:
      Tweets(tw:"heavy rain today");
      Rules(rid:1, cond:"rain", attr:"weather", value:"rainy");
      Rules(rid:2, cond:"rain", attr:"weather", value:"rainy");
      E: Extracts(tw, attr, value, rid) <- Tweets(tw), Rules(rid, cond, attr:"weather", value),
                                           matches(cond, tw);
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  let extracts = Reldb.Database.find_exn (Engine.database engine) "Extracts" in
  match Reldb.Relation.tuples extracts with
  | [ t ] ->
      (* The earlier rule (rid 1) supplied the extraction; rid 2's identical
         extraction was rejected by the key. *)
      Alcotest.(check bool) "first rule wins" true
        (Reldb.Value.equal (Reldb.Tuple.get_exn t "rid") (v_int 1))
  | ts -> Alcotest.fail (Printf.sprintf "expected one extract, got %d" (List.length ts))

(* --- Engine: more edge cases ------------------------------------------------ *)

let test_multi_head_atomicity () =
  (* Both heads of a multi-head rule apply under the same valuation even
     though the first head's update invalidates the body (the Figure 16
     transition needs this). *)
  let src =
    {|
    schema:
      M(id key, st);
      Log(st key);
    rules:
      M(id:1, st:"a");
      Step: M(id, st:"b")/update, Log(st) <- M(id, st:"a");
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  let db = Engine.database engine in
  let m = Reldb.Database.find_exn db "M" in
  (match Reldb.Relation.tuples m with
  | [ t ] ->
      Alcotest.(check string) "state updated" "b"
        (Reldb.Value.string_exn (Reldb.Tuple.get_exn t "st"))
  | _ -> Alcotest.fail "one machine");
  let log = Reldb.Database.find_exn db "Log" in
  match Reldb.Relation.tuples log with
  | [ t ] ->
      (* The Log head saw the pre-update valuation st = "a". *)
      Alcotest.(check string) "second head used original valuation" "a"
        (Reldb.Value.string_exn (Reldb.Tuple.get_exn t "st"))
  | _ -> Alcotest.fail "one log entry"

let test_unknown_builtin_is_runtime_error () =
  let engine = Engine.load (Parser.parse_exn "rules: R(x:1); T(x) <- R(x), frobnicate(x);") in
  Alcotest.(check bool) "raised" true
    (try ignore (Engine.run engine); false with Engine.Runtime_error _ -> true)

let test_payoff_arithmetic_deltas () =
  let src =
    {|
    rules:
      Score(p:"kate", base:3);
    games:
      game G() {
        path:
          P: Path(player:p, action:[base]) <- Score(p, base);
        payoff:
          Q: Payoff[p += base * 2 - 1] <- Path(player:p, action:[base]);
      }
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  Alcotest.(check bool) "3*2-1 = 5" true
    (Reldb.Value.equal (Engine.payoff_of engine (v_str "kate")) (v_int 5))

let test_supply_resolved_open_rejected () =
  let src = "rules: W(p:1); Ask: A(x:1, v, p)/open[p] <- W(p);" in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  match Engine.pending engine with
  | [ o ] -> (
      (match Engine.supply engine o.id ~worker:(v_int 1) [ ("v", v_str "a") ] with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Engine.reject_to_string e));
      match Engine.supply engine o.id ~worker:(v_int 1) [ ("v", v_str "b") ] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "resolved open must reject a second answer")
  | _ -> Alcotest.fail "expected one open"

let test_supply_wrong_attrs_rejected () =
  let src = "rules: W(p:1); Ask: A(x:1, v, p)/open[p] <- W(p);" in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  match Engine.pending engine with
  | [ o ] -> (
      match Engine.supply engine o.id ~worker:(v_int 1) [ ("wrong", v_str "a") ] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "mismatched attributes must be rejected")
  | _ -> Alcotest.fail "expected one open"

let test_pending_since_incremental () =
  let src =
    {|
    rules:
      W(p:1);
      Item(x:1); Item(x:2);
      Ask: A(x, v, p)/open[p] <- Item(x), W(p);
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  let all = Engine.pending_since engine ~after:0 in
  Alcotest.(check int) "two new opens" 2 (List.length all);
  let ids = List.map (fun (o : Engine.open_tuple) -> o.id) all in
  Alcotest.(check bool) "ascending ids" true (List.sort compare ids = ids);
  let later = Engine.pending_since engine ~after:(List.hd ids) in
  Alcotest.(check int) "only newer opens" 1 (List.length later);
  Alcotest.(check int) "nothing beyond the last" 0
    (List.length (Engine.pending_since engine ~after:(List.nth ids 1)))

let test_schema_inference_merges_usage () =
  (* A relation used with different attribute subsets gets the union. *)
  let src = "rules: R(a:1); S(x) <- R(a:x); T(x) <- R(b:x);" in
  let engine = Engine.load (Parser.parse_exn src) in
  let r = Reldb.Database.find_exn (Engine.database engine) "R" in
  Alcotest.(check (list string)) "attributes merged" [ "a"; "b" ]
    (List.sort compare (Reldb.Schema.attributes (Reldb.Relation.schema r)))

let test_decline_removes_open () =
  let src = "rules: W(p:1); Ask: A(x:1, v, p)/open[p] <- W(p);" in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  (match Engine.pending engine with
  | [ o ] -> Engine.decline engine o.id
  | _ -> Alcotest.fail "expected one open");
  Alcotest.(check int) "declined open gone" 0 (List.length (Engine.pending engine));
  let a = Reldb.Database.find_exn (Engine.database engine) "A" in
  Alcotest.(check int) "nothing inserted" 0 (Reldb.Relation.cardinal a)

let test_game_without_params_single_instance () =
  let src =
    {|
    rules:
      E(x:1); E(x:2);
    games:
      game G() {
        path:
          P: Path(player:"m", action:[x]) <- E(x);
        payoff:
          Q: Payoff[p += 1] <- Path(player:p, action:[x]);
      }
    |}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  ignore (Engine.run engine);
  Alcotest.(check int) "one instance" 1 (List.length (Engine.game_instances engine "G"));
  let path = Engine.path_table engine "G" ~params:[] in
  Alcotest.(check int) "two actions in the single instance" 2 (List.length path);
  (* Each distinct path row pays once: score 2. *)
  Alcotest.(check bool) "payoff accumulated per action" true
    (Reldb.Value.equal (Engine.payoff_of engine (v_str "m")) (v_int 2))

(* --- Engine: incremental statements (REPL) ---------------------------------- *)

let test_add_statement_incremental () =
  let engine = Engine.load (Parser.parse_exn "rules: R(x:1); R(x:2);") in
  ignore (Engine.run engine);
  let add src =
    List.iter (Engine.add_statement engine) (Parser.parse_statements_exn src);
    ignore (Engine.run engine)
  in
  add "S(x) <- R(x);";
  let s = Reldb.Database.find_exn (Engine.database engine) "S" in
  Alcotest.(check int) "rule applied to existing facts" 2 (Reldb.Relation.cardinal s);
  (* Later facts flow through earlier-added rules. *)
  add "R(x:3);";
  Alcotest.(check int) "new fact derives" 3 (Reldb.Relation.cardinal s);
  (* Using an unknown attribute of an existing relation is an error. *)
  Alcotest.(check bool) "schema fixed" true
    (try add "T(y) <- R(zzz:y);"; false with Engine.Runtime_error _ -> true)

let test_add_statement_delta_downgrade () =
  let engine = Engine.load (Parser.parse_exn "rules: R(x:1); S(x) <- R(x);") in
  ignore (Engine.run engine);
  (* Adding a delete on R downgrades S's reader to rescan; evaluation must
     still be correct afterwards. *)
  List.iter (Engine.add_statement engine) (Parser.parse_statements_exn "R(x:1)/delete;");
  ignore (Engine.run engine);
  let r = Reldb.Database.find_exn (Engine.database engine) "R" in
  Alcotest.(check int) "deleted" 0 (Reldb.Relation.cardinal r);
  List.iter (Engine.add_statement engine) (Parser.parse_statements_exn "R(x:9);");
  ignore (Engine.run engine);
  let s = Reldb.Database.find_exn (Engine.database engine) "S" in
  Alcotest.(check bool) "rescan reader still derives" true
    (Reldb.Relation.mem s (Reldb.Tuple.of_list [ ("x", v_int 9) ]))

(* --- Precedence graph (Figure 14) ----------------------------------------- *)

let test_precedence_figure14 () =
  let p = Parser.parse_exn figure13_src in
  let g = Precedence.build p.Ast.statements in
  (* Statements: 0:R, 1:U, 2:T<-R,not U, 3:S/open<-R, 4:R, 5:T/delete. *)
  Alcotest.(check bool) "R1 -> T3" true
    (List.exists (fun (e : Precedence.edge) -> e.src = 0 && e.dst = 2) (Precedence.edges g));
  Alcotest.(check bool) "R1 -> S4" true
    (List.exists (fun (e : Precedence.edge) -> e.src = 0 && e.dst = 3) (Precedence.edges g));
  Alcotest.(check bool) "T3 -> T6 (update/delete)" true
    (List.exists (fun (e : Precedence.edge) -> e.src = 2 && e.dst = 5) (Precedence.edges g));
  (* R5 -> T3 is a backward edge. *)
  (match
     List.find_opt (fun (e : Precedence.edge) -> e.src = 4 && e.dst = 2) (Precedence.edges g)
   with
  | Some e -> Alcotest.(check bool) "backward" false e.forward
  | None -> Alcotest.fail "missing backward edge R5 -> T3");
  Alcotest.(check bool) "T6 depends on R1 (composite)" true (Precedence.depends_on g 5 0);
  Alcotest.(check bool) "rules 3 and 4 parallelizable" true (Precedence.parallelizable g 2 3);
  (* Rule 6 is data complete; rule 3 is not (R5 feeds it from below). *)
  Alcotest.(check bool) "rule 6 data complete" true (Precedence.data_complete g 5);
  Alcotest.(check bool) "rule 3 not data complete" false (Precedence.data_complete g 2);
  Alcotest.(check bool) "program not stratified" false (Precedence.stratified g)

let test_precedence_stratified () =
  let p = Parser.parse_exn "rules: R(x:1); U(x:1); T(x) <- R(x), not U(x);" in
  let g = Precedence.build p.Ast.statements in
  Alcotest.(check bool) "stratified" true (Precedence.stratified g)

let test_precedence_parallel_groups () =
  let p = Parser.parse_exn figure13_src in
  let g = Precedence.build p.Ast.statements in
  let groups = Precedence.parallel_groups g in
  (* Every statement appears exactly once. *)
  let flat = List.concat groups in
  Alcotest.(check (list int)) "partition" [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare flat);
  (* Rules 3 and 4 (indices 2 and 3) are independent — the paper says they
     can run in parallel, so some group holds both. *)
  Alcotest.(check bool) "rules 3 and 4 grouped" true
    (List.exists (fun grp -> List.mem 2 grp && List.mem 3 grp) groups);
  (* Groups really are independent sets. *)
  List.iter
    (fun grp ->
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if i <> j then
                Alcotest.(check bool) "independent" true (Precedence.parallelizable g i j))
            grp)
        grp)
    groups

let test_precedence_backward_cycle () =
  (* A <- B / B <- A: a two-statement cycle whose B -> A flow is a
     backward edge. Neither statement is data complete, they can never
     share a parallel group, and the closure makes each self-dependent. *)
  let p = Parser.parse_exn "rules: A(x) <- B(x); B(x) <- A(x);" in
  let g = Precedence.build p.Ast.statements in
  (match
     List.find_opt
       (fun (e : Precedence.edge) -> e.src = 1 && e.dst = 0)
       (Precedence.edges g)
   with
  | Some e -> Alcotest.(check bool) "B -> A backward" false e.forward
  | None -> Alcotest.fail "missing backward edge B -> A");
  Alcotest.(check bool) "0 self-dependent via the cycle" true
    (Precedence.depends_on g 0 0);
  Alcotest.(check bool) "0 not data complete" false (Precedence.data_complete g 0);
  Alcotest.(check bool) "1 not data complete" false (Precedence.data_complete g 1);
  Alcotest.(check (list (list int))) "cycle members never grouped" [ [ 0 ]; [ 1 ] ]
    (Precedence.parallel_groups g)

let test_precedence_self_loop () =
  (* Direct self-recursion draws no self edge (edges need i <> q): the
     statement's own tuples reach later evaluations through the delta
     semantics, not a precedence hazard, so it stays data complete. *)
  let p = Parser.parse_exn "rules: R(x:1); R(x:y+1) <- R(x:y), y < 3;" in
  let g = Precedence.build p.Ast.statements in
  Alcotest.(check bool) "no self edge" true
    (List.for_all (fun (e : Precedence.edge) -> e.src <> e.dst) (Precedence.edges g));
  Alcotest.(check bool) "not self-dependent" false (Precedence.depends_on g 1 1);
  Alcotest.(check bool) "data complete" true (Precedence.data_complete g 1);
  Alcotest.(check bool) "stratified (no negation)" true (Precedence.stratified g)

let test_negation_violations_witness () =
  let p =
    Parser.parse_exn "rules: A(x:1); T(x) <- A(x), not U(x); U(x) <- T(x);"
  in
  let g = Precedence.build p.Ast.statements in
  (match Precedence.negation_violations g with
  | [ v ] ->
      Alcotest.(check int) "vertex" 1 v.Precedence.vertex;
      Alcotest.(check string) "negated" "U" v.Precedence.negated;
      Alcotest.(check int) "writer" 2 v.Precedence.writer;
      Alcotest.(check (list int)) "cycle T -> U" [ 1; 2 ] v.Precedence.cycle
  | vs -> Alcotest.fail (Printf.sprintf "expected one violation, got %d" (List.length vs)));
  (* Figure 13's negation reads U, which only an *earlier* fact writes:
     not data complete, yet no negation violation. *)
  let g13 = Precedence.build (Parser.parse_exn figure13_src).Ast.statements in
  Alcotest.(check bool) "figure 13 not stratified" false (Precedence.stratified g13);
  Alcotest.(check int) "figure 13 has no negation violation" 0
    (List.length (Precedence.negation_violations g13))

let test_negation_violations_update_exempt () =
  (* Fill-if-absent (Figure 16): an /update writer below the negation is
     legal; the same writer as a plain assert is the textbook violation. *)
  let build src = Precedence.build (Parser.parse_exn src).Ast.statements in
  Alcotest.(check int) "update writer exempt" 0
    (List.length
       (Precedence.negation_violations
          (build "rules: T(x) <- A(x), not U(x); U(x:1)/update;")));
  Alcotest.(check int) "assert writer flagged" 1
    (List.length
       (Precedence.negation_violations
          (build "rules: T(x) <- A(x), not U(x); U(x:1);")))

(* --- Formal semantics (Section 9.2) ---------------------------------------- *)

let test_semantics_supported () =
  Alcotest.(check bool) "ve supported" true (Semantics.supported (Parser.parse_exn ve_src));
  Alcotest.(check bool) "figure13 not supported" false
    (Semantics.supported (Parser.parse_exn figure13_src))

let test_semantics_machine_only_fixpoint () =
  let p = Parser.parse_exn "rules: R(x:1); S(x) <- R(x); T(x) <- S(x);" in
  let states, outcome = Semantics.behaviour p (fun _ -> []) in
  Alcotest.(check bool) "fixpoint reached" true (outcome = `Fixpoint);
  (* K0=∅, K1={R}, K2={R,S}, K3={R,S,T}, K4=K3. *)
  Alcotest.(check int) "five states" 5 (List.length states);
  let final = List.nth states (List.length states - 1) in
  Alcotest.(check int) "three tuples" 3 (Semantics.sure_count final)

let test_semantics_human_consequences () =
  let p = Parser.parse_exn ve_src in
  let strategies st =
    (* Both workers answer "rainy" as soon as their open tuples appear —
       a solution of the coordination game. *)
    List.filter_map
      (fun (o : Semantics.open_fact) ->
        if o.relation = "Input" then Some (o, [ ("value", v_str "rainy") ]) else None)
      (Semantics.open_tuples st)
  in
  match Semantics.conclusion p strategies with
  | None -> Alcotest.fail "no conclusion"
  | Some final ->
      let out = Reldb.Database.find_exn (Semantics.sure final) "Output" in
      Alcotest.(check int) "rational conclusion stores the agreed value" 1
        (Reldb.Relation.cardinal out)

let test_semantics_multiple_rational_conclusions () =
  (* The semantics of a CyLog program is the SET of its rational
     behaviours: the VE/I coordination game has several solutions (all
     matching-term profiles), each yielding its own conclusion. *)
  let p = Parser.parse_exn ve_src in
  let strategy term st =
    List.filter_map
      (fun (o : Semantics.open_fact) ->
        if o.relation = "Input" then Some (o, [ ("value", v_str term) ]) else None)
      (Semantics.open_tuples st)
  in
  let agreed_value term =
    match Semantics.conclusion p (strategy term) with
    | None -> Alcotest.fail "no conclusion"
    | Some final -> (
        let out = Reldb.Database.find_exn (Semantics.sure final) "Output" in
        match Reldb.Relation.tuples out with
        | [ t ] -> Reldb.Value.to_display (Reldb.Tuple.get_or_null t "weather")
        | _ -> Alcotest.fail "expected one output")
  in
  (* Both all-"rainy" and all-"wet" are solutions of the coordination game;
     the program has (at least) two rational conclusions. *)
  Alcotest.(check string) "rainy conclusion" "rainy" (agreed_value "rainy");
  Alcotest.(check string) "wet conclusion" "wet" (agreed_value "wet")

let test_semantics_open_not_used_for_inference () =
  (* Open tuples must not feed rule bodies: only sure tuples do (the
     closed-world assumption over K_sure, Section 9.3). *)
  let p =
    Parser.parse_exn
      "rules: W(pid:1); A(x, v)/open[pid] <- W(pid), x = 1; B(x) <- A(x, v);"
  in
  let states, _ = Semantics.behaviour p (fun _ -> []) in
  let final = List.nth states (List.length states - 1) in
  let b = Reldb.Database.find_exn (Semantics.sure final) "B" in
  Alcotest.(check int) "B stays empty while A is open" 0 (Reldb.Relation.cardinal b)

let suite =
  [ ( "cylog.lexer",
      [ Alcotest.test_case "basics" `Quick test_lexer_basics;
        Alcotest.test_case "dotted label" `Quick test_lexer_dotted_label;
        Alcotest.test_case "! shorthand" `Quick test_lexer_bang_shorthand;
        Alcotest.test_case "comments and strings" `Quick test_lexer_comments_and_strings;
        Alcotest.test_case "errors" `Quick test_lexer_errors ] );
    ( "cylog.parser",
      [ Alcotest.test_case "figure 3 program" `Quick test_parse_figure3;
        Alcotest.test_case "block style" `Quick test_parse_block_style;
        Alcotest.test_case "block with several statements" `Quick
          test_parse_block_multi_statement;
        Alcotest.test_case "multi-head rule" `Quick test_parse_multi_head;
        Alcotest.test_case "games section" `Quick test_parse_games_section;
        Alcotest.test_case "schema section" `Quick test_parse_schema_section;
        Alcotest.test_case "views skipped" `Quick test_parse_views_skipped;
        Alcotest.test_case "errors located" `Quick test_parse_errors_located;
        Alcotest.test_case "negation and builtins" `Quick test_parse_negation_and_builtin;
        Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip ] );
    ( "cylog.engine",
      [ Alcotest.test_case "figure 13 evaluation order" `Quick test_figure13_order;
        Alcotest.test_case "figure 13 delete applies" `Quick test_figure13_delete_applies;
        Alcotest.test_case "VE open tuples" `Quick test_ve_open_tuples;
        Alcotest.test_case "VE agreement" `Quick test_ve_agreement;
        Alcotest.test_case "VE disagreement" `Quick test_ve_disagreement_no_output;
        Alcotest.test_case "VE/I agreement pays both once" `Quick
          test_vei_agreement_pays_both;
        Alcotest.test_case "VE/I disagreement pays nobody" `Quick
          test_vei_disagreement_pays_nobody;
        Alcotest.test_case "VE/I path table (Figure 6)" `Quick test_vei_path_table;
        Alcotest.test_case "update merges mentioned attrs" `Quick
          test_update_merges_mentioned_attrs;
        Alcotest.test_case "update requires key" `Quick test_update_requires_key;
        Alcotest.test_case "Turing machine fragment (Figure 16)" `Quick
          test_turing_fragment;
        Alcotest.test_case "existence question: yes" `Quick test_existence_question;
        Alcotest.test_case "existence question: no" `Quick
          test_existence_no_leaves_relation_empty;
        Alcotest.test_case "standing task: unbounded rule entry" `Quick
          test_standing_task_rule_entry;
        Alcotest.test_case "Extracts: first rule wins" `Quick
          test_extracts_first_rule_wins;
        Alcotest.test_case "multi-head atomicity" `Quick test_multi_head_atomicity;
        Alcotest.test_case "unknown builtin raises" `Quick
          test_unknown_builtin_is_runtime_error;
        Alcotest.test_case "payoff arithmetic deltas" `Quick test_payoff_arithmetic_deltas;
        Alcotest.test_case "resolved open rejects re-answer" `Quick
          test_supply_resolved_open_rejected;
        Alcotest.test_case "wrong attributes rejected" `Quick
          test_supply_wrong_attrs_rejected;
        Alcotest.test_case "pending_since incremental" `Quick test_pending_since_incremental;
        Alcotest.test_case "schema inference merges usage" `Quick
          test_schema_inference_merges_usage;
        Alcotest.test_case "decline removes open" `Quick test_decline_removes_open;
        Alcotest.test_case "parameterless game: one instance" `Quick
          test_game_without_params_single_instance;
        Alcotest.test_case "incremental statements" `Quick test_add_statement_incremental;
        Alcotest.test_case "incremental delta downgrade" `Quick
          test_add_statement_delta_downgrade ] );
    ( "cylog.views",
      [ Alcotest.test_case "parsed around raw markup" `Quick test_views_parsed;
        Alcotest.test_case "render open tuple" `Quick test_views_render_open;
        Alcotest.test_case "multiple sections" `Quick test_views_multiple_sections;
        Alcotest.test_case "errors located" `Quick test_views_errors_located;
        Alcotest.test_case "roundtrip" `Quick test_views_roundtrip ] );
    ( "cylog.precedence",
      [ Alcotest.test_case "figure 14 graph" `Quick test_precedence_figure14;
        Alcotest.test_case "stratified program" `Quick test_precedence_stratified;
        Alcotest.test_case "parallel groups" `Quick test_precedence_parallel_groups;
        Alcotest.test_case "backward-edge cycle" `Quick test_precedence_backward_cycle;
        Alcotest.test_case "self-recursive rule" `Quick test_precedence_self_loop;
        Alcotest.test_case "negation violation witness" `Quick
          test_negation_violations_witness;
        Alcotest.test_case "update writers exempt from violations" `Quick
          test_negation_violations_update_exempt ] );
    ( "cylog.semantics",
      [ Alcotest.test_case "supported fragment" `Quick test_semantics_supported;
        Alcotest.test_case "machine-only fixpoint" `Quick test_semantics_machine_only_fixpoint;
        Alcotest.test_case "human consequences" `Quick test_semantics_human_consequences;
        Alcotest.test_case "multiple rational conclusions" `Quick
          test_semantics_multiple_rational_conclusions;
        Alcotest.test_case "open tuples not used for inference" `Quick
          test_semantics_open_not_used_for_inference ] ) ]

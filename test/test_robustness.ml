(* The unreliable-crowd runtime: task leases, retry/reassignment,
   dead-lettering, typed supply rejections, quorum aggregation, fault
   injection, and checkpoint/replay. Plus the parser error paths that a
   robust CLI depends on: malformed programs must come back as structured
   errors, never as escaping exceptions. *)

open Cylog

let v_str s = Reldb.Value.String s
let v_int i = Reldb.Value.Int i

(* --- Parser error paths --------------------------------------------------- *)

let check_structured_error name src =
  match Parser.parse src with
  | exception e -> Alcotest.failf "%s: exception escaped Parser.parse: %s" name (Printexc.to_string e)
  | Ok _ -> Alcotest.failf "%s: malformed program parsed" name
  | Error e ->
      Alcotest.(check bool) (name ^ ": line positive") true (e.Parser.line >= 1);
      Alcotest.(check bool) (name ^ ": col non-negative") true (e.Parser.col >= 0);
      Alcotest.(check bool) (name ^ ": message") true (String.length e.Parser.message > 0)

let test_parser_error_paths () =
  check_structured_error "unterminated view body"
    "rules: R(x:1); views: view V { <p>{{x}}</p>";
  check_structured_error "bad /open annotation"
    "rules: Ask: A(x)/open[ <- R(x);";
  check_structured_error "stray token" "rules: R(x:1); %$&;";
  check_structured_error "unterminated statement" "rules: R(x:1";
  check_structured_error "dangling body" "rules: S(x) <- ;";
  check_structured_error "unbalanced head braces" "rules: R(x) { S(x), <- T(x);"

let test_parser_error_paths_never_raise () =
  (* A little corpus of mutilations of a valid program: whatever we cut or
     inject, parse must return, not raise. *)
  let base = "schema:\n  R(x key, y);\nrules:\n  R(x:1, y:2);\n  S(y)/open <- R(x, y);\n" in
  let n = String.length base in
  for cut = 1 to n - 1 do
    match Parser.parse (String.sub base 0 cut) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "prefix %d: exception escaped: %s" cut (Printexc.to_string e)
  done;
  List.iter
    (fun junk ->
      match Parser.parse (base ^ junk) with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "suffix %S: exception escaped: %s" junk (Printexc.to_string e))
    [ "}"; ");"; "/open["; "<-"; "rules:"; "\"unterminated"; "{" ]

(* --- Lease lifecycle ------------------------------------------------------- *)

let lease_cfg = { Lease.ttl = 2; max_timeouts = 2; backoff_base = 1; max_rejections = 2 }

let test_lease_grant_and_renew () =
  let l = Lease.create lease_cfg in
  let w1 = v_str "w1" and w2 = v_str "w2" in
  (match Lease.assign l ~open_id:7 ~worker:w1 ~now:0 ~capacity:1 with
  | Ok lease ->
      Alcotest.(check int) "deadline = now + ttl" 2 lease.Lease.deadline;
      Alcotest.(check int) "granted now" 0 lease.Lease.granted_at
  | Error _ -> Alcotest.fail "first assign should grant");
  Alcotest.(check bool) "holder holds" true (Lease.holds l ~open_id:7 ~worker:w1);
  (* Exclusive: a second worker is refused while the lease is valid. *)
  (match Lease.assign l ~open_id:7 ~worker:w2 ~now:1 ~capacity:1 with
  | Error (`Held w) -> Alcotest.(check bool) "held by w1" true (Reldb.Value.equal w w1)
  | _ -> Alcotest.fail "capacity-1 task must refuse a second worker");
  (* Renewal pushes the holder's deadline. *)
  (match Lease.assign l ~open_id:7 ~worker:w1 ~now:1 ~capacity:1 with
  | Ok lease -> Alcotest.(check int) "renewed deadline" 3 lease.Lease.deadline
  | Error _ -> Alcotest.fail "renewal should succeed")

let test_lease_timeout_backoff_dead_letter () =
  let l = Lease.create lease_cfg in
  let w1 = v_str "w1" and w2 = v_str "w2" in
  (match Lease.assign l ~open_id:3 ~worker:w1 ~now:0 ~capacity:1 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "grant");
  (* Deadline 2: overdue at 2. One timeout, backoff 1 round. *)
  (match Lease.reclaim l ~now:2 with
  | [ (3, `Retry at) ] -> Alcotest.(check int) "backoff 2^0" 3 at
  | _ -> Alcotest.fail "one expired lease expected");
  Alcotest.(check bool) "expired holder no longer holds" false
    (Lease.holds l ~open_id:3 ~worker:w1);
  (match Lease.assign l ~open_id:3 ~worker:w2 ~now:2 ~capacity:1 with
  | Error (`Backoff at) -> Alcotest.(check int) "backoff visible" 3 at
  | _ -> Alcotest.fail "assign during backoff must be refused");
  (match Lease.assign l ~open_id:3 ~worker:w2 ~now:3 ~capacity:1 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "assign after backoff");
  (* Second timeout exhausts the budget (max_timeouts = 2). *)
  (match Lease.reclaim l ~now:9 with
  | [ (3, `Dead Lease.Timed_out) ] -> ()
  | _ -> Alcotest.fail "task should be dead-lettered");
  Alcotest.(check bool) "dead" true (Lease.is_dead l ~open_id:3 = Some Lease.Timed_out);
  (match Lease.assign l ~open_id:3 ~worker:w1 ~now:10 ~capacity:1 with
  | Error (`Dead Lease.Timed_out) -> ()
  | _ -> Alcotest.fail "assigning a dead task must fail");
  Alcotest.(check int) "dead letters listed" 1 (List.length (Lease.dead_letters l))

let test_lease_rejection_budget () =
  let l = Lease.create lease_cfg in
  (match Lease.note_rejection l ~open_id:5 with
  | `Counted 1 -> ()
  | _ -> Alcotest.fail "first rejection counted");
  match Lease.note_rejection l ~open_id:5 with
  | `Exhausted 2 -> ()
  | _ -> Alcotest.fail "second rejection exhausts the budget (max_rejections = 2)"

let test_lease_redundant_capacity () =
  let l = Lease.create lease_cfg in
  let grant w =
    match Lease.assign l ~open_id:1 ~worker:(v_str w) ~now:0 ~capacity:3 with
    | Ok _ -> true
    | Error _ -> false
  in
  Alcotest.(check bool) "slot 1" true (grant "a");
  Alcotest.(check bool) "slot 2" true (grant "b");
  Alcotest.(check bool) "slot 3" true (grant "c");
  Alcotest.(check bool) "slot 4 refused" false (grant "d");
  Lease.release l ~open_id:1 ~worker:(v_str "b");
  Alcotest.(check bool) "freed slot reusable" true (grant "d")

(* --- Typed supply rejections ---------------------------------------------- *)

let reject_engine () =
  let engine =
    Engine.load
      (Parser.parse_exn
         {|
         rules:
           Seed(s:1);
           Out(k:1, v:"seed");
           Ask: Out(k:2, v)/open <- Seed(s);
         |})
  in
  ignore (Engine.run engine);
  match Engine.pending engine with
  | [ o ] -> (engine, o)
  | _ -> Alcotest.fail "exactly one open tuple expected"

let test_typed_rejects () =
  let engine, o = reject_engine () in
  let w = v_str "kate" in
  (match Engine.supply engine 999 ~worker:w [ ("v", v_str "x") ] with
  | Error (Engine.Stale 999) -> ()
  | _ -> Alcotest.fail "unknown id must be Stale");
  (match Engine.answer_existence engine o.Engine.id ~worker:w true with
  | Error Engine.Wrong_question -> ()
  | _ -> Alcotest.fail "existence answer on a value question must be Wrong_question");
  (match Engine.supply engine o.Engine.id ~worker:w [ ("w", v_str "x") ] with
  | Error (Engine.Wrong_attrs { expected = [ "v" ]; given = [ "w" ] }) -> ()
  | _ -> Alcotest.fail "attribute mismatch must be Wrong_attrs");
  (* Column v of Out already holds a string ("seed"): an int answer
     contradicts the evidence. *)
  (match Engine.supply engine o.Engine.id ~worker:w [ ("v", v_int 3) ] with
  | Error (Engine.Type_mismatch { attr = "v"; _ }) -> ()
  | _ -> Alcotest.fail "wrong-typed value must be Type_mismatch");
  (match Engine.supply engine o.Engine.id ~worker:w [ ("v", v_str "ok") ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid answer rejected: %s" (Engine.reject_to_string e));
  match Engine.supply engine o.Engine.id ~worker:w [ ("v", v_str "again") ] with
  | Error (Engine.Stale _) -> ()
  | _ -> Alcotest.fail "resolved id must be Stale"

let test_designated_worker_reject () =
  let engine =
    Engine.load
      (Parser.parse_exn
         {|
         rules:
           Item(x:1);
           W(p:"kate");
           Ask: Answer(x, value, p)/open[p] <- Item(x), W(p);
         |})
  in
  ignore (Engine.run engine);
  match Engine.pending engine with
  | [ o ] -> (
      match Engine.supply engine o.Engine.id ~worker:(v_str "bob") [ ("value", v_str "x") ] with
      | Error Engine.Not_lease_holder -> ()
      | _ -> Alcotest.fail "a stranger answering a designated task must be Not_lease_holder")
  | _ -> Alcotest.fail "one open tuple expected"

let test_lease_holder_reject_and_budget () =
  let engine, o = reject_engine () in
  Engine.set_lease_config engine (Some lease_cfg);
  let w1 = v_str "w1" and w2 = v_str "w2" in
  (match Engine.assign engine o.Engine.id ~worker:w1 ~now:0 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "assign should grant");
  (* The task is exclusively leased: another worker's answer bounces. *)
  (match Engine.supply engine o.Engine.id ~worker:w2 [ ("v", v_str "x") ] with
  | Error Engine.Not_lease_holder -> ()
  | _ -> Alcotest.fail "non-holder must be rejected while the lease is live");
  (* Two garbage answers from the holder exhaust the rejection budget
     (max_rejections = 2) and dead-letter the task. *)
  (match Engine.supply engine o.Engine.id ~worker:w1 [ ("bad", v_str "x") ] with
  | Error (Engine.Wrong_attrs _) -> ()
  | _ -> Alcotest.fail "garbage 1");
  (match Engine.supply engine o.Engine.id ~worker:w1 [ ("bad", v_str "x") ] with
  | Error (Engine.Wrong_attrs _) -> ()
  | _ -> Alcotest.fail "garbage 2");
  (match Engine.dead_letters engine with
  | [ (dead, Lease.Rejected_answers 2) ] ->
      Alcotest.(check int) "the task itself" o.Engine.id dead.Engine.id
  | _ -> Alcotest.fail "rejection budget must dead-letter the task");
  (* Dead tasks are gone from the pending pool and carry an audit event. *)
  Alcotest.(check bool) "no longer pending" true (Engine.find_open engine o.Engine.id = None);
  let has_dead_letter_event =
    List.exists
      (fun (e : Engine.event) ->
        List.exists
          (function
            | Engine.Dead_lettered (id, Lease.Rejected_answers 2) -> id = o.Engine.id
            | _ -> false)
          e.effects)
      (Engine.events engine)
  in
  Alcotest.(check bool) "Dead_lettered event recorded" true has_dead_letter_event

let test_decline_is_audited () =
  let engine, o = reject_engine () in
  let events_before = List.length (Engine.events engine) in
  Engine.decline engine o.Engine.id;
  Alcotest.(check bool) "resolved" true (Engine.find_open engine o.Engine.id = None);
  (match Engine.dead_letters engine with
  | [ (dead, Lease.Declined) ] -> Alcotest.(check int) "id" o.Engine.id dead.Engine.id
  | _ -> Alcotest.fail "declined task must be dead-lettered as Declined");
  let events = Engine.events engine in
  Alcotest.(check int) "one audit event appended" (events_before + 1) (List.length events);
  let last = List.nth events (List.length events - 1) in
  (match last.Engine.effects with
  | [ Engine.Dead_lettered (id, Lease.Declined) ] ->
      Alcotest.(check int) "effect names the task" o.Engine.id id
  | _ -> Alcotest.fail "decline must record a Dead_lettered effect");
  (* Declining an unknown id stays a no-op. *)
  Engine.decline engine 999;
  Alcotest.(check int) "no-op decline adds nothing" (events_before + 1)
    (List.length (Engine.events engine))

let test_run_signal () =
  let program =
    Parser.parse_exn
      {|
      rules:
        R(x:1);
        Step1: S(x) <- R(x);
        Step2: T(x) <- S(x);
      |}
  in
  let engine = Engine.load program in
  (match Engine.run engine ~max_steps:1 with
  | 1, `Capped -> ()
  | _ -> Alcotest.fail "run must report hitting the step cap");
  (match Engine.run engine with
  | _, `Quiescent -> ()
  | _, `Capped -> Alcotest.fail "finishing the remaining work must be Quiescent");
  match Engine.run engine with
  | 0, `Quiescent -> ()
  | _ -> Alcotest.fail "a quiescent engine reports 0 steps, Quiescent"

(* --- Quorum --------------------------------------------------------------- *)

let quorum_engine ?(k = 3) src =
  let engine = Engine.load (Parser.parse_exn src) in
  Engine.set_quorum engine
    (Some { Engine.k; relations = None; aggregate = Engine.default_aggregate });
  ignore (Engine.run engine);
  engine

let test_quorum_majority () =
  let engine =
    quorum_engine {|
      rules:
        Seed(s:1);
        Ask: Poll(q:1, ans)/open <- Seed(s);
      |}
  in
  let o = match Engine.pending engine with [ o ] -> o | _ -> Alcotest.fail "one task" in
  let vote w value =
    match Engine.supply engine o.Engine.id ~worker:(v_str w) [ ("ans", v_str value) ] with
    | Ok e -> e.Engine.effects
    | Error e -> Alcotest.failf "vote rejected: %s" (Engine.reject_to_string e)
  in
  (match vote "w1" "a" with
  | [ Engine.Vote_recorded (_, 1) ] -> ()
  | _ -> Alcotest.fail "first vote banks, no insert");
  Alcotest.(check bool) "still pending after one vote" true
    (Engine.find_open engine o.Engine.id <> None);
  (match Engine.supply engine o.Engine.id ~worker:(v_str "w1") [ ("ans", v_str "a") ] with
  | Error Engine.Already_voted -> ()
  | _ -> Alcotest.fail "double voting must be rejected");
  ignore (vote "w2" "b");
  (match vote "w3" "a" with
  | [ Engine.Vote_recorded (_, 3); Engine.Inserted ("Poll", t) ] ->
      Alcotest.(check bool) "majority value a" true
        (Reldb.Value.equal (Reldb.Tuple.get_or_null t "ans") (v_str "a"))
  | _ -> Alcotest.fail "third vote must aggregate and insert");
  Alcotest.(check bool) "resolved" true (Engine.find_open engine o.Engine.id = None)

let test_quorum_existence_majority () =
  let engine =
    quorum_engine {|
      rules:
        Cand(tw:1, v:"sunny");
        Ask: Agreed(tw:1, v:"sunny")/open <- Cand(tw, v);
      |}
  in
  let o = match Engine.pending engine with [ o ] -> o | _ -> Alcotest.fail "one task" in
  Alcotest.(check bool) "existence question" true o.Engine.existence;
  let vote w yes =
    match Engine.answer_existence engine o.Engine.id ~worker:(v_str w) yes with
    | Ok e -> e
    | Error e -> Alcotest.failf "vote rejected: %s" (Engine.reject_to_string e)
  in
  ignore (vote "w1" true);
  ignore (vote "w2" false);
  ignore (vote "w3" true);
  match Reldb.Database.find (Engine.database engine) "Agreed" with
  | Some rel -> Alcotest.(check int) "2/3 ayes insert" 1 (Reldb.Relation.cardinal rel)
  | None -> Alcotest.fail "Agreed should exist"

(* Redundant assignment with majority aggregation must label no worse than
   trusting the first answer, under the same per-answer error rate: a lone
   wrong answer is outvoted, and ties fall back to the earliest vote —
   i.e. to exactly the single-answer baseline. *)
let test_quorum_accuracy_vs_single () =
  let n_items = 30 in
  let truth = "t" in
  let wrong item worker =
    (* Deterministic per (item, worker): ~30% error rate, distinct wrong
       values per worker. *)
    let st = Random.State.make [| 97; item; Hashtbl.hash worker |] in
    Random.State.float st 1.0 < 0.3
  in
  let answer item worker = if wrong item worker then "wrong-" ^ worker else truth in
  let source =
    let b = Buffer.create 256 in
    Buffer.add_string b "rules:\n";
    for i = 1 to n_items do
      Buffer.add_string b (Printf.sprintf "  Item(x:%d);\n" i)
    done;
    Buffer.add_string b "  Ask: Label(x, v)/open <- Item(x);\n";
    Buffer.contents b
  in
  let campaign k =
    let engine = Engine.load (Parser.parse_exn source) in
    if k > 1 then
      Engine.set_quorum engine
        (Some { Engine.k; relations = None; aggregate = Engine.default_aggregate });
    ignore (Engine.run engine);
    List.iter
      (fun (o : Engine.open_tuple) ->
        let item =
          match Reldb.Tuple.get_or_null o.bound "x" with
          | Reldb.Value.Int i -> i
          | _ -> Alcotest.fail "bound item"
        in
        List.iteri
          (fun j w ->
            if j < k then
              match
                Engine.supply engine o.id ~worker:(v_str w) [ ("v", v_str (answer item w)) ]
              with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "supply: %s" (Engine.reject_to_string e))
          [ "w1"; "w2"; "w3" ])
      (Engine.pending engine);
    ignore (Engine.run engine);
    match Reldb.Database.find (Engine.database engine) "Label" with
    | None -> 0.0
    | Some rel ->
        let correct =
          List.length
            (List.filter
               (fun t -> Reldb.Value.equal (Reldb.Tuple.get_or_null t "v") (v_str truth))
               (Reldb.Relation.tuples rel))
        in
        float_of_int correct /. float_of_int n_items
  in
  let single = campaign 1 and majority = campaign 3 in
  Alcotest.(check bool)
    (Printf.sprintf "majority (%.2f) >= single (%.2f)" majority single)
    true
    (majority >= single);
  Alcotest.(check bool) "errors actually injected" true (single < 1.0)

(* --- Simulator: rejections, rounds, leases -------------------------------- *)

let mini_engine () =
  Engine.load
    (Parser.parse_exn
       {|
       rules:
         Item(x:1); Item(x:2); Item(x:3);
         Ask: Answer(x, value)/open <- Item(x);
       |})

let answer_count engine =
  match Reldb.Database.find (Engine.database engine) "Answer" with
  | Some rel -> Reldb.Relation.cardinal rel
  | None -> 0

let first_pending_policy engine ~worker:_ ~rng:_ ~round:_ =
  match Engine.pending engine with
  | o :: _ ->
      Crowd.Simulator.Answer
        (o.Engine.id, [ ("value", v_str "v") ], Crowd.Simulator.Enter_value)
  | [] -> Crowd.Simulator.Pass

let test_simulator_counts_rejections () =
  let engine = mini_engine () in
  (* Always submits the wrong attribute: every attempt must be counted,
     not silently discarded. *)
  let garbage engine ~worker:_ ~rng:_ ~round:_ =
    match Engine.pending engine with
    | o :: _ ->
        Crowd.Simulator.Answer
          (o.Engine.id, [ ("wrong", v_str "v") ], Crowd.Simulator.Enter_value)
    | [] -> Crowd.Simulator.Pass
  in
  let outcome =
    Crowd.Simulator.run ~stop:(fun _ -> false) ~workers:[ (v_str "kate", garbage) ] engine
  in
  (match outcome.rejections with
  | [ (w, n) ] ->
      Alcotest.(check bool) "worker named" true (Reldb.Value.equal w (v_str "kate"));
      Alcotest.(check bool) "every attempt counted" true (n >= 5)
  | _ -> Alcotest.fail "rejections must surface in the outcome");
  Alcotest.(check int) "nothing logged" 0 (List.length outcome.log)

let test_simulator_reports_actual_rounds () =
  let engine = mini_engine () in
  let pass _ ~worker:_ ~rng:_ ~round:_ = Crowd.Simulator.Pass in
  let outcome =
    Crowd.Simulator.run ~stop:(fun _ -> false) ~workers:[ (v_str "kate", pass) ] engine
  in
  Alcotest.(check bool) "stalled" true (outcome.stop_reason = `Stalled);
  Alcotest.(check int) "empty log" 0 (List.length outcome.log);
  (* The old implementation read the round off the last log entry and
     reported 0 here; five idle rounds actually ran. *)
  Alcotest.(check int) "idle rounds counted" 5 outcome.rounds

let test_simulator_lease_reassignment () =
  let engine = mini_engine () in
  (* w1 grabs a lease on every task it sees but never answers (Drop 1.0),
     then leaves at round 3; w2 inherits the tasks once the leases expire
     and finishes the campaign. *)
  let w1 =
    Crowd.Faults.wrap ~seed:5
      [ Crowd.Faults.Drop 1.0; Crowd.Faults.Crash_round 3 ]
      first_pending_policy
  in
  let outcome =
    Crowd.Simulator.run ~max_rounds:60
      ~lease:{ Lease.ttl = 2; max_timeouts = 10; backoff_base = 1; max_rejections = 10 }
      ~stop:(fun engine -> answer_count engine >= 3)
      ~workers:[ (v_str "w1", w1); (v_str "w2", first_pending_policy) ]
      engine
  in
  Alcotest.(check bool) "campaign completed" true (outcome.stop_reason = `Stopped);
  Alcotest.(check int) "all answers in" 3 (answer_count engine);
  (* While w1 hoarded the lease, w2's attempts were refused and counted. *)
  Alcotest.(check bool) "w2 was blocked at least once" true
    (List.exists
       (fun (w, n) -> Reldb.Value.equal w (v_str "w2") && n > 0)
       outcome.rejections);
  Alcotest.(check int) "no truncated machine runs" 0 outcome.capped_runs

let test_simulator_dead_letters_timeouts () =
  let engine = mini_engine () in
  (* Only a hoarding worker: every task's lease expires over and over
     until the retry budget dead-letters it — and the outcome says so. *)
  let w1 =
    Crowd.Faults.wrap ~seed:5 [ Crowd.Faults.Drop 1.0 ] first_pending_policy
  in
  let outcome =
    Crowd.Simulator.run ~max_rounds:100
      ~lease:{ Lease.ttl = 1; max_timeouts = 2; backoff_base = 1; max_rejections = 5 }
      ~stop:(fun engine -> answer_count engine >= 3)
      ~workers:[ (v_str "w1", w1) ]
      engine
  in
  Alcotest.(check bool) "terminates" true (outcome.stop_reason <> `Max_rounds);
  Alcotest.(check bool) "tasks were dead-lettered" true (outcome.dead_letters <> []);
  List.iter
    (fun ((_ : Engine.open_tuple), reason) ->
      match reason with
      | Lease.Timed_out -> ()
      | r -> Alcotest.failf "expected Timed_out, got %s" (Lease.reason_to_string r))
    outcome.dead_letters

(* --- Fault matrix ---------------------------------------------------------- *)

(* Every fault profile, against both value-entry TweetPecker variants,
   under the full lease + quorum runtime: campaigns must terminate (never
   hang until max_rounds), machine runs must never be truncated, and any
   dead-lettered task must carry a cause the profile can actually
   produce. *)
let test_fault_matrix () =
  let corpus = Tweets.Generator.generate ~seed:5 8 in
  List.iter
    (fun (name, faults) ->
      List.iter
        (fun variant ->
          let o =
            Tweetpecker.Runner.run ~seed:13 ~corpus ~faults
              ~lease:Lease.default_config ~quorum:2 variant
          in
          let label =
            Printf.sprintf "%s × %s" name (Tweetpecker.Programs.variant_name variant)
          in
          Alcotest.(check bool)
            (label ^ ": terminates")
            true
            (o.sim.stop_reason = `Stopped || o.sim.stop_reason = `Stalled);
          Alcotest.(check int) (label ^ ": no capped machine runs") 0 o.sim.capped_runs;
          List.iter
            (fun ((_ : Engine.open_tuple), reason) ->
              let ok =
                match (name, reason) with
                | "drop", Lease.Timed_out -> true
                | ("garble" | "all"), (Lease.Timed_out | Lease.Rejected_answers _) -> true
                | (("delay" | "duplicate" | "crash") [@warning "-11"]), Lease.Timed_out ->
                    true
                | _ -> false
              in
              if not ok then
                Alcotest.failf "%s: unexpected dead-letter reason %s" label
                  (Lease.reason_to_string reason))
            o.sim.dead_letters)
        Tweetpecker.Programs.[ VE; VEI ])
    Crowd.Faults.profiles

(* --- Checkpoint / replay --------------------------------------------------- *)

let engine_trace engine =
  List.map
    (fun (e : Engine.event) ->
      (e.clock, e.statement, e.label, e.valuation, e.fired, e.effects, e.by_human))
    (Engine.events engine)

let test_snapshot_rejects_garbage () =
  (match Engine.restore_string "not a snapshot" with
  | exception Engine.Snapshot_error Engine.Not_a_snapshot -> ()
  | _ -> Alcotest.fail "bad magic must raise Snapshot_error Not_a_snapshot");
  match Engine.restore_string "CYLOG-SNAPSHOT/1\ncorrupt" with
  | exception Engine.Snapshot_error (Engine.Unsupported_version 1) -> ()
  | _ -> Alcotest.fail "a v1 checkpoint must raise Snapshot_error (Unsupported_version 1)"

let test_snapshot_restore_midway () =
  (* Checkpoint with tasks still pending, keep answering on the restored
     engine: the continuation must behave like the original would. *)
  let engine, o = reject_engine () in
  Engine.set_lease_config engine (Some lease_cfg);
  (match Engine.assign engine o.Engine.id ~worker:(v_str "w1") ~now:0 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "assign");
  let snap = Engine.snapshot_string engine in
  let restored = Engine.restore_string snap in
  Alcotest.(check bool) "trace identical at checkpoint" true
    (engine_trace restored = engine_trace engine);
  Alcotest.(check bool) "lease state replayed" true
    (match Engine.assign restored o.Engine.id ~worker:(v_str "w2") ~now:0 with
    | Error (`Held w) -> Reldb.Value.equal w (v_str "w1")
    | _ -> false);
  let finish engine =
    (match Engine.supply engine o.Engine.id ~worker:(v_str "w1") [ ("v", v_str "done") ] with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "finish: %s" (Engine.reject_to_string e));
    ignore (Engine.run engine);
    engine_trace engine
  in
  Alcotest.(check bool) "continuations agree" true (finish restored = finish engine)

let test_snapshot_faulted_campaign_replays () =
  (* The strongest journal: a faulted, leased, quorum campaign writes
     J_assign/J_reclaim/J_set_lease/J_set_quorum entries besides the
     answers. Restore must reproduce the trace byte for byte. *)
  let corpus = Tweets.Generator.generate ~seed:5 6 in
  let o =
    Tweetpecker.Runner.run ~seed:13 ~corpus ~faults:Crowd.Faults.all
      ~lease:Lease.default_config ~quorum:2 Tweetpecker.Programs.VE
  in
  let snap = Engine.snapshot_string o.engine in
  let restored =
    Engine.restore_string ~aggregate:Crowd.Simulator.majority_aggregate snap
  in
  Alcotest.(check bool) "trace identical" true
    (engine_trace restored = engine_trace o.engine);
  Alcotest.(check bool) "dead letters identical" true
    (List.map (fun ((t : Engine.open_tuple), r) -> (t.id, r)) (Engine.dead_letters restored)
    = List.map (fun ((t : Engine.open_tuple), r) -> (t.id, r)) (Engine.dead_letters o.engine));
  Alcotest.(check bool) "re-snapshot byte-identical" true
    (Engine.snapshot_string restored = snap)

let suite =
  [ ( "robustness.parser",
      [ Alcotest.test_case "malformed programs give structured errors" `Quick
          test_parser_error_paths;
        Alcotest.test_case "no exception escapes Parser.parse" `Quick
          test_parser_error_paths_never_raise ] );
    ( "robustness.lease",
      [ Alcotest.test_case "grant, exclusivity, renewal" `Quick test_lease_grant_and_renew;
        Alcotest.test_case "timeout, backoff, dead letter" `Quick
          test_lease_timeout_backoff_dead_letter;
        Alcotest.test_case "rejection budget" `Quick test_lease_rejection_budget;
        Alcotest.test_case "redundant capacity" `Quick test_lease_redundant_capacity ] );
    ( "robustness.engine",
      [ Alcotest.test_case "typed supply rejections" `Quick test_typed_rejects;
        Alcotest.test_case "designated worker" `Quick test_designated_worker_reject;
        Alcotest.test_case "lease holder + rejection budget" `Quick
          test_lease_holder_reject_and_budget;
        Alcotest.test_case "decline is audited" `Quick test_decline_is_audited;
        Alcotest.test_case "run reports quiescent vs capped" `Quick test_run_signal ] );
    ( "robustness.quorum",
      [ Alcotest.test_case "majority resolution" `Quick test_quorum_majority;
        Alcotest.test_case "existence majority" `Quick test_quorum_existence_majority;
        Alcotest.test_case "majority >= single-answer accuracy" `Quick
          test_quorum_accuracy_vs_single ] );
    ( "robustness.simulator",
      [ Alcotest.test_case "rejections are counted" `Quick test_simulator_counts_rejections;
        Alcotest.test_case "actual rounds reported" `Quick
          test_simulator_reports_actual_rounds;
        Alcotest.test_case "expired leases are reassigned" `Quick
          test_simulator_lease_reassignment;
        Alcotest.test_case "hoarded tasks dead-letter as timeouts" `Quick
          test_simulator_dead_letters_timeouts ] );
    ( "robustness.faults",
      [ Alcotest.test_case "fault matrix terminates with correct reasons" `Slow
          test_fault_matrix ] );
    ( "robustness.snapshot",
      [ Alcotest.test_case "garbage is refused" `Quick test_snapshot_rejects_garbage;
        Alcotest.test_case "mid-campaign checkpoint continues identically" `Quick
          test_snapshot_restore_midway;
        Alcotest.test_case "faulted campaign replays byte-identically" `Slow
          test_snapshot_faulted_campaign_replays ] ) ]

#!/bin/sh
# Golden-file smoke for `cylog analyze` (dune alias analysis-smoke):
#   - text and json certificates match their goldens byte-for-byte, and a
#     second run is byte-identical to the first (determinism);
#   - --votes threads the quorum policy into the certificate (and a
#     designated open head stays at one answer per instance);
#   - exit codes: 1 iff an open statement is unbounded through a cycle —
#     standing and statically-dead opens still print their certificate
#     and exit 0;
#   - every shipped example program earns a finite total-answer bound.
set -u
CYLOG="$1"
status=0

check_golden() {
  # check_golden NAME GOLDEN CMD...
  name="$1"; golden="$2"; shift 2
  out=$("$@")
  if ! printf '%s\n' "$out" | diff -u "$golden" - >&2; then
    echo "analysis-smoke: $name: output differs from $golden" >&2
    status=1
  fi
  again=$("$@")
  if [ "$out" != "$again" ]; then
    echo "analysis-smoke: $name: two runs disagree (certificate not deterministic)" >&2
    status=1
  fi
}

check_golden figure13-text analyze/figure13.cert.expected \
  "$CYLOG" analyze ../examples/programs/figure13.cyl
check_golden figure13-json analyze/figure13.json.expected \
  "$CYLOG" analyze --format json ../examples/programs/figure13.cyl
check_golden figure3-votes3 analyze/figure3_ve.votes3.expected \
  "$CYLOG" analyze --votes 3 ../examples/programs/figure3_ve.cyl

check_exit() {
  # check_exit FILE WANT
  "$CYLOG" analyze "$1" >/dev/null 2>&1
  code=$?
  if [ "$code" -ne "$2" ]; then
    echo "analysis-smoke: analyze $1: exit $code, expected $2" >&2
    status=1
  fi
}

check_exit bad/unbounded_task_emission.cyl 1
check_exit bad/budget_unknown.cyl 0
check_exit bad/statically_dead_open.cyl 0
check_exit no_such_file.cyl 124

for f in ../examples/programs/*.cyl; do
  json=$("$CYLOG" analyze --format json "$f")
  code=$?
  if [ "$code" -ne 0 ]; then
    echo "analysis-smoke: $f: expected exit 0, got $code" >&2
    status=1
  fi
  case "$json" in
  *'"total_answers":{"kind":"finite"'*) ;;
  *)
    echo "analysis-smoke: $f: expected a finite total-answer bound, got: $json" >&2
    status=1
    ;;
  esac
done

exit $status

(* Differential testing: on randomly generated positive Datalog programs
   (no negation, no update/delete, no open predicates) three independent
   evaluators must agree on the least fixpoint:

   - the engine with seminaive delta evaluation (production strategy),
   - the engine with naive rescan (reference strategy),
   - the batch T_{P,S} consequence operator of the formal semantics.

   The cost-based join planner is held to a stronger standard than fixpoint
   agreement: with planning on or off the engine must produce the *same
   event trace* — same statements fired in the same order with the same
   valuations and effects — because planning is specified as a pure
   evaluation-order device (Eval.enumerate replays planned matches over
   the original body and the engine picks the conflict-resolution winner
   explicitly). The trace properties below check this on random programs,
   on all four TweetPecker variants end-to-end, and on the Figure 16
   Turing construction (whose /update rules exercise the planned-rescan
   path rather than the delta path).

   This pins down the two trickiest optimisations in the codebase. *)

open Cylog

(* --- Random program generation ------------------------------------------ *)

(* Relations R0..R3 over attributes a/b; constants 0..4; rule bodies of one
   or two positive atoms sharing variables, with an optional comparison. *)

let gen_program : Ast.program QCheck.arbitrary =
  let open QCheck.Gen in
  let rel = map (Printf.sprintf "R%d") (int_bound 3) in
  let const = map (fun i -> Ast.Const (Reldb.Value.Int i)) (int_bound 4) in
  let gen_fact =
    let* r = rel in
    let* va = const in
    let* vb = const in
    return
      (Ast.statement
         [ Ast.head_atom
             { Ast.pred = r;
               args =
                 [ { Ast.attr = "a"; bind = Ast.Bound va };
                   { Ast.attr = "b"; bind = Ast.Bound vb } ] } ]
         [])
  in
  let var_names = [ "x"; "y"; "z" ] in
  let gen_rule =
    let* n_atoms = int_range 1 2 in
    let* body_atoms =
      list_repeat n_atoms
        (let* r = rel in
         let* bind_a = oneofl var_names in
         let* bind_b = frequency [ (3, map Option.some (oneofl var_names)); (1, return None) ] in
         let args =
           [ { Ast.attr = "a"; bind = Ast.Bound (Ast.Var bind_a) } ]
           @
           match bind_b with
           | Some v -> [ { Ast.attr = "b"; bind = Ast.Bound (Ast.Var v) } ]
           | None -> []
         in
         return (Ast.literal (Ast.Pos { Ast.pred = r; args })))
    in
    let bound_vars =
      List.concat_map
        (fun (l : Ast.literal) ->
          match l.Ast.lit with
          | Ast.Pos { Ast.args; _ } ->
              List.filter_map
                (fun (arg : Ast.arg) ->
                  match arg.bind with Ast.Bound (Ast.Var v) -> Some v | _ -> None)
                args
          | _ -> [])
        body_atoms
      |> List.sort_uniq compare
    in
    let* cmp =
      frequency
        [ (2, return []);
          ( 1,
            let* v = oneofl bound_vars in
            let* limit = int_bound 4 in
            return
              [ Ast.literal
                  (Ast.Cmp (Ast.Var v, Ast.Le, Ast.Const (Reldb.Value.Int limit))) ] ) ]
    in
    let* head_rel = rel in
    let* ha = oneofl bound_vars in
    let* hb = oneofl bound_vars in
    return
      (Ast.statement
         [ Ast.head_atom
             { Ast.pred = head_rel;
               args =
                 [ { Ast.attr = "a"; bind = Ast.Bound (Ast.Var ha) };
                   { Ast.attr = "b"; bind = Ast.Bound (Ast.Var hb) } ] } ]
         (body_atoms @ cmp))
  in
  let gen =
    let* n_facts = int_range 1 6 in
    let* n_rules = int_range 1 5 in
    let* facts = list_repeat n_facts gen_fact in
    let* rules = list_repeat n_rules gen_rule in
    return { Ast.schemas = []; statements = facts @ rules; games = []; views = [] }
  in
  QCheck.make ~print:Pretty.program_to_string gen

(* --- Extracting comparable state ----------------------------------------- *)

let db_facts db =
  Reldb.Database.relations db
  |> List.concat_map (fun rel ->
         List.map
           (fun t -> (Reldb.Relation.name rel, Reldb.Tuple.to_string t))
           (Reldb.Relation.tuples rel))
  |> List.sort compare

let run_engine ~use_delta program =
  let engine = Engine.load ~use_delta program in
  ignore (Engine.run engine ~max_steps:20_000);
  db_facts (Engine.database engine)

(* The full observable behaviour of a run: every event with its clock,
   statement, valuation, rejection status and effects. Two engines with
   equal traces went through identical computations as far as any client
   can tell. *)
let engine_trace engine =
  List.map
    (fun (e : Engine.event) ->
      (e.clock, e.statement, e.label, e.valuation, e.fired, e.effects))
    (Engine.events engine)

let run_trace ~use_delta ~use_planner program =
  let engine = Engine.load ~use_delta ~use_planner program in
  ignore (Engine.run engine ~max_steps:20_000);
  engine_trace engine

(* Everything two engines can be compared on: the full event trace, the
   final database, and the marshalled API-call journal (byte-identical
   journals mean byte-identical snapshots-modulo-flags — the strongest
   equivalence the acceptance gate asks of delta vs rescan). *)
let engines_equivalent a b =
  engine_trace a = engine_trace b
  && db_facts (Engine.database a) = db_facts (Engine.database b)
  && Engine.journal_dump a = Engine.journal_dump b

let run_semantics program =
  match Semantics.behaviour ~bound:200 program (fun _ -> []) with
  | states, `Fixpoint -> Some (db_facts (Semantics.sure (List.nth states (List.length states - 1))))
  | _, `Bound_reached -> None

(* --- Properties ----------------------------------------------------------- *)

let prop_delta_equals_rescan =
  QCheck.Test.make ~name:"delta evaluation = naive rescan (trace + journal)"
    ~count:300 gen_program (fun program ->
      let load flag =
        let engine = Engine.load ~use_delta:flag program in
        ignore (Engine.run engine ~max_steps:20_000);
        engine
      in
      engines_equivalent (load true) (load false))

let prop_engine_equals_batch_semantics =
  QCheck.Test.make ~name:"operational engine = batch T_{P,S} fixpoint" ~count:200
    gen_program (fun program ->
      match run_semantics program with
      | Some batch -> run_engine ~use_delta:true program = batch
      | None -> QCheck.assume_fail ())

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine evaluation is deterministic" ~count:100 gen_program
    (fun program ->
      let trace () =
        let engine = Engine.load program in
        ignore (Engine.run engine ~max_steps:20_000);
        List.map
          (fun (e : Engine.event) -> (e.statement, e.valuation, e.fired))
          (Engine.events engine)
      in
      trace () = trace ())

let prop_fixpoint_is_stable =
  QCheck.Test.make ~name:"fixpoint is stable under further steps" ~count:100 gen_program
    (fun program ->
      let engine = Engine.load program in
      ignore (Engine.run engine ~max_steps:20_000);
      let before = db_facts (Engine.database engine) in
      (* A quiescent engine must stay quiescent. *)
      (match Engine.step engine with None -> true | Some _ -> false)
      && db_facts (Engine.database engine) = before)

let prop_monotone_growth =
  QCheck.Test.make ~name:"positive programs only grow the database" ~count:100
    gen_program (fun program ->
      let engine = Engine.load program in
      let sizes = ref [] in
      let rec loop n =
        if n > 20_000 then ()
        else begin
          sizes := Reldb.Database.total_tuples (Engine.database engine) :: !sizes;
          match Engine.step engine with Some _ -> loop (n + 1) | None -> ()
        end
      in
      loop 0;
      let ordered = List.rev !sizes in
      List.sort compare ordered = ordered)

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"parse (print program) = program" ~count:300 gen_program
    (fun program ->
      let printed = Pretty.program_to_string program in
      match Parser.parse printed with
      | Ok program' -> Ast.strip_program program' = Ast.strip_program program
      | Error _ -> false)

let prop_printed_program_runs_identically =
  QCheck.Test.make ~name:"printed program evaluates identically" ~count:100 gen_program
    (fun program ->
      let printed = Pretty.program_to_string program in
      run_engine ~use_delta:true (Parser.parse_exn printed)
      = run_engine ~use_delta:true program)

(* Extend the delta/rescan equivalence to the human half: add an open rule
   to each random program and drive both engines with a canonical simulated
   worker — always answer the pending open tuple with the least
   (relation, bound) fingerprint, supplying a value derived from the bound
   part. The policy is independent of engine-internal ordering, so the
   final databases must again coincide. *)
let with_open_rule (program : Ast.program) =
  let ask =
    Ast.statement ~label:"Ask"
      [ Ast.head_atom ~kind:(Ast.Open None)
          { Ast.pred = "Answer";
            args =
              [ { Ast.attr = "a"; bind = Ast.Auto };
                { Ast.attr = "v"; bind = Ast.Auto } ] } ]
      [ Ast.literal
          (Ast.Pos
             { Ast.pred = "R0"; args = [ { Ast.attr = "a"; bind = Ast.Auto } ] }) ]
  in
  let echo =
    (* Human answers feed back into machine rules. *)
    Ast.statement ~label:"Echo"
      [ Ast.head_atom
          { Ast.pred = "R1";
            args =
              [ { Ast.attr = "a"; bind = Ast.Bound (Ast.Var "v") };
                { Ast.attr = "b"; bind = Ast.Bound (Ast.Var "v") } ] } ]
      [ Ast.literal
          (Ast.Pos
             { Ast.pred = "Answer";
               args =
                 [ { Ast.attr = "a"; bind = Ast.Auto };
                   { Ast.attr = "v"; bind = Ast.Auto } ] }) ]
  in
  { program with Ast.statements = program.statements @ [ ask; echo ] }

let drive_with_canonical_human ~use_delta ?use_planner program =
  (* [with_open_rule]'s Ask/Echo pair is a deliberate open cycle, which
     strict linting now rejects as unbounded-task-emission. *)
  let engine = Engine.load ~lint:`Off ~use_delta ?use_planner program in
  ignore (Engine.run engine ~max_steps:20_000);
  let rec answer rounds =
    if rounds > 500 then ()
    else
      let pending =
        List.sort
          (fun (a : Engine.open_tuple) (b : Engine.open_tuple) ->
            compare
              (a.relation, Reldb.Tuple.to_string a.bound)
              (b.relation, Reldb.Tuple.to_string b.bound))
          (Engine.pending engine)
      in
      match pending with
      | [] -> ()
      | o :: _ ->
          let value = Reldb.Value.Int (Reldb.Tuple.hash o.bound mod 5) in
          (match
             Engine.supply engine o.id ~worker:(Reldb.Value.String "human")
               (List.map (fun a -> (a, value)) o.open_attrs)
           with
          | Ok _ -> ()
          | Error _ -> Engine.decline engine o.id);
          ignore (Engine.run engine ~max_steps:20_000);
          answer (rounds + 1)
  in
  answer 0;
  engine

let prop_delta_equals_rescan_with_humans =
  QCheck.Test.make
    ~name:"delta = rescan with a canonical human in the loop (trace + journal)"
    ~count:150 gen_program (fun program ->
      let program = with_open_rule program in
      engines_equivalent
        (drive_with_canonical_human ~use_delta:true program)
        (drive_with_canonical_human ~use_delta:false program))

(* --- Planner differential ------------------------------------------------- *)

let prop_planner_preserves_trace =
  QCheck.Test.make ~name:"planned evaluation replays the naive trace" ~count:200
    gen_program (fun program ->
      run_trace ~use_delta:true ~use_planner:true program
      = run_trace ~use_delta:true ~use_planner:false program
      && run_trace ~use_delta:false ~use_planner:true program
         = run_trace ~use_delta:false ~use_planner:false program)

let prop_planner_preserves_trace_with_humans =
  QCheck.Test.make ~name:"planner on = off with a canonical human in the loop"
    ~count:100 gen_program (fun program ->
      let program = with_open_rule program in
      engines_equivalent
        (drive_with_canonical_human ~use_delta:true ~use_planner:true program)
        (drive_with_canonical_human ~use_delta:true ~use_planner:false program))

(* End-to-end: the four TweetPecker variants on a small corpus. The
   simulator is deterministic given the seed and only observes the engine
   through its public API, so planner on/off must yield the same
   agreement history, rules, extractions and payoffs. *)
let tweetpecker_run variant ~use_planner =
  let corpus = Tweets.Generator.generate ~seed:5 12 in
  let o = Tweetpecker.Runner.run ~seed:11 ~corpus ~use_planner variant in
  ( o.agreed_events,
    List.sort compare o.agreed,
    List.sort compare o.rules_entered,
    List.sort compare o.extracts,
    List.sort compare o.payoffs )

let test_tweetpecker_planner_differential () =
  List.iter
    (fun variant ->
      Alcotest.(check bool)
        (Tweetpecker.Programs.variant_name variant ^ ": planner on = off")
        true
        (tweetpecker_run variant ~use_planner:true
        = tweetpecker_run variant ~use_planner:false))
    Tweetpecker.Programs.[ VE; VEI; VRE; VREI ]

(* The Figure 16 Turing construction updates TuringMachine and Tape in
   place, so its statements evaluate through the rescan strategy: this is
   the differential test for the planned-rescan minimal-support-key
   selection. *)
let turing_trace m ~input ~use_planner =
  let engine = Turing.Cylog_tm.load ~use_planner m ~input in
  ignore (Engine.run engine ~max_steps:20_000);
  engine_trace engine

let test_turing_planner_differential () =
  List.iter
    (fun ((m : Turing.Machine.t), input) ->
      Alcotest.(check bool)
        (m.name ^ ": planner on = off")
        true
        (turing_trace m ~input ~use_planner:true
        = turing_trace m ~input ~use_planner:false))
    [ (Turing.Machine.successor, [ "1"; "1" ]);
      (Turing.Machine.binary_increment, [ "1"; "0"; "1"; "1" ]);
      (Turing.Machine.parity, [ "1"; "1"; "1" ]) ]

(* --- Semi-naive vs naive on non-monotone programs -------------------------- *)

(* Random programs over a keyed relation K with /update and /delete heads:
   in-place mutation invalidates pending delta state mid-fixpoint, so these
   pin down the watch-triggered scoped re-derivation path (and, via the
   optional prefix negation, the generation watch that catches appends
   flipping a discovery-time [not K(..)]). Source-level generation keeps
   counterexamples directly readable. Runs are capped; a capped run is
   still trace-comparable, both engines cut off at the same step. *)
let gen_ud_program : string QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* kfacts = list_size (int_range 1 3) (pair (int_bound 4) (int_bound 4)) in
    let* rfacts =
      list_size (int_range 2 8) (triple (int_bound 2) (int_bound 4) (int_bound 4))
    in
    let* upds = list_size (int_range 1 3) (pair (int_bound 2) (int_bound 4)) in
    let* dels = list_size (int_bound 2) (pair (int_bound 2) (int_range 2 4)) in
    let* copies = list_size (int_bound 2) (pair (int_bound 2) (int_bound 2)) in
    let* with_neg = bool in
    let buf = Buffer.create 512 in
    Buffer.add_string buf "schema:\n  K(a key, b);\n\nrules:\n";
    List.iter
      (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  K(a:%d, b:%d);\n" a b))
      kfacts;
    List.iter
      (fun (r, a, b) ->
        Buffer.add_string buf (Printf.sprintf "  R%d(a:%d, b:%d);\n" r a b))
      rfacts;
    List.iter
      (fun (r, c) ->
        Buffer.add_string buf
          (Printf.sprintf "  K(a:x, b:y)/update <- R%d(a:x, b:y), y <= %d;\n" r c))
      upds;
    List.iter
      (fun (r, c) ->
        Buffer.add_string buf
          (Printf.sprintf "  R%d(a:x)/delete <- K(a:x, b:y), %d <= y;\n" r c))
      dels;
    List.iter
      (fun (r, s) ->
        Buffer.add_string buf
          (Printf.sprintf "  R%d(a:y, b:y) <- K(a:x, b:y), R%d(a:x);\n" r s))
      copies;
    if with_neg then
      Buffer.add_string buf "  R2(a:x, b:x) <- R0(a:x), not K(a:x), R1(a:x);\n";
    return (Buffer.contents buf)
  in
  QCheck.make ~print:(fun s -> s) gen

let run_ud ~use_delta src =
  let engine = Engine.load ~lint:`Off ~use_delta (Parser.parse_exn src) in
  ignore (Engine.run engine ~max_steps:3_000);
  engine

let prop_ud_delta_equals_rescan =
  QCheck.Test.make
    ~name:"update/delete programs: delta = rescan (trace + journal)" ~count:200
    gen_ud_program (fun src ->
      engines_equivalent (run_ud ~use_delta:true src) (run_ud ~use_delta:false src))

(* Snapshot taken mid-fixpoint: the restored engine rebuilds pending delta
   state (frontiers, discovered-but-unfired instances) purely by journal
   replay and must then finish the campaign step for step with the
   original. *)
let prop_ud_snapshot_midway =
  QCheck.Test.make
    ~name:"update/delete programs: mid-campaign snapshot resumes identically"
    ~count:100 gen_ud_program (fun src ->
      let engine = Engine.load ~lint:`Off (Parser.parse_exn src) in
      ignore (Engine.run engine ~max_steps:40);
      let restored = Engine.restore_string (Engine.snapshot_string engine) in
      ignore (Engine.run engine ~max_steps:3_000);
      ignore (Engine.run restored ~max_steps:3_000);
      engines_equivalent engine restored)

(* The Figure 16 Turing construction updates TuringMachine and Tape on
   every transition — the heaviest in-place-mutation workload in the
   repo — and must now run identically under semi-naive evaluation. *)
let test_turing_delta_differential () =
  List.iter
    (fun ((m : Turing.Machine.t), input) ->
      let load flag =
        let engine =
          Engine.load ~use_delta:flag
            (Parser.parse_exn (Turing.Cylog_tm.to_source m ~input))
        in
        ignore (Engine.run engine ~max_steps:20_000);
        engine
      in
      Alcotest.(check bool)
        (m.name ^ ": delta on = off")
        true
        (engines_equivalent (load true) (load false)))
    [ (Turing.Machine.successor, [ "1"; "1" ]);
      (Turing.Machine.binary_increment, [ "1"; "0"; "1"; "1" ]);
      (Turing.Machine.parity, [ "1"; "1"; "1" ]) ]

let test_tweetpecker_delta_differential () =
  let corpus = Tweets.Generator.generate ~seed:5 12 in
  List.iter
    (fun variant ->
      let run flag = Tweetpecker.Runner.run ~seed:11 ~corpus ~use_delta:flag variant in
      Alcotest.(check bool)
        (Tweetpecker.Programs.variant_name variant ^ ": delta on = off")
        true
        (engines_equivalent (run true).engine (run false).engine))
    Tweetpecker.Programs.[ VE; VEI; VRE; VREI ]

(* Faulted and adaptive quorum campaigns: lease churn, declines, banked
   ballots and early stopping all ride on the journal; a delta engine must
   reproduce the rescan engine's campaign byte for byte. *)
let quorum_campaign_engine ~use_delta ?faults ~seed () =
  let src =
    {|rules:
  Item(id:1); Item(id:2); Item(id:3);
  Q: LabelOf(id, label)/open <- Item(id);
|}
  in
  let engine = Engine.load ~use_delta (Parser.parse_exn src) in
  let policy engine ~worker:_ ~rng ~round:_ =
    match Engine.pending engine with
    | [] -> Crowd.Simulator.Pass
    | pending ->
        let o = List.nth pending (Random.State.int rng (List.length pending)) in
        let label = [| "cat"; "dog"; "eel" |].(Random.State.int rng 3) in
        Crowd.Simulator.Answer
          ( o.Engine.id,
            [ ("label", Reldb.Value.String label) ],
            Crowd.Simulator.Enter_value )
  in
  let workers =
    List.map (fun w -> (Reldb.Value.String w, policy)) [ "w1"; "w2"; "w3"; "w4" ]
  in
  let workers =
    match faults with
    | Some fs -> Crowd.Faults.inject ~seed fs workers
    | None -> workers
  in
  ignore
    (Crowd.Simulator.run ~seed ~max_rounds:100 ~lease:Lease.default_config ~quorum:2
       ~stop:(fun e -> Engine.pending e = [])
       ~workers engine);
  engine

let adaptive_campaign_engine ~use_delta ~seed () =
  let src =
    {|rules:
  Item(id:1); Item(id:2); Item(id:3); Item(id:4); Item(id:5); Item(id:6);
  Q: LabelOf(id, label)/open <- Item(id);
|}
  in
  let engine = Engine.load ~use_delta (Parser.parse_exn src) in
  let truth (o : Engine.open_tuple) =
    let label =
      match Reldb.Tuple.get_or_null o.bound "id" with
      | Reldb.Value.Int i -> [| "cat"; "dog"; "eel" |].(i mod 3)
      | _ -> "cat"
    in
    [ ("label", Reldb.Value.String label) ]
  in
  let workers =
    List.map
      (fun (w : Crowd.Worker.profile) -> (Reldb.Value.String w.name, w))
      (Crowd.Worker.crowd Crowd.Worker.diligent 3 @ [ Crowd.Worker.sloppy "s1" ])
  in
  let policy = Engine.Adaptive { tau = 0.9; min_votes = 2; max_votes = 5 } in
  ignore (Crowd.Simulator.run_routed ~seed ~policy ~truth ~workers engine);
  engine

let test_quorum_delta_differential () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "clean quorum campaign (seed %d): delta on = off" seed)
        true
        (engines_equivalent
           (quorum_campaign_engine ~use_delta:true ~seed ())
           (quorum_campaign_engine ~use_delta:false ~seed ()));
      Alcotest.(check bool)
        (Printf.sprintf "faulted quorum campaign (seed %d): delta on = off" seed)
        true
        (engines_equivalent
           (quorum_campaign_engine ~use_delta:true
              ~faults:(List.assoc "all" Crowd.Faults.profiles) ~seed ())
           (quorum_campaign_engine ~use_delta:false
              ~faults:(List.assoc "all" Crowd.Faults.profiles) ~seed ()));
      Alcotest.(check bool)
        (Printf.sprintf "adaptive campaign (seed %d): delta on = off" seed)
        true
        (engines_equivalent
           (adaptive_campaign_engine ~use_delta:true ~seed ())
           (adaptive_campaign_engine ~use_delta:false ~seed ())))
    [ 1; 7 ]

(* --- Semi-naive batch semantics -------------------------------------------- *)

(* [Semantics.behaviour_delta] must walk the exact state sequence of the
   full iteration — same sure tuples AND same open tuples in the same
   first-derivation order, state for state. *)
let same_behaviour program strategies =
  let states
      (behave :
        ?bound:int -> Ast.program -> Semantics.strategies ->
        Semantics.state list * [ `Fixpoint | `Bound_reached ]) =
    match behave ~bound:200 program strategies with
    | states, `Fixpoint -> Some states
    | _, `Bound_reached -> None
  in
  match (states Semantics.behaviour, states Semantics.behaviour_delta) with
  | None, _ | _, None -> QCheck.assume_fail ()
  | Some a, Some b ->
      List.length a = List.length b && List.for_all2 Semantics.equal a b

let prop_semantics_delta_equals_naive =
  QCheck.Test.make ~name:"batch T_{P,S}: semi-naive iteration = full iteration"
    ~count:200 gen_program (fun program -> same_behaviour program (fun _ -> []))

let prop_semantics_delta_equals_naive_with_humans =
  QCheck.Test.make
    ~name:"batch T_{P,S}: semi-naive = full with answering strategies" ~count:100
    gen_program (fun program ->
      let program = with_open_rule program in
      let answer_all st =
        List.map
          (fun (o : Semantics.open_fact) ->
            ( o,
              List.map
                (fun a -> (a, Reldb.Value.Int (Reldb.Tuple.hash o.bound mod 5)))
                o.open_attrs ))
          (Semantics.open_tuples st)
      in
      same_behaviour program answer_all)

(* --- Snapshot / replay differential --------------------------------------- *)

(* Checkpoint/recovery is event-sourced: a snapshot is the program plus
   the API-call journal, and restore replays the journal through the very
   same public entry points. So for ANY driving sequence — machine steps,
   human answers, declines — the restored engine must reproduce the event
   trace exactly, and re-snapshotting it must give back the same bytes
   (the replayed journal is the journal). *)
let drive_engine_with_canonical_human program =
  (* Deliberate open cycle in [with_open_rule]; see above. *)
  let engine = Engine.load ~lint:`Off program in
  ignore (Engine.run engine ~max_steps:20_000);
  let rec answer rounds =
    if rounds > 500 then ()
    else
      let pending =
        List.sort
          (fun (a : Engine.open_tuple) (b : Engine.open_tuple) ->
            compare
              (a.relation, Reldb.Tuple.to_string a.bound)
              (b.relation, Reldb.Tuple.to_string b.bound))
          (Engine.pending engine)
      in
      match pending with
      | [] -> ()
      | o :: _ ->
          let value = Reldb.Value.Int (Reldb.Tuple.hash o.bound mod 5) in
          (match
             Engine.supply engine o.id ~worker:(Reldb.Value.String "human")
               (List.map (fun a -> (a, value)) o.open_attrs)
           with
          | Ok _ -> ()
          | Error _ -> Engine.decline engine o.id);
          ignore (Engine.run engine ~max_steps:20_000);
          answer (rounds + 1)
  in
  answer 0;
  engine

let prop_snapshot_replay_is_trace_identical =
  QCheck.Test.make ~name:"snapshot -> restore replays the exact trace" ~count:100
    gen_program (fun program ->
      let program = with_open_rule program in
      let engine = drive_engine_with_canonical_human program in
      let snap = Engine.snapshot_string engine in
      let restored = Engine.restore_string snap in
      engine_trace restored = engine_trace engine
      && db_facts (Engine.database restored) = db_facts (Engine.database engine)
      && Engine.snapshot_string restored = snap)

let test_tweetpecker_snapshot_replay () =
  List.iter
    (fun variant ->
      let corpus = Tweets.Generator.generate ~seed:5 12 in
      let o = Tweetpecker.Runner.run ~seed:11 ~corpus variant in
      let snap = Engine.snapshot_string o.engine in
      let restored = Engine.restore_string snap in
      let name = Tweetpecker.Programs.variant_name variant in
      Alcotest.(check bool) (name ^ ": trace identical") true
        (engine_trace restored = engine_trace o.engine);
      Alcotest.(check bool) (name ^ ": database identical") true
        (db_facts (Engine.database restored) = db_facts (Engine.database o.engine));
      Alcotest.(check bool) (name ^ ": re-snapshot byte-identical") true
        (Engine.snapshot_string restored = snap))
    Tweetpecker.Programs.[ VE; VEI; VRE; VREI ]

(* Restore under an adaptive quorum: the policy is journaled data, the
   reputation model is derived state — so a restored engine must carry the
   same policy, reproduce the trace (including Adaptive_resolved effects),
   re-snapshot to the same bytes, and rebuild the reliability table
   observation for observation. [?aggregate] only substitutes the
   escalation closure; it must not disturb any of that. *)
let test_restore_under_adaptive_quorum () =
  let src =
    {|rules:
  Item(id:1); Item(id:2); Item(id:3);
  Q: Label(id, v)/open <- Item(id);
|}
  in
  let engine = Engine.load (Parser.parse_exn src) in
  Engine.set_quorum_policy engine
    (Engine.Adaptive { tau = 0.9; min_votes = 2; max_votes = 4 });
  ignore (Engine.run engine);
  let vote id worker value =
    match
      Engine.supply engine id ~worker:(Reldb.Value.String worker)
        [ ("v", Reldb.Value.String value) ]
    with
    | Ok _ -> ignore (Engine.run engine)
    | Error e -> Alcotest.failf "vote rejected: %s" (Engine.reject_to_string e)
  in
  (* Task 1: two agreeing votes — early stop. Task 2: four conflicting
     votes — escalation through the fallback aggregate. Task 3 stays
     pending with one banked vote. *)
  (match List.map (fun (o : Engine.open_tuple) -> o.id) (Engine.pending engine) with
  | [ t1; t2; t3 ] ->
      vote t1 "w1" "cat";
      vote t1 "w2" "cat";
      vote t2 "w1" "dog";
      vote t2 "w2" "cat";
      vote t2 "w3" "dog";
      vote t2 "w4" "cat";
      vote t3 "w1" "bird"
  | pending -> Alcotest.failf "expected 3 open tasks, got %d" (List.length pending));
  let snap = Engine.snapshot_string engine in
  List.iter
    (fun (label, restored) ->
      Alcotest.(check bool) (label ^ ": adaptive policy reinstated") true
        (Engine.quorum_policy_of restored
        = Some (Engine.Adaptive { tau = 0.9; min_votes = 2; max_votes = 4 }));
      Alcotest.(check bool) (label ^ ": trace identical") true
        (engine_trace restored = engine_trace engine);
      Alcotest.(check bool) (label ^ ": database identical") true
        (db_facts (Engine.database restored) = db_facts (Engine.database engine));
      Alcotest.(check bool) (label ^ ": re-snapshot byte-identical") true
        (Engine.snapshot_string restored = snap);
      Alcotest.(check bool) (label ^ ": reputation rebuilt identically") true
        (Engine.reliability_table restored = Engine.reliability_table engine))
    [ ("default", Engine.restore_string snap);
      ( "custom aggregate",
        Engine.restore_string ~aggregate:Engine.default_aggregate snap ) ];
  (* The early-stop and escalation events must be in the journal the
     restored engine replays. *)
  let adaptive_effects e =
    List.concat_map
      (fun (ev : Engine.event) ->
        List.filter_map
          (function
            | Engine.Adaptive_resolved { escalated; _ } -> Some escalated
            | _ -> None)
          ev.effects)
      (Engine.events e)
  in
  Alcotest.(check (list bool)) "one early stop, one escalation"
    [ false; true ]
    (adaptive_effects engine)

(* Views carve-out robustness: random raw template bodies (any characters,
   balanced braces) survive the pre-lexing split and do not disturb the
   rules around them. *)
let gen_template : string QCheck.arbitrary =
  let open QCheck.Gen in
  let chunk =
    oneof
      [ oneofl [ "<p>"; "</p>"; "it's"; "a \"quote\""; "x = 1;"; "{{tw}}"; "@#$%";
                 "rules"; "//not a comment in here?"; " " ];
        map (String.make 1) (char_range 'a' 'z') ]
  in
  let balanced =
    let* inner = list_size (int_bound 4) chunk in
    let* wrap = bool in
    let body = String.concat "" inner in
    return (if wrap then "{" ^ body ^ "}" else body)
  in
  QCheck.make ~print:(fun s -> s)
    (map (String.concat " ") (list_size (int_range 1 5) balanced))

let prop_views_split_preserves_rules =
  QCheck.Test.make ~name:"views carve-out preserves surrounding rules" ~count:300
    gen_template (fun template ->
      let src =
        Printf.sprintf "rules: R(x:1); views: view V { %s } rules: S(x) <- R(x);"
          template
      in
      match Parser.parse src with
      | Error _ -> false
      | Ok p ->
          List.length p.Ast.statements = 2
          && List.length p.Ast.views = 1
          && (List.hd p.Ast.views).Ast.view_name = "V")

let suite =
  [ ( "differential",
      List.map QCheck_alcotest.to_alcotest
        [ prop_delta_equals_rescan; prop_delta_equals_rescan_with_humans;
          prop_ud_delta_equals_rescan; prop_ud_snapshot_midway;
          prop_engine_equals_batch_semantics;
          prop_semantics_delta_equals_naive;
          prop_semantics_delta_equals_naive_with_humans;
          prop_engine_deterministic; prop_fixpoint_is_stable; prop_monotone_growth;
          prop_planner_preserves_trace; prop_planner_preserves_trace_with_humans;
          prop_parse_print_roundtrip; prop_printed_program_runs_identically;
          prop_views_split_preserves_rules; prop_snapshot_replay_is_trace_identical ]
      @ [ Alcotest.test_case "tweetpecker variants: planner on = off" `Slow
            test_tweetpecker_planner_differential;
          Alcotest.test_case "tweetpecker variants: delta on = off" `Slow
            test_tweetpecker_delta_differential;
          Alcotest.test_case "tweetpecker variants: snapshot replay" `Slow
            test_tweetpecker_snapshot_replay;
          Alcotest.test_case "restore under adaptive quorum" `Quick
            test_restore_under_adaptive_quorum;
          Alcotest.test_case "quorum campaigns: delta on = off" `Quick
            test_quorum_delta_differential;
          Alcotest.test_case "figure 16 turing: planner on = off" `Quick
            test_turing_planner_differential;
          Alcotest.test_case "figure 16 turing: delta on = off" `Quick
            test_turing_delta_differential ] ) ]

(* Campaign-monitor differential tests.

   The monitor obeys the same derivability contract as the metrics
   registry (docs/OBSERVABILITY.md): its whole state — lifecycle latency
   histograms, every series point, every alert firing — is ONE fold over
   [Engine.events], applied incrementally by the live monitor and from
   scratch by [Monitor.of_events]. So for random faulted adaptive-quorum
   campaigns the rebuilt view must equal the live view exactly, and it
   must survive snapshot/restore and journal recovery (both replay the
   same public entry points). Watchdog verdicts ride in the journaled
   [Alert_fired] effects, so the fold reads firings back instead of
   re-deciding them. *)

open Cylog

let monitor_view_of engine = Option.map Monitor.view (Engine.monitor engine)

let recount_view config engine =
  Some (Monitor.view (Monitor.of_events config (Engine.events engine)))

(* A faulted adaptive-quorum labelling campaign under the monitor: eight
   undesignated items, five workers wrapped in the "all" fault profile,
   lease runtime on, adaptive quorum, one monitor sample per round. *)
let campaign_src =
  {|rules:
  Item(id:1); Item(id:2); Item(id:3); Item(id:4);
  Item(id:5); Item(id:6); Item(id:7); Item(id:8);
  Q: LabelOf(id, label)/open <- Item(id);
|}

let campaign ?budget ?store ~seed () =
  let engine = Engine.load (Parser.parse_exn campaign_src) in
  (match store with
  | Some s ->
      Engine.journal_start ~storage:(Storage.Sim.storage s) engine "journal"
  | None -> ());
  let config = { Monitor.default_config with max_budget = budget } in
  let policy engine ~worker:_ ~rng ~round:_ =
    match Engine.pending engine with
    | [] -> Crowd.Simulator.Pass
    | pending ->
        let o = List.nth pending (Random.State.int rng (List.length pending)) in
        let label = [| "cat"; "dog"; "eel" |].(Random.State.int rng 3) in
        Crowd.Simulator.Answer
          ( o.Engine.id,
            [ ("label", Reldb.Value.String label) ],
            Crowd.Simulator.Enter_value )
  in
  let workers =
    List.map
      (fun w -> (Reldb.Value.String w, policy))
      [ "w1"; "w2"; "w3"; "w4"; "w5" ]
  in
  let workers =
    Crowd.Faults.inject ~seed (List.assoc "all" Crowd.Faults.profiles) workers
  in
  let outcome =
    Crowd.Simulator.run ~seed ~max_rounds:150 ~lease:Lease.default_config
      ~policy:(Engine.Adaptive { tau = 0.9; min_votes = 2; max_votes = 5 })
      ~monitor:config
      ~stop:(fun e -> Engine.pending e = [])
      ~workers engine
  in
  (engine, config, outcome)

(* --- The recount property: live = fold, across restore and recovery ------- *)

let prop_monitor_recount =
  QCheck.Test.make
    ~name:"monitor rebuilt from the event log = live (faulted adaptive campaigns)"
    ~count:25 QCheck.small_nat (fun seed ->
      let engine, config, _ = campaign ~seed () in
      recount_view config engine = monitor_view_of engine)

let prop_monitor_survives_restore =
  QCheck.Test.make
    ~name:"monitor survives snapshot/restore (restored view = live = fold)"
    ~count:15 QCheck.small_nat (fun seed ->
      let engine, config, _ = campaign ~seed () in
      let restored = Engine.restore_string (Engine.snapshot_string engine) in
      monitor_view_of restored = monitor_view_of engine
      && recount_view config restored = monitor_view_of restored)

let prop_monitor_survives_recover =
  QCheck.Test.make
    ~name:"monitor survives journal recovery (recovered view = live = fold)"
    ~count:10 QCheck.small_nat (fun seed ->
      let store = Storage.Sim.create () in
      let engine, config, _ = campaign ~store ~seed () in
      Option.iter Journal.close (Engine.durable_journal engine);
      let recovered, _ =
        Engine.recover ~storage:(Storage.Sim.storage store) "journal"
      in
      monitor_view_of recovered = monitor_view_of engine
      && recount_view config recovered = monitor_view_of recovered)

(* Crash-point recovery: the runner's fault-injecting storage kills the
   campaign mid-round and resumes it on the recovered engine; the monitor
   crosses the crash like every other piece of derived state. *)
let test_monitor_crash_recovery () =
  let corpus = Tweets.Generator.generate ~seed:5 6 in
  let monitor = Monitor.default_config in
  List.iter
    (fun seed ->
      let o =
        Tweetpecker.Runner.run ~seed ~corpus ~monitor
          ~storage_faults:(List.assoc "torn" Crowd.Faults.storage_profiles)
          Tweetpecker.Programs.VE
      in
      Alcotest.(check bool)
        (Printf.sprintf "crash campaign (seed %d): a monitor is installed" seed)
        true
        (Engine.monitor o.engine <> None);
      Alcotest.(check bool)
        (Printf.sprintf "crash campaign (seed %d): recount = live" seed)
        true
        (recount_view monitor o.engine = monitor_view_of o.engine))
    [ 3; 11 ]

(* --- Budget watchdog: journaled alert, fires once, stops the campaign ----- *)

let is_budget_alert = function Event.Budget_exceeded _ -> true | _ -> false

let test_budget_alert_fires_once () =
  let engine, config, outcome = campaign ~budget:10 ~seed:7 () in
  let mon = Option.get (Engine.monitor engine) in
  let budget_firings =
    List.filter
      (fun (f : Monitor.firing) -> is_budget_alert f.alert)
      (Monitor.firings mon)
  in
  Alcotest.(check int) "budget alert fired exactly once" 1
    (List.length budget_firings);
  Alcotest.(check bool) "campaign stopped via the alert" true
    (match outcome.stop_reason with
    | `Alert f -> is_budget_alert f.alert
    | _ -> false);
  (* The firing is evidence in the event log, not monitor memory: exactly
     one [Alert_fired] effect carries it, and the fold reads it back. *)
  let journaled =
    List.concat_map
      (fun (e : Engine.event) ->
        List.filter_map
          (function
            | Engine.Alert_fired { alert; _ } when is_budget_alert alert ->
                Some alert
            | _ -> None)
          e.effects)
      (Engine.events engine)
  in
  Alcotest.(check int) "exactly one Alert_fired effect journaled" 1
    (List.length journaled);
  Alcotest.(check bool) "recount reproduces the firing" true
    (recount_view config engine = monitor_view_of engine);
  (* Sampling after the latch: the watchdog stays quiet even though spent
     still exceeds the budget. *)
  let again = Engine.monitor_sample engine ~round:1000 in
  Alcotest.(check bool) "latched alert does not re-fire" true
    (not (List.exists (fun (f : Monitor.firing) -> is_budget_alert f.alert) again))

(* --- The metrics kill switch short-circuits the monitor ------------------- *)

let test_disabled_monitor_records_nothing () =
  let engine = Engine.load (Parser.parse_exn campaign_src) in
  ignore (Engine.run engine);
  Engine.set_monitor engine (Some Monitor.default_config);
  Telemetry.Metrics.set_enabled (Engine.metrics engine) false;
  let events_before = List.length (Engine.events engine) in
  let view_before = monitor_view_of engine in
  (* Sampling while disabled: no firings, no event, no monitor movement. *)
  let firings = Engine.monitor_sample engine ~round:1 in
  Alcotest.(check bool) "disabled sample returns no firings" true (firings = []);
  Alcotest.(check int) "disabled sample appends no event" events_before
    (List.length (Engine.events engine));
  Alcotest.(check bool) "disabled sample leaves the monitor unchanged" true
    (monitor_view_of engine = view_before);
  (* Lifecycle recording is off too: an answer flows through the engine
     without the monitor seeing it. *)
  (match Engine.pending engine with
  | o :: _ ->
      (match
         Engine.supply engine o.id ~worker:(Reldb.Value.String "w")
           [ ("label", Reldb.Value.String "cat") ]
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Engine.reject_to_string e));
      let mon = Option.get (Engine.monitor engine) in
      Alcotest.(check int) "disabled monitor counted no answers" 0
        (Monitor.answers mon)
  | [] -> Alcotest.fail "campaign produced no pending task");
  (* Re-enabling resumes sampling (the blackout window stays lost — the
     same caveat as the counter recount). *)
  Telemetry.Metrics.set_enabled (Engine.metrics engine) true;
  ignore (Engine.monitor_sample engine ~round:2);
  let mon = Option.get (Engine.monitor engine) in
  Alcotest.(check int) "re-enabled sample lands" 1 (Monitor.samples mon)

(* --- Quantile accessor ----------------------------------------------------- *)

(* Bounds default to [|1;2;5;10;25;50;100;250;1000|]; observations are
   bucketed, quantiles interpolate linearly within the bucket. *)
let test_quantile () =
  let m = Telemetry.Metrics.create () in
  Alcotest.(check bool) "empty histogram has no quantile" true
    (Telemetry.Metrics.histogram m "h" = None);
  for _ = 1 to 10 do
    Telemetry.Metrics.observe m "h" 4 (* bucket (2,5] *)
  done;
  let h = Option.get (Telemetry.Metrics.histogram m "h") in
  let q p = Telemetry.Metrics.quantile h p in
  Alcotest.(check bool) "all mass in one bucket: p50 inside (2,5]" true
    (q 0.5 > 2.0 && q 0.5 <= 5.0);
  Alcotest.(check bool) "quantiles are monotone" true
    (q 0.25 <= q 0.5 && q 0.5 <= q 0.95 && q 0.95 <= q 0.99);
  Telemetry.Metrics.observe m "h" 100_000;
  let h = Option.get (Telemetry.Metrics.histogram m "h") in
  Alcotest.(check (float 1e-9)) "overflow bucket clamps to the last bound"
    1000.0
    (Telemetry.Metrics.quantile h 1.0);
  Alcotest.(check (float 1e-9)) "clamped q below 0 reads the minimum"
    (Telemetry.Metrics.quantile h 0.0)
    (Telemetry.Metrics.quantile h (-1.0))

let suite =
  [ ( "monitor",
      List.map QCheck_alcotest.to_alcotest
        [ prop_monitor_recount; prop_monitor_survives_restore;
          prop_monitor_survives_recover ]
      @ [ Alcotest.test_case "crash recovery: recount = live" `Slow
            test_monitor_crash_recovery;
          Alcotest.test_case "budget watchdog fires once and stops the campaign"
            `Quick test_budget_alert_fires_once;
          Alcotest.test_case "metrics kill switch short-circuits the monitor"
            `Quick test_disabled_monitor_records_nothing;
          Alcotest.test_case "histogram quantiles interpolate" `Quick
            test_quantile ] ) ]

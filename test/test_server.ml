(* The sharded campaign server (lib/server): deterministic routing, the
   1-shard differential against a bare engine, per-shard journal replay
   equivalence, and killing-and-recovering a subset of shards mid-campaign
   over fault-injecting storage — the fleet must keep serving on the live
   shards and no acknowledged operation may be lost. *)

open Cylog
module Sim = Storage.Sim
module Router = Server.Router
module Fleet_sim = Crowd.Fleet_sim

let engine_trace engine =
  List.map
    (fun (e : Engine.event) ->
      (e.clock, e.statement, e.label, e.valuation, e.fired, e.effects, e.by_human))
    (Engine.events engine)

let human_events engine =
  List.length
    (List.filter (fun (e : Engine.event) -> e.by_human <> None) (Engine.events engine))

let campaign = Fleet_sim.campaign_name 0

let server_engine server i ~campaign =
  match Server.Shard.engine (Server.shard server i) ~campaign with
  | Some e -> e
  | None -> Alcotest.fail (Printf.sprintf "shard %d: no engine for %s" i campaign)

(* --- Router ---------------------------------------------------------------- *)

let test_router_determinism () =
  let vs = [ Reldb.Value.Int 42; Reldb.Value.String "attr" ] in
  Alcotest.(check int) "hash is a pure function" (Router.hash_values vs)
    (Router.hash_values vs);
  Alcotest.(check bool) "hash is non-negative" true (Router.hash_values vs >= 0);
  (* The separator fold keeps concatenation-equal keys apart. *)
  Alcotest.(check bool) "position boundaries matter" true
    (Router.hash_values [ Reldb.Value.String "ab"; Reldb.Value.String "c" ]
    <> Router.hash_values [ Reldb.Value.String "a"; Reldb.Value.String "bc" ]);
  for id = 0 to 99 do
    let s = Router.shard_of_values ~shards:4 [ Reldb.Value.Int id ] in
    Alcotest.(check bool) "shard index in range" true (s >= 0 && s < 4);
    Alcotest.(check int) "one shard means shard 0" 0
      (Router.shard_of_values ~shards:1 [ Reldb.Value.Int id ])
  done;
  (* All four shards get some of a hundred keys — the hash spreads. *)
  let hit = Array.make 4 false in
  for id = 0 to 99 do
    hit.(Router.shard_of_values ~shards:4 [ Reldb.Value.Int id ]) <- true
  done;
  Alcotest.(check bool) "keys spread over every shard" true (Array.for_all Fun.id hit)

let test_router_split () =
  let items = 20 in
  let program = Fleet_sim.campaign_program ~items ~offset:0 in
  (* One shard: the split program is the input program. *)
  (match Router.split_program ~shards:1 Fleet_sim.placements program with
  | [| p |] ->
      Alcotest.(check bool) "1-shard split is the identity" true
        (p.Ast.statements = program.Ast.statements)
  | _ -> Alcotest.fail "1-shard split must yield one program");
  let shards = 4 in
  let split = Router.split_program ~shards Fleet_sim.placements program in
  Alcotest.(check int) "one program per shard" shards (Array.length split);
  (* Partitioned facts land exactly on their hash owner; everything else is
     replicated to all shards. *)
  let keys_of p =
    List.filter_map (Router.fact_key Fleet_sim.placements) p.Ast.statements
  in
  let all_keys = keys_of program in
  Alcotest.(check int) "every item is a partitioned fact" items
    (List.length all_keys);
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun i p ->
      List.iter
        (fun key ->
          Alcotest.(check int)
            (Printf.sprintf "fact on its hash owner (shard %d)" i)
            (Router.shard_of_values ~shards key)
            i;
          Alcotest.(check bool) "fact owned by exactly one shard" false
            (Hashtbl.mem seen key);
          Hashtbl.add seen key ())
        (keys_of p);
      let replicated =
        List.length p.Ast.statements - List.length (keys_of p)
      in
      Alcotest.(check int) "non-fact statements replicated everywhere"
        (List.length program.Ast.statements - items)
        replicated)
    split;
  Alcotest.(check int) "no partitioned fact lost" items (Hashtbl.length seen)

(* --- 1-shard differential -------------------------------------------------- *)

(* A 1-shard server driven purely through the task-queue API must be
   observationally a bare engine: its journal is a script of public-API
   calls, so replaying it through [Engine.apply_entry] on a freshly loaded
   bare engine must reproduce the journal bytes and the event trace
   exactly. Any server-private mutation that bypassed the engine's public
   API would break this equality. *)
let test_one_shard_differential () =
  let sim = Sim.create () in
  let config =
    { Fleet_sim.default_config with campaigns = 1; items = 8; workers = 4; seed = 7 }
  in
  let server =
    Server.create ~journal_root:"srv" ~storage:(fun _ -> Sim.storage sim) ~shards:1 ()
  in
  Fleet_sim.open_campaigns server config;
  let outcome = Fleet_sim.run ~config server in
  Alcotest.(check int) "campaign drained" 8 outcome.Fleet_sim.resolved;
  Alcotest.(check int) "quorum of 3 per item" 24 outcome.Fleet_sim.answers;
  let live = server_engine server 0 ~campaign in
  let bare = Engine.load (Fleet_sim.campaign_program ~items:8 ~offset:0) in
  let bare_sim = Sim.create () in
  Engine.journal_start ~storage:(Sim.storage bare_sim) bare "bare";
  List.iter (Engine.apply_entry bare) (Engine.journal_entries live);
  Alcotest.(check string) "journal bytes identical to the bare engine"
    (Engine.journal_dump live) (Engine.journal_dump bare);
  Alcotest.(check bool) "event traces identical" true
    (engine_trace live = engine_trace bare);
  Alcotest.(check int) "same pending pool (empty)" 0
    (List.length (Engine.pending bare))

(* --- N-shard journal replay equivalence ------------------------------------ *)

let test_multi_shard_replay () =
  let shards = 3 in
  let sims = Array.init shards (fun _ -> Sim.create ()) in
  let journal_config =
    { Journal.default_config with compact_every = Some 32 }
  in
  let config =
    { Fleet_sim.default_config with campaigns = 2; items = 12; workers = 6; seed = 11 }
  in
  let server =
    Server.create ~journal_root:"srv" ~journal_config
      ~storage:(fun i -> Sim.storage sims.(i))
      ~shards ()
  in
  Fleet_sim.open_campaigns server config;
  let outcome = Fleet_sim.run ~config server in
  Alcotest.(check int) "both campaigns drained" 24 outcome.Fleet_sim.resolved;
  (* Every shard's journal recovers to its own engine's trace, byte for
     byte — shard by shard, campaign by campaign. *)
  List.iteri
    (fun k name ->
      for i = 0 to shards - 1 do
        let live = server_engine server i ~campaign:name in
        let dump = Engine.journal_dump live in
        let trace = engine_trace live in
        (* Checkpoint campaign 0's slots first so recovery demonstrates the
           O(live state) restore: a snapshot base plus at most the shard's
           compaction-request entry. *)
        if k = 0 then Engine.compact_journal live;
        let stats = Server.recover_shard server i ~campaign:name () in
        let recovered = server_engine server i ~campaign:name in
        Alcotest.(check string)
          (Printf.sprintf "shard %d/%s: journal replays byte-identically" i name)
          dump (Engine.journal_dump recovered);
        Alcotest.(check bool)
          (Printf.sprintf "shard %d/%s: trace replays exactly" i name)
          true
          (trace = engine_trace recovered);
        if k = 0 then
          Alcotest.(check bool)
            (Printf.sprintf "shard %d/%s: post-compaction restore is O(live state)" i name)
            true
            (stats.Engine.records_replayed <= 2)
      done)
    (List.init config.Fleet_sim.campaigns Fleet_sim.campaign_name)

(* --- Kill and recover a subset of shards mid-campaign ---------------------- *)

(* Shards 0 and 2 run on storage that dies at a planned operation count;
   shard 1 never faults. The drive loop keeps leasing and supplying
   through the server API; when a reply says [Shard_down] the loop leaves
   the shard dead for the rest of the round (the live shards must keep
   accepting answers) and repairs it from the crash image at the start of
   the next round. fsync is [Always], so every acknowledged answer must
   survive into the recovered engine. *)
let test_kill_and_recover_subset () =
  let shards = 3 in
  let items = 18 in
  (* Under this item count and hash, shards 0 and 1 own all the work
     (shard 2 draws no items) — so those are the two worth killing. *)
  let plan_for = function
    | 0 -> Some { Sim.default_plan with crash_at_op = Some 20 }
    | 1 -> Some { Sim.default_plan with crash_at_op = Some 36 }
    | _ -> None
  in
  let sims = Array.init shards (fun i -> Sim.create ?plan:(plan_for i) ()) in
  let journal_config = { Journal.default_config with compact_every = Some 8 } in
  let server =
    Server.create ~journal_root:"srv" ~journal_config
      ~storage:(fun i -> Sim.storage sims.(i))
      ~shards ()
  in
  (* No lease runtime and no quorum: one accepted answer retires a task,
     which keeps the op-count coordinate of [crash_at_op] easy to place
     mid-campaign. *)
  Server.open_campaign server ~name:campaign ~partition_by:Fleet_sim.placements
    (Fleet_sim.campaign_program ~items ~offset:0);
  let cursor = Server.poll_cursor server ~campaign in
  let workers = List.init 4 (fun i -> Reldb.Value.String (Printf.sprintf "w%d" (i + 1))) in
  let acked = Array.make shards 0 in
  let down = Array.make shards false in
  let recoveries = ref 0 in
  let served_while_down = ref 0 in
  let resolved = ref 0 in
  let answer_for (ot : Engine.open_tuple) =
    let id =
      match Reldb.Tuple.get ot.Engine.bound "id" with
      | Some (Reldb.Value.Int i) -> i
      | _ -> 0
    in
    List.map
      (fun attr -> (attr, Reldb.Value.String (Printf.sprintf "label-%d" (id mod 5))))
      ot.Engine.open_attrs
  in
  let recover i =
    (* The byte image a real disk would present after the crash: fsynced
       records intact, the unsynced tail gone. *)
    let image = Sim.after_crash sims.(i) in
    sims.(i) <- image;
    let stats =
      Server.recover_shard server i ~campaign ~storage:(Sim.storage image) ()
    in
    down.(i) <- false;
    incr recoveries;
    (* fsync Always: every answer whose reply the caller saw is in the
       recovered engine. The in-flight (unacknowledged) answer may or may
       not have survived — either is legal. *)
    Alcotest.(check bool)
      (Printf.sprintf "shard %d: no acknowledged answer lost" i)
      true
      (human_events (server_engine server i ~campaign) >= acked.(i));
    Alcotest.(check bool)
      (Printf.sprintf "shard %d: restore replays a bounded tail" i)
      true
      (stats.Engine.records_replayed <= 16)
  in
  let round = ref 0 in
  (* [pending_total] counts only live slots, so a downed shard hides its
     pending work — keep driving while any shard still needs repair. *)
  while
    (Server.pending_total server > 0 || Array.exists Fun.id down) && !round < 200
  do
    incr round;
    Array.iteri (fun i d -> if d then recover i) down;
    List.iter
      (fun worker ->
        match Server.lease server ~campaign ~worker ~now:!round with
        | None -> ()
        | Some (task, ot, _view) -> (
            match Server.supply server ~campaign task ~worker (answer_for ot) with
            | Server.Accepted _ ->
                acked.(task.Server.shard) <- acked.(task.Server.shard) + 1;
                if Array.exists Fun.id down then incr served_while_down
            | Server.Rejected _ -> ()
            | Server.Shard_down i -> down.(i) <- true))
      workers;
    List.iter
      (function
        | Server.Task_resolved _ -> incr resolved
        | Server.Task_dead _ -> Alcotest.fail "no task should dead-letter here")
      (Server.resolve_poll server ~campaign cursor)
  done;
  Alcotest.(check int) "both planned crashes hit and were repaired" 2 !recoveries;
  Alcotest.(check bool) "live shards kept serving while a shard was down" true
    (!served_while_down > 0);
  Alcotest.(check int) "campaign drained despite the crashes" 0
    (Server.pending_total server);
  Alcotest.(check int) "every item resolved through the poll" items !resolved

let suite =
  [ ( "server.router",
      [ Alcotest.test_case "hash and shard assignment are deterministic" `Quick
          test_router_determinism;
        Alcotest.test_case "split partitions facts, replicates the rest" `Quick
          test_router_split ] );
    ( "server.differential",
      [ Alcotest.test_case "1-shard server is a bare engine, byte for byte" `Quick
          test_one_shard_differential;
        Alcotest.test_case "every shard's journal replays its engine's trace" `Quick
          test_multi_shard_replay ] );
    ( "server.recovery",
      [ Alcotest.test_case "kill and recover a subset of shards mid-campaign" `Quick
          test_kill_and_recover_subset ] ) ]

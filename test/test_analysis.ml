(* Property tests for the static budget certificate (Cylog.Analysis).

   Soundness: a campaign never collects more accepted answers than the
   certificate's total-answer bound — checked live, recounted from the
   event log, and across snapshot/restore, with the engine's own
   cross-check counter [analysis.bound.violations] staying 0 throughout.

   Monotonicity: adding a base fact can only grow bounds — the abstract
   domain is ordered 0 < finite(n) < bounded-by-input < unbounded, and
   no relation's bound, nor the totals, ever moves down the order. *)

open Cylog

(* The differential generator's positive Datalog core plus one open
   statement fed from R0 with no feedback: the open relation Answer is
   never read back, so every relation bound — and the certificate — is
   finite. *)
let with_bounded_open (program : Ast.program) =
  let ask =
    Ast.statement ~label:"Ask"
      [ Ast.head_atom ~kind:(Ast.Open None)
          { Ast.pred = "Answer";
            args =
              [ { Ast.attr = "a"; bind = Ast.Auto };
                { Ast.attr = "v"; bind = Ast.Auto } ] } ]
      [ Ast.literal
          (Ast.Pos
             { Ast.pred = "R0"; args = [ { Ast.attr = "a"; bind = Ast.Auto } ] }) ]
  in
  { program with Ast.statements = program.statements @ [ ask ] }

let answer_everything engine =
  ignore (Engine.run engine ~max_steps:20_000);
  let rec answer rounds =
    if rounds > 500 then ()
    else
      match Engine.pending engine with
      | [] -> ()
      | (o : Engine.open_tuple) :: _ ->
          let value = Reldb.Value.Int (Reldb.Tuple.hash o.bound mod 5) in
          (match
             Engine.supply engine o.id ~worker:(Reldb.Value.String "human")
               (List.map (fun a -> (a, value)) o.open_attrs)
           with
          | Ok _ -> ()
          | Error _ -> Engine.decline engine o.id);
          ignore (Engine.run engine ~max_steps:20_000);
          answer (rounds + 1)
  in
  answer 0

let accepted_of m = Telemetry.Metrics.counter m "answers.accepted"
let violations_of m = Telemetry.Metrics.counter m "analysis.bound.violations"

let finite_bound engine =
  match Engine.certificate engine with
  | None -> None
  | Some c -> Analysis.finite c.Analysis.cert_total_answers

let prop_certificate_sound =
  QCheck.Test.make
    ~name:"certificate soundness: answers <= static bound (live/recount/restore)"
    ~count:150 Test_differential.gen_program (fun program ->
      let program = with_bounded_open program in
      let engine = Engine.load program in
      let bound =
        match finite_bound engine with
        | Some b -> b
        | None -> QCheck.Test.fail_report "bounded open program got no finite bound"
      in
      answer_everything engine;
      let m = Engine.metrics engine in
      let live_ok = accepted_of m <= bound && violations_of m = 0 in
      (* Recounted: the fold over the event log must agree on the spend,
         and — since analysis.* counters are engine-local, not
         journal-derived — report no violations either. *)
      let m' = Engine.metrics_of_events (Engine.events engine) in
      let recount_ok = accepted_of m' = accepted_of m && violations_of m' = 0 in
      (* Across snapshot/restore the replayed engine re-earns the same
         certificate and the same spend, still within bound. *)
      let restored = Engine.restore_string (Engine.snapshot_string engine) in
      let rm = Engine.metrics restored in
      let restore_ok =
        (match finite_bound restored with Some b -> accepted_of rm <= b | None -> false)
        && violations_of rm = 0
      in
      live_ok && recount_ok && restore_ok)

(* -- Monotonicity ---------------------------------------------------------- *)

let leq a b =
  match (a, b) with
  | Analysis.Zero, _ -> true
  | _, Analysis.Unbounded _ -> true
  | Analysis.Finite x, Analysis.Finite y -> x <= y
  | Analysis.Finite _, Analysis.Bounded_by_input -> true
  | Analysis.Bounded_by_input, Analysis.Bounded_by_input -> true
  | _, _ -> false

let gen_program_and_fact =
  let open QCheck.Gen in
  let gen =
    let* program = QCheck.gen Test_differential.gen_program in
    let* r = map (Printf.sprintf "R%d") (int_bound 3) in
    let* va = int_bound 9 in
    let* vb = int_bound 9 in
    let fact =
      Ast.statement
        [ Ast.head_atom
            { Ast.pred = r;
              args =
                [ { Ast.attr = "a"; bind = Ast.Bound (Ast.Const (Reldb.Value.Int va)) };
                  { Ast.attr = "b"; bind = Ast.Bound (Ast.Const (Reldb.Value.Int vb)) } ] } ]
        []
    in
    return (with_bounded_open program, fact)
  in
  QCheck.make
    ~print:(fun (p, f) ->
      Pretty.program_to_string { p with Ast.statements = p.Ast.statements @ [ f ] })
    gen

let prop_monotone =
  QCheck.Test.make ~name:"adding a base fact never shrinks a bound" ~count:200
    gen_program_and_fact (fun (program, fact) ->
      let before = Analysis.analyze program in
      let after =
        Analysis.analyze
          { program with Ast.statements = program.Ast.statements @ [ fact ] }
      in
      let card_after r =
        Option.value
          (List.assoc_opt r after.Analysis.cert_relations)
          ~default:Analysis.Zero
      in
      List.for_all
        (fun (r, c) -> leq c (card_after r))
        before.Analysis.cert_relations
      && leq before.Analysis.cert_total_tasks after.Analysis.cert_total_tasks
      && leq before.Analysis.cert_total_answers after.Analysis.cert_total_answers)

(* -- Campaigns: faulted and adaptive runs stay within the certificate ------ *)

let check_campaign name (o : Tweetpecker.Runner.outcome) =
  (match Engine.certificate o.engine with
  | None -> Alcotest.fail (name ^ ": campaign engine carries no certificate")
  | Some cert -> (
      match Analysis.finite cert.Analysis.cert_total_answers with
      | None -> Alcotest.fail (name ^ ": VE certificate should be finite")
      | Some bound ->
          let m = Engine.metrics o.engine in
          Alcotest.(check bool)
            (Printf.sprintf "%s: accepted %d <= bound %d" name (accepted_of m) bound)
            true
            (accepted_of m <= bound)));
  let m = Engine.metrics o.engine in
  Alcotest.(check int) (name ^ ": live violations") 0 (violations_of m);
  let m' = Engine.metrics_of_events (Engine.events o.engine) in
  Alcotest.(check int)
    (name ^ ": recounted spend agrees")
    (accepted_of m) (accepted_of m')

let test_faulted_campaigns_within_bound () =
  let corpus = Tweets.Generator.generate ~seed:5 6 in
  List.iter
    (fun (name, faults) ->
      let o = Tweetpecker.Runner.run ~seed:11 ~corpus ~faults ~quorum:3 Tweetpecker.Programs.VE in
      check_campaign ("faults=" ^ name) o)
    Crowd.Faults.profiles

let test_adaptive_campaign_within_bound () =
  let corpus = Tweets.Generator.generate ~seed:7 6 in
  let o =
    Tweetpecker.Runner.run ~seed:3 ~corpus
      ~policy:(Engine.Adaptive { tau = 0.8; min_votes = 2; max_votes = 5 })
      Tweetpecker.Programs.VE
  in
  check_campaign "adaptive" o

let suite =
  [ ( "analysis",
      [ QCheck_alcotest.to_alcotest prop_certificate_sound;
        QCheck_alcotest.to_alcotest prop_monotone;
        Alcotest.test_case "faulted campaigns stay within the certificate" `Quick
          test_faulted_campaigns_within_bound;
        Alcotest.test_case "adaptive campaign stays within the certificate" `Quick
          test_adaptive_campaign_within_bound ] ) ]

(* Aggregates all suites; each test_<module>.ml contributes a [suite]. *)
let () =
  Alcotest.run "cylog"
    (Test_reldb.suite @ Test_regex.suite @ Test_cylog.suite @ Test_lint.suite
   @ Test_game.suite @ Test_tweets.suite @ Test_crowd.suite
   @ Test_tweetpecker.suite @ Test_turing.suite @ Test_quality.suite
   @ Test_differential.suite @ Test_robustness.suite @ Test_telemetry.suite
   @ Test_durability.suite @ Test_monitor.suite @ Test_analysis.suite
   @ Test_server.suite)

(** Multi-campaign crowd simulation against the sharded server.

    Where {!Simulator} drives one bare engine, this loop drives a
    {!Server.t} purely through its task-queue API — lease, supply,
    resolve-poll — the way a real worker frontend would: M simulated
    workers take turns each round asking the fleet for work on a
    round-robin of K labeling campaigns, answer with seeded noisy labels
    (plurality converges on the majority label), and the loop tracks
    resolutions through {!Server.resolve_poll} cursors rather than
    peeking at engine state. One seeded RNG makes the whole fleet run
    deterministic — the serve smoke test replays it bit for bit. *)

type config = {
  seed : int;
  workers : int;
  campaigns : int;
  items : int;  (** label tasks per campaign *)
  accuracy : float;  (** P(a worker answers the true label) *)
  quorum : int;  (** votes per task; <= 1 leaves quorum off *)
  lease : Cylog.Lease.config option;
  monitor : Cylog.Monitor.config option;
  max_rounds : int;
}

val default_config : config
(** seed 42, 8 workers, 2 campaigns × 24 items, accuracy 0.85, quorum 3,
    default lease, a monitor with series capacity 512, 200 rounds. *)

val campaign_name : int -> string
(** ["campaign-<k>"]. *)

val campaign_program : items:int -> offset:int -> Cylog.Ast.program
(** The generated labeling campaign: [Item(id)] facts with ids starting
    at [offset] (so campaigns do not collide), one open rule asking
    [LabelOf(id, label)/open] per item, and a [LabelOf] view. *)

val placements : Server.Router.placement list
(** Partition [Item] by its [id] — the instance key the router hashes. *)

val open_campaigns : Server.t -> config -> unit
(** Open the [config.campaigns] generated campaigns on the server with
    the config's lease/quorum/monitor settings. *)

type outcome = {
  rounds : int;
  leases : int;  (** grants across the fleet *)
  answers : int;  (** accepted answers *)
  rejections : int;  (** rejected answers and failed leases *)
  resolved : int;  (** resolutions seen through {!Server.resolve_poll} *)
  dead : int;  (** dead-letterings seen through the poll *)
  stop_reason : [ `Done | `Stalled | `Max_rounds ];
}

val run : ?config:config -> Server.t -> outcome
(** Drive already-opened campaigns (see {!open_campaigns}) to completion:
    stops when every campaign's pending pool is empty ([`Done]), after 5
    consecutive rounds without an accepted answer ([`Stalled]), or at
    [config.max_rounds]. *)

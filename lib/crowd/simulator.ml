type action_kind = Enter_value | Select_value | Reject_value | Enter_rule

type log_entry = {
  round : int;
  clock : int;
  worker : Reldb.Value.t;
  kind : action_kind;
  relation : string;
  values : (string * Reldb.Value.t) list;
  progress : float;
}

type decision =
  | Answer of Cylog.Engine.open_id * (string * Reldb.Value.t) list * action_kind
  | Answer_existence of Cylog.Engine.open_id * bool
  | Pass

type policy =
  Cylog.Engine.t -> worker:Reldb.Value.t -> rng:Random.State.t -> round:int -> decision

type outcome = {
  log : log_entry list;
  rounds : int;
  stop_reason : [ `Stopped | `Stalled | `Max_rounds ];
  rejections : (Reldb.Value.t * int) list;
  capped_runs : int;
  dead_letters : (Cylog.Engine.open_tuple * Cylog.Lease.reason) list;
}

(* Quorum aggregation backed by Quality.Aggregate's plurality, so
   engine-level redundant assignment and the post-hoc analyses agree on
   tie-breaking. *)
let majority_aggregate votes =
  List.filter_map
    (fun (attr, vs) -> Option.map (fun v -> (attr, v)) (Quality.Aggregate.plurality vs))
    votes

let shuffle rng xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let run ?(seed = 42) ?(max_rounds = 10_000) ?(progress = fun _ -> 0.0) ?lease ?quorum
    ~stop ~workers engine =
  (match lease with
  | Some _ -> Cylog.Engine.set_lease_config engine lease
  | None -> ());
  (match quorum with
  | Some k ->
      Cylog.Engine.set_quorum engine
        (Some { Cylog.Engine.k; relations = None; aggregate = majority_aggregate })
  | None -> ());
  let leased = lease <> None in
  let rng = Random.State.make [| seed |] in
  let tel = Cylog.Engine.telemetry engine in
  let mets = Cylog.Engine.metrics engine in
  let log = ref [] in
  let rejected : (Reldb.Value.t, int) Hashtbl.t = Hashtbl.create 8 in
  let reject worker =
    Cylog.Telemetry.Metrics.incr mets
      ("sim.rejected.worker." ^ Reldb.Value.to_display worker);
    Hashtbl.replace rejected worker
      (1 + Option.value (Hashtbl.find_opt rejected worker) ~default:0)
  in
  let capped = ref 0 in
  let machine () =
    match Cylog.Engine.run engine with
    | _, `Capped -> incr capped
    | _, `Quiescent -> ()
  in
  let record round worker kind relation values p =
    log :=
      {
        round;
        clock = Cylog.Engine.clock engine;
        worker;
        kind;
        relation;
        values;
        progress = p;
      }
      :: !log
  in
  (* The campaign span roots the simulator side of the trace hierarchy
     (campaign > round > rule > atom-match); task spans stay siblings of
     rounds because tasks outlive the round that created them. *)
  let campaign =
    Cylog.Telemetry.enter tel "campaign"
      ~attrs:
        [ ("seed", string_of_int seed);
          ("workers", string_of_int (List.length workers)) ]
      ~clock:(Cylog.Engine.clock engine)
  in
  machine ();
  (* A stall is only declared after several consecutive all-pass rounds:
     low-diligence workers legitimately sit out whole rounds now and
     then. *)
  let idle_rounds = ref 0 in
  let rounds_done = ref 0 in
  (* With the lease runtime on, an answer needs a live lease first; a
     refused lease is a rejected attempt like any other. *)
  let take_lease n worker id =
    if not leased then true
    else
      match Cylog.Engine.assign engine id ~worker ~now:n with
      | Ok _ -> true
      | Error _ ->
          reject worker;
          false
  in
  let rec rounds n =
    if n > max_rounds then `Max_rounds
    else if stop engine then `Stopped
    else begin
      rounds_done := n;
      let rspan =
        Cylog.Telemetry.enter tel "round"
          ~attrs:[ ("round", string_of_int n) ]
          ~clock:(Cylog.Engine.clock engine)
      in
      if leased then ignore (Cylog.Engine.reclaim engine ~now:n);
      let acted = ref false in
      List.iter
        (fun (worker, policy) ->
          if not (stop engine) then begin
            let p = progress engine in
            match policy engine ~worker ~rng ~round:n with
            | Pass -> ()
            | Answer (id, values, kind) ->
                if take_lease n worker id then begin
                  let relation =
                    match Cylog.Engine.find_open engine id with
                    | Some o -> o.Cylog.Engine.relation
                    | None -> ""
                  in
                  match Cylog.Engine.supply engine id ~worker values with
                  | Ok _ ->
                      acted := true;
                      record n worker kind relation values p;
                      machine ()
                  | Error _ -> reject worker
                end
            | Answer_existence (id, yes) ->
                if take_lease n worker id then begin
                  let before = Cylog.Engine.find_open engine id in
                  match Cylog.Engine.answer_existence engine id ~worker yes with
                  | Ok _ ->
                      acted := true;
                      let relation, values =
                        match before with
                        | Some o ->
                            ( o.Cylog.Engine.relation,
                              Reldb.Tuple.to_list o.Cylog.Engine.bound )
                        | None -> ("", [])
                      in
                      record n worker
                        (if yes then Select_value else Reject_value)
                        relation values p;
                      machine ()
                  | Error _ -> reject worker
                end
          end)
        (shuffle rng workers);
      let verdict =
        if stop engine then `Stop
        else begin
          if !acted then idle_rounds := 0 else incr idle_rounds;
          if !idle_rounds >= 5 then `Stall else `Next
        end
      in
      Cylog.Telemetry.exit tel rspan
        ~attrs:[ ("acted", string_of_bool !acted) ]
        ~clock:(Cylog.Engine.clock engine);
      match verdict with
      | `Stop -> `Stopped
      | `Stall -> `Stalled
      | `Next -> rounds (n + 1)
    end
  in
  let stop_reason = rounds 1 in
  Cylog.Telemetry.Metrics.set_gauge mets "sim.rounds" !rounds_done;
  Cylog.Telemetry.Metrics.set_gauge mets "sim.capped_runs" !capped;
  Cylog.Telemetry.exit tel campaign
    ~attrs:
      [ ( "stop",
          match stop_reason with
          | `Stopped -> "stopped"
          | `Stalled -> "stalled"
          | `Max_rounds -> "max-rounds" ) ]
    ~clock:(Cylog.Engine.clock engine);
  let rejections =
    Hashtbl.fold (fun w n acc -> (w, n) :: acc) rejected []
    |> List.sort (fun (a, _) (b, _) -> Reldb.Value.compare a b)
  in
  {
    log = List.rev !log;
    rounds = !rounds_done;
    stop_reason;
    rejections;
    capped_runs = !capped;
    dead_letters = Cylog.Engine.dead_letters engine;
  }

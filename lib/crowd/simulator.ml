type action_kind = Enter_value | Select_value | Reject_value | Enter_rule

type log_entry = {
  round : int;
  clock : int;
  worker : Reldb.Value.t;
  kind : action_kind;
  relation : string;
  values : (string * Reldb.Value.t) list;
  progress : float;
}

type decision =
  | Answer of Cylog.Engine.open_id * (string * Reldb.Value.t) list * action_kind
  | Answer_existence of Cylog.Engine.open_id * bool
  | Pass

type policy =
  Cylog.Engine.t -> worker:Reldb.Value.t -> rng:Random.State.t -> round:int -> decision

type worker_stat = { routed : int; answered : int; early_stop_credit : int }

type outcome = {
  log : log_entry list;
  rounds : int;
  stop_reason :
    [ `Stopped | `Stalled | `Max_rounds | `Alert of Cylog.Monitor.firing ];
  rejections : (Reldb.Value.t * int) list;
  capped_runs : int;
  dead_letters : (Cylog.Engine.open_tuple * Cylog.Lease.reason) list;
  worker_stats : (Reldb.Value.t * worker_stat) list;
}

(* Quorum aggregation backed by Quality.Aggregate's plurality, so
   engine-level redundant assignment and the post-hoc analyses agree on
   tie-breaking. *)
let majority_aggregate votes =
  List.filter_map
    (fun (attr, vs) -> Option.map (fun v -> (attr, v)) (Quality.Aggregate.plurality vs))
    votes

let shuffle rng xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* Per-worker campaign tallies (satellite of the quality subsystem): how
   often work reached each worker, how many answers the engine accepted,
   and how many early-stopped resolutions their votes contributed to. The
   simulator tracks successful voters per task itself because the engine
   forgets a task's ballots the moment it resolves. *)
module Stats = struct
  type cell = { mutable routed : int; mutable answered : int; mutable credit : int }

  type t = {
    cells : (Reldb.Value.t, cell) Hashtbl.t;
    voters : (Cylog.Engine.open_id, Reldb.Value.t list) Hashtbl.t;
  }

  let create () = { cells = Hashtbl.create 8; voters = Hashtbl.create 16 }

  let cell t w =
    match Hashtbl.find_opt t.cells w with
    | Some c -> c
    | None ->
        let c = { routed = 0; answered = 0; credit = 0 } in
        Hashtbl.add t.cells w c;
        c

  let routed t w = (cell t w).routed <- (cell t w).routed + 1

  (* Score an accepted answer: remember the voter, and on an early-stopped
     adaptive resolution credit everyone whose vote the task banked. *)
  let answered t w ~open_id (ev : Cylog.Engine.event) =
    (cell t w).answered <- (cell t w).answered + 1;
    let voted =
      List.exists
        (function Cylog.Engine.Vote_recorded _ -> true | _ -> false)
        ev.effects
    in
    if voted then
      Hashtbl.replace t.voters open_id
        (w :: Option.value (Hashtbl.find_opt t.voters open_id) ~default:[]);
    List.iter
      (function
        | Cylog.Engine.Adaptive_resolved { open_id = id; escalated = false; _ } ->
            List.iter
              (fun voter -> (cell t voter).credit <- (cell t voter).credit + 1)
              (Option.value (Hashtbl.find_opt t.voters id) ~default:[]);
            Hashtbl.remove t.voters id
        | Cylog.Engine.Adaptive_resolved { open_id = id; escalated = true; _ } ->
            Hashtbl.remove t.voters id
        | _ -> ())
      ev.effects

  let report t =
    Hashtbl.fold
      (fun w c acc ->
        (w, { routed = c.routed; answered = c.answered; early_stop_credit = c.credit })
        :: acc)
      t.cells []
    |> List.sort (fun (a, _) (b, _) -> Reldb.Value.compare a b)
end

let install_quorum ?policy ?quorum engine =
  match (policy, quorum) with
  | Some p, _ ->
      Cylog.Engine.set_quorum_policy engine ~aggregate:majority_aggregate p
  | None, Some k ->
      Cylog.Engine.set_quorum engine
        (Some { Cylog.Engine.k; relations = None; aggregate = majority_aggregate })
  | None, None -> ()

(* Round-boundary monitor sampling, shared by both campaign loops: take
   the sample (a journaled event — the series point and any watchdog
   verdicts ride in the event log), then apply the caller's reaction to
   each alert that fired. Returns the firing that should stop the
   campaign, if any; [`Pause] sets [pause_next] so the next round skips
   the worker turns (a cooldown round — the machine and lease reclaim
   still run). *)
let sample_monitor ~on_alert ~pause_next engine n =
  if Cylog.Engine.monitor engine = None then None
  else begin
    let firings = Cylog.Engine.monitor_sample engine ~round:n in
    let stop_f = ref None in
    List.iter
      (fun (f : Cylog.Monitor.firing) ->
        match on_alert f with
        | `Stop -> if !stop_f = None then stop_f := Some f
        | `Pause -> pause_next := true
        | `Warn -> ())
      firings;
    !stop_f
  end

let run ?(seed = 42) ?(max_rounds = 10_000) ?(progress = fun _ -> 0.0) ?lease ?quorum
    ?policy ?monitor ?(on_alert = fun _ -> `Stop) ~stop ~workers engine =
  (match lease with
  | Some _ -> Cylog.Engine.set_lease_config engine lease
  | None -> ());
  install_quorum ?policy ?quorum engine;
  (match monitor with
  | Some _ -> Cylog.Engine.set_monitor engine monitor
  | None -> ());
  let pause_next = ref false in
  let leased = lease <> None in
  let rng = Random.State.make [| seed |] in
  let tel = Cylog.Engine.telemetry engine in
  let mets = Cylog.Engine.metrics engine in
  let stats = Stats.create () in
  let log = ref [] in
  let rejected : (Reldb.Value.t, int) Hashtbl.t = Hashtbl.create 8 in
  let reject worker =
    Cylog.Telemetry.Metrics.incr mets
      ("sim.rejected.worker." ^ Reldb.Value.to_display worker);
    Hashtbl.replace rejected worker
      (1 + Option.value (Hashtbl.find_opt rejected worker) ~default:0)
  in
  let capped = ref 0 in
  let machine () =
    match Cylog.Engine.run engine with
    | _, `Capped -> incr capped
    | _, `Quiescent -> ()
  in
  let record round worker kind relation values p =
    log :=
      {
        round;
        clock = Cylog.Engine.clock engine;
        worker;
        kind;
        relation;
        values;
        progress = p;
      }
      :: !log
  in
  (* The campaign span roots the simulator side of the trace hierarchy
     (campaign > round > rule > atom-match); task spans stay siblings of
     rounds because tasks outlive the round that created them. *)
  let campaign =
    Cylog.Telemetry.enter tel "campaign"
      ~attrs:
        [ ("seed", string_of_int seed);
          ("workers", string_of_int (List.length workers)) ]
      ~clock:(Cylog.Engine.clock engine)
  in
  machine ();
  (* A stall is only declared after several consecutive all-pass rounds:
     low-diligence workers legitimately sit out whole rounds now and
     then. *)
  let idle_rounds = ref 0 in
  let rounds_done = ref 0 in
  (* With the lease runtime on, an answer needs a live lease first; a
     refused lease is a rejected attempt like any other. *)
  let take_lease n worker id =
    if not leased then true
    else
      match Cylog.Engine.assign engine id ~worker ~now:n with
      | Ok _ -> true
      | Error _ ->
          reject worker;
          false
  in
  let rec rounds n =
    if n > max_rounds then `Max_rounds
    else if stop engine then `Stopped
    else begin
      rounds_done := n;
      let rspan =
        Cylog.Telemetry.enter tel "round"
          ~attrs:[ ("round", string_of_int n) ]
          ~clock:(Cylog.Engine.clock engine)
      in
      if leased then ignore (Cylog.Engine.reclaim engine ~now:n);
      let acted = ref false in
      let paused = !pause_next in
      pause_next := false;
      if not paused then
      List.iter
        (fun (worker, policy) ->
          if not (stop engine) then begin
            let p = progress engine in
            match policy engine ~worker ~rng ~round:n with
            | Pass -> ()
            | Answer (id, values, kind) ->
                if take_lease n worker id then begin
                  Stats.routed stats worker;
                  let relation =
                    match Cylog.Engine.find_open engine id with
                    | Some o -> o.Cylog.Engine.relation
                    | None -> ""
                  in
                  match Cylog.Engine.supply engine id ~worker values with
                  | Ok ev ->
                      acted := true;
                      Stats.answered stats worker ~open_id:id ev;
                      record n worker kind relation values p;
                      machine ()
                  | Error _ -> reject worker
                end
            | Answer_existence (id, yes) ->
                if take_lease n worker id then begin
                  Stats.routed stats worker;
                  let before = Cylog.Engine.find_open engine id in
                  match Cylog.Engine.answer_existence engine id ~worker yes with
                  | Ok ev ->
                      acted := true;
                      Stats.answered stats worker ~open_id:id ev;
                      let relation, values =
                        match before with
                        | Some o ->
                            ( o.Cylog.Engine.relation,
                              Reldb.Tuple.to_list o.Cylog.Engine.bound )
                        | None -> ("", [])
                      in
                      record n worker
                        (if yes then Select_value else Reject_value)
                        relation values p;
                      machine ()
                  | Error _ -> reject worker
                end
          end)
        (shuffle rng workers);
      let alert_stop = sample_monitor ~on_alert ~pause_next engine n in
      let verdict =
        if stop engine then `Stop
        else
          match alert_stop with
          | Some f -> `Alert f
          | None ->
              if !acted then idle_rounds := 0 else incr idle_rounds;
              if !idle_rounds >= 5 then `Stall else `Next
      in
      Cylog.Telemetry.exit tel rspan
        ~attrs:[ ("acted", string_of_bool !acted) ]
        ~clock:(Cylog.Engine.clock engine);
      match verdict with
      | `Stop -> `Stopped
      | `Stall -> `Stalled
      | `Alert f -> `Alert f
      | `Next -> rounds (n + 1)
    end
  in
  let stop_reason = rounds 1 in
  Cylog.Telemetry.Metrics.set_gauge mets "sim.rounds" !rounds_done;
  Cylog.Telemetry.Metrics.set_gauge mets "sim.capped_runs" !capped;
  Cylog.Telemetry.exit tel campaign
    ~attrs:
      [ ( "stop",
          match stop_reason with
          | `Stopped -> "stopped"
          | `Stalled -> "stalled"
          | `Max_rounds -> "max-rounds"
          | `Alert _ -> "alert" ) ]
    ~clock:(Cylog.Engine.clock engine);
  let rejections =
    Hashtbl.fold (fun w n acc -> (w, n) :: acc) rejected []
    |> List.sort (fun (a, _) (b, _) -> Reldb.Value.compare a b)
  in
  {
    log = List.rev !log;
    rounds = !rounds_done;
    stop_reason;
    rejections;
    capped_runs = !capped;
    dead_letters = Cylog.Engine.dead_letters engine;
    worker_stats = Stats.report stats;
  }

(* --- Router-driven campaigns ------------------------------------------------ *)

(* The quality-aware assignment loop: instead of each policy choosing its
   own task, {!Quality.Router} answers every worker's ask-for-work — no
   task for workers under the reliability floor, otherwise the pending
   task with the highest posterior uncertainty the worker has not yet
   voted on (uncertainty sampling). Workers answer value questions from a
   caller-supplied ground truth with their profile accuracy: a correct
   answer with probability [accuracy], else one of two item-specific wrong
   labels — the synthetic crowd of the quality bench and tests.
   Existence questions are out of scope and are never routed. *)
let run_routed ?(seed = 42) ?(max_rounds = 10_000) ?lease ?quorum ?policy
    ?monitor ?(on_alert = fun _ -> `Stop)
    ?(router = Quality.Router.default_config) ~truth ~workers engine =
  (match lease with
  | Some _ -> Cylog.Engine.set_lease_config engine lease
  | None -> ());
  install_quorum ?policy ?quorum engine;
  (match monitor with
  | Some _ -> Cylog.Engine.set_monitor engine monitor
  | None -> ());
  let pause_next = ref false in
  let leased = lease <> None in
  let rng = Random.State.make [| seed |] in
  let tel = Cylog.Engine.telemetry engine in
  let mets = Cylog.Engine.metrics engine in
  let stats = Stats.create () in
  let log = ref [] in
  let rejected : (Reldb.Value.t, int) Hashtbl.t = Hashtbl.create 8 in
  let reject worker =
    Cylog.Telemetry.Metrics.incr mets
      ("sim.rejected.worker." ^ Reldb.Value.to_display worker);
    Hashtbl.replace rejected worker
      (1 + Option.value (Hashtbl.find_opt rejected worker) ~default:0)
  in
  let capped = ref 0 in
  let machine () =
    match Cylog.Engine.run engine with
    | _, `Capped -> incr capped
    | _, `Quiescent -> ()
  in
  let routable () =
    List.filter
      (fun (o : Cylog.Engine.open_tuple) -> not o.existence)
      (Cylog.Engine.pending engine)
  in
  let answer_for (profile : Worker.profile) (o : Cylog.Engine.open_tuple) =
    List.map
      (fun attr ->
        let correct =
          match List.assoc_opt attr (truth o) with
          | Some v -> v
          | None -> Reldb.Value.String "?"
        in
        if Random.State.float rng 1.0 < profile.Worker.accuracy then (attr, correct)
        else
          (* Two wrong alternatives per slot, so sloppy crowds can still
             pile up on a wrong plurality now and then. *)
          ( attr,
            Reldb.Value.String
              (Printf.sprintf "%s#%d"
                 (Reldb.Value.to_display correct)
                 (1 + Random.State.int rng 2)) ))
      o.open_attrs
  in
  let campaign =
    Cylog.Telemetry.enter tel "campaign"
      ~attrs:
        [ ("seed", string_of_int seed);
          ("workers", string_of_int (List.length workers));
          ("router", "on") ]
      ~clock:(Cylog.Engine.clock engine)
  in
  machine ();
  let idle_rounds = ref 0 in
  let rounds_done = ref 0 in
  let rec rounds n =
    if n > max_rounds then `Max_rounds
    else if routable () = [] then `Stopped
    else begin
      rounds_done := n;
      if leased then ignore (Cylog.Engine.reclaim engine ~now:n);
      let acted = ref false in
      let paused = !pause_next in
      pause_next := false;
      if not paused then
      List.iter
        (fun ((worker : Reldb.Value.t), profile) ->
          let reliability = Cylog.Engine.worker_reliability engine worker in
          let tasks =
            List.filter_map
              (fun (o : Cylog.Engine.open_tuple) ->
                if
                  Cylog.Engine.has_voted engine o.id ~worker
                  || (match o.asked with
                     | Some w -> not (Reldb.Value.equal w worker)
                     | None -> false)
                then None
                else Some (o, Cylog.Engine.task_uncertainty engine o.id))
              (routable ())
          in
          match Quality.Router.route router ~reliability ~tasks with
          | None -> ()
          | Some o ->
              let granted =
                (not leased)
                ||
                match Cylog.Engine.assign engine o.id ~worker ~now:n with
                | Ok _ -> true
                | Error _ ->
                    reject worker;
                    false
              in
              if granted then begin
                Stats.routed stats worker;
                let values = answer_for profile o in
                match Cylog.Engine.supply engine o.id ~worker values with
                | Ok ev ->
                    acted := true;
                    Stats.answered stats worker ~open_id:o.id ev;
                    log :=
                      {
                        round = n;
                        clock = Cylog.Engine.clock engine;
                        worker;
                        kind = Enter_value;
                        relation = o.relation;
                        values;
                        progress = 0.0;
                      }
                      :: !log;
                    machine ()
                | Error _ -> reject worker
              end)
        (shuffle rng workers);
      let alert_stop = sample_monitor ~on_alert ~pause_next engine n in
      if !acted then idle_rounds := 0 else incr idle_rounds;
      if routable () = [] then `Stopped
      else
        match alert_stop with
        | Some f -> `Alert f
        | None -> if !idle_rounds >= 5 then `Stalled else rounds (n + 1)
    end
  in
  let stop_reason = rounds 1 in
  Cylog.Telemetry.Metrics.set_gauge mets "sim.rounds" !rounds_done;
  Cylog.Telemetry.Metrics.set_gauge mets "sim.capped_runs" !capped;
  Cylog.Telemetry.exit tel campaign
    ~attrs:
      [ ( "stop",
          match stop_reason with
          | `Stopped -> "stopped"
          | `Stalled -> "stalled"
          | `Max_rounds -> "max-rounds"
          | `Alert _ -> "alert" ) ]
    ~clock:(Cylog.Engine.clock engine);
  let rejections =
    Hashtbl.fold (fun w n acc -> (w, n) :: acc) rejected []
    |> List.sort (fun (a, _) (b, _) -> Reldb.Value.compare a b)
  in
  {
    log = List.rev !log;
    rounds = !rounds_done;
    stop_reason;
    rejections;
    capped_runs = !capped;
    dead_letters = Cylog.Engine.dead_letters engine;
    worker_stats = Stats.report stats;
  }

(** Deterministic fault injection for crowd simulations.

    The survey's quality-control chapters start from the premise that real
    crowds time out, abandon tasks, answer garbage and double-submit. This
    module turns any {!Simulator.policy} into an unreliable one by
    composing seeded fault behaviours over it, so robustness tests can
    drive the lease/quorum runtime ({!Cylog.Lease},
    {!Cylog.Engine.set_quorum}) through every failure mode with
    reproducible randomness: the same [seed] replays the same faults. *)

type fault =
  | Drop of float
      (** with this probability, take the task's lease (when the lease
          runtime is on) and never answer — the task blocks until the
          lease expires and is reclaimed *)
  | Delay of int
      (** submit each decision that many rounds late (stashed in order);
          under a short lease TTL the answer arrives after expiry *)
  | Garble of float
      (** with this probability, mangle the answer: a wrong attribute
          name or wrong-typed value (rejected by validation, counting
          against the rejection budget), or a wrong value of the right
          type (only redundancy + aggregation can catch it); existence
          answers are flipped *)
  | Duplicate of float
      (** with this probability, re-submit a past decision verbatim —
          usually a resolved id the engine must reject as [Stale] *)
  | Crash_round of int  (** leave the campaign for good at that round *)

val fault_to_string : fault -> string

val wrap : seed:int -> fault list -> Simulator.policy -> Simulator.policy
(** Compose the faults over a base policy. Each wrapped worker draws from
    its own RNG stream derived from [seed] and the worker identity —
    independent of the simulator's RNG, so fault injection does not
    perturb the base crowd's behaviour sequence. *)

val inject :
  seed:int -> fault list ->
  (Reldb.Value.t * Simulator.policy) list ->
  (Reldb.Value.t * Simulator.policy) list
(** [wrap] every worker of a {!Simulator.run} crowd. *)

(** {1 Storage faults}

    Faults of the {e durable journal}'s storage rather than of workers,
    expressed over {!Cylog.Storage.Sim}'s fault plan so a campaign with a
    WAL attached can compose crowd unreliability and disk unreliability
    in one seeded run (see {!Tweetpecker.Runner.run}'s
    [?storage_faults]). *)

type storage_fault =
  | Storage_crash of int
      (** kill the storage at that operation count (the process "dies";
          the runner recovers from the surviving byte image) *)
  | Torn_write of int
      (** the crash leaves that many unsynced bytes of the in-flight
          file — a torn record for recovery to truncate *)
  | Garbage_tail of int
      (** like [Torn_write], plus stray garbage bytes after the tear *)
  | Delayed_fsync of float  (** probability an fsync is silently dropped *)
  | Disk_full of int
      (** total append-byte budget; the append that exceeds it is a
          short write followed by ENOSPC *)

val storage_fault_to_string : storage_fault -> string

val storage_plan : seed:int -> storage_fault list -> Cylog.Storage.Sim.plan
(** Fold the faults into a simulator fault plan under [seed] (later
    entries win on conflicting knobs). *)

(** {1 Named profiles} — the fault matrix exercised by the test suite. *)

val drop : fault list
val delay : fault list
val garble : fault list
val duplicate : fault list
val crash : fault list
val all : fault list

val profiles : (string * fault list) list
(** All of the above with their names, for table-driven tests. *)

val torn : storage_fault list
val garbage : storage_fault list
val fsync_lag : storage_fault list
val disk_full : storage_fault list

val storage_profiles : (string * storage_fault list) list
(** The storage-fault matrix, for table-driven tests and the
    [tweetpecker --storage-faults] knob. *)

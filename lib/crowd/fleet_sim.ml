open Cylog

type config = {
  seed : int;
  workers : int;
  campaigns : int;
  items : int;
  accuracy : float;
  quorum : int;
  lease : Lease.config option;
  monitor : Monitor.config option;
  max_rounds : int;
}

let default_config =
  {
    seed = 42;
    workers = 8;
    campaigns = 2;
    items = 24;
    accuracy = 0.85;
    quorum = 3;
    lease = Some Lease.default_config;
    monitor = Some { Monitor.default_config with series_capacity = 512 };
    max_rounds = 200;
  }

let campaign_name k = Printf.sprintf "campaign-%d" k

(* A generated labeling campaign: N items, one open label question each.
   Ids are globally offset so distinct campaigns hash to distinct shard
   patterns instead of mirroring each other. *)
let campaign_source ~items ~offset =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "schema:\n  Item(id);\n  LabelOf(id, label);\nrules:\n";
  for i = 0 to items - 1 do
    Buffer.add_string buf (Printf.sprintf "  F%d: Item(id:%d);\n" i (offset + i))
  done;
  Buffer.add_string buf "  Q: LabelOf(id, label)/open <- Item(id);\n";
  Buffer.add_string buf
    "views:\n  view LabelOf {\n    <p>Label item {{id}}: <input \
     name=\"label\"/></p>\n  }\n";
  Buffer.contents buf

let campaign_program ~items ~offset =
  Parser.parse_exn (campaign_source ~items ~offset)

let placements = [ { Server.Router.relation = "Item"; key_attrs = [ "id" ] } ]

let open_campaigns server config =
  for k = 0 to config.campaigns - 1 do
    Server.open_campaign server ~name:(campaign_name k) ~partition_by:placements
      ?lease:config.lease
      ?policy:
        (if config.quorum > 1 then Some (Engine.Fixed config.quorum) else None)
      ?monitor:config.monitor
      (campaign_program ~items:config.items ~offset:(k * 1000))
  done

type outcome = {
  rounds : int;
  leases : int;
  answers : int;
  rejections : int;
  resolved : int;
  dead : int;
  stop_reason : [ `Done | `Stalled | `Max_rounds ];
}

let shuffle rng xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* The ground-truth label of an item; a worker reports it with probability
   [accuracy], else one of two item-specific wrong labels — the same
   synthetic-crowd shape as Simulator.run_routed, so plurality converges. *)
let true_label id = Printf.sprintf "label-%d" (id mod 5)

let answer_values rng config (ot : Engine.open_tuple) =
  let id =
    match Reldb.Tuple.get ot.bound "id" with
    | Some (Reldb.Value.Int i) -> i
    | _ -> 0
  in
  let truth = true_label id in
  List.map
    (fun attr ->
      if Random.State.float rng 1.0 < config.accuracy then
        (attr, Reldb.Value.String truth)
      else
        (attr, Reldb.Value.String (Printf.sprintf "%s#%d" truth (1 + Random.State.int rng 2))))
    ot.open_attrs

let run ?(config = default_config) server =
  let rng = Random.State.make [| config.seed |] in
  let workers =
    List.init config.workers (fun i ->
        Reldb.Value.String (Printf.sprintf "w%d" (i + 1)))
  in
  let names = List.init config.campaigns campaign_name in
  let cursors =
    List.map (fun c -> (c, Server.poll_cursor server ~campaign:c)) names
  in
  let leases = ref 0 in
  let answers = ref 0 in
  let rejections = ref 0 in
  let resolved = ref 0 in
  let dead = ref 0 in
  let idle = ref 0 in
  let rounds_done = ref 0 in
  let rec rounds n =
    if Server.pending_total server = 0 then `Done
    else if n > config.max_rounds then `Max_rounds
    else begin
      rounds_done := n;
      if config.lease <> None then
        List.iter
          (fun c -> ignore (Server.reclaim server ~campaign:c ~now:n))
          names;
      let acted = ref false in
      List.iteri
        (fun i worker ->
          (* round-robin the campaigns across workers and rounds so every
             campaign drains even when one finishes first *)
          let campaign = campaign_name ((i + n) mod config.campaigns) in
          match Server.lease server ~campaign ~worker ~now:n with
          | None -> ()
          | Some (task, ot, _view) -> (
              incr leases;
              if ot.existence then (
                match Server.answer_existence server ~campaign task ~worker true with
                | Server.Accepted _ ->
                    acted := true;
                    incr answers
                | _ -> incr rejections)
              else
                match
                  Server.supply server ~campaign task ~worker
                    (answer_values rng config ot)
                with
                | Server.Accepted _ ->
                    acted := true;
                    incr answers
                | _ -> incr rejections))
        (shuffle rng workers);
      List.iter
        (fun (c, cursor) ->
          ignore (Server.sample server ~campaign:c ~round:n);
          List.iter
            (function
              | Server.Task_resolved _ -> incr resolved
              | Server.Task_dead _ -> incr dead)
            (Server.resolve_poll server ~campaign:c cursor))
        cursors;
      if !acted then idle := 0 else incr idle;
      if Server.pending_total server = 0 then `Done
      else if !idle >= 5 then `Stalled
      else rounds (n + 1)
    end
  in
  let stop_reason = rounds 1 in
  {
    rounds = !rounds_done;
    leases = !leases;
    answers = !answers;
    rejections = !rejections;
    resolved = !resolved;
    dead = !dead;
    stop_reason;
  }

type fault =
  | Drop of float
  | Delay of int
  | Garble of float
  | Duplicate of float
  | Crash_round of int

let fault_to_string = function
  | Drop p -> Printf.sprintf "drop(%.2f)" p
  | Delay n -> Printf.sprintf "delay(%d)" n
  | Garble p -> Printf.sprintf "garble(%.2f)" p
  | Duplicate p -> Printf.sprintf "duplicate(%.2f)" p
  | Crash_round n -> Printf.sprintf "crash_round(%d)" n

(* Mangle one answer. Three modes: a wrong attribute name and a wrong-typed
   value are rejected by the engine's validation (exercising the rejection
   budget); a wrong value of the right type slips through validation and
   must be caught by redundancy + aggregation. *)
let garble_values rng values =
  match values with
  | [] -> values
  | (attr, v) :: rest -> (
      match Random.State.int rng 3 with
      | 0 -> (attr ^ "?", v) :: rest
      | 1 ->
          let wrong =
            match v with
            | Reldb.Value.String _ -> Reldb.Value.Int 0
            | _ -> Reldb.Value.String "garbled"
          in
          (attr, wrong) :: rest
      | _ ->
          let wrong =
            match v with
            | Reldb.Value.String s -> Reldb.Value.String ("~" ^ s)
            | Reldb.Value.Int i -> Reldb.Value.Int (i + 1000)
            | Reldb.Value.Float f -> Reldb.Value.Float (f +. 1000.0)
            | Reldb.Value.Bool b -> Reldb.Value.Bool (not b)
            | v -> v
          in
          (attr, wrong) :: rest)

let target_of (d : Simulator.decision) =
  match d with
  | Simulator.Answer (id, _, _) | Simulator.Answer_existence (id, _) -> Some id
  | Simulator.Pass -> None

let flip rng p = p > 0.0 && Random.State.float rng 1.0 < p

(* The wrapper owns per-worker mutable state (its own RNG stream, a stash
   of delayed decisions, a memory of past submissions), all keyed off the
   caller-supplied seed: the same seed replays the same faults. *)
let wrap ~seed faults (policy : Simulator.policy) : Simulator.policy =
  let rngs : (Reldb.Value.t, Random.State.t) Hashtbl.t = Hashtbl.create 4 in
  let stash : (Reldb.Value.t, (int * Simulator.decision) list) Hashtbl.t =
    Hashtbl.create 4
  in
  let past : (Reldb.Value.t, Simulator.decision list) Hashtbl.t = Hashtbl.create 4 in
  let rng_for worker =
    match Hashtbl.find_opt rngs worker with
    | Some st -> st
    | None ->
        let st =
          Random.State.make [| seed; Hashtbl.hash (Reldb.Value.to_display worker) |]
        in
        Hashtbl.replace rngs worker st;
        st
  in
  let crashed_at = List.find_map (function Crash_round n -> Some n | _ -> None) faults in
  let delay_by = List.find_map (function Delay n -> Some n | _ -> None) faults in
  let prob f = List.fold_left (fun acc fault -> match fault with
    | Drop p when f = `Drop -> Float.max acc p
    | Garble p when f = `Garble -> Float.max acc p
    | Duplicate p when f = `Duplicate -> Float.max acc p
    | _ -> acc) 0.0 faults
  in
  let p_drop = prob `Drop and p_garble = prob `Garble and p_dup = prob `Duplicate in
  fun engine ~worker ~rng:_ ~round ->
    if (match crashed_at with Some n -> round >= n | None -> false) then Simulator.Pass
    else begin
      let frng = rng_for worker in
      let remember d =
        if target_of d <> None then
          Hashtbl.replace past worker
            (d :: Option.value (Hashtbl.find_opt past worker) ~default:[])
      in
      (* A decision stashed by [Delay] is released once its round is due;
         releasing takes the whole turn. *)
      let due =
        match Hashtbl.find_opt stash worker with
        | Some ((at, d) :: rest) when at <= round ->
            Hashtbl.replace stash worker rest;
            Some d
        | _ -> None
      in
      match due with
      | Some d ->
          remember d;
          d
      | None -> (
          let base = policy engine ~worker ~rng:frng ~round in
          (* Double submission replays an old decision verbatim — typically
             a resolved id, which the engine must reject as [Stale]. *)
          let base =
            if flip frng p_dup then
              match Hashtbl.find_opt past worker with
              | Some (d :: _) -> d
              | _ -> base
            else base
          in
          match base with
          | Simulator.Pass -> Simulator.Pass
          | d when flip frng p_drop ->
              (* Take the lease, never answer: the task is blocked until
                 the lease expires and is reclaimed. *)
              (match (target_of d, Cylog.Engine.lease_config engine) with
              | Some id, Some _ ->
                  ignore (Cylog.Engine.assign engine id ~worker ~now:round)
              | _ -> ());
              Simulator.Pass
          | d ->
              let d =
                if not (flip frng p_garble) then d
                else
                  match d with
                  | Simulator.Answer (id, values, kind) ->
                      Simulator.Answer (id, garble_values frng values, kind)
                  | Simulator.Answer_existence (id, yes) ->
                      Simulator.Answer_existence (id, not yes)
                  | Simulator.Pass -> Simulator.Pass
              in
              (match delay_by with
              | Some n when n > 0 ->
                  Hashtbl.replace stash worker
                    (Option.value (Hashtbl.find_opt stash worker) ~default:[]
                    @ [ (round + n, d) ]);
                  Simulator.Pass
              | _ ->
                  remember d;
                  d))
    end

let inject ~seed faults workers =
  List.map (fun (worker, policy) -> (worker, wrap ~seed faults policy)) workers

(* --- Storage faults ---------------------------------------------------------- *)

type storage_fault =
  | Storage_crash of int
  | Torn_write of int
  | Garbage_tail of int
  | Delayed_fsync of float
  | Disk_full of int

let storage_fault_to_string = function
  | Storage_crash n -> Printf.sprintf "storage_crash(%d)" n
  | Torn_write n -> Printf.sprintf "torn_write(%d)" n
  | Garbage_tail n -> Printf.sprintf "garbage_tail(%d)" n
  | Delayed_fsync p -> Printf.sprintf "delayed_fsync(%.2f)" p
  | Disk_full n -> Printf.sprintf "disk_full(%d)" n

let storage_plan ~seed faults =
  List.fold_left
    (fun (plan : Cylog.Storage.Sim.plan) fault ->
      match fault with
      | Storage_crash n -> { plan with crash_at_op = Some n }
      | Torn_write n -> { plan with tail = Cylog.Storage.Sim.Torn n }
      | Garbage_tail n -> { plan with tail = Cylog.Storage.Sim.Garbage n }
      | Delayed_fsync p -> { plan with delayed_fsync = p }
      | Disk_full n -> { plan with no_space_after = Some n })
    { Cylog.Storage.Sim.default_plan with seed }
    faults

let drop = [ Drop 0.3 ]
let delay = [ Delay 2 ]
let garble = [ Garble 0.4 ]
let duplicate = [ Duplicate 0.3 ]
let crash = [ Crash_round 6 ]
let all = [ Drop 0.15; Delay 1; Garble 0.2; Duplicate 0.15; Crash_round 40 ]

let profiles =
  [
    ("drop", drop);
    ("delay", delay);
    ("garble", garble);
    ("duplicate", duplicate);
    ("crash", crash);
    ("all", all);
  ]

let torn = [ Storage_crash 40; Torn_write 7 ]
let garbage = [ Storage_crash 40; Garbage_tail 5 ]
let fsync_lag = [ Delayed_fsync 0.25 ]
let disk_full = [ Disk_full 16384 ]

let storage_profiles =
  [
    ("torn", torn);
    ("garbage", garbage);
    ("fsync-lag", fsync_lag);
    ("disk-full", disk_full);
  ]

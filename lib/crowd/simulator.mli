(** The crowd simulation loop.

    The engine computes machine consequences and suspends on open tuples;
    the simulator plays the crowd: each round, workers take turns (in a
    seeded random order) choosing which pending open tuple to answer and
    with what values — exactly the two decisions the paper leaves to human
    intelligence. Every action is logged with the logical clock and a
    caller-supplied progress measure, which is what the Figure 11/12
    analyses consume. *)

type action_kind =
  | Enter_value  (** typed a value into the form (Figure 2 (b)) *)
  | Select_value  (** accepted a machine-extracted candidate (Figure 2 (c)) *)
  | Reject_value  (** answered no to a candidate *)
  | Enter_rule  (** submitted an extraction rule (Figure 2 bottom) *)

type log_entry = {
  round : int;
  clock : int;  (** engine clock after the action *)
  worker : Reldb.Value.t;
  kind : action_kind;
  relation : string;
  values : (string * Reldb.Value.t) list;
      (** supplied values; for selections, the bound tuple's bindings *)
  progress : float;  (** caller-defined completion measure at action time *)
}

(** What a worker decides to do on their turn. *)
type decision =
  | Answer of Cylog.Engine.open_id * (string * Reldb.Value.t) list * action_kind
  | Answer_existence of Cylog.Engine.open_id * bool
  | Pass  (** nothing to do this turn *)

(** A policy receives the engine (to inspect pending open tuples and the
    database), its own worker identity, a seeded RNG, and the current
    round; it returns one decision. *)
type policy =
  Cylog.Engine.t -> worker:Reldb.Value.t -> rng:Random.State.t -> round:int -> decision

type worker_stat = {
  routed : int;
      (** times the worker reached the answering step (lease granted or
          leases off) — under {!run_routed}, times the router gave them a
          task *)
  answered : int;  (** answers the engine accepted *)
  early_stop_credit : int;
      (** early-stopped adaptive resolutions this worker's banked vote
          contributed to (0 unless an [Adaptive] policy is installed) *)
}

type outcome = {
  log : log_entry list;  (** chronological *)
  rounds : int;  (** rounds actually executed (not the last logged round) *)
  stop_reason :
    [ `Stopped | `Stalled | `Max_rounds | `Alert of Cylog.Monitor.firing ];
      (** [`Stopped]: the stop condition held; [`Stalled]: every worker
          passed on a full round; [`Max_rounds]: safety bound hit;
          [`Alert f]: a campaign-monitor watchdog fired and the [on_alert]
          reaction asked to stop (the firing carries the alert and the
          round it tripped on) *)
  rejections : (Reldb.Value.t * int) list;
      (** rejected [supply]/[answer_existence]/[assign] attempts per
          worker (sorted by worker) — garbage answers, stale ids, lease
          refusals; workers with none are absent *)
  capped_runs : int;
      (** machine runs that hit the step cap instead of quiescing — any
          nonzero value means the campaign's results are truncated *)
  dead_letters : (Cylog.Engine.open_tuple * Cylog.Lease.reason) list;
      (** tasks abandoned by the lease runtime, from
          {!Cylog.Engine.dead_letters} *)
  worker_stats : (Reldb.Value.t * worker_stat) list;
      (** per-worker campaign tallies (sorted by worker); workers who
          never reached the answering step are absent *)
}

val majority_aggregate : Cylog.Engine.aggregate
(** Per-attribute plurality over quorum votes via
    {!Quality.Aggregate.plurality} — installed by [run ~quorum]. *)

val run :
  ?seed:int -> ?max_rounds:int -> ?progress:(Cylog.Engine.t -> float) ->
  ?lease:Cylog.Lease.config -> ?quorum:int ->
  ?policy:Cylog.Engine.quorum_policy ->
  ?monitor:Cylog.Monitor.config ->
  ?on_alert:(Cylog.Monitor.firing -> [ `Warn | `Pause | `Stop ]) ->
  stop:(Cylog.Engine.t -> bool) ->
  workers:(Reldb.Value.t * policy) list ->
  Cylog.Engine.t -> outcome
(** Drive the engine to quiescence, then let workers act one decision per
    turn, re-running the machine after each action, until [stop] holds,
    all workers pass, or [max_rounds] (default 10_000) elapses. [progress]
    (default: constant 0) is sampled before each action.

    [lease] turns on the engine's lease runtime with the round number as
    logical time: overdue leases are reclaimed at the start of each round
    and a worker's decision only goes through if {!Cylog.Engine.assign}
    grants (or renews) them a lease first — a refusal counts as a
    rejection and the attempt is skipped. [quorum] installs redundant
    assignment: undesignated one-shot tasks resolve by
    {!majority_aggregate} over [k] answers. [policy] installs any
    {!Cylog.Engine.quorum_policy} (notably [Adaptive]) with the same
    aggregate, and wins over [quorum] when both are given.

    [monitor] installs the campaign monitor ({!Cylog.Engine.set_monitor})
    before the first round; with or without it, whenever a monitor is
    installed on the engine the simulator takes one
    {!Cylog.Engine.monitor_sample} at the end of every round, so the
    series has one point per round and the watchdogs are checked at round
    granularity. Each alert that fires is passed to [on_alert]
    (default: every alert stops the campaign): [`Stop] ends the campaign
    with [`Alert f]; [`Pause] makes the next round a cooldown — lease
    reclaim and the machine still run but no worker takes a turn;
    [`Warn] carries on (the firing is already journaled and counted). *)

val run_routed :
  ?seed:int -> ?max_rounds:int ->
  ?lease:Cylog.Lease.config -> ?quorum:int ->
  ?policy:Cylog.Engine.quorum_policy ->
  ?monitor:Cylog.Monitor.config ->
  ?on_alert:(Cylog.Monitor.firing -> [ `Warn | `Pause | `Stop ]) ->
  ?router:Quality.Router.config ->
  truth:(Cylog.Engine.open_tuple -> (string * Reldb.Value.t) list) ->
  workers:(Reldb.Value.t * Worker.profile) list ->
  Cylog.Engine.t -> outcome
(** Quality-aware campaign: assignment is driven by {!Quality.Router}
    instead of per-worker policies. Each round every worker (in seeded
    random order) asks the router for work; workers under the reliability
    floor get none, the rest get the pending value question with the
    highest {!Cylog.Engine.task_uncertainty} that they have not voted on
    and that is not designated for someone else. The worker answers
    [truth o] for each open attribute with probability
    [profile.accuracy], otherwise one of two item-specific wrong labels —
    {!Worker.profile} accuracies double as the campaign's ground truth.
    Existence questions are never routed. Stops when no value questions
    remain pending ([`Stopped]), after five consecutive idle rounds
    ([`Stalled] — e.g. every worker is below the floor), or at
    [max_rounds]. [lease]/[quorum]/[policy]/[monitor]/[on_alert] behave
    as in {!run}. *)

(** Statistics-based label aggregation.

    The paper's TweetPecker adopts a value when two workers agree first; it
    notes that CyLog can equally implement "other techniques for improving
    the quality of task results, such as statistics-based ones". This
    module provides the classical alternatives, used by the comparison
    experiment in the benchmark harness:

    - {!majority}: plurality voting per item;
    - {!em}: the one-coin Dawid–Skene model — jointly estimate a per-worker
      accuracy and a per-item consensus by expectation–maximisation, so
      reliable workers weigh more. *)

type vote = { item : string; worker : string; value : string }

val plurality : 'a list -> 'a option
(** Winning value of one item's votes in arrival order ([None] on an empty
    list), with exactly {!majority}'s tie-breaking — reused by the crowd
    simulator's quorum-aggregation hook so engine-level redundant
    assignment and post-hoc aggregation agree. *)

val majority : vote list -> (string * string) list
(** Winning value per item (plurality; ties break toward the value voted
    earliest). Items appear in first-vote order. *)

type em_result = {
  consensus : (string * string) list;  (** item, most probable value *)
  posteriors : (string * (string * float) list) list;
      (** item, probability per candidate value *)
  worker_accuracy : (string * float) list;  (** estimated reliability *)
  iterations : int;  (** EM iterations until convergence *)
}

val em : ?max_iterations:int -> ?epsilon:float -> ?prior_accuracy:float ->
  vote list -> em_result
(** One-coin Dawid–Skene: each worker answers correctly with an unknown
    probability [a_w] and otherwise picks uniformly among the wrong
    candidates. E-step: posterior over values per item given accuracies;
    M-step: accuracies from expected correctness. Starts from
    [prior_accuracy] (default 0.7), stops when no accuracy moves more than
    [epsilon] (default 1e-6) or after [max_iterations] (default 100).

    Deterministic: no randomness is involved, items appear in first-vote
    order, candidates and workers in lexicographic order, so identical
    votes yield an identical [em_result]. Exactly-tied posteriors break
    toward the lexicographically smallest candidate value (candidates are
    scanned in sorted order and a later candidate must strictly beat the
    incumbent) — unlike {!majority}, whose ties break toward the
    earliest-voted value, because EM posteriors carry no arrival order. *)

val accuracy_against :
  truth:(string -> string option) -> (string * string) list -> float
(** Fraction of aggregated labels matching a ground truth; items with no
    ground truth are skipped. 0 when nothing is comparable. *)

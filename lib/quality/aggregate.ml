type vote = { item : string; worker : string; value : string }

(* Group votes per item, preserving first-vote order of items and votes. *)
let by_item votes =
  let order = ref [] in
  let groups : (string, vote list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt groups v.item with
      | Some cell -> cell := v :: !cell
      | None ->
          Hashtbl.replace groups v.item (ref [ v ]);
          order := v.item :: !order)
    votes;
  List.rev_map (fun item -> (item, List.rev !(Hashtbl.find groups item))) !order

(* Plurality over one item's votes in arrival order — the building block
   behind [majority], exposed so per-attribute aggregation hooks (the
   engine's quorum policy) can reuse the exact same tie-breaking. *)
let plurality values =
  let counts = ref [] in
  List.iter
    (fun value ->
      match List.assoc_opt value !counts with
      | Some c -> counts := (value, c + 1) :: List.remove_assoc value !counts
      | None -> counts := !counts @ [ (value, 1) ])
    values;
  List.fold_left
    (fun best (value, c) ->
      match best with Some (_, bc) when bc >= c -> best | _ -> Some (value, c))
    None !counts
  |> Option.map fst

let majority votes =
  List.map
    (fun (item, vs) ->
      let counts = ref [] in
      List.iter
        (fun v ->
          match List.assoc_opt v.value !counts with
          | Some c -> counts := (v.value, c + 1) :: List.remove_assoc v.value !counts
          | None -> counts := !counts @ [ (v.value, 1) ])
        vs;
      let winner =
        List.fold_left
          (fun best (value, c) ->
            match best with
            | Some (_, bc) when bc >= c -> best
            | _ -> Some (value, c))
          None !counts
      in
      (item, match winner with Some (v, _) -> v | None -> ""))
    (by_item votes)

type em_result = {
  consensus : (string * string) list;
  posteriors : (string * (string * float) list) list;
  worker_accuracy : (string * float) list;
  iterations : int;
}

let em ?(max_iterations = 100) ?(epsilon = 1e-6) ?(prior_accuracy = 0.7) votes =
  let items = by_item votes in
  let workers =
    List.sort_uniq compare (List.map (fun v -> v.worker) votes)
  in
  let accuracy : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun w -> Hashtbl.replace accuracy w prior_accuracy) workers;
  let candidates vs = List.sort_uniq compare (List.map (fun v -> v.value) vs) in
  (* E-step: posterior over candidate values of one item. *)
  let posterior vs =
    let cands = candidates vs in
    let k = max 2 (List.length cands) in
    let score value =
      List.fold_left
        (fun acc v ->
          let a = Hashtbl.find accuracy v.worker in
          (* Clamp away from 0/1 so a single worker cannot saturate. *)
          let a = Float.max 0.01 (Float.min 0.99 a) in
          acc *. (if String.equal v.value value then a else (1.0 -. a) /. float_of_int (k - 1)))
        1.0 vs
    in
    let raw = List.map (fun c -> (c, score c)) cands in
    let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 raw in
    if total <= 0.0 then List.map (fun (c, _) -> (c, 1.0 /. float_of_int (List.length cands))) raw
    else List.map (fun (c, s) -> (c, s /. total)) raw
  in
  let rec iterate n =
    let posts = List.map (fun (item, vs) -> (item, vs, posterior vs)) items in
    (* M-step: expected correctness per worker. *)
    let num : (string, float) Hashtbl.t = Hashtbl.create 16 in
    let den : (string, float) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (_, vs, post) ->
        List.iter
          (fun v ->
            let p = Option.value (List.assoc_opt v.value post) ~default:0.0 in
            Hashtbl.replace num v.worker
              (p +. Option.value (Hashtbl.find_opt num v.worker) ~default:0.0);
            Hashtbl.replace den v.worker
              (1.0 +. Option.value (Hashtbl.find_opt den v.worker) ~default:0.0))
          vs)
      posts;
    let delta = ref 0.0 in
    List.iter
      (fun w ->
        let d = Option.value (Hashtbl.find_opt den w) ~default:0.0 in
        if d > 0.0 then begin
          let fresh = Hashtbl.find num w /. d in
          delta := Float.max !delta (Float.abs (fresh -. Hashtbl.find accuracy w));
          Hashtbl.replace accuracy w fresh
        end)
      workers;
    if !delta < epsilon || n + 1 >= max_iterations then (posts, n + 1) else iterate (n + 1)
  in
  let posts, iterations = iterate 0 in
  let consensus =
    List.map
      (fun (item, _, post) ->
        (* [post] lists candidates in lexicographic order and [bp >= p]
           keeps the incumbent, so exactly-tied posteriors resolve to the
           smallest candidate value — the documented tie-break. *)
        let best =
          List.fold_left
            (fun acc (c, p) ->
              match acc with Some (_, bp) when bp >= p -> acc | _ -> Some (c, p))
            None post
        in
        (item, match best with Some (c, _) -> c | None -> ""))
      posts
  in
  {
    consensus;
    posteriors = List.map (fun (item, _, post) -> (item, post)) posts;
    worker_accuracy = List.map (fun w -> (w, Hashtbl.find accuracy w)) workers;
    iterations;
  }

let accuracy_against ~truth labels =
  let comparable =
    List.filter_map
      (fun (item, value) ->
        match truth item with Some gt -> Some (String.equal gt value) | None -> None)
      labels
  in
  match comparable with
  | [] -> 0.0
  | _ ->
      float_of_int (List.length (List.filter Fun.id comparable))
      /. float_of_int (List.length comparable)

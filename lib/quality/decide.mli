(** Per-task value posteriors and the confidence-based stopping rule.

    Votes arrive as [(value, reliability)] pairs in chronological order,
    the reliability being the voter's estimated accuracy (from {!Model}).
    Each observed value is a candidate; one implicit unseen alternative
    ("none of the above") keeps a single vote from ever being certain.
    Under the one-coin worker model a voter answers the truth with
    probability [a] and otherwise picks uniformly among the [d - 1] wrong
    alternatives, so a candidate's likelihood is the product over votes of
    [a] (vote matches) or [(1 - a) / (d - 1)] (vote differs); posteriors
    are these likelihoods normalized over candidates plus the implicit
    alternative. Reliabilities are clamped to [0.05, 0.95] so no single
    worker can force or veto a resolution.

    {!decide} turns posteriors into the stopping rule of the adaptive
    quorum policy: keep asking below [min_votes], resolve as soon as the
    top posterior reaches [tau], and escalate (hand the ballots to the
    fallback aggregate) once [max_votes] answers failed to reach it.

    Values are compared with polymorphic equality, so any value type
    without functional components works ([Reldb.Value.t] in particular). *)

type config = { tau : float; min_votes : int; max_votes : int }
(** [tau]: posterior threshold to resolve; [min_votes]: never resolve on
    fewer answers; [max_votes]: hard cap, after which the task escalates. *)

val default_config : config
(** [{ tau = 0.9; min_votes = 2; max_votes = 5 }]. *)

type 'v verdict =
  | Resolve of 'v * float  (** top value and its posterior, [>= tau] *)
  | Ask_more  (** below [min_votes], or confidence not yet reached *)
  | Escalate of float
      (** [max_votes] reached without confidence; carries the best
          posterior achieved — the fallback aggregate decides *)

val posteriors : ('v * float) list -> ('v * float) list
(** Candidate posteriors, best first; ties broken toward the
    earliest-voted candidate. The implicit alternative absorbs the
    remaining mass and is not listed. Empty votes yield []. *)

val top : ('v * float) list -> ('v * float) option
(** [top (posteriors votes)]: the leading candidate, if any. *)

val uncertainty : ('v * float) list -> float
(** [1 -] the top posterior — the router's uncertainty-sampling score;
    [1.0] when there are no votes yet. *)

val decide : config -> ('v * float) list -> 'v verdict
(** Apply the stopping rule to one answer slot's votes. *)

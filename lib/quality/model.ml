type state = { mutable alpha : float; mutable beta : float; mutable seen : int }

type t = {
  prior_alpha : float;
  prior_beta : float;
  tbl : (string, state) Hashtbl.t;
}

let create ?(prior_alpha = 4.0) ?(prior_beta = 1.0) () =
  if prior_alpha <= 0.0 || prior_beta <= 0.0 then
    invalid_arg "Quality.Model.create: priors must be positive";
  { prior_alpha; prior_beta; tbl = Hashtbl.create 16 }

let state t worker =
  match Hashtbl.find_opt t.tbl worker with
  | Some s -> s
  | None ->
      let s = { alpha = t.prior_alpha; beta = t.prior_beta; seen = 0 } in
      Hashtbl.add t.tbl worker s;
      s

let observe t worker ~agreed =
  let s = state t worker in
  if agreed then s.alpha <- s.alpha +. 1.0 else s.beta <- s.beta +. 1.0;
  s.seen <- s.seen + 1

let reliability t worker =
  match Hashtbl.find_opt t.tbl worker with
  | Some s -> s.alpha /. (s.alpha +. s.beta)
  | None -> t.prior_alpha /. (t.prior_alpha +. t.prior_beta)

let observations t worker =
  match Hashtbl.find_opt t.tbl worker with Some s -> s.seen | None -> 0

let workers t =
  Hashtbl.fold (fun w _ acc -> w :: acc) t.tbl [] |> List.sort String.compare

let to_assoc t =
  List.map (fun w -> let s = Hashtbl.find t.tbl w in (w, (s.alpha, s.beta))) (workers t)

let of_assoc ?prior_alpha ?prior_beta l =
  let t = create ?prior_alpha ?prior_beta () in
  List.iter
    (fun (w, (alpha, beta)) ->
      (* [seen] is not serialized separately: it is derivable from the
         posterior's distance to the prior. *)
      let seen =
        int_of_float (alpha -. t.prior_alpha +. (beta -. t.prior_beta) +. 0.5)
      in
      Hashtbl.replace t.tbl w { alpha; beta; seen })
    l;
  t

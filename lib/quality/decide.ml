type config = { tau : float; min_votes : int; max_votes : int }

let default_config = { tau = 0.9; min_votes = 2; max_votes = 5 }

type 'v verdict = Resolve of 'v * float | Ask_more | Escalate of float

let clamp a = Float.min 0.95 (Float.max 0.05 a)

let posteriors votes =
  match votes with
  | [] -> []
  | _ ->
      (* Candidates in first-vote order, so the fold below keeps the
         earliest candidate on exactly-tied scores. *)
      let candidates =
        List.fold_left
          (fun acc (v, _) -> if List.mem v acc then acc else v :: acc)
          [] votes
        |> List.rev
      in
      let d = max 2 (List.length candidates + 1) in
      let score c =
        List.fold_left
          (fun acc (v, a) ->
            let a = clamp a in
            acc *. (if v = c then a else (1.0 -. a) /. float_of_int (d - 1)))
          1.0 votes
      in
      let scored = List.map (fun c -> (c, score c)) candidates in
      (* The implicit unseen alternative: every vote missed it. *)
      let other =
        List.fold_left
          (fun acc (_, a) -> acc *. ((1.0 -. clamp a) /. float_of_int (d - 1)))
          1.0 votes
      in
      let total = other +. List.fold_left (fun acc (_, s) -> acc +. s) 0.0 scored in
      let scored = List.map (fun (c, s) -> (c, s /. total)) scored in
      (* Stable sort + first-vote candidate order = earliest wins ties. *)
      List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) scored

let top = function [] -> None | (c, p) :: _ -> Some (c, p)

let uncertainty votes =
  match top (posteriors votes) with Some (_, p) -> 1.0 -. p | None -> 1.0

let decide cfg votes =
  let n = List.length votes in
  if n < cfg.min_votes then Ask_more
  else
    match top (posteriors votes) with
    | Some (c, p) when p >= cfg.tau -> Resolve (c, p)
    | Some (_, p) -> if n >= cfg.max_votes then Escalate p else Ask_more
    | None -> if n >= cfg.max_votes then Escalate 0.0 else Ask_more

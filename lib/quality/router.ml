type config = { floor : float }

let default_config = { floor = 0.35 }

let eligible cfg ~reliability = reliability >= cfg.floor

let pick tasks =
  match tasks with
  | [] -> None
  | first :: rest ->
      let best =
        List.fold_left
          (fun (bt, bu) (t, u) -> if u > bu then (t, u) else (bt, bu))
          first rest
      in
      Some (fst best)

let route cfg ~reliability ~tasks =
  if eligible cfg ~reliability then pick tasks else None

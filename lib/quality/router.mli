(** Quality-aware task routing.

    When a worker asks for work, the router answers two questions: should
    this worker get anything at all (their estimated reliability against a
    floor), and if so which task (uncertainty sampling: the pending task
    whose current answer is least settled, so redundant answers go where
    they change the outcome). Pure functions over scores — callers supply
    reliabilities from {!Model} and uncertainties from
    {!Decide.uncertainty}. *)

type config = { floor : float }
(** Workers whose reliability is below [floor] are routed away (given no
    task); [floor = 0.0] disables screening. *)

val default_config : config
(** [{ floor = 0.35 }] — generous enough that a fresh worker under the
    default prior qualifies, strict enough to bench a worker the model has
    repeatedly caught disagreeing. *)

val eligible : config -> reliability:float -> bool
(** Whether a worker of that reliability should receive work. *)

val pick : ('t * float) list -> 't option
(** [pick tasks] selects the task with the highest uncertainty score; the
    earliest-listed task wins ties, so routing is deterministic for a
    fixed pending order. [None] on an empty list. *)

val route : config -> reliability:float -> tasks:('t * float) list -> 't option
(** [eligible] then [pick]: the one-call worker-asks-for-work entry. *)

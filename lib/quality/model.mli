(** Online per-worker reliability.

    Each worker carries a Beta posterior over their probability of
    agreeing with the eventually-chosen answer: starting from a seedable
    [Beta(alpha, beta)] prior, every agreement event adds one to [alpha]
    and every disagreement one to [beta]. {!reliability} is the posterior
    mean [alpha / (alpha + beta)] — the plug-in accuracy estimate that
    {!Decide} weighs votes with and {!Router} screens workers by.

    The default prior is [Beta(4, 1)] (mean 0.8): optimistic, in line with
    the accuracy crowdsourcing platforms typically assume of a screened
    worker. Optimism is what lets an adaptive quorum stop early before any
    reputation exists — two agreeing fresh workers already clear a 0.9
    posterior — while a short streak of disagreements still drags a
    worker's weight down faster than agreement rebuilds it.

    State is mutable but fully determined by the sequence of {!observe}
    calls, so a model rebuilt by replaying the same events (e.g. during
    {!Cylog.Engine.restore}) is structurally identical — what the
    snapshot differential tests pin down via {!to_assoc}. *)

type t

val create : ?prior_alpha:float -> ?prior_beta:float -> unit -> t
(** Fresh model. [prior_alpha]/[prior_beta] (defaults 4.0/1.0) seed every
    worker's Beta prior. @raise Invalid_argument unless both are > 0. *)

val observe : t -> string -> agreed:bool -> unit
(** Record that the worker's vote agreed (or not) with the chosen answer. *)

val reliability : t -> string -> float
(** Posterior mean accuracy; the prior mean for never-observed workers. *)

val observations : t -> string -> int
(** How many agreement events the worker has been scored on. *)

val workers : t -> string list
(** Workers with at least one observation, sorted. *)

val to_assoc : t -> (string * (float * float)) list
(** Serializable state: per observed worker (sorted) the posterior
    [(alpha, beta)]. *)

val of_assoc :
  ?prior_alpha:float -> ?prior_beta:float -> (string * (float * float)) list -> t
(** Rebuild a model from {!to_assoc} output (priors apply to workers not
    in the list). [to_assoc (of_assoc l) = l] for sorted [l]. *)

(** The CyLog encoding of Turing machines — Figure 16 and Theorem 4.

    Any {!Machine.t} compiles into three relations and three CyLog rules:
    [TuringMachine(id, st, head)] holds the inner state and head position,
    [Tape(pos, sym)] the tape, [Rule(st, sym, new_st, new_sym, dir)] the
    transition function. One rule initialises, one extends the tape at
    unvisited positions, and one multi-head rule performs the transition
    atomically — exactly the paper's construction, proving CyLog Turing
    complete. The halting condition is encoded by the absence of
    transitions out of halting states: the engine simply reaches a
    fixpoint. *)

val to_source : Machine.t -> input:string list -> string
(** CyLog source text for the machine on the given input. *)

val load : ?use_planner:bool -> Machine.t -> input:string list -> Cylog.Engine.t
(** Parse and load {!to_source}. [use_planner] is passed through to
    {!Cylog.Engine.load}. *)

type run_result = {
  state : string;
  head : int;
  tape : (int * string) list;  (** non-blank cells, sorted *)
  engine_steps : int;
}

val run : ?max_steps:int -> ?use_planner:bool -> Machine.t ->
  input:string list -> run_result
(** Execute the CyLog encoding to fixpoint (or [max_steps] engine steps,
    default 100_000) and read the final configuration back out of the
    database. [use_planner:false] selects the reference join order, for
    differential testing. *)

val agrees_with_direct : ?max_steps:int -> Machine.t -> input:string list -> bool
(** Theorem 4 check: the CyLog encoding and the direct implementation halt
    in the same state with the same non-blank tape. *)

(** An interactive machine witnessing class [G_*] (Theorem 3): the machine
    repeatedly asks a human to dictate the symbol under the head; each
    answer advances the head and re-arms the question, so the number of
    interaction phases cannot be bounded in advance. Dictating ["."]
    halts. *)
module Interactive : sig
  val source : string
  (** The CyLog program. *)

  val load : unit -> Cylog.Engine.t
  (** Fresh engine for the program. *)

  val dictate : Cylog.Engine.t -> string -> (unit, string) result
  (** Answer the current dictation question with one symbol. *)

  val run : answers:string list -> string
  (** Feed the answers in order (appending ["."] if absent) and return the
    final tape content. *)
end

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_source (m : Machine.t) ~input =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    {|schema:
  TuringMachine(id key, st, head);
  Tape(pos key, sym);
  Rule(st, sym, new_st, new_sym, dir);

rules:
|};
  List.iter
    (fun (r : Machine.rule) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  Rule(st:\"%s\", sym:\"%s\", new_st:\"%s\", new_sym:\"%s\", dir:%d);\n"
           (escape r.state) (escape r.read) (escape r.next) (escape r.write)
           (Machine.direction_offset r.move)))
    m.rules;
  List.iteri
    (fun pos sym ->
      if sym <> "" then
        Buffer.add_string buf
          (Printf.sprintf "  Tape(pos:%d, sym:\"%s\");\n" pos (escape sym)))
    input;
  Buffer.add_string buf
    (Printf.sprintf "  Init: TuringMachine(id:1, st:%S, head:0);\n" (escape m.initial));
  Buffer.add_string buf
    {|  Fill: Tape(pos:head, sym:"")/update <- TuringMachine(id, head), not Tape(pos:head);
  Step: TuringMachine(id, head), Tape(pos:head, sym),
        Rule(st, sym, new_st, new_sym, dir),
        TuringMachine(id, st), new_pos = pos + dir {
    TuringMachine(id, st:new_st, head:new_pos)/update,
    Tape(pos, sym:new_sym)/update
  }
|};
  Buffer.contents buf

let load ?use_planner m ~input =
  Cylog.Engine.load ?use_planner (Cylog.Parser.parse_exn (to_source m ~input))

type run_result = {
  state : string;
  head : int;
  tape : (int * string) list;
  engine_steps : int;
}

let read_result engine engine_steps =
  let db = Cylog.Engine.database engine in
  let tm = Reldb.Database.find_exn db "TuringMachine" in
  let state, head =
    match Reldb.Relation.tuples tm with
    | [ t ] ->
        ( Reldb.Value.to_display (Reldb.Tuple.get_or_null t "st"),
          Reldb.Value.int_exn (Reldb.Tuple.get_exn t "head") )
    | _ -> invalid_arg "Cylog_tm: expected exactly one TuringMachine tuple"
  in
  let tape_rel = Reldb.Database.find_exn db "Tape" in
  let tape =
    Reldb.Relation.tuples tape_rel
    |> List.filter_map (fun t ->
           match
             ( Reldb.Tuple.get_or_null t "pos",
               Reldb.Value.to_display (Reldb.Tuple.get_or_null t "sym") )
           with
           | Reldb.Value.Int pos, sym when sym <> "" && sym <> "null" -> Some (pos, sym)
           | _ -> None)
    |> List.sort compare
  in
  { state; head; tape; engine_steps }

let run ?(max_steps = 100_000) ?use_planner m ~input =
  let engine = load ?use_planner m ~input in
  let steps, _ = Cylog.Engine.run engine ~max_steps in
  read_result engine steps

let agrees_with_direct ?max_steps m ~input =
  match Machine.run ?max_steps m ~input with
  | Error _ -> false
  | Ok (direct, _) ->
      let cy = run ?max_steps m ~input in
      String.equal cy.state direct.Machine.state
      && cy.tape = direct.Machine.tape

module Interactive = struct
  (* The head walks right; at each position the machine asks a human what
     to write — an unbounded sequence of phases, i.e. the class G_star.
     Dictating "." halts the machine instead of writing. *)
  let source =
    {|schema:
  TuringMachine(id key, st, head);
  Tape(pos key, sym);
  Dictation(pos key, sym);

rules:
  Init: TuringMachine(id:1, st:"ask", head:0);
  Ask: Dictation(pos:head, sym)/open <- TuringMachine(id, st:"ask", head);
  Move: TuringMachine(id, st:"ask", head), Dictation(pos:head, sym), sym != ".",
        new_pos = head + 1 {
    TuringMachine(id, st:"ask", head:new_pos)/update,
    Tape(pos:head, sym)/update
  }
  Halt: TuringMachine(id, st:"halt")/update
          <- TuringMachine(id, st:"ask", head), Dictation(pos:head, sym:".");
|}

  (* The Ask/Move loop is a deliberate open cycle — the whole point of
     G_star is unbounded phases — so strict lint (unbounded-task-emission)
     must not reject it. *)
  let load () = Cylog.Engine.load ~lint:`Warn (Cylog.Parser.parse_exn source)

  let dictate engine sym =
    ignore (Cylog.Engine.run engine);
    match Cylog.Engine.pending engine with
    | o :: _ -> (
        match
          Cylog.Engine.supply engine o.Cylog.Engine.id ~worker:(Reldb.Value.String "human")
            [ ("sym", Reldb.Value.String sym) ]
        with
        | Ok _ ->
            ignore (Cylog.Engine.run engine);
            Ok ()
        | Error e -> Error (Cylog.Engine.reject_to_string e))
    | [] -> Error "the machine is not asking anything"

  let run ~answers =
    let engine = load () in
    ignore (Cylog.Engine.run engine);
    let answers = if List.mem "." answers then answers else answers @ [ "." ] in
    List.iter
      (fun sym ->
        match dictate engine sym with
        | Ok () -> ()
        | Error e -> invalid_arg ("Interactive.run: " ^ e))
      answers;
    let tape = Reldb.Database.find_exn (Cylog.Engine.database engine) "Tape" in
    Reldb.Relation.tuples tape
    |> List.filter_map (fun t ->
           match
             ( Reldb.Tuple.get_or_null t "pos",
               Reldb.Value.to_display (Reldb.Tuple.get_or_null t "sym") )
           with
           | Reldb.Value.Int pos, sym when sym <> "null" -> Some (pos, sym)
           | _ -> None)
    |> List.sort compare |> List.map snd |> String.concat ""
end

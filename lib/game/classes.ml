type t = Bounded of int | Unbounded

(* Variables a body determines: attribute-named variables of positive
   atoms, aliases, and [v = expr] bindings. A head argument whose variables
   all appear here is machine-determined; the rest are open slots. *)
let bound_vars body =
  List.concat_map
    (fun (l : Cylog.Ast.literal) ->
      match l.Cylog.Ast.lit with
      | Cylog.Ast.Pos { Cylog.Ast.args; _ } ->
          List.concat_map
            (fun (arg : Cylog.Ast.arg) ->
              match arg.bind with
              | Cylog.Ast.Auto -> [ arg.attr ]
              | Cylog.Ast.Bound (Cylog.Ast.Var v) -> [ v; arg.attr ]
              | Cylog.Ast.Bound _ -> [ arg.attr ])
            args
      | Cylog.Ast.Cmp (Cylog.Ast.Var v, Cylog.Ast.Eq, _) | Cylog.Ast.Cmp (_, Cylog.Ast.Eq, Cylog.Ast.Var v) -> [ v ]
      | Cylog.Ast.Neg _ | Cylog.Ast.Cmp _ | Cylog.Ast.Call _ -> [])
    body
  |> List.sort_uniq String.compare

let open_slots (s : Cylog.Ast.statement) (atom : Cylog.Ast.atom) =
  let bound = bound_vars s.body in
  List.filter_map
    (fun (arg : Cylog.Ast.arg) ->
      let vars =
        match arg.bind with Cylog.Ast.Auto -> [ arg.attr ] | Cylog.Ast.Bound e -> Cylog.Ast.expr_vars e
      in
      if List.for_all (fun v -> List.mem v bound) vars then None else Some arg.attr)
    atom.args

let open_heads (s : Cylog.Ast.statement) =
  List.filter_map
    (fun (h : Cylog.Ast.head) ->
      match h.Cylog.Ast.head with
      | Cylog.Ast.Head_atom { atom; kind = Cylog.Ast.Open _ } -> Some atom
      | Cylog.Ast.Head_atom _ | Cylog.Ast.Head_payoff _ -> None)
    s.heads

let classify (program : Cylog.Ast.program) =
  (* Classification inspects the program; admission is not its job, and
     G_star programs are rejected by strict lint by design. *)
  let engine = Cylog.Engine.load ~lint:`Off program in
  let statements = List.map fst (Cylog.Engine.statements engine) in
  let db = Cylog.Engine.database engine in
  let arr = Array.of_list statements in
  let n = Array.length arr in
  let opens =
    List.filter (fun i -> open_heads arr.(i) <> []) (List.init n Fun.id)
  in
  (* Standing tasks: an open head whose relation auto-increments a key the
     statement leaves open — unboundedly many answers. *)
  let standing =
    List.exists
      (fun i ->
        List.exists
          (fun (atom : Cylog.Ast.atom) ->
            match Reldb.Database.find db atom.Cylog.Ast.pred with
            | None -> false
            | Some rel -> (
                match Reldb.Schema.auto_increment (Reldb.Relation.schema rel) with
                | Some auto -> List.mem auto (open_slots arr.(i) atom)
                | None -> false))
          (open_heads arr.(i)))
      opens
  in
  if standing then Unbounded
  else begin
    let g = Cylog.Precedence.build statements in
    (* A self-dependent open statement re-arms itself: unbounded phases. *)
    if List.exists (fun i -> Cylog.Precedence.depends_on g i i) opens then Unbounded
    else begin
      (* Longest chain of open statements linked by (transitive) dataflow. *)
      let chain = Hashtbl.create 16 in
      let rec longest i =
        match Hashtbl.find_opt chain i with
        | Some v -> v
        | None ->
            let feeders =
              List.filter (fun j -> j <> i && Cylog.Precedence.depends_on g i j) opens
            in
            let v = 1 + List.fold_left (fun acc j -> max acc (longest j)) 0 feeders in
            Hashtbl.replace chain i v;
            v
      in
      Bounded (List.fold_left (fun acc i -> max acc (longest i)) 0 opens)
    end
  end

let open_phase_chain program =
  match classify program with
  | Bounded n -> n
  | Unbounded -> invalid_arg "Classes.open_phase_chain: program is in G_*"

let subsumes a b =
  match (a, b) with
  | Unbounded, _ -> true
  | Bounded _, Unbounded -> false
  | Bounded n, Bounded m -> n >= m

let pp ppf = function
  | Bounded n -> Format.fprintf ppf "G_%d" n
  | Unbounded -> Format.pp_print_string ppf "G_*"

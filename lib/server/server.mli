(** The sharded multi-campaign server.

    One process, N engine shards: each shard runs its own engines (one
    per campaign, each with its own durable journal directory under
    [journal_root/shard-<i>/<campaign>]) behind a per-shard mailbox. The
    public calls below are synchronous facades: each posts a ticketed
    request to the owning shard and round-robin-pumps {e all} shards
    until the ticket resolves — so every shard makes progress on its own
    queue regardless of which one the caller is waiting on, and the whole
    fleet stays deterministic (no threads, one total order per shard).

    {b Routing.} A campaign is opened with a partition map
    ({!Router.placement}): base facts of partitioned relations go only to
    the shard owning their key's hash (the game-instance Skolem term);
    rules, games, schemas and the rest are replicated. Worker-facing
    calls route by {!task_ref} (which names the owning shard); {!lease}
    scatters from [hash worker mod N] so workers spread over shards
    deterministically. With one shard the split program is the input
    program and the server is observationally identical to a bare engine
    — the 1-shard differential test's anchor.

    {b Recovery.} A storage crash fails only the affected slot; the rest
    of the fleet keeps serving. {!recover_shard} rebuilds the failed
    slot from its journal (O(live state) after compaction); acknowledged
    operations — those whose reply the caller saw — are never lost.

    See docs/SERVER.md for the architecture and the [server.*]/[shard.*]
    metric catalogue. *)

module Router = Router
module Shard = Shard
module Fleet = Fleet

open Cylog

type t

type task_ref = { shard : int; local : Engine.open_id }
(** A fleet-wide task name: the owning shard plus the engine-local open
    tuple id. Stable for the task's lifetime (shard ownership never
    moves). *)

val create :
  ?journal_root:string ->
  ?journal_config:Journal.config ->
  ?storage:(int -> (module Storage.S)) ->
  shards:int ->
  unit ->
  t
(** A server with [shards] empty shards (at least 1). [journal_root]
    turns on durability: every campaign slot journals under
    [journal_root/shard-<i>/<campaign>]. [storage] supplies a storage
    implementation per shard index (e.g. fault-injecting simulators for
    the crash tests); default POSIX. *)

val shards : t -> int
val metrics : t -> Telemetry.Metrics.t
(** The server's own [server.*] registry (requests, scatter probes,
    campaigns opened, recoveries). *)

val shard : t -> int -> Shard.t
(** Direct shard access — for tests and recovery drivers. *)

val open_campaign :
  t ->
  name:string ->
  ?partition_by:Router.placement list ->
  ?lease:Lease.config ->
  ?policy:Engine.quorum_policy ->
  ?relations:string list ->
  ?aggregate:Engine.aggregate ->
  ?monitor:Monitor.config ->
  Ast.program ->
  unit
(** Split the program over the shards ({!Router.split_program}) and open
    one slot per shard. Without [partition_by] every statement is
    replicated — correct but redundant beyond one shard, so real
    multi-shard campaigns should partition their fact relations.
    @raise Failure on a duplicate campaign name. *)

val campaigns : t -> string list

(** {1 The task-queue API} *)

val lease :
  t ->
  campaign:string ->
  worker:Reldb.Value.t ->
  now:int ->
  (task_ref * Engine.open_tuple * string option) option
(** Grant the worker a task: shards are probed starting at
    [hash worker mod N] (each worker's home shard — spreading load
    deterministically), first grant wins. [None] when no shard has an
    assignable task for this worker. Crashed shards are skipped. *)

type answer_result =
  | Accepted of Engine.event
  | Rejected of Engine.reject
  | Shard_down of int  (** the owning shard is crashed; recover it *)

val supply :
  t ->
  campaign:string ->
  task_ref ->
  worker:Reldb.Value.t ->
  (string * Reldb.Value.t) list ->
  answer_result
(** Route an answer to the task's owning shard ({!Cylog.Engine.supply});
    on success the shard's engine runs to quiescence before the reply. *)

val answer_existence :
  t ->
  campaign:string ->
  task_ref ->
  worker:Reldb.Value.t ->
  bool ->
  answer_result

val decline : t -> campaign:string -> task_ref -> unit
(** Dead-letter a task without an answer; no-op on crashed shards. *)

val reclaim : t -> campaign:string -> now:int -> int
(** Expire overdue leases on every live shard; total leases reclaimed. *)

val sample : t -> campaign:string -> round:int -> (int * Monitor.firing) list
(** Take a monitor sample on every live shard; the alerts that fired,
    tagged with their shard. *)

(** {1 Resolution polling} *)

type cursor
(** A per-shard position in each engine's event log — lets a client
    ingest resolutions incrementally instead of rescanning. *)

val poll_cursor : t -> campaign:string -> cursor
(** A cursor at the campaign's current log end: the next poll reports
    only resolutions from now on. *)

type resolution =
  | Task_resolved of { task : task_ref; quorum : bool }
      (** retired by answer — [quorum] when a banked vote resolved it *)
  | Task_dead of { task : task_ref; reason : Lease.reason }

val resolve_poll : t -> campaign:string -> cursor -> resolution list
(** Resolutions recorded since the cursor's positions, shard by shard in
    log order; advances the cursor. Crashed shards are skipped (their
    positions stay, so recovery resumes the poll without loss). *)

(** {1 Fleet view and recovery} *)

val pending_total : t -> int
val stats : t -> Fleet.t
(** Scatter-gather over the live shards: merged metrics (fleet totals
    plus ["shard<i>."] views, including this server's own registry),
    merged monitor, merged certificates, exact request-latency
    percentiles. *)

val recover_shard :
  t ->
  int ->
  campaign:string ->
  ?builtins:Builtin.registry ->
  ?aggregate:Engine.aggregate ->
  ?storage:(module Storage.S) ->
  unit ->
  Engine.recovery_stats
(** Rebuild one shard's slot from its journal ({!Shard.recover_slot}) —
    the operator's repair verb after a [Shard_down] reply. *)

open Cylog

(* Saturation cap for summed finite bounds — far above any real campaign,
   small enough that repeated sums never overflow native ints. *)
let cap = 1_000_000_000

let card_add (a : Analysis.card) (b : Analysis.card) : Analysis.card =
  match (a, b) with
  | Unbounded r, _ -> Unbounded r
  | _, Unbounded r -> Unbounded r
  | Bounded_by_input, _ | _, Bounded_by_input -> Bounded_by_input
  | Zero, c | c, Zero -> c
  | Finite m, Finite n -> Finite (min cap (m + n))

let percentile samples q =
  let n = Array.length samples in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    ((1. -. frac) *. float_of_int sorted.(lo))
    +. (frac *. float_of_int sorted.(hi))
  end

type monitor_view = {
  f_spent : int;
  f_answers : int;
  f_pending : int;
  f_retired : int;
  f_samples : int;
  f_agreement_pct : int;
  f_dead_letter_pct : int;
  f_histograms : (string * Telemetry.Metrics.histogram) list;
  f_points : Monitor.point list;
  f_firings : (int * Monitor.firing) list;
}

let merge_histogram (a : Telemetry.Metrics.histogram)
    (b : Telemetry.Metrics.histogram) =
  if a.bounds <> b.bounds then a
  else
    {
      a with
      counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
      sum = a.sum + b.sum;
      count = a.count + b.count;
    }

let merge_histogram_lists lists =
  let merged = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (List.iter (fun (name, h) ->
         match Hashtbl.find_opt merged name with
         | None ->
             Hashtbl.add merged name h;
             order := name :: !order
         | Some prev -> Hashtbl.replace merged name (merge_histogram prev h)))
    lists;
  List.sort compare
    (List.map (fun name -> (name, Hashtbl.find merged name)) !order)

(* Per-round point merge: counts sum, ages and latency quantiles take the
   fleet maximum (the conservative SLO read), percent fields take the
   maximum of the shards that have one (-1 marks absence). *)
let merge_points (a : Monitor.point) (b : Monitor.point) : Monitor.point =
  {
    p_round = a.p_round;
    p_clock = max a.p_clock b.p_clock;
    p_spent = a.p_spent + b.p_spent;
    p_answers = a.p_answers + b.p_answers;
    p_pending = a.p_pending + b.p_pending;
    p_oldest_age = max a.p_oldest_age b.p_oldest_age;
    p_e2e_p50 = Float.max a.p_e2e_p50 b.p_e2e_p50;
    p_e2e_p95 = Float.max a.p_e2e_p95 b.p_e2e_p95;
    p_e2e_p99 = Float.max a.p_e2e_p99 b.p_e2e_p99;
    p_agreement_pct = max a.p_agreement_pct b.p_agreement_pct;
    p_posterior_pct = max a.p_posterior_pct b.p_posterior_pct;
    p_dead_letter_pct = max a.p_dead_letter_pct b.p_dead_letter_pct;
  }

let merge_monitors inputs =
  match inputs with
  | [] -> None
  | _ ->
      let views = List.map (fun (sid, m) -> (sid, Monitor.view m)) inputs in
      let sum f = List.fold_left (fun acc (_, v) -> acc + f v) 0 views in
      let maxi f = List.fold_left (fun acc (_, v) -> max acc (f v)) 0 views in
      let votes_total = sum (fun v -> v.Monitor.v_votes_total) in
      let votes_agree = sum (fun v -> v.Monitor.v_votes_agree) in
      let resolved = sum (fun v -> v.Monitor.v_resolved) in
      let dead = sum (fun v -> v.Monitor.v_dead) in
      let retired = resolved + dead in
      let by_round = Hashtbl.create 64 in
      List.iter
        (fun (_, v) ->
          List.iter
            (fun (p : Monitor.point) ->
              match Hashtbl.find_opt by_round p.p_round with
              | None -> Hashtbl.add by_round p.p_round p
              | Some prev ->
                  Hashtbl.replace by_round p.p_round (merge_points prev p))
            v.Monitor.v_points)
        views;
      let points =
        Hashtbl.fold (fun _ p acc -> p :: acc) by_round []
        |> List.sort (fun (a : Monitor.point) b ->
               compare a.p_round b.p_round)
      in
      let firings =
        List.concat_map
          (fun (sid, v) ->
            List.map (fun f -> (sid, f)) v.Monitor.v_firings)
          views
        |> List.sort (fun (s1, (f1 : Monitor.firing)) (s2, f2) ->
               compare (f1.at_round, s1) (f2.at_round, s2))
      in
      Some
        {
          f_spent = sum (fun v -> v.Monitor.v_spent);
          f_answers = sum (fun v -> v.Monitor.v_answers);
          f_pending = sum (fun v -> List.length v.Monitor.v_pending);
          f_retired = retired;
          f_samples = maxi (fun v -> v.Monitor.v_samples);
          f_agreement_pct =
            (if votes_total = 0 then -1 else 100 * votes_agree / votes_total);
          f_dead_letter_pct =
            (if retired = 0 then 0 else 100 * dead / retired);
          f_histograms =
            merge_histogram_lists
              (List.map (fun (_, v) -> v.Monitor.v_histograms) views);
          f_points = points;
          f_firings = firings;
        }

type cert_view = {
  c_shards : int;
  c_total_tasks : Analysis.card;
  c_total_answers : Analysis.card;
}

let merge_certificates certs =
  match certs with
  | [] -> None
  | _ ->
      Some
        {
          c_shards = List.length certs;
          c_total_tasks =
            List.fold_left
              (fun acc (c : Analysis.certificate) ->
                card_add acc c.cert_total_tasks)
              Analysis.Zero certs;
          c_total_answers =
            List.fold_left
              (fun acc (c : Analysis.certificate) ->
                card_add acc c.cert_total_answers)
              Analysis.Zero certs;
        }

type shard_input = {
  s_id : int;
  s_engines : Engine.t list;
  s_metrics : Telemetry.Metrics.t;
  s_latencies_ns : int array;
}

type t = {
  shards : int;
  live_shards : int;
  requests : int;
  pending : int;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  metrics : Telemetry.Metrics.t;
  monitor : monitor_view option;
  certificate : cert_view option;
}

let gather ~total_shards inputs =
  let metrics = Telemetry.Metrics.create () in
  List.iter
    (fun s ->
      let prefix = Printf.sprintf "shard%d." s.s_id in
      Telemetry.Metrics.merge ~prefix ~into:metrics s.s_metrics;
      Telemetry.Metrics.merge ~into:metrics s.s_metrics;
      List.iter
        (fun e ->
          Telemetry.Metrics.merge ~prefix ~into:metrics (Engine.metrics e);
          Telemetry.Metrics.merge ~into:metrics (Engine.metrics e))
        s.s_engines)
    inputs;
  let engines = List.concat_map (fun s -> s.s_engines) inputs in
  let latencies = Array.concat (List.map (fun s -> s.s_latencies_ns) inputs) in
  let monitors =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun e -> Option.map (fun m -> (s.s_id, m)) (Engine.monitor e))
          s.s_engines)
      inputs
  in
  {
    shards = total_shards;
    live_shards = List.length inputs;
    requests =
      List.fold_left
        (fun acc s ->
          acc + Telemetry.Metrics.counter s.s_metrics "shard.requests")
        0 inputs;
    pending =
      List.fold_left
        (fun acc e -> acc + List.length (Engine.pending e))
        0 engines;
    p50_ns = percentile latencies 0.50;
    p95_ns = percentile latencies 0.95;
    p99_ns = percentile latencies 0.99;
    metrics;
    monitor = merge_monitors monitors;
    certificate = merge_certificates (List.filter_map Engine.certificate engines);
  }

let card_json (c : Analysis.card) =
  match c with
  | Zero -> {|{"kind":"zero"}|}
  | Finite n -> Printf.sprintf {|{"kind":"finite","n":%d}|} n
  | Bounded_by_input -> {|{"kind":"bounded-by-input"}|}
  | Unbounded _ ->
      Printf.sprintf {|{"kind":"unbounded","reason":"%s"}|}
        (Telemetry.json_escape (Analysis.card_to_string c))

let monitor_json (v : monitor_view) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"spent":%d,"answers":%d,"pending":%d,"retired":%d,"samples":%d,"agreement_pct":%d,"dead_letter_pct":%d,"points":[|}
       v.f_spent v.f_answers v.f_pending v.f_retired v.f_samples
       v.f_agreement_pct v.f_dead_letter_pct);
  List.iteri
    (fun i (p : Monitor.point) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           {|{"round":%d,"spent":%d,"answers":%d,"pending":%d,"e2e_p99":%.1f}|}
           p.p_round p.p_spent p.p_answers p.p_pending p.p_e2e_p99))
    v.f_points;
  Buffer.add_string buf {|],"firings":[|};
  List.iteri
    (fun i (sid, (f : Monitor.firing)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"shard":%d,"round":%d,"alert":"%s"}|} sid f.at_round
           (Telemetry.json_escape (Event.alert_to_string f.alert))))
    v.f_firings;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"shards":%d,"live_shards":%d,"requests":%d,"pending":%d,"latency_ns":{"p50":%.0f,"p95":%.0f,"p99":%.0f},"monitor":|}
       t.shards t.live_shards t.requests t.pending t.p50_ns t.p95_ns t.p99_ns);
  (match t.monitor with
  | None -> Buffer.add_string buf "null"
  | Some v -> Buffer.add_string buf (monitor_json v));
  Buffer.add_string buf {|,"certificate":|};
  (match t.certificate with
  | None -> Buffer.add_string buf "null"
  | Some c ->
      Buffer.add_string buf
        (Printf.sprintf {|{"shards":%d,"total_tasks":%s,"total_answers":%s}|}
           c.c_shards (card_json c.c_total_tasks)
           (card_json c.c_total_answers)));
  Buffer.add_string buf {|,"metrics":|};
  Buffer.add_string buf (Telemetry.Metrics.to_json t.metrics);
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "fleet: %d/%d shards live, %d requests, %d pending@."
    t.live_shards t.shards t.requests t.pending;
  Format.fprintf fmt "request latency: p50 %.0fns p95 %.0fns p99 %.0fns@."
    t.p50_ns t.p95_ns t.p99_ns;
  (match t.monitor with
  | None -> ()
  | Some v ->
      Format.fprintf fmt
        "monitor: spent %d, answers %d, pending %d, retired %d, agreement \
         %d%%, dead-letter %d%%@."
        v.f_spent v.f_answers v.f_pending v.f_retired v.f_agreement_pct
        v.f_dead_letter_pct;
      List.iter
        (fun (sid, (f : Monitor.firing)) ->
          Format.fprintf fmt "alert (shard %d, round %d): %s@." sid f.at_round
            (Event.alert_to_string f.alert))
        v.f_firings);
  match t.certificate with
  | None -> ()
  | Some c ->
      Format.fprintf fmt "certificate (%d shards): tasks %s, answers %s@."
        c.c_shards
        (Analysis.card_to_string c.c_total_tasks)
        (Analysis.card_to_string c.c_total_answers)

(** Scatter-gather: one fleet view over N shards' observability surfaces.

    Each shard's engines carry their own telemetry registry, campaign
    monitor and budget certificate; this module merges them into a single
    fleet dashboard without touching any live state — every input is read
    through the engines' public accessors, so gathering is a pure
    observation the differential tests can take before and after.

    The merge rules:
    - {b metrics}: each shard's registries fold into one target twice —
      under a ["shard<i>."] prefix (the per-shard view) and unprefixed
      (the fleet total) — via {!Cylog.Telemetry.Metrics.merge};
    - {b monitor}: totals are summed, per-round series points are merged
      round by round (sums for counts, maxima for ages and latency
      quantiles — a conservative fleet SLO read), lifecycle histograms
      with equal bounds are summed cell by cell, and alert firings keep
      their shard of origin;
    - {b certificates}: cardinality bounds add with saturation, and any
      [Unbounded]/[Bounded_by_input] summand infects the fleet total —
      the fleet budget is certified only if every shard's is;
    - {b latency}: request service times stay raw nanosecond samples, so
      fleet p50/p95/p99 are exact order statistics, not bucket
      interpolations. *)

open Cylog

val card_add : Analysis.card -> Analysis.card -> Analysis.card
(** Saturating addition on the analysis domain: [Finite] sums cap at
    10^9; [Zero] is neutral; [Bounded_by_input] absorbs finite summands;
    [Unbounded r] absorbs everything (left reason wins). *)

val percentile : int array -> float -> float
(** Exact order statistic (nearest-rank with linear interpolation) of raw
    samples; [0.] on an empty array. Sorts a copy — the input is not
    mutated. *)

(** The fleet-wide campaign monitor read. *)
type monitor_view = {
  f_spent : int;
  f_answers : int;
  f_pending : int;
  f_retired : int;
  f_samples : int;  (** max over shards — shards sample the same rounds *)
  f_agreement_pct : int;  (** recomputed from summed vote counts; -1 if none *)
  f_dead_letter_pct : int;  (** recomputed from summed retirements *)
  f_histograms : (string * Telemetry.Metrics.histogram) list;
  f_points : Monitor.point list;  (** merged per round, ascending *)
  f_firings : (int * Monitor.firing) list;  (** (shard, firing), by round *)
}

val merge_monitors : (int * Monitor.t) list -> monitor_view option
(** [None] when no shard has a monitor installed. *)

(** The fleet-wide budget certificate read. *)
type cert_view = {
  c_shards : int;  (** shards contributing a certificate *)
  c_total_tasks : Analysis.card;
  c_total_answers : Analysis.card;
}

val merge_certificates : Analysis.certificate list -> cert_view option

(** What one shard contributes to the gather — plain data, so this module
    depends only on the engine layer. *)
type shard_input = {
  s_id : int;
  s_engines : Engine.t list;  (** live slots (crashed slots excluded) *)
  s_metrics : Telemetry.Metrics.t;  (** the shard's [shard.*] registry *)
  s_latencies_ns : int array;
}

type t = {
  shards : int;
  live_shards : int;  (** shards that contributed (not crashed) *)
  requests : int;  (** total pumped requests across the fleet *)
  pending : int;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  metrics : Telemetry.Metrics.t;  (** fleet totals + ["shard<i>."] views *)
  monitor : monitor_view option;
  certificate : cert_view option;
}

val gather : total_shards:int -> shard_input list -> t
(** One fleet view over the given shards' current state. *)

val to_json : t -> string
(** The fleet view as one deterministic JSON object ([shards], [pending],
    [latency_ns], [monitor], [certificate], [metrics]). *)

val pp : Format.formatter -> t -> unit
(** Human-readable fleet dashboard — what [tweetpecker serve] prints. *)

(** One engine shard: a mailbox-driven run-loop over per-campaign engines.

    A shard owns one {!Cylog.Engine} per open campaign (each with its own
    durable journal directory) and a FIFO mailbox of requests. Nothing
    executes at post time: {!post} enqueues a ticketed request and returns
    immediately; {!pump_one} dequeues and executes exactly one request
    against the addressed slot, runs the engine to quiescence when the
    request mutated it, and fills the ticket's reply. The server's
    synchronous facade round-robin-pumps all shards until its ticket
    resolves, so shards make progress independently of each other while
    the whole fleet stays deterministic — no threads, one total order of
    requests per shard, byte-identical traces run to run.

    A storage crash ({!Cylog.Storage.Crashed} / [No_space]) while pumping
    marks the slot failed; subsequent requests to it answer
    [Crashed_shard] without touching the engine, until {!recover_slot}
    rebuilds it from its journal ({!Cylog.Engine.recover}) — restore work
    is O(live state) after compaction, independent of campaign length. *)

open Cylog

type request =
  | Lease of { worker : Reldb.Value.t; now : int }
      (** grant the worker a pending task (oldest assignable first);
          under the lease runtime this takes an engine lease *)
  | Supply of {
      task : Engine.open_id;
      worker : Reldb.Value.t;
      values : (string * Reldb.Value.t) list;
    }
  | Answer of { task : Engine.open_id; worker : Reldb.Value.t; yes : bool }
  | Decline of { task : Engine.open_id }
  | Reclaim of { now : int }  (** expire overdue leases *)
  | Sample of { round : int }  (** take a monitor sample *)

type reply =
  | Granted of Engine.open_tuple * string option
      (** the task and its rendered view, if the program declares one *)
  | No_task
  | Answered of Engine.event
  | Rejected of Engine.reject
  | Declined
  | Reclaimed of int  (** leases expired by this reclaim *)
  | Sampled of Monitor.firing list
  | Crashed_shard  (** the slot's storage crashed; recover it first *)

type ticket
(** A pending reply slot, filled when the request is pumped. *)

val reply : ticket -> reply option
(** [None] until the request has been executed. *)

type t

val create : id:int -> t
(** An empty shard with no campaigns and an empty mailbox. *)

val id : t -> int

val metrics : t -> Telemetry.Metrics.t
(** The shard's own registry ([shard.*] counters: requests, leases
    granted, answers accepted/rejected, crashes, recoveries) — engine
    metrics live in each slot's engine registry. *)

val open_slot :
  t ->
  campaign:string ->
  ?journal_dir:string ->
  ?journal_config:Journal.config ->
  ?storage:(module Storage.S) ->
  ?lease:Lease.config ->
  ?policy:Engine.quorum_policy ->
  ?relations:string list ->
  ?aggregate:Engine.aggregate ->
  ?monitor:Monitor.config ->
  Ast.program ->
  unit
(** Load this shard's split of a campaign program, attach its journal
    (when [journal_dir] is given), install lease/quorum/monitor config,
    and run to initial quiescence. @raise Failure on a duplicate
    campaign name. *)

val campaigns : t -> string list
(** Open campaign names, in opening order. *)

val engine : t -> campaign:string -> Engine.t option
(** The slot's live engine — the fleet layer's scatter source. [None]
    for unknown campaigns. *)

val slot_failed : t -> campaign:string -> bool
val failed : t -> bool
(** Some slot is crashed and awaiting recovery. *)

val post : t -> campaign:string -> request -> ticket
(** Enqueue; never executes. Unknown campaigns are answered
    [Crashed_shard] at pump time (the router should prevent this). *)

val pump_one : t -> bool
(** Execute the oldest queued request, if any; [false] on an empty
    mailbox. *)

val pump : t -> int
(** Drain the mailbox; the number of requests executed. *)

val queue_length : t -> int

val pending_total : t -> int
(** Pending open tuples summed over live slots. *)

val latencies_ns : t -> int array
(** Wall-clock service time of every pumped request, nanoseconds, in
    execution order — raw samples for the fleet's exact percentiles.
    Observability only: no behaviour depends on these. *)

val recover_slot :
  t ->
  campaign:string ->
  ?builtins:Builtin.registry ->
  ?aggregate:Engine.aggregate ->
  ?storage:(module Storage.S) ->
  unit ->
  Engine.recovery_stats
(** Rebuild a crashed (or live) slot from its journal directory and swap
    the recovered engine in; lease/quorum/monitor config replays from the
    journal. [storage] replaces the slot's storage (e.g. the post-crash
    image {!Cylog.Storage.Sim.after_crash}). @raise Failure on unknown
    campaigns or slots opened without a journal. *)

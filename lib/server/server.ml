module Router = Router
module Shard = Shard
module Fleet = Fleet

open Cylog

type t = {
  pool : Shard.t array;
  journal_root : string option;
  journal_config : Journal.config option;
  storage_for : int -> (module Storage.S) option;
  server_metrics : Telemetry.Metrics.t;
  mutable open_names : string list;  (* reverse opening order *)
}

type task_ref = { shard : int; local : Engine.open_id }

let create ?journal_root ?journal_config ?storage ~shards () =
  let n = max 1 shards in
  {
    pool = Array.init n (fun id -> Shard.create ~id);
    journal_root;
    journal_config;
    storage_for =
      (match storage with
      | None -> fun _ -> None
      | Some f -> fun i -> Some (f i));
    server_metrics = Telemetry.Metrics.create ();
    open_names = [];
  }

let shards t = Array.length t.pool
let metrics t = t.server_metrics
let shard t i = t.pool.(i)
let campaigns t = List.rev t.open_names

let open_campaign t ~name ?(partition_by = []) ?lease ?policy ?relations
    ?aggregate ?monitor program =
  if List.mem name t.open_names then
    failwith (Printf.sprintf "campaign %S already open" name);
  Telemetry.Metrics.incr t.server_metrics "server.campaigns_opened";
  let n = shards t in
  let splits = Router.split_program ~shards:n partition_by program in
  Array.iteri
    (fun i sh ->
      let journal_dir =
        Option.map
          (fun root -> Filename.concat root (Printf.sprintf "shard-%02d/%s" i name))
          t.journal_root
      in
      Shard.open_slot sh ~campaign:name ?journal_dir
        ?journal_config:t.journal_config
        ?storage:(t.storage_for i) ?lease ?policy ?relations ?aggregate
        ?monitor splits.(i))
    t.pool;
  t.open_names <- name :: t.open_names

(* The synchronous facade: post one ticket, then round-robin pump every
   shard until it fills. Each iteration executes at most one request per
   shard, so no shard's queue can starve behind the caller's. *)
let await t ticket =
  let rec loop () =
    match Shard.reply ticket with
    | Some r -> r
    | None ->
        let progressed =
          Array.fold_left
            (fun acc sh -> Shard.pump_one sh || acc)
            false t.pool
        in
        if not progressed then
          (* the ticket is queued on some shard, so a full unproductive
             sweep is impossible; guard against it anyway *)
          failwith "server: request lost"
        else loop ()
  in
  loop ()

let request t i ~campaign req =
  Telemetry.Metrics.incr t.server_metrics "server.requests";
  await t (Shard.post t.pool.(i) ~campaign req)

let lease t ~campaign ~worker ~now =
  let n = shards t in
  let start = Router.shard_of_values ~shards:n [ worker ] in
  let rec probe i =
    if i >= n then None
    else begin
      let s = (start + i) mod n in
      Telemetry.Metrics.incr t.server_metrics "server.lease_probes";
      match request t s ~campaign (Shard.Lease { worker; now }) with
      | Shard.Granted (ot, view) -> Some ({ shard = s; local = ot.id }, ot, view)
      | _ -> probe (i + 1)
    end
  in
  probe 0

type answer_result =
  | Accepted of Engine.event
  | Rejected of Engine.reject
  | Shard_down of int

let answer_of_reply s = function
  | Shard.Answered ev -> Accepted ev
  | Shard.Rejected rej -> Rejected rej
  | Shard.Crashed_shard -> Shard_down s
  | _ -> Shard_down s

let supply t ~campaign (task : task_ref) ~worker values =
  answer_of_reply task.shard
    (request t task.shard ~campaign
       (Shard.Supply { task = task.local; worker; values }))

let answer_existence t ~campaign (task : task_ref) ~worker yes =
  answer_of_reply task.shard
    (request t task.shard ~campaign
       (Shard.Answer { task = task.local; worker; yes }))

let decline t ~campaign (task : task_ref) =
  ignore (request t task.shard ~campaign (Shard.Decline { task = task.local }))

let reclaim t ~campaign ~now =
  let total = ref 0 in
  Array.iteri
    (fun i _ ->
      match request t i ~campaign (Shard.Reclaim { now }) with
      | Shard.Reclaimed n -> total := !total + n
      | _ -> ())
    t.pool;
  !total

let sample t ~campaign ~round =
  let firings = ref [] in
  Array.iteri
    (fun i _ ->
      match request t i ~campaign (Shard.Sample { round }) with
      | Shard.Sampled fs ->
          firings := !firings @ List.map (fun f -> (i, f)) fs
      | _ -> ())
    t.pool;
  !firings

type cursor = { c_campaign : string; pos : int array }

let poll_cursor t ~campaign =
  {
    c_campaign = campaign;
    pos =
      Array.map
        (fun sh ->
          match Shard.engine sh ~campaign with
          | Some e -> Engine.event_count e
          | None -> 0)
        t.pool;
  }

type resolution =
  | Task_resolved of { task : task_ref; quorum : bool }
  | Task_dead of { task : task_ref; reason : Lease.reason }

(* Resolution recognition, mirroring the monitor's lifecycle fold:
   [Resolved id] retires a non-quorum task; a [Vote_recorded] riding with
   any other effect is a quorum resolution (a lone vote just banks);
   [Dead_lettered] is the failure exit. *)
let resolutions_of_event s (ev : Engine.event) =
  let vote =
    List.find_map
      (function Engine.Vote_recorded (id, _) -> Some id | _ -> None)
      ev.effects
  in
  let rides =
    List.exists (function Engine.Vote_recorded _ -> false | _ -> true)
      ev.effects
  in
  let quorum_resolution =
    match vote with Some id when rides -> [ Task_resolved { task = { shard = s; local = id }; quorum = true } ] | _ -> []
  in
  let rest =
    List.filter_map
      (function
        | Engine.Resolved id ->
            Some (Task_resolved { task = { shard = s; local = id }; quorum = false })
        | Engine.Dead_lettered (id, reason) ->
            Some (Task_dead { task = { shard = s; local = id }; reason })
        | _ -> None)
      ev.effects
  in
  quorum_resolution @ rest

let resolve_poll t ~campaign cursor =
  if cursor.c_campaign <> campaign then
    invalid_arg "resolve_poll: cursor belongs to another campaign";
  let out = ref [] in
  Array.iteri
    (fun i sh ->
      if not (Shard.slot_failed sh ~campaign) then
        match Shard.engine sh ~campaign with
        | None -> ()
        | Some e ->
            let events = Engine.events_since e ~after:cursor.pos.(i) in
            cursor.pos.(i) <- cursor.pos.(i) + List.length events;
            List.iter
              (fun ev -> out := !out @ resolutions_of_event i ev)
              events)
    t.pool;
  !out

let pending_total t =
  Array.fold_left (fun acc sh -> acc + Shard.pending_total sh) 0 t.pool

let stats t =
  let inputs =
    Array.to_list t.pool
    |> List.filter_map (fun sh ->
           if Shard.failed sh then None
           else
             Some
               {
                 Fleet.s_id = Shard.id sh;
                 s_engines =
                   List.filter_map
                     (fun c -> Shard.engine sh ~campaign:c)
                     (Shard.campaigns sh);
                 s_metrics = Shard.metrics sh;
                 s_latencies_ns = Shard.latencies_ns sh;
               })
  in
  let view = Fleet.gather ~total_shards:(shards t) inputs in
  Telemetry.Metrics.merge ~into:view.Fleet.metrics t.server_metrics;
  view

let recover_shard t i ~campaign ?builtins ?aggregate ?storage () =
  Telemetry.Metrics.incr t.server_metrics "server.recoveries";
  Shard.recover_slot t.pool.(i) ~campaign ?builtins ?aggregate ?storage ()

open Cylog

type placement = { relation : string; key_attrs : string list }

(* 32-bit FNV-1a, folded byte by byte and masked so the accumulator stays
   inside OCaml's native int on every platform. The canonical rendering
   and the per-position separator make the hash a pure function of the
   key values — any process routing the same instance key picks the same
   shard. *)
let fnv_offset = 0x811c9dc5
let fnv_prime = 0x01000193
let fnv_mask = 0xFFFFFFFF

let hash_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime land fnv_mask)
    s;
  !h

let hash_values vs =
  List.fold_left
    (fun h v ->
      let h = hash_string h (Reldb.Value.to_string v) in
      (h lxor 0x1F) * fnv_prime land fnv_mask)
    fnv_offset vs

let shard_of_values ~shards vs =
  if shards <= 1 then 0 else hash_values vs mod shards

let placement_of placements rel =
  List.find_opt (fun p -> p.relation = rel) placements

let fact_key placements (st : Ast.statement) =
  if not (Ast.statement_is_fact st) then None
  else
    match st.heads with
    | [ { head = Head_atom { atom; kind = Assert }; _ } ] -> (
        match placement_of placements atom.pred with
        | None -> None
        | Some p ->
            let const_of attr =
              List.find_map
                (fun (a : Ast.arg) ->
                  if a.attr = attr then
                    match a.bind with
                    | Bound (Const v) -> Some v
                    | _ -> None
                  else None)
                atom.args
            in
            let rec keys = function
              | [] -> Some []
              | attr :: rest -> (
                  match (const_of attr, keys rest) with
                  | Some v, Some vs -> Some (v :: vs)
                  | _ -> None)
            in
            keys p.key_attrs)
    | _ -> None

let shard_of_fact ~shards placements st =
  Option.map (shard_of_values ~shards) (fact_key placements st)

let split_program ~shards placements (program : Ast.program) =
  let shards = max 1 shards in
  Array.init shards (fun i ->
      let statements =
        List.filter
          (fun st ->
            match shard_of_fact ~shards placements st with
            | None -> true
            | Some owner -> owner = i)
          program.statements
      in
      { program with statements })

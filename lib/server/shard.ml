open Cylog

type request =
  | Lease of { worker : Reldb.Value.t; now : int }
  | Supply of {
      task : Engine.open_id;
      worker : Reldb.Value.t;
      values : (string * Reldb.Value.t) list;
    }
  | Answer of { task : Engine.open_id; worker : Reldb.Value.t; yes : bool }
  | Decline of { task : Engine.open_id }
  | Reclaim of { now : int }
  | Sample of { round : int }

type reply =
  | Granted of Engine.open_tuple * string option
  | No_task
  | Answered of Engine.event
  | Rejected of Engine.reject
  | Declined
  | Reclaimed of int
  | Sampled of Monitor.firing list
  | Crashed_shard

type ticket = { mutable filled : reply option }

let reply t = t.filled

type slot = {
  campaign : string;
  mutable engine : Engine.t;
  journal_dir : string option;
  journal_config : Journal.config option;
  mutable storage : (module Storage.S) option;
  mutable crashed : bool;
}

type t = {
  sid : int;
  slots : (string, slot) Hashtbl.t;
  mutable order : string list;  (* campaign names, reverse opening order *)
  mailbox : (string * request * ticket) Queue.t;
  shard_metrics : Telemetry.Metrics.t;
  (* request service times in ns; growable, observability-only *)
  mutable lat : int array;
  mutable lat_n : int;
}

let create ~id =
  {
    sid = id;
    slots = Hashtbl.create 7;
    order = [];
    mailbox = Queue.create ();
    shard_metrics = Telemetry.Metrics.create ();
    lat = Array.make 64 0;
    lat_n = 0;
  }

let id t = t.sid
let metrics t = t.shard_metrics

let record_latency t ns =
  if t.lat_n = Array.length t.lat then begin
    let grown = Array.make (2 * t.lat_n) 0 in
    Array.blit t.lat 0 grown 0 t.lat_n;
    t.lat <- grown
  end;
  t.lat.(t.lat_n) <- ns;
  t.lat_n <- t.lat_n + 1

let latencies_ns t = Array.sub t.lat 0 t.lat_n

let open_slot t ~campaign ?journal_dir ?journal_config ?storage ?lease ?policy
    ?relations ?aggregate ?monitor program =
  if Hashtbl.mem t.slots campaign then
    failwith (Printf.sprintf "shard %d: campaign %S already open" t.sid campaign);
  let engine = Engine.load program in
  (match journal_dir with
  | Some dir -> Engine.journal_start ?config:journal_config ?storage engine dir
  | None -> ());
  Option.iter (fun cfg -> Engine.set_lease_config engine (Some cfg)) lease;
  Option.iter
    (fun p -> Engine.set_quorum_policy engine ?relations ?aggregate p)
    policy;
  Option.iter (fun cfg -> Engine.set_monitor engine (Some cfg)) monitor;
  ignore (Engine.run engine);
  Hashtbl.add t.slots campaign
    { campaign; engine; journal_dir; journal_config; storage; crashed = false };
  t.order <- campaign :: t.order;
  Telemetry.Metrics.incr t.shard_metrics "shard.campaigns_opened"

let campaigns t = List.rev t.order
let find t campaign = Hashtbl.find_opt t.slots campaign

let engine t ~campaign = Option.map (fun s -> s.engine) (find t campaign)

let slot_failed t ~campaign =
  match find t campaign with Some s -> s.crashed | None -> false

let failed t =
  Hashtbl.fold (fun _ s acc -> acc || s.crashed) t.slots false

let post t ~campaign req =
  let ticket = { filled = None } in
  Queue.add (campaign, req, ticket) t.mailbox;
  ticket

(* The lease step: the oldest pending task this worker may take — skipping
   tasks they already voted on, and (under the lease runtime) tasks whose
   lease slots are all held. The engine's own capacity rules decide; this
   loop just walks candidates in age order. *)
let grant_lease slot ~worker ~now =
  let e = slot.engine in
  let candidates =
    List.filter
      (fun (ot : Engine.open_tuple) ->
        not (Engine.has_voted e ot.id ~worker))
      (Engine.pending_for e worker)
  in
  let leases_on = Engine.lease_config e <> None in
  let rec pick = function
    | [] -> No_task
    | (ot : Engine.open_tuple) :: rest ->
        if not leases_on then Granted (ot, Engine.task_view e ot)
        else (
          match Engine.assign e ot.id ~worker ~now with
          | Ok _ -> Granted (ot, Engine.task_view e ot)
          | Error _ -> pick rest)
  in
  pick candidates

let execute t slot req =
  let m = t.shard_metrics in
  match req with
  | Lease { worker; now } -> (
      match grant_lease slot ~worker ~now with
      | Granted _ as r ->
          Telemetry.Metrics.incr m "shard.leases_granted";
          r
      | r ->
          Telemetry.Metrics.incr m "shard.leases_refused";
          r)
  | Supply { task; worker; values } -> (
      match Engine.supply slot.engine task ~worker values with
      | Ok ev ->
          ignore (Engine.run slot.engine);
          Telemetry.Metrics.incr m "shard.answers_accepted";
          Answered ev
      | Error rej ->
          Telemetry.Metrics.incr m "shard.answers_rejected";
          Rejected rej)
  | Answer { task; worker; yes } -> (
      match Engine.answer_existence slot.engine task ~worker yes with
      | Ok ev ->
          ignore (Engine.run slot.engine);
          Telemetry.Metrics.incr m "shard.answers_accepted";
          Answered ev
      | Error rej ->
          Telemetry.Metrics.incr m "shard.answers_rejected";
          Rejected rej)
  | Decline { task } ->
      Engine.decline slot.engine task;
      ignore (Engine.run slot.engine);
      Declined
  | Reclaim { now } ->
      let expired = Engine.reclaim slot.engine ~now in
      ignore (Engine.run slot.engine);
      Reclaimed (List.length expired)
  | Sample { round } -> Sampled (Engine.monitor_sample slot.engine ~round)

let pump_one t =
  match Queue.take_opt t.mailbox with
  | None -> false
  | Some (campaign, req, ticket) ->
      Telemetry.Metrics.incr t.shard_metrics "shard.requests";
      let answer =
        match find t campaign with
        | None -> Crashed_shard
        | Some slot when slot.crashed -> Crashed_shard
        | Some slot -> (
            let t0 = Unix.gettimeofday () in
            try
              let r = execute t slot req in
              record_latency t
                (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
              r
            with Storage.Crashed | Storage.No_space ->
              slot.crashed <- true;
              Telemetry.Metrics.incr t.shard_metrics "shard.crashes";
              Crashed_shard)
      in
      ticket.filled <- Some answer;
      true

let pump t =
  let n = ref 0 in
  while pump_one t do
    incr n
  done;
  !n

let queue_length t = Queue.length t.mailbox

let pending_total t =
  Hashtbl.fold
    (fun _ s acc ->
      if s.crashed then acc else acc + List.length (Engine.pending s.engine))
    t.slots 0

let recover_slot t ~campaign ?builtins ?aggregate ?storage () =
  match find t campaign with
  | None ->
      failwith (Printf.sprintf "shard %d: unknown campaign %S" t.sid campaign)
  | Some slot -> (
      match slot.journal_dir with
      | None ->
          failwith
            (Printf.sprintf "shard %d: campaign %S has no journal" t.sid
               campaign)
      | Some dir ->
          (match storage with Some _ -> slot.storage <- storage | None -> ());
          (* Keep the slot's journal config across reopen: recovery with a
             different fsync/rotation policy would silently change the
             durability contract of the resumed campaign. *)
          (* No catch-up [run] here: the journal replay already reproduced
             quiescence, and an extra run would journal a fresh entry —
             breaking byte-equality with the pre-crash trace. *)
          let engine, stats =
            Engine.recover ?builtins ?aggregate ?config:slot.journal_config
              ?storage:slot.storage dir
          in
          slot.engine <- engine;
          slot.crashed <- false;
          Telemetry.Metrics.incr t.shard_metrics "shard.recoveries";
          stats)

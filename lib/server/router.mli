(** Deterministic request routing: shard keys from Skolem-term key values.

    The game aspect hands the campaign server its natural partition: a
    game instance is identified by the values of its Skolem-function
    parameters, and instances are independent sub-campaigns (Webdamlog's
    relation/instance-ownership model, specialised to games). This module
    derives a shard index from any list of key values by hashing their
    canonical rendering, and splits a program's base facts across N
    shards by ownership while replicating everything else (rules, game
    aspects, schemas, views) — so each shard's engine evaluates exactly
    the sub-campaign whose instances it owns.

    Everything here is pure and deterministic: the same key values map to
    the same shard in every process, on every run — the property the
    routing differential tests pin down. *)

type placement = {
  relation : string;  (** a partitioned fact relation *)
  key_attrs : string list;
      (** the attributes forming the instance key (typically the game's
          Skolem parameters, e.g. the tweet id of a (tweet, attr)
          instance) *)
}

val hash_values : Reldb.Value.t list -> int
(** FNV-1a (32-bit) over the canonical {!Reldb.Value.to_string} rendering
    of the values, with a separator between positions so [["ab"; "c"]]
    and [["a"; "bc"]] differ. Always non-negative. *)

val shard_of_values : shards:int -> Reldb.Value.t list -> int
(** [hash_values vs mod shards]; shard 0 when [shards <= 1]. *)

val fact_key : placement list -> Cylog.Ast.statement -> Reldb.Value.t list option
(** When the statement is a ground fact (empty body, single assert head)
    of a partitioned relation whose key attributes are all bound to
    constants, the key values in [key_attrs] order; [None] otherwise —
    such statements are replicated to every shard. *)

val shard_of_fact :
  shards:int -> placement list -> Cylog.Ast.statement -> int option
(** The owning shard of a partitioned fact; [None] for replicated
    statements. *)

val split_program :
  shards:int -> placement list -> Cylog.Ast.program -> Cylog.Ast.program array
(** One program per shard: statement order is preserved, partitioned
    facts appear only in their owning shard's program, and every other
    statement — plus schemas, games and views — is replicated. With
    [shards = 1] the single split program is the input program (the
    1-shard differential baseline). *)

type row_slot = {
  mutable tuple : Tuple.t;
  mutable live : bool;
  mutable version : int;
}

(* A lazily-built secondary hash index over a *set* of attributes (the
   compound-key generalisation of a single-attribute index). The bucket key
   is the projection of a tuple onto [key_attrs]; buckets may contain stale
   row indices (deleted rows, rows whose values changed via update), so
   reads re-validate against the live tuple. *)
type multi_index = {
  key_attrs : string list;  (* sorted, duplicate-free *)
  buckets : (Tuple.t, int list ref) Hashtbl.t;  (* projection -> row indices, descending *)
  mutable synced_upto : int;  (* rows below this index have been bucketed *)
}

type t = {
  schema : Schema.t;
  slots : row_slot Dynarray.t;
  (* Index from full-tuple equality to row index, live rows only. *)
  by_tuple : (Tuple.t, int) Hashtbl.t;
  (* Index from key projection to row index, live rows only; present iff the
     schema declares a key. *)
  by_key : (Tuple.t, int) Hashtbl.t option;
  (* Secondary indexes, keyed by the sorted attribute set they cover. *)
  by_attrs : (string list, multi_index) Hashtbl.t;
  mutable next_auto : int;
  mutable generation : int;
  (* Counts only destructive mutations — in-place updates, deletes and
     clears. Appends never bump it, so a reader that only needs to learn
     about *invalidated* rows (the engine's delta evaluation) can watch
     this instead of [generation]. *)
  mutable destructions : int;
}

type insert_outcome =
  | Inserted of int
  | Duplicate_tuple of int
  | Duplicate_key of int

type update_outcome = Replaced of int | Upserted of int | Unchanged of int

let create schema =
  {
    schema;
    slots = Dynarray.create ();
    by_tuple = Hashtbl.create 64;
    by_key = (match Schema.key schema with [] -> None | _ -> Some (Hashtbl.create 64));
    by_attrs = Hashtbl.create 4;
    next_auto = 1;
    generation = 0;
    destructions = 0;
  }

let schema r = r.schema
let name r = Schema.name r.schema
let cardinal r = Hashtbl.length r.by_tuple
let is_empty r = cardinal r = 0
let generation r = r.generation
let destructions r = r.destructions
let high_water r = Dynarray.length r.slots

(* Fingerprint of the statistics a join plan was costed against: any
   destructive mutation moves it, but pure appends only when they push the
   cardinality across a power-of-two boundary — the resolution at which
   the planner's greedy estimates can change their relative order. *)
let stats_epoch r =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  (r.destructions * 64) + log2 (cardinal r + 1) 0

let key_proj r t = Tuple.project t (Schema.key r.schema)

let normalize r t =
  if not (Tuple.conforms t r.schema) then
    invalid_arg
      (Printf.sprintf "Relation %s: tuple %s has attributes outside the schema"
         (name r) (Tuple.to_string t));
  let t = Tuple.complete t r.schema in
  match Schema.auto_increment r.schema with
  | Some a when Value.is_null (Tuple.get_or_null t a) ->
      let t = Tuple.set t a (Value.Int r.next_auto) in
      r.next_auto <- r.next_auto + 1;
      t
  | Some a ->
      (* Keep the auto counter ahead of explicitly supplied ids. *)
      (match Tuple.get_or_null t a with
      | Value.Int i when i >= r.next_auto -> r.next_auto <- i + 1
      | _ -> ());
      t
  | None -> t

let insert r t =
  let t = normalize r t in
  match Hashtbl.find_opt r.by_tuple t with
  | Some i -> Duplicate_tuple i
  | None -> (
      let key_hit =
        match r.by_key with
        | Some idx -> Hashtbl.find_opt idx (key_proj r t)
        | None -> None
      in
      match key_hit with
      | Some i -> Duplicate_key i
      | None ->
          let i = Dynarray.push r.slots { tuple = t; live = true; version = 0 } in
          Hashtbl.replace r.by_tuple t i;
          Option.iter (fun idx -> Hashtbl.replace idx (key_proj r t) i) r.by_key;
          r.generation <- r.generation + 1;
          Inserted i)

let update r t =
  let t = normalize r t in
  let key_hit =
    match r.by_key with
    | Some idx -> Hashtbl.find_opt idx (key_proj r t)
    | None -> Hashtbl.find_opt r.by_tuple t
  in
  match key_hit with
  | None -> (
      match insert r t with
      | Inserted i -> Upserted i
      | Duplicate_tuple i | Duplicate_key i -> Unchanged i)
  | Some i ->
      let slot = Dynarray.get r.slots i in
      if Tuple.equal slot.tuple t then Unchanged i
      else begin
        Hashtbl.remove r.by_tuple slot.tuple;
        slot.tuple <- t;
        slot.version <- slot.version + 1;
        Hashtbl.replace r.by_tuple t i;
        Option.iter (fun idx -> Hashtbl.replace idx (key_proj r t) i) r.by_key;
        (* Register the row under its new projection in every built
           secondary index (stale old-value entries are filtered on read). *)
        Hashtbl.iter
          (fun _ idx ->
            if i < idx.synced_upto then
              let key = Tuple.project t idx.key_attrs in
              match Hashtbl.find_opt idx.buckets key with
              | Some bucket -> if not (List.mem i !bucket) then bucket := i :: !bucket
              | None -> Hashtbl.replace idx.buckets key (ref [ i ]))
          r.by_attrs;
        r.generation <- r.generation + 1;
        r.destructions <- r.destructions + 1;
        Replaced i
      end

let delete_where r p =
  let removed = ref 0 in
  Dynarray.iter
    (fun slot ->
      if slot.live && p slot.tuple then begin
        slot.live <- false;
        Hashtbl.remove r.by_tuple slot.tuple;
        Option.iter (fun idx -> Hashtbl.remove idx (key_proj r slot.tuple)) r.by_key;
        incr removed
      end)
    r.slots;
  if !removed > 0 then begin
    r.generation <- r.generation + 1;
    r.destructions <- r.destructions + 1
  end;
  !removed

let mem r t =
  let t = Tuple.complete t r.schema in
  Hashtbl.mem r.by_tuple t

(* Forward declaration niche: mem_pattern probes the secondary index when
   the pattern constrains at least one attribute, so it is defined after
   rows_with below. *)

let find_by_key r t =
  match r.by_key with
  | Some idx -> (
      match Hashtbl.find_opt idx (key_proj r (Tuple.complete t r.schema)) with
      | Some i -> Some (i, (Dynarray.get r.slots i).tuple)
      | None -> None)
  | None -> (
      let t = Tuple.complete t r.schema in
      match Hashtbl.find_opt r.by_tuple t with
      | Some i -> Some (i, t)
      | None -> None)

let row r i =
  if i < 0 || i >= Dynarray.length r.slots then None
  else
    let slot = Dynarray.get r.slots i in
    if slot.live then Some slot.tuple else None

let row_version r i =
  if i < 0 || i >= Dynarray.length r.slots then 0
  else (Dynarray.get r.slots i).version

let fold f acc r =
  let acc = ref acc in
  Dynarray.iteri
    (fun i slot -> if slot.live then acc := f !acc i slot.tuple)
    r.slots;
  !acc

let rows r = List.rev (fold (fun acc i t -> (i, t) :: acc) [] r)

(* Find-or-create the index over [attrs] (sorted, duplicate-free) and
   bucket the rows appended since the last probe. *)
let index_on r attrs =
  let idx =
    match Hashtbl.find_opt r.by_attrs attrs with
    | Some idx -> idx
    | None ->
        let idx = { key_attrs = attrs; buckets = Hashtbl.create 64; synced_upto = 0 } in
        Hashtbl.replace r.by_attrs attrs idx;
        idx
  in
  for i = idx.synced_upto to Dynarray.length r.slots - 1 do
    let slot = Dynarray.get r.slots i in
    let key = Tuple.project slot.tuple idx.key_attrs in
    match Hashtbl.find_opt idx.buckets key with
    | Some bucket -> bucket := i :: !bucket
    | None -> Hashtbl.replace idx.buckets key (ref [ i ])
  done;
  idx.synced_upto <- Dynarray.length r.slots;
  idx

let rows_with_pattern r pat =
  match pat with
  | [] -> rows r
  | _ -> (
      let attrs = List.sort_uniq String.compare (List.map fst pat) in
      let idx = index_on r attrs in
      let key = Tuple.project (Tuple.of_list pat) attrs in
      match Hashtbl.find_opt idx.buckets key with
      | None -> []
      | Some bucket ->
          List.filter_map
            (fun i ->
              let slot = Dynarray.get r.slots i in
              if slot.live && Tuple.matches slot.tuple pat then Some (i, slot.tuple)
              else None)
            (List.sort_uniq compare !bucket))

let rows_with r attr v = rows_with_pattern r [ (attr, v) ]

let distinct_count r attrs =
  match attrs with
  | [] -> if is_empty r then 0 else 1
  | _ ->
      let attrs = List.sort_uniq String.compare attrs in
      Hashtbl.length (index_on r attrs).buckets

let mem_pattern r pat =
  match pat with
  | _ :: _ -> rows_with_pattern r pat <> []
  | [] ->
      let rec loop i =
        if i >= Dynarray.length r.slots then false
        else (Dynarray.get r.slots i).live || loop (i + 1)
      in
      loop 0
let tuples r = List.rev (fold (fun acc _ t -> t :: acc) [] r)
let iter f r = Dynarray.iteri (fun i slot -> if slot.live then f i slot.tuple) r.slots
let exists p r = Dynarray.exists (fun slot -> slot.live && p slot.tuple) r.slots
let filter p r = List.filter p (tuples r)

let clear r =
  Dynarray.clear r.slots;
  Hashtbl.reset r.by_tuple;
  Option.iter Hashtbl.reset r.by_key;
  Hashtbl.reset r.by_attrs;
  r.next_auto <- 1;
  r.generation <- r.generation + 1;
  r.destructions <- r.destructions + 1

let copy r =
  let fresh = create r.schema in
  Dynarray.iter
    (fun slot ->
      let i =
        Dynarray.push fresh.slots
          { tuple = slot.tuple; live = slot.live; version = slot.version }
      in
      if slot.live then begin
        Hashtbl.replace fresh.by_tuple slot.tuple i;
        Option.iter
          (fun idx -> Hashtbl.replace idx (key_proj fresh slot.tuple) i)
          fresh.by_key
      end)
    r.slots;
  fresh.next_auto <- r.next_auto;
  fresh.generation <- r.generation;
  fresh.destructions <- r.destructions;
  fresh

let pp ppf r =
  Format.fprintf ppf "@[<v 2>%a [%d rows]" Schema.pp r.schema (cardinal r);
  iter (fun i t -> Format.fprintf ppf "@,%3d: %a" i Tuple.pp t) r;
  Format.fprintf ppf "@]"

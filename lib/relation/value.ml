type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List x, List y -> ( try List.for_all2 equal x y with Invalid_argument _ -> false)
  | (Null | Bool _ | Int _ | Float _ | String _ | List _), _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4
  | List _ -> 5

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | String x, String y -> String.compare x y
  | List x, List y -> compare_lists x y
  | _ -> Stdlib.compare (rank a) (rank b)

and compare_lists x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: x', b :: y' ->
      let c = compare a b in
      if c <> 0 then c else compare_lists x' y'

let rec hash = function
  | Null -> 17
  | Bool b -> if b then 29 else 31
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | List l -> List.fold_left (fun acc v -> (acc * 131) + hash v) 7 l

let is_null = function Null -> true | _ -> false

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | List l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
        l

let to_string v = Format.asprintf "%a" pp v

let rec to_display = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Format.asprintf "%g" f
  | String s -> s
  | List l -> "[" ^ String.concat ", " (List.map to_display l) ^ "]"

let int_exn = function
  | Int i -> i
  | v -> invalid_arg ("Value.int_exn: " ^ to_string v)

let string_exn = function
  | String s -> s
  | v -> invalid_arg ("Value.string_exn: " ^ to_string v)

let truthy = function
  | Null | Bool false | Int 0 | String "" -> false
  | Bool true | Int _ | Float _ | String _ | List _ -> true

let arith name fint ffloat a b =
  match (a, b) with
  | Int x, Int y -> Int (fint x y)
  | Float x, Float y -> Float (ffloat x y)
  | Int x, Float y -> Float (ffloat (float_of_int x) y)
  | Float x, Int y -> Float (ffloat x (float_of_int y))
  | _ -> invalid_arg (Printf.sprintf "Value.%s: %s, %s" name (to_string a) (to_string b))

let add a b =
  match (a, b) with
  | String x, String y -> String (x ^ y)
  | _ -> arith "add" ( + ) ( +. ) a b

let sub a b = arith "sub" ( - ) ( -. ) a b
let mul a b = arith "mul" ( * ) ( *. ) a b

let div a b =
  match b with
  | Int 0 | Float 0.0 -> raise Division_by_zero
  | _ -> arith "div" ( / ) ( /. ) a b

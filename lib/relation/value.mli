(** Atomic values stored in relations.

    CyLog manipulates tweets, worker identifiers, scores, and action
    descriptors ("a list containing two strings" in the paper's path tables),
    so the value domain covers scalars plus lists. [Null] represents an
    attribute whose value has not been determined — e.g. the [weather]
    attribute of an [Output] tuple before two workers agree. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list

val equal : t -> t -> bool
(** Structural equality. [Null] equals only [Null] (CyLog evaluates rule
    bodies over sure values, where SQL-style three-valued logic never
    arises). Numeric values of different representations are distinct:
    [Int 1] <> [Float 1.0]. *)

val compare : t -> t -> int
(** Total order, consistent with {!equal}. Orders first by constructor
    ([Null] < [Bool] < [Int] < [Float] < [String] < [List]) then by
    content. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val is_null : t -> bool
(** [is_null v] is true iff [v = Null]. *)

val type_name : t -> string
(** Constructor name for typing diagnostics: one of ["null"], ["bool"],
    ["int"], ["float"], ["string"], ["list"]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer; strings are quoted, lists bracketed. *)

val to_string : t -> string
(** [to_string v] renders [v] with {!pp}. *)

val to_display : t -> string
(** Like {!to_string} but strings are unquoted — the form shown to
    workers. *)

val int_exn : t -> int
(** Extract an integer. @raise Invalid_argument on other constructors. *)

val string_exn : t -> string
(** Extract a string. @raise Invalid_argument on other constructors. *)

val truthy : t -> bool
(** Truth value used by boolean contexts: [Null], [Bool false], [Int 0] and
    [String ""] are false; everything else is true. *)

val add : t -> t -> t
(** Numeric addition (int+int, float+float, int/float promote); string
    concatenation on strings. @raise Invalid_argument otherwise. *)

val sub : t -> t -> t
(** Numeric subtraction. @raise Invalid_argument on non-numbers. *)

val mul : t -> t -> t
(** Numeric multiplication. @raise Invalid_argument on non-numbers. *)

val div : t -> t -> t
(** Numeric division. @raise Division_by_zero on zero divisor;
    @raise Invalid_argument on non-numbers. *)

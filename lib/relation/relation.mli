(** Insertion-ordered relations with set semantics.

    A relation stores the live tuples of one schema. Three properties matter
    to the CyLog engine and are guaranteed here:

    - {b Row order.} Every tuple remembers the row index at which it was
      first inserted; conflict resolution prefers rule instances valued by
      tuples at earlier rows. Updates keep the row index of the tuple they
      replace; deletes never shift surviving rows.
    - {b Set semantics.} Inserting a tuple equal to a live tuple is a no-op,
      as is inserting a tuple whose key matches a live tuple's key (the paper
      relies on this for [Extracts]: the first extraction rule wins).
    - {b Auto-increment.} A [Null] (or missing) value for the schema's
      auto-increment attribute is replaced by the next integer, starting
      from 1. *)

type t

type insert_outcome =
  | Inserted of int  (** new row index *)
  | Duplicate_tuple of int  (** identical live tuple at this row *)
  | Duplicate_key of int  (** live tuple with the same key at this row *)

type update_outcome =
  | Replaced of int  (** row index whose tuple was replaced *)
  | Upserted of int  (** no key match; inserted as a new row *)
  | Unchanged of int  (** key match with an identical tuple *)

val create : Schema.t -> t
(** Empty relation over the given schema. *)

val schema : t -> Schema.t
(** The schema supplied at creation. *)

val name : t -> string
(** Shorthand for [Schema.name (schema r)]. *)

val cardinal : t -> int
(** Number of live tuples. *)

val is_empty : t -> bool
(** [cardinal r = 0]. *)

val insert : t -> Tuple.t -> insert_outcome
(** [insert r t] completes [t] against the schema (missing attributes become
    [Null], auto-increment is assigned) and inserts it unless it duplicates
    a live tuple or key. @raise Invalid_argument if [t] binds attributes
    outside the schema. *)

val update : t -> Tuple.t -> update_outcome
(** [update r t] replaces the live tuple whose key equals [t]'s key, keeping
    its row index; inserts [t] when no live tuple has that key. On relations
    without a declared key the whole tuple is the key, so update degenerates
    to insert-if-absent. *)

val delete_where : t -> (Tuple.t -> bool) -> int
(** [delete_where r p] removes every live tuple satisfying [p]; returns how
    many were removed. Row indices of survivors are unchanged. *)

val mem : t -> Tuple.t -> bool
(** [mem r t] is true iff a live tuple equals [complete]d [t]. *)

val mem_pattern : t -> (string * Value.t) list -> bool
(** [mem_pattern r pat] is true iff some live tuple matches the partial
    binding [pat]. *)

val find_by_key : t -> Tuple.t -> (int * Tuple.t) option
(** Live tuple whose key attributes equal those of the argument, with its
    row index. *)

val row : t -> int -> Tuple.t option
(** [row r i] is the live tuple at row [i], or [None] if [i] was never used
    or its tuple was deleted. *)

val row_version : t -> int -> int
(** Number of in-place updates row [i] has received (0 for fresh rows and
    out-of-range indices). The CyLog engine treats an updated tuple as a
    fresh arrival, so its firing memo keys on [(row, version)]. *)

val rows : t -> (int * Tuple.t) list
(** Live [(row index, tuple)] pairs in row order. *)

val rows_with : t -> string -> Value.t -> (int * Tuple.t) list
(** [rows_with r a v] is the live rows whose attribute [a] equals [v], in
    row order. Backed by a lazily-built secondary index on [a], so repeated
    probes cost O(result) rather than O(relation). *)

val rows_with_pattern : t -> (string * Value.t) list -> (int * Tuple.t) list
(** [rows_with_pattern r pat] is the live rows matching every [(attr, v)]
    constraint of [pat], in row order. Backed by a lazily-built
    compound-key hash index over [pat]'s attribute set, so repeated probes
    with the same attribute set cost O(result) rather than O(relation).
    [pat = []] is every live row. *)

val distinct_count : t -> string list -> int
(** [distinct_count r attrs] estimates the number of distinct projections
    of the relation onto [attrs] — the denominator of the planner's
    selectivity estimate [cardinal / distinct_count]. Backed by the same
    compound index as {!rows_with_pattern}; the count may slightly
    overestimate after deletes or updates (stale buckets are not evicted),
    which is acceptable for cost estimation. [attrs = []] is 0 or 1. *)

val tuples : t -> Tuple.t list
(** Live tuples in row order. *)

val iter : (int -> Tuple.t -> unit) -> t -> unit
(** Iterate over live rows in row order. *)

val fold : ('acc -> int -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc
(** Fold over live rows in row order. *)

val exists : (Tuple.t -> bool) -> t -> bool
(** True iff some live tuple satisfies the predicate. *)

val filter : (Tuple.t -> bool) -> t -> Tuple.t list
(** Live tuples satisfying the predicate, in row order. *)

val generation : t -> int
(** Monotone counter bumped by every successful insert, update or delete;
    lets the engine detect that a relation changed without diffing. *)

val destructions : t -> int
(** Monotone counter bumped only by destructive mutations — in-place
    updates ([Replaced]), deletes that removed rows, and {!clear}. Pure
    appends leave it untouched, so the engine's delta evaluation watches
    it to learn when previously-read rows may have been invalidated
    (appends are picked up by the {!high_water} frontier instead). *)

val high_water : t -> int
(** One past the largest row index ever used — the watermark for delta
    (seminaive) evaluation: rows at or above a reader's frontier are the
    relation's ΔR. *)

val stats_epoch : t -> int
(** Fingerprint of the statistics visible to the join planner: changes on
    every destructive mutation, and on appends only when the cardinality
    crosses a power-of-two boundary. A cached plan keyed on the epochs of
    its body relations therefore survives ordinary row arrivals instead of
    being recompiled per insert. *)

val clear : t -> unit
(** Remove all tuples and reset row numbering and auto-increment. *)

val copy : t -> t
(** Deep copy sharing no mutable state. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering: header then one live tuple per line. *)

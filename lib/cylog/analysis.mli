(** Static cost and cardinality analysis: budget certificates.

    An abstract interpretation over a parsed program that bounds, per
    relation, how many tuples evaluation can ever produce, and from those
    bounds derives a {b budget certificate}: for every [/open] statement
    an upper bound on the tasks it can issue and the answers it can
    collect under a given quorum policy. The survey's central trade-off
    (monetary cost vs. latency vs. quality) is enforced at runtime by the
    campaign monitor's budget watchdog — this module answers the static
    dual, "what is the most this program can ever ask?", before a single
    task is issued, so a campaign server can admission-check programs.

    The abstract domain is [{0, finite(n), bounded-by-input, unbounded}]:

    - base facts seed their relation with one tuple each (closed world);
    - a declared relation with no base facts is a host input point
      ({!Bounded_by_input}, recorded as an assumption);
    - a rule contributes the product of its positive body atoms'
      cardinalities (negation, comparisons and builtin calls only
      filter);
    - recursive strata — strongly connected components of the precedence
      graph restricted to positive reads ({!Precedence.sccs}) — are
      widened: a {e tame} stratum (no open heads, no value-building
      expressions, no auto-increment keys) stays within the Herbrand
      universe of the program's constants plus its external inputs, so
      each of its relations is bounded by [|V|^arity]; a {e wild} stratum
      is {!Unbounded} with a witness cycle, like
      {!Precedence.negation_violations}.

    Results are deterministic: analyzing the same program with the same
    policy renders byte-identical certificates. The analysis is total —
    it never raises, even on programs the other {!Lint} families reject —
    because {!Lint.check} runs it on every program. *)

type reason =
  | Standing
      (** the open head leaves its relation's auto-increment key unbound,
          so every answer mints a fresh tuple and the task never retires
          (the engine's {e repeatable} opens — how VRE collects
          unboundedly many extraction rules) *)
  | Open_cycle of string list
      (** recursion through an open relation: answers re-enable the very
          statement that asked for them; the witness lists the relations
          carrying the cycle *)
  | Value_cycle of string list
      (** recursion that builds fresh values (arithmetic, list
          construction or auto-increment keys in a recursive stratum), so
          the Herbrand widening does not apply *)

type card =
  | Zero  (** provably empty *)
  | Finite of int  (** at most [n] tuples (saturating arithmetic) *)
  | Bounded_by_input
      (** finite, but only as a function of host-supplied input whose
          size the program text does not determine *)
  | Unbounded of reason

val card_to_string : card -> string
(** ["0"], ["<= n"], ["bounded-by-input"] or ["unbounded (...)"] with the
    witness cycle rendered inline. *)

val finite : card -> int option
(** [Some n] for [Zero] (n = 0) and [Finite n]; [None] otherwise. *)

(** The redundant-assignment policy the certificate charges per task:
    [votes] answers for each undesignated, non-standing open tuple whose
    relation falls in [scope] ([None] = every relation) — mirroring the
    engine's quorum eligibility. [no_policy] is one answer per task. *)
type policy = { votes : int; scope : string list option }

val no_policy : policy

(** The task-emission bound of one [/open] head, in statement order. *)
type task_bound = {
  tb_label : string;  (** statement label, or ["#i"] by priority index *)
  tb_span : Ast.span;  (** the open head's source range *)
  tb_relation : string;
  tb_instances : card;  (** distinct open tuples (body valuations) *)
  tb_multiplier : card;  (** answers charged per instance under the policy *)
  tb_answers : card;  (** [instances * multiplier] *)
}

type certificate = {
  cert_relations : (string * card) list;
      (** every relation's cardinality bound, sorted by name *)
  cert_tasks : task_bound list;  (** one per open head, statement order *)
  cert_total_tasks : card;  (** sum of instance bounds *)
  cert_total_answers : card;  (** sum of answer bounds — the budget *)
  cert_policy : string;  (** the charged policy, rendered *)
  cert_assumptions : string list;  (** sorted; what the bounds rely on *)
}

val analyze :
  ?policy:policy -> ?live_counts:(string * int) list -> Ast.program -> certificate
(** Analyze a program (game aspects are desugared exactly as the engine
    does). [policy] defaults to {!no_policy}. [live_counts] joins each
    named relation's current live row count into its seed — the engine's
    runtime cross-check passes the live database sizes here so host
    insertions through the API are accounted for; certificates rendered
    for users should omit it to stay a function of the program text. *)

val certificate_to_string : certificate -> string
(** The certificate as a stable multi-line report: relation table, per
    open statement bounds, totals, policy and assumptions. *)

val certificate_json : certificate -> string
(** The certificate as one deterministic JSON object with [relations],
    [tasks], [total_tasks], [total_answers], [policy] and [assumptions]
    fields; cards render as [{"kind": ...}] objects. *)

type open_fact = {
  relation : string;
  bound : Reldb.Tuple.t;
  open_attrs : string list;
  asked : Reldb.Value.t option;
}

type state = {
  program : Ast.program;
  builtins : Builtin.registry;
  db : Reldb.Database.t;  (* K_sure *)
  opens : open_fact list;  (* K_open, first-derivation order *)
  resolved : open_fact list;
      (* open tuples already valuated by humans: a spent question is not
         re-asked when logic re-derives it (the engine's firing memo plays
         the same role operationally) *)
}

type strategies = state -> (open_fact * (string * Reldb.Value.t) list) list

let supported (p : Ast.program) =
  let statement_ok (s : Ast.statement) =
    List.for_all
      (fun (h : Ast.head) ->
        match h.Ast.head with
        | Ast.Head_atom { kind = Ast.Update | Ast.Delete; _ } -> false
        | Ast.Head_atom _ | Ast.Head_payoff _ -> true)
      s.heads
  in
  List.for_all statement_ok p.statements
  && List.for_all
       (fun (g : Ast.game_decl) ->
         List.for_all statement_ok g.path_rules
         && List.for_all statement_ok g.payoff_rules)
       p.games

let fresh_engine (p : Ast.program) = Engine.load p

let initial p =
  if not (supported p) then
    invalid_arg "Semantics: programs with /update or /delete need the operational Engine";
  let engine = fresh_engine p in
  { program = p; builtins = Engine.builtins engine; db = Engine.database engine;
    opens = []; resolved = [] }

let sure st = st.db
let open_tuples st = st.opens
let sure_count st = Reldb.Database.total_tuples st.db

let open_fact_equal a b =
  String.equal a.relation b.relation
  && Reldb.Tuple.equal a.bound b.bound
  && a.open_attrs = b.open_attrs
  && (match (a.asked, b.asked) with
     | None, None -> true
     | Some x, Some y -> Reldb.Value.equal x y
     | _ -> false)

(* One application of T_{P,S}. We replay the program's statements over a
   copy of K_sure: every instance whose body holds over the {e input}
   K_sure contributes its head. To get the simultaneous (not cascading)
   operator, enumeration runs against the input database while insertions
   go to the output copy. *)
let apply st (strategies : strategies) =
  let input_db = st.db in
  let out_db = Reldb.Database.copy st.db in
  let engine = fresh_engine st.program in
  let builtins = st.builtins in
  let statements = Engine.statements engine in
  ignore engine;
  let new_opens = ref [] in
  let add_open o =
    let pending = st.resolved @ st.opens @ List.rev !new_opens in
    if not (List.exists (open_fact_equal o) pending) then new_opens := o :: !new_opens
  in
  let insert_sure pred bindings =
    match Reldb.Database.find out_db pred with
    | None -> ()
    | Some rel -> ignore (Reldb.Relation.insert rel (Reldb.Tuple.of_list bindings))
  in
  let award player delta =
    match Reldb.Database.find out_db "Payoff" with
    | None -> ()
    | Some rel ->
        let current =
          match
            Reldb.Relation.find_by_key rel (Reldb.Tuple.of_list [ ("player", player) ])
          with
          | Some (_, tuple) -> (
              match Reldb.Tuple.get_or_null tuple "score" with
              | Reldb.Value.Null -> Reldb.Value.Int 0
              | v -> v)
          | None -> Reldb.Value.Int 0
        in
        ignore
          (Reldb.Relation.update rel
             (Reldb.Tuple.of_list
                [ ("player", player); ("score", Reldb.Value.add current delta) ]))
  in
  let apply_head env (h : Ast.head) =
    match h.Ast.head with
    | Ast.Head_payoff updates ->
        List.iter
          (fun (player_var, delta_expr) ->
            match Binding.find env player_var with
            | Some player ->
                award player (Eval.eval_expr builtins env delta_expr)
            | None -> ())
          updates
    | Ast.Head_atom { atom; kind } -> (
        let bound, opens_attrs =
          List.fold_left
            (fun (bound, opens) (arg : Ast.arg) ->
              let expr =
                match arg.bind with Ast.Auto -> Ast.Var arg.attr | Ast.Bound e -> e
              in
              match Eval.try_eval_expr builtins env expr with
              | Some v -> ((arg.attr, v) :: bound, opens)
              | None -> (bound, arg.attr :: opens))
            ([], []) atom.args
        in
        let bound = List.rev bound and opens_attrs = List.rev opens_attrs in
        match kind with
        | Ast.Assert ->
            if opens_attrs = [] then insert_sure atom.pred bound
        | Ast.Open worker ->
            let asked =
              match worker with
              | Some e -> Eval.try_eval_expr builtins env e
              | None -> None
            in
            add_open
              {
                relation = atom.pred;
                bound = Reldb.Tuple.of_list bound;
                open_attrs = opens_attrs;
                asked;
              }
        | Ast.Update | Ast.Delete -> ())
  in
  (* Immediate logical consequences: all instances over the input K_sure. *)
  List.iter
    (fun ((s : Ast.statement), _) ->
      try
        Eval.enumerate builtins input_db s.body ~init:Binding.empty ~f:(fun m ->
            List.iter (apply_head m.env) s.heads;
            `Continue)
      with Eval.Error _ -> ())
    statements;
  (* Immediate human consequences: strategies valuate pending open tuples. *)
  let choices = strategies st in
  let consumed = ref [] in
  List.iter
    (fun (o, values) ->
      if List.exists (open_fact_equal o) st.opens then begin
        let bindings = Reldb.Tuple.to_list o.bound @ values in
        insert_sure o.relation bindings;
        consumed := o :: !consumed
      end)
    choices;
  let still_open o = not (List.exists (open_fact_equal o) !consumed) in
  let opens' = List.filter still_open (st.opens @ List.rev !new_opens) in
  { st with db = out_db; opens = opens'; resolved = st.resolved @ !consumed }

let db_tuples db =
  List.concat_map
    (fun rel ->
      List.map (fun t -> (Reldb.Relation.name rel, t)) (Reldb.Relation.tuples rel))
    (Reldb.Database.relations db)

let equal a b =
  let ta = List.sort compare (db_tuples a.db) and tb = List.sort compare (db_tuples b.db) in
  List.length ta = List.length tb
  && List.for_all2
       (fun (ra, tua) (rb, tub) -> String.equal ra rb && Reldb.Tuple.equal tua tub)
       ta tb
  && List.length a.opens = List.length b.opens
  && List.for_all2 open_fact_equal a.opens b.opens

let behaviour ?(bound = 1000) p strategies =
  let rec loop k states n =
    if n >= bound then (List.rev states, `Bound_reached)
    else
      let k' = apply k strategies in
      if equal k k' then (List.rev (k' :: states), `Fixpoint)
      else loop k' (k' :: states) (n + 1)
  in
  let k0 = initial p in
  loop k0 [ k0 ] 0

let conclusion ?bound p strategies =
  match behaviour ?bound p strategies with
  | states, `Fixpoint -> Some (List.nth_opt states (List.length states - 1) |> Option.get)
  | _, `Bound_reached -> None

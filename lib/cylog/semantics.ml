type open_fact = {
  relation : string;
  bound : Reldb.Tuple.t;
  open_attrs : string list;
  asked : Reldb.Value.t option;
}

type state = {
  program : Ast.program;
  builtins : Builtin.registry;
  db : Reldb.Database.t;  (* K_sure *)
  opens : open_fact list;  (* K_open, first-derivation order *)
  resolved : open_fact list;
      (* open tuples already valuated by humans: a spent question is not
         re-asked when logic re-derives it (the engine's firing memo plays
         the same role operationally) *)
  frontiers : (string * int) list;
      (* per-relation high-water marks of the database this state's machine
         consequences were last enumerated against; rows at or above a
         frontier are the ΔR the semi-naive operator [apply_delta] joins
         against. [[]] means no application has run yet (full scan). *)
}

type strategies = state -> (open_fact * (string * Reldb.Value.t) list) list

let supported (p : Ast.program) =
  let statement_ok (s : Ast.statement) =
    List.for_all
      (fun (h : Ast.head) ->
        match h.Ast.head with
        | Ast.Head_atom { kind = Ast.Update | Ast.Delete; _ } -> false
        | Ast.Head_atom _ | Ast.Head_payoff _ -> true)
      s.heads
  in
  List.for_all statement_ok p.statements
  && List.for_all
       (fun (g : Ast.game_decl) ->
         List.for_all statement_ok g.path_rules
         && List.for_all statement_ok g.payoff_rules)
       p.games

(* The reference semantics evaluates whatever it is given — admission
   policy (lint) is the operational engine's concern, and the
   differential tests drive deliberately unbounded open programs. *)
let fresh_engine (p : Ast.program) = Engine.load ~lint:`Off p

let initial p =
  if not (supported p) then
    invalid_arg "Semantics: programs with /update or /delete need the operational Engine";
  let engine = fresh_engine p in
  { program = p; builtins = Engine.builtins engine; db = Engine.database engine;
    opens = []; resolved = []; frontiers = [] }

let sure st = st.db
let open_tuples st = st.opens
let sure_count st = Reldb.Database.total_tuples st.db

let open_fact_equal a b =
  String.equal a.relation b.relation
  && Reldb.Tuple.equal a.bound b.bound
  && a.open_attrs = b.open_attrs
  && (match (a.asked, b.asked) with
     | None, None -> true
     | Some x, Some y -> Reldb.Value.equal x y
     | _ -> false)

let frontier_map db =
  List.map
    (fun r -> (Reldb.Relation.name r, Reldb.Relation.high_water r))
    (Reldb.Database.relations db)

let frontier_of fs name =
  match List.assoc_opt name fs with Some n -> n | None -> 0

let pos_preds (body : Ast.literal list) =
  List.filter_map
    (fun (l : Ast.literal) ->
      match l.Ast.lit with Ast.Pos a -> Some a.Ast.pred | _ -> None)
    body

let has_payoff (s : Ast.statement) =
  List.exists
    (fun (h : Ast.head) ->
      match h.Ast.head with Ast.Head_payoff _ -> true | Ast.Head_atom _ -> false)
    s.heads

(* One application of T_{P,S}. We replay the program's statements over a
   copy of K_sure: every instance whose body holds over the {e input}
   K_sure contributes its head. To get the simultaneous (not cascading)
   operator, enumeration runs against the input database while insertions
   go to the output copy. [enumerate_stmt] decides which instances of a
   statement are visited — {!apply} visits all of them, {!apply_delta}
   only those touching rows at or above the previous application's
   frontiers. *)
let apply_with ~enumerate_stmt st (strategies : strategies) =
  let input_db = st.db in
  let out_db = Reldb.Database.copy st.db in
  let engine = fresh_engine st.program in
  let builtins = st.builtins in
  let statements = Engine.statements engine in
  ignore engine;
  let new_opens = ref [] in
  let add_open o =
    let pending = st.resolved @ st.opens @ List.rev !new_opens in
    if not (List.exists (open_fact_equal o) pending) then new_opens := o :: !new_opens
  in
  let insert_sure pred bindings =
    match Reldb.Database.find out_db pred with
    | None -> ()
    | Some rel -> ignore (Reldb.Relation.insert rel (Reldb.Tuple.of_list bindings))
  in
  let award player delta =
    match Reldb.Database.find out_db "Payoff" with
    | None -> ()
    | Some rel ->
        let current =
          match
            Reldb.Relation.find_by_key rel (Reldb.Tuple.of_list [ ("player", player) ])
          with
          | Some (_, tuple) -> (
              match Reldb.Tuple.get_or_null tuple "score" with
              | Reldb.Value.Null -> Reldb.Value.Int 0
              | v -> v)
          | None -> Reldb.Value.Int 0
        in
        ignore
          (Reldb.Relation.update rel
             (Reldb.Tuple.of_list
                [ ("player", player); ("score", Reldb.Value.add current delta) ]))
  in
  let apply_head env (h : Ast.head) =
    match h.Ast.head with
    | Ast.Head_payoff updates ->
        List.iter
          (fun (player_var, delta_expr) ->
            match Binding.find env player_var with
            | Some player ->
                award player (Eval.eval_expr builtins env delta_expr)
            | None -> ())
          updates
    | Ast.Head_atom { atom; kind } -> (
        let bound, opens_attrs =
          List.fold_left
            (fun (bound, opens) (arg : Ast.arg) ->
              let expr =
                match arg.bind with Ast.Auto -> Ast.Var arg.attr | Ast.Bound e -> e
              in
              match Eval.try_eval_expr builtins env expr with
              | Some v -> ((arg.attr, v) :: bound, opens)
              | None -> (bound, arg.attr :: opens))
            ([], []) atom.args
        in
        let bound = List.rev bound and opens_attrs = List.rev opens_attrs in
        match kind with
        | Ast.Assert ->
            if opens_attrs = [] then insert_sure atom.pred bound
        | Ast.Open worker ->
            let asked =
              match worker with
              | Some e -> Eval.try_eval_expr builtins env e
              | None -> None
            in
            add_open
              {
                relation = atom.pred;
                bound = Reldb.Tuple.of_list bound;
                open_attrs = opens_attrs;
                asked;
              }
        | Ast.Update | Ast.Delete -> ())
  in
  (* Immediate logical consequences over the input K_sure. *)
  List.iter
    (fun ((s : Ast.statement), _) ->
      try
        enumerate_stmt st builtins input_db s ~f:(fun (m : Eval.matched) ->
            List.iter (apply_head m.env) s.heads)
      with Eval.Error _ -> ())
    statements;
  (* Immediate human consequences: strategies valuate pending open tuples. *)
  let choices = strategies st in
  let consumed = ref [] in
  List.iter
    (fun (o, values) ->
      if List.exists (open_fact_equal o) st.opens then begin
        let bindings = Reldb.Tuple.to_list o.bound @ values in
        insert_sure o.relation bindings;
        consumed := o :: !consumed
      end)
    choices;
  let still_open o = not (List.exists (open_fact_equal o) !consumed) in
  let opens' = List.filter still_open (st.opens @ List.rev !new_opens) in
  (* The frontier records what this round's enumeration ran against: rows
     appended during the round (machine heads, human valuations) sit at or
     above it and are the next round's ΔR. *)
  { st with db = out_db; opens = opens'; resolved = st.resolved @ !consumed;
    frontiers = frontier_map input_db }

(* Full enumeration: every instance over the input database, in
   conflict-resolution (left-to-right lexicographic) order. *)
let enumerate_all _st builtins db (s : Ast.statement) ~f =
  Eval.enumerate builtins db s.body ~init:Binding.empty ~f:(fun m -> f m; `Continue)

(* Semi-naive enumeration: only instances whose support touches at least
   one row at or above the previous application's frontiers. Each positive
   atom takes a turn as the pinned delta atom; atoms to its left are held
   below their frontiers so every new instance is discovered exactly once
   (at the position of its leftmost new row). Discoveries are replayed to
   [f] in ascending support-key order, i.e. exactly the relative order the
   full scan visits them in — so open tuples keep first-derivation order.

   Soundness over the supported fragment: the database only grows, so a
   [Neg]/[Cmp]/[Call] literal can only flip from passing to failing —
   an instance over old rows that newly holds is impossible, and one that
   already held contributed its (idempotent) heads in the round it was
   discovered. Payoff heads are the exception — a full scan re-awards a
   persisting instance every round — so payoff statements fall back to
   full enumeration. *)
let enumerate_delta st builtins db (s : Ast.statement) ~f =
  if st.frontiers = [] || has_payoff s then enumerate_all st builtins db s ~f
  else begin
    let preds = pos_preds s.body in
    let discovered = ref [] in
    List.iteri
      (fun p pred ->
        let lo = frontier_of st.frontiers pred in
        let hi =
          match Reldb.Database.find db pred with
          | Some r -> Reldb.Relation.high_water r
          | None -> 0
        in
        for row = lo to hi - 1 do
          let plan i =
            if i < p then Eval.Below (frontier_of st.frontiers (List.nth preds i))
            else if i = p then Eval.Exactly row
            else Eval.All
          in
          Eval.enumerate ~plan builtins db s.body ~init:Binding.empty
            ~f:(fun m ->
              discovered := m :: !discovered;
              `Continue)
        done)
      preds;
    List.iter f (List.sort Eval.compare_matched (List.rev !discovered))
  end

let apply st strategies = apply_with ~enumerate_stmt:enumerate_all st strategies

let apply_delta st strategies =
  apply_with ~enumerate_stmt:enumerate_delta st strategies

let db_tuples db =
  List.concat_map
    (fun rel ->
      List.map (fun t -> (Reldb.Relation.name rel, t)) (Reldb.Relation.tuples rel))
    (Reldb.Database.relations db)

let equal a b =
  let ta = List.sort compare (db_tuples a.db) and tb = List.sort compare (db_tuples b.db) in
  List.length ta = List.length tb
  && List.for_all2
       (fun (ra, tua) (rb, tub) -> String.equal ra rb && Reldb.Tuple.equal tua tub)
       ta tb
  && List.length a.opens = List.length b.opens
  && List.for_all2 open_fact_equal a.opens b.opens

let behaviour_with ~step ?(bound = 1000) p strategies =
  let rec loop k states n =
    if n >= bound then (List.rev states, `Bound_reached)
    else
      let k' = step k strategies in
      if equal k k' then (List.rev (k' :: states), `Fixpoint)
      else loop k' (k' :: states) (n + 1)
  in
  let k0 = initial p in
  loop k0 [ k0 ] 0

let behaviour ?bound p strategies = behaviour_with ~step:apply ?bound p strategies

let behaviour_delta ?bound p strategies =
  behaviour_with ~step:apply_delta ?bound p strategies

let conclusion ?bound p strategies =
  match behaviour ?bound p strategies with
  | states, `Fixpoint -> Some (List.nth_opt states (List.length states - 1) |> Option.get)
  | _, `Bound_reached -> None

(* Cost-based join planning for rule bodies.

   The planner rewrites the positive-atom order of a body prefix so that
   selective atoms are joined first, and slides each filter literal as
   early as its bindings allow. The cost model is classic textbook
   selectivity estimation over the relation layer's statistics:

     est(atom | bound vars) =
       cardinal(rel) / distinct_count(rel, statically-evaluable attrs)

   i.e. the expected number of rows a compound-index probe on the
   already-determined arguments returns; an atom with no evaluable
   argument is a full scan costed at its cardinality. Atoms are chosen
   greedily: smallest estimate first (bound-variables-first), relation
   cardinality as tie-break, original position as the final deterministic
   tie-break.

   Correctness requires only a *sound under-approximation* of the
   bindings available at each point: a variable is counted as bound only
   when left-to-right matching of the already-placed literals is
   guaranteed to bind it, so no literal is ever moved before a binder it
   needs. Filters keep their relative order (an [=] binder may feed a
   later filter) and are additionally allowed to run once every atom that
   originally preceded them has been placed — the fallback that keeps any
   program that was valid under left-to-right evaluation valid under the
   plan. The plan does not change which valuations exist or what they
   bind: {!Eval.enumerate} replays every planned match over the original
   body, so firing order, environments and events are byte-identical to
   naive evaluation. *)

module S = Set.Make (String)

type t = {
  literals : Ast.literal list;
  order : int array;
  identity : bool;
  steps : (string * int * int) list;
}

(* Variables appearing in [Var] leaves under [List] constructors: the
   positions a successful list destructuring is guaranteed to bind. *)
let rec destructure_vars = function
  | Ast.Var v -> [ v ]
  | Ast.List es -> List.concat_map destructure_vars es
  | Ast.Const _ | Ast.Binop _ -> []

(* Bindings guaranteed after matching [atom] with [bound] available,
   mirroring Eval.match_atom: a bare attribute binds the attribute
   variable; [a:v] with [v] unbound is an alias binding [v] only; any
   other tested argument also makes the attribute variable available. *)
let atom_binds bound (atom : Ast.atom) =
  List.fold_left
    (fun acc (arg : Ast.arg) ->
      match arg.bind with
      | Ast.Auto -> S.add arg.attr acc
      | Ast.Bound (Ast.Var v) ->
          if S.mem v acc then S.add arg.attr acc else S.add v acc
      | Ast.Bound (Ast.List _ as e) ->
          List.fold_left
            (fun acc v -> S.add v acc)
            (S.add arg.attr acc) (destructure_vars e)
      | Ast.Bound _ -> S.add arg.attr acc)
    bound atom.args

(* Attributes whose argument is evaluable given [bound] — the compound-key
   pattern Eval.atom_pattern will probe at run time (a subset of it, when
   the runtime environment holds bindings this static view cannot see). *)
let pattern_attrs bound (atom : Ast.atom) =
  List.filter_map
    (fun (arg : Ast.arg) ->
      match arg.bind with
      | Ast.Auto -> if S.mem arg.attr bound then Some arg.attr else None
      | Ast.Bound e ->
          if List.for_all (fun v -> S.mem v bound) (Ast.expr_vars e) then
            Some arg.attr
          else None)
    atom.args

(* Variables a filter literal needs bound before it can run, mirroring
   Eval.check_filter: a negation evaluates all its arguments; an [Eq]
   comparison with an unbound plain-variable side is a binder needing only
   the other side. *)
let filter_needs bound (l : Ast.literal) =
  match l.Ast.lit with
  | Ast.Neg atom ->
      List.concat_map
        (fun (arg : Ast.arg) ->
          match arg.bind with
          | Ast.Auto -> [ arg.attr ]
          | Ast.Bound e -> Ast.expr_vars e)
        atom.args
  | Ast.Call (_, args) -> List.concat_map Ast.expr_vars args
  | Ast.Cmp (l, op, r) -> (
      match (op, l, r) with
      | Ast.Eq, Ast.Var v, e when not (S.mem v bound) -> Ast.expr_vars e
      | Ast.Eq, e, Ast.Var v when not (S.mem v bound) -> Ast.expr_vars e
      | _ -> Ast.expr_vars l @ Ast.expr_vars r)
  | Ast.Pos _ -> []

let filter_binds bound (l : Ast.literal) =
  match l.Ast.lit with
  | Ast.Cmp (Ast.Var v, Ast.Eq, _) when not (S.mem v bound) -> S.add v bound
  | Ast.Cmp (_, Ast.Eq, Ast.Var v) when not (S.mem v bound) -> S.add v bound
  | Ast.Neg _ | Ast.Call _ | Ast.Cmp _ | Ast.Pos _ -> bound

let estimate ?exact_atom db bound (ordinal, (atom : Ast.atom)) =
  if exact_atom = Some ordinal then (1, 0)
  else
    match Reldb.Database.find db atom.pred with
    | None -> (0, 0)
    | Some rel ->
        let card = Reldb.Relation.cardinal rel in
        let est =
          match pattern_attrs bound atom with
          | [] -> card
          | pat -> max 1 (card / max 1 (Reldb.Relation.distinct_count rel pat))
        in
        (est, card)

(* One statistics epoch per relation name, in the caller's order. A plan
   cached against this key stays valid until some body relation's epoch
   moves (destructive mutation, or a cardinality-bucket crossing); changes
   to relations outside [rels] can never evict it. *)
let stats_key db rels =
  Array.of_list
    (List.map
       (fun name ->
         match Reldb.Database.find db name with
         | Some r -> Reldb.Relation.stats_epoch r
         | None -> -1)
       rels)

let plan ?exact_atom db prefix =
  let items = List.mapi (fun i lit -> (i, lit)) prefix in
  let atoms =
    List.filter_map
      (fun (i, (l : Ast.literal)) ->
        match l.Ast.lit with Ast.Pos a -> Some (i, a, l) | _ -> None)
      items
    |> List.mapi (fun ordinal (i, a, l) -> (ordinal, i, a, l))
  in
  let filters =
    List.filter
      (fun (_, (l : Ast.literal)) ->
        match l.Ast.lit with Ast.Pos _ -> false | _ -> true)
      items
  in
  let emitted = ref [] (* reverse planned literal order *)
  and order = ref [] (* reverse positive-atom order, original ordinals *)
  and steps = ref [] (* reverse (pred, est, card) per chosen atom *)
  and bound = ref S.empty
  and remaining = ref atoms
  and queue = ref filters in
  let atoms_before lit_idx =
    List.exists (fun (_, i, _, _) -> i < lit_idx) !remaining
  in
  let flush_filters () =
    let rec loop () =
      match !queue with
      | (lit_idx, lit) :: rest
        when List.for_all (fun v -> S.mem v !bound) (filter_needs !bound lit)
             || not (atoms_before lit_idx) ->
          emitted := lit :: !emitted;
          bound := filter_binds !bound lit;
          queue := rest;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  flush_filters ();
  while !remaining <> [] do
    let best =
      List.fold_left
        (fun acc ((ordinal, _, atom, _) as cand) ->
          let key = (estimate ?exact_atom db !bound (ordinal, atom), ordinal) in
          match acc with
          | Some (best_key, _) when best_key <= key -> acc
          | _ -> Some (key, cand))
        None !remaining
    in
    match best with
    | None -> ()
    | Some (((est, card), _), ((ordinal, _, atom, lit) as chosen)) ->
        remaining := List.filter (fun c -> c != chosen) !remaining;
        emitted := lit :: !emitted;
        order := ordinal :: !order;
        steps := (atom.Ast.pred, est, card) :: !steps;
        bound := atom_binds !bound atom;
        flush_filters ()
  done;
  List.iter (fun (_, lit) -> emitted := lit :: !emitted) !queue;
  let literals = List.rev !emitted in
  {
    literals;
    order = Array.of_list (List.rev !order);
    identity = literals = prefix;
    steps = List.rev !steps;
  }

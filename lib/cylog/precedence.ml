type edge = { src : int; dst : int; via : string; forward : bool }

type t = {
  statements : Ast.statement array;
  edges : edge list;
  (* reach.(q) holds the set of vertices i such that q depends on i. *)
  reach : bool array array;
}

let neg_preds body =
  List.sort_uniq String.compare
    (List.filter_map
       (fun (l : Ast.literal) ->
         match l.Ast.lit with Ast.Neg a -> Some a.Ast.pred | _ -> None)
       body)

let build statements =
  let stmts = Array.of_list statements in
  let n = Array.length stmts in
  let writes i = Ast.statement_preds stmts.(i) in
  let update_delete_preds i =
    List.filter_map
      (fun (h : Ast.head) ->
        match h.Ast.head with
        | Ast.Head_atom { atom; kind = Ast.Update | Ast.Delete } -> Some atom.Ast.pred
        | Ast.Head_atom _ | Ast.Head_payoff _ -> None)
      stmts.(i).Ast.heads
  in
  let edges = ref [] in
  for q = 0 to n - 1 do
    let body_rels = Ast.body_preds stmts.(q).Ast.body in
    for i = 0 to n - 1 do
      if i <> q then begin
        (* Dataflow through a body read. *)
        List.iter
          (fun r ->
            if List.mem r (writes i) then
              edges := { src = i; dst = q; via = r; forward = i < q } :: !edges)
          body_rels;
        (* An update/delete of R in q consumes earlier writes of R. *)
        List.iter
          (fun r ->
            if i < q && List.mem r (writes i) then
              edges := { src = i; dst = q; via = r; forward = true } :: !edges)
          (update_delete_preds q)
      end
    done
  done;
  let edges =
    List.sort_uniq compare !edges |> List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst))
  in
  (* Transitive closure by repeated relaxation (graphs here are tiny). *)
  let reach = Array.make_matrix n n false in
  List.iter (fun e -> reach.(e.dst).(e.src) <- true) edges;
  let changed = ref true in
  while !changed do
    changed := false;
    for q = 0 to n - 1 do
      for mid = 0 to n - 1 do
        if reach.(q).(mid) then
          for i = 0 to n - 1 do
            if reach.(mid).(i) && not reach.(q).(i) then begin
              reach.(q).(i) <- true;
              changed := true
            end
          done
      done
    done
  done;
  { statements = stmts; edges; reach }

let size g = Array.length g.statements
let statement_at g i = g.statements.(i)
let edges g = g.edges
let depends_on g q i = q >= 0 && q < size g && i >= 0 && i < size g && g.reach.(q).(i)

let data_complete g q =
  let n = size g in
  let rec loop i = i >= n || ((i < q || not (depends_on g q i)) && loop (i + 1)) in
  q >= 0 && q < n && loop q

let parallelizable g a b = not (depends_on g a b) && not (depends_on g b a)

let parallel_groups g =
  let n = size g in
  let assigned = Array.make n false in
  let rec build start acc =
    if start >= n then List.rev acc
    else if assigned.(start) then build (start + 1) acc
    else begin
      (* Greedily extend the group with later statements independent of
         everything already in it. *)
      let group = ref [ start ] in
      assigned.(start) <- true;
      for j = start + 1 to n - 1 do
        if (not assigned.(j)) && List.for_all (fun i -> parallelizable g i j) !group
        then begin
          group := j :: !group;
          assigned.(j) <- true
        end
      done;
      build (start + 1) (List.rev !group :: acc)
    end
  in
  build 0 []

let stratified g =
  let n = size g in
  let rec loop q =
    q >= n
    || ((neg_preds g.statements.(q).Ast.body = [] || data_complete g q) && loop (q + 1))
  in
  loop 0

(* Tarjan over the direct edges. [positive_only] keeps an edge only when
   the consuming statement reads the carrying relation through a positive
   body atom — negation tests emptiness and carries no cardinality, so the
   abstract interpreter ({!Analysis}) must not see cycles through it. *)
let sccs ?(positive_only = false) g =
  let n = size g in
  let keep e =
    (not positive_only)
    || List.exists
         (fun (l : Ast.literal) ->
           match l.Ast.lit with
           | Ast.Pos a -> String.equal a.Ast.pred e.via
           | Ast.Neg _ | Ast.Cmp _ | Ast.Call _ -> false)
         g.statements.(e.dst).Ast.body
  in
  let succs = Array.make n [] in
  List.iter
    (fun e -> if keep e then succs.(e.src) <- e.dst :: succs.(e.src))
    (List.rev g.edges);
  let index = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and next = ref 0 and out = ref [] in
  let rec strong v =
    index.(v) <- !next;
    low.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      succs.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := List.sort compare (pop []) :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  (* Tarjan pops consumers before their producers; the prepends above
     reverse that, so the result lists producers first. *)
  !out

let vertex_name g i =
  let preds = Ast.statement_preds g.statements.(i) in
  let name = match preds with [] -> "Payoff" | p :: _ -> p in
  Printf.sprintf "%s_%d" name (i + 1)

(* -- Stratification witnesses -------------------------------------------- *)

type violation = {
  vertex : int;
  negated : string;
  writer : int;
  cycle : int list;
}

(* Relations a statement populates through Assert or Open heads. Update
   and Delete heads are deliberately excluded: updating a relation after a
   later rule negated it is the paper's fill-if-absent idiom (Figure 16's
   Fill/Step pair), not a stratification hazard — the negation tests
   existence, and updates only rewrite tuples already observed. *)
let assert_writes stmts i =
  List.filter_map
    (fun (h : Ast.head) ->
      match h.Ast.head with
      | Ast.Head_atom { atom; kind = Ast.Assert | Ast.Open _ } ->
          Some atom.Ast.pred
      | Ast.Head_atom _ | Ast.Head_payoff _ -> None)
    stmts.(i).Ast.heads

(* Shortest direct-edge path from [src] to [dst], as a vertex list
   [src; ...; dst], when one exists. *)
let path g ~src ~dst =
  let n = size g in
  if src < 0 || dst < 0 || src >= n || dst >= n then None
  else begin
    let prev = Array.make n (-1) in
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(src) <- true;
    Queue.push src queue;
    let found = ref (src = dst) in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun e ->
          if e.src = v && not seen.(e.dst) then begin
            seen.(e.dst) <- true;
            prev.(e.dst) <- v;
            if e.dst = dst then found := true else Queue.push e.dst queue
          end)
        g.edges
    done;
    if not !found then None
    else begin
      let rec walk v acc = if v = src then v :: acc else walk prev.(v) (v :: acc) in
      Some (walk dst [])
    end
  end

let negation_violations g =
  let n = size g in
  List.concat
    (List.init n (fun q ->
         let negs = neg_preds g.statements.(q).Ast.body in
         List.concat_map
           (fun r ->
             List.filter_map
               (fun i ->
                 if i <> q && List.mem r (assert_writes g.statements i) then
                   let cycle =
                     match path g ~src:q ~dst:i with Some p -> p | None -> []
                   in
                   Some { vertex = q; negated = r; writer = i; cycle }
                 else None)
               (List.init (n - q) (fun k -> q + k)))
           negs))

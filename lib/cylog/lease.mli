(** Task leases for unreliable crowds.

    Real crowds time out, abandon tasks and answer garbage, so an open
    tuple needs an {e assignment lifecycle} rather than pending forever:
    a worker takes an exclusive lease with a logical-clock deadline; a
    lease that expires is reclaimed and the task becomes assignable again
    after an exponential backoff, up to a per-task retry budget; tasks
    that exhaust their budget (or keep attracting rejected answers) move
    to a dead-letter pool with a typed reason.

    The module is pure bookkeeping over caller-supplied logical time
    (engine clock, simulator round — any monotone counter): it never
    touches the database or the open-tuple pool. {!Cylog.Engine} embeds
    one instance and drives it from [assign]/[reclaim]/[supply].

    Dead-lettering here is {e per-task} policy; the campaign-level view
    — what fraction of tasks go that way, and pulling the brake when
    too many do — belongs to the {!Cylog.Monitor} watchdogs. *)

type reason =
  | Timed_out  (** the retry budget was exhausted by expired leases *)
  | Rejected_answers of int
      (** that many answers were rejected (wrong attributes or types) *)
  | Declined  (** dropped without an answer ({!Cylog.Engine.decline}) *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit

type config = {
  ttl : int;  (** rounds a lease stays valid after being granted *)
  max_timeouts : int;
      (** expired leases tolerated per task before dead-lettering *)
  backoff_base : int;
      (** after the [n]-th timeout the task is reassignable only
          [backoff_base * 2^(n-1)] rounds later *)
  max_rejections : int;
      (** rejected answers tolerated per task before dead-lettering *)
}

val default_config : config
(** [ttl = 3], [max_timeouts = 3], [backoff_base = 1],
    [max_rejections = 4]. *)

type lease = {
  open_id : int;
  worker : Reldb.Value.t;
  granted_at : int;
  deadline : int;  (** valid while [now < deadline] *)
}

type t

val create : config -> t
(** Fresh lease table; logical time starts at 0. *)

val config : t -> config

val now : t -> int
(** Latest logical time observed through [assign]/[reclaim]. *)

type assign_error =
  [ `Dead of reason  (** the task is in the dead-letter pool *)
  | `Backoff of int  (** reassignable at that time, not before *)
  | `Held of Reldb.Value.t  (** capacity exhausted; one current holder *) ]

val assign :
  t -> open_id:int -> worker:Reldb.Value.t -> now:int -> capacity:int ->
  (lease, assign_error) result
(** Grant [worker] a lease on the task. At most [capacity] valid leases
    (one per worker) coexist — capacity > 1 implements redundant
    assignment for quorum tasks. Re-assigning to a current holder renews
    their deadline. Advances the table's logical time to [now]. *)

val holds : t -> open_id:int -> worker:Reldb.Value.t -> bool
(** Does [worker] hold a lease valid at {!now}? *)

val blocked_for :
  t -> open_id:int -> worker:Reldb.Value.t -> capacity:int ->
  Reldb.Value.t option
(** When every one of the task's [capacity] slots is taken by a valid
    lease of a {e different} worker, one such holder; [None] otherwise
    (the task is open to [worker]). *)

val release : t -> open_id:int -> worker:Reldb.Value.t -> unit
(** Drop [worker]'s lease (their answer was accepted); retry/rejection
    counters are kept for the remaining holders. *)

val note_rejection : t -> open_id:int -> [ `Counted of int | `Exhausted of int ]
(** Record a rejected answer for the task. [`Exhausted n] signals the
    rejection budget is spent — the caller should dead-letter the task
    with [Rejected_answers n]. *)

val reclaim :
  t -> now:int -> (int * [ `Retry of int | `Dead of reason ]) list
(** Expire every lease overdue at [now]. Each expiry counts one timeout
    against its task's budget: tasks within budget become reassignable at
    the returned backoff time ([`Retry]); tasks over budget are moved to
    the dead-letter pool ([`Dead Timed_out]). Results are sorted by task
    id (deterministic). Advances logical time to [now]. *)

val forget : t -> open_id:int -> unit
(** The task resolved normally: drop all its lease state. *)

val mark_dead : t -> open_id:int -> reason -> unit
(** Move the task to the dead-letter pool (idempotent: the first reason
    wins) and drop its lease state. *)

val is_dead : t -> open_id:int -> reason option

val dead_letters : t -> (int * reason) list
(** Dead-lettered task ids with reasons, in dead-lettering order. *)

(** Abstract syntax of CyLog programs.

    A program has a [schema] section (relation declarations), a [rules]
    section (facts and rules in priority order — the order in the source
    text is the evaluation priority), and a [games] section (game aspects:
    one Skolem function plus path and payoff rules per game). The paper's
    views section is presentation-only and not modelled.

    Statements, heads, literals and schema declarations each carry a
    source {!span} so analyses ({!module:Lint}) and error reports can point
    at the offending source range. Spans are metadata: use
    {!strip_program} before comparing programs structurally. *)

(** Half-open source range: [start_line]/[start_col] is the first character
    (both 1-based, matching {!Lexer.located}), and [end_line]/[end_col] is
    the position just past the last character. *)
type span = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

val no_span : span
(** The unknown span (all zeros) — used for synthesised nodes. *)

val span_is_known : span -> bool
(** True iff the span differs from {!no_span}. *)

type binop = Add | Sub | Mul | Div

type expr =
  | Const of Reldb.Value.t
  | Var of string
  | List of expr list
  | Binop of binop * expr * expr

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

(** One attribute position of an atom. [Auto] is the bare-attribute form
    [Tweet(tw)]: the attribute is associated with a variable of the same
    name. [Bound e] is the explicit form [cname:loc] or [attr:"weather"]. *)
type arg = { attr : string; bind : bind }

and bind = Auto | Bound of expr

type atom = { pred : string; args : arg list }

(** A body element, evaluated left to right. *)
type lit =
  | Pos of atom  (** relation membership; branches over live tuples *)
  | Neg of atom  (** [not R(...)]: no live tuple matches *)
  | Cmp of expr * cmpop * expr
      (** comparison; [v = e] with [v] unbound binds [v] to [e] *)
  | Call of string * expr list  (** builtin such as [matches(cond, tw)] *)

(** A body literal together with its source range. *)
type literal = { lit : lit; lit_span : span }

(** Head annotations. [Open (Some e)] is [/open[e]]: the worker denoted by
    [e] is asked. [Update] merges the head's explicitly mentioned attributes
    into the live tuple with the same key (inserting when absent); [Delete]
    removes live tuples matching the head pattern. *)
type head_kind = Assert | Open of expr option | Update | Delete

type head_node =
  | Head_atom of { atom : atom; kind : head_kind }
  | Head_payoff of (string * expr) list
      (** [Payoff[p1 += e1, p2 += e2]]: accumulate payoff deltas per
          player variable — the paper's syntactic sugar *)

(** A head together with its source range. *)
type head = { head : head_node; head_span : span }

type statement = {
  label : string option;  (** [VE1:]-style label, for traces and analysis *)
  heads : head list;
      (** usually a single head; comma-separated heads (Figure 16's Turing
          machine rule) apply atomically under one valuation *)
  body : literal list;  (** empty body = fact *)
  stmt_span : span;  (** the full statement, label through terminator *)
}

(** Relation declaration: attribute name, key flag, auto-increment flag. *)
type schema_decl = {
  rel_name : string;
  rel_attrs : (string * bool * bool) list;
  decl_span : span;
}

type game_decl = {
  game_name : string;
  game_params : string list;  (** Skolem-function parameters *)
  path_rules : statement list;  (** heads target the [Path] table *)
  payoff_rules : statement list;  (** heads are payoff accumulations *)
}

(** A worker-facing task template from the views section: raw markup with
    [{{attr}}] placeholders, bound to the relation it presents. *)
type view = { view_name : string; template : string }

type program = {
  schemas : schema_decl list;
  statements : statement list;
  games : game_decl list;
  views : view list;
}

val empty_program : program
(** Program with no declarations, statements or games. *)

(** {2 Smart constructors}

    Convenience builders for synthesised AST nodes (desugaring, tests).
    The span defaults to {!no_span}. *)

val literal : ?span:span -> lit -> literal
val head_atom : ?span:span -> ?kind:head_kind -> atom -> head
val head_payoff : ?span:span -> (string * expr) list -> head
val statement : ?label:string -> ?span:span -> head list -> literal list -> statement

(** {2 Span erasure} *)

val strip_literal : literal -> literal
val strip_head : head -> head
val strip_statement : statement -> statement
val strip_program : program -> program
(** Copy with every span replaced by {!no_span}, for span-insensitive
    structural equality (e.g. pretty-print round-trip tests). *)

(** {2 Traversal helpers} *)

val expr_vars : expr -> string list
(** Variables occurring in an expression, without duplicates. *)

val literal_positive_preds : literal -> string list
(** Relation names a literal reads positively ([Pos] atoms only). *)

val body_preds : literal list -> string list
(** All relation names a body reads, positive and negated, without
    duplicates. *)

val head_pred : head -> string option
(** The relation a head writes, when it is an atom head. *)

val statement_preds : statement -> string list
(** Relations written by any of the statement's heads, without
    duplicates. *)

val statement_is_fact : statement -> bool
(** True iff the body is empty. *)

val statement_is_open : statement -> bool
(** True iff some head carries [/open]. *)

(** The campaign monitor: task-lifecycle latency tracing, per-round
    cost/latency/quality time series, and budget/SLO watchdogs.

    The survey frames every crowdsourcing design decision as a trade in
    the cost/latency/quality trilemma; this module is the instrument that
    reads all three axes off a running campaign. It is installed into an
    engine with {!Cylog.Engine.set_monitor} and sampled at round
    boundaries with {!Cylog.Engine.monitor_sample}; the crowd simulator
    does both when given a monitor config.

    {b Derivability.} The monitor's whole state — lifecycle latency
    histograms, every series point, every alert firing — is one fold over
    the engine's event log: {!of_events}[ config (Engine.events t)]
    rebuilds the live monitor exactly (compare with {!view}), before and
    after snapshot/restore and crash recovery. Sampling emits a
    journalled event whose [Sampled]/[Alert_fired] effects carry the
    evidence, so the fold {e reads} firings back instead of re-deciding
    them — the [Adaptive_resolved] precedent. Like the metrics recount,
    the contract assumes the telemetry registry stayed enabled for the
    whole run ({!Cylog.Telemetry.Metrics.set_enabled} mid-run suspends
    sampling and lifecycle recording entirely).

    {b Lifecycle tracing.} Every task is timed over the logical clock
    from [Open_created] to its retiring event, feeding fixed-bucket
    histograms with interpolated quantiles
    ({!Cylog.Telemetry.Metrics.quantile}):
    [lifecycle.first_answer] (created → first accepted answer/vote),
    [lifecycle.decision] (first answer → retired),
    [lifecycle.resolve] / [lifecycle.dead_letter] (created → retired, by
    outcome) and [lifecycle.end_to_end] (created → retired, either way —
    the histogram the p99 SLO watches). Standing ({e repeatable}) tasks
    never retire and contribute answer counts and cost only. *)

type config = {
  series_capacity : int;  (** ring capacity of the series (default 256) *)
  cost_per_answer : int;
      (** budget units charged per accepted answer, on top of positive
          payoff awards (default 1) *)
  max_budget : int option;  (** fire [Budget_exceeded] when spent exceeds *)
  certified_bound : int option;
      (** the static budget certificate's total spend bound
          ({!Cylog.Analysis}, in budget units); filled by
          [Engine.set_monitor] when the certificate is finite and no
          explicit [max_budget] is armed — the budget watchdog falls back
          to it, so an admission-checked campaign is budget-fenced even
          without manual configuration *)
  max_p99_latency : int option;
      (** fire [Latency_breached] when the end-to-end p99 exceeds this
          many clock ticks *)
  min_agreement_pct : int option;
      (** fire [Agreement_low] when the quorum agreement rate drops below *)
  max_dead_letter_pct : int option;
      (** fire [Dead_letters_high] when the dead-lettered share of
          retired tasks exceeds *)
  stall_samples : int option;
      (** fire [Stalled] after this many consecutive samples with pending
          tasks but no progress (no new answer or retirement) *)
}

val default_config : config
(** Capacity 256, one budget unit per answer, no thresholds armed. *)

(** One round-boundary sample of the campaign's three axes. Percent
    fields are [-1] when no sample exists yet (rendered as [null] in
    JSON). *)
type point = {
  p_round : int;
  p_clock : int;
  p_spent : int;  (** answers bought × cost + positive payoff awards *)
  p_answers : int;
  p_pending : int;
  p_oldest_age : int;  (** age of the oldest pending task; 0 when none *)
  p_e2e_p50 : float;
  p_e2e_p95 : float;
  p_e2e_p99 : float;  (** interpolated end-to-end latency quantiles *)
  p_agreement_pct : int;
  p_posterior_pct : int;  (** mean adaptive resolution posterior *)
  p_dead_letter_pct : int;
}

type firing = { at_round : int; at_clock : int; alert : Event.alert }

type t

val create : config -> t
(** An empty monitor (no events folded yet). *)

val of_events : config -> Event.event list -> t
(** {b The definition} of monitor state: fold the event log from the
    beginning. [Engine.set_monitor] uses this to backfill, so a monitor
    installed mid-campaign still reports full lifecycle history. *)

val observe : t -> Event.event -> unit
(** One fold step; the engine applies it to every recorded event. *)

val check : t -> Event.alert list
(** Evaluate the armed watchdogs against the current state, honouring the
    per-kind latches (each alert kind fires at most once per monitor
    lifetime). Pure read — latching happens when the journalled
    [Alert_fired] effect flows back through {!observe}. Called by
    {!Cylog.Engine.monitor_sample}; not meant for direct use. *)

val config : t -> config
val spent : t -> int
val answers : t -> int
val pending : t -> int
val retired : t -> int
val samples : t -> int

val agreement_pct : t -> int
(** [-1] when no quorum resolution has produced an agreement sample. *)

val posterior_pct : t -> int
(** [-1] when no adaptive resolution happened. *)

val dead_letter_pct : t -> int
(** Share of retired tasks that were dead-lettered; [0] when none
    retired. *)

val histograms : t -> (string * Telemetry.Metrics.histogram) list
(** The lifecycle histograms, sorted by name. *)

val points : t -> point list
(** Retained series points, oldest first (at most
    [config.series_capacity]). *)

val dropped_points : t -> int
(** Points evicted by the ring — [0] means {!points} is the whole
    series. *)

val firings : t -> firing list
(** Alert firings, chronological (never evicted). *)

type view = {
  v_samples : int;
  v_spent : int;
  v_answers : int;
  v_resolved : int;
  v_dead : int;
  v_pending : (Event.open_id * int) list;  (** (id, created-at), sorted *)
  v_votes_agree : int;
  v_votes_total : int;
  v_posterior_sum : int;
  v_posterior_n : int;
  v_histograms : (string * Telemetry.Metrics.histogram) list;
  v_points : point list;
  v_dropped_points : int;
  v_firings : firing list;
  v_latched : string list;
}

val view : t -> view
(** The whole state as comparable data — what the recount property tests
    compare with [=] across live/fold/restore/recover. *)

val to_json : t -> string
(** One JSON object: config, totals, lifecycle quantiles, the series and
    the alerts — the payload behind [Engine.monitor_json] and
    [--monitor-out]. *)

val to_jsonl : t -> string
(** One JSON object per line (series points then alerts, each tagged with
    a ["type"] field) — written when [--monitor-out] targets a [.jsonl]
    path. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dashboard — the REPL's [:monitor]. *)

(** Recursive-descent parser for CyLog programs.

    Concrete syntax (see the README for the full grammar):

    {v
    schema:
      Rules(rid key auto, cond, attr, value, p);
      Extracts(tw key, attr key, value key, rid);

    rules:
      Pre1: TweetOriginal(tw:"It rains in London", loc:"London");
      Pre3: Tweet(tw) <- TweetOriginal(tw, loc), ValidCity(cname:loc);
      VE1:  Input(tw, attr:"weather", value, p)/open[p]
              <- Tweet(tw), Worker(pid:p);
      VE2:  Output(tw, weather:value) <- Input(tw, attr:"weather", value, p:p1),
              Input(tw, attr:"weather", value, p:p2), p1 != p2;

    games:
      game VEI(tw, attr) {
        path:
          VEI1: Path(player:p, action:["value", value])
                  <- Input(tw, attr, value, p);
        payoff:
          VEI2: Path(player:p1, action:["value", v]) {
            VEI2.1: Payoff[p1 += 1, p2 += 1]
                      <- Path(player:p2, action:["value", v]), p1 != p2;
          }
      }
    v}

    Block style [P1, P2 { S1; S2; }] desugars by prepending the prefix
    literals to each inner statement's body; blocks nest. Comma-separated
    heads form a single multi-head statement. A [views:] section is accepted
    and skipped (presentation only). *)

(** A parse error with its source range: [line]/[col] point at the first
    offending character (both 1-based), [end_line]/[end_col] just past the
    last one. *)
type error = {
  line : int;
  col : int;
  end_line : int;
  end_col : int;
  message : string;
}

val parse : string -> (Ast.program, error) result
(** Parse a whole program. *)

val parse_exn : string -> Ast.program
(** Like {!parse}. @raise Invalid_argument with a located message. *)

val parse_statements : string -> (Ast.statement list, error) result
(** Parse bare statements (no section headers) — convenient in tests. *)

val parse_statements_exn : string -> Ast.statement list
(** Like {!parse_statements}. @raise Invalid_argument on errors. *)

val pp_error : Format.formatter -> error -> unit
(** Human-readable message with position. *)

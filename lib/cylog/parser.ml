type error = {
  line : int;
  col : int;
  end_line : int;
  end_col : int;
  message : string;
}

exception Fail of error

type state = { tokens : Lexer.located array; mutable pos : int }

let current st = st.tokens.(st.pos)
let peek st = (current st).token

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then Some st.tokens.(st.pos + 1).token
  else None

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let fail st message =
  let { Lexer.line; col; end_line; end_col; _ } = current st in
  raise (Fail { line; col; end_line; end_col; message })

(* Span bookkeeping: capture the current token's start before parsing a
   node, and close the span with the end of the last consumed token. *)
let start_pos st =
  let t = current st in
  (t.Lexer.line, t.Lexer.col)

let span_from st (start_line, start_col) =
  let t = st.tokens.(max 0 (st.pos - 1)) in
  {
    Ast.start_line;
    start_col;
    end_line = t.Lexer.end_line;
    end_col = t.Lexer.end_col;
  }

let expect st token =
  if peek st = token then advance st
  else
    fail st
      (Format.asprintf "expected %a but found %a" Lexer.pp_token token Lexer.pp_token
         (peek st))

let eat_ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> fail st (Format.asprintf "expected an identifier, found %a" Lexer.pp_token t)

(* --- Expressions ------------------------------------------------------ *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let left = parse_multiplicative st in
  match peek st with
  | Lexer.PLUS ->
      advance st;
      Ast.Binop (Ast.Add, left, parse_additive st)
  | Lexer.MINUS ->
      advance st;
      Ast.Binop (Ast.Sub, left, parse_additive st)
  | _ -> left

and parse_multiplicative st =
  let left = parse_factor st in
  match peek st with
  | Lexer.STAR ->
      advance st;
      Ast.Binop (Ast.Mul, left, parse_multiplicative st)
  | Lexer.SLASH ->
      advance st;
      Ast.Binop (Ast.Div, left, parse_multiplicative st)
  | _ -> left

and parse_factor st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Ast.Const (Reldb.Value.Int i)
  | Lexer.FLOAT f ->
      advance st;
      Ast.Const (Reldb.Value.Float f)
  | Lexer.STRING s ->
      advance st;
      Ast.Const (Reldb.Value.String s)
  | Lexer.MINUS ->
      advance st;
      (match parse_factor st with
      | Ast.Const (Reldb.Value.Int i) -> Ast.Const (Reldb.Value.Int (-i))
      | Ast.Const (Reldb.Value.Float f) -> Ast.Const (Reldb.Value.Float (-.f))
      | e -> Ast.Binop (Ast.Sub, Ast.Const (Reldb.Value.Int 0), e))
  | Lexer.IDENT "null" ->
      advance st;
      Ast.Const Reldb.Value.Null
  | Lexer.IDENT "true" ->
      advance st;
      Ast.Const (Reldb.Value.Bool true)
  | Lexer.IDENT "false" ->
      advance st;
      Ast.Const (Reldb.Value.Bool false)
  | Lexer.IDENT v ->
      advance st;
      Ast.Var v
  | Lexer.LBRACKET ->
      advance st;
      let rec elements acc =
        if peek st = Lexer.RBRACKET then List.rev acc
        else
          let e = parse_expr st in
          if peek st = Lexer.COMMA then begin
            advance st;
            elements (e :: acc)
          end
          else List.rev (e :: acc)
      in
      let es = elements [] in
      expect st Lexer.RBRACKET;
      Ast.List es
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | t -> fail st (Format.asprintf "expected an expression, found %a" Lexer.pp_token t)

(* --- Atoms ------------------------------------------------------------ *)

let parse_arg st =
  let attr = eat_ident st in
  match peek st with
  | Lexer.COLON ->
      advance st;
      { Ast.attr; bind = Ast.Bound (parse_expr st) }
  | _ -> { Ast.attr; bind = Ast.Auto }

let parse_atom st name =
  expect st Lexer.LPAREN;
  let rec args acc =
    match peek st with
    | Lexer.RPAREN -> List.rev acc
    | _ ->
        let a = parse_arg st in
        if peek st = Lexer.COMMA then begin
          advance st;
          args (a :: acc)
        end
        else List.rev (a :: acc)
  in
  let args = args [] in
  expect st Lexer.RPAREN;
  { Ast.pred = name; args }

(* --- Body literals ----------------------------------------------------- *)

let cmpop_of_token = function
  | Lexer.EQ -> Some Ast.Eq
  | Lexer.NEQ -> Some Ast.Neq
  | Lexer.LT -> Some Ast.Lt
  | Lexer.LE -> Some Ast.Le
  | Lexer.GT -> Some Ast.Gt
  | Lexer.GE -> Some Ast.Ge
  | _ -> None

let parse_literal st =
  let start = start_pos st in
  let lit =
    match peek st with
    | Lexer.IDENT "not" ->
        advance st;
        (match peek st with
        | Lexer.UIDENT name ->
            advance st;
            Ast.Neg (parse_atom st name)
        | t -> fail st (Format.asprintf "expected a relation after 'not', found %a" Lexer.pp_token t))
    | Lexer.UIDENT name ->
        advance st;
        Ast.Pos (parse_atom st name)
    | Lexer.IDENT name when peek2 st = Some Lexer.LPAREN ->
        advance st;
        advance st;
        let rec exprs acc =
          match peek st with
          | Lexer.RPAREN -> List.rev acc
          | _ ->
              let e = parse_expr st in
              if peek st = Lexer.COMMA then begin
                advance st;
                exprs (e :: acc)
              end
              else List.rev (e :: acc)
        in
        let args = exprs [] in
        expect st Lexer.RPAREN;
        Ast.Call (name, args)
    | _ -> (
        let left = parse_expr st in
        match cmpop_of_token (peek st) with
        | Some op ->
            advance st;
            Ast.Cmp (left, op, parse_expr st)
        | None ->
            fail st
              (Format.asprintf "expected a comparison operator, found %a" Lexer.pp_token
                 (peek st)))
  in
  Ast.literal ~span:(span_from st start) lit

let parse_body st =
  let rec loop acc =
    let l = parse_literal st in
    if peek st = Lexer.COMMA then begin
      advance st;
      loop (l :: acc)
    end
    else List.rev (l :: acc)
  in
  loop []

(* --- Statements -------------------------------------------------------- *)

(* A statement-level element: before we know whether we are looking at a
   rule head list or at a block prefix, we parse comma-separated elements
   generically. *)
type element =
  | E_atom of Ast.atom * Ast.head_kind option * Ast.span
      (* kind set iff /open etc. seen *)
  | E_payoff of (string * Ast.expr) list * Ast.span
  | E_literal of Ast.literal

let parse_head_kind st =
  (* Called after SLASH. *)
  match peek st with
  | Lexer.IDENT "open" ->
      advance st;
      if peek st = Lexer.LBRACKET then begin
        advance st;
        let e = parse_expr st in
        expect st Lexer.RBRACKET;
        Ast.Open (Some e)
      end
      else Ast.Open None
  | Lexer.IDENT "update" ->
      advance st;
      Ast.Update
  | Lexer.IDENT "delete" ->
      advance st;
      Ast.Delete
  | t -> fail st (Format.asprintf "expected open/update/delete after '/', found %a" Lexer.pp_token t)

let parse_payoff_updates st =
  (* Called after '['. *)
  let rec loop acc =
    let player = eat_ident st in
    expect st Lexer.PLUSEQ;
    let delta = parse_expr st in
    let acc = (player, delta) :: acc in
    if peek st = Lexer.COMMA then begin
      advance st;
      loop acc
    end
    else List.rev acc
  in
  let updates = loop [] in
  expect st Lexer.RBRACKET;
  updates

let parse_element st =
  let start = start_pos st in
  match peek st with
  | Lexer.UIDENT name when peek2 st = Some Lexer.LBRACKET ->
      advance st;
      advance st;
      if name <> "Payoff" then
        fail st (Printf.sprintf "only Payoff accepts [player += delta] syntax, not %s" name);
      let updates = parse_payoff_updates st in
      E_payoff (updates, span_from st start)
  | Lexer.UIDENT name ->
      advance st;
      let atom = parse_atom st name in
      if peek st = Lexer.SLASH then begin
        advance st;
        let kind = parse_head_kind st in
        E_atom (atom, Some kind, span_from st start)
      end
      else E_atom (atom, None, span_from st start)
  | _ -> E_literal (parse_literal st)

let element_to_head st = function
  | E_atom (atom, Some kind, span) -> Ast.head_atom ~span ~kind atom
  | E_atom (atom, None, span) -> Ast.head_atom ~span atom
  | E_payoff (updates, span) -> Ast.head_payoff ~span updates
  | E_literal _ -> fail st "comparisons cannot appear in a rule head"

let element_to_literal st = function
  | E_atom (atom, None, span) -> Ast.literal ~span (Ast.Pos atom)
  | E_atom (_, Some _, _) -> fail st "head annotations cannot appear in a block prefix"
  | E_payoff _ -> fail st "payoff updates cannot appear in a block prefix"
  | E_literal l -> l

(* [parse_items st ~stop] parses labelled statements and blocks until the
   [stop] predicate holds, threading the inherited block prefix. *)
let rec parse_items st ~prefix ~stop acc =
  if stop st then List.rev acc
  else
    let stmt_start = start_pos st in
    let label =
      match (peek st, peek2 st) with
      | (Lexer.UIDENT name | Lexer.IDENT name), Some Lexer.COLON
        when name <> "path" && name <> "payoff" ->
          advance st;
          advance st;
          Some name
      | _ -> None
    in
    let rec elements acc =
      let e = parse_element st in
      if peek st = Lexer.COMMA then begin
        advance st;
        elements (e :: acc)
      end
      else List.rev (e :: acc)
    in
    let elements = elements [] in
    match peek st with
    | Lexer.LBRACE ->
        advance st;
        let block_prefix = List.map (element_to_literal st) elements in
        let inner =
          parse_items st ~prefix:(prefix @ block_prefix)
            ~stop:(fun st -> peek st = Lexer.RBRACE)
            []
        in
        expect st Lexer.RBRACE;
        (* Inner statements already carry the extended prefix. A label on
           the block itself names the first inner statement when that one
           is unlabelled. *)
        let inner =
          match (label, inner) with
          | Some l, ({ Ast.label = None; _ } as s) :: rest ->
              { s with Ast.label = Some l } :: rest
          | _ -> inner
        in
        parse_items st ~prefix ~stop (List.rev_append inner acc)
    | Lexer.ARROW ->
        advance st;
        let body = parse_body st in
        expect st Lexer.SEMI;
        let heads = List.map (element_to_head st) elements in
        parse_items st ~prefix ~stop
          (Ast.statement ?label ~span:(span_from st stmt_start) heads (prefix @ body)
          :: acc)
    | Lexer.SEMI ->
        advance st;
        let heads = List.map (element_to_head st) elements in
        parse_items st ~prefix ~stop
          (Ast.statement ?label ~span:(span_from st stmt_start) heads prefix :: acc)
    | Lexer.RBRACE ->
        (* A closing brace may end the last statement of a block without an
           explicit semicolon (Figure 16 style). *)
        let heads = List.map (element_to_head st) elements in
        parse_items st ~prefix ~stop
          (Ast.statement ?label ~span:(span_from st stmt_start) heads prefix :: acc)
    | t ->
        fail st
          (Format.asprintf "expected '<-', ';' or '{' after statement head, found %a"
             Lexer.pp_token t)

(* --- Schema section ----------------------------------------------------- *)

let parse_schema_decl st name start =
  expect st Lexer.LPAREN;
  let rec attrs acc =
    let attr = eat_ident st in
    let key = ref false and auto = ref false in
    let rec flags () =
      match peek st with
      | Lexer.IDENT "key" ->
          advance st;
          key := true;
          flags ()
      | Lexer.IDENT "auto" ->
          advance st;
          auto := true;
          flags ()
      | _ -> ()
    in
    flags ();
    let acc = (attr, !key, !auto) :: acc in
    if peek st = Lexer.COMMA then begin
      advance st;
      attrs acc
    end
    else List.rev acc
  in
  let rel_attrs = attrs [] in
  expect st Lexer.RPAREN;
  expect st Lexer.SEMI;
  { Ast.rel_name = name; rel_attrs; decl_span = span_from st start }

(* --- Games section ------------------------------------------------------ *)

let is_section_keyword = function
  | "schema" | "rules" | "games" | "views" -> true
  | _ -> false

let at_section st =
  match (peek st, peek2 st) with
  | Lexer.IDENT k, Some Lexer.COLON when is_section_keyword k -> true
  | Lexer.EOF, _ -> true
  | _ -> false

let parse_game st =
  (* Called after the 'game' keyword. *)
  let name =
    match peek st with
    | Lexer.UIDENT n ->
        advance st;
        n
    | t -> fail st (Format.asprintf "expected a game name, found %a" Lexer.pp_token t)
  in
  expect st Lexer.LPAREN;
  let rec params acc =
    match peek st with
    | Lexer.RPAREN -> List.rev acc
    | _ ->
        let p = eat_ident st in
        if peek st = Lexer.COMMA then begin
          advance st;
          params (p :: acc)
        end
        else List.rev (p :: acc)
  in
  let game_params = params [] in
  expect st Lexer.RPAREN;
  expect st Lexer.LBRACE;
  let stop_at_subsection st =
    match (peek st, peek2 st) with
    | Lexer.RBRACE, _ -> true
    | Lexer.IDENT ("path" | "payoff"), Some Lexer.COLON -> true
    | _ -> false
  in
  let path_rules = ref [] and payoff_rules = ref [] in
  let rec sections () =
    match (peek st, peek2 st) with
    | Lexer.IDENT "path", Some Lexer.COLON ->
        advance st;
        advance st;
        path_rules := !path_rules @ parse_items st ~prefix:[] ~stop:stop_at_subsection [];
        sections ()
    | Lexer.IDENT "payoff", Some Lexer.COLON ->
        advance st;
        advance st;
        payoff_rules := !payoff_rules @ parse_items st ~prefix:[] ~stop:stop_at_subsection [];
        sections ()
    | Lexer.RBRACE, _ -> advance st
    | (t, _) ->
        fail st
          (Format.asprintf "expected 'path:', 'payoff:' or '}' in game body, found %a"
             Lexer.pp_token t)
  in
  sections ();
  { Ast.game_name = name; game_params; path_rules = !path_rules;
    payoff_rules = !payoff_rules }

(* --- Views section (skipped) -------------------------------------------- *)

let skip_views st =
  (* Skip balanced tokens until the next top-level section keyword. *)
  let depth = ref 0 in
  let rec loop () =
    if !depth = 0 && at_section st then ()
    else begin
      (match peek st with
      | Lexer.LBRACE | Lexer.LPAREN | Lexer.LBRACKET -> incr depth
      | Lexer.RBRACE | Lexer.RPAREN | Lexer.RBRACKET -> decr depth
      | _ -> ());
      advance st;
      loop ()
    end
  in
  loop ()

(* --- Program ------------------------------------------------------------ *)

let parse_program views st =
  let schemas = ref [] and statements = ref [] and games = ref [] in
  let rec sections () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.IDENT "schema" when peek2 st = Some Lexer.COLON ->
        advance st;
        advance st;
        let rec decls () =
          match peek st with
          | Lexer.UIDENT name ->
              let start = start_pos st in
              advance st;
              schemas := !schemas @ [ parse_schema_decl st name start ];
              decls ()
          | _ -> ()
        in
        decls ();
        sections ()
    | Lexer.IDENT "rules" when peek2 st = Some Lexer.COLON ->
        advance st;
        advance st;
        statements := !statements @ parse_items st ~prefix:[] ~stop:at_section [];
        sections ()
    | Lexer.IDENT "games" when peek2 st = Some Lexer.COLON ->
        advance st;
        advance st;
        let rec decls () =
          match peek st with
          | Lexer.IDENT "game" ->
              advance st;
              games := !games @ [ parse_game st ];
              decls ()
          | _ -> ()
        in
        decls ();
        sections ()
    | Lexer.IDENT "views" when peek2 st = Some Lexer.COLON ->
        advance st;
        advance st;
        skip_views st;
        sections ()
    | t ->
        fail st
          (Format.asprintf
             "expected a section header (schema:/rules:/games:/views:), found %a"
             Lexer.pp_token t)
  in
  sections ();
  { Ast.schemas = !schemas; statements = !statements; games = !games; views }

let with_state src f =
  try
    let tokens = Array.of_list (Lexer.tokenize src) in
    let st = { tokens; pos = 0 } in
    Ok (f st)
  with
  | Fail e -> Error e
  | Lexer.Error { line; col; message } ->
      Error { line; col; end_line = line; end_col = col; message }

let parse src =
  (* View templates are raw markup, carved out before lexing. *)
  match Views.split src with
  | exception Views.Error { line; message } ->
      Error { line; col = 1; end_line = line; end_col = 1; message }
  | cleaned, views -> with_state cleaned (parse_program views)

let parse_statements src =
  with_state src (fun st ->
      let items = parse_items st ~prefix:[] ~stop:(fun st -> peek st = Lexer.EOF) [] in
      expect st Lexer.EOF;
      items)

let pp_error ppf { line; col; message; _ } =
  Format.fprintf ppf "parse error at line %d, column %d: %s" line col message

let parse_exn src =
  match parse src with
  | Ok p -> p
  | Error e -> invalid_arg (Format.asprintf "%a" pp_error e)

let parse_statements_exn src =
  match parse_statements src with
  | Ok s -> s
  | Error e -> invalid_arg (Format.asprintf "%a" pp_error e)

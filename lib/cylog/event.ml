(* The engine's event vocabulary, extracted below Engine so layers that
   fold over the event log (the campaign monitor, recount checks) can sit
   between Telemetry and Engine without a dependency cycle. Engine
   re-exports every type here with an equation, so [Engine.Inserted] and
   [Event.Inserted] are the same constructor. *)

type open_id = int

(* A watchdog verdict. Each constructor carries the observed value and
   the configured limit, so the journalled event is self-contained: the
   recount fold reads the firing from the event instead of re-deciding
   (the [Adaptive_resolved] evidence-in-event precedent). *)
type alert =
  | Budget_exceeded of { spent : int; budget : int }
  | Latency_breached of { p99 : int; limit : int }
  | Agreement_low of { pct : int; floor : int }
  | Dead_letters_high of { pct : int; ceiling : int }
  | Stalled of { samples : int; limit : int }

let alert_key = function
  | Budget_exceeded _ -> "budget"
  | Latency_breached _ -> "latency"
  | Agreement_low _ -> "agreement"
  | Dead_letters_high _ -> "dead_letter"
  | Stalled _ -> "stall"

(* (observed, limit) — the two numbers every alert is a comparison of. *)
let alert_numbers = function
  | Budget_exceeded { spent; budget } -> (spent, budget)
  | Latency_breached { p99; limit } -> (p99, limit)
  | Agreement_low { pct; floor } -> (pct, floor)
  | Dead_letters_high { pct; ceiling } -> (pct, ceiling)
  | Stalled { samples; limit } -> (samples, limit)

let alert_to_string = function
  | Budget_exceeded { spent; budget } ->
      Printf.sprintf "budget exceeded: spent %d > budget %d" spent budget
  | Latency_breached { p99; limit } ->
      Printf.sprintf "p99 task latency breached: %d > %d" p99 limit
  | Agreement_low { pct; floor } ->
      Printf.sprintf "agreement rate low: %d%% < %d%%" pct floor
  | Dead_letters_high { pct; ceiling } ->
      Printf.sprintf "dead-letter rate high: %d%% > %d%%" pct ceiling
  | Stalled { samples; limit } ->
      Printf.sprintf "campaign stalled: %d idle samples >= %d" samples limit

type effect =
  | Inserted of string * Reldb.Tuple.t
  | Updated of string * Reldb.Tuple.t
  | Deleted of string * int
  | Awarded of (Reldb.Value.t * Reldb.Value.t) list
  | Open_created of open_id
  | No_effect
  | Vote_recorded of open_id * int
  | Dead_lettered of open_id * Lease.reason
  | Adaptive_resolved of { open_id : open_id; posterior_pct : int; escalated : bool }
  | Resolved of open_id
  | Sampled of { round : int }
  | Alert_fired of { round : int; alert : alert }

type event = {
  clock : int;
  statement : int;
  label : string option;
  valuation : (string * Reldb.Value.t) list;
  fired : bool;
  effects : effect list;
  by_human : Reldb.Value.t option;
}

(** Pluggable byte storage for the durable journal.

    {!Cylog.Journal} never touches the filesystem directly: every byte it
    writes or reads goes through a first-class {!S} module, so the same
    WAL code runs against real POSIX files in production and against an
    in-memory, {e fault-injecting} simulator in tests. The simulator is
    what makes the crash-point harness possible: it can kill the storage
    at any chosen operation, tear the unsynced tail of the file being
    written, substitute garbage bytes, refuse space mid-record, or
    silently drop fsyncs — and then expose the exact byte image a real
    disk would present after the crash.

    All operations are keyed by path (handles are managed internally), so
    an implementation is just a bundle of stateful functions — cheap to
    instantiate per test via {!Sim.storage}. *)

exception Crashed
(** The simulated storage died mid-operation (see {!Sim.plan}). Nothing
    raised after this point ever reaches the disk image; recover from
    {!Sim.after_crash}. *)

exception No_space
(** The device is full. The raising append may have written a {e prefix}
    of its bytes (a short write mid-record) — exactly the torn state
    recovery must cope with. *)

module type S = sig
  val mkdirp : string -> unit
  (** Create the directory (and parents); a no-op when it exists. *)

  val list_dir : string -> string list
  (** Basenames in the directory, sorted; [[]] when it does not exist. *)

  val exists : string -> bool

  val size : string -> int
  (** Byte length of a file. @raise Sys_error when missing. *)

  val read_file : string -> string
  (** Whole contents. @raise Sys_error when missing. *)

  val append : string -> string -> unit
  (** Append bytes, creating the file if needed. Buffered data is not
      durable until {!fsync}. @raise No_space / @raise Crashed under
      fault injection. *)

  val fsync : string -> unit
  (** Flush the file's buffered bytes to stable storage. Covers the
      file's {e data} only — see {!fsync_dir} for the directory entry. *)

  val fsync_dir : string -> unit
  (** Flush the directory itself, making entry metadata — file creation,
      {!rename}, {!delete} — durable. A file {!fsync} does not cover the
      directory entry: on power loss a freshly created or renamed file
      whose directory was never synced can vanish entirely, and an
      unsynced deletion can resurrect. *)

  val truncate : string -> int -> unit
  (** Cut the file to the given length — how recovery drops a torn tail. *)

  val delete : string -> unit
  (** Remove a file; a no-op when it does not exist. *)

  val rename : string -> string -> unit
  (** Atomic replace — the commit point of compaction. *)

  val close : string -> unit
  (** Drop any cached handle for the path (flushing buffered bytes). *)
end

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over the whole string —
    the checksum guarding every journal record and snapshot payload. *)

val crc32_sub : string -> pos:int -> len:int -> int32
(** CRC-32 over a slice, avoiding the copy. *)

module Posix : S
(** Real files via [Unix]: append-mode descriptors cached per path,
    [Unix.fsync] for durability, [Sys.rename] for atomic replace. *)

(** In-memory storage with deterministic fault injection.

    Data and metadata durability are modelled separately, as POSIX
    separates them: {!S.fsync} makes a file's bytes durable, but its
    directory {e entry} is durable only once {!S.fsync_dir} runs. The
    crash image takes the adversarial reading of metadata writeback
    (real disks reorder it): entry {e removals} — deletes, the
    rename-away of a source — count as instantly durable, while entry
    {e additions} — creates, rename targets — survive only if a
    [fsync_dir] covered them. So a crash can persist the unlink of an
    old segment while losing the rename of its replacement, exactly the
    failure a missing directory sync invites; this is what makes such a
    bug detectable by the crash-point harness. *)
module Sim : sig
  (** What survives of the {e unsynced} region of the file being appended
      when the crash fires. Fsynced bytes always survive; unsynced bytes
      of every other file are always dropped (the pessimistic reading of
      POSIX). *)
  type tail =
    | Drop_unsynced  (** lose everything after the last fsync *)
    | Torn of int  (** keep that many unsynced bytes — a torn write *)
    | Garbage of int
        (** keep that many unsynced bytes, then stray garbage bytes (a
            misdirected or bit-rotted sector) *)

  type plan = {
    crash_at_op : int option;
        (** die when the running operation count (appends, fsyncs,
            directory fsyncs, truncates, deletes, renames) reaches this
            value *)
    tail : tail;  (** what the crash leaves of the in-flight file *)
    no_space_after : int option;
        (** total append-byte budget; the append that exceeds it writes
            the prefix that fits and raises {!No_space} *)
    delayed_fsync : float;  (** probability an fsync is silently dropped *)
    seed : int;  (** RNG stream for [delayed_fsync] *)
  }

  val default_plan : plan
  (** No faults: [crash_at_op = None], [tail = Drop_unsynced],
      [no_space_after = None], [delayed_fsync = 0.0], [seed = 0]. *)

  type t

  val create : ?plan:plan -> unit -> t
  (** Fresh empty storage under the given fault plan. *)

  val storage : t -> (module S)
  (** The instance as a pluggable storage module. *)

  val ops : t -> int
  (** Operations performed so far — the coordinate system of
      [crash_at_op], letting a harness first count a fault-free run's
      operations and then sweep every crash point. *)

  val crashed : t -> bool

  val after_crash : t -> t
  (** The byte image a disk would present after the crash: fsynced data
      intact, unsynced data dropped except for the configured {!tail} of
      the in-flight file. Fresh fault-free plan; operation count reset.
      @raise Invalid_argument when the instance has not crashed. *)

  val copy : ?plan:plan -> t -> t
  (** Clone the {e currently visible} contents (buffered writes included,
      all treated as durable) under a new plan — e.g. to reopen a journal
      after {!No_space} without replaying the campaign. *)
end

(** Durable write-ahead log for the engine's event-sourced journal.

    PR 2 made the journal of externally-triggered mutations the engine's
    source of truth: replaying it through the public API reproduces the
    engine byte-for-byte. This module makes that journal {e durable} — an
    append-only sequence of segment files, each a sorted run of
    length-prefixed, CRC32-checksummed, versioned records — so a crash
    mid-campaign loses at most the records after the last fsync, never a
    paid crowd answer that was already made durable.

    The module is engine-agnostic: payloads are opaque strings (the
    engine marshals its own entries), and all I/O goes through a
    pluggable {!Storage.S}, so the same code runs against POSIX files in
    production and the fault-injecting {!Storage.Sim} in the crash-point
    harness.

    {2 On-disk format (see docs/DURABILITY.md)}

    Segment files are named [wal-%08d.seg] and begin with a 16-byte
    header: the magic ["CYLOG-WAL/1\n"] followed by the segment's own
    index as a little-endian u32 (so a misnamed or cross-wired file is
    rejected). Records follow back to back:

    {v
    u32le length   — byte length of everything after the crc (= 2 + |payload|)
    u32le crc32    — over version ++ kind ++ payload
    u8    version  — format version, currently 1
    u8    kind     — 0 Genesis, 1 Entry, 2 Snapshot
    bytes payload  — opaque (engine-marshalled)
    v}

    Segment 0 of a fresh journal starts with a [Genesis] record and a
    compaction segment starts with a [Snapshot]; rotated segments hold
    only [Entry] records. Recovery's base is therefore the {e greatest}
    segment whose first record is a Genesis/Snapshot; segments before it
    are leftovers from an interrupted compaction and are deleted. *)

(** {1 Configuration} *)

(** When appended records become durable. *)
type fsync_policy =
  | Always  (** fsync after every append — nothing acknowledged is lost *)
  | Every_n of int  (** fsync after every [n] appends (and on rotation) *)
  | Never  (** leave durability to the OS; crash may lose any suffix *)

type config = {
  fsync : fsync_policy;
  segment_bytes : int;
      (** rotate to a fresh segment once the current one exceeds this *)
  compact_every : int option;
      (** request compaction after this many entries since the last
          snapshot ({!wants_compaction}); [None] disables the hint *)
}

val default_config : config
(** [{ fsync = Always; segment_bytes = 1 lsl 20; compact_every = None }] *)

(** {1 Records} *)

type kind = Genesis | Entry | Snapshot

type record = { kind : kind; payload : string }

(** {1 Errors} *)

type error =
  | No_segments of string  (** journal directory empty or missing *)
  | No_valid_base of string
      (** segments exist but none starts with a durable Genesis/Snapshot
          record — the crash predates the journal's first fsync *)
  | Missing_segment of { dir : string; index : int }
      (** a gap in the segment sequence after the recovery base; the
          journal refuses to silently skip it *)
  | Corrupt_record of { segment : string; offset : int; reason : string }
      (** framing or checksum failure anywhere but the tail of the final
          segment (where it would be truncated instead) *)
  | Unsupported_version of { segment : string; offset : int; version : int }
      (** checksum-valid record written by an unknown format version —
          never truncated, always refused *)
  | Journal_exists of string  (** {!create} on a directory with segments *)

exception Error of error

val error_to_string : error -> string

(** {1 Writing} *)

type t

val create :
  ?config:config -> ?storage:(module Storage.S) -> genesis:string ->
  string -> t
(** [create ~genesis dir] starts a fresh journal in [dir] (created if
    needed): segment 0 is written with a [Genesis] record carrying
    [genesis] and made durable — data fsync plus a directory fsync for
    the entry itself — before the call returns, whatever the fsync
    policy. Default storage is {!Storage.Posix}.
    @raise Error ([Journal_exists]) when [dir] already holds segments —
    recover instead of overwriting a journal. *)

val append : t -> string -> unit
(** Durably log one journal entry (per the fsync policy), rotating to a
    fresh segment first when the current one is over
    [config.segment_bytes]. Rotation always fsyncs the outgoing segment
    — so only the final segment of a journal can ever hold torn bytes —
    and syncs the directory so the successor's entry survives a crash. *)

val compact : t -> string -> unit
(** Fold the live engine state [snapshot] into a new segment, then delete
    all older ones, making restore cost proportional to live state rather
    than journal length. Crash-safe: the snapshot is staged in a [.tmp]
    file, fsynced, atomically renamed, and the rename made durable with a
    directory fsync before any deletion — a crash anywhere leaves either
    the old segments intact or a valid new base. *)

val sync : t -> unit
(** Force an fsync of the current segment regardless of policy. *)

val close : t -> unit
(** Final {!sync} and release of storage handles. *)

val wants_compaction : t -> bool
(** [config.compact_every] entries have accumulated since the last
    snapshot. A hint only — the engine decides {e when} it is safe to
    take the snapshot (never between an entry's append and its
    application). *)

(** {1 Recovery} *)

type recovery = {
  records : record list;
      (** the surviving run, in order: one Genesis/Snapshot base followed
          by entries *)
  base_segment : int;
  segments_scanned : int;
  truncated_bytes : int;
      (** torn/garbage tail bytes (and headerless trailing segments)
          dropped to reach the last valid record boundary *)
}

val recover :
  ?config:config -> ?storage:(module Storage.S) -> string -> t * recovery
(** Crash-consistent open of an existing journal: scan segments, verify
    every checksum, truncate the final segment's torn or garbage tail to
    the last valid record boundary (deleting a trailing segment whose
    header never became durable), delete [.tmp] staging files and
    pre-compaction leftovers, and return the journal positioned for
    appending plus the surviving records. Recovery mutates storage only
    to discard — never to invent — bytes, so [recover] after [recover]
    is a no-op reporting zero truncated bytes.
    @raise Error on an empty directory, a segment gap, a corrupt
    non-final record, or an unsupported record version. *)

(** {1 Introspection} *)

type stats = {
  appends : int;
  fsyncs : int;
  dir_fsyncs : int;
      (** directory syncs making segment creation/rename/delete durable *)
  rotations : int;
  compactions : int;
  entries_since_snapshot : int;
  segments : int list;  (** live segment indices, ascending *)
  tail_bytes : int;  (** size of the current (append) segment *)
}

val stats : t -> stats
val dir : t -> string
val config : t -> config

val set_telemetry : t -> Telemetry.t -> clock:(unit -> int) -> unit
(** Route instrumentation to an engine's telemetry: counters
    [journal.appends], [journal.fsyncs], [journal.dir_fsyncs],
    [journal.segments.rotated], [journal.compactions] and point spans
    [journal-append] (traced runs only), [journal-rotate],
    [journal-compact], stamped with the engine's logical clock. *)

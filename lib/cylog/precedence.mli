(** Rule precedence graphs (Section 9.1, Figure 14).

    Each statement is a vertex (identified by its priority index). An edge
    runs from statement [i] to statement [q] when the result of [q] depends
    on that of [i]:

    - [q]'s body reads (positively or under negation) a relation that some
      head of [i] writes;
    - [q] updates or deletes a relation that some head of [i] writes, with
      [i < q].

    An edge with [i < q] is a {e forward} precedence (solid arrow in the
    paper); [i >= q] is {e backward} (dotted): tuples from [i] reach [q]
    only after [q]'s first evaluation. *)

type t

type edge = {
  src : int;
  dst : int;
  via : string;  (** the relation carrying the dataflow *)
  forward : bool;
}

val build : Ast.statement list -> t
(** Build the graph of a statement list (priorities are list positions). *)

val size : t -> int
(** Number of vertices. *)

val statement_at : t -> int -> Ast.statement
(** The statement at a vertex (its priority index).
    @raise Invalid_argument when out of range. *)

val edges : t -> edge list
(** All edges, sorted by (src, dst). *)

val depends_on : t -> int -> int -> bool
(** [depends_on g q i] is true iff there is a direct or composite dataflow
    from statement [i] to statement [q]. *)

val data_complete : t -> int -> bool
(** [data_complete g q]: no statement [i >= q] feeds [q] directly or
    indirectly — every computation affecting [q] finishes before [q] first
    fires, so negation in [q] agrees with the final-set semantics (the
    paper's link to stratified Datalog). *)

val parallelizable : t -> int -> int -> bool
(** True iff neither statement depends on the other, so they may be
    evaluated in parallel (the paper's remark about rules 3 and 4). *)

val parallel_groups : t -> int list list
(** A greedy partition of the statements into groups of mutually
    independent statements, in priority order — a schedule in which each
    group could evaluate in parallel. Statements never move ahead of a
    statement they depend on. *)

val stratified : t -> bool
(** True iff every statement whose body uses negation is data complete. *)

(** A witness that negation in statement [vertex] observes a relation
    still being populated: statement [writer >= vertex] asserts (or opens)
    tuples of [negated] after [vertex] first evaluates. [cycle] is the
    dependency chain [vertex; ...; writer] through direct edges when one
    exists (the backward edge [writer -> vertex] closes the cycle), or
    [[]] when the only flow is that single backward edge. *)
type violation = {
  vertex : int;
  negated : string;
  writer : int;
  cycle : int list;
}

val negation_violations : t -> violation list
(** Witness-producing refinement of {!stratified}: one violation per
    (negating statement, negated relation, later Assert/Open writer)
    triple, in priority order. Unlike {!data_complete} — which counts any
    backward dataflow — only writers that insert new tuples into the
    negated relation are reported; update/delete writers are the paper's
    fill-if-absent idiom and remain legal (Figure 16). *)

val sccs : ?positive_only:bool -> t -> int list list
(** Strongly connected components of the direct-edge graph, each sorted
    ascending, listed in dependency order: a component appears before
    every component that reads its output. With [positive_only] (default
    false) an edge counts only when the consuming statement reads the
    carrying relation through a {e positive} body atom — cardinality
    flows through positive reads only, so this is the recursion notion
    {!Analysis} widens over. Self-edges are never recorded by {!build};
    callers that care about single-statement recursion (a statement
    positively reading a relation it writes) must test for it
    themselves. *)

val vertex_name : t -> int -> string
(** Display name of a vertex, [R_q] style (relation name and 1-based
    priority), as in Figure 14. *)

(** Pretty-printing of CyLog ASTs back to concrete syntax.

    [Parser.parse_exn] of a printed program yields a structurally equal
    program up to {!Ast.strip_program} (the printer always emits flat
    style, so block-style sugar is not preserved — the desugared rules
    are — and source spans are not reproduced). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_atom : Format.formatter -> Ast.atom -> unit
val pp_lit : Format.formatter -> Ast.lit -> unit
val pp_literal : Format.formatter -> Ast.literal -> unit
val pp_head_node : Format.formatter -> Ast.head_node -> unit
val pp_head : Format.formatter -> Ast.head -> unit
val pp_statement : Format.formatter -> Ast.statement -> unit
val pp_game : Format.formatter -> Ast.game_decl -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val statement_to_string : Ast.statement -> string
val program_to_string : Ast.program -> string

val pp_precedence : Format.formatter -> Precedence.t -> unit
(** Text rendering of a precedence graph: vertices ([R_q] style) and
    edges with their direction ([->] forward, [-->] backward), as in
    Figure 14. *)

(** {1 Journal events}

    One-line human-readable renderings of the engine's event journal —
    the shared formatting behind the CLIs' trace output and the REPL's
    [:events] pager (see docs/OBSERVABILITY.md). *)

val pp_effect : Format.formatter -> Engine.effect -> unit
(** e.g. [+Out(x:1)], [-R x2], [open #4], [vote #4 (2 banked)],
    [dead #4 (timed out)], [payoff alice+1]. *)

val pp_event : Format.formatter -> Engine.event -> unit
(** One line: clock, rule label (or statement index), worker for
    human-caused events, valuation, then each effect. *)

val event_to_string : Engine.event -> string

val quality_json : Engine.t -> string
(** The engine's quality state as one JSON object:
    [{"workers": {w: {"reliability", "observations"}},
      "tasks": {id: {"relation", "votes", "uncertainty",
                     "posteriors": {attr: [{"value", "posterior"}]}}}}] —
    what [tweetpecker --quality-out] writes and the REPL's [:quality]
    prints. Shares {!Telemetry.json_escape} with the metrics/span
    printers. *)

(* Abstract interpretation for budget certificates. The domain, widening
   rule and certificate format are documented in docs/ANALYSIS.md; the
   interface comment in analysis.mli states the contract (total,
   deterministic, closed-world seeds). *)

module S = Set.Make (String)

type reason =
  | Standing
  | Open_cycle of string list
  | Value_cycle of string list

type card = Zero | Finite of int | Bounded_by_input | Unbounded of reason

(* Saturation ceiling for the finite arithmetic: Herbrand widening can
   produce |V|^arity, which must neither overflow nor render as a
   platform-dependent max_int. *)
let cap = 1_000_000_000

let norm n = if n <= 0 then Zero else Finite (min n cap)

let card_add a b =
  match (a, b) with
  | Zero, x | x, Zero -> x
  | Unbounded r, _ | _, Unbounded r -> Unbounded r
  | Bounded_by_input, _ | _, Bounded_by_input -> Bounded_by_input
  | Finite a, Finite b -> norm (if a > cap - b then cap else a + b)

(* A provably-empty factor annihilates even an unbounded one: zero
   instances of a standing task never issue. *)
let card_mul a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | Unbounded r, _ | _, Unbounded r -> Unbounded r
  | Bounded_by_input, _ | _, Bounded_by_input -> Bounded_by_input
  | Finite a, Finite b -> norm (if b <> 0 && a > cap / b then cap else a * b)

let card_join a b =
  match (a, b) with
  | Unbounded r, _ | _, Unbounded r -> Unbounded r
  | Bounded_by_input, _ | _, Bounded_by_input -> Bounded_by_input
  | Finite a, Finite b -> Finite (max a b)
  | Zero, x | x, Zero -> x

let pow v k =
  let v = min v cap in
  let rec go acc i =
    if i >= k then acc
    else if v <> 0 && acc > cap / v then cap
    else go (acc * v) (i + 1)
  in
  if k <= 0 then 1 else go 1 0

let finite = function Zero -> Some 0 | Finite n -> Some n | _ -> None

let cycle_to_string = function
  | [] -> ""
  | rels -> Printf.sprintf " via %s" (String.concat " -> " rels)

let reason_to_string = function
  | Standing -> "standing task"
  | Open_cycle c -> Printf.sprintf "open recursion%s" (cycle_to_string c)
  | Value_cycle c -> Printf.sprintf "value recursion%s" (cycle_to_string c)

let card_to_string = function
  | Zero -> "0"
  | Finite n -> Printf.sprintf "<= %d" n
  | Bounded_by_input -> "bounded-by-input"
  | Unbounded r -> Printf.sprintf "unbounded (%s)" (reason_to_string r)

type policy = { votes : int; scope : string list option }

let no_policy = { votes = 1; scope = None }

type task_bound = {
  tb_label : string;
  tb_span : Ast.span;
  tb_relation : string;
  tb_instances : card;
  tb_multiplier : card;
  tb_answers : card;
}

type certificate = {
  cert_relations : (string * card) list;
  cert_tasks : task_bound list;
  cert_total_tasks : card;
  cert_total_answers : card;
  cert_policy : string;
  cert_assumptions : string list;
}

(* -- Game-aspect desugaring (mirrors Engine.effective_statements) -------- *)

let path_relation_name game = "Path@" ^ game

let rewrite_atom game params (atom : Ast.atom) =
  if not (String.equal atom.Ast.pred "Path") then atom
  else
    {
      Ast.pred = path_relation_name game;
      args =
        List.map (fun p -> { Ast.attr = p; bind = Ast.Auto }) params @ atom.Ast.args;
    }

let rewrite_literal game params (l : Ast.literal) =
  match l.Ast.lit with
  | Ast.Pos a -> { l with Ast.lit = Ast.Pos (rewrite_atom game params a) }
  | Ast.Neg a -> { l with Ast.lit = Ast.Neg (rewrite_atom game params a) }
  | Ast.Cmp _ | Ast.Call _ -> l

let rewrite_head game params (h : Ast.head) =
  match h.Ast.head with
  | Ast.Head_atom { atom; kind } ->
      { h with Ast.head = Ast.Head_atom { atom = rewrite_atom game params atom; kind } }
  | Ast.Head_payoff _ -> h

let rewrite_statement game params (s : Ast.statement) =
  {
    s with
    Ast.heads = List.map (rewrite_head game params) s.heads;
    body = List.map (rewrite_literal game params) s.body;
  }

(* Every effective statement with the Skolem parameters implicitly bound
   in it (game rules only; the engine passes them through the Path args). *)
let effective (p : Ast.program) =
  List.map (fun s -> (s, [])) p.Ast.statements
  @ List.concat_map
      (fun (g : Ast.game_decl) ->
        List.map
          (fun s ->
            (rewrite_statement g.Ast.game_name g.Ast.game_params s, g.Ast.game_params))
          (g.Ast.path_rules @ g.Ast.payoff_rules))
      p.Ast.games

(* -- Shared traversals (the same binding fixpoint as Lint) ---------------- *)

let atom_vars_bound (a : Ast.atom) =
  List.concat_map
    (fun (arg : Ast.arg) ->
      arg.Ast.attr
      ::
      (match arg.Ast.bind with Ast.Auto -> [] | Ast.Bound e -> Ast.expr_vars e))
    a.Ast.args

let body_bound ~init (body : Ast.literal list) =
  let bound = ref init in
  List.iter
    (fun (l : Ast.literal) ->
      match l.Ast.lit with
      | Ast.Pos a -> List.iter (fun v -> bound := S.add v !bound) (atom_vars_bound a)
      | Ast.Neg _ | Ast.Cmp _ | Ast.Call _ -> ())
    body;
  let closed e = List.for_all (fun v -> S.mem v !bound) (Ast.expr_vars e) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (l : Ast.literal) ->
        match l.Ast.lit with
        | Ast.Cmp (Ast.Var v, Ast.Eq, e) when (not (S.mem v !bound)) && closed e ->
            bound := S.add v !bound;
            changed := true
        | Ast.Cmp (e, Ast.Eq, Ast.Var v) when (not (S.mem v !bound)) && closed e ->
            bound := S.add v !bound;
            changed := true
        | _ -> ())
      body
  done;
  !bound

(* Relations a statement inserts tuples into, for cardinality purposes:
   Assert, Open and Update heads (Update inserts when the key is absent);
   payoff heads feed the engine-managed Payoff table. Deletes only
   shrink. *)
let card_writes (s : Ast.statement) =
  List.filter_map
    (fun (h : Ast.head) ->
      match h.Ast.head with
      | Ast.Head_atom { atom; kind = Ast.Assert | Ast.Open _ | Ast.Update } ->
          Some atom.Ast.pred
      | Ast.Head_atom { kind = Ast.Delete; _ } -> None
      | Ast.Head_payoff _ -> Some "Payoff")
    s.Ast.heads

let positive_reads (s : Ast.statement) =
  List.concat_map Ast.literal_positive_preds s.Ast.body

(* The engine makes an open tuple standing ({e repeatable}) when the head
   mentions the relation's auto-increment attribute but the body leaves it
   unbound: the machine then mints a fresh key per answer and the task
   never retires. *)
let standing autos bound (atom : Ast.atom) =
  match Hashtbl.find_opt autos atom.Ast.pred with
  | None -> false
  | Some auto ->
      List.exists
        (fun (arg : Ast.arg) ->
          String.equal arg.Ast.attr auto
          &&
          match arg.Ast.bind with
          | Ast.Auto -> not (S.mem arg.Ast.attr bound)
          | Ast.Bound e -> List.exists (fun v -> not (S.mem v bound)) (Ast.expr_vars e))
        atom.Ast.args

(* -- Value generation (breaks the Herbrand widening) ---------------------- *)

let expr_builds = function
  | Ast.Const _ | Ast.Var _ -> false
  | Ast.List _ | Ast.Binop _ -> true

let head_builds (h : Ast.head) =
  match h.Ast.head with
  | Ast.Head_atom { atom; _ } ->
      List.exists
        (fun (arg : Ast.arg) ->
          match arg.Ast.bind with Ast.Auto -> false | Ast.Bound e -> expr_builds e)
        atom.Ast.args
  | Ast.Head_payoff updates -> List.exists (fun (_, e) -> expr_builds e) updates

let body_builds (s : Ast.statement) =
  List.exists
    (fun (l : Ast.literal) ->
      match l.Ast.lit with
      | Ast.Cmp (a, Ast.Eq, b) -> expr_builds a || expr_builds b
      | _ -> false)
    s.Ast.body

(* -- The analysis --------------------------------------------------------- *)

let stmt_key (s : Ast.statement) i =
  match s.Ast.label with Some l -> l | None -> Printf.sprintf "#%d" (i + 1)

let policy_to_string policy =
  if policy.votes <= 1 then "one answer per task"
  else
    Printf.sprintf "up to %d answers per undesignated task%s" policy.votes
      (match policy.scope with
      | None -> ""
      | Some rs -> " on " ^ String.concat ", " rs)

let analyze ?(policy = no_policy) ?(live_counts = []) (p : Ast.program) =
  let rules = effective p in
  let arr = Array.of_list rules in
  let n = Array.length arr in
  let stmts = List.map fst rules in
  (* Auto-increment attributes: explicit declarations, plus the [order]
     column the engine synthesises for each game's path table. *)
  let autos : (string, string) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.schema_decl) ->
      List.iter
        (fun (a, _key, auto) ->
          if auto && not (Hashtbl.mem autos d.Ast.rel_name) then
            Hashtbl.add autos d.Ast.rel_name a)
        d.Ast.rel_attrs)
    p.Ast.schemas;
  let declared = S.of_list (List.map (fun (d : Ast.schema_decl) -> d.Ast.rel_name) p.Ast.schemas) in
  List.iter
    (fun (g : Ast.game_decl) ->
      let r = path_relation_name g.Ast.game_name in
      if (not (S.mem r declared)) && not (Hashtbl.mem autos r) then
        Hashtbl.add autos r "order")
    p.Ast.games;
  (* Attribute inventories, for arities. *)
  let attrs : (string, S.t ref) Hashtbl.t = Hashtbl.create 16 in
  let note r a =
    match Hashtbl.find_opt attrs r with
    | Some set -> set := S.add a !set
    | None -> Hashtbl.add attrs r (ref (S.singleton a))
  in
  List.iter
    (fun (d : Ast.schema_decl) ->
      List.iter (fun (a, _, _) -> note d.Ast.rel_name a) d.Ast.rel_attrs)
    p.Ast.schemas;
  note "Payoff" "player";
  note "Payoff" "score";
  List.iter
    (fun (g : Ast.game_decl) ->
      let r = path_relation_name g.Ast.game_name in
      List.iter (note r) g.Ast.game_params;
      note r "order";
      note r "date")
    p.Ast.games;
  let scan_atom (a : Ast.atom) =
    List.iter (fun (arg : Ast.arg) -> note a.Ast.pred arg.Ast.attr) a.Ast.args
  in
  List.iter
    (fun (s : Ast.statement) ->
      List.iter
        (fun (h : Ast.head) ->
          match h.Ast.head with
          | Ast.Head_atom { atom; _ } -> scan_atom atom
          | Ast.Head_payoff _ -> ())
        s.Ast.heads;
      List.iter
        (fun (l : Ast.literal) ->
          match l.Ast.lit with
          | Ast.Pos a | Ast.Neg a -> scan_atom a
          | Ast.Cmp _ | Ast.Call _ -> ())
        s.Ast.body)
    stmts;
  let arity r =
    match Hashtbl.find_opt attrs r with
    | Some set -> max 1 (S.cardinal !set)
    | None -> 1
  in
  (* The program's constant pool, for the Herbrand widening. *)
  let consts = ref [] in
  let rec scan_expr = function
    | Ast.Const v -> consts := v :: !consts
    | Ast.Var _ -> ()
    | Ast.List es -> List.iter scan_expr es
    | Ast.Binop (_, a, b) -> scan_expr a; scan_expr b
  in
  let scan_atom_exprs (a : Ast.atom) =
    List.iter
      (fun (arg : Ast.arg) ->
        match arg.Ast.bind with Ast.Auto -> () | Ast.Bound e -> scan_expr e)
      a.Ast.args
  in
  List.iter
    (fun (s : Ast.statement) ->
      List.iter
        (fun (h : Ast.head) ->
          match h.Ast.head with
          | Ast.Head_atom { atom; kind } ->
              scan_atom_exprs atom;
              (match kind with Ast.Open (Some e) -> scan_expr e | _ -> ())
          | Ast.Head_payoff updates -> List.iter (fun (_, e) -> scan_expr e) updates)
        s.Ast.heads;
      List.iter
        (fun (l : Ast.literal) ->
          match l.Ast.lit with
          | Ast.Pos a | Ast.Neg a -> scan_atom_exprs a
          | Ast.Cmp (a, _, b) -> scan_expr a; scan_expr b
          | Ast.Call (_, es) -> List.iter scan_expr es)
        s.Ast.body)
    stmts;
  let n_consts = List.length (List.sort_uniq compare !consts) in
  (* Seeds. *)
  let has_fact = Hashtbl.create 8 in
  List.iter
    (fun (s : Ast.statement) ->
      if s.Ast.body = [] then
        List.iter
          (fun (h : Ast.head) ->
            match h.Ast.head with
            | Ast.Head_atom { atom; kind = Ast.Assert | Ast.Update } ->
                Hashtbl.replace has_fact atom.Ast.pred ()
            | _ -> ())
          s.Ast.heads)
    stmts;
  let cards : (string, card) Hashtbl.t = Hashtbl.create 16 in
  let card_of r = Option.value (Hashtbl.find_opt cards r) ~default:Zero in
  let bump r c = Hashtbl.replace cards r (card_add (card_of r) c) in
  let input_relations =
    List.sort_uniq String.compare
      (List.filter (fun r -> not (Hashtbl.mem has_fact r)) (S.elements declared))
  in
  List.iter (fun r -> Hashtbl.replace cards r Bounded_by_input) input_relations;
  List.iter
    (fun (r, count) -> Hashtbl.replace cards r (card_join (card_of r) (norm count)))
    live_counts;
  (* Statement machinery shared by the component walk and the task pass. *)
  let params_of i = S.of_list (snd arr.(i)) in
  let instances (s : Ast.statement) =
    List.fold_left
      (fun acc (l : Ast.literal) ->
        match l.Ast.lit with
        | Ast.Pos a -> card_mul acc (card_of a.Ast.pred)
        | Ast.Neg _ | Ast.Cmp _ | Ast.Call _ -> acc)
      (Finite 1) s.Ast.body
  in
  let self_recursive (s : Ast.statement) =
    let writes = card_writes s in
    List.exists (fun r -> List.mem r writes) (positive_reads s)
  in
  (* Recursive strata: SCCs of the precedence graph restricted to
     positive reads, plus single statements that positively read a
     relation they write (build records no self-edges). *)
  let g = Precedence.build stmts in
  let comps = Precedence.sccs ~positive_only:true g in
  let wild_of = Array.make n None in
  let process_component comp =
    let stmt i = fst arr.(i) in
    let recursive =
      match comp with [ i ] -> self_recursive (stmt i) | _ -> List.length comp > 1
    in
    if not recursive then
      List.iter
        (fun i ->
          let s = stmt i in
          let inst = instances s in
          List.iter
            (fun (h : Ast.head) ->
              match h.Ast.head with
              | Ast.Head_payoff _ -> bump "Payoff" inst
              | Ast.Head_atom { atom; kind = Ast.Assert | Ast.Update } ->
                  bump atom.Ast.pred inst
              | Ast.Head_atom { atom; kind = Ast.Open _ } ->
                  if inst = Zero then ()
                  else if standing autos (body_bound ~init:(params_of i) s.Ast.body) atom
                  then bump atom.Ast.pred (Unbounded Standing)
                  else bump atom.Ast.pred inst
              | Ast.Head_atom { kind = Ast.Delete; _ } -> ())
            s.Ast.heads)
        comp
    else begin
      let members = List.map (fun i -> (i, stmt i)) comp in
      let writes =
        List.sort_uniq String.compare (List.concat_map (fun (_, s) -> card_writes s) members)
      in
      let reads =
        List.sort_uniq String.compare
          (List.concat_map (fun (_, s) -> positive_reads s) members)
      in
      (* The relations carrying the recursion, as the witness cycle. *)
      let cycle = List.filter (fun r -> List.mem r writes) reads in
      let has_open =
        List.exists
          (fun (_, (s : Ast.statement)) ->
            List.exists
              (fun (h : Ast.head) ->
                match h.Ast.head with
                | Ast.Head_atom { kind = Ast.Open _; _ } -> true
                | _ -> false)
              s.Ast.heads)
          members
      in
      let builds =
        List.exists
          (fun (_, (s : Ast.statement)) ->
            List.exists head_builds s.Ast.heads
            || body_builds s
            || List.exists (fun r -> Hashtbl.mem autos r) (card_writes s))
          members
      in
      if has_open || builds then begin
        let reason = if has_open then Open_cycle cycle else Value_cycle cycle in
        List.iter (fun (i, _) -> wild_of.(i) <- Some reason) members;
        List.iter (fun r -> bump r (Unbounded reason)) writes
      end
      else begin
        (* Tame stratum: every derivable value already lives in the
           program's constant pool or in a tuple of an external input, so
           each member relation holds at most |V|^arity tuples. *)
        let externals = List.filter (fun r -> not (List.mem r writes)) reads in
        let v =
          List.fold_left
            (fun acc r -> card_add acc (card_mul (card_of r) (Finite (arity r))))
            (norm n_consts) externals
        in
        List.iter
          (fun r ->
            match v with
            | Zero -> ()
            | Finite v -> bump r (norm (pow v (arity r)))
            | Bounded_by_input -> bump r Bounded_by_input
            | Unbounded reason -> bump r (Unbounded reason))
          writes
      end
    end
  in
  List.iter process_component comps;
  (* Task-emission bounds, against the final relation cardinalities. *)
  let scope_ok r =
    match policy.scope with None -> true | Some rs -> List.mem r rs
  in
  let tasks = ref [] in
  Array.iteri
    (fun i ((s : Ast.statement), _) ->
      List.iter
        (fun (h : Ast.head) ->
          match h.Ast.head with
          | Ast.Head_atom { atom; kind = Ast.Open worker } ->
              let inst =
                match wild_of.(i) with
                | Some reason -> Unbounded reason
                | None -> instances s
              in
              let multiplier =
                if standing autos (body_bound ~init:(params_of i) s.Ast.body) atom
                then Unbounded Standing
                else if worker <> None then Finite 1
                else if policy.votes > 1 && scope_ok atom.Ast.pred then
                  Finite policy.votes
                else Finite 1
              in
              tasks :=
                {
                  tb_label = stmt_key s i;
                  tb_span = h.Ast.head_span;
                  tb_relation = atom.Ast.pred;
                  tb_instances = inst;
                  tb_multiplier = multiplier;
                  tb_answers = card_mul inst multiplier;
                }
                :: !tasks
          | _ -> ())
        s.Ast.heads)
    arr;
  let tasks = List.rev !tasks in
  let relations =
    let names = Hashtbl.fold (fun r _ acc -> S.add r acc) attrs S.empty in
    let names = Hashtbl.fold (fun r _ acc -> S.add r acc) cards names in
    List.map (fun r -> (r, card_of r)) (S.elements names)
  in
  let assumptions =
    ("closed world: tuples come only from this program's facts, rules and open answers"
     ::
     List.map
       (fun r ->
         Printf.sprintf "%s: declared input relation, bounded by whatever the host supplies" r)
       input_relations)
    @ (if live_counts = [] then []
       else [ "seeds joined with live database cardinalities" ])
  in
  {
    cert_relations = relations;
    cert_tasks = tasks;
    cert_total_tasks =
      List.fold_left (fun acc t -> card_add acc t.tb_instances) Zero tasks;
    cert_total_answers =
      List.fold_left (fun acc t -> card_add acc t.tb_answers) Zero tasks;
    cert_policy = policy_to_string policy;
    cert_assumptions = List.sort_uniq String.compare assumptions;
  }

(* -- Rendering ------------------------------------------------------------ *)

let certificate_to_string c =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "budget certificate";
  line "  policy: %s" c.cert_policy;
  line "  total task instances: %s" (card_to_string c.cert_total_tasks);
  line "  total answers:        %s" (card_to_string c.cert_total_answers);
  (match c.cert_tasks with
  | [] -> line "tasks: none (no open statements)"
  | tasks ->
      line "tasks:";
      let width =
        List.fold_left
          (fun w t -> max w (String.length t.tb_label + String.length t.tb_relation + 1))
          0 tasks
      in
      List.iter
        (fun t ->
          line "  %-*s  instances %s, per-instance %s, answers %s" width
            (t.tb_label ^ " " ^ t.tb_relation)
            (card_to_string t.tb_instances)
            (card_to_string t.tb_multiplier)
            (card_to_string t.tb_answers))
        tasks);
  (match c.cert_relations with
  | [] -> ()
  | rels ->
      line "relation cardinalities:";
      let width =
        List.fold_left (fun w (r, _) -> max w (String.length r)) 0 rels
      in
      List.iter (fun (r, card) -> line "  %-*s  %s" width r (card_to_string card)) rels);
  line "assumptions:";
  List.iter (fun a -> line "  - %s" a) c.cert_assumptions;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let card_json = function
  | Zero -> {|{"kind":"finite","max":0}|}
  | Finite n -> Printf.sprintf {|{"kind":"finite","max":%d}|} n
  | Bounded_by_input -> {|{"kind":"bounded-by-input"}|}
  | Unbounded reason ->
      let kind, cycle =
        match reason with
        | Standing -> ("standing", [])
        | Open_cycle c -> ("open-cycle", c)
        | Value_cycle c -> ("value-cycle", c)
      in
      Printf.sprintf {|{"kind":"unbounded","reason":"%s","cycle":[%s]}|} kind
        (String.concat ","
           (List.map (fun r -> "\"" ^ json_escape r ^ "\"") cycle))

let certificate_json c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"policy\":\"";
  Buffer.add_string buf (json_escape c.cert_policy);
  Buffer.add_string buf "\",\"relations\":{";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (r, card) -> Printf.sprintf "\"%s\":%s" (json_escape r) (card_json card))
          c.cert_relations));
  Buffer.add_string buf "},\"tasks\":[";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun t ->
            Printf.sprintf
              {|{"label":"%s","relation":"%s","instances":%s,"per_instance":%s,"answers":%s}|}
              (json_escape t.tb_label) (json_escape t.tb_relation)
              (card_json t.tb_instances)
              (card_json t.tb_multiplier)
              (card_json t.tb_answers))
          c.cert_tasks));
  Buffer.add_string buf "],\"total_tasks\":";
  Buffer.add_string buf (card_json c.cert_total_tasks);
  Buffer.add_string buf ",\"total_answers\":";
  Buffer.add_string buf (card_json c.cert_total_answers);
  Buffer.add_string buf ",\"assumptions\":[";
  Buffer.add_string buf
    (String.concat ","
       (List.map (fun a -> "\"" ^ json_escape a ^ "\"") c.cert_assumptions));
  Buffer.add_string buf "]}";
  Buffer.contents buf

(** Hand-written lexer for CyLog source text. *)

type token =
  | IDENT of string  (** lowercase-initial identifier: variables, builtins *)
  | UIDENT of string  (** uppercase-initial identifier: relations, labels *)
  | STRING of string
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | ARROW  (** [<-] *)
  | SLASH  (** introduces head annotations: [/open], [/update], [/delete] *)
  | EQ
  | NEQ  (** [!=] or the paper's [!] shorthand *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | PLUSEQ  (** [+=] in payoff heads *)
  | EOF

(** A token with its exact source range: [line]/[col] is the first
    character (both 1-based) and [end_line]/[end_col] the position just
    past the last character — exact for multi-character operators and
    string literals. *)
type located = {
  token : token;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
}

exception Error of { line : int; col : int; message : string }

val tokenize : string -> located list
(** Lex a whole source text. Identifiers may contain inner dots
    ([VE2.1]), [//] starts a line comment and [(* *)]-free C-style
    [/* ... */] comments are supported. @raise Error on bad input. *)

val pp_token : Format.formatter -> token -> unit
(** Token rendering for error messages. *)

exception Crashed
exception No_space

module type S = sig
  val mkdirp : string -> unit
  val list_dir : string -> string list
  val exists : string -> bool
  val size : string -> int
  val read_file : string -> string
  val append : string -> string -> unit
  val fsync : string -> unit
  val fsync_dir : string -> unit
  val truncate : string -> int -> unit
  val delete : string -> unit
  val rename : string -> string -> unit
  val close : string -> unit
end

(* --- CRC-32 (IEEE 802.3) ---------------------------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_sub s ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let crc32 s = crc32_sub s ~pos:0 ~len:(String.length s)

(* --- POSIX files ------------------------------------------------------------ *)

module Posix : S = struct
  (* Append-mode descriptors cached per path; all other operations go
     through the path directly. One global table is fine: paths are
     absolute enough per journal directory, and the journal closes its
     files on rotation/compaction. *)
  let handles : (string, Unix.file_descr) Hashtbl.t = Hashtbl.create 8

  let rec mkdirp path =
    if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
      mkdirp (Filename.dirname path);
      try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let list_dir dir =
    if Sys.file_exists dir && Sys.is_directory dir then
      List.sort compare (Array.to_list (Sys.readdir dir))
    else []

  let exists = Sys.file_exists

  let size path = (Unix.stat path).Unix.st_size

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let fd path =
    match Hashtbl.find_opt handles path with
    | Some fd -> fd
    | None ->
        let fd =
          Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644
        in
        Hashtbl.replace handles path fd;
        fd

  let append path s =
    let fd = fd path in
    let b = Bytes.unsafe_of_string s in
    let n = Bytes.length b in
    let written = ref 0 in
    while !written < n do
      match Unix.write fd b !written (n - !written) with
      | w -> written := !written + w
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> raise No_space
    done

  let fsync path = Unix.fsync (fd path)

  (* fsync on a file covers its data, not its directory entry: segment
     creation, the compaction rename and segment deletion are durable
     only once the directory itself is synced. Some filesystems refuse
     fsync on a directory descriptor (EINVAL); there the entry metadata
     is as durable as that filesystem can make it. *)
  let fsync_dir dir =
    let fd = Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try Unix.fsync fd
        with Unix.Unix_error ((Unix.EINVAL | Unix.EBADF), _, _) -> ())

  let close path =
    match Hashtbl.find_opt handles path with
    | Some fd ->
        Hashtbl.remove handles path;
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ()

  let truncate path len =
    close path;
    Unix.truncate path len

  let delete path =
    close path;
    if Sys.file_exists path then Sys.remove path

  let rename src dst =
    close src;
    close dst;
    Sys.rename src dst
end

(* --- In-memory simulator with fault injection -------------------------------- *)

module Sim = struct
  type tail = Drop_unsynced | Torn of int | Garbage of int

  type plan = {
    crash_at_op : int option;
    tail : tail;
    no_space_after : int option;
    delayed_fsync : float;
    seed : int;
  }

  let default_plan =
    { crash_at_op = None; tail = Drop_unsynced; no_space_after = None;
      delayed_fsync = 0.0; seed = 0 }

  (* [entry_durable]: the directory entry naming this file survived an
     fsync_dir. Data durability ([synced]) is tracked separately, as
     POSIX separates them. *)
  type file = { mutable data : Buffer.t; mutable synced : int; mutable entry_durable : bool }

  type t = {
    files : (string, file) Hashtbl.t;
    dirs : (string, unit) Hashtbl.t;
    mutable ops : int;
    mutable bytes_left : int option;
    plan : plan;
    rng : Random.State.t;
    mutable crashed : bool;
    mutable crash_image : (string * string) list;  (* path -> surviving bytes *)
  }

  let create ?(plan = default_plan) () =
    {
      files = Hashtbl.create 8;
      dirs = Hashtbl.create 4;
      ops = 0;
      bytes_left = plan.no_space_after;
      plan;
      rng = Random.State.make [| plan.seed; 0x517A |];
      crashed = false;
      crash_image = [];
    }

  let ops t = t.ops
  let crashed t = t.crashed

  let garbage_bytes = "\xff\xde\xad\xbe\xef\xff\x00\x7f"

  (* The byte image a disk presents after the crash, under adversarial
     metadata writeback: entry *removals* (delete, rename-away) are
     treated as already durable, while entry *additions* are durable
     only once fsync_dir runs — so a file created or renamed into place
     since the last directory sync vanishes entirely, whatever its data
     fsyncs say. Every surviving file keeps its fsynced prefix; only the
     in-flight file (the append racing the crash, if any) keeps part of
     its unsynced region, per the plan's [tail] mode. *)
  let build_crash_image t ~in_flight =
    Hashtbl.fold
      (fun path f acc ->
        if not f.entry_durable then acc
        else
          let all = Buffer.contents f.data in
          let synced = String.sub all 0 (min f.synced (String.length all)) in
          let surviving =
            match in_flight with
            | Some (p, extra) when String.equal p path ->
                let unsynced =
                  String.sub all f.synced (String.length all - f.synced) ^ extra
                in
                let keep n = String.sub unsynced 0 (min n (String.length unsynced)) in
                (match t.plan.tail with
                | Drop_unsynced -> synced
                | Torn n -> synced ^ keep n
                | Garbage n -> synced ^ keep n ^ garbage_bytes)
            | _ -> synced
          in
          (path, surviving) :: acc)
      t.files []

  (* Count one operation; fire the crash when the countdown hits.
     [in_flight] names the file (and extra bytes) being appended when the
     crash interrupts an append. *)
  let op ?in_flight t =
    if t.crashed then raise Crashed;
    t.ops <- t.ops + 1;
    match t.plan.crash_at_op with
    | Some c when t.ops >= c ->
        t.crash_image <- build_crash_image t ~in_flight;
        t.crashed <- true;
        raise Crashed
    | _ -> ()

  let find t path =
    match Hashtbl.find_opt t.files path with
    | Some f -> f
    | None -> raise (Sys_error (path ^ ": no such file (sim)"))

  let after_crash t =
    if not t.crashed then invalid_arg "Storage.Sim.after_crash: not crashed";
    let fresh = create () in
    List.iter
      (fun (path, contents) ->
        let data = Buffer.create (String.length contents + 64) in
        Buffer.add_string data contents;
        Hashtbl.replace fresh.files path
          { data; synced = String.length contents; entry_durable = true })
      t.crash_image;
    Hashtbl.iter (fun d () -> Hashtbl.replace fresh.dirs d ()) t.dirs;
    fresh

  let copy ?plan t =
    let fresh = create ?plan () in
    Hashtbl.iter
      (fun path f ->
        let contents = Buffer.contents f.data in
        let data = Buffer.create (String.length contents + 64) in
        Buffer.add_string data contents;
        Hashtbl.replace fresh.files path
          { data; synced = String.length contents; entry_durable = true })
      t.files;
    Hashtbl.iter (fun d () -> Hashtbl.replace fresh.dirs d ()) t.dirs;
    fresh

  let storage t : (module S) =
    (module struct
      let mkdirp dir = Hashtbl.replace t.dirs dir ()

      let list_dir dir =
        let prefix = if dir = "" || dir.[String.length dir - 1] = '/' then dir else dir ^ "/" in
        Hashtbl.fold
          (fun path _ acc ->
            let n = String.length prefix in
            if String.length path > n && String.sub path 0 n = prefix
               && not (String.contains (String.sub path n (String.length path - n)) '/')
            then String.sub path n (String.length path - n) :: acc
            else acc)
          t.files []
        |> List.sort compare

      let exists path = Hashtbl.mem t.files path || Hashtbl.mem t.dirs path
      let size path = Buffer.length (find t path).data
      let read_file path = Buffer.contents (find t path).data

      let append path s =
        (* Short-write accounting happens before the crash check so an
           ENOSPC append is itself a crashable operation. *)
        let s, enospc =
          match t.bytes_left with
          | Some left when String.length s > left ->
              t.bytes_left <- Some 0;
              (String.sub s 0 left, true)
          | Some left ->
              t.bytes_left <- Some (left - String.length s);
              (s, false)
          | None -> (s, false)
        in
        op t ~in_flight:(path, s);
        let f =
          match Hashtbl.find_opt t.files path with
          | Some f -> f
          | None ->
              let f = { data = Buffer.create 256; synced = 0; entry_durable = false } in
              Hashtbl.replace t.files path f;
              f
        in
        Buffer.add_string f.data s;
        if enospc then raise No_space

      let fsync path =
        op t;
        let f = find t path in
        if not (t.plan.delayed_fsync > 0.0
                && Random.State.float t.rng 1.0 < t.plan.delayed_fsync)
        then f.synced <- Buffer.length f.data

      (* Commit the directory's current entry set: pending entry
         additions (creates and rename targets) become durable. *)
      let fsync_dir dirpath =
        op t;
        Hashtbl.iter
          (fun p f ->
            if String.equal (Filename.dirname p) dirpath then f.entry_durable <- true)
          t.files

      let truncate path len =
        op t;
        let f = find t path in
        let kept = String.sub (Buffer.contents f.data) 0 (min len (Buffer.length f.data)) in
        let data = Buffer.create (String.length kept + 64) in
        Buffer.add_string data kept;
        f.data <- data;
        f.synced <- min f.synced len

      let delete path =
        op t;
        Hashtbl.remove t.files path

      let rename src dst =
        op t;
        let f = find t src in
        Hashtbl.remove t.files src;
        (* The bytes travel with the inode, but the [dst] entry is new
           metadata — durable only after fsync_dir. Adversarial
           writeback: a crash before that sync loses the file outright
           (the removal of [src] counts as durable, the addition of
           [dst] does not). *)
        f.entry_durable <- false;
        Hashtbl.replace t.files dst f

      let close _ = ()
    end)
end

(* Engine telemetry: metrics registry + deterministic tracing spans.
   See telemetry.mli for the contract. Everything here is stdlib-only and
   wall-clock-free: timestamps are the engine's logical clock and span ids
   are sequence counters, so traces and registries are stable under
   journal replay. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

module Metrics = struct
  type histogram = {
    bounds : int array;
    counts : int array;
    sum : int;
    count : int;
  }

  (* Mutable internals; [histogram] above is the frozen read-side view. *)
  type hist_cell = {
    h_bounds : int array;
    h_counts : int array;
    mutable h_sum : int;
    mutable h_count : int;
  }

  type t = {
    mutable on : bool;
    cs : (string, int ref) Hashtbl.t;
    gs : (string, int ref) Hashtbl.t;
    hs : (string, hist_cell) Hashtbl.t;
  }

  let default_bounds = [| 1; 2; 5; 10; 25; 50; 100; 250; 1000 |]

  let create () =
    { on = true; cs = Hashtbl.create 32; gs = Hashtbl.create 8; hs = Hashtbl.create 8 }

  let enabled t = t.on
  let set_enabled t b = t.on <- b

  let incr t ?(by = 1) name =
    if t.on then
      match Hashtbl.find_opt t.cs name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.cs name (ref by)

  let set_gauge t name v =
    if t.on then
      match Hashtbl.find_opt t.gs name with
      | Some r -> r := v
      | None -> Hashtbl.add t.gs name (ref v)

  let observe t name v =
    if t.on then begin
      let cell =
        match Hashtbl.find_opt t.hs name with
        | Some c -> c
        | None ->
            let c =
              {
                h_bounds = default_bounds;
                h_counts = Array.make (Array.length default_bounds + 1) 0;
                h_sum = 0;
                h_count = 0;
              }
            in
            Hashtbl.add t.hs name c;
            c
      in
      let n = Array.length cell.h_bounds in
      let i = ref 0 in
      while !i < n && v > cell.h_bounds.(!i) do
        Stdlib.incr i
      done;
      cell.h_counts.(!i) <- cell.h_counts.(!i) + 1;
      cell.h_sum <- cell.h_sum + v;
      cell.h_count <- cell.h_count + 1
    end

  let counter t name =
    match Hashtbl.find_opt t.cs name with Some r -> !r | None -> 0

  let gauge t name =
    match Hashtbl.find_opt t.gs name with Some r -> Some !r | None -> None

  let sorted_of_tbl tbl read =
    Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let counters t = sorted_of_tbl t.cs (fun r -> !r)
  let gauges t = sorted_of_tbl t.gs (fun r -> !r)

  let freeze c =
    {
      bounds = Array.copy c.h_bounds;
      counts = Array.copy c.h_counts;
      sum = c.h_sum;
      count = c.h_count;
    }

  let histograms t = sorted_of_tbl t.hs freeze
  let histogram t name = Option.map freeze (Hashtbl.find_opt t.hs name)

  (* Interpolated quantile over the fixed buckets: find the bucket holding
     rank [q * count] and interpolate linearly inside it. The overflow
     bucket has no upper bound, so a quantile landing there reports the
     last bound — a lower bound on the true value. *)
  let quantile (h : histogram) q =
    if h.count = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target = q *. float_of_int h.count in
      let n = Array.length h.bounds in
      let rec go i cum =
        if i > n then float_of_int h.bounds.(n - 1)
        else
          let c = h.counts.(i) in
          let cum' = cum +. float_of_int c in
          if c > 0 && target <= cum' then
            if i = n then float_of_int h.bounds.(n - 1)
            else
              let lo = if i = 0 then 0.0 else float_of_int h.bounds.(i - 1) in
              let hi = float_of_int h.bounds.(i) in
              let frac = Float.max 0.0 (Float.min 1.0 ((target -. cum) /. float_of_int c)) in
              lo +. ((hi -. lo) *. frac)
          else go (i + 1) cum'
      in
      go 0 0.0
    end

  let equal a b =
    counters a = counters b && gauges a = gauges b && histograms a = histograms b

  (* Fold [src] into [into] under an optional name prefix. Counters and
     gauges add; histogram cells add when the bucket bounds agree (they
     always do in practice — everything uses [default_bounds]). Goes
     through the public writers so a disabled target stays untouched. *)
  let merge ?(prefix = "") ~into src =
    let key k = if prefix = "" then k else prefix ^ k in
    List.iter (fun (k, v) -> incr into ~by:v (key k)) (counters src);
    List.iter
      (fun (k, v) ->
        let k = key k in
        let base = match gauge into k with Some g -> g | None -> 0 in
        set_gauge into k (base + v))
      (gauges src);
    if into.on then
      List.iter
        (fun (k, (h : histogram)) ->
          let k = key k in
          match Hashtbl.find_opt into.hs k with
          | None ->
              Hashtbl.add into.hs k
                {
                  h_bounds = Array.copy h.bounds;
                  h_counts = Array.copy h.counts;
                  h_sum = h.sum;
                  h_count = h.count;
                }
          | Some cell when cell.h_bounds = h.bounds ->
              Array.iteri
                (fun i c -> cell.h_counts.(i) <- cell.h_counts.(i) + c)
                h.counts;
              cell.h_sum <- cell.h_sum + h.sum;
              cell.h_count <- cell.h_count + h.count
          | Some _ -> ())
        (histograms src)

  let to_json t =
    let buf = Buffer.create 512 in
    let obj_of pairs emit =
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":" (json_escape k));
          emit v)
        pairs;
      Buffer.add_char buf '}'
    in
    Buffer.add_string buf "{\"counters\":";
    obj_of (counters t) (fun v -> Buffer.add_string buf (string_of_int v));
    Buffer.add_string buf ",\"gauges\":";
    obj_of (gauges t) (fun v -> Buffer.add_string buf (string_of_int v));
    Buffer.add_string buf ",\"histograms\":";
    obj_of (histograms t) (fun h ->
        let ints a =
          a |> Array.to_list |> List.map string_of_int |> String.concat ","
        in
        Buffer.add_string buf
          (Printf.sprintf "{\"bounds\":[%s],\"counts\":[%s],\"sum\":%d,\"count\":%d}"
             (ints h.bounds) (ints h.counts) h.sum h.count));
    Buffer.add_char buf '}';
    Buffer.contents buf

  let pp fmt t =
    let section title pairs emit =
      if pairs <> [] then begin
        Format.fprintf fmt "%s:@." title;
        List.iter (fun (k, v) -> Format.fprintf fmt "  %-44s %s@." k (emit v)) pairs
      end
    in
    section "counters" (counters t) string_of_int;
    section "gauges" (gauges t) string_of_int;
    section "histograms" (histograms t) (fun h ->
        if h.count = 0 then "count=0"
        else
          Printf.sprintf "count=%d sum=%d avg=%.1f p50=%.1f p95=%.1f p99=%.1f"
            h.count h.sum
            (float_of_int h.sum /. float_of_int h.count)
            (quantile h 0.50) (quantile h 0.95) (quantile h 0.99))
end

type span = {
  id : int;
  parent : int;
  name : string;
  started : int;
  ended : int;
  attrs : (string * string) list;
}

let span_to_json s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"started\":%d,\"ended\":%d"
       s.id s.parent (json_escape s.name) s.started s.ended);
  if s.attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      s.attrs;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

module Sink = struct
  type kind =
    | Null
    | Ring of { cap : int; buf : span array option ref; mutable next : int; mutable len : int }
    | Fn of (span -> unit)

  type t = kind ref

  let null : t = ref Null
  let is_null t = t == null

  let ring cap =
    let cap = max 1 cap in
    ref (Ring { cap; buf = ref None; next = 0; len = 0 })

  let fn f : t = ref (Fn f)
  let jsonl oc = fn (fun s -> output_string oc (span_to_json s); output_char oc '\n')

  let dummy_span = { id = 0; parent = 0; name = ""; started = 0; ended = 0; attrs = [] }

  let push t s =
    match !t with
    | Null -> ()
    | Fn f -> f s
    | Ring r ->
        let arr =
          match !(r.buf) with
          | Some a -> a
          | None ->
              let a = Array.make r.cap dummy_span in
              r.buf := Some a;
              a
        in
        arr.(r.next) <- s;
        r.next <- (r.next + 1) mod r.cap;
        if r.len < r.cap then r.len <- r.len + 1

  let contents t =
    match !t with
    | Null | Fn _ -> []
    | Ring r -> (
        match !(r.buf) with
        | None -> []
        | Some arr ->
            let start = (r.next - r.len + r.cap) mod r.cap in
            List.init r.len (fun i -> arr.((start + i) mod r.cap)))
end

type open_span = {
  o_id : int;
  o_parent : int;
  o_name : string;
  o_started : int;
  o_attrs : (string * string) list;
}

type t = {
  mutable snk : Sink.t;
  mets : Metrics.t;
  mutable seq : int;
  mutable stack : open_span list;
}

type handle = int

let none : handle = 0

let create ?(sink = Sink.null) () =
  { snk = sink; mets = Metrics.create (); seq = 0; stack = [] }

let metrics t = t.mets
let sink t = t.snk
let set_sink t s = t.snk <- s
let tracing t = not (Sink.is_null t.snk)

let enter t ?(attrs = []) name ~clock =
  if Sink.is_null t.snk then none
  else begin
    t.seq <- t.seq + 1;
    let parent = match t.stack with [] -> 0 | o :: _ -> o.o_id in
    t.stack <-
      { o_id = t.seq; o_parent = parent; o_name = name; o_started = clock; o_attrs = attrs }
      :: t.stack;
    t.seq
  end

let exit t ?(attrs = []) ?(discard = false) h ~clock =
  if h <> none then begin
    (* Pop through to [h]; anything above it was left open by mistake and
       is closed (emitted) at the same clock to keep the stack coherent. *)
    let rec pop () =
      match t.stack with
      | [] -> ()
      | o :: rest ->
          t.stack <- rest;
          let here = o.o_id = h in
          let extra = if here then attrs else [] in
          if not (here && discard) then
            Sink.push t.snk
              {
                id = o.o_id;
                parent = o.o_parent;
                name = o.o_name;
                started = o.o_started;
                ended = clock;
                attrs = o.o_attrs @ extra;
              };
          if not here then pop ()
    in
    pop ()
  end

let emit t ?parent ?(attrs = []) name ~clock =
  if not (Sink.is_null t.snk) then begin
    t.seq <- t.seq + 1;
    let parent =
      match parent with
      | Some p when p <> none -> p
      | Some _ | None -> ( match t.stack with [] -> 0 | o :: _ -> o.o_id)
    in
    Sink.push t.snk
      { id = t.seq; parent; name; started = clock; ended = clock; attrs }
  end

(** The formal model of Section 9.2: integration of human and machine
    computation as a consequence operator.

    A state [K = K_sure ⊕ K_open] holds the sure tuples (a database) and
    the open tuples (facts with open values awaiting human valuation).
    One application of the immediate integrated consequence operator
    [T_{P,S}]:

    - adds every {e immediate sure consequence} — heads of succeeding facts
      and rule instances whose bodies hold over [K_sure] alone (open tuples
      are never used for inference: the two-valued closed-world assumption
      over sure tuples);
    - adds every {e immediate open consequence} — open-headed instances,
      as open tuples;
    - turns the open tuples selected by the strategies [S] into sure tuples
      ({e immediate human consequences}).

    Iterating from the empty set yields the behaviour of [(P, S)]; a state
    with [T_{P,S}(K) = K] is its conclusion. When [S] is a game solution
    played by rational workers, these are the {e rational behaviour} and
    {e rational conclusion} defining the program's semantics.

    This batch operator covers the monotone fragment (facts, rules,
    open heads, payoffs). Programs using [/update] or [/delete] have
    inherently operational behaviour — use {!Engine} for those; {!supported}
    tells the two apart. *)

type state

type open_fact = {
  relation : string;
  bound : Reldb.Tuple.t;
  open_attrs : string list;
  asked : Reldb.Value.t option;
}

(** A strategy profile: given the current state, each invocation returns
    the valuations the crowd performs this round — pairs of an open fact
    (which must be pending in the state) and values for its open
    attributes. Returning [[]] means the humans are done. *)
type strategies = state -> (open_fact * (string * Reldb.Value.t) list) list

val supported : Ast.program -> bool
(** True iff the program avoids [/update] and [/delete] (batch semantics
    apply). *)

val initial : Ast.program -> state
(** The empty state [K = ∅] for a program. @raise Invalid_argument when
    {!supported} is false. *)

val sure : state -> Reldb.Database.t
(** [K_sure] as a database (a live view; treat as read-only). *)

val open_tuples : state -> open_fact list
(** [K_open], in first-derivation order. *)

val sure_count : state -> int
(** Number of sure tuples. *)

val apply : state -> strategies -> state
(** One application of [T_{P,S}]. The input state is not mutated. *)

val apply_delta : state -> strategies -> state
(** One application of [T_{P,S}], computed semi-naively: only instances
    whose support touches a row appended since the state's last
    application are enumerated (each positive atom takes a turn as the
    pinned delta atom, atoms to its left held below their frontiers), and
    discoveries are replayed in support-key order so open tuples keep
    first-derivation order. Over the supported fragment this equals
    {!apply} state for state: the database only grows, so instances over
    old rows cannot newly hold, and ones that already held contributed
    idempotent heads when discovered. Payoff statements — whose full-scan
    re-awards are {e not} idempotent — fall back to full enumeration. *)

val equal : state -> state -> bool
(** State equality (same sure tuples and same open tuples) — detects
    fixpoints. *)

val behaviour : ?bound:int -> Ast.program -> strategies -> state list * [ `Fixpoint | `Bound_reached ]
(** The behaviour of [(P, S)]: the sequence [K_0 = ∅, K_1, ...] up to a
    fixpoint (inclusive) or until [bound] applications (default 1000). *)

val behaviour_delta : ?bound:int -> Ast.program -> strategies -> state list * [ `Fixpoint | `Bound_reached ]
(** {!behaviour} with each step computed by {!apply_delta} — the
    semi-naive iteration of [T_{P,S}]. Produces the same state sequence
    as {!behaviour} over the supported fragment while joining only
    against each round's ΔR. *)

val conclusion : ?bound:int -> Ast.program -> strategies -> state option
(** The conclusion (final fixpoint state) if reached within [bound]. *)

type token =
  | IDENT of string
  | UIDENT of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | ARROW
  | SLASH
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | PLUSEQ
  | EOF

type located = {
  token : token;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
}

exception Error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st message = raise (Error { line = st.line; col = st.col; message })

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex_ident st =
  let start = st.pos in
  let rec loop () =
    match peek st with
    | Some c when is_ident_char c ->
        advance st;
        loop ()
    | Some '.' -> (
        (* Inner dots support rule labels such as [VE2.1]. *)
        match peek2 st with
        | Some c when is_ident_char c ->
            advance st;
            advance st;
            loop ()
        | _ -> ())
    | _ -> ()
  in
  loop ();
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec loop () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        loop ()
    | Some '.' when (match peek2 st with Some c -> is_digit c | None -> false) ->
        is_float := true;
        advance st;
        loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then FLOAT (float_of_string text) else INT (int_of_string text)

let lex_string st =
  (* Called at the opening quote. *)
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some c -> error st (Printf.sprintf "unknown string escape \\%c" c)
        | None -> error st "unterminated string literal");
        advance st;
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  STRING (Buffer.contents buf)

let skip_block_comment st =
  (* Called just after consuming "/*". *)
  let rec loop () =
    match (peek st, peek2 st) with
    | Some '*', Some '/' ->
        advance st;
        advance st
    | Some _, _ ->
        advance st;
        loop ()
    | None, _ -> error st "unterminated comment"
  in
  loop ()

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  (* [emit] runs after the token's characters have been consumed, so the
     lexer state holds the exclusive end position at that point. *)
  let emit token line col =
    tokens :=
      { token; line; col; end_line = st.line; end_col = st.col } :: !tokens
  in
  let rec loop () =
    let line = st.line and col = st.col in
    match peek st with
    | None -> emit EOF line col
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance st;
        loop ()
    | Some '/' -> (
        match peek2 st with
        | Some '/' ->
            while peek st <> None && peek st <> Some '\n' do
              advance st
            done;
            loop ()
        | Some '*' ->
            advance st;
            advance st;
            skip_block_comment st;
            loop ()
        | _ ->
            advance st;
            emit SLASH line col;
            loop ())
    | Some '"' ->
        emit (lex_string st) line col;
        loop ()
    | Some c when is_digit c ->
        emit (lex_number st) line col;
        loop ()
    | Some c when is_ident_start c ->
        let text = lex_ident st in
        let tok =
          if c >= 'A' && c <= 'Z' then UIDENT text else IDENT text
        in
        emit tok line col;
        loop ()
    | Some '<' -> (
        advance st;
        match peek st with
        | Some '-' ->
            advance st;
            emit ARROW line col;
            loop ()
        | Some '=' ->
            advance st;
            emit LE line col;
            loop ()
        | _ ->
            emit LT line col;
            loop ())
    | Some '>' -> (
        advance st;
        match peek st with
        | Some '=' ->
            advance st;
            emit GE line col;
            loop ()
        | _ ->
            emit GT line col;
            loop ())
    | Some '!' -> (
        advance st;
        match peek st with
        | Some '=' ->
            advance st;
            emit NEQ line col;
            loop ()
        | _ ->
            (* The paper writes [p1!p2] for inequality. *)
            emit NEQ line col;
            loop ())
    | Some '+' -> (
        advance st;
        match peek st with
        | Some '=' ->
            advance st;
            emit PLUSEQ line col;
            loop ()
        | _ ->
            emit PLUS line col;
            loop ())
    | Some c ->
        advance st;
        let tok =
          match c with
          | '(' -> LPAREN
          | ')' -> RPAREN
          | '[' -> LBRACKET
          | ']' -> RBRACKET
          | '{' -> LBRACE
          | '}' -> RBRACE
          | ',' -> COMMA
          | ';' -> SEMI
          | ':' -> COLON
          | '=' -> EQ
          | '-' -> MINUS
          | '*' -> STAR
          | _ -> error st (Printf.sprintf "unexpected character %C" c)
        in
        emit tok line col;
        loop ()
  in
  loop ();
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | UIDENT s -> Format.fprintf ppf "name %s" s
  | STRING s -> Format.fprintf ppf "string %S" s
  | INT i -> Format.fprintf ppf "integer %d" i
  | FLOAT f -> Format.fprintf ppf "float %g" f
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | COMMA -> Format.pp_print_string ppf "','"
  | SEMI -> Format.pp_print_string ppf "';'"
  | COLON -> Format.pp_print_string ppf "':'"
  | ARROW -> Format.pp_print_string ppf "'<-'"
  | SLASH -> Format.pp_print_string ppf "'/'"
  | EQ -> Format.pp_print_string ppf "'='"
  | NEQ -> Format.pp_print_string ppf "'!='"
  | LT -> Format.pp_print_string ppf "'<'"
  | LE -> Format.pp_print_string ppf "'<='"
  | GT -> Format.pp_print_string ppf "'>'"
  | GE -> Format.pp_print_string ppf "'>='"
  | PLUS -> Format.pp_print_string ppf "'+'"
  | MINUS -> Format.pp_print_string ppf "'-'"
  | STAR -> Format.pp_print_string ppf "'*'"
  | PLUSEQ -> Format.pp_print_string ppf "'+='"
  | EOF -> Format.pp_print_string ppf "end of input"

(** The engine's event vocabulary, as a leaf module.

    {!Cylog.Engine} re-exports every type here with a type equation
    ([type effect = Event.effect = ...]), so existing code keeps writing
    [Engine.Inserted] — this module only exists so layers that fold over
    the event log without driving the engine (notably {!Cylog.Monitor})
    can sit below Engine in the dependency order. *)

type open_id = int

(** A watchdog verdict (see {!Cylog.Monitor}). Every constructor carries
    both the observed value and the configured limit, so the journalled
    [Alert_fired] effect is self-contained and the recount fold reads the
    firing from the event instead of re-deciding it. *)
type alert =
  | Budget_exceeded of { spent : int; budget : int }
  | Latency_breached of { p99 : int; limit : int }
      (** [p99] is the end-to-end task-latency p99 (logical clock ticks),
          rounded to the nearest integer *)
  | Agreement_low of { pct : int; floor : int }
  | Dead_letters_high of { pct : int; ceiling : int }
  | Stalled of { samples : int; limit : int }
      (** [samples] consecutive monitor samples saw pending tasks but no
          progress *)

val alert_key : alert -> string
(** Stable, space-free identifier ([budget], [latency], [agreement],
    [dead_letter], [stall]) — metric-key suffixes and alert latching. *)

val alert_numbers : alert -> int * int
(** [(observed, limit)] — the comparison every alert expresses. *)

val alert_to_string : alert -> string
(** Human-readable one-liner. *)

(** Identical to the historical [Engine.effect], plus the monitor
    vocabulary: [Resolved] (a non-quorum task left the pending pool by
    answer — quorum resolutions keep their historical shape and are
    recognised by a [Vote_recorded] riding with other effects),
    [Sampled] (a monitor round-boundary sample) and [Alert_fired]. *)
type effect =
  | Inserted of string * Reldb.Tuple.t
  | Updated of string * Reldb.Tuple.t
  | Deleted of string * int
  | Awarded of (Reldb.Value.t * Reldb.Value.t) list
  | Open_created of open_id
  | No_effect
  | Vote_recorded of open_id * int
  | Dead_lettered of open_id * Lease.reason
  | Adaptive_resolved of { open_id : open_id; posterior_pct : int; escalated : bool }
  | Resolved of open_id
  | Sampled of { round : int }
  | Alert_fired of { round : int; alert : alert }

type event = {
  clock : int;
  statement : int;
  label : string option;
  valuation : (string * Reldb.Value.t) list;
  fired : bool;
  effects : effect list;
  by_human : Reldb.Value.t option;
}

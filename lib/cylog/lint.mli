(** Static analysis of CyLog programs.

    [check] runs six families of source-located checks over a parsed
    program, before any evaluation:

    - {b safety / range restriction}: every head variable, and every
      variable in a negated atom, comparison or builtin call, must be
      bound by a positive body atom (Section 4.1's well-formedness;
      open slots and delete wildcards are exempt);
    - {b stratification}: negation must not observe a relation a later
      statement still asserts into ({!Precedence.negation_violations},
      Section 9.1 / Figure 14) — updates are the paper's fill-if-absent
      idiom and stay legal;
    - {b schema conformance}: duplicate declarations, duplicate or
      multiply-auto attributes, atoms over attributes the declared schema
      lacks, and evidence-based column typing over constant arguments
      (sharing the engine's value typing via {!Reldb.Value.type_name});
    - {b liveness}: relations read but never defined, declared but never
      used, rules that can never fire, [/delete] heads over relations
      nothing populates;
    - {b game aspects}: payoff heads paying unbound variables or sitting
      outside game blocks, games without path rules, games whose path
      rules can never fire, open heads in dead game rules;
    - {b budget analysis} (the [A] codes): {!Analysis.analyze}'s budget
      certificate, reported per open head — unbounded task emission
      through recursion is an error with a witness cycle
      ([unbounded-task-emission]); standing or host-input-bounded opens
      warn that the budget needs a runtime cap ([budget-unknown]); an
      open whose body cardinality is provably 0 warns
      ([statically-dead-open]).

    Diagnostics carry the {!Ast.span} of the offending node. See
    docs/LINT.md for the full catalogue with triggering examples and
    docs/ANALYSIS.md for the abstract domain behind the [A] codes. *)

type severity = Error | Warning

type diagnostic = {
  code : string;  (** stable machine-readable code, e.g. ["unsafe-head-var"] *)
  severity : severity;
  span : Ast.span;  (** {!Ast.no_span} when no source location applies *)
  message : string;
}

exception Rejected of diagnostic list
(** Raised by {!Engine.load} in [`Strict] mode when [check] reports at
    least one error-severity diagnostic. Carries every diagnostic of the
    offending program (warnings included). *)

val all_codes : (string * severity * string) list
(** Every diagnostic code with its default severity and a one-line
    description — the catalogue behind docs/LINT.md and the CLI's [-W]
    validation. *)

val is_known_code : string -> bool

val check :
  ?overrides:(string * [ `Error | `Warning | `Off ]) list ->
  Ast.program ->
  diagnostic list
(** Run every check. Diagnostics are sorted by source position, then
    code. [overrides] remaps the severity of (or silences) specific codes
    — the CLI's [-W code=level] flags. *)

val errors : diagnostic list -> diagnostic list
(** The error-severity subset. *)

val has_errors : diagnostic list -> bool

val severity_name : severity -> string
(** ["error"] or ["warning"]. *)

val render : ?file:string -> diagnostic -> string
(** One line: [file:line:col-line:col: severity: code message] (position
    omitted for unknown spans). [file] defaults to ["<input>"]. *)

val render_json : ?file:string -> diagnostic list -> string
(** The whole list as one JSON array of objects with [file], [code],
    [severity], [message] and [span] fields. *)

let comma ppf () = Format.fprintf ppf ", "

let pp_binop ppf op =
  Format.pp_print_string ppf
    (match op with Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/")

(* Constants must re-lex to the same value: [%g] would print [1.0] as [1],
   which re-parses as an integer, so integral floats keep a trailing
   [.0]. *)
let pp_const ppf = function
  | Reldb.Value.Float f when Float.is_integer f && Float.abs f < 1e15 ->
      Format.fprintf ppf "%.1f" f
  | v -> Reldb.Value.pp ppf v

let rec pp_expr ppf = function
  | Ast.Const v -> pp_const ppf v
  | Ast.Var v -> Format.pp_print_string ppf v
  | Ast.List es ->
      Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:comma pp_expr) es
  | Ast.Binop (op, a, b) ->
      Format.fprintf ppf "(%a %a %a)" pp_expr a pp_binop op pp_expr b

let pp_arg ppf { Ast.attr; bind } =
  match bind with
  | Ast.Auto -> Format.pp_print_string ppf attr
  | Ast.Bound e -> Format.fprintf ppf "%s:%a" attr pp_expr e

let pp_atom ppf { Ast.pred; args } =
  Format.fprintf ppf "%s(%a)" pred (Format.pp_print_list ~pp_sep:comma pp_arg) args

let pp_cmpop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Ast.Eq -> "="
    | Ast.Neq -> "!="
    | Ast.Lt -> "<"
    | Ast.Le -> "<="
    | Ast.Gt -> ">"
    | Ast.Ge -> ">=")

let pp_lit ppf = function
  | Ast.Pos a -> pp_atom ppf a
  | Ast.Neg a -> Format.fprintf ppf "not %a" pp_atom a
  | Ast.Cmp (a, op, b) -> Format.fprintf ppf "%a %a %a" pp_expr a pp_cmpop op pp_expr b
  | Ast.Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f (Format.pp_print_list ~pp_sep:comma pp_expr) args

let pp_literal ppf (l : Ast.literal) = pp_lit ppf l.Ast.lit

let pp_head_node ppf = function
  | Ast.Head_atom { atom; kind } -> (
      pp_atom ppf atom;
      match kind with
      | Ast.Assert -> ()
      | Ast.Open None -> Format.pp_print_string ppf "/open"
      | Ast.Open (Some e) -> Format.fprintf ppf "/open[%a]" pp_expr e
      | Ast.Update -> Format.pp_print_string ppf "/update"
      | Ast.Delete -> Format.pp_print_string ppf "/delete")
  | Ast.Head_payoff updates ->
      let update ppf (player, delta) =
        Format.fprintf ppf "%s += %a" player pp_expr delta
      in
      Format.fprintf ppf "Payoff[%a]"
        (Format.pp_print_list ~pp_sep:comma update)
        updates

let pp_head ppf (h : Ast.head) = pp_head_node ppf h.Ast.head

let pp_statement ppf { Ast.label; heads; body; _ } =
  (match label with Some l -> Format.fprintf ppf "%s: " l | None -> ());
  Format.pp_print_list ~pp_sep:comma pp_head ppf heads;
  (match body with
  | [] -> ()
  | _ ->
      Format.fprintf ppf " <- %a" (Format.pp_print_list ~pp_sep:comma pp_literal) body);
  Format.pp_print_string ppf ";"

let pp_schema_decl ppf { Ast.rel_name; rel_attrs; _ } =
  let attr ppf (a, key, auto) =
    Format.pp_print_string ppf a;
    if key then Format.pp_print_string ppf " key";
    if auto then Format.pp_print_string ppf " auto"
  in
  Format.fprintf ppf "%s(%a);" rel_name (Format.pp_print_list ~pp_sep:comma attr) rel_attrs

let pp_game ppf { Ast.game_name; game_params; path_rules; payoff_rules } =
  Format.fprintf ppf "@[<v 2>game %s(%a) {" game_name
    (Format.pp_print_list ~pp_sep:comma Format.pp_print_string)
    game_params;
  Format.fprintf ppf "@,@[<v 2>path:";
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_statement s) path_rules;
  Format.fprintf ppf "@]@,@[<v 2>payoff:";
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_statement s) payoff_rules;
  Format.fprintf ppf "@]@]@,}"

let pp_program ppf { Ast.schemas; statements; games; views } =
  if schemas <> [] then begin
    Format.fprintf ppf "@[<v 2>schema:";
    List.iter (fun s -> Format.fprintf ppf "@,%a" pp_schema_decl s) schemas;
    Format.fprintf ppf "@]@,@,"
  end;
  Format.fprintf ppf "@[<v 2>rules:";
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_statement s) statements;
  Format.fprintf ppf "@]";
  if games <> [] then begin
    Format.fprintf ppf "@,@,@[<v 2>games:";
    List.iter (fun g -> Format.fprintf ppf "@,%a" pp_game g) games;
    Format.fprintf ppf "@]"
  end;
  if views <> [] then begin
    (* Raw templates: emitted verbatim (they are extracted again before
       lexing on re-parse). *)
    Format.fprintf ppf "@,@,views:";
    List.iter
      (fun (v : Ast.view) ->
        Format.fprintf ppf "@,view %s {@,%s@,}" v.view_name v.template)
      views
  end

let statement_to_string s = Format.asprintf "%a" pp_statement s
let program_to_string p = Format.asprintf "@[<v>%a@]" pp_program p

(* -- Precedence graphs --------------------------------------------------- *)

let pp_precedence ppf g =
  Format.fprintf ppf "@[<v>vertices:";
  for i = 0 to Precedence.size g - 1 do
    Format.fprintf ppf "@,  %s: %a"
      (Precedence.vertex_name g i)
      pp_statement
      (Precedence.statement_at g i)
  done;
  Format.fprintf ppf "@,edges:";
  List.iter
    (fun (e : Precedence.edge) ->
      Format.fprintf ppf "@,  %s %s %s (via %s)"
        (Precedence.vertex_name g e.src)
        (if e.forward then "->" else "-->")
        (Precedence.vertex_name g e.dst)
        e.via)
    (Precedence.edges g);
  Format.fprintf ppf "@]"

(* -- Journal events ------------------------------------------------------ *)

let pp_effect ppf (eff : Engine.effect) =
  match eff with
  | Engine.Inserted (rel, tuple) ->
      Format.fprintf ppf "+%s%s" rel (Reldb.Tuple.to_string tuple)
  | Engine.Updated (rel, tuple) ->
      Format.fprintf ppf "~%s%s" rel (Reldb.Tuple.to_string tuple)
  | Engine.Deleted (rel, n) -> Format.fprintf ppf "-%s x%d" rel n
  | Engine.Awarded deltas ->
      Format.fprintf ppf "payoff %s"
        (String.concat ","
           (List.map
              (fun (player, delta) ->
                let d = Reldb.Value.to_display delta in
                let d = if String.length d > 0 && d.[0] <> '-' then "+" ^ d else d in
                Reldb.Value.to_display player ^ d)
              deltas))
  | Engine.Open_created id -> Format.fprintf ppf "open #%d" id
  | Engine.No_effect -> Format.fprintf ppf "(no effect)"
  | Engine.Vote_recorded (id, n) -> Format.fprintf ppf "vote #%d (%d banked)" id n
  | Engine.Dead_lettered (id, reason) ->
      Format.fprintf ppf "dead #%d (%s)" id (Lease.reason_to_string reason)
  | Engine.Adaptive_resolved { open_id; posterior_pct; escalated } ->
      Format.fprintf ppf "%s #%d (posterior %d%%)"
        (if escalated then "escalated" else "early-stop")
        open_id posterior_pct
  | Engine.Resolved id -> Format.fprintf ppf "resolved #%d" id
  | Engine.Sampled { round } -> Format.fprintf ppf "sample (round %d)" round
  | Engine.Alert_fired { round; alert } ->
      Format.fprintf ppf "ALERT (round %d) %s" round (Event.alert_to_string alert)

let pp_event ppf (e : Engine.event) =
  let rule =
    match e.label with Some l -> l | None -> "#" ^ string_of_int e.statement
  in
  Format.fprintf ppf "c%-4d %-12s" e.clock rule;
  (match e.by_human with
  | Some w -> Format.fprintf ppf " by %-8s" (Reldb.Value.to_display w)
  | None -> ());
  if (not e.fired) && e.effects = [] then Format.fprintf ppf " (tail-filtered)";
  if e.valuation <> [] then
    Format.fprintf ppf " {%s}"
      (String.concat ", "
         (List.map
            (fun (attr, v) -> attr ^ "=" ^ Reldb.Value.to_display v)
            e.valuation));
  List.iter (fun eff -> Format.fprintf ppf "  %a" pp_effect eff) e.effects

let event_to_string e = Format.asprintf "%a" pp_event e

(* The quality report: per-worker reliability plus the posterior state of
   every pending task — one JSON object, shared by `tweetpecker
   --quality-out` and the REPL's `:quality`. Reuses Telemetry's escaper so
   all three JSON surfaces (metrics, spans, quality) speak one dialect. *)
let quality_json engine =
  let buf = Buffer.create 512 in
  let esc s = Telemetry.json_escape s in
  Buffer.add_string buf "{\"workers\":{";
  List.iteri
    (fun i (w, r, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":{\"reliability\":%.6f,\"observations\":%d}" (esc w) r n))
    (Engine.reliability_table engine);
  Buffer.add_string buf "},\"tasks\":{";
  List.iteri
    (fun i (o : Engine.open_tuple) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%d\":{\"relation\":\"%s\",\"votes\":%d,\"uncertainty\":%.6f,\"posteriors\":{"
           o.Engine.id (esc o.Engine.relation)
           (Engine.votes_banked engine o.Engine.id)
           (Engine.task_uncertainty engine o.Engine.id));
      List.iteri
        (fun j (attr, cands) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":[" (esc attr));
          List.iteri
            (fun k (v, p) ->
              if k > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf "{\"value\":\"%s\",\"posterior\":%.6f}"
                   (esc (Reldb.Value.to_display v)) p))
            cands;
          Buffer.add_char buf ']')
        (Engine.task_posteriors engine o.Engine.id);
      Buffer.add_string buf "}}")
    (Engine.pending engine);
  Buffer.add_string buf "}}";
  Buffer.contents buf

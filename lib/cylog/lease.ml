type reason = Timed_out | Rejected_answers of int | Declined

let reason_to_string = function
  | Timed_out -> "timed out"
  | Rejected_answers n -> Printf.sprintf "%d rejected answers" n
  | Declined -> "declined"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

type config = {
  ttl : int;
  max_timeouts : int;
  backoff_base : int;
  max_rejections : int;
}

let default_config = { ttl = 3; max_timeouts = 3; backoff_base = 1; max_rejections = 4 }

type lease = {
  open_id : int;
  worker : Reldb.Value.t;
  granted_at : int;
  deadline : int;
}

type task = {
  mutable holders : lease list;  (* grant order *)
  mutable timeouts : int;
  mutable rejections : int;
  mutable not_before : int;
}

type t = {
  config : config;
  tasks : (int, task) Hashtbl.t;
  dead : (int, reason) Hashtbl.t;
  mutable dead_order : int list;  (* reverse *)
  mutable now : int;
}

let create config =
  { config; tasks = Hashtbl.create 64; dead = Hashtbl.create 16; dead_order = []; now = 0 }

let config t = t.config
let now t = t.now
let observe t n = if n > t.now then t.now <- n

let task_of t open_id =
  match Hashtbl.find_opt t.tasks open_id with
  | Some task -> task
  | None ->
      let task = { holders = []; timeouts = 0; rejections = 0; not_before = 0 } in
      Hashtbl.replace t.tasks open_id task;
      task

let valid t lease = t.now < lease.deadline

type assign_error = [ `Dead of reason | `Backoff of int | `Held of Reldb.Value.t ]

let assign t ~open_id ~worker ~now ~capacity =
  observe t now;
  match Hashtbl.find_opt t.dead open_id with
  | Some r -> Error (`Dead r)
  | None ->
      let task = task_of t open_id in
      if now < task.not_before then Error (`Backoff task.not_before)
      else begin
        let live = List.filter (valid t) task.holders in
        match List.find_opt (fun l -> Reldb.Value.equal l.worker worker) live with
        | Some mine ->
            (* Renewal: fresh deadline, same slot. *)
            let renewed = { mine with granted_at = now; deadline = now + t.config.ttl } in
            task.holders <-
              renewed :: List.filter (fun l -> not (Reldb.Value.equal l.worker worker)) live;
            Ok renewed
        | None ->
            if List.length live >= capacity then Error (`Held (List.hd live).worker)
            else begin
              let lease = { open_id; worker; granted_at = now; deadline = now + t.config.ttl } in
              task.holders <- live @ [ lease ];
              Ok lease
            end
      end

let holds t ~open_id ~worker =
  match Hashtbl.find_opt t.tasks open_id with
  | None -> false
  | Some task ->
      List.exists
        (fun l -> Reldb.Value.equal l.worker worker && valid t l)
        task.holders

let blocked_for t ~open_id ~worker ~capacity =
  match Hashtbl.find_opt t.tasks open_id with
  | None -> None
  | Some task ->
      let live = List.filter (valid t) task.holders in
      if
        List.length live >= capacity
        && not (List.exists (fun l -> Reldb.Value.equal l.worker worker) live)
      then Some (List.hd live).worker
      else None

let release t ~open_id ~worker =
  match Hashtbl.find_opt t.tasks open_id with
  | None -> ()
  | Some task ->
      task.holders <-
        List.filter (fun l -> not (Reldb.Value.equal l.worker worker)) task.holders

let drop_state t open_id = Hashtbl.remove t.tasks open_id

let mark_dead t ~open_id reason =
  if not (Hashtbl.mem t.dead open_id) then begin
    Hashtbl.replace t.dead open_id reason;
    t.dead_order <- open_id :: t.dead_order
  end;
  drop_state t open_id

let is_dead t ~open_id = Hashtbl.find_opt t.dead open_id

let dead_letters t =
  List.rev_map (fun id -> (id, Hashtbl.find t.dead id)) t.dead_order

let forget t ~open_id = drop_state t open_id

let note_rejection t ~open_id =
  let task = task_of t open_id in
  task.rejections <- task.rejections + 1;
  if task.rejections >= t.config.max_rejections then `Exhausted task.rejections
  else `Counted task.rejections

let reclaim t ~now =
  observe t now;
  let touched = ref [] in
  Hashtbl.iter
    (fun open_id task ->
      let live, expired = List.partition (fun l -> now < l.deadline) task.holders in
      if expired <> [] then begin
        task.holders <- live;
        task.timeouts <- task.timeouts + List.length expired;
        touched := (open_id, task) :: !touched
      end)
    t.tasks;
  List.sort (fun (a, _) (b, _) -> compare a b) !touched
  |> List.map (fun (open_id, task) ->
         if task.timeouts >= t.config.max_timeouts then begin
           mark_dead t ~open_id Timed_out;
           (open_id, `Dead Timed_out)
         end
         else begin
           (* Exponential backoff in rounds: 1, 2, 4, ... times the base. *)
           let delay = t.config.backoff_base * (1 lsl (task.timeouts - 1)) in
           task.not_before <- now + delay;
           (open_id, `Retry task.not_before)
         end)

(** Cost-based join planning for rule-body prefixes.

    A plan reorders the positive atoms of a body prefix so the most
    selective atoms (fewest estimated rows given the bindings already
    available) are joined first, and slides each filter literal as early
    as its bindings allow. Selectivity is estimated from the relation
    layer's statistics as [cardinal / distinct_count] over the atom's
    statically-evaluable argument attributes — the expected size of the
    compound-index probe {!Eval.candidate_rows} will perform — with
    relation cardinality and original position as deterministic
    tie-breaks.

    Plans are purely an evaluation-order device: fed to
    {!Eval.enumerate}'s [reordered] argument they change neither the set
    of valuations nor what each valuation binds (every planned match is
    replayed over the original body), and the [order] array lets the
    engine's seminaive delta ranges keep addressing atoms by their
    original positions. *)

type t = {
  literals : Ast.literal list;  (** the reordered prefix *)
  order : int array;
      (** evaluation position -> original positive-atom position *)
  identity : bool;  (** the plan is the original left-to-right order *)
  steps : (string * int * int) list;
      (** per chosen atom, in planned order: relation, estimated rows
          given the bindings available when it was picked, and the
          relation's cardinality at planning time — the evidence behind
          the ordering, surfaced by [Engine.explain] *)
}

val plan : ?exact_atom:int -> Reldb.Database.t -> Ast.literal list -> t
(** [plan db prefix] computes a greedy bound-selectivity ordering of
    [prefix] against the current statistics of [db]. [exact_atom] marks
    the positive atom (by original position) that a seminaive delta scan
    will pin to a single row ({!Eval.Exactly}); it is costed as one row,
    which typically moves it to the front of the plan. Plans are only
    valid for the statistics they were computed against — cache them
    keyed on {!stats_key} of the body relations. *)

val stats_key : Reldb.Database.t -> string list -> int array
(** [stats_key db rels] is one {!Reldb.Relation.stats_epoch} per relation
    name in [rels] (order preserved; [-1] for undeclared relations) — the
    per-relation invalidation key for cached plans. Two equal keys
    guarantee the planner would see statistics in the same coarse buckets,
    so a cached plan may be reused; an insert into a relation outside
    [rels] never changes the key, and an insert into one of [rels] only
    changes it when the relation's cardinality crosses a power-of-two
    boundary (or after any destructive mutation). *)

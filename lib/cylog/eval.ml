exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let rec eval_expr builtins env = function
  | Ast.Const v -> v
  | Ast.Var v -> (
      match Binding.find env v with
      | Some value -> value
      | None -> error "unbound variable %s" v)
  | Ast.List es -> Reldb.Value.List (List.map (eval_expr builtins env) es)
  | Ast.Binop (op, a, b) -> (
      let va = eval_expr builtins env a and vb = eval_expr builtins env b in
      try
        match op with
        | Ast.Add -> Reldb.Value.add va vb
        | Ast.Sub -> Reldb.Value.sub va vb
        | Ast.Mul -> Reldb.Value.mul va vb
        | Ast.Div -> Reldb.Value.div va vb
      with Invalid_argument m -> error "%s" m)

let try_eval_expr builtins env e =
  try Some (eval_expr builtins env e) with Error _ -> None

(* Pattern-match an argument expression against a stored value, binding
   unbound variables. List expressions destructure list values, so a game
   aspect can write [action:["value", v]] and recover [v]. *)
let rec match_expr builtins env expr actual =
  match expr with
  | Ast.Var v -> (
      match Binding.find env v with
      | Some bound -> if Reldb.Value.equal bound actual then Some env else None
      | None -> Some (Binding.bind env v actual))
  | Ast.Const c -> if Reldb.Value.equal c actual then Some env else None
  | Ast.List es -> (
      match actual with
      | Reldb.Value.List vs when List.length es = List.length vs ->
          List.fold_left2
            (fun env e v ->
              match env with None -> None | Some env -> match_expr builtins env e v)
            (Some env) es vs
      | _ -> None)
  | Ast.Binop _ -> (
      match try_eval_expr builtins env expr with
      | Some expected -> if Reldb.Value.equal expected actual then Some env else None
      | None -> error "arithmetic argument uses unbound variables")

let match_atom env (atom : Ast.atom) tuple ~builtins =
  let step env (arg : Ast.arg) =
    match env with
    | None -> None
    | Some env -> (
        let actual = Reldb.Tuple.get_or_null tuple arg.attr in
        match arg.bind with
        | Ast.Auto -> (
            match Binding.find env arg.attr with
            | Some bound -> if Reldb.Value.equal bound actual then Some env else None
            | None -> Some (Binding.bind env arg.attr actual))
        | Ast.Bound (Ast.Var v) when not (Binding.mem env v) ->
            (* Alias binding: [p:p1] names the tuple's value [p1] without
               touching variable [p] (so two atoms can join on distinct
               aliases of the same attribute). *)
            Some (Binding.bind env v actual)
        | Ast.Bound e -> (
            (* A testing argument also keeps the attribute-named variable
               available downstream: [attr:"weather"] binds [attr], and
               [pos:head] binds [pos] for Figure 16's [new_pos = pos + dir]. *)
            match match_expr builtins env e actual with
            | Some env ->
                if Binding.mem env arg.attr then Some env
                else Some (Binding.bind env arg.attr actual)
            | None -> None))
  in
  List.fold_left step (Some env) atom.args

let atom_pattern builtins env (atom : Ast.atom) =
  (* Pattern of evaluable argument constraints, for negation checks and
     index probes. Returns (attr, value) tests plus the attrs that are
     unconstrained. *)
  List.filter_map
    (fun (arg : Ast.arg) ->
      match arg.bind with
      | Ast.Auto -> (
          match Binding.find env arg.attr with
          | Some v -> Some (arg.attr, v)
          | None -> None)
      | Ast.Bound e -> (
          match try_eval_expr builtins env e with
          | Some v -> Some (arg.attr, v)
          | None -> None))
    atom.args

let neg_holds builtins db env (atom : Ast.atom) =
  (* Every argument must be evaluable: negation in CyLog is a test over
     sure tuples, not a binder. *)
  List.iter
    (fun (arg : Ast.arg) ->
      match arg.bind with
      | Ast.Auto ->
          if not (Binding.mem env arg.attr) then
            error "negated atom %s: attribute %s is unbound" atom.pred arg.attr
      | Ast.Bound e ->
          if try_eval_expr builtins env e = None then
            error "negated atom %s: argument %s uses unbound variables" atom.pred arg.attr)
    atom.args;
  let pattern = atom_pattern builtins env atom in
  match Reldb.Database.find db atom.pred with
  | None -> true
  | Some rel -> not (Reldb.Relation.mem_pattern rel pattern)

let compare_values op a b =
  let c = Reldb.Value.compare a b in
  match op with
  | Ast.Eq -> Reldb.Value.equal a b
  | Ast.Neq -> not (Reldb.Value.equal a b)
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

let check_filter builtins db env (lit : Ast.literal) =
  match lit.Ast.lit with
  | Ast.Pos _ -> error "check_filter applied to a positive atom"
  | Ast.Neg atom -> if neg_holds builtins db env atom then `Pass env else `Fail
  | Ast.Call (name, args) -> (
      let vs = List.map (eval_expr builtins env) args in
      let result =
        try Builtin.call builtins name vs with
        | Builtin.Unknown n -> error "unknown builtin %s" n
        | Builtin.Bad_arguments { name; message } -> error "builtin %s: %s" name message
      in
      if Reldb.Value.truthy result then `Pass env else `Fail)
  | Ast.Cmp (lhs, op, rhs) -> (
      (* [v = e] with [v] unbound and [e] closed binds [v] (the paper's
         [new_pos = pos + dir]); symmetrically for [e = v]. *)
      let lv = try_eval_expr builtins env lhs in
      let rv = try_eval_expr builtins env rhs in
      match (op, lhs, lv, rhs, rv) with
      | _, _, Some a, _, Some b -> if compare_values op a b then `Pass env else `Fail
      | Ast.Eq, Ast.Var v, None, _, Some b -> `Pass (Binding.bind env v b)
      | Ast.Eq, _, Some a, Ast.Var v, None -> `Pass (Binding.bind env v a)
      | _ ->
          let op_str =
            match op with
            | Ast.Eq -> "=" | Ast.Neq -> "!=" | Ast.Lt -> "<"
            | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">="
          in
          let side e v = match (e, v) with
            | Ast.Var name, None -> name
            | _ -> "<expr>"
          in
          error "comparison %s %s %s uses unbound variables" (side lhs lv)
            op_str (side rhs rv))

type matched = { env : Binding.t; support : (string * int * int) list }

(* The conflict-resolution ordering key of an instance: its support rows
   (and versions) in body order. Left-to-right enumeration produces
   instances in ascending key order, so "the instance valued by the
   earliest rows" is the minimum under this key. *)
let support_key (m : matched) = List.map (fun (_, row, ver) -> (row, ver)) m.support

let compare_matched a b = compare (support_key a) (support_key b)

(* Merge two key-ascending instance lists, preserving order — how the
   engine folds each delta scan's discoveries into its pending set so the
   head of the merged list is always the conflict-resolution winner. *)
let merge_matched a b = List.merge compare_matched a b

type row_range = All | Below of int | Exactly of int

(* Instrumentation: candidate rows handed to match_atom across all
   enumerations since the last reset. The joins benchmark (and its smoke
   test guarding planner regressions) reads this to compare evaluation
   strategies deterministically, independent of wall-clock noise. *)
let rows_scanned_counter = ref 0

let rows_scanned () = !rows_scanned_counter
let reset_rows_scanned () = rows_scanned_counter := 0

let candidate_rows builtins db env (atom : Ast.atom) range =
  match Reldb.Database.find db atom.pred with
  | None -> []
  | Some rel -> (
      match range with
      | Exactly i -> (
          match Reldb.Relation.row rel i with Some t -> [ (i, t) ] | None -> [])
      | All | Below _ -> (
          (* Probe the compound-key index over every argument already
             determined; fall back to a full scan when none is. *)
          let rows =
            match atom_pattern builtins env atom with
            | [] -> Reldb.Relation.rows rel
            | pat -> Reldb.Relation.rows_with_pattern rel pat
          in
          match range with
          | Below k -> List.filter (fun (i, _) -> i < k) rows
          | All | Exactly _ -> rows))

(* Re-evaluate the original body over one known-good choice of supporting
   tuples (one per positive atom, indexed by position in the original
   body). This is how planned enumeration reports valuations: whatever
   order the atoms were actually joined in, the reported environment and
   support are exactly what left-to-right evaluation would have produced —
   alias bindings, attribute-variable bindings and comparison-binders
   included — so events, fingerprints and tie-break keys are independent
   of the plan. *)
let replay builtins db body ~init tuples =
  let rec go pos_idx env support = function
    | [] -> Some { env; support = List.rev support }
    | { Ast.lit = Ast.Pos atom; _ } :: rest -> (
        let i, tuple = tuples.(pos_idx) in
        match match_atom env atom tuple ~builtins with
        | Some env' ->
            let version =
              match Reldb.Database.find db atom.pred with
              | Some r -> Reldb.Relation.row_version r i
              | None -> 0
            in
            go (pos_idx + 1) env' ((atom.pred, i, version) :: support) rest
        | None -> None)
    | lit :: rest -> (
        match check_filter builtins db env lit with
        | `Pass env' -> go pos_idx env' support rest
        | `Fail -> None)
  in
  go 0 init [] body

let enumerate ?(plan = fun _ -> All) ?reordered builtins db body ~init ~f =
  let stop = ref false in
  match reordered with
  | None ->
      (* Left-to-right evaluation in body order: valuations are produced in
         lexicographic order of the row indices chosen per positive atom. *)
      let rec go pos_idx env support = function
        | [] ->
            if not !stop then
              if f { env; support = List.rev support } = `Stop then stop := true
        | { Ast.lit = Ast.Pos atom; _ } :: rest ->
            let rel = Reldb.Database.find db atom.pred in
            let version i =
              match rel with Some r -> Reldb.Relation.row_version r i | None -> 0
            in
            let rec try_rows = function
              | [] -> ()
              | (i, tuple) :: more ->
                  if not !stop then begin
                    incr rows_scanned_counter;
                    (match match_atom env atom tuple ~builtins with
                    | Some env' ->
                        go (pos_idx + 1) env' ((atom.pred, i, version i) :: support) rest
                    | None -> ());
                    try_rows more
                  end
            in
            try_rows (candidate_rows builtins db env atom (plan pos_idx))
        | lit :: rest -> (
            match check_filter builtins db env lit with
            | `Pass env' -> go pos_idx env' support rest
            | `Fail -> ())
      in
      go 0 init [] body
  | Some (literals, order) ->
      (* Planned evaluation: [literals] is the planner's reordering of
         [body]; the positive atom at evaluation position [k] sits at
         position [order.(k)] of the original body. [plan] ranges are
         keyed by original positions, so the engine's seminaive delta
         machinery is oblivious to the reordering. Each full match is
         replayed over the original [body] before reaching [f]. *)
      let tuples = Array.make (Array.length order) (0, Reldb.Tuple.empty) in
      let rec go pos_idx env = function
        | [] ->
            if not !stop then begin
              match replay builtins db body ~init tuples with
              | Some m -> if f m = `Stop then stop := true
              | None -> ()  (* unreachable: the planned match succeeded *)
            end
        | { Ast.lit = Ast.Pos atom; _ } :: rest ->
            let rec try_rows = function
              | [] -> ()
              | (i, tuple) :: more ->
                  if not !stop then begin
                    incr rows_scanned_counter;
                    (match match_atom env atom tuple ~builtins with
                    | Some env' ->
                        tuples.(order.(pos_idx)) <- (i, tuple);
                        go (pos_idx + 1) env' rest
                    | None -> ());
                    try_rows more
                  end
            in
            try_rows (candidate_rows builtins db env atom (plan order.(pos_idx)))
        | lit :: rest -> (
            match check_filter builtins db env lit with
            | `Pass env' -> go pos_idx env' rest
            | `Fail -> ())
      in
      go 0 init literals

let split_tail body =
  let last_pos =
    List.fold_left
      (fun (idx, last) (lit : Ast.literal) ->
        match lit.Ast.lit with
        | Ast.Pos _ -> (idx + 1, idx)
        | Ast.Neg _ | Ast.Cmp _ | Ast.Call _ -> (idx + 1, last))
      (0, -1) body
    |> snd
  in
  let rec split idx = function
    | [] -> ([], [])
    | lit :: rest ->
        if idx <= last_pos then
          let prefix, tail = split (idx + 1) rest in
          (lit :: prefix, tail)
        else ([], lit :: rest)
  in
  split 0 body

type span = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

let no_span = { start_line = 0; start_col = 0; end_line = 0; end_col = 0 }

let span_is_known s = s <> no_span

type binop = Add | Sub | Mul | Div

type expr =
  | Const of Reldb.Value.t
  | Var of string
  | List of expr list
  | Binop of binop * expr * expr

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type arg = { attr : string; bind : bind }
and bind = Auto | Bound of expr

type atom = { pred : string; args : arg list }

type lit =
  | Pos of atom
  | Neg of atom
  | Cmp of expr * cmpop * expr
  | Call of string * expr list

type literal = { lit : lit; lit_span : span }

type head_kind = Assert | Open of expr option | Update | Delete

type head_node =
  | Head_atom of { atom : atom; kind : head_kind }
  | Head_payoff of (string * expr) list

type head = { head : head_node; head_span : span }

type statement = {
  label : string option;
  heads : head list;
  body : literal list;
  stmt_span : span;
}

type schema_decl = {
  rel_name : string;
  rel_attrs : (string * bool * bool) list;
  decl_span : span;
}

type game_decl = {
  game_name : string;
  game_params : string list;
  path_rules : statement list;
  payoff_rules : statement list;
}

type view = { view_name : string; template : string }

type program = {
  schemas : schema_decl list;
  statements : statement list;
  games : game_decl list;
  views : view list;
}

let empty_program = { schemas = []; statements = []; games = []; views = [] }

(* -- Smart constructors -------------------------------------------------- *)

let literal ?(span = no_span) lit = { lit; lit_span = span }

let head_atom ?(span = no_span) ?(kind = Assert) atom =
  { head = Head_atom { atom; kind }; head_span = span }

let head_payoff ?(span = no_span) updates =
  { head = Head_payoff updates; head_span = span }

let statement ?label ?(span = no_span) heads body =
  { label; heads; body; stmt_span = span }

(* -- Span erasure (for span-insensitive structural equality) ------------- *)

let strip_literal l = { l with lit_span = no_span }
let strip_head h = { h with head_span = no_span }

let strip_statement s =
  {
    s with
    heads = List.map strip_head s.heads;
    body = List.map strip_literal s.body;
    stmt_span = no_span;
  }

let strip_schema_decl (d : schema_decl) = { d with decl_span = no_span }

let strip_game g =
  {
    g with
    path_rules = List.map strip_statement g.path_rules;
    payoff_rules = List.map strip_statement g.payoff_rules;
  }

let strip_program p =
  {
    p with
    schemas = List.map strip_schema_decl p.schemas;
    statements = List.map strip_statement p.statements;
    games = List.map strip_game p.games;
  }

(* -- Helpers ------------------------------------------------------------- *)

let rec expr_vars = function
  | Const _ -> []
  | Var v -> [ v ]
  | List es -> List.concat_map expr_vars es
  | Binop (_, a, b) -> expr_vars a @ expr_vars b

let expr_vars e = List.sort_uniq String.compare (expr_vars e)

let literal_positive_preds l =
  match l.lit with
  | Pos { pred; _ } -> [ pred ]
  | Neg _ | Cmp _ | Call _ -> []

let body_preds body =
  List.sort_uniq String.compare
    (List.concat_map
       (fun l ->
         match l.lit with
         | Pos { pred; _ } | Neg { pred; _ } -> [ pred ]
         | Cmp _ | Call _ -> [])
       body)

let head_pred h =
  match h.head with
  | Head_atom { atom; _ } -> Some atom.pred
  | Head_payoff _ -> None

let statement_preds s =
  List.sort_uniq String.compare (List.filter_map head_pred s.heads)

let statement_is_fact s = s.body = []

let statement_is_open s =
  List.exists
    (fun h ->
      match h.head with
      | Head_atom { kind = Open _; _ } -> true
      | Head_atom _ | Head_payoff _ -> false)
    s.heads

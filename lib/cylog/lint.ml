type severity = Error | Warning

type diagnostic = {
  code : string;
  severity : severity;
  span : Ast.span;
  message : string;
}

exception Rejected of diagnostic list

let severity_name = function Error -> "error" | Warning -> "warning"

module S = Set.Make (String)

(* -- Catalogue ----------------------------------------------------------- *)

let all_codes =
  [
    (* Safety / range restriction (Section 4.1). *)
    ("unsafe-head-var", Error, "head variable not bound by the body");
    ("unsafe-neg-var", Error, "negated atom uses a variable no positive atom binds");
    ("unsafe-cmp-var", Error, "comparison over variables no positive atom binds");
    ("unsafe-call-var", Error, "builtin call over variables no positive atom binds");
    ("payoff-unbound-var", Error, "payoff head pays a variable the body does not bind");
    (* Stratification (Section 9.1, Figure 14). *)
    ("unstratified", Error, "negated relation is asserted by a later statement");
    ("self-negation", Error, "statement negates a relation its own heads assert");
    (* Schema conformance. *)
    ("duplicate-schema", Error, "relation declared twice in the schema section");
    ("duplicate-attr", Error, "attribute declared twice in one relation");
    ("multiple-auto", Error, "more than one auto attribute in one relation");
    ("unknown-attr", Error, "atom mentions an attribute absent from the declared schema");
    ("type-conflict", Warning, "constants of conflicting types stored in one column");
    (* Liveness. *)
    ("undefined-relation", Warning, "relation read but never declared or written");
    ("unused-relation", Warning, "declared relation never read or written");
    ("unreachable-rule", Warning, "rule reads a relation nothing can ever populate");
    ("dead-delete", Warning, "/delete targets a relation nothing ever populates");
    (* Game aspects (Section 8). *)
    ("payoff-outside-game", Warning, "payoff head outside any game block");
    ("game-no-path", Warning, "game declares no path rules");
    ("game-never-fires", Warning, "no path rule of the game can ever fire");
    ("game-dead-open", Warning, "/open head in a game rule that can never fire");
    (* Budget analysis (Analysis module). *)
    ("unbounded-task-emission", Error, "open statement can issue unboundedly many tasks");
    ("budget-unknown", Warning, "open statement's task budget cannot be bounded statically");
    ("statically-dead-open", Warning, "open statement whose body cardinality is provably 0");
  ]

let default_severity code =
  match List.find_opt (fun (c, _, _) -> String.equal c code) all_codes with
  | Some (_, s, _) -> s
  | None -> Warning

let is_known_code code =
  List.exists (fun (c, _, _) -> String.equal c code) all_codes

let diag ?(span = Ast.no_span) code fmt =
  Format.kasprintf
    (fun message -> { code; severity = default_severity code; span; message })
    fmt

(* -- Shared traversals --------------------------------------------------- *)

(* Every rule of the program: main statements plus each game's path and
   payoff rules, tagged with the game context (its Skolem parameters are
   implicitly bound in game rules). *)
let all_rules (p : Ast.program) =
  List.map (fun s -> (None, s)) p.statements
  @ List.concat_map
      (fun (g : Ast.game_decl) ->
        List.map (fun s -> (Some g, s)) (g.path_rules @ g.payoff_rules))
      p.games

let head_writes ?(kinds = [ `Assert; `Open; `Update ]) (s : Ast.statement) =
  List.filter_map
    (fun (h : Ast.head) ->
      match h.Ast.head with
      | Ast.Head_atom { atom; kind } ->
          let k =
            match kind with
            | Ast.Assert -> `Assert
            | Ast.Open _ -> `Open
            | Ast.Update -> `Update
            | Ast.Delete -> `Delete
          in
          if List.mem k kinds then Some atom.Ast.pred else None
      | Ast.Head_payoff _ -> None)
    s.Ast.heads

(* Variables a positive atom makes available downstream: every attribute
   name (testing arguments re-expose the attribute variable, see
   [Eval.match_atom]) plus the variables of bound expressions (alias
   bindings and list destructuring both bind). *)
let atom_vars_bound (a : Ast.atom) =
  List.concat_map
    (fun (arg : Ast.arg) ->
      arg.Ast.attr
      ::
      (match arg.Ast.bind with Ast.Auto -> [] | Ast.Bound e -> Ast.expr_vars e))
    a.Ast.args

(* Variables an atom needs when it only tests (negation): bare attributes
   read the equally-named variable, bound expressions their variables. *)
let atom_vars_used (a : Ast.atom) =
  List.concat_map
    (fun (arg : Ast.arg) ->
      match arg.Ast.bind with
      | Ast.Auto -> [ arg.Ast.attr ]
      | Ast.Bound e -> Ast.expr_vars e)
    a.Ast.args

(* Order-insensitive binding fixpoint over a body: positive atoms bind
   unconditionally; [v = e] (either direction) binds [v] once [e] is
   closed, mirroring [Eval.check_filter]. Order-insensitivity avoids false
   positives under planner reordering. *)
let body_bound ?(init = S.empty) (body : Ast.literal list) =
  let bound = ref init in
  List.iter
    (fun (l : Ast.literal) ->
      match l.Ast.lit with
      | Ast.Pos a -> List.iter (fun v -> bound := S.add v !bound) (atom_vars_bound a)
      | Ast.Neg _ | Ast.Cmp _ | Ast.Call _ -> ())
    body;
  let closed e = List.for_all (fun v -> S.mem v !bound) (Ast.expr_vars e) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (l : Ast.literal) ->
        match l.Ast.lit with
        | Ast.Cmp (Ast.Var v, Ast.Eq, e) when (not (S.mem v !bound)) && closed e ->
            bound := S.add v !bound;
            changed := true
        | Ast.Cmp (e, Ast.Eq, Ast.Var v) when (not (S.mem v !bound)) && closed e ->
            bound := S.add v !bound;
            changed := true
        | _ -> ())
      body
  done;
  !bound

let sorted_unbound bound vars =
  List.sort_uniq String.compare (List.filter (fun v -> not (S.mem v bound)) vars)

(* -- Family 1: safety / range restriction -------------------------------- *)

let check_safety ~params (s : Ast.statement) =
  let bound = body_bound ~init:params s.Ast.body in
  let out = ref [] in
  let emit d = out := d :: !out in
  List.iter
    (fun (l : Ast.literal) ->
      match l.Ast.lit with
      | Ast.Pos _ -> ()
      | Ast.Neg a ->
          List.iter
            (fun v ->
              emit
                (diag ~span:l.Ast.lit_span "unsafe-neg-var"
                   "variable %s in negated atom %s is not bound by a positive body atom"
                   v a.Ast.pred))
            (sorted_unbound bound (atom_vars_used a))
      | Ast.Cmp (lhs, _, rhs) ->
          List.iter
            (fun v ->
              emit
                (diag ~span:l.Ast.lit_span "unsafe-cmp-var"
                   "variable %s in comparison is not bound by a positive body atom" v))
            (sorted_unbound bound (Ast.expr_vars lhs @ Ast.expr_vars rhs))
      | Ast.Call (f, args) ->
          List.iter
            (fun v ->
              emit
                (diag ~span:l.Ast.lit_span "unsafe-call-var"
                   "variable %s in call to %s is not bound by a positive body atom" v f))
            (sorted_unbound bound (List.concat_map Ast.expr_vars args)))
    s.Ast.body;
  List.iter
    (fun (h : Ast.head) ->
      match h.Ast.head with
      | Ast.Head_atom { atom; kind } ->
          List.iter
            (fun (arg : Ast.arg) ->
              match (arg.Ast.bind, kind) with
              | Ast.Auto, (Ast.Open _ | Ast.Delete) ->
                  (* Open slots (worker-supplied values) and delete
                     wildcards are legitimately unbound. *)
                  ()
              | Ast.Auto, (Ast.Assert | Ast.Update) ->
                  if not (S.mem arg.Ast.attr bound) then
                    emit
                      (diag ~span:h.Ast.head_span "unsafe-head-var"
                         "head variable %s of %s is not bound by the body"
                         arg.Ast.attr atom.Ast.pred)
              | Ast.Bound e, _ ->
                  List.iter
                    (fun v ->
                      emit
                        (diag ~span:h.Ast.head_span "unsafe-head-var"
                           "head variable %s of %s is not bound by the body" v
                           atom.Ast.pred))
                    (sorted_unbound bound (Ast.expr_vars e)))
            atom.Ast.args;
          (match kind with
          | Ast.Open (Some e) ->
              List.iter
                (fun v ->
                  emit
                    (diag ~span:h.Ast.head_span "unsafe-head-var"
                       "asked-worker expression of %s/open uses unbound variable %s"
                       atom.Ast.pred v))
                (sorted_unbound bound (Ast.expr_vars e))
          | _ -> ())
      | Ast.Head_payoff updates ->
          List.iter
            (fun (player, delta) ->
              if not (S.mem player bound) then
                emit
                  (diag ~span:h.Ast.head_span "payoff-unbound-var"
                     "payoff player %s is not bound by the body" player);
              List.iter
                (fun v ->
                  emit
                    (diag ~span:h.Ast.head_span "payoff-unbound-var"
                       "payoff delta for %s uses unbound variable %s" player v))
                (sorted_unbound bound (Ast.expr_vars delta)))
            updates)
    s.Ast.heads;
  List.rev !out

(* -- Family 2: stratification -------------------------------------------- *)

let check_self_negation (s : Ast.statement) =
  let writes = head_writes ~kinds:[ `Assert; `Open ] s in
  let negs =
    List.filter_map
      (fun (l : Ast.literal) ->
        match l.Ast.lit with
        | Ast.Neg a -> Some (a.Ast.pred, l.Ast.lit_span)
        | _ -> None)
      s.Ast.body
  in
  List.filter_map
    (fun (r, span) ->
      if List.mem r writes then
        Some
          (diag ~span "self-negation"
             "statement both asserts and negates %s: the rule re-fires on its own output"
             r)
      else None)
    negs

let check_stratification (statements : Ast.statement list) =
  let g = Precedence.build statements in
  List.map
    (fun (v : Precedence.violation) ->
      let s = Precedence.statement_at g v.vertex in
      let cycle =
        match v.cycle with
        | [] -> ""
        | p ->
            Printf.sprintf " (cycle: %s -> %s)"
              (String.concat " -> " (List.map (Precedence.vertex_name g) p))
              (Precedence.vertex_name g v.vertex)
      in
      diag ~span:s.Ast.stmt_span "unstratified"
        "negation over %s is not stratified: %s asserts %s after this rule first evaluates%s"
        v.negated
        (Precedence.vertex_name g v.writer)
        v.negated cycle)
    (Precedence.negation_violations g)

(* -- Family 3: schema conformance ---------------------------------------- *)

let check_schema_decls (p : Ast.program) =
  let out = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.schema_decl) ->
      if Hashtbl.mem seen d.Ast.rel_name then
        out :=
          diag ~span:d.Ast.decl_span "duplicate-schema" "relation %s is declared twice"
            d.Ast.rel_name
          :: !out
      else Hashtbl.add seen d.Ast.rel_name ();
      let attrs = Hashtbl.create 8 in
      let autos = ref 0 in
      List.iter
        (fun (a, _key, auto) ->
          if Hashtbl.mem attrs a then
            out :=
              diag ~span:d.Ast.decl_span "duplicate-attr"
                "attribute %s of %s is declared twice" a d.Ast.rel_name
              :: !out
          else Hashtbl.add attrs a ();
          if auto then incr autos)
        d.Ast.rel_attrs;
      if !autos > 1 then
        out :=
          diag ~span:d.Ast.decl_span "multiple-auto"
            "relation %s declares %d auto attributes; at most one is supported"
            d.Ast.rel_name !autos
          :: !out)
    p.Ast.schemas;
  List.rev !out

(* Every atom of a statement with the span to blame: heads carry their own
   span, body atoms their literal's. *)
let statement_atoms (s : Ast.statement) =
  List.filter_map
    (fun (h : Ast.head) ->
      match h.Ast.head with
      | Ast.Head_atom { atom; _ } -> Some (atom, h.Ast.head_span)
      | Ast.Head_payoff _ -> None)
    s.Ast.heads
  @ List.filter_map
      (fun (l : Ast.literal) ->
        match l.Ast.lit with
        | Ast.Pos a | Ast.Neg a -> Some (a, l.Ast.lit_span)
        | Ast.Cmp _ | Ast.Call _ -> None)
      s.Ast.body

(* Relations whose schema the engine synthesises itself: [Payoff] is
   auto-declared (player/score) and each game's [Path] table gains the
   Skolem parameters plus order/date columns. *)
let engine_managed rel = String.equal rel "Payoff" || String.equal rel "Path"

let check_schema_conformance (p : Ast.program) =
  let declared = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.schema_decl) ->
      if not (Hashtbl.mem declared d.Ast.rel_name) then
        Hashtbl.add declared d.Ast.rel_name
          (List.map (fun (a, _, _) -> a) d.Ast.rel_attrs))
    p.Ast.schemas;
  let out = ref [] in
  (* Evidence-based column typing over constant arguments, shared with the
     engine's runtime checks through [Reldb.Value.type_name]. *)
  let evidence : (string * string, string * Ast.span) Hashtbl.t = Hashtbl.create 16 in
  let conflicted = Hashtbl.create 8 in
  List.iter
    (fun (_game, s) ->
      List.iter
        (fun ((atom : Ast.atom), span) ->
          (match Hashtbl.find_opt declared atom.Ast.pred with
          | Some attrs when not (engine_managed atom.Ast.pred) ->
              List.iter
                (fun (arg : Ast.arg) ->
                  if not (List.mem arg.Ast.attr attrs) then
                    out :=
                      diag ~span "unknown-attr"
                        "%s has no attribute %s (declared: %s)" atom.Ast.pred
                        arg.Ast.attr (String.concat ", " attrs)
                      :: !out)
                atom.Ast.args
          | _ -> ());
          if not (engine_managed atom.Ast.pred) then
            List.iter
              (fun (arg : Ast.arg) ->
                match arg.Ast.bind with
                | Ast.Bound (Ast.Const v) when not (Reldb.Value.is_null v) -> (
                    let key = (atom.Ast.pred, arg.Ast.attr) in
                    let tn = Reldb.Value.type_name v in
                    match Hashtbl.find_opt evidence key with
                    | None -> Hashtbl.add evidence key (tn, span)
                    | Some (prev, prev_span) ->
                        if
                          (not (String.equal prev tn))
                          && not (Hashtbl.mem conflicted key)
                        then begin
                          Hashtbl.add conflicted key ();
                          out :=
                            diag ~span "type-conflict"
                              "attribute %s of %s holds %s here but %s at line %d"
                              arg.Ast.attr atom.Ast.pred tn prev
                              prev_span.Ast.start_line
                            :: !out
                        end)
                | _ -> ())
              atom.Ast.args)
        (statement_atoms s))
    (all_rules p);
  List.rev !out

(* -- Family 4: liveness --------------------------------------------------- *)

(* Fixpoint reachability: a rule can fire once every relation its positive
   body atoms read is populated. Declared relations count as populated —
   they are EDB input points the host may fill through the engine API —
   as do the engine-managed tables. *)
let fireable_rules (p : Ast.program) =
  let rules = Array.of_list (all_rules p) in
  let n = Array.length rules in
  let populated = ref (S.of_list (List.map (fun d -> d.Ast.rel_name) p.Ast.schemas)) in
  populated := S.add "Payoff" !populated;
  let fireable = Array.make n false in
  let positive_reads i =
    let _, s = rules.(i) in
    List.concat_map Ast.literal_positive_preds s.Ast.body
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if
        (not fireable.(i))
        && List.for_all
             (fun r -> S.mem r !populated || engine_managed r)
             (positive_reads i)
      then begin
        fireable.(i) <- true;
        changed := true;
        let _, s = rules.(i) in
        List.iter (fun r -> populated := S.add r !populated) (head_writes s)
      end
    done
  done;
  (rules, fireable, !populated)

let check_liveness (p : Ast.program) =
  let rules, fireable, populated = fireable_rules p in
  let out = ref [] in
  (* Syntactic mentions, for unused/undefined checks. *)
  let written = ref S.empty and read = ref S.empty in
  let read_sites : (string, Ast.span) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (_g, (s : Ast.statement)) ->
      List.iter (fun r -> written := S.add r !written) (head_writes s);
      List.iter
        (fun (l : Ast.literal) ->
          match l.Ast.lit with
          | Ast.Pos a | Ast.Neg a ->
              read := S.add a.Ast.pred !read;
              if not (Hashtbl.mem read_sites a.Ast.pred) then
                Hashtbl.add read_sites a.Ast.pred l.Ast.lit_span
          | Ast.Cmp _ | Ast.Call _ -> ())
        s.Ast.body)
    rules;
  let delete_targets = ref S.empty in
  Array.iter
    (fun (_g, (s : Ast.statement)) ->
      List.iter (fun r -> delete_targets := S.add r !delete_targets)
        (head_writes ~kinds:[ `Delete ] s))
    rules;
  let declared = S.of_list (List.map (fun d -> d.Ast.rel_name) p.Ast.schemas) in
  (* undefined-relation: read somewhere, no schema, no write anywhere. *)
  S.iter
    (fun r ->
      if
        (not (S.mem r declared))
        && (not (S.mem r !written))
        && not (engine_managed r)
      then
        let span =
          match Hashtbl.find_opt read_sites r with Some s -> s | None -> Ast.no_span
        in
        out :=
          diag ~span "undefined-relation"
            "relation %s is read but never declared, asserted or opened" r
          :: !out)
    !read;
  (* unused-relation: declared, never mentioned, not presented by a view. *)
  List.iter
    (fun (d : Ast.schema_decl) ->
      let r = d.Ast.rel_name in
      if
        (not (S.mem r !read))
        && (not (S.mem r !written))
        && (not (S.mem r !delete_targets))
        && not (List.exists (fun (v : Ast.view) -> String.equal v.Ast.view_name r) p.Ast.views)
      then
        out :=
          diag ~span:d.Ast.decl_span "unused-relation"
            "relation %s is declared but no rule reads or writes it" r
          :: !out)
    p.Ast.schemas;
  (* unreachable-rule: a main rule whose positive reads can never all be
     populated (game rules are covered by the game checks). *)
  Array.iteri
    (fun i (game, (s : Ast.statement)) ->
      if game = None && not fireable.(i) then
        out :=
          diag ~span:s.Ast.stmt_span "unreachable-rule"
            "rule can never fire: no statement, schema or open head populates %s"
            (String.concat ", "
               (List.filter
                  (fun r -> not (S.mem r populated))
                  (List.sort_uniq String.compare
                     (List.concat_map Ast.literal_positive_preds s.Ast.body))))
          :: !out)
    rules;
  (* dead-delete: /delete over a relation nothing ever populates. *)
  Array.iter
    (fun (_g, (s : Ast.statement)) ->
      List.iter
        (fun (h : Ast.head) ->
          match h.Ast.head with
          | Ast.Head_atom { atom; kind = Ast.Delete } ->
              let r = atom.Ast.pred in
              if
                (not (S.mem r declared))
                && (not (S.mem r !written))
                && not (engine_managed r)
              then
                out :=
                  diag ~span:h.Ast.head_span "dead-delete"
                    "/delete targets %s, which nothing ever populates" r
                  :: !out
          | _ -> ())
        s.Ast.heads)
    rules;
  List.rev !out

(* -- Family 5: game aspects ---------------------------------------------- *)

let check_games (p : Ast.program) =
  let rules, fireable, _ = fireable_rules p in
  let rule_fireable (s : Ast.statement) =
    (* Statements are compared physically: [all_rules] preserves them. *)
    let found = ref true in
    Array.iteri (fun i (_g, s') -> if s' == s then found := fireable.(i)) rules;
    !found
  in
  let out = ref [] in
  (* payoff-outside-game: the engine evaluates these, but the paper's
     payoff semantics is per game instance. *)
  List.iter
    (fun (s : Ast.statement) ->
      List.iter
        (fun (h : Ast.head) ->
          match h.Ast.head with
          | Ast.Head_payoff _ ->
              out :=
                diag ~span:h.Ast.head_span "payoff-outside-game"
                  "payoff head outside any game block: payoffs are per-game-instance"
                :: !out
          | Ast.Head_atom _ -> ())
        s.Ast.heads)
    p.Ast.statements;
  List.iter
    (fun (g : Ast.game_decl) ->
      (match (g.Ast.path_rules, g.Ast.payoff_rules) with
      | [], pr ->
          let span =
            match pr with s :: _ -> s.Ast.stmt_span | [] -> Ast.no_span
          in
          out :=
            diag ~span "game-no-path"
              "game %s declares no path rules: no moves can ever be recorded"
              g.Ast.game_name
            :: !out
      | path, _ ->
          if not (List.exists rule_fireable path) then
            out :=
              diag ~span:(List.hd path).Ast.stmt_span "game-never-fires"
                "no path rule of game %s can ever fire" g.Ast.game_name
              :: !out);
      List.iter
        (fun (s : Ast.statement) ->
          if not (rule_fireable s) then
            List.iter
              (fun (h : Ast.head) ->
                match h.Ast.head with
                | Ast.Head_atom { kind = Ast.Open _; atom } ->
                    out :=
                      diag ~span:h.Ast.head_span "game-dead-open"
                        "open head %s sits in a game rule that can never fire"
                        atom.Ast.pred
                      :: !out
                | Ast.Head_atom _ | Ast.Head_payoff _ -> ())
              s.Ast.heads)
        (g.Ast.path_rules @ g.Ast.payoff_rules))
    p.Ast.games;
  List.rev !out

(* -- Budget analysis (A codes) -------------------------------------------- *)

(* One diagnostic per open head whose certificate entry is not finite and
   positive. The analysis itself is total, so this family never masks the
   others. Standing opens and host-input-bounded opens are warnings — they
   are legitimate crowd idioms (VRE's rule collection) that a campaign
   server should cap with a runtime budget; true recursion through an open
   relation is an error, with the witness cycle in the message. *)
let check_analysis (p : Ast.program) =
  let cert = Analysis.analyze p in
  List.concat_map
    (fun (t : Analysis.task_bound) ->
      match t.Analysis.tb_answers with
      | Analysis.Unbounded ((Analysis.Open_cycle _ | Analysis.Value_cycle _) as r) ->
          [
            diag ~span:t.tb_span "unbounded-task-emission"
              "open statement %s on %s can issue unboundedly many tasks: %s"
              t.tb_label t.tb_relation
              (Analysis.card_to_string (Analysis.Unbounded r));
          ]
      | Analysis.Unbounded Analysis.Standing ->
          [
            diag ~span:t.tb_span "budget-unknown"
              "open statement %s on %s is standing (fresh auto key per answer), so its budget needs a runtime cap"
              t.tb_label t.tb_relation;
          ]
      | Analysis.Bounded_by_input ->
          [
            diag ~span:t.tb_span "budget-unknown"
              "open statement %s on %s is bounded only by host-supplied input"
              t.tb_label t.tb_relation;
          ]
      | Analysis.Zero ->
          [
            diag ~span:t.tb_span "statically-dead-open"
              "open statement %s on %s has body cardinality 0 and can never issue a task"
              t.tb_label t.tb_relation;
          ]
      | Analysis.Finite _ -> [])
    cert.Analysis.cert_tasks

(* -- Driver --------------------------------------------------------------- *)

let compare_diag a b =
  let c = compare (a.span.Ast.start_line, a.span.Ast.start_col)
            (b.span.Ast.start_line, b.span.Ast.start_col) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c else String.compare a.message b.message

let apply_overrides overrides diags =
  if overrides = [] then diags
  else
    List.filter_map
      (fun d ->
        match List.assoc_opt d.code overrides with
        | None -> Some d
        | Some `Off -> None
        | Some `Error -> Some { d with severity = Error }
        | Some `Warning -> Some { d with severity = Warning })
      diags

let check ?(overrides = []) (p : Ast.program) =
  let safety =
    List.concat_map
      (fun (game, s) ->
        let params =
          match game with
          | None -> S.empty
          | Some (g : Ast.game_decl) -> S.of_list g.Ast.game_params
        in
        check_safety ~params s @ check_self_negation s)
      (all_rules p)
  in
  let diags =
    safety
    @ check_stratification p.Ast.statements
    @ check_schema_decls p
    @ check_schema_conformance p
    @ check_liveness p
    @ check_games p
    @ check_analysis p
  in
  apply_overrides overrides (List.stable_sort compare_diag diags)

let errors diags = List.filter (fun d -> d.severity = Error) diags
let has_errors diags = List.exists (fun d -> d.severity = Error) diags

(* -- Rendering ------------------------------------------------------------ *)

let render ?(file = "<input>") d =
  if Ast.span_is_known d.span then
    Printf.sprintf "%s:%d:%d-%d:%d: %s: %s %s" file d.span.Ast.start_line
      d.span.Ast.start_col d.span.Ast.end_line d.span.Ast.end_col
      (severity_name d.severity) d.code d.message
  else
    Printf.sprintf "%s: %s: %s %s" file (severity_name d.severity) d.code d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ?(file = "<input>") diags =
  let one d =
    Printf.sprintf
      "{\"file\":\"%s\",\"code\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\",\"span\":{\"start_line\":%d,\"start_col\":%d,\"end_line\":%d,\"end_col\":%d}}"
      (json_escape file) (json_escape d.code)
      (severity_name d.severity)
      (json_escape d.message) d.span.Ast.start_line d.span.Ast.start_col
      d.span.Ast.end_line d.span.Ast.end_col
  in
  "[" ^ String.concat "," (List.map one diags) ^ "]"
